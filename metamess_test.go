package metamess

import (
	"context"
	"errors"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"metamess/internal/archive"
)

func newSystem(t testing.TB, datasets int, seed int64) (*System, *archive.Manifest) {
	t.Helper()
	root := t.TempDir()
	m, err := archive.Generate(root, archive.DefaultGenConfig(datasets, seed))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(Config{ArchiveRoot: root})
	if err != nil {
		t.Fatal(err)
	}
	return sys, m
}

func f64(v float64) *float64 { return &v }

func TestNewRequiresRoot(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config accepted")
	}
}

func TestWrangleAndSearchEndToEnd(t *testing.T) {
	sys, m := newSystem(t, 30, 42)
	rep, err := sys.Wrangle()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Datasets != len(m.Datasets) {
		t.Errorf("datasets = %d, want %d", rep.Datasets, len(m.Datasets))
	}
	if rep.CoverageAfter <= rep.CoverageBefore || rep.CoverageAfter < 0.9 {
		t.Errorf("coverage %.3f -> %.3f", rep.CoverageBefore, rep.CoverageAfter)
	}
	if len(rep.Steps) == 0 {
		t.Error("no steps reported")
	}
	if sys.DatasetCount() != len(m.Datasets) {
		t.Errorf("DatasetCount = %d", sys.DatasetCount())
	}

	// The poster's motivating query: observations near a point in
	// mid-2010 with temperature between 5 and 10 C.
	hits, err := sys.Search(Query{
		Near:      &LatLon{Lat: 46.2, Lon: -123.8},
		From:      time.Date(2010, 5, 1, 0, 0, 0, 0, time.UTC),
		To:        time.Date(2010, 8, 1, 0, 0, 0, 0, time.UTC),
		Variables: []VariableTerm{{Name: "temperature", Min: f64(5), Max: f64(10)}},
		K:         5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("motivating query found nothing")
	}
	if hits[0].Score <= 0 || hits[0].Score > 1 {
		t.Errorf("score = %v", hits[0].Score)
	}
	if hits[0].Summary == "" || !strings.Contains(hits[0].Summary, "Dataset:") {
		t.Error("hit missing summary page")
	}
	if len(hits[0].MatchedVariables) == 0 {
		t.Error("hit missing match explanations")
	}
	for i := 1; i < len(hits); i++ {
		if hits[i-1].Score < hits[i].Score {
			t.Error("hits not ranked")
		}
	}
}

func TestSearchTextMatchesStructuredQuery(t *testing.T) {
	sys, _ := newSystem(t, 30, 42)
	if _, err := sys.Wrangle(); err != nil {
		t.Fatal(err)
	}
	textHits, err := sys.SearchText(
		`near 46.2,-123.8 from 2010-05-01 to 2010-08-01 with temperature between 5 and 10 top 5`)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := 5.0, 10.0
	structHits, err := sys.Search(Query{
		Near:      &LatLon{Lat: 46.2, Lon: -123.8},
		From:      time.Date(2010, 5, 1, 0, 0, 0, 0, time.UTC),
		To:        time.Date(2010, 8, 1, 0, 0, 0, 0, time.UTC),
		Variables: []VariableTerm{{Name: "temperature", Min: &lo, Max: &hi}},
		K:         5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(textHits) != len(structHits) {
		t.Fatalf("text %d hits vs structured %d", len(textHits), len(structHits))
	}
	for i := range textHits {
		if textHits[i].Path != structHits[i].Path || textHits[i].Score != structHits[i].Score {
			t.Errorf("rank %d: %s/%.3f vs %s/%.3f", i,
				textHits[i].Path, textHits[i].Score, structHits[i].Path, structHits[i].Score)
		}
	}
	if _, err := sys.SearchText("gibberish query"); err == nil {
		t.Error("bad text query accepted")
	}
}

func TestDatasetSummaryLookup(t *testing.T) {
	sys, m := newSystem(t, 9, 3)
	if _, err := sys.Wrangle(); err != nil {
		t.Fatal(err)
	}
	page, err := sys.DatasetSummary(m.Datasets[0].Path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(page, m.Datasets[0].Path) {
		t.Error("summary missing path")
	}
	if _, err := sys.DatasetSummary("no/such/file.csv"); err == nil {
		t.Error("unknown path accepted")
	}
}

func TestSnapshotGenerationBumpsOnWrangle(t *testing.T) {
	root := t.TempDir()
	if _, err := archive.Generate(root, archive.DefaultGenConfig(12, 8)); err != nil {
		t.Fatal(err)
	}
	sys, err := New(Config{ArchiveRoot: root})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Wrangle(); err != nil {
		t.Fatal(err)
	}
	gen1 := sys.SnapshotGeneration()
	// Reads do not move the generation.
	if _, err := sys.Search(Query{Variables: []VariableTerm{{Name: "temperature"}}}); err != nil {
		t.Fatal(err)
	}
	if got := sys.SnapshotGeneration(); got != gen1 {
		t.Errorf("generation moved on read: %d -> %d", gen1, got)
	}
	// A no-op re-wrangle publishes an empty delta: the generation holds,
	// so generation-keyed caches stay warm across it.
	rep, err := sys.Wrangle()
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.SnapshotGeneration(); got != gen1 {
		t.Errorf("no-op re-wrangle moved the generation: %d -> %d", gen1, got)
	}
	if !rep.Delta.GenerationStable || rep.Delta.Published != 0 {
		t.Errorf("no-op delta summary = %+v", rep.Delta)
	}
	// Real churn moves it: grow the archive and re-wrangle.
	if _, err := archive.Generate(filepath.Join(root, "extra"), archive.DefaultGenConfig(3, 77)); err != nil {
		t.Fatal(err)
	}
	rep, err = sys.Wrangle()
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.SnapshotGeneration(); got <= gen1 {
		t.Errorf("generation not bumped by a changing publish: %d -> %d", gen1, got)
	}
	if rep.Delta.Added != 3 || rep.Delta.GenerationStable {
		t.Errorf("churn delta summary = %+v", rep.Delta)
	}
}

func TestSearchContextCancellation(t *testing.T) {
	sys, _ := newSystem(t, 12, 8)
	if _, err := sys.Wrangle(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sys.SearchContext(ctx, Query{Variables: []VariableTerm{{Name: "temperature"}}}); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled structured search: err = %v", err)
	}
	if _, err := sys.SearchTextContext(ctx, "with temperature"); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled text search: err = %v", err)
	}
	// A live context behaves exactly like the plain entry points.
	h1, err := sys.SearchContext(context.Background(), Query{Variables: []VariableTerm{{Name: "temperature"}}, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	h2, err := sys.Search(Query{Variables: []VariableTerm{{Name: "temperature"}}, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(h1) != len(h2) {
		t.Errorf("context vs plain search: %d vs %d hits", len(h1), len(h2))
	}
}

func TestCuratorWorkflow(t *testing.T) {
	sys, _ := newSystem(t, 30, 99)
	if _, err := sys.Wrangle(); err != nil {
		t.Fatal(err)
	}
	queue := sys.CuratorQueue()
	if len(queue) == 0 {
		t.Skip("no curator queue at this seed")
	}
	// Clarify the first queued name (facade smoke path; targets come from
	// the curator's own knowledge in practice).
	raw := strings.Fields(queue[0])[0]
	sys.Clarify(raw, "water_temperature")
	if _, err := sys.Wrangle(); err != nil {
		t.Fatal(err)
	}
	for _, q := range sys.CuratorQueue() {
		if strings.Fields(q)[0] == raw {
			t.Errorf("clarified name %q still queued", raw)
		}
	}
}

func TestAddSynonymImprovesCoverage(t *testing.T) {
	sys, m := newSystem(t, 30, 99)
	r1, err := sys.Wrangle()
	if err != nil {
		t.Fatal(err)
	}
	if r1.UnresolvedNames == 0 {
		t.Skip("nothing unresolved at this seed")
	}
	canonical := m.CanonicalFor()
	for _, line := range sys.CuratorQueue() {
		raw := strings.Fields(line)[0]
		if canon := canonical[raw]; canon != "" && canon != raw {
			if err := sys.AddSynonym(canon, raw); err != nil {
				t.Logf("AddSynonym(%q, %q): %v", canon, raw, err)
			}
		}
	}
	r2, err := sys.Wrangle()
	if err != nil {
		t.Fatal(err)
	}
	if r2.UnresolvedNames > r1.UnresolvedNames {
		t.Errorf("unresolved grew: %d -> %d", r1.UnresolvedNames, r2.UnresolvedNames)
	}
}

func TestExportRulesAndMenu(t *testing.T) {
	sys, _ := newSystem(t, 30, 42)
	if _, err := sys.Wrangle(); err != nil {
		t.Fatal(err)
	}
	rules, err := sys.ExportRules()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(strings.TrimSpace(string(rules)), "[") {
		t.Error("rules not a JSON array")
	}
	menu := sys.VariableMenu(0)
	if len(menu) == 0 {
		t.Error("empty variable menu")
	}
	collapsed := sys.VariableMenu(1)
	if len(collapsed) > len(menu) {
		t.Error("collapsed menu longer than full menu")
	}
	if len(sys.Vocabulary()) == 0 {
		t.Error("empty vocabulary")
	}
}

func TestSaveLoadCatalog(t *testing.T) {
	sys, _ := newSystem(t, 9, 7)
	if _, err := sys.Wrangle(); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/published.snapshot"
	if err := sys.SaveCatalog(path); err != nil {
		t.Fatal(err)
	}
	// A second system loads the snapshot without touching the archive.
	other, err := New(Config{ArchiveRoot: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if err := other.LoadCatalog(path); err != nil {
		t.Fatal(err)
	}
	if other.DatasetCount() != sys.DatasetCount() {
		t.Errorf("loaded %d datasets, want %d", other.DatasetCount(), sys.DatasetCount())
	}
	hits, err := other.Search(Query{Variables: []VariableTerm{{Name: "salinity"}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Error("loaded catalog not searchable")
	}
}

func TestStrictValidationBlocksPublish(t *testing.T) {
	root := t.TempDir()
	if _, err := archive.Generate(root, archive.DefaultGenConfig(6, 1)); err != nil {
		t.Fatal(err)
	}
	sys, err := New(Config{
		ArchiveRoot:      root,
		ExpectedDatasets: []string{"never/there.obs"},
		StrictValidation: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Wrangle(); err == nil {
		t.Fatal("strict validation should fail the run")
	}
	if sys.DatasetCount() != 0 {
		t.Error("publish happened despite failed validation")
	}
	if sys.ValidationOK() {
		t.Error("validation reported OK")
	}
	if len(sys.Validation()) == 0 {
		t.Error("no validation findings exposed")
	}
}
