package metamess

import (
	"encoding/json"
	"errors"
	"testing"
)

// FuzzPublishRequest feeds hostile POST /publish bodies to the decoder.
// The endpoint is the system's push-era trust boundary — any producer
// that can reach the daemon supplies these bytes — so the properties
// are:
//
//   - no input panics the decoder;
//   - DecodePublishRequest returns a request XOR an error;
//   - every rejection is ErrPublishRejected-wrapped (the server maps it
//     to a client 4xx, never a 5xx);
//   - decoding is deterministic;
//   - an accepted request is internally coherent — every feature passes
//     catalog validation, IDs are unique, and no path is both published
//     and removed — and survives a marshal/decode round trip.
func FuzzPublishRequest(f *testing.F) {
	f.Add([]byte(`{"features":[{"id":"607ef439c7d64fff","path":"push/a.csv","source":"push","format":"csv",` +
		`"bbox":{"minLat":45.5,"minLon":-124.4,"maxLat":45.6,"maxLon":-124.3},` +
		`"time":{"start":"2010-06-01T00:00:00Z","end":"2010-06-02T00:00:00Z"},` +
		`"variables":[{"rawName":"temp [C]","name":"temperature","unit":"C","range":{"min":5,"max":10},"count":2}],` +
		`"rowCount":2,"bytes":120,"scannedAt":"2010-06-02T00:00:00Z","contentHash":"deadbeef00000000"}]}`))
	f.Add([]byte(`{"remove":["stations/gone.obs"]}`))
	f.Add([]byte(`{"features":[null]}`))
	f.Add([]byte(`{"features":[{"id":"wrong","path":"a.csv"}]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		req1, err1 := DecodePublishRequest(data)
		if (req1 == nil) == (err1 == nil) {
			t.Fatalf("request XOR error violated: req=%v err=%v", req1, err1)
		}
		req2, err2 := DecodePublishRequest(data)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("nondeterministic outcome: first err=%v, second err=%v", err1, err2)
		}
		if err1 != nil {
			if !errors.Is(err1, ErrPublishRejected) {
				t.Fatalf("rejection not ErrPublishRejected-wrapped: %v", err1)
			}
			return
		}
		j1, _ := json.Marshal(req1)
		j2, _ := json.Marshal(req2)
		if string(j1) != string(j2) {
			t.Fatalf("nondeterministic decode:\n first %s\nsecond %s", j1, j2)
		}
		if len(req1.Features) == 0 && len(req1.Remove) == 0 {
			t.Fatal("accepted request is empty")
		}
		seen := make(map[string]bool, len(req1.Features))
		for _, feat := range req1.Features {
			if feat == nil {
				t.Fatal("accepted request carries a nil feature")
			}
			if err := feat.Validate(); err != nil {
				t.Fatalf("accepted feature invalid: %v", err)
			}
			if seen[feat.ID] {
				t.Fatalf("accepted request carries duplicate id %s", feat.ID)
			}
			seen[feat.ID] = true
		}
		// A request that decoded once must survive its own canonical
		// encoding: the journal and the replication stream re-marshal
		// features, so re-encoding must not turn acceptance into
		// rejection.
		reenc, err := json.Marshal(req1)
		if err != nil {
			t.Fatalf("accepted request does not marshal: %v", err)
		}
		if _, err := DecodePublishRequest(reenc); err != nil {
			t.Fatalf("round-tripped request rejected: %v", err)
		}
	})
}
