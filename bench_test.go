package metamess

// The root benchmark suite regenerates every exhibit of the poster, one
// benchmark per table/figure (plus the DESIGN.md ablations). Each bench
// prints its experiment table once, then times repeated runs, so
//
//	go test -bench=. -benchmem
//
// both reproduces the paper's exhibits and measures the system.

import (
	"sync"
	"testing"

	"metamess/internal/experiments"
)

// benchSizes keeps the bench suite fast enough for CI while large enough
// that the shapes (who wins, by what factor) are stable.
const (
	benchDatasets = 45
	benchQueries  = 25
	benchSeed     = 42
)

var printOnce sync.Map

func report(b *testing.B, tab *experiments.Table) {
	b.Helper()
	if _, done := printOnce.LoadOrStore(tab.ID, true); !done {
		b.Log("\n" + tab.String())
	}
}

// BenchmarkTable1SemanticDiversity regenerates the poster's Table 1:
// categories of semantic diversity, detection quality, and resolution
// success per category.
func BenchmarkTable1SemanticDiversity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Table1SemanticDiversity(b.TempDir(), benchDatasets, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		report(b, tab)
	}
}

// BenchmarkFigure1RankedSearch regenerates the "Data Near Here" search
// figure: retrieval quality and latency, raw vs wrangled catalog.
func BenchmarkFigure1RankedSearch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Figure1RankedSearch(b.TempDir(), b.TempDir(),
			benchDatasets, benchQueries, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		report(b, tab)
	}
}

// BenchmarkFigure2CatalogBuild regenerates the IR-architecture figure:
// scan-once summarization throughput and feature compression ratio.
func BenchmarkFigure2CatalogBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Figure2CatalogBuild(
			[]string{b.TempDir(), b.TempDir(), b.TempDir()},
			[]int{15, 45, 90}, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		report(b, tab)
	}
}

// BenchmarkFigure3WranglingChain regenerates the wrangling-process
// figure: per-stage mess reduction and incremental rerun cost.
func BenchmarkFigure3WranglingChain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Figure3WranglingChain(b.TempDir(), benchDatasets, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		report(b, tab)
	}
}

// BenchmarkFigure4Discovery regenerates the Google-Refine figure:
// transformation discovery precision/recall per method per mess level,
// and rule replay fidelity.
func BenchmarkFigure4Discovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Figure4Discovery(
			[]string{b.TempDir(), b.TempDir(), b.TempDir()},
			[]float64{0.5, 1.0, 2.0}, benchDatasets, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		report(b, tab)
	}
}

// BenchmarkFigure5DatasetSummary regenerates the dataset-summary-page
// figure: completeness audit of every rendered page.
func BenchmarkFigure5DatasetSummary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Figure5DatasetSummary(b.TempDir(), benchDatasets, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		report(b, tab)
	}
}

// BenchmarkAblationCuratorLoop measures curatorial activity 3: coverage
// convergence across improve-and-rerun iterations.
func BenchmarkAblationCuratorLoop(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.AblationCuratorLoop(b.TempDir(), benchDatasets, benchSeed, 5)
		if err != nil {
			b.Fatal(err)
		}
		report(b, tab)
	}
}

// BenchmarkAblationValidation measures curatorial activity 4: fault
// injection against the validation checks.
func BenchmarkAblationValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.AblationValidation(b.TempDir(), benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		report(b, tab)
	}
}

// BenchmarkAblationScoring measures the contribution of each query
// dimension to ranking quality.
func BenchmarkAblationScoring(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.AblationScoring(b.TempDir(), benchDatasets, benchQueries, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		report(b, tab)
	}
}
