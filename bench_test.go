package metamess

// The root benchmark suite regenerates every exhibit of the poster, one
// benchmark per table/figure (plus the DESIGN.md ablations). Each bench
// prints its experiment table once, then times repeated runs, so
//
//	go test -bench=. -benchmem
//
// both reproduces the paper's exhibits and measures the system.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"metamess/internal/archive"
	"metamess/internal/catalog"
	"metamess/internal/experiments"
	"metamess/internal/geo"
	"metamess/internal/search"
)

// benchSizes keeps the bench suite fast enough for CI while large enough
// that the shapes (who wins, by what factor) are stable.
const (
	benchDatasets = 45
	benchQueries  = 25
	benchSeed     = 42
)

var printOnce sync.Map

func report(b *testing.B, tab *experiments.Table) {
	b.Helper()
	if _, done := printOnce.LoadOrStore(tab.ID, true); !done {
		b.Log("\n" + tab.String())
	}
}

// BenchmarkTable1SemanticDiversity regenerates the poster's Table 1:
// categories of semantic diversity, detection quality, and resolution
// success per category.
func BenchmarkTable1SemanticDiversity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Table1SemanticDiversity(b.TempDir(), benchDatasets, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		report(b, tab)
	}
}

// BenchmarkFigure1RankedSearch regenerates the "Data Near Here" search
// figure: retrieval quality and latency, raw vs wrangled catalog.
func BenchmarkFigure1RankedSearch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Figure1RankedSearch(b.TempDir(), b.TempDir(),
			benchDatasets, benchQueries, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		report(b, tab)
	}
}

// BenchmarkFigure2CatalogBuild regenerates the IR-architecture figure:
// scan-once summarization throughput and feature compression ratio.
func BenchmarkFigure2CatalogBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Figure2CatalogBuild(
			[]string{b.TempDir(), b.TempDir(), b.TempDir()},
			[]int{15, 45, 90}, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		report(b, tab)
	}
}

// BenchmarkFigure3WranglingChain regenerates the wrangling-process
// figure: per-stage mess reduction and incremental rerun cost.
func BenchmarkFigure3WranglingChain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Figure3WranglingChain(b.TempDir(), benchDatasets, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		report(b, tab)
	}
}

// BenchmarkFigure4Discovery regenerates the Google-Refine figure:
// transformation discovery precision/recall per method per mess level,
// and rule replay fidelity.
func BenchmarkFigure4Discovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Figure4Discovery(
			[]string{b.TempDir(), b.TempDir(), b.TempDir()},
			[]float64{0.5, 1.0, 2.0}, benchDatasets, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		report(b, tab)
	}
}

// BenchmarkFigure5DatasetSummary regenerates the dataset-summary-page
// figure: completeness audit of every rendered page.
func BenchmarkFigure5DatasetSummary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Figure5DatasetSummary(b.TempDir(), benchDatasets, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		report(b, tab)
	}
}

// BenchmarkAblationCuratorLoop measures curatorial activity 3: coverage
// convergence across improve-and-rerun iterations.
func BenchmarkAblationCuratorLoop(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.AblationCuratorLoop(b.TempDir(), benchDatasets, benchSeed, 5)
		if err != nil {
			b.Fatal(err)
		}
		report(b, tab)
	}
}

// BenchmarkAblationValidation measures curatorial activity 4: fault
// injection against the validation checks.
func BenchmarkAblationValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.AblationValidation(b.TempDir(), benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		report(b, tab)
	}
}

// BenchmarkAblationScoring measures the contribution of each query
// dimension to ranking quality.
func BenchmarkAblationScoring(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.AblationScoring(b.TempDir(), benchDatasets, benchQueries, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		report(b, tab)
	}
}

// BenchmarkWrangleWarm measures the delta-aware write path on the
// 2000-dataset archive: a steady-state re-wrangle with ~1% of the
// archive churned per iteration, reported against the cold
// wrangle-everything baseline measured during setup. The results (and
// the empty-delta generation-stability check) are written to
// BENCH_wrangle.json for the CI bench-smoke gate.
func BenchmarkWrangleWarm(b *testing.B) {
	const (
		datasets   = 2000
		churnFiles = 20 // ~1%
	)
	root := b.TempDir()
	m, err := archive.Generate(root, archive.DefaultGenConfig(datasets, benchSeed))
	if err != nil {
		b.Fatal(err)
	}
	sys, err := New(Config{ArchiveRoot: root})
	if err != nil {
		b.Fatal(err)
	}
	coldStart := time.Now()
	if _, err := sys.Wrangle(); err != nil {
		b.Fatal(err)
	}
	coldNs := time.Since(coldStart).Nanoseconds()

	// Settle into steady state: wait out the racy-mtime window (files
	// were generated moments before the cold scan), let one warm run
	// hash-verify everything and refresh the scan stamps so later runs
	// trust stat fingerprints alone, then drive small churn rounds
	// until transformation discovery reaches its fixed point — each
	// newly discovered rule is a knowledge change that (correctly)
	// forces one full reprocess, and the steady state this benchmark
	// measures starts after the last of them.
	time.Sleep(3 * time.Second)
	if _, err := sys.Wrangle(); err != nil {
		b.Fatal(err)
	}
	settleChurn := filepath.Join(root, m.Datasets[0].Path)
	settled := false
	for tries := 0; tries < 8 && !settled; tries++ {
		appendDuplicateLastLine(b, settleChurn)
		rep, err := sys.Wrangle()
		if err != nil {
			b.Fatal(err)
		}
		settled = !rep.Delta.FullReprocess
	}
	if !settled {
		b.Fatal("wrangling never settled into incremental steady state")
	}

	// Acceptance check: an empty-delta re-wrangle must not move the
	// snapshot generation.
	genBefore := sys.SnapshotGeneration()
	noop, err := sys.Wrangle()
	if err != nil {
		b.Fatal(err)
	}
	generationStable := noop.Delta.GenerationStable && sys.SnapshotGeneration() == genBefore
	if !generationStable {
		b.Errorf("empty-delta re-wrangle moved the generation: %+v", noop.Delta)
	}

	var obsPaths []string
	for _, d := range m.Datasets {
		if string(d.Format) == "obs" {
			obsPaths = append(obsPaths, d.Path)
		}
	}
	if len(obsPaths) < churnFiles {
		b.Fatalf("archive has only %d OBS datasets", len(obsPaths))
	}

	b.ResetTimer()
	churned := 0
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for k := 0; k < churnFiles; k++ {
			appendDuplicateLastLine(b, filepath.Join(root, obsPaths[churned%len(obsPaths)]))
			churned++
		}
		b.StartTimer()
		rep, err := sys.Wrangle()
		if err != nil {
			b.Fatal(err)
		}
		if rep.Delta.FullReprocess {
			b.Fatal("warm run fell back to full reprocess")
		}
	}
	b.StopTimer()
	warmNs := b.Elapsed().Nanoseconds() / int64(b.N)
	speedup := float64(coldNs) / float64(warmNs)
	b.ReportMetric(speedup, "cold/warm")

	report := map[string]any{
		"benchmark": "BenchmarkWrangleWarm",
		"description": fmt.Sprintf(
			"Write-path comparison on a %d-dataset generated archive: 'cold' is the first Wrangle (parse everything, full transform chain, snapshot build); 'warm' is a steady-state re-wrangle after ~1%% of the archive (%d OBS files) changed — the parallel scanner stat-skips the rest, delta-aware components process only the dirty features, and Publish patches the served snapshot incrementally. An empty-delta re-wrangle must leave SnapshotGeneration() unchanged (generation-keyed caches survive no-op re-wrangles).",
			datasets, churnFiles),
		"generatedAt": time.Now().UTC().Format(time.RFC3339),
		"environment": map[string]any{
			"goos":   runtime.GOOS,
			"goarch": runtime.GOARCH,
			"cpus":   runtime.NumCPU(),
			"iters":  b.N,
		},
		"datasets":                   datasets,
		"churnFilesPerIteration":     churnFiles,
		"coldNsPerOp":                coldNs,
		"warmNsPerOp":                warmNs,
		"speedup":                    speedup,
		"emptyDeltaGenerationStable": generationStable,
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_wrangle.json", append(data, '\n'), 0o644); err != nil {
		b.Logf("could not write BENCH_wrangle.json: %v", err)
	}
}

// BenchmarkWarmRestart measures what the durable store exists for: the
// restart path. Setup builds a settled durable deployment over the
// 2000-dataset archive (journal + checkpoint in a data directory) and
// measures the cold baseline — a fresh process wrangling the whole
// archive from scratch. Each iteration then churns ~1% of the archive
// and performs a warm restart: OpenDurable (checkpoint-replay +
// journal-replay) plus the delta-scoped reconciliation wrangle. The
// exhibit lands in BENCH_wrangle.json under "warmRestart" with the
// ≥3x acceptance flag the CI bench smoke greps.
func BenchmarkWarmRestart(b *testing.B) {
	const (
		datasets   = 2000
		churnFiles = 20 // ~1%
	)
	root := b.TempDir()
	dataDir := b.TempDir()
	m, err := archive.Generate(root, archive.DefaultGenConfig(datasets, benchSeed))
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{ArchiveRoot: root, DataDir: dataDir}
	sys, err := OpenDurable(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := sys.Wrangle(); err != nil {
		b.Fatal(err)
	}
	// Settle exactly like BenchmarkWrangleWarm: wait out the racy-mtime
	// window, refresh scan stamps, and churn until rule discovery stops
	// forcing full reprocesses.
	time.Sleep(3 * time.Second)
	if _, err := sys.Wrangle(); err != nil {
		b.Fatal(err)
	}
	settleChurn := filepath.Join(root, m.Datasets[0].Path)
	settled := false
	for tries := 0; tries < 8 && !settled; tries++ {
		appendDuplicateLastLine(b, settleChurn)
		rep, err := sys.Wrangle()
		if err != nil {
			b.Fatal(err)
		}
		settled = !rep.Delta.FullReprocess
	}
	if !settled {
		b.Fatal("durable system never settled into incremental steady state")
	}
	// Fold the settle history into a checkpoint so the measured restarts
	// replay a realistic checkpoint + small journal, then "crash".
	if _, err := sys.CompactIfNeeded(); err != nil {
		b.Fatal(err)
	}
	if err := sys.Close(); err != nil {
		b.Fatal(err)
	}

	// Cold baseline: what every restart cost before the journal existed.
	coldStart := time.Now()
	coldSys, err := New(Config{ArchiveRoot: root})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := coldSys.Wrangle(); err != nil {
		b.Fatal(err)
	}
	coldNs := time.Since(coldStart).Nanoseconds()

	var obsPaths []string
	for _, d := range m.Datasets {
		if string(d.Format) == "obs" {
			obsPaths = append(obsPaths, d.Path)
		}
	}
	if len(obsPaths) < churnFiles {
		b.Fatalf("archive has only %d OBS datasets", len(obsPaths))
	}

	b.ResetTimer()
	churned := 0
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for k := 0; k < churnFiles; k++ {
			appendDuplicateLastLine(b, filepath.Join(root, obsPaths[churned%len(obsPaths)]))
			churned++
		}
		b.StartTimer()
		wsys, err := OpenDurable(cfg)
		if err != nil {
			b.Fatal(err)
		}
		rep, err := wsys.Wrangle()
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if rep.Delta.FullReprocess {
			b.Fatal("warm restart fell back to full reprocess")
		}
		if rep.Delta.Changed == 0 {
			b.Fatal("warm restart saw no churn; the harness is broken")
		}
		// Housekeeping outside the timed region, as the daemon's
		// background compactor would do it: keep the journal bounded so
		// iteration N does not replay N publishes.
		if _, err := wsys.CompactIfNeeded(); err != nil {
			b.Fatal(err)
		}
		if err := wsys.Close(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
	b.StopTimer()
	warmNs := b.Elapsed().Nanoseconds() / int64(b.N)
	speedup := float64(coldNs) / float64(warmNs)
	b.ReportMetric(speedup, "cold/warm")

	mergeBenchJSON(b, "BENCH_wrangle.json", "warmRestart", map[string]any{
		"benchmark": "BenchmarkWarmRestart",
		"description": fmt.Sprintf(
			"Restart cost on a %d-dataset archive with ~1%%%% churn (%d OBS files) per restart: 'cold' is a fresh process wrangling the whole archive from scratch (the only restart path before the durable store); 'warm' is OpenDurable — checkpoint-replay + journal-replay restoring the published catalog, its generation, and the knowledge-epoch sidecar — followed by the delta-scoped reconciliation wrangle against the live archive. The acceptance gate requires warm ≥ 3x faster than cold.",
			datasets, churnFiles),
		"generatedAt": time.Now().UTC().Format(time.RFC3339),
		"environment": map[string]any{
			"goos":   runtime.GOOS,
			"goarch": runtime.GOARCH,
			"cpus":   runtime.NumCPU(),
			"iters":  b.N,
		},
		"datasets":             datasets,
		"churnFilesPerRestart": churnFiles,
		"coldRestartNsPerOp":   coldNs,
		"warmRestartNsPerOp":   warmNs,
		"speedup":              speedup,
		"warmAtLeast3xFaster":  speedup >= 3,
	})
	if speedup < 3 {
		b.Errorf("warm restart only %.2fx faster than cold re-wrangle, want >= 3x", speedup)
	}
}

// snapshotBenchCatalog builds a deterministic synthetic catalog large
// enough that the read-path shapes (indexed vs. linear, worker
// scaling) are stable.
func snapshotBenchCatalog(b *testing.B, n, shards int) *catalog.Catalog {
	b.Helper()
	c := catalog.NewSharded(shards)
	for i := 0; i < n; i++ {
		if err := c.Upsert(benchFeature(i, 0)); err != nil {
			b.Fatal(err)
		}
	}
	// Pre-build the snapshot so the publish cost stays out of the
	// per-query timings, as it does in the serving system.
	c.Snapshot()
	return c
}

// benchFeature fabricates the i-th deterministic bench feature; version
// perturbs its content (value ranges, temporal extent) without changing
// the identity, modelling an edited file for the publish benchmarks.
func benchFeature(i, version int) *catalog.Feature {
	names := []string{"water_temperature", "salinity", "turbidity", "dissolved_oxygen", "nitrate", "ph"}
	base := time.Date(2008, 1, 1, 0, 0, 0, 0, time.UTC)
	lat := 42 + float64(i%500)*0.02
	lon := -127 + float64((i*7)%600)*0.02
	path := fmt.Sprintf("bench/%04d.obs", i)
	return &catalog.Feature{
		ID:     catalog.IDForPath(path),
		Path:   path,
		Source: "stations",
		Format: "obs",
		BBox: geo.BBox{
			MinLat: lat - 0.01, MinLon: lon - 0.01,
			MaxLat: lat + 0.01, MaxLon: lon + 0.01,
		},
		Time: geo.NewTimeRange(
			base.AddDate(0, 0, (i+version)%1500),
			base.AddDate(0, 0, (i+version)%1500+14)),
		RowCount: 100 + version,
		Variables: []catalog.VarFeature{
			{RawName: names[i%len(names)], Name: names[i%len(names)],
				Range: geo.NewValueRange(float64(version), 30), Count: 100},
			{RawName: names[(i+1)%len(names)], Name: names[(i+1)%len(names)],
				Range: geo.NewValueRange(0, 30), Count: 100},
		},
	}
}

// BenchmarkSnapshotSearch measures the snapshot read path: the indexed
// planner vs. the linear-scan ablation at 1/4/8 workers, plus the
// seed's copy-per-search behavior (deep-copying the catalog before
// every scan) for reference. Results are recorded in BENCH_search.json.
func BenchmarkSnapshotSearch(b *testing.B) {
	const n = 5000
	c := snapshotBenchCatalog(b, n, 1)
	loc := geo.Point{Lat: 45.5, Lon: -124.4}
	tr := geo.NewTimeRange(
		time.Date(2010, 5, 1, 0, 0, 0, 0, time.UTC),
		time.Date(2010, 8, 1, 0, 0, 0, 0, time.UTC))
	vr := geo.NewValueRange(5, 10)
	q := search.Query{
		Location: &loc,
		Time:     &tr,
		Terms:    []search.Term{{Name: "salinity", Range: &vr}},
	}
	run := func(name string, opts search.Options) {
		b.Run(name, func(b *testing.B) {
			s := search.New(c, opts)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Search(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, w := range []int{1, 4, 8} {
		opts := search.DefaultOptions()
		opts.Workers = w
		run(fmt.Sprintf("indexed-%dw", w), opts)
	}
	for _, w := range []int{1, 4, 8} {
		opts := search.DefaultOptions()
		opts.UseIndex = false
		opts.Workers = w
		run(fmt.Sprintf("linear-%dw", w), opts)
	}
	b.Run("seed-copy-per-search", func(b *testing.B) {
		opts := search.DefaultOptions()
		opts.UseIndex = false
		opts.Workers = 1
		s := search.New(c, opts)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// The seed cloned every feature on each search (All());
			// reproduce that cost on top of the scan.
			_ = c.All()
			if _, err := s.Search(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// mergeBenchJSON read-modify-writes one top-level key into a bench
// exhibit file, preserving whatever earlier benchmarks recorded there
// (BenchmarkWrangleWarm owns the rest of BENCH_wrangle.json, the PR 1
// snapshot-search results the rest of BENCH_search.json).
func mergeBenchJSON(b *testing.B, path, key string, value any) {
	b.Helper()
	doc := map[string]any{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &doc); err != nil {
			b.Logf("could not parse %s (rewriting): %v", path, err)
			doc = map[string]any{}
		}
	}
	doc[key] = value
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		b.Logf("could not write %s: %v", path, err)
	}
}

// BenchmarkShardedSearch measures the scatter-gather read path at 1, 4,
// and 8 snapshot shards over the 5000-feature synthetic catalog, with
// one search worker per shard. Before timing, each shard count's
// ranking is checked byte-identical to the 1-shard baseline (the
// property TestShardedSearchMatchesSingleShard fuzzes at scale).
// Results extend BENCH_search.json under "sharded".
func BenchmarkShardedSearch(b *testing.B) {
	const n = 5000
	loc := geo.Point{Lat: 45.5, Lon: -124.4}
	tr := geo.NewTimeRange(
		time.Date(2010, 5, 1, 0, 0, 0, 0, time.UTC),
		time.Date(2010, 8, 1, 0, 0, 0, 0, time.UTC))
	vr := geo.NewValueRange(5, 10)
	q := search.Query{
		Location: &loc,
		Time:     &tr,
		Terms:    []search.Term{{Name: "salinity", Range: &vr}},
	}

	baseOpts := search.DefaultOptions()
	baseOpts.Workers = 1
	baseline, err := search.New(snapshotBenchCatalog(b, n, 1), baseOpts).Search(q)
	if err != nil {
		b.Fatal(err)
	}

	entryBy := map[int]map[string]any{} // keyed by shard count: reruns overwrite their calibration pass
	var order []int
	for _, sc := range []int{1, 4, 8} {
		order = append(order, sc)
		c := snapshotBenchCatalog(b, n, sc)
		opts := search.DefaultOptions()
		opts.Workers = sc
		s := search.New(c, opts)
		got, err := s.Search(q)
		if err != nil {
			b.Fatal(err)
		}
		if len(got) != len(baseline) {
			b.Fatalf("shards=%d returned %d results, baseline %d", sc, len(got), len(baseline))
		}
		for i := range got {
			if got[i].Feature.ID != baseline[i].Feature.ID || got[i].Score != baseline[i].Score {
				b.Fatalf("shards=%d rank %d diverges from 1-shard baseline", sc, i)
			}
		}
		b.Run(fmt.Sprintf("shards-%d", sc), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Search(q); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			entryBy[sc] = map[string]any{
				"shards":  sc,
				"workers": sc,
				"nsPerOp": b.Elapsed().Nanoseconds() / int64(b.N),
			}
		})
	}
	var entries []map[string]any
	for _, sc := range order {
		if entryBy[sc] != nil { // a -bench filter may skip sub-benchmarks
			entries = append(entries, entryBy[sc])
		}
	}
	mergeBenchJSON(b, "BENCH_search.json", "sharded", map[string]any{
		"benchmark": "BenchmarkShardedSearch",
		"description": fmt.Sprintf(
			"Scatter-gather search over a %d-feature catalog partitioned into N snapshot shards (one worker per shard, each running the full candidate-tier planner over its shard before a single merge heap gathers per-shard top-Ks). Rankings are byte-identical across shard counts — asserted here against the 1-shard baseline and fuzzed by TestShardedSearchMatchesSingleShard. On a single-CPU host the multi-shard numbers measure scatter overhead, not scaling.", n),
		"generatedAt": time.Now().UTC().Format(time.RFC3339),
		"environment": map[string]any{
			"goos": runtime.GOOS, "goarch": runtime.GOARCH, "cpus": runtime.NumCPU(),
		},
		"results": entries,
	})
}

// BenchmarkShardedPublish measures what the sharded snapshot exists
// for on the write path: a ~1% churn publish (20 changed features out
// of 2000) through ApplyDelta, at 1, 8, and 32 shards. Per iteration
// the benchmark counts, by pointer identity, how many shards of the
// successor snapshot were patched vs shared with the predecessor; with
// 32 shards and 20 changed features at least 12 shards are provably
// clean every round, and the run fails if any clean count comes back
// zero. Results extend BENCH_wrangle.json under "shardedPublish".
func BenchmarkShardedPublish(b *testing.B) {
	const (
		n     = 2000
		churn = 20 // ~1%
	)
	entryBy := map[int]map[string]any{}
	var order []int
	for _, sc := range []int{1, 8, 32} {
		order = append(order, sc)
		c := snapshotBenchCatalog(b, n, sc)
		b.Run(fmt.Sprintf("shards-%d", sc), func(b *testing.B) {
			prev := c.Snapshot()
			patched, shared := 0, 0
			version := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				version++
				changed := make([]*catalog.Feature, churn)
				for k := range changed {
					changed[k] = benchFeature((i*churn+k)%n, version)
				}
				sort.Slice(changed, func(a, z int) bool { return changed[a].ID < changed[z].ID })
				b.StartTimer()
				if _, err := c.ApplyDelta(changed, nil); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				next := c.Snapshot()
				for si, sh := range next.Shards() {
					if sh == prev.Shards()[si] {
						shared++
					} else {
						patched++
					}
				}
				prev = next
				b.StartTimer()
			}
			b.StopTimer()
			// Pigeonhole floor: churn features can dirty at most churn
			// shards, so every publish must share at least sc-churn clean
			// shards; anything less means clean shards are being patched.
			if sc > churn && shared < (sc-churn)*b.N {
				b.Fatalf("shards=%d churn=%d: only %d clean shards shared over %d publishes, want ≥ %d",
					sc, churn, shared, b.N, (sc-churn)*b.N)
			}
			dirtyPerOp := float64(patched) / float64(b.N)
			b.ReportMetric(dirtyPerOp, "dirtyShards/op")
			entryBy[sc] = map[string]any{
				"shards":           sc,
				"churnFeatures":    churn,
				"nsPerOp":          b.Elapsed().Nanoseconds() / int64(b.N),
				"dirtyShardsPerOp": dirtyPerOp,
				"cleanShardsPerOp": float64(shared) / float64(b.N),
			}
		})
	}
	var entries []map[string]any
	for _, sc := range order {
		if entryBy[sc] != nil { // a -bench filter may skip sub-benchmarks
			entries = append(entries, entryBy[sc])
		}
	}
	mergeBenchJSON(b, "BENCH_wrangle.json", "shardedPublish", map[string]any{
		"benchmark": "BenchmarkShardedPublish",
		"description": fmt.Sprintf(
			"Incremental publish of a ~1%%%% churn delta (%d of %d features) into an N-shard snapshot via ApplyDelta. The delta routes to shards by feature-ID hash; clean shards are shared with the predecessor snapshot by pointer (counted per iteration, asserted non-zero whenever shards > churn), so patch cost tracks the dirty shards' index size, not the catalog's.", churn, n),
		"generatedAt": time.Now().UTC().Format(time.RFC3339),
		"environment": map[string]any{
			"goos": runtime.GOOS, "goarch": runtime.GOARCH, "cpus": runtime.NumCPU(),
		},
		"results": entries,
	})
}
