package metamess

// The root benchmark suite regenerates every exhibit of the poster, one
// benchmark per table/figure (plus the DESIGN.md ablations). Each bench
// prints its experiment table once, then times repeated runs, so
//
//	go test -bench=. -benchmem
//
// both reproduces the paper's exhibits and measures the system.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"metamess/internal/archive"
	"metamess/internal/catalog"
	"metamess/internal/experiments"
	"metamess/internal/geo"
	"metamess/internal/search"
)

// benchSizes keeps the bench suite fast enough for CI while large enough
// that the shapes (who wins, by what factor) are stable.
const (
	benchDatasets = 45
	benchQueries  = 25
	benchSeed     = 42
)

var printOnce sync.Map

func report(b *testing.B, tab *experiments.Table) {
	b.Helper()
	if _, done := printOnce.LoadOrStore(tab.ID, true); !done {
		b.Log("\n" + tab.String())
	}
}

// BenchmarkTable1SemanticDiversity regenerates the poster's Table 1:
// categories of semantic diversity, detection quality, and resolution
// success per category.
func BenchmarkTable1SemanticDiversity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Table1SemanticDiversity(b.TempDir(), benchDatasets, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		report(b, tab)
	}
}

// BenchmarkFigure1RankedSearch regenerates the "Data Near Here" search
// figure: retrieval quality and latency, raw vs wrangled catalog.
func BenchmarkFigure1RankedSearch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Figure1RankedSearch(b.TempDir(), b.TempDir(),
			benchDatasets, benchQueries, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		report(b, tab)
	}
}

// BenchmarkFigure2CatalogBuild regenerates the IR-architecture figure:
// scan-once summarization throughput and feature compression ratio.
func BenchmarkFigure2CatalogBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Figure2CatalogBuild(
			[]string{b.TempDir(), b.TempDir(), b.TempDir()},
			[]int{15, 45, 90}, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		report(b, tab)
	}
}

// BenchmarkFigure3WranglingChain regenerates the wrangling-process
// figure: per-stage mess reduction and incremental rerun cost.
func BenchmarkFigure3WranglingChain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Figure3WranglingChain(b.TempDir(), benchDatasets, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		report(b, tab)
	}
}

// BenchmarkFigure4Discovery regenerates the Google-Refine figure:
// transformation discovery precision/recall per method per mess level,
// and rule replay fidelity.
func BenchmarkFigure4Discovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Figure4Discovery(
			[]string{b.TempDir(), b.TempDir(), b.TempDir()},
			[]float64{0.5, 1.0, 2.0}, benchDatasets, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		report(b, tab)
	}
}

// BenchmarkFigure5DatasetSummary regenerates the dataset-summary-page
// figure: completeness audit of every rendered page.
func BenchmarkFigure5DatasetSummary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Figure5DatasetSummary(b.TempDir(), benchDatasets, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		report(b, tab)
	}
}

// BenchmarkAblationCuratorLoop measures curatorial activity 3: coverage
// convergence across improve-and-rerun iterations.
func BenchmarkAblationCuratorLoop(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.AblationCuratorLoop(b.TempDir(), benchDatasets, benchSeed, 5)
		if err != nil {
			b.Fatal(err)
		}
		report(b, tab)
	}
}

// BenchmarkAblationValidation measures curatorial activity 4: fault
// injection against the validation checks.
func BenchmarkAblationValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.AblationValidation(b.TempDir(), benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		report(b, tab)
	}
}

// BenchmarkAblationScoring measures the contribution of each query
// dimension to ranking quality.
func BenchmarkAblationScoring(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.AblationScoring(b.TempDir(), benchDatasets, benchQueries, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		report(b, tab)
	}
}

// BenchmarkWrangleWarm measures the delta-aware write path on the
// 2000-dataset archive: a steady-state re-wrangle with ~1% of the
// archive churned per iteration, reported against the cold
// wrangle-everything baseline measured during setup. The results (and
// the empty-delta generation-stability check) are written to
// BENCH_wrangle.json for the CI bench-smoke gate.
func BenchmarkWrangleWarm(b *testing.B) {
	const (
		datasets   = 2000
		churnFiles = 20 // ~1%
	)
	root := b.TempDir()
	m, err := archive.Generate(root, archive.DefaultGenConfig(datasets, benchSeed))
	if err != nil {
		b.Fatal(err)
	}
	sys, err := New(Config{ArchiveRoot: root})
	if err != nil {
		b.Fatal(err)
	}
	coldStart := time.Now()
	if _, err := sys.Wrangle(); err != nil {
		b.Fatal(err)
	}
	coldNs := time.Since(coldStart).Nanoseconds()

	// Settle into steady state: wait out the racy-mtime window (files
	// were generated moments before the cold scan), let one warm run
	// hash-verify everything and refresh the scan stamps so later runs
	// trust stat fingerprints alone, then drive small churn rounds
	// until transformation discovery reaches its fixed point — each
	// newly discovered rule is a knowledge change that (correctly)
	// forces one full reprocess, and the steady state this benchmark
	// measures starts after the last of them.
	time.Sleep(3 * time.Second)
	if _, err := sys.Wrangle(); err != nil {
		b.Fatal(err)
	}
	settleChurn := filepath.Join(root, m.Datasets[0].Path)
	settled := false
	for tries := 0; tries < 8 && !settled; tries++ {
		appendDuplicateLastLine(b, settleChurn)
		rep, err := sys.Wrangle()
		if err != nil {
			b.Fatal(err)
		}
		settled = !rep.Delta.FullReprocess
	}
	if !settled {
		b.Fatal("wrangling never settled into incremental steady state")
	}

	// Acceptance check: an empty-delta re-wrangle must not move the
	// snapshot generation.
	genBefore := sys.SnapshotGeneration()
	noop, err := sys.Wrangle()
	if err != nil {
		b.Fatal(err)
	}
	generationStable := noop.Delta.GenerationStable && sys.SnapshotGeneration() == genBefore
	if !generationStable {
		b.Errorf("empty-delta re-wrangle moved the generation: %+v", noop.Delta)
	}

	var obsPaths []string
	for _, d := range m.Datasets {
		if string(d.Format) == "obs" {
			obsPaths = append(obsPaths, d.Path)
		}
	}
	if len(obsPaths) < churnFiles {
		b.Fatalf("archive has only %d OBS datasets", len(obsPaths))
	}

	b.ResetTimer()
	churned := 0
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for k := 0; k < churnFiles; k++ {
			appendDuplicateLastLine(b, filepath.Join(root, obsPaths[churned%len(obsPaths)]))
			churned++
		}
		b.StartTimer()
		rep, err := sys.Wrangle()
		if err != nil {
			b.Fatal(err)
		}
		if rep.Delta.FullReprocess {
			b.Fatal("warm run fell back to full reprocess")
		}
	}
	b.StopTimer()
	warmNs := b.Elapsed().Nanoseconds() / int64(b.N)
	speedup := float64(coldNs) / float64(warmNs)
	b.ReportMetric(speedup, "cold/warm")

	report := map[string]any{
		"benchmark": "BenchmarkWrangleWarm",
		"description": fmt.Sprintf(
			"Write-path comparison on a %d-dataset generated archive: 'cold' is the first Wrangle (parse everything, full transform chain, snapshot build); 'warm' is a steady-state re-wrangle after ~1%% of the archive (%d OBS files) changed — the parallel scanner stat-skips the rest, delta-aware components process only the dirty features, and Publish patches the served snapshot incrementally. An empty-delta re-wrangle must leave SnapshotGeneration() unchanged (generation-keyed caches survive no-op re-wrangles).",
			datasets, churnFiles),
		"generatedAt": time.Now().UTC().Format(time.RFC3339),
		"environment": map[string]any{
			"goos":   runtime.GOOS,
			"goarch": runtime.GOARCH,
			"cpus":   runtime.NumCPU(),
			"iters":  b.N,
		},
		"datasets":                   datasets,
		"churnFilesPerIteration":     churnFiles,
		"coldNsPerOp":                coldNs,
		"warmNsPerOp":                warmNs,
		"speedup":                    speedup,
		"emptyDeltaGenerationStable": generationStable,
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_wrangle.json", append(data, '\n'), 0o644); err != nil {
		b.Logf("could not write BENCH_wrangle.json: %v", err)
	}
}

// snapshotBenchCatalog builds a deterministic synthetic catalog large
// enough that the read-path shapes (indexed vs. linear, worker
// scaling) are stable.
func snapshotBenchCatalog(b *testing.B, n int) *catalog.Catalog {
	b.Helper()
	names := []string{"water_temperature", "salinity", "turbidity", "dissolved_oxygen", "nitrate", "ph"}
	base := time.Date(2008, 1, 1, 0, 0, 0, 0, time.UTC)
	c := catalog.New()
	for i := 0; i < n; i++ {
		lat := 42 + float64(i%500)*0.02
		lon := -127 + float64((i*7)%600)*0.02
		path := fmt.Sprintf("bench/%04d.obs", i)
		f := &catalog.Feature{
			ID:     catalog.IDForPath(path),
			Path:   path,
			Source: "stations",
			Format: "obs",
			BBox: geo.BBox{
				MinLat: lat - 0.01, MinLon: lon - 0.01,
				MaxLat: lat + 0.01, MaxLon: lon + 0.01,
			},
			Time: geo.NewTimeRange(
				base.AddDate(0, 0, i%1500),
				base.AddDate(0, 0, i%1500+14)),
			Variables: []catalog.VarFeature{
				{RawName: names[i%len(names)], Name: names[i%len(names)],
					Range: geo.NewValueRange(0, 30), Count: 100},
				{RawName: names[(i+1)%len(names)], Name: names[(i+1)%len(names)],
					Range: geo.NewValueRange(0, 30), Count: 100},
			},
		}
		if err := c.Upsert(f); err != nil {
			b.Fatal(err)
		}
	}
	// Pre-build the snapshot so the publish cost stays out of the
	// per-query timings, as it does in the serving system.
	c.Snapshot()
	return c
}

// BenchmarkSnapshotSearch measures the snapshot read path: the indexed
// planner vs. the linear-scan ablation at 1/4/8 workers, plus the
// seed's copy-per-search behavior (deep-copying the catalog before
// every scan) for reference. Results are recorded in BENCH_search.json.
func BenchmarkSnapshotSearch(b *testing.B) {
	const n = 5000
	c := snapshotBenchCatalog(b, n)
	loc := geo.Point{Lat: 45.5, Lon: -124.4}
	tr := geo.NewTimeRange(
		time.Date(2010, 5, 1, 0, 0, 0, 0, time.UTC),
		time.Date(2010, 8, 1, 0, 0, 0, 0, time.UTC))
	vr := geo.NewValueRange(5, 10)
	q := search.Query{
		Location: &loc,
		Time:     &tr,
		Terms:    []search.Term{{Name: "salinity", Range: &vr}},
	}
	run := func(name string, opts search.Options) {
		b.Run(name, func(b *testing.B) {
			s := search.New(c, opts)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Search(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, w := range []int{1, 4, 8} {
		opts := search.DefaultOptions()
		opts.Workers = w
		run(fmt.Sprintf("indexed-%dw", w), opts)
	}
	for _, w := range []int{1, 4, 8} {
		opts := search.DefaultOptions()
		opts.UseIndex = false
		opts.Workers = w
		run(fmt.Sprintf("linear-%dw", w), opts)
	}
	b.Run("seed-copy-per-search", func(b *testing.B) {
		opts := search.DefaultOptions()
		opts.UseIndex = false
		opts.Workers = 1
		s := search.New(c, opts)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// The seed cloned every feature on each search (All());
			// reproduce that cost on top of the scan.
			_ = c.All()
			if _, err := s.Search(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}
