package metamess

// The root benchmark suite regenerates every exhibit of the poster, one
// benchmark per table/figure (plus the DESIGN.md ablations). Each bench
// prints its experiment table once, then times repeated runs, so
//
//	go test -bench=. -benchmem
//
// both reproduces the paper's exhibits and measures the system.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"metamess/internal/archive"
	"metamess/internal/catalog"
	"metamess/internal/experiments"
	"metamess/internal/geo"
	"metamess/internal/scan"
	"metamess/internal/search"
)

// benchSizes keeps the bench suite fast enough for CI while large enough
// that the shapes (who wins, by what factor) are stable.
const (
	benchDatasets = 45
	benchQueries  = 25
	benchSeed     = 42
)

var printOnce sync.Map

func report(b *testing.B, tab *experiments.Table) {
	b.Helper()
	if _, done := printOnce.LoadOrStore(tab.ID, true); !done {
		b.Log("\n" + tab.String())
	}
}

// BenchmarkTable1SemanticDiversity regenerates the poster's Table 1:
// categories of semantic diversity, detection quality, and resolution
// success per category.
func BenchmarkTable1SemanticDiversity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Table1SemanticDiversity(b.TempDir(), benchDatasets, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		report(b, tab)
	}
}

// BenchmarkFigure1RankedSearch regenerates the "Data Near Here" search
// figure: retrieval quality and latency, raw vs wrangled catalog.
func BenchmarkFigure1RankedSearch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Figure1RankedSearch(b.TempDir(), b.TempDir(),
			benchDatasets, benchQueries, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		report(b, tab)
	}
}

// BenchmarkFigure2CatalogBuild regenerates the IR-architecture figure:
// scan-once summarization throughput and feature compression ratio.
func BenchmarkFigure2CatalogBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Figure2CatalogBuild(
			[]string{b.TempDir(), b.TempDir(), b.TempDir()},
			[]int{15, 45, 90}, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		report(b, tab)
	}
}

// BenchmarkFigure3WranglingChain regenerates the wrangling-process
// figure: per-stage mess reduction and incremental rerun cost.
func BenchmarkFigure3WranglingChain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Figure3WranglingChain(b.TempDir(), benchDatasets, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		report(b, tab)
	}
}

// BenchmarkFigure4Discovery regenerates the Google-Refine figure:
// transformation discovery precision/recall per method per mess level,
// and rule replay fidelity.
func BenchmarkFigure4Discovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Figure4Discovery(
			[]string{b.TempDir(), b.TempDir(), b.TempDir()},
			[]float64{0.5, 1.0, 2.0}, benchDatasets, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		report(b, tab)
	}
}

// BenchmarkFigure5DatasetSummary regenerates the dataset-summary-page
// figure: completeness audit of every rendered page.
func BenchmarkFigure5DatasetSummary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Figure5DatasetSummary(b.TempDir(), benchDatasets, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		report(b, tab)
	}
}

// BenchmarkAblationCuratorLoop measures curatorial activity 3: coverage
// convergence across improve-and-rerun iterations.
func BenchmarkAblationCuratorLoop(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.AblationCuratorLoop(b.TempDir(), benchDatasets, benchSeed, 5)
		if err != nil {
			b.Fatal(err)
		}
		report(b, tab)
	}
}

// BenchmarkAblationValidation measures curatorial activity 4: fault
// injection against the validation checks.
func BenchmarkAblationValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.AblationValidation(b.TempDir(), benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		report(b, tab)
	}
}

// BenchmarkAblationScoring measures the contribution of each query
// dimension to ranking quality.
func BenchmarkAblationScoring(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.AblationScoring(b.TempDir(), benchDatasets, benchQueries, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		report(b, tab)
	}
}

// BenchmarkWrangleWarm measures the delta-aware write path on the
// 2000-dataset archive: a steady-state re-wrangle with ~1% of the
// archive churned per iteration, reported against the cold
// wrangle-everything baseline measured during setup. The results (and
// the empty-delta generation-stability check) are written to
// BENCH_wrangle.json for the CI bench-smoke gate.
func BenchmarkWrangleWarm(b *testing.B) {
	const (
		datasets   = 2000
		churnFiles = 20 // ~1%
	)
	root := b.TempDir()
	m, err := archive.Generate(root, archive.DefaultGenConfig(datasets, benchSeed))
	if err != nil {
		b.Fatal(err)
	}
	sys, err := New(Config{ArchiveRoot: root})
	if err != nil {
		b.Fatal(err)
	}
	coldStart := time.Now()
	if _, err := sys.Wrangle(); err != nil {
		b.Fatal(err)
	}
	coldNs := time.Since(coldStart).Nanoseconds()

	// Settle into steady state: wait out the racy-mtime window (files
	// were generated moments before the cold scan), let one warm run
	// hash-verify everything and refresh the scan stamps so later runs
	// trust stat fingerprints alone, then drive small churn rounds
	// until transformation discovery reaches its fixed point — each
	// newly discovered rule is a knowledge change that (correctly)
	// forces one full reprocess, and the steady state this benchmark
	// measures starts after the last of them.
	time.Sleep(3 * time.Second)
	if _, err := sys.Wrangle(); err != nil {
		b.Fatal(err)
	}
	settleChurn := filepath.Join(root, m.Datasets[0].Path)
	settled := false
	for tries := 0; tries < 8 && !settled; tries++ {
		appendDuplicateLastLine(b, settleChurn)
		rep, err := sys.Wrangle()
		if err != nil {
			b.Fatal(err)
		}
		settled = !rep.Delta.FullReprocess
	}
	if !settled {
		b.Fatal("wrangling never settled into incremental steady state")
	}

	// Acceptance check: an empty-delta re-wrangle must not move the
	// snapshot generation.
	genBefore := sys.SnapshotGeneration()
	noop, err := sys.Wrangle()
	if err != nil {
		b.Fatal(err)
	}
	generationStable := noop.Delta.GenerationStable && sys.SnapshotGeneration() == genBefore
	if !generationStable {
		b.Errorf("empty-delta re-wrangle moved the generation: %+v", noop.Delta)
	}

	var obsPaths []string
	for _, d := range m.Datasets {
		if string(d.Format) == "obs" {
			obsPaths = append(obsPaths, d.Path)
		}
	}
	if len(obsPaths) < churnFiles {
		b.Fatalf("archive has only %d OBS datasets", len(obsPaths))
	}

	b.ResetTimer()
	churned := 0
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for k := 0; k < churnFiles; k++ {
			appendDuplicateLastLine(b, filepath.Join(root, obsPaths[churned%len(obsPaths)]))
			churned++
		}
		b.StartTimer()
		rep, err := sys.Wrangle()
		if err != nil {
			b.Fatal(err)
		}
		if rep.Delta.FullReprocess {
			b.Fatal("warm run fell back to full reprocess")
		}
	}
	b.StopTimer()
	warmNs := b.Elapsed().Nanoseconds() / int64(b.N)
	speedup := float64(coldNs) / float64(warmNs)
	b.ReportMetric(speedup, "cold/warm")

	env := benchEnvironment()
	env["iters"] = b.N
	mergeBenchJSONAt(b, "BENCH_wrangle.json", nil, map[string]any{
		"benchmark": "BenchmarkWrangleWarm",
		"description": fmt.Sprintf(
			"Write-path comparison on a %d-dataset generated archive: 'cold' is the first Wrangle (parse everything, full transform chain, snapshot build); 'warm' is a steady-state re-wrangle after ~1%% of the archive (%d OBS files) changed — the parallel scanner stat-skips the rest, delta-aware components process only the dirty features, and Publish patches the served snapshot incrementally. An empty-delta re-wrangle must leave SnapshotGeneration() unchanged (generation-keyed caches survive no-op re-wrangles).",
			datasets, churnFiles),
		"generatedAt":                benchStamp(),
		"environment":                env,
		"datasets":                   datasets,
		"churnFilesPerIteration":     churnFiles,
		"coldNsPerOp":                coldNs,
		"warmNsPerOp":                warmNs,
		"speedup":                    speedup,
		"emptyDeltaGenerationStable": generationStable,
	})
}

// BenchmarkWarmRestart measures what the durable store exists for: the
// restart path. Setup builds a settled durable deployment over the
// 2000-dataset archive (journal + checkpoint in a data directory) and
// measures the cold baseline — a fresh process wrangling the whole
// archive from scratch. Each iteration then churns ~1% of the archive
// and performs a warm restart: OpenDurable (checkpoint-replay +
// journal-replay) plus the delta-scoped reconciliation wrangle. The
// exhibit lands in BENCH_wrangle.json under "warmRestart" with the
// ≥3x acceptance flag the CI bench smoke greps.
func BenchmarkWarmRestart(b *testing.B) {
	const (
		datasets   = 2000
		churnFiles = 20 // ~1%
	)
	root := b.TempDir()
	dataDir := b.TempDir()
	m, err := archive.Generate(root, archive.DefaultGenConfig(datasets, benchSeed))
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{ArchiveRoot: root, DataDir: dataDir}
	sys, err := OpenDurable(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := sys.Wrangle(); err != nil {
		b.Fatal(err)
	}
	// Settle exactly like BenchmarkWrangleWarm: wait out the racy-mtime
	// window, refresh scan stamps, and churn until rule discovery stops
	// forcing full reprocesses.
	time.Sleep(3 * time.Second)
	if _, err := sys.Wrangle(); err != nil {
		b.Fatal(err)
	}
	settleChurn := filepath.Join(root, m.Datasets[0].Path)
	settled := false
	for tries := 0; tries < 8 && !settled; tries++ {
		appendDuplicateLastLine(b, settleChurn)
		rep, err := sys.Wrangle()
		if err != nil {
			b.Fatal(err)
		}
		settled = !rep.Delta.FullReprocess
	}
	if !settled {
		b.Fatal("durable system never settled into incremental steady state")
	}
	// Fold the settle history into a checkpoint so the measured restarts
	// replay a realistic checkpoint + small journal, then "crash".
	if _, err := sys.CompactIfNeeded(); err != nil {
		b.Fatal(err)
	}
	if err := sys.Close(); err != nil {
		b.Fatal(err)
	}

	// Cold baseline: what every restart cost before the journal existed.
	coldStart := time.Now()
	coldSys, err := New(Config{ArchiveRoot: root})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := coldSys.Wrangle(); err != nil {
		b.Fatal(err)
	}
	coldNs := time.Since(coldStart).Nanoseconds()

	var obsPaths []string
	for _, d := range m.Datasets {
		if string(d.Format) == "obs" {
			obsPaths = append(obsPaths, d.Path)
		}
	}
	if len(obsPaths) < churnFiles {
		b.Fatalf("archive has only %d OBS datasets", len(obsPaths))
	}

	b.ResetTimer()
	churned := 0
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for k := 0; k < churnFiles; k++ {
			appendDuplicateLastLine(b, filepath.Join(root, obsPaths[churned%len(obsPaths)]))
			churned++
		}
		b.StartTimer()
		wsys, err := OpenDurable(cfg)
		if err != nil {
			b.Fatal(err)
		}
		rep, err := wsys.Wrangle()
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if rep.Delta.FullReprocess {
			b.Fatal("warm restart fell back to full reprocess")
		}
		if rep.Delta.Changed == 0 {
			b.Fatal("warm restart saw no churn; the harness is broken")
		}
		// Housekeeping outside the timed region, as the daemon's
		// background compactor would do it: keep the journal bounded so
		// iteration N does not replay N publishes.
		if _, err := wsys.CompactIfNeeded(); err != nil {
			b.Fatal(err)
		}
		if err := wsys.Close(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
	b.StopTimer()
	warmNs := b.Elapsed().Nanoseconds() / int64(b.N)
	speedup := float64(coldNs) / float64(warmNs)
	b.ReportMetric(speedup, "cold/warm")

	wrEnv := benchEnvironment()
	wrEnv["iters"] = b.N
	mergeBenchJSONAt(b, "BENCH_wrangle.json", []string{"warmRestart"}, map[string]any{
		"benchmark": "BenchmarkWarmRestart",
		"description": fmt.Sprintf(
			"Restart cost on a %d-dataset archive with ~1%%%% churn (%d OBS files) per restart: 'cold' is a fresh process wrangling the whole archive from scratch (the only restart path before the durable store); 'warm' is OpenDurable — checkpoint-replay + journal-replay restoring the published catalog, its generation, and the knowledge-epoch sidecar — followed by the delta-scoped reconciliation wrangle against the live archive. The acceptance gate requires warm ≥ 3x faster than cold.",
			datasets, churnFiles),
		"generatedAt":          benchStamp(),
		"environment":          wrEnv,
		"datasets":             datasets,
		"churnFilesPerRestart": churnFiles,
		"coldRestartNsPerOp":   coldNs,
		"warmRestartNsPerOp":   warmNs,
		"speedup":              speedup,
		"warmAtLeast3xFaster":  speedup >= 3,
	})
	if speedup < 3 {
		b.Errorf("warm restart only %.2fx faster than cold re-wrangle, want >= 3x", speedup)
	}
}

// snapshotBenchCatalog builds a deterministic synthetic catalog large
// enough that the read-path shapes (indexed vs. linear, worker
// scaling) are stable.
func snapshotBenchCatalog(b *testing.B, n, shards int) *catalog.Catalog {
	b.Helper()
	c := catalog.NewSharded(shards)
	for i := 0; i < n; i++ {
		if err := c.Upsert(benchFeature(i, 0)); err != nil {
			b.Fatal(err)
		}
	}
	// Pre-build the snapshot so the publish cost stays out of the
	// per-query timings, as it does in the serving system.
	c.Snapshot()
	return c
}

// benchFeature fabricates the i-th deterministic bench feature; version
// perturbs its content (value ranges, temporal extent) without changing
// the identity, modelling an edited file for the publish benchmarks.
func benchFeature(i, version int) *catalog.Feature {
	names := []string{"water_temperature", "salinity", "turbidity", "dissolved_oxygen", "nitrate", "ph"}
	base := time.Date(2008, 1, 1, 0, 0, 0, 0, time.UTC)
	lat := 42 + float64(i%500)*0.02
	lon := -127 + float64((i*7)%600)*0.02
	path := fmt.Sprintf("bench/%04d.obs", i)
	return &catalog.Feature{
		ID:     catalog.IDForPath(path),
		Path:   path,
		Source: "stations",
		Format: "obs",
		BBox: geo.BBox{
			MinLat: lat - 0.01, MinLon: lon - 0.01,
			MaxLat: lat + 0.01, MaxLon: lon + 0.01,
		},
		Time: geo.NewTimeRange(
			base.AddDate(0, 0, (i+version)%1500),
			base.AddDate(0, 0, (i+version)%1500+14)),
		RowCount: 100 + version,
		Variables: []catalog.VarFeature{
			{RawName: names[i%len(names)], Name: names[i%len(names)],
				Range: geo.NewValueRange(float64(version), 30), Count: 100},
			{RawName: names[(i+1)%len(names)], Name: names[(i+1)%len(names)],
				Range: geo.NewValueRange(0, 30), Count: 100},
		},
	}
}

// searchAllocBudget is the steady-state allocation ceiling for the
// indexed single-worker query path, enforced here and grepped by CI:
// the interned term dictionary + compressed postings + pooled query
// scratch must hold at least a 5x cut from the pre-interning baseline
// (818 allocs / 230192 B per op on the same 5000-feature exhibit).
const (
	searchAllocBudget    = 160
	searchBytesBudget    = 46038
	searchBaselineAllocs = 818
	searchBaselineBytes  = 230192
	// multiWorkerTolerance bounds how much slower a multi-worker run may
	// be than the 1-worker path before the exhibit flags it. The clamp
	// (min of the request, work/parallelMinWork, and machine parallelism)
	// means extra configured workers must never cost more than noise —
	// on a 1-core host all worker counts degrade to the identical serial
	// path, so this margin is pure timing jitter.
	multiWorkerTolerance = 1.25
	// multiShardTolerance bounds the multi-shard scatter paths the same
	// way, but looser: an N-shard snapshot pays a structural per-shard
	// constant (N plans, N spatial/temporal candidate collections, the
	// gather heap) that a single-core recorder cannot amortize across
	// cores, so the bound only asserts the overhead stays modest, not
	// that sharding is free without parallel hardware.
	multiShardTolerance = 1.6
	// fanOutMinIters is the minimum per-variant iteration count before
	// the timing-based flags (multiWorkerNoSlower, speedups) are emitted:
	// a single-iteration smoke run (-benchtime 1x) is too noisy to judge
	// a 20% margin, so it records the raw entries and leaves the verdict
	// to a properly sized run. The allocation flags are exact at any N.
	fanOutMinIters = 10
)

// searchMeasure is one sub-benchmark's steady-state cost. Allocations
// are counted via MemStats deltas around the timed loop (after pool
// warm-up) because testing keeps its own counters private.
type searchMeasure struct {
	nsPerOp     int64
	allocsPerOp uint64
	bytesPerOp  uint64
	iters       int
}

func (m searchMeasure) entry(name string) map[string]any {
	return map[string]any{
		"name":          name,
		"ns_per_op":     m.nsPerOp,
		"allocs_per_op": m.allocsPerOp,
		"bytes_per_op":  m.bytesPerOp,
		"iters":         m.iters,
	}
}

// BenchmarkSnapshotSearch measures the snapshot read path: the indexed
// planner vs. the linear-scan ablation at 1/4/8 workers, plus the
// seed's copy-per-search behavior (deep-copying the catalog before
// every scan) for reference. Results are recorded in BENCH_search.json
// keyed by GOMAXPROCS (drive the matrix with -cpu 1,2,4,8), along with
// the allocation-budget and fan-out acceptance flags CI greps.
func BenchmarkSnapshotSearch(b *testing.B) {
	const n = 5000
	c := snapshotBenchCatalog(b, n, 1)
	loc := geo.Point{Lat: 45.5, Lon: -124.4}
	tr := geo.NewTimeRange(
		time.Date(2010, 5, 1, 0, 0, 0, 0, time.UTC),
		time.Date(2010, 8, 1, 0, 0, 0, 0, time.UTC))
	vr := geo.NewValueRange(5, 10)
	q := search.Query{
		Location: &loc,
		Time:     &tr,
		Terms:    []search.Term{{Name: "salinity", Range: &vr}},
	}
	// The -cpu sweep happens per sub-benchmark: each b.Run leaf executes
	// once per -cpu value (plus calibration passes), while this parent
	// body and its post-processing run exactly once. So measurements are
	// captured inside the leaf, keyed by the GOMAXPROCS in effect for
	// that pass; a later pass at the same procs count (the measured run
	// after calibration) overwrites the earlier one.
	measured := map[int]map[string]searchMeasure{} // procs -> variant -> cost
	order := map[int][]string{}                    // procs -> variants in run order
	run := func(name string, opts search.Options, perIter func()) {
		b.Run(name, func(b *testing.B) {
			s := search.New(c, opts)
			// Warm the scratch pool and lazy snapshot state so the timed
			// region measures steady state, not first-query buildup.
			for i := 0; i < 3; i++ {
				if _, err := s.Search(q); err != nil {
					b.Fatal(err)
				}
			}
			var before, after runtime.MemStats
			b.ReportAllocs()
			runtime.ReadMemStats(&before)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if perIter != nil {
					perIter()
				}
				if _, err := s.Search(q); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			runtime.ReadMemStats(&after)
			procs := runtime.GOMAXPROCS(0)
			if measured[procs] == nil {
				measured[procs] = map[string]searchMeasure{}
			}
			if _, seen := measured[procs][name]; !seen {
				order[procs] = append(order[procs], name)
			}
			measured[procs][name] = searchMeasure{
				nsPerOp:     b.Elapsed().Nanoseconds() / int64(b.N),
				allocsPerOp: (after.Mallocs - before.Mallocs) / uint64(b.N),
				bytesPerOp:  (after.TotalAlloc - before.TotalAlloc) / uint64(b.N),
				iters:       b.N,
			}
		})
	}
	for _, w := range []int{1, 4, 8} {
		opts := search.DefaultOptions()
		opts.Workers = w
		run(fmt.Sprintf("indexed-%dw", w), opts, nil)
	}
	for _, w := range []int{1, 4, 8} {
		opts := search.DefaultOptions()
		opts.UseIndex = false
		opts.Workers = w
		run(fmt.Sprintf("linear-%dw", w), opts, nil)
	}
	seedOpts := search.DefaultOptions()
	seedOpts.UseIndex = false
	seedOpts.Workers = 1
	// The seed cloned every feature on each search (All()); reproduce
	// that cost on top of the scan.
	run("seed-copy-per-search", seedOpts, func() { _ = c.All() })

	if len(measured) == 0 {
		return // a -bench filter skipped every sub-benchmark
	}
	// One group per swept GOMAXPROCS value; the summary aggregates across
	// the sweep (flags are the AND of every group's verdict, ratios come
	// from the canonical serial measurement: the lowest qualifying procs).
	groups := map[string]any{}
	summary := map[string]any{"procsSwept": sortedProcs(measured)}
	allocsOK, haveAllocs := true, false
	noSlowerAll, haveTiming := true, false
	for _, procs := range sortedProcs(measured) {
		byName := measured[procs]
		entries := make([]map[string]any, 0, len(order[procs]))
		for _, name := range order[procs] {
			entries = append(entries, byName[name].entry(name))
		}
		group := map[string]any{"procs": procs, "entries": entries}
		if m1, ok := byName["indexed-1w"]; ok {
			within := m1.allocsPerOp <= searchAllocBudget && m1.bytesPerOp <= searchBytesBudget
			group["allocsWithinBudget"] = within
			allocsOK = allocsOK && within
			haveAllocs = true
			if !within {
				b.Errorf("procs=%d indexed-1w steady state: %d allocs / %d B per op, budget %d / %d",
					procs, m1.allocsPerOp, m1.bytesPerOp, searchAllocBudget, searchBytesBudget)
			}
			if m1.iters >= fanOutMinIters {
				noSlower := true
				for _, name := range []string{"indexed-4w", "indexed-8w"} {
					if m, ok := byName[name]; ok && float64(m.nsPerOp) > multiWorkerTolerance*float64(m1.nsPerOp) {
						noSlower = false
						b.Errorf("procs=%d %s is %.2fx the 1-worker latency, tolerance %.2fx",
							procs, name, float64(m.nsPerOp)/float64(m1.nsPerOp), multiWorkerTolerance)
					}
				}
				group["multiWorkerNoSlower"] = noSlower
				noSlowerAll = noSlowerAll && noSlower
				if !haveTiming {
					haveTiming = true
					summary["allocCutVsBaseline"] = round2(searchBaselineAllocs / float64(max(m1.allocsPerOp, 1)))
					summary["bytesCutVsBaseline"] = round2(searchBaselineBytes / float64(max(m1.bytesPerOp, 1)))
					if lin, ok := byName["linear-1w"]; ok {
						summary["indexed_vs_linear_speedup"] = round2(float64(lin.nsPerOp) / float64(m1.nsPerOp))
					}
					if seed, ok := byName["seed-copy-per-search"]; ok {
						summary["indexed_vs_seed_speedup"] = round2(float64(seed.nsPerOp) / float64(m1.nsPerOp))
					}
				}
			}
		}
		groups[procsKey(procs)] = group
	}
	if haveAllocs {
		summary["allocsWithinBudget"] = allocsOK
	}
	if haveTiming {
		summary["multiWorkerNoSlower"] = noSlowerAll
	}
	// "results" is replaced wholesale (not merged) so one invocation
	// defines the whole matrix and stale procs groups never linger.
	mergeBenchJSONAt(b, "BENCH_search.json", nil, map[string]any{
		"benchmark": "BenchmarkSnapshotSearch",
		"description": fmt.Sprintf(
			"Read-path comparison on a %d-feature synthetic catalog; query = location + time period + range-constrained variable term, K=10. 'indexed' is the snapshot planner — query terms resolve once through the per-shard interned term dictionary to compressed posting containers (sorted-array sparse / packed-bitmap dense), and all per-query scratch (candidate buffers, mark bitmaps, top-K heaps) comes from a sync.Pool, so steady state allocates only the response. 'linear' is the UseIndex=false full-scan ablation over the same snapshot; 'seed-copy-per-search' reproduces the seed's behavior of deep-copying every feature per query. All paths return byte-identical rankings (TestSnapshotParallelMatchesLinearScan). results holds one procs-N group per GOMAXPROCS value; run with -cpu 1,2,4,8 for the core-count matrix.", n),
		"generatedAt": benchStamp(),
		"environment": benchEnvironment(),
		"allocBudget": map[string]any{
			"allocsPerOp":         searchAllocBudget,
			"bytesPerOp":          searchBytesBudget,
			"baselineAllocsPerOp": searchBaselineAllocs,
			"baselineBytesPerOp":  searchBaselineBytes,
		},
		"multiWorkerTolerance": multiWorkerTolerance,
		"summary":              summary,
		"results":              groups,
	})
}

// sortedProcs returns the GOMAXPROCS values a sweep captured, ascending.
func sortedProcs[V any](m map[int]V) []int {
	procs := make([]int, 0, len(m))
	for p := range m {
		procs = append(procs, p)
	}
	sort.Ints(procs)
	return procs
}

// round2 trims an exhibit ratio to two decimals.
func round2(x float64) float64 { return float64(int(x*100+0.5)) / 100 }

// benchStamp is the uniform generatedAt timestamp every exhibit writer
// uses, so each file (and each nested section) carries the same format.
func benchStamp() string { return time.Now().UTC().Format(time.RFC3339) }

// benchEnvironment describes the recording machine once, uniformly.
func benchEnvironment() map[string]any {
	return map[string]any{
		"goos":       runtime.GOOS,
		"goarch":     runtime.GOARCH,
		"cpus":       runtime.NumCPU(),
		"gomaxprocs": runtime.GOMAXPROCS(0),
	}
}

// procsKey labels a GOMAXPROCS sweep entry ("procs-4"). Passing
// -cpu 1,2,4,8 to go test re-runs every sub-benchmark once per value;
// measurements captured inside the leaves land under one key per value,
// so one invocation records the whole core-count matrix.
func procsKey(procs int) string { return fmt.Sprintf("procs-%d", procs) }

// mergeBenchJSONAt read-modify-writes a bench exhibit file: the keys of
// fields are merged into the JSON object at the nested key path `at`
// (nil = top level), creating intermediate objects as needed and
// preserving unrelated siblings. This is how benchmarks share one file
// (BenchmarkWrangleWarm, BenchmarkWarmRestart, and BenchmarkShardedPublish
// all land in BENCH_wrangle.json) and how per-GOMAXPROCS sweep passes
// accumulate side by side instead of overwriting each other.
func mergeBenchJSONAt(b *testing.B, path string, at []string, fields map[string]any) {
	b.Helper()
	doc := map[string]any{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &doc); err != nil {
			b.Logf("could not parse %s (rewriting): %v", path, err)
			doc = map[string]any{}
		}
	}
	node := doc
	for _, k := range at {
		child, ok := node[k].(map[string]any)
		if !ok {
			child = map[string]any{}
			node[k] = child
		}
		node = child
	}
	for k, v := range fields {
		node[k] = v
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		b.Logf("could not write %s: %v", path, err)
	}
}

// BenchmarkShardedSearch measures the scatter-gather read path at 1, 4,
// and 8 snapshot shards over the 5000-feature synthetic catalog, with
// one search worker per shard. Before timing, each shard count's
// ranking is checked byte-identical to the 1-shard baseline (the
// property TestShardedSearchMatchesSingleShard fuzzes at scale).
// Results extend BENCH_search.json under "sharded".
func BenchmarkShardedSearch(b *testing.B) {
	const n = 5000
	loc := geo.Point{Lat: 45.5, Lon: -124.4}
	tr := geo.NewTimeRange(
		time.Date(2010, 5, 1, 0, 0, 0, 0, time.UTC),
		time.Date(2010, 8, 1, 0, 0, 0, 0, time.UTC))
	vr := geo.NewValueRange(5, 10)
	q := search.Query{
		Location: &loc,
		Time:     &tr,
		Terms:    []search.Term{{Name: "salinity", Range: &vr}},
	}

	baseOpts := search.DefaultOptions()
	baseOpts.Workers = 1
	baseline, err := search.New(snapshotBenchCatalog(b, n, 1), baseOpts).Search(q)
	if err != nil {
		b.Fatal(err)
	}

	shardCounts := []int{1, 4, 8}
	entryBy := map[int]map[int]map[string]any{} // procs -> shard count -> entry
	for _, sc := range shardCounts {
		c := snapshotBenchCatalog(b, n, sc)
		opts := search.DefaultOptions()
		opts.Workers = sc
		s := search.New(c, opts)
		got, err := s.Search(q)
		if err != nil {
			b.Fatal(err)
		}
		if len(got) != len(baseline) {
			b.Fatalf("shards=%d returned %d results, baseline %d", sc, len(got), len(baseline))
		}
		for i := range got {
			if got[i].Feature.ID != baseline[i].Feature.ID || got[i].Score != baseline[i].Score {
				b.Fatalf("shards=%d rank %d diverges from 1-shard baseline", sc, i)
			}
		}
		sc := sc
		b.Run(fmt.Sprintf("shards-%d", sc), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Search(q); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			procs := runtime.GOMAXPROCS(0) // per -cpu pass; calibration overwritten
			if entryBy[procs] == nil {
				entryBy[procs] = map[int]map[string]any{}
			}
			entryBy[procs][sc] = map[string]any{
				"shards":  sc,
				"workers": sc,
				"nsPerOp": b.Elapsed().Nanoseconds() / int64(b.N),
				"iters":   b.N,
			}
		})
	}
	if len(entryBy) == 0 {
		return // a -bench filter skipped every sub-benchmark
	}
	groups := map[string]any{}
	for _, procs := range sortedProcs(entryBy) {
		bySc := entryBy[procs]
		var entries []map[string]any
		for _, sc := range shardCounts {
			if bySc[sc] != nil {
				entries = append(entries, bySc[sc])
			}
		}
		group := map[string]any{"procs": procs, "entries": entries}
		if e1 := bySc[1]; e1 != nil && e1["iters"].(int) >= fanOutMinIters {
			ns1 := e1["nsPerOp"].(int64)
			noSlower := true
			for _, sc := range shardCounts {
				if e := bySc[sc]; e != nil && float64(e["nsPerOp"].(int64)) > multiShardTolerance*float64(ns1) {
					noSlower = false
					b.Errorf("procs=%d shards-%d is %.2fx the 1-shard latency, tolerance %.2fx",
						procs, sc, float64(e["nsPerOp"].(int64))/float64(ns1), multiShardTolerance)
				}
			}
			group["multiShardNoSlower"] = noSlower
		}
		groups[procsKey(procs)] = group
	}
	mergeBenchJSONAt(b, "BENCH_search.json", []string{"sharded"}, map[string]any{
		"benchmark": "BenchmarkShardedSearch",
		"description": fmt.Sprintf(
			"Scatter-gather search over a %d-feature catalog partitioned into N snapshot shards (one worker per shard, each running the full candidate-tier planner over its shard before a single merge heap gathers per-shard top-Ks). Rankings are byte-identical across shard counts — asserted here against the 1-shard baseline and fuzzed by TestShardedSearchMatchesSingleShard. results holds one procs-N group per GOMAXPROCS value (-cpu 1,2,4,8 for the matrix); on a single-CPU host the multi-shard numbers measure scatter overhead, not scaling, and multiShardNoSlower checks the adaptive fan-out clamp keeps that overhead bounded.", n),
		"generatedAt":         benchStamp(),
		"environment":         benchEnvironment(),
		"multiShardTolerance": multiShardTolerance,
		"results":             groups,
	})
}

// BenchmarkShardedPublish measures what the sharded snapshot exists
// for on the write path: a ~1% churn publish (20 changed features out
// of 2000) through ApplyDelta, at 1, 8, and 32 shards. Per iteration
// the benchmark counts, by pointer identity, how many shards of the
// successor snapshot were patched vs shared with the predecessor; with
// 32 shards and 20 changed features at least 12 shards are provably
// clean every round, and the run fails if any clean count comes back
// zero. Results extend BENCH_wrangle.json under "shardedPublish".
func BenchmarkShardedPublish(b *testing.B) {
	const (
		n     = 2000
		churn = 20 // ~1%
	)
	shardCounts := []int{1, 8, 32}
	entryBy := map[int]map[int]map[string]any{} // procs -> shard count -> entry
	for _, sc := range shardCounts {
		sc := sc
		c := snapshotBenchCatalog(b, n, sc)
		b.Run(fmt.Sprintf("shards-%d", sc), func(b *testing.B) {
			prev := c.Snapshot()
			patched, shared := 0, 0
			version := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				version++
				changed := make([]*catalog.Feature, churn)
				for k := range changed {
					changed[k] = benchFeature((i*churn+k)%n, version)
				}
				sort.Slice(changed, func(a, z int) bool { return changed[a].ID < changed[z].ID })
				b.StartTimer()
				if _, err := c.ApplyDelta(changed, nil); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				next := c.Snapshot()
				for si, sh := range next.Shards() {
					if sh == prev.Shards()[si] {
						shared++
					} else {
						patched++
					}
				}
				prev = next
				b.StartTimer()
			}
			b.StopTimer()
			// Pigeonhole floor: churn features can dirty at most churn
			// shards, so every publish must share at least sc-churn clean
			// shards; anything less means clean shards are being patched.
			if sc > churn && shared < (sc-churn)*b.N {
				b.Fatalf("shards=%d churn=%d: only %d clean shards shared over %d publishes, want ≥ %d",
					sc, churn, shared, b.N, (sc-churn)*b.N)
			}
			dirtyPerOp := float64(patched) / float64(b.N)
			b.ReportMetric(dirtyPerOp, "dirtyShards/op")
			procs := runtime.GOMAXPROCS(0) // per -cpu pass; calibration overwritten
			if entryBy[procs] == nil {
				entryBy[procs] = map[int]map[string]any{}
			}
			entryBy[procs][sc] = map[string]any{
				"shards":           sc,
				"churnFeatures":    churn,
				"nsPerOp":          b.Elapsed().Nanoseconds() / int64(b.N),
				"iters":            b.N,
				"dirtyShardsPerOp": dirtyPerOp,
				"cleanShardsPerOp": float64(shared) / float64(b.N),
			}
		})
	}
	if len(entryBy) == 0 {
		return // a -bench filter skipped every sub-benchmark
	}
	groups := map[string]any{}
	for _, procs := range sortedProcs(entryBy) {
		var entries []map[string]any
		for _, sc := range shardCounts {
			if entryBy[procs][sc] != nil {
				entries = append(entries, entryBy[procs][sc])
			}
		}
		groups[procsKey(procs)] = map[string]any{"procs": procs, "entries": entries}
	}
	mergeBenchJSONAt(b, "BENCH_wrangle.json", []string{"shardedPublish"}, map[string]any{
		"benchmark": "BenchmarkShardedPublish",
		"description": fmt.Sprintf(
			"Incremental publish of a ~1%%%% churn delta (%d of %d features) into an N-shard snapshot via ApplyDelta. The delta routes to shards by feature-ID hash; clean shards are shared with the predecessor snapshot by pointer (counted per iteration, asserted non-zero whenever shards > churn), and within a patched shard the interned posting containers of untouched terms are shared the same way, so patch cost tracks the dirty features' index footprint, not the catalog's. results holds one procs-N group per GOMAXPROCS value (-cpu 1,2,4,8 for the matrix).", churn, n),
		"generatedAt": benchStamp(),
		"environment": benchEnvironment(),
		"results":     groups,
	})
}

// pushBenchFeature builds one push-batch feature. Distinct from
// benchFeature: push batches clear wrangle-grade validation, so every
// variable range stays inside the vocabulary's plausible bounds, and
// the content hash varies with version so each publish is a real delta.
func pushBenchFeature(i, version int) *catalog.Feature {
	vars := []struct {
		name, unit string
		lo, hi     float64
	}{
		{"water_temperature", "C", 6, 18},
		{"salinity", "PSU", 2, 30},
		{"turbidity", "NTU", 1, 80},
		{"dissolved_oxygen", "mg/L", 3, 12},
	}
	v := vars[i%len(vars)]
	base := time.Date(2010, 6, 1, 0, 0, 0, 0, time.UTC)
	lat := 45 + float64(i%200)*0.01
	lon := -125 + float64((i*3)%200)*0.01
	path := fmt.Sprintf("push/%04d.csv", i)
	return &catalog.Feature{
		ID:     catalog.IDForPath(path),
		Path:   path,
		Source: "push",
		Format: "csv",
		BBox:   geo.BBox{MinLat: lat, MinLon: lon, MaxLat: lat + 0.05, MaxLon: lon + 0.05},
		Time: geo.NewTimeRange(
			base.AddDate(0, 0, i%90),
			base.AddDate(0, 0, i%90+1)),
		Variables: []catalog.VarFeature{{
			RawName: v.name, Name: v.name, Unit: v.unit,
			Range: geo.NewValueRange(v.lo, v.hi),
			Count: 24,
		}},
		RowCount:    24 + version,
		Bytes:       512,
		ScannedAt:   base,
		ModTime:     base.Add(time.Duration(version) * time.Second),
		ContentHash: fmt.Sprintf("%016x", uint64(i)<<32|uint64(version&0xffffffff)),
	}
}

// BenchmarkPushPublish measures the warm push-ingest cost: a producer
// re-publishing a batch whose content changed since the last publish.
// The timed path is PublishFeatures end to end — batch validation,
// wrangle-grade checks over a scratch catalog, delta trim against the
// served snapshot, sharded ApplyDelta, snapshot swap — and it must
// perform zero filesystem stat calls: push-fed deployments have no
// stat-call floor, which is the point of the connector refactor. The
// exhibit lands in BENCH_wrangle.json under "pushPublish" with the
// zeroStatCalls flag the CI bench smoke greps.
func BenchmarkPushPublish(b *testing.B) {
	const batch = 100
	sys, err := New(Config{ArchiveRoot: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	build := func(version int) *PublishRequest {
		req := &PublishRequest{Features: make([]*catalog.Feature, batch)}
		for i := range req.Features {
			req.Features[i] = pushBenchFeature(i, version)
		}
		return req
	}
	// Seed publish (the cold path), then two alternating versions: every
	// timed publish replaces the whole batch with changed content.
	if _, err := sys.PublishFeatures(build(0)); err != nil {
		b.Fatal(err)
	}
	reqs := [2]*PublishRequest{build(1), build(2)}
	gen0 := sys.SnapshotGeneration()
	stat0 := scan.StatCalls()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.PublishFeatures(reqs[i%2]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	statCalls := scan.StatCalls() - stat0
	genMoves := sys.SnapshotGeneration() - gen0
	if statCalls != 0 {
		b.Errorf("warm publish performed %d stat calls, want 0", statCalls)
	}
	if uint64(b.N) != genMoves {
		b.Errorf("%d publishes moved the generation %d times", b.N, genMoves)
	}
	mergeBenchJSONAt(b, "BENCH_wrangle.json", []string{"pushPublish"}, map[string]any{
		"benchmark": "BenchmarkPushPublish",
		"description": fmt.Sprintf(
			"Warm push-ingest cost: PublishFeatures re-publishing a %d-feature batch whose content changed since the last publish — batch validation, wrangle-grade checks, delta trim, sharded ApplyDelta, snapshot swap. The zeroStatCalls flag asserts the push path never touches the filesystem: unlike the walker, push-fed ingest has no stat-call floor.", batch),
		"generatedAt":          benchStamp(),
		"environment":          benchEnvironment(),
		"batchFeatures":        batch,
		"nsPerOp":              b.Elapsed().Nanoseconds() / int64(b.N),
		"iters":                b.N,
		"statCalls":            statCalls,
		"zeroStatCalls":        statCalls == 0,
		"generationPerPublish": genMoves == uint64(b.N),
	})
}
