package metamess

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"

	"metamess/internal/catalog"
)

// Replication: a durable system's publish journal is already a
// totally-ordered, checksummed stream of generation-stamped deltas, so
// a leader can ship it verbatim and a follower can apply it through the
// same delta path a local publish uses. The leader side (JournalTail,
// AwaitPublish, CheckpointReader) serves the stream; the follower side
// (ApplyReplicatedFrames, BootstrapFromCheckpoint) consumes it. A
// durable follower journals every applied record into its own store
// with the leader's generation stamps, so a follower restart recovers
// through the ordinary OpenStore path and resumes tailing from its last
// applied generation — no full re-sync.
//
// One deliberate asymmetry: the knowledge-epoch sidecar riding each
// record is journaled by a durable follower but not applied to the
// running process (merging curated knowledge mutates state the query
// expander reads without locking). A follower picks up curated
// knowledge at restart, exactly like a restarted leader; the catalog
// content itself replicates live.

// ErrNotDurable is returned by the replication entry points when the
// system has no data directory: there is no journal to tail or mirror.
var ErrNotDurable = errors.New("metamess: replication requires a data directory (Config.DataDir)")

// JournalTail returns the raw checksummed journal frames for every
// publish after fromGen, the current durable generation, and whether
// the follower must resync from the checkpoint because fromGen predates
// the journals' reach (see catalog.Store.TailFrames). maxBytes bounds
// the response (0 = catalog.DefaultTailMaxBytes).
func (s *System) JournalTail(fromGen uint64, maxBytes int64) (frames []byte, gen uint64, resync bool, err error) {
	if s.store == nil {
		return nil, 0, false, ErrNotDurable
	}
	return s.store.TailFrames(fromGen, maxBytes)
}

// AwaitPublish blocks until the durable generation exceeds after or ctx
// ends, returning the generation seen last — the leader-side long-poll
// primitive behind the journal tail endpoint.
func (s *System) AwaitPublish(ctx context.Context, after uint64) uint64 {
	if s.store == nil {
		return 0
	}
	for {
		// Channel before generation: the append that bumps the generation
		// closes the channel under the same lock, so this order can block
		// only while the generation really is behind.
		ch := s.store.PublishNotify()
		gen := s.store.Generation()
		if gen > after {
			return gen
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return gen
		}
	}
}

// CheckpointReader opens the on-disk checkpoint for streaming to a
// bootstrapping follower. The caller must Close it.
func (s *System) CheckpointReader() (io.ReadCloser, error) {
	if s.store == nil {
		return nil, ErrNotDurable
	}
	return s.store.OpenCheckpoint()
}

// ApplyReplicatedFrames applies a batch of tailed journal frames (raw
// checksummed lines, as returned by a leader's JournalTail) to the
// published catalog, pinning each record to the generation the leader
// stamped. Records at or below the current generation are skipped —
// re-delivery is idempotent. When the system is durable, every applied
// record is journaled locally (with its sidecar) before the next is
// applied, so the follower's own store replays to exactly the replica
// state after a crash. A frame without a trailing newline is a torn
// transfer tail and is dropped, like a torn journal line. Returns the
// number of records applied.
func (s *System) ApplyReplicatedFrames(frames []byte) (int, error) {
	applied := 0
	for len(frames) > 0 {
		i := bytes.IndexByte(frames, '\n')
		if i < 0 {
			break
		}
		line := frames[:i]
		frames = frames[i+1:]
		if len(line) == 0 {
			continue
		}
		rec, err := catalog.DecodeDeltaFrame(string(line))
		if err != nil {
			return applied, err
		}
		if rec.Gen <= s.ctx.Published.Generation() {
			continue
		}
		if err := s.ctx.Published.ApplyDeltaAt(rec.Gen, rec.Changed, rec.Removed); err != nil {
			return applied, err
		}
		if s.store != nil {
			if err := s.store.AppendPublish(rec.Gen, rec.Changed, rec.Removed, rec.Sidecar); err != nil {
				return applied, fmt.Errorf("metamess: journal replicated record: %w", err)
			}
		}
		applied++
	}
	return applied, nil
}

// BootstrapFromCheckpoint replaces the follower's published state with
// the checkpoint streamed from r (a leader's checkpoint endpoint): the
// checkpoint is loaded into a scratch catalog, diffed against the
// current state, and applied as one delta pinned to the checkpoint's
// generation — so even a bootstrap disturbs only the features that
// actually differ, and a durable follower journals it like any other
// replicated record. A checkpoint at or behind the follower's current
// generation applies nothing. Returns the generation reached.
func (s *System) BootstrapFromCheckpoint(r io.Reader) (uint64, error) {
	scratch := catalog.New()
	gen, sidecar, err := catalog.LoadCheckpointFrom(r, scratch)
	if err != nil {
		return 0, err
	}
	cur := s.ctx.Published.Generation()
	if gen <= cur {
		if gen < cur {
			return cur, fmt.Errorf("metamess: checkpoint generation %d behind follower generation %d (diverged leader?)", gen, cur)
		}
		return cur, nil
	}
	changed, removed := s.ctx.Published.DiffTo(scratch)
	if err := s.ctx.Published.ApplyDeltaAt(gen, changed, removed); err != nil {
		return 0, err
	}
	if s.store != nil {
		if err := s.store.AppendPublish(gen, changed, removed, sidecar); err != nil {
			return gen, fmt.Errorf("metamess: journal bootstrap record: %w", err)
		}
	}
	return gen, nil
}

// DurableGeneration returns the last durable publish generation (0 when
// the system is not durable) — the resume point a follower tails from.
func (s *System) DurableGeneration() uint64 {
	if s.store == nil {
		return 0
	}
	return s.store.Generation()
}
