package metamess

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"metamess/internal/archive"
)

// TestWarmRestartEquivalence is the durability tentpole's correctness
// anchor: drive a durable system and a continuously-running oracle
// through the same churn-and-curation history, kill the durable one
// (no Close — the journal's fsync-per-publish is what must save it),
// mutate the archive while it is "down", and restart from the data
// directory. The recovered system must serve the exact pre-crash state
// at the exact pre-crash generation before reconciling, and after its
// delta-scoped reconciliation wrangle its published catalog and full
// search rankings must be byte-identical to the oracle that never
// died. Swept over 1, 4, and 8 snapshot shards; CI runs it under
// -race.
func TestWarmRestartEquivalence(t *testing.T) {
	for _, shards := range []int{1, 4, 8} {
		t.Run(fmt.Sprintf("shards%d", shards), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(100 + shards)))
			root := t.TempDir()
			dataDir := t.TempDir()
			m, err := archive.Generate(root, archive.DefaultGenConfig(24, int64(shards)))
			if err != nil {
				t.Fatal(err)
			}
			var obsFiles []string
			for _, d := range m.Datasets {
				if string(d.Format) == "obs" {
					obsFiles = append(obsFiles, d.Path)
				}
			}

			durableCfg := Config{
				ArchiveRoot:    root,
				SnapshotShards: shards,
				DataDir:        dataDir,
				// A tiny compaction floor so the checkpoint/journal fold is
				// exercised mid-history, not just the journal replay.
				CompactMinBytes: 1,
			}
			durable, err := OpenDurable(durableCfg)
			if err != nil {
				t.Fatal(err)
			}
			oracle, err := New(Config{ArchiveRoot: root, SnapshotShards: shards})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := durable.Wrangle(); err != nil {
				t.Fatal(err)
			}
			if _, err := oracle.Wrangle(); err != nil {
				t.Fatal(err)
			}

			// Shared churn history: adds, edits, a curated synonym, and a
			// deletion, wrangled by both systems each round.
			next := 0
			var added []string
			for round := 0; round < 3; round++ {
				for k := 0; k < 1+rng.Intn(2); k++ {
					rel := filepath.Join("stations", fmt.Sprintf("wr%02d.obs", next))
					next++
					if err := os.WriteFile(filepath.Join(root, rel),
						[]byte(obsContent(fmt.Sprintf("w%d", next), round)), 0o644); err != nil {
						t.Fatal(err)
					}
					added = append(added, rel)
				}
				for k := 0; k < rng.Intn(3); k++ {
					appendDuplicateLastLine(t, filepath.Join(root, obsFiles[rng.Intn(len(obsFiles))]))
				}
				if round == 1 {
					// Curation must survive the crash via the epoch sidecar:
					// both systems learn it, only the durable one persists it.
					for _, sys := range []*System{durable, oracle} {
						if err := sys.AddSynonym("water_temperature", "wassertemp"); err != nil {
							t.Fatal(err)
						}
					}
				}
				if len(added) > 1 && rng.Intn(2) == 0 {
					i := rng.Intn(len(added))
					if err := os.Remove(filepath.Join(root, added[i])); err != nil {
						t.Fatal(err)
					}
					added = append(added[:i], added[i+1:]...)
				}
				if _, err := durable.Wrangle(); err != nil {
					t.Fatalf("round %d: durable wrangle: %v", round, err)
				}
				if _, err := oracle.Wrangle(); err != nil {
					t.Fatalf("round %d: oracle wrangle: %v", round, err)
				}
				if _, err := durable.CompactIfNeeded(); err != nil {
					t.Fatalf("round %d: compact: %v", round, err)
				}
			}

			genAtCrash := durable.SnapshotGeneration()
			catAtCrash := publishedFingerprint(t, durable)
			countAtCrash := durable.DatasetCount()
			ds, ok := durable.Durability()
			if !ok || ds.Appends == 0 {
				t.Fatalf("durable system journaled nothing: %+v", ds)
			}
			// kill -9: no Close, no Sync. The open *System is abandoned.

			// Churn while the process is down.
			downRel := filepath.Join("stations", "down.obs")
			if err := os.WriteFile(filepath.Join(root, downRel),
				[]byte(obsContent("down", 1)), 0o644); err != nil {
				t.Fatal(err)
			}
			appendDuplicateLastLine(t, filepath.Join(root, obsFiles[0]))

			restarted, err := OpenDurable(durableCfg)
			if err != nil {
				t.Fatalf("warm restart: %v", err)
			}
			// Before reconciliation the recovered system serves the exact
			// pre-crash snapshot at the exact pre-crash generation.
			if got := restarted.SnapshotGeneration(); got != genAtCrash {
				t.Fatalf("restored generation %d, want %d (continuity broken)", got, genAtCrash)
			}
			if restarted.DatasetCount() != countAtCrash {
				t.Fatalf("restored %d datasets, want %d", restarted.DatasetCount(), countAtCrash)
			}
			if publishedFingerprint(t, restarted) != catAtCrash {
				t.Fatal("restored catalog differs from the pre-crash published state")
			}

			// The reconciliation wrangle: O(churn while down), not a cold
			// re-wrangle — the restored epoch sidecar means no phantom
			// knowledge change, so it must stay delta-scoped.
			rep, err := restarted.Wrangle()
			if err != nil {
				t.Fatalf("reconciliation wrangle: %v", err)
			}
			if rep.Delta.FullReprocess {
				t.Fatalf("reconciliation fell back to a full reprocess: %+v", rep.Delta)
			}
			if rep.Delta.Added != 1 {
				t.Fatalf("reconciliation saw %d added, want the 1 file created while down", rep.Delta.Added)
			}
			if rep.Delta.Unchanged == 0 {
				t.Fatal("reconciliation re-parsed everything; stat-skip lost")
			}

			if _, err := oracle.Wrangle(); err != nil {
				t.Fatal(err)
			}
			if restarted.DatasetCount() != oracle.DatasetCount() {
				t.Fatalf("dataset count %d, oracle %d", restarted.DatasetCount(), oracle.DatasetCount())
			}
			if got, want := publishedFingerprint(t, restarted), publishedFingerprint(t, oracle); got != want {
				t.Fatalf("published catalog diverged from the oracle\n%s", firstDiff(got, want))
			}
			if got, want := rankingsFingerprint(t, restarted), rankingsFingerprint(t, oracle); got != want {
				t.Fatalf("search rankings diverged from the oracle\n%s", firstDiff(got, want))
			}
			if err := restarted.Close(); err != nil {
				t.Fatal(err)
			}

			// One more restart after the clean shutdown: the reconcile's
			// publish was journaled too.
			again, err := OpenDurable(durableCfg)
			if err != nil {
				t.Fatal(err)
			}
			defer again.Close()
			if publishedFingerprint(t, again) != publishedFingerprint(t, oracle) {
				t.Fatal("second restart lost the reconciled state")
			}
		})
	}
}

// TestWarmRestartCurationSurvives pins the sidecar's user-visible
// payload: rules exported before a crash export identically after the
// restart, and a curated synonym keeps resolving in text search.
func TestWarmRestartCurationSurvives(t *testing.T) {
	root := t.TempDir()
	dataDir := t.TempDir()
	if _, err := archive.Generate(root, archive.DefaultGenConfig(24, 5)); err != nil {
		t.Fatal(err)
	}
	cfg := Config{ArchiveRoot: root, DataDir: dataDir}
	sys, err := OpenDurable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AddSynonym("salinity", "saltiness_index"); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Wrangle(); err != nil {
		t.Fatal(err)
	}
	rulesBefore, err := sys.ExportRules()
	if err != nil {
		t.Fatal(err)
	}
	hitsBefore, err := sys.SearchText("with saltiness_index top 5")
	if err != nil {
		t.Fatal(err)
	}
	if len(hitsBefore) == 0 {
		t.Fatal("curated synonym resolved nothing before the crash")
	}
	// kill -9.

	back, err := OpenDurable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	rulesAfter, err := back.ExportRules()
	if err != nil {
		t.Fatal(err)
	}
	if string(rulesAfter) != string(rulesBefore) {
		t.Fatalf("ExportRules changed across restart:\nbefore: %s\nafter: %s", rulesBefore, rulesAfter)
	}
	hitsAfter, err := back.SearchText("with saltiness_index top 5")
	if err != nil {
		t.Fatal(err)
	}
	if len(hitsAfter) != len(hitsBefore) || hitsAfter[0].Path != hitsBefore[0].Path {
		t.Fatal("curated synonym stopped resolving after restart")
	}
}
