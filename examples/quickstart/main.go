// Quickstart: generate a small messy archive, wrangle it, and run the
// poster's motivating query — "observations collected near
// [lat=45.5, lon=-124.4] in mid-2010, with temperature between 5-10C" —
// through the public metamess API.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"metamess"
	"metamess/internal/archive"
)

func main() {
	root, err := os.MkdirTemp("", "metamess-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(root)

	// 1. A stand-in archive: 45 station/cruise/AUV datasets with messy
	// variable names (see DESIGN.md for the substitution rationale).
	if _, err := archive.Generate(root, archive.DefaultGenConfig(45, 42)); err != nil {
		log.Fatal(err)
	}

	// 2. Wrangle: scan once, translate known names, discover the rest,
	// generate hierarchies, validate, publish.
	sys, err := metamess.New(metamess.Config{ArchiveRoot: root})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := sys.Wrangle()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrangled %d datasets: name coverage %.1f%% -> %.1f%%\n\n",
		rep.Datasets, 100*rep.CoverageBefore, 100*rep.CoverageAfter)

	// 3. The poster's example information need.
	lo, hi := 5.0, 10.0
	hits, err := sys.Search(metamess.Query{
		Near:      &metamess.LatLon{Lat: 45.5, Lon: -124.4},
		From:      time.Date(2010, 5, 1, 0, 0, 0, 0, time.UTC),
		To:        time.Date(2010, 8, 1, 0, 0, 0, 0, time.UTC),
		Variables: []metamess.VariableTerm{{Name: "temperature", Min: &lo, Max: &hi}},
		K:         3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top datasets near 45.5,-124.4 in mid-2010 with temperature 5-10C:")
	for i, h := range hits {
		fmt.Printf("%d. score %.3f — %s\n", i+1, h.Score, h.Path)
		for _, m := range h.MatchedVariables {
			fmt.Println("   matched:", m)
		}
	}
	if len(hits) > 0 {
		fmt.Println("\nsummary page of the best hit:")
		fmt.Println(hits[0].Summary)
	}
}
