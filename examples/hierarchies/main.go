// Hierarchies: Table 1's last two rows in action. Source-context naming
// variations (temperature under air and water) link to multiple
// taxonomies, and concepts at multiple levels of detail (fluores375,
// fluores400 under fluorescence) collapse or expose through hierarchical
// menus. Queries for a parent concept find member variables.
package main

import (
	"fmt"
	"log"
	"os"

	"metamess"
	"metamess/internal/archive"
	"metamess/internal/hierarchy"
)

func main() {
	root, err := os.MkdirTemp("", "metamess-hier-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(root)

	cfg := archive.DefaultGenConfig(45, 21)
	cfg.Mess.MultiLevelRate = 0.15 // plenty of fluoresNNN-style members
	if _, err := archive.Generate(root, cfg); err != nil {
		log.Fatal(err)
	}
	sys, err := metamess.New(metamess.Config{ArchiveRoot: root})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Wrangle(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("generated variable hierarchy, fully expanded:")
	for _, line := range sys.VariableMenu(0) {
		fmt.Println("  " + line)
	}
	fmt.Println("\ncollapsed to one level (hidden descendants counted):")
	for _, line := range sys.VariableMenu(1) {
		fmt.Println("  " + line)
	}

	// Parent-concept search: querying "fluorescence" finds fluoresNNN
	// members through their hierarchy parent.
	hits, err := sys.Search(metamess.Query{
		Variables: []metamess.VariableTerm{{Name: "fluorescence"}},
		K:         3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsearching the parent concept \"fluorescence\":")
	for i, h := range hits {
		fmt.Printf("%d. score %.3f — %s\n", i+1, h.Score, h.Path)
		for _, m := range h.MatchedVariables {
			fmt.Println("   matched:", m)
		}
	}

	// Multiple taxonomies: the same base concept in different contexts.
	air := hierarchy.NewTaxonomy("air")
	water := hierarchy.NewTaxonomy("water")
	for _, term := range []string{"temperature", "pressure"} {
		if _, err := air.AddPath(term); err != nil {
			log.Fatal(err)
		}
		if _, err := water.AddPath(term); err != nil {
			log.Fatal(err)
		}
	}
	set := hierarchy.NewSet()
	if err := set.Add(air); err != nil {
		log.Fatal(err)
	}
	if err := set.Add(water); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsource contexts of bare concepts (Table 1, row 6):")
	for _, term := range []string{"temperature", "pressure"} {
		ctxs := set.TaxonomiesOf(term)
		fmt.Printf("  %-12s occurs in %v; qualified:", term, ctxs)
		for _, c := range ctxs {
			fmt.Printf(" %s", hierarchy.Qualified(c, term))
		}
		fmt.Println()
	}
}
