// Curation: the poster's four curatorial activities in one session —
// (1) create a wrangling process from composable components, (2) run and
// rerun it, (3) improve it between runs (synonym entries, curator
// decisions, an extra directory to scan), and (4) validate the results.
// Discovered transformation rules are exported in the poster's JSON
// format along the way.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"metamess"
	"metamess/internal/archive"
)

func main() {
	root, err := os.MkdirTemp("", "metamess-curation-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(root)

	cfg := archive.DefaultGenConfig(60, 99)
	cfg.Mess = archive.DefaultMess().Scale(1.5)
	m, err := archive.Generate(root, cfg)
	if err != nil {
		log.Fatal(err)
	}
	canonical := m.CanonicalFor()

	// Activity 1: create the process. Start with only the stations
	// directory configured — a typical first iteration.
	sys, err := metamess.New(metamess.Config{ArchiveRoot: root, Dirs: []string{"stations"}})
	if err != nil {
		log.Fatal(err)
	}

	// Activity 2: run it.
	rep, err := sys.Wrangle()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("run 1 (stations only): %d datasets, coverage %.3f, %d unresolved\n",
		rep.Datasets, rep.CoverageAfter, rep.UnresolvedNames)

	// Activity 3a: improve — add the remaining directories to scan.
	sys2, err := metamess.New(metamess.Config{ArchiveRoot: root})
	if err != nil {
		log.Fatal(err)
	}
	rep, err = sys2.Wrangle()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("run 2 (all dirs):      %d datasets, coverage %.3f, %d unresolved\n",
		rep.Datasets, rep.CoverageAfter, rep.UnresolvedNames)

	// Activity 3b: work the curator queue with decisions and synonyms.
	queue := sys2.CuratorQueue()
	fmt.Printf("\ncurator queue (%d entries):\n", len(queue))
	for _, q := range queue {
		fmt.Println("  ", q)
	}
	for _, line := range queue {
		raw := strings.Fields(line)[0]
		canon, known := canonical[raw]
		switch {
		case strings.Contains(line, "(ambiguous;") && known:
			sys2.Clarify(raw, canon) // Table 1: clarify where possible
		case known && canon != raw:
			if err := sys2.AddSynonym(canon, raw); err != nil {
				fmt.Printf("  (skipping %q: %v)\n", raw, err)
			}
		default:
			sys2.Hide(raw) // Table 1: hide variable
		}
	}
	rep, err = sys2.Wrangle()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrun 3 (after curation): coverage %.3f, %d unresolved\n",
		rep.CoverageAfter, rep.UnresolvedNames)

	// Activity 4: validate.
	fmt.Printf("validation: ok=%v (%d errors, %d warnings)\n",
		sys2.ValidationOK(), rep.ValidationErrors, rep.ValidationWarnings)
	for _, f := range sys2.Validation() {
		if strings.HasPrefix(f, "[error]") {
			fmt.Println("  ", f)
		}
	}

	// The audit trail: discovered rules in the poster's JSON format.
	rules, err := sys2.ExportRules()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndiscovered transformation rules (%d bytes of JSON); first lines:\n", len(rules))
	lines := strings.Split(string(rules), "\n")
	for i, l := range lines {
		if i >= 14 {
			fmt.Println("  ...")
			break
		}
		fmt.Println("  " + l)
	}
}
