// Oceansearch: the full "Data Near Here" scenario on a larger archive —
// demonstrates how wrangling changes retrieval. The same variable query
// runs against (a) a catalog of raw harvested names and (b) the wrangled
// catalog, and the example prints the recall difference against the
// generator's ground truth.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"metamess/internal/archive"
	"metamess/internal/catalog"
	"metamess/internal/core"
	"metamess/internal/metrics"
	"metamess/internal/scan"
	"metamess/internal/search"
	"metamess/internal/semdiv"
	"metamess/internal/vocab"
	"metamess/internal/workload"
)

func main() {
	root, err := os.MkdirTemp("", "metamess-ocean-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(root)

	m, err := archive.Generate(root, archive.DefaultGenConfig(90, 7))
	if err != nil {
		log.Fatal(err)
	}

	// Raw catalog: scan only, names as harvested.
	raw := catalog.New()
	if _, err := scan.New(scan.Config{Root: root}).ScanInto(raw); err != nil {
		log.Fatal(err)
	}

	// Wrangled catalog: the full chain.
	k, err := semdiv.NewKnowledge(vocab.Standard())
	if err != nil {
		log.Fatal(err)
	}
	ctx := core.NewContext(k, scan.Config{Root: root})
	if _, err := core.NewProcess("ocean", core.DefaultChain()...).Run(ctx); err != nil {
		log.Fatal(err)
	}

	// 30 variable-only queries with ground-truth relevance.
	judged, err := workload.VariableQueries(m, 30, 99, false)
	if err != nil {
		log.Fatal(err)
	}

	score := func(name string, s *search.Searcher) {
		var recalls, p5s []float64
		start := time.Now()
		for _, j := range judged {
			res, err := s.Search(j.Query)
			if err != nil {
				log.Fatal(err)
			}
			ids := workload.RankedIDs(res)
			recalls = append(recalls, metrics.RecallAtK(ids, j.Relevant, len(ids)+len(j.Relevant)))
			p5s = append(p5s, metrics.PrecisionAtK(ids, j.Relevant, 5))
		}
		perQuery := time.Since(start) / time.Duration(len(judged))
		fmt.Printf("%-28s recall=%.3f  P@5=%.3f  %8s/query\n",
			name, metrics.Mean(recalls), metrics.Mean(p5s), perQuery.Round(time.Microsecond))
	}

	fmt.Printf("archive: %d datasets, %d distinct raw names, %d canonical variables\n\n",
		raw.Len(), len(raw.DistinctVariableNames()), len(vocab.Standard()))
	fmt.Println("querying by canonical variable name:")
	score("raw catalog (exact match)", search.New(raw, search.DefaultOptions()))

	opts := search.DefaultOptions()
	opts.Expander = search.NewKnowledgeExpander(k)
	score("raw catalog + expander", search.New(raw, opts))
	score("wrangled catalog", search.New(ctx.Published, search.DefaultOptions()))
	score("wrangled + expander", search.New(ctx.Published, opts))

	// Same rankings, different read path: "wrangled catalog" above went
	// through the snapshot planner; the ablation scores every feature.
	linear := search.DefaultOptions()
	linear.UseIndex = false
	fmt.Println("\nread-path ablation (identical rankings to the indexed runs above):")
	score("linear-scan ablation", search.New(ctx.Published, linear))

	fmt.Println("\nmessy names hide data from exact matching; wrangling (or query")
	fmt.Println("expansion over curated knowledge) recovers it — the poster's thesis.")
}
