module metamess

go 1.22
