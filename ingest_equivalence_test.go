package metamess

import (
	"archive/tar"
	"bytes"
	"encoding/json"
	"io/fs"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"metamess/internal/archive"
	"metamess/internal/catalog"
	"metamess/internal/scan"
)

// The ingest-equivalence property: the same logical archive content,
// delivered through any connector (filesystem walker, streaming tar,
// HTTP object listing) or pushed feature-by-feature through the publish
// path, must produce byte-identical published catalogs and search
// rankings. The reference is the linear-scan oracle — an unsharded,
// full-reprocess walker system — so the test simultaneously pins the
// sharded walker, both streaming connectors, and push ingest to one
// ground truth.

// tarOfDir packs a directory into a PAX tar image, preserving exact
// (sub-second) mtimes so streamed features carry the same ModTime the
// walker stats.
func tarOfDir(t *testing.T, root string) []byte {
	t.Helper()
	var buf bytes.Buffer
	tw := tar.NewWriter(&buf)
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		info, err := d.Info()
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		hdr, err := tar.FileInfoHeader(info, "")
		if err != nil {
			return err
		}
		hdr.Name = filepath.ToSlash(rel)
		hdr.Format = tar.FormatPAX
		if err := tw.WriteHeader(hdr); err != nil {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		_, err = tw.Write(data)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// archiveHTTPServer serves root as an HTTP object store: /list returns
// the listing, /obj/<path> the bytes.
func archiveHTTPServer(t *testing.T, root string) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/list", func(w http.ResponseWriter, r *http.Request) {
		var l scan.HTTPListing
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil || d.IsDir() {
				return err
			}
			info, err := d.Info()
			if err != nil {
				return err
			}
			rel, _ := filepath.Rel(root, path)
			rel = filepath.ToSlash(rel)
			l.Objects = append(l.Objects, scan.HTTPObject{
				Path: rel, URL: "/obj/" + rel, Size: info.Size(), ModTime: info.ModTime(),
			})
			return nil
		})
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		json.NewEncoder(w).Encode(l)
	})
	mux.HandleFunc("/obj/", func(w http.ResponseWriter, r *http.Request) {
		http.ServeFile(w, r, filepath.Join(root, filepath.FromSlash(strings.TrimPrefix(r.URL.Path, "/obj/"))))
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// publishedCanonical renders a system's published catalog as
// deterministic bytes: features sorted by path, scan timestamps (when
// we looked, not what we saw) zeroed.
func publishedCanonical(t *testing.T, sys *System) []byte {
	t.Helper()
	var feats []*catalog.Feature
	sys.ctx.Published.ForEach(func(f *catalog.Feature) {
		c := f.Clone()
		c.ScannedAt = time.Time{}
		feats = append(feats, c)
	})
	sort.Slice(feats, func(i, j int) bool { return feats[i].Path < feats[j].Path })
	out, err := json.MarshalIndent(feats, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// equivalenceQueries is the ranking probe set: spatial, temporal,
// variable, and combined queries.
func equivalenceQueries() []Query {
	return []Query{
		{Near: &LatLon{Lat: 46.2, Lon: -123.8}, K: 10},
		{From: time.Date(2010, 5, 1, 0, 0, 0, 0, time.UTC), To: time.Date(2010, 8, 1, 0, 0, 0, 0, time.UTC), K: 10},
		{Variables: []VariableTerm{{Name: "temperature", Min: f64(5), Max: f64(10)}}, K: 10},
		{Variables: []VariableTerm{{Name: "salinity"}}, K: 10},
		{
			Near:      &LatLon{Lat: 45.5, Lon: -124.4},
			From:      time.Date(2010, 5, 1, 0, 0, 0, 0, time.UTC),
			To:        time.Date(2010, 8, 1, 0, 0, 0, 0, time.UTC),
			Variables: []VariableTerm{{Name: "temperature", Min: f64(5), Max: f64(10)}},
			K:         10,
		},
	}
}

// rankingsCanonical runs the probe queries and renders the full ranked
// output as bytes.
func rankingsCanonical(t *testing.T, sys *System) []byte {
	t.Helper()
	var out bytes.Buffer
	for i, q := range equivalenceQueries() {
		hits, err := sys.Search(q)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		b, err := json.Marshal(hits)
		if err != nil {
			t.Fatal(err)
		}
		out.Write(b)
		out.WriteByte('\n')
	}
	return out.Bytes()
}

func TestIngestPathEquivalence(t *testing.T) {
	root := t.TempDir()
	if _, err := archive.Generate(root, archive.DefaultGenConfig(24, 77)); err != nil {
		t.Fatal(err)
	}

	// The linear-scan oracle: unsharded, full-reprocess walker.
	oracle, err := New(Config{ArchiveRoot: root, FullReprocess: true, SnapshotShards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := oracle.Wrangle(); err != nil {
		t.Fatal(err)
	}
	wantCatalog := publishedCanonical(t, oracle)
	wantRankings := rankingsCanonical(t, oracle)

	check := func(label string, sys *System) {
		t.Helper()
		if got := publishedCanonical(t, sys); !bytes.Equal(got, wantCatalog) {
			t.Errorf("%s catalog differs from the oracle:\noracle %d bytes, %s %d bytes\n%s",
				label, len(wantCatalog), label, len(got), firstDiff(string(got), string(wantCatalog)))
		}
		if got := rankingsCanonical(t, sys); !bytes.Equal(got, wantRankings) {
			t.Errorf("%s rankings differ from the oracle:\n%s", label, firstDiff(string(got), string(wantRankings)))
		}
	}

	// Sharded walker.
	walker, err := New(Config{ArchiveRoot: root})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := walker.Wrangle(); err != nil {
		t.Fatal(err)
	}
	check("walker", walker)

	// Streaming tar connector over a no-filesystem system.
	tarSys, err := New(Config{
		ArchiveRoot: t.TempDir(),
		Connector:   scan.TarBytesConnector(tarOfDir(t, root)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tarSys.Wrangle(); err != nil {
		t.Fatal(err)
	}
	check("tar", tarSys)

	// HTTP object-listing connector.
	srv := archiveHTTPServer(t, root)
	httpSys, err := New(Config{
		ArchiveRoot: t.TempDir(),
		Connector:   &scan.HTTPConnector{ListURL: srv.URL + "/list", Client: srv.Client()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := httpSys.Wrangle(); err != nil {
		t.Fatal(err)
	}
	check("http", httpSys)

	// Push ingest: the oracle's published features arrive as publish
	// batches on a system that never scans anything.
	pushSys, err := New(Config{ArchiveRoot: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	var batch []*catalog.Feature
	oracle.ctx.Published.ForEach(func(f *catalog.Feature) {
		batch = append(batch, f.Clone())
	})
	sort.Slice(batch, func(i, j int) bool { return batch[i].Path < batch[j].Path })
	// Split into two batches to exercise multi-publish accumulation.
	mid := len(batch) / 2
	for _, part := range [][]*catalog.Feature{batch[:mid], batch[mid:]} {
		if _, err := pushSys.PublishFeatures(&PublishRequest{Features: part}); err != nil {
			t.Fatal(err)
		}
	}
	check("push", pushSys)

	// A replayed push batch is a generation-stable no-op, exactly like a
	// no-op re-wrangle.
	gen := pushSys.SnapshotGeneration()
	rec, err := pushSys.PublishFeatures(&PublishRequest{Features: batch})
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Stable || rec.Generation != gen || rec.Published != 0 {
		t.Errorf("replayed push not stable: %+v (gen %d -> %d)", rec, gen, rec.Generation)
	}
	check("push-replayed", pushSys)
}
