// Package metamess is a reproduction of "Taming the Metadata Mess"
// (Megler, 2013): a metadata wrangling pipeline and ranked dataset
// search engine ("Data Near Here") for heterogeneous scientific-data
// archives.
//
// The facade wraps the full system — archive scanner, working/published
// metadata catalogs, semantic-diversity classifier, Refine-style
// transformation discovery, synonym and hierarchy curation, validation,
// and distance-ranked search — behind a small API:
//
//	sys, err := metamess.New(metamess.Config{ArchiveRoot: "/data/archive"})
//	report, err := sys.Wrangle()
//	hits, err := sys.Search(metamess.Query{
//	    Near:      &metamess.LatLon{Lat: 45.5, Lon: -124.4},
//	    From:      time.Date(2010, 5, 1, 0, 0, 0, 0, time.UTC),
//	    To:        time.Date(2010, 8, 1, 0, 0, 0, 0, time.UTC),
//	    Variables: []metamess.VariableTerm{{Name: "temperature", Min: f(5), Max: f(10)}},
//	})
//
// Sub-systems are available under internal/ for the example programs and
// the experiment harness; downstream users drive everything through this
// package.
//
// For a long-lived deployment, the dnhd daemon (cmd/dnhd) serves the
// same facade over HTTP — wrangling once and answering queries
// continuously, with a snapshot-generation-keyed response cache and
// background re-wrangling:
//
//	dnhd -archive /data/archive -addr :8080 -rewrangle 15m &
//	curl 'http://localhost:8080/search/text?q=near+45.5,-124.4+in+mid-2010+with+temperature'
//	curl -X POST -d '{"variables":[{"name":"temperature","min":5,"max":10}],"k":5}' \
//	    http://localhost:8080/search
//	kill -HUP $(pidof dnhd)   # re-wrangle now; searches keep serving
//
// Request-scoped callers use the context-aware entry points
// (SearchContext, SearchTextContext) and key caches on
// SnapshotGeneration.
package metamess

import (
	"context"
	"fmt"
	"sync"
	"time"

	"metamess/internal/catalog"
	"metamess/internal/core"
	"metamess/internal/geo"
	"metamess/internal/hierarchy"
	"metamess/internal/obs"
	"metamess/internal/refine"
	"metamess/internal/scan"
	"metamess/internal/search"
	"metamess/internal/semdiv"
	"metamess/internal/vocab"
)

// Config configures a System.
type Config struct {
	// ArchiveRoot is the directory holding the scientific-data archive.
	ArchiveRoot string
	// Dirs restricts scanning to these root-relative directories
	// (empty = whole archive). Appending a directory between Wrangle
	// calls is the poster's "specify an additional directory" improvement.
	Dirs []string
	// ExpectedDatasets lists archive-relative paths validation requires.
	ExpectedDatasets []string
	// StrictValidation makes Wrangle fail (and skip publishing) when any
	// validation check errors.
	StrictValidation bool
	// SearchWorkers is the number of goroutines scoring search
	// candidates in parallel (0 = GOMAXPROCS). Searches run over the
	// immutable snapshot published by Wrangle, so workers never contend
	// with wrangling.
	SearchWorkers int
	// ScanWorkers is the number of goroutines parsing archive files in
	// parallel during Wrangle (0 = GOMAXPROCS).
	ScanWorkers int
	// SnapshotShards partitions the published snapshot by feature-ID
	// hash (0 = GOMAXPROCS). Each shard carries its own indexes, a
	// publish patches only the shards the delta hashes into, and a
	// search scatters across shards before one merge heap gathers the
	// per-shard top-Ks. Rankings are byte-identical for every value.
	SnapshotShards int
	// FullReprocess disables delta-scoped re-wrangling: every Wrangle
	// walks the whole catalog (the pre-delta behavior). An escape hatch
	// for operators who suspect drift, and the ablation the equivalence
	// property test runs against.
	FullReprocess bool
	// DataDir, when set, makes the system durable: every publish appends
	// its delta (with a generation stamp and the knowledge-epoch
	// sidecar) to a write-ahead journal in this directory, a compactor
	// periodically folds the journal into a checkpoint, and New/
	// OpenDurable recovers the published catalog plus the curated state
	// by checkpoint-replay + journal-replay — so a restarted process
	// serves the pre-crash generation and its next Wrangle costs
	// O(churn while down), not O(archive). Empty disables durability.
	DataDir string
	// SyncPolicy is the journal fsync policy: "always" (default — a
	// publish that returned survives a crash), "group" (group commit:
	// fsync at most once per SyncGroupWindow), or "none" (OS
	// discretion).
	SyncPolicy string
	// SyncGroupWindow bounds group-commit latency under "group"
	// (0 = 50ms).
	SyncGroupWindow time.Duration
	// CompactRatio triggers compaction when the journal outgrows
	// CompactRatio × the checkpoint size (0 = 1.0); CompactMinBytes is
	// the journal size below which compaction never triggers (0 = 256
	// KiB).
	CompactRatio    float64
	CompactMinBytes int64
	// Connector replaces the filesystem walker as Wrangle's ingest
	// source: a streaming archive (scan.TarConnector, scan.ZipConnector)
	// or an object listing (scan.HTTPConnector). Nil keeps the walker
	// over ArchiveRoot. Either way the connector feeds the same chain —
	// transforms, validation, publish — and produces identical catalogs
	// for identical logical content.
	Connector scan.Connector
}

// System is a wired-up metadata wrangling pipeline plus search engine.
type System struct {
	cfg      Config
	ctx      *core.Context
	process  *core.Process
	taxonomy *hierarchy.Taxonomy
	searcher *search.Searcher
	// store is the durable journal+checkpoint home (nil without
	// Config.DataDir).
	store *catalog.Store
	// pubMu serializes the two writers of the published catalog and the
	// journal — chain runs (Wrangle) and pushed batches
	// (PublishFeatures) — so their apply/journal sequences never
	// interleave. Searches read the immutable snapshot and never take it.
	pubMu sync.Mutex
}

// New builds a system over an archive with the standard canonical
// vocabulary and the poster's default chain.
func New(cfg Config) (*System, error) {
	if cfg.ArchiveRoot == "" {
		return nil, fmt.Errorf("metamess: Config.ArchiveRoot is required")
	}
	k, err := semdiv.NewKnowledge(vocab.Standard())
	if err != nil {
		return nil, fmt.Errorf("metamess: %w", err)
	}
	ctx := core.NewContextSharded(k,
		scan.Config{Root: cfg.ArchiveRoot, Dirs: cfg.Dirs, Workers: cfg.ScanWorkers},
		cfg.SnapshotShards)
	ctx.ExpectedPaths = cfg.ExpectedDatasets
	ctx.ForceFullReprocess = cfg.FullReprocess
	ctx.Connector = cfg.Connector
	s := &System{cfg: cfg, ctx: ctx}

	chain := []core.Component{
		core.ScanArchive{},
		core.KnownTransforms{},
		core.AddExternalMetadata{},
		core.DiscoverTransforms{},
		core.PerformDiscovered{},
		core.KnownTransforms{},
		core.GenerateHierarchies{Taxonomy: &s.taxonomy},
		core.Validate{AllowErrors: !cfg.StrictValidation},
		core.Publish{},
	}
	s.process = core.NewProcess("metamess", chain...)

	opts := search.DefaultOptions()
	opts.Expander = search.NewKnowledgeExpander(k)
	opts.Workers = cfg.SearchWorkers
	s.searcher = search.New(ctx.Published, opts)
	if cfg.DataDir != "" {
		if err := s.openDurable(); err != nil {
			return nil, fmt.Errorf("metamess: %w", err)
		}
	}
	return s, nil
}

// OpenDurable is New for long-lived deployments: it requires
// Config.DataDir and recovers the published catalog, its generation,
// and the knowledge-epoch state (discovered rules, curated synonyms,
// pending curator decisions) from the data directory's checkpoint and
// journal before wiring the publish path through the write-ahead
// journal. On a warm restart the recovered catalog serves searches
// immediately at the pre-crash generation, and the next Wrangle is a
// delta-scoped reconciliation against the live archive — it re-parses
// only what changed while the process was down.
func OpenDurable(cfg Config) (*System, error) {
	if cfg.DataDir == "" {
		return nil, fmt.Errorf("metamess: OpenDurable requires Config.DataDir")
	}
	return New(cfg)
}

// openDurable recovers state from cfg.DataDir into the freshly built
// system and attaches the journal to the publish path.
func (s *System) openDurable() error {
	policy, err := catalog.ParseSyncPolicy(s.cfg.SyncPolicy)
	if err != nil {
		return err
	}
	store, err := catalog.OpenStore(s.cfg.DataDir, s.ctx.Published, catalog.StoreOptions{
		Sync:            policy,
		GroupWindow:     s.cfg.SyncGroupWindow,
		CompactRatio:    s.cfg.CompactRatio,
		MinCompactBytes: s.cfg.CompactMinBytes,
	})
	if err != nil {
		return err
	}
	if s.ctx.Published.Len() > 0 || store.Generation() > 0 {
		// Seed the working catalog with the recovered (wrangled) features
		// so the reconciliation scan stat-skips everything that did not
		// change while the process was down.
		s.ctx.Working.SeedFrom(s.ctx.Published)
		if sc := store.Sidecar(); sc != nil {
			// Restoring the epoch marks the context as having completed a
			// run, so the next Wrangle is delta-scoped. Without a sidecar
			// (legacy checkpoint) the first run falls back to a full
			// reprocess — slower, never wrong.
			if err := s.ctx.RestoreEpochSidecar(sc); err != nil {
				store.Close()
				return err
			}
		}
	}
	s.ctx.Journal = store
	s.store = store
	return nil
}

// Durable reports whether the system journals publishes to a data
// directory.
func (s *System) Durable() bool { return s.store != nil }

// Close drains the publish journal (flush + fsync) and closes it.
// Idempotent; a no-op for non-durable systems. After Close, Wrangle
// fails on its publish step.
func (s *System) Close() error {
	if s.store == nil {
		return nil
	}
	return s.store.Close()
}

// CompactIfNeeded folds the publish journal into a fresh checkpoint
// when it has outgrown the configured ratio — the background compactor
// entry point the dnhd rewrangler calls after runs. It reports whether
// a compaction ran; a no-op for non-durable systems.
func (s *System) CompactIfNeeded() (bool, error) {
	if s.store == nil {
		return false, nil
	}
	return s.store.CompactIfNeeded(s.ctx.Published)
}

// DurabilityStats is a monitoring view of the journal+checkpoint store.
type DurabilityStats struct {
	// Generation is the last durable publish generation.
	Generation uint64 `json:"generation"`
	// JournalBytes and CheckpointBytes size the on-disk state; their
	// ratio drives compaction.
	JournalBytes    int64 `json:"journalBytes"`
	CheckpointBytes int64 `json:"checkpointBytes"`
	// Appends counts journaled publishes; SkippedAppends counts publish
	// calls that changed nothing and appended nothing; RefusedAppends
	// counts publishes refused while the store was degraded (real,
	// undurable publishes — not harmless no-ops); Syncs counts fsyncs
	// (group commit batches many appends per sync).
	Appends        uint64 `json:"appends"`
	SkippedAppends uint64 `json:"skippedAppends,omitempty"`
	RefusedAppends uint64 `json:"refusedAppends,omitempty"`
	Syncs          uint64 `json:"syncs"`
	// Compactions counts journal-into-checkpoint folds.
	Compactions   uint64  `json:"compactions"`
	LastCompactMs float64 `json:"lastCompactMs,omitempty"`
	// Degraded is set when a journal append failed: the live catalog is
	// ahead of the journal and publishes are refused until a compaction
	// rewrites the full state.
	Degraded bool `json:"degraded,omitempty"`
}

// Durability returns journal/checkpoint statistics; ok is false for
// non-durable systems.
func (s *System) Durability() (stats DurabilityStats, ok bool) {
	if s.store == nil {
		return DurabilityStats{}, false
	}
	st := s.store.Stats()
	return DurabilityStats{
		Generation:      st.Generation,
		JournalBytes:    st.JournalBytes,
		CheckpointBytes: st.CheckpointBytes,
		Appends:         st.Appends,
		SkippedAppends:  st.SkippedAppends,
		RefusedAppends:  st.RefusedAppends,
		Syncs:           st.Syncs,
		Compactions:     st.Compactions,
		LastCompactMs:   st.LastCompactMs,
		Degraded:        st.Degraded,
	}, true
}

// StepSummary reports one chain component of a Wrangle run.
type StepSummary struct {
	Component string
	Duration  time.Duration
	Counters  map[string]int
	// Coverage is the occurrence coverage after the step, in [0,1].
	Coverage float64
}

// DeltaSummary reports one Wrangle run's churn: what the scan saw
// change in the archive, and what the publish step actually pushed into
// the served catalog. On a steady-state re-wrangle everything is zero
// and GenerationStable is true — the serving cache survives.
type DeltaSummary struct {
	// Added, Changed, Removed, and Unchanged classify the archive scan.
	Added, Changed, Removed, Unchanged int
	// Published and Retracted count features the publish delta upserted
	// into / deleted from the served catalog.
	Published, Retracted int
	// FullReprocess marks a run that ignored the delta (first run, or
	// curated knowledge changed since the last completed run).
	FullReprocess bool
	// GenerationStable is true when the publish was an empty delta and
	// the served snapshot generation did not move.
	GenerationStable bool
}

// Report summarizes a Wrangle run.
type Report struct {
	Datasets int
	// CoverageBefore and CoverageAfter bracket the run's mess reduction.
	CoverageBefore, CoverageAfter float64
	DistinctNames                 int
	UnresolvedNames               int
	Steps                         []StepSummary
	ValidationErrors              int
	ValidationWarnings            int
	Duration                      time.Duration
	// Delta is the run's churn and publish summary.
	Delta DeltaSummary
}

// Wrangle runs the full chain: scan (in parallel, incrementally),
// transform, discover, generate hierarchies, validate, publish. Safe to
// call repeatedly; re-runs cost in proportion to archive churn — the
// scan classifies added/changed/removed files into a delta, downstream
// components process only the dirty features while curated knowledge is
// unchanged, and publish patches the served snapshot with the real
// differences. Concurrent searches see either the old or the new
// catalog, never a mix, and a re-wrangle that changes nothing leaves
// the served snapshot (and its generation) untouched.
func (s *System) Wrangle() (*Report, error) {
	return s.WrangleWithTrace(nil, -1)
}

// WrangleWithTrace is Wrangle with write-path tracing: one span per
// chain component (with apply-delta / journal-append stages nested
// under publish) is recorded into tr under parent. A nil tr is exactly
// Wrangle — every trace hook is nil-safe. The dnhd rewrangler uses it
// so /debug/wrangletrace can serve the last run's span tree.
func (s *System) WrangleWithTrace(tr *obs.Trace, parent int32) (*Report, error) {
	s.pubMu.Lock()
	defer s.pubMu.Unlock()
	s.ctx.Trace = tr
	s.ctx.TraceSpan = parent
	defer func() {
		s.ctx.Trace = nil
		s.ctx.TraceSpan = 0
	}()
	run, err := s.process.Run(s.ctx)
	if err != nil {
		return nil, fmt.Errorf("metamess: %w", err)
	}
	rep := &Report{
		Datasets:        s.ctx.Published.Len(),
		CoverageBefore:  run.MessBefore.OccurrenceCoverage,
		CoverageAfter:   run.MessAfter.OccurrenceCoverage,
		DistinctNames:   run.MessAfter.DistinctNames,
		UnresolvedNames: run.MessAfter.UnresolvedNames,
		Duration:        run.Duration,
	}
	for _, st := range run.Steps {
		rep.Steps = append(rep.Steps, StepSummary{
			Component: st.Component,
			Duration:  st.Duration,
			Counters:  st.Counters,
			Coverage:  st.MessAfter.OccurrenceCoverage,
		})
		if st.Component == "publish" {
			rep.Delta.Published = st.Counters["changed"]
			rep.Delta.Retracted = st.Counters["retracted"]
			rep.Delta.GenerationStable = st.Counters["generationStable"] == 1
		}
	}
	if d := s.ctx.Delta; d != nil {
		rep.Delta.Added = len(d.Added)
		rep.Delta.Changed = len(d.Changed)
		rep.Delta.Removed = len(d.Removed)
		rep.Delta.Unchanged = d.Unchanged
		rep.Delta.FullReprocess = d.Full
	}
	if v := s.ctx.LastValidation; v != nil {
		rep.ValidationErrors = v.Errors()
		rep.ValidationWarnings = v.Warnings()
	}
	return rep, nil
}

// LatLon is a WGS84 coordinate.
type LatLon struct {
	Lat, Lon float64
}

// VariableTerm is one queried variable, optionally range-constrained.
type VariableTerm struct {
	Name     string
	Min, Max *float64
}

// Query is a "Data Near Here" search request.
type Query struct {
	// Near ranks datasets by distance from this point.
	Near *LatLon
	// From and To bound the time period of interest (both zero = no time
	// dimension).
	From, To time.Time
	// Variables are the environmental variables of interest.
	Variables []VariableTerm
	// K caps the result count (default 10).
	K int
}

// Hit is one ranked search result.
type Hit struct {
	// Path is the dataset's archive-relative path.
	Path string `json:"path"`
	// Score is the similarity in [0,1].
	Score float64 `json:"score"`
	// MatchedVariables explains which catalog variables matched each
	// query term.
	MatchedVariables []string `json:"matchedVariables,omitempty"`
	// Summary is the rendered dataset summary page.
	Summary string `json:"summary"`
}

// hitsFromResults converts internal search results into the facade's
// Hit shape, rendering each hit's summary page and match explanations.
func hitsFromResults(results []search.Result) []Hit {
	hits := make([]Hit, len(results))
	for i, r := range results {
		h := Hit{
			Path:    r.Feature.Path,
			Score:   r.Score,
			Summary: search.Summarize(r.Feature).Render(),
		}
		for _, ts := range r.TermScores {
			if ts.MatchedAs != "" {
				h.MatchedVariables = append(h.MatchedVariables,
					fmt.Sprintf("%s -> %s (%.2f)", ts.Term, ts.MatchedAs, ts.Score))
			}
		}
		hits[i] = h
	}
	return hits
}

// Search ranks published datasets against the query.
func (s *System) Search(q Query) ([]Hit, error) {
	return s.SearchContext(context.Background(), q)
}

// SearchContext is Search with cancellation: when ctx ends before the
// ranking is complete the search stops scoring and returns ctx's error.
// This is the entry point request-scoped callers (the dnhd server)
// use.
func (s *System) SearchContext(ctx context.Context, q Query) ([]Hit, error) {
	results, err := s.searcher.SearchContext(ctx, internalQuery(q))
	if err != nil {
		return nil, fmt.Errorf("metamess: %w", err)
	}
	return hitsFromResults(results), nil
}

// SearchPartialContext is SearchContext with best-effort deadline
// semantics: when ctx ends mid-ranking it returns the hits gathered so
// far (possibly none) with partial=true instead of an error. The dnhd
// server uses it to honor per-request budgets without discarding work
// already done; see search.Searcher.SearchPartialContext for the
// exactness caveat on partial rankings.
func (s *System) SearchPartialContext(ctx context.Context, q Query) ([]Hit, bool, error) {
	results, partial, err := s.searcher.SearchPartialContext(ctx, internalQuery(q))
	if err != nil {
		return nil, false, fmt.Errorf("metamess: %w", err)
	}
	return hitsFromResults(results), partial, nil
}

// internalQuery converts the facade query into the search package's.
func internalQuery(q Query) search.Query {
	iq := search.Query{K: q.K}
	if q.Near != nil {
		iq.Location = &geo.Point{Lat: q.Near.Lat, Lon: q.Near.Lon}
	}
	if !q.From.IsZero() || !q.To.IsZero() {
		tr := geo.NewTimeRange(q.From, q.To)
		iq.Time = &tr
	}
	for _, v := range q.Variables {
		term := search.Term{Name: v.Name}
		if v.Min != nil || v.Max != nil {
			lo, hi := 0.0, 0.0
			if v.Min != nil {
				lo = *v.Min
			}
			if v.Max != nil {
				hi = *v.Max
			} else {
				hi = lo
			}
			r := geo.NewValueRange(lo, hi)
			term.Range = &r
		}
		iq.Terms = append(iq.Terms, term)
	}
	return iq
}

// SearchText parses and runs a textual "Data Near Here" query, e.g. the
// poster's example information need:
//
//	near 45.5,-124.4 in mid-2010 with temperature between 5 and 10
func (s *System) SearchText(query string) ([]Hit, error) {
	return s.SearchTextContext(context.Background(), query)
}

// SearchTextContext is SearchText with cancellation (see SearchContext).
func (s *System) SearchTextContext(ctx context.Context, query string) ([]Hit, error) {
	iq, err := search.ParseQuery(query)
	if err != nil {
		return nil, fmt.Errorf("metamess: %w", err)
	}
	results, err := s.searcher.SearchContext(ctx, iq)
	if err != nil {
		return nil, fmt.Errorf("metamess: %w", err)
	}
	return hitsFromResults(results), nil
}

// DatasetSummary renders the summary page for an archive-relative path.
// The lookup goes through the immutable snapshot — no lock, no feature
// clone — so a serving layer can render summaries at full query rate.
func (s *System) DatasetSummary(path string) (string, error) {
	f, ok := s.ctx.Published.Snapshot().ByID(catalog.IDForPath(path))
	if !ok {
		return "", fmt.Errorf("metamess: dataset %q not in published catalog", path)
	}
	return search.Summarize(f).Render(), nil
}

// SnapshotGeneration returns the generation of the published snapshot
// searches currently read. Every publish that actually changes the
// catalog (and any direct mutation of the published catalog) bumps it,
// so the value keys caches: a response computed at generation G is
// valid exactly as long as SnapshotGeneration() == G. A no-op
// re-wrangle publishes an empty delta and leaves the generation — and
// therefore every cached response — intact.
func (s *System) SnapshotGeneration() uint64 {
	return s.ctx.Published.Snapshot().Generation()
}

// SnapshotShardSizes returns the per-shard feature counts of the
// published snapshot, in shard order. The slice length is the shard
// count (Config.SnapshotShards or its GOMAXPROCS default); the sizes
// sum to DatasetCount. Serving layers expose it for balance monitoring.
func (s *System) SnapshotShardSizes() []int {
	return s.ctx.Published.Snapshot().ShardSizes()
}

// AddSynonym records a curated synonym mapping (curatorial activity 3:
// adding entries to a synonym table). Takes effect on the next Wrangle.
func (s *System) AddSynonym(preferred string, alternates ...string) error {
	return s.ctx.Knowledge.Synonyms.Add(preferred, alternates...)
}

// CuratorQueue lists the names awaiting a curator decision, with the
// classifier's evidence.
func (s *System) CuratorQueue() []string {
	cls := semdiv.NewClassifier(s.ctx.Knowledge)
	var out []string
	for _, vc := range s.ctx.Working.VariableNameCounts() {
		f := cls.Classify(vc.Value)
		switch f.Category {
		case semdiv.CatAmbiguous, semdiv.CatUnknown, semdiv.CatSourceContext:
			out = append(out, fmt.Sprintf("%s (%s; %s)", vc.Value, f.Category, f.Evidence))
		}
	}
	return out
}

// Clarify records a curator decision mapping an ambiguous or unknown
// name to a canonical target; Hide excludes it instead. Decisions apply
// on the next Wrangle.
func (s *System) Clarify(rawName, target string) {
	s.ctx.PendingDecisions = append(s.ctx.PendingDecisions,
		semdiv.Decision{RawName: rawName, Action: semdiv.ClarifyTo, Target: target})
}

// Hide records a curator decision to exclude a name from search.
func (s *System) Hide(rawName string) {
	s.ctx.PendingDecisions = append(s.ctx.PendingDecisions,
		semdiv.Decision{RawName: rawName, Action: semdiv.Hide})
}

// ExportRules renders the transformation rules discovered so far in the
// poster's JSON format (audit, versioning, replay elsewhere).
func (s *System) ExportRules() ([]byte, error) {
	return refine.ExportJSON(s.ctx.DiscoveredRules)
}

// VariableMenu renders the generated variable hierarchy as an indented
// menu, expanded to maxDepth levels (0 = fully expanded).
func (s *System) VariableMenu(maxDepth int) []string {
	if s.taxonomy == nil {
		return nil
	}
	return s.taxonomy.Menu(maxDepth)
}

// Validation returns the latest validation findings as display strings.
func (s *System) Validation() []string {
	if s.ctx.LastValidation == nil {
		return nil
	}
	var out []string
	for _, f := range s.ctx.LastValidation.Findings {
		out = append(out, fmt.Sprintf("[%s] %s: %s", f.Severity, f.Check, f.Detail))
	}
	return out
}

// SaveCatalog persists the published catalog as a checksummed snapshot.
func (s *System) SaveCatalog(path string) error {
	return catalog.Save(path, s.ctx.Published)
}

// LoadCatalog replaces the published catalog from a snapshot, so a
// search service can start without re-scanning the archive.
func (s *System) LoadCatalog(path string) error {
	c, err := catalog.Load(path)
	if err != nil {
		return err
	}
	s.ctx.Published.ReplaceAll(c)
	return nil
}

// DatasetCount returns the published catalog's size.
func (s *System) DatasetCount() int { return s.ctx.Published.Len() }

// Vocabulary returns the canonical variable names the system wrangles
// toward.
func (s *System) Vocabulary() []string {
	return vocab.Names(s.ctx.Knowledge.Vocabulary)
}

// ValidationOK reports whether the last run's validation passed.
func (s *System) ValidationOK() bool {
	return s.ctx.LastValidation != nil && s.ctx.LastValidation.OK()
}
