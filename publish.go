package metamess

import (
	"encoding/json"
	"errors"
	"fmt"

	"metamess/internal/catalog"
	"metamess/internal/validate"
)

// Push-based ingest: instead of waiting for a wrangle to walk an
// archive, a live producer parses its own datasets (scan.ParseBytes, or
// any process producing catalog features) and publishes the batch
// directly. The batch flows through the same pipeline a wrangle's
// publish uses — sharded ApplyDelta, knowledge-epoch sidecar, durable
// journal append — so durability, follower replication, and
// generation-keyed cache invalidation need no push-specific machinery,
// and a warm publish costs zero filesystem stat calls.

// MaxPublishFeatures bounds one publish batch; larger batches are
// rejected before any work.
const MaxPublishFeatures = 10000

// ErrPublishRejected marks a publish refused before any state changed:
// a malformed request, an invalid feature, or a validation error. The
// serving layer maps it to a client-error status. A rejected publish
// leaves the catalogs, the snapshot generation, and the journal exactly
// as they were.
var ErrPublishRejected = errors.New("metamess: publish rejected")

// PublishRequest is the POST /publish wire body: a batch of complete
// catalog features to upsert, plus archive-relative paths to retract.
// Features use the catalog's JSON encoding — the same shape the
// checkpoint, the journal, and the replication stream carry.
type PublishRequest struct {
	Features []*catalog.Feature `json:"features,omitempty"`
	Remove   []string           `json:"remove,omitempty"`
}

// PublishReceipt reports one accepted publish.
type PublishReceipt struct {
	// Generation is the served snapshot generation after the publish —
	// the value a read-your-writes client sends as X-Min-Generation.
	Generation uint64 `json:"generation"`
	// Published and Retracted count the features the delta actually
	// changed; a replayed batch counts zero for both.
	Published int `json:"published"`
	Retracted int `json:"retracted"`
	// Datasets is the catalog size after the publish.
	Datasets int `json:"datasets"`
	// Stable marks a publish whose delta was empty: the generation did
	// not move and every cached response stayed valid.
	Stable bool `json:"stable"`
}

// DecodePublishRequest parses and statically validates a publish body.
// The error is always ErrPublishRejected-wrapped: nothing about a
// malformed request touches system state. Validation is exhaustive
// before any mutation — batch size, per-feature invariants
// (catalog.Feature.Validate), duplicate IDs, and upsert/retract
// overlaps are all checked here.
func DecodePublishRequest(data []byte) (*PublishRequest, error) {
	var req PublishRequest
	if err := json.Unmarshal(data, &req); err != nil {
		return nil, fmt.Errorf("%w: bad request body: %v", ErrPublishRejected, err)
	}
	if err := validatePublishRequest(&req); err != nil {
		return nil, err
	}
	return &req, nil
}

// validatePublishRequest checks a decoded request's static invariants.
func validatePublishRequest(req *PublishRequest) error {
	if len(req.Features) == 0 && len(req.Remove) == 0 {
		return fmt.Errorf("%w: empty publish (no features, no removals)", ErrPublishRejected)
	}
	if len(req.Features) > MaxPublishFeatures {
		return fmt.Errorf("%w: batch of %d features exceeds the %d cap", ErrPublishRejected, len(req.Features), MaxPublishFeatures)
	}
	seen := make(map[string]bool, len(req.Features))
	for i, f := range req.Features {
		if f == nil {
			return fmt.Errorf("%w: feature %d is null", ErrPublishRejected, i)
		}
		if err := f.Validate(); err != nil {
			return fmt.Errorf("%w: feature %d: %v", ErrPublishRejected, i, err)
		}
		if seen[f.ID] {
			return fmt.Errorf("%w: duplicate feature %s (path %q)", ErrPublishRejected, f.ID, f.Path)
		}
		seen[f.ID] = true
	}
	for _, p := range req.Remove {
		if p == "" {
			return fmt.Errorf("%w: empty removal path", ErrPublishRejected)
		}
		if seen[catalog.IDForPath(p)] {
			return fmt.Errorf("%w: path %q both published and removed", ErrPublishRejected, p)
		}
	}
	return nil
}

// publishChecks is the validation suite a push runs over its batch
// before touching any state. The batch-scoped catalog means directory
// type mixes and implausible ranges within the batch are caught; the
// synonym-coverage and expected-datasets checks need whole-catalog
// context and stay with the wrangle chain.
func publishChecks() []validate.Check {
	return []validate.Check{
		validate.SameTypeDirectory{},
		validate.UnitsResolved{},
		validate.PlausibleRanges{Slack: 0.5},
	}
}

// PublishFeatures ingests one pushed batch: validate everything, then
// apply and journal the delta exactly like a wrangle's publish step.
// The method serializes against Wrangle, so a push and a background
// re-wrangle can never interleave their apply/journal sequences.
//
// The returned error is ErrPublishRejected-wrapped when the batch was
// refused with no state change; any other error is an internal failure
// (e.g. a degraded journal refusing appends).
func (s *System) PublishFeatures(req *PublishRequest) (PublishReceipt, error) {
	if req == nil {
		return PublishReceipt{}, fmt.Errorf("%w: nil request", ErrPublishRejected)
	}
	if err := validatePublishRequest(req); err != nil {
		return PublishReceipt{}, err
	}
	// Rule-based validation over the batch alone, before the lock: a
	// batch that fails the checks is rejected without blocking wrangles.
	scratch := catalog.New()
	for _, f := range req.Features {
		if err := scratch.Upsert(f); err != nil {
			return PublishReceipt{}, fmt.Errorf("%w: %v", ErrPublishRejected, err)
		}
	}
	report := validate.Run(&validate.Context{
		Catalog:   scratch,
		Knowledge: s.ctx.Knowledge,
		Units:     s.ctx.Units,
	}, publishChecks()...)
	if !report.OK() {
		findings := ""
		for _, f := range report.Findings {
			if f.Severity == validate.Error {
				findings = f.Detail
				break
			}
		}
		return PublishReceipt{}, fmt.Errorf("%w: validation failed with %d errors (%s)", ErrPublishRejected, report.Errors(), findings)
	}

	removeIDs := make([]string, 0, len(req.Remove))
	for _, p := range req.Remove {
		removeIDs = append(removeIDs, catalog.IDForPath(p))
	}

	s.pubMu.Lock()
	defer s.pubMu.Unlock()
	gen, changed, removed, err := s.ctx.PublishDirect(req.Features, removeIDs)
	if err != nil {
		return PublishReceipt{}, fmt.Errorf("metamess: %w", err)
	}
	return PublishReceipt{
		Generation: gen,
		Published:  changed,
		Retracted:  removed,
		Datasets:   s.ctx.Published.Len(),
		Stable:     changed == 0 && removed == 0,
	}, nil
}
