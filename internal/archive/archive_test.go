package archive

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"metamess/internal/semdiv"
	"metamess/internal/vocab"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultGenConfig(9, 42)
	dirA, dirB := t.TempDir(), t.TempDir()
	mA, err := Generate(dirA, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mB, err := Generate(dirB, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(mA.Datasets) != len(mB.Datasets) {
		t.Fatal("dataset counts differ")
	}
	for i := range mA.Datasets {
		a, b := mA.Datasets[i], mB.Datasets[i]
		if a.Path != b.Path || a.Rows != b.Rows || len(a.Vars) != len(b.Vars) {
			t.Fatalf("dataset %d differs: %+v vs %+v", i, a, b)
		}
		fa, err := os.ReadFile(filepath.Join(dirA, a.Path))
		if err != nil {
			t.Fatal(err)
		}
		fb, err := os.ReadFile(filepath.Join(dirB, b.Path))
		if err != nil {
			t.Fatal(err)
		}
		if string(fa) != string(fb) {
			t.Fatalf("dataset %s bytes differ between runs", a.Path)
		}
	}
}

func TestGenerateCoversSourcesAndFormats(t *testing.T) {
	m, err := Generate(t.TempDir(), DefaultGenConfig(9, 7))
	if err != nil {
		t.Fatal(err)
	}
	formats := map[Format]int{}
	sourceSet := map[string]int{}
	for _, d := range m.Datasets {
		formats[d.Format]++
		sourceSet[d.Source]++
		if !d.BBox.Valid() {
			t.Errorf("%s: invalid bbox %v", d.Path, d.BBox)
		}
		if !d.Time.Valid() {
			t.Errorf("%s: invalid time range", d.Path)
		}
		if d.Rows < 40 || d.Rows > 160 {
			t.Errorf("%s: rows %d out of configured bounds", d.Path, d.Rows)
		}
	}
	for _, f := range []Format{FormatCSV, FormatOBS, FormatJSONL} {
		if formats[f] == 0 {
			t.Errorf("format %s never generated", f)
		}
	}
	for _, s := range []string{"stations", "cruises", "auv"} {
		if sourceSet[s] == 0 {
			t.Errorf("source %s never generated", s)
		}
	}
}

func TestGenerateMessCoversCategories(t *testing.T) {
	// Rare categories (ambiguous applies only to temperature/depth
	// variables) need a larger corpus and heavier mess to appear reliably.
	cfg := DefaultGenConfig(90, 11)
	cfg.Mess = DefaultMess().Scale(1.5)
	m, err := Generate(t.TempDir(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := m.CategoryCounts()
	for _, cat := range semdiv.Categories() {
		if counts[cat] == 0 {
			t.Errorf("category %s never injected in 90 datasets", cat)
		}
	}
	if counts[semdiv.CatClean] == 0 {
		t.Error("no clean names at default mess rates")
	}
	// Clean should dominate at default rates.
	total := 0
	for _, n := range counts {
		total += n
	}
	if counts[semdiv.CatClean]*2 < total-counts[semdiv.CatExcessive] {
		t.Errorf("clean names not the majority: %v", counts)
	}
}

func TestGenerateNoMessIsClean(t *testing.T) {
	cfg := DefaultGenConfig(6, 3)
	cfg.Mess = NoMess()
	m, err := Generate(t.TempDir(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range m.Datasets {
		for _, v := range d.Vars {
			if v.Category != semdiv.CatClean {
				t.Errorf("%s: %q injected %s with NoMess", d.Path, v.Raw, v.Category)
			}
			if v.Raw != v.Canonical {
				t.Errorf("%s: raw %q != canonical %q with NoMess", d.Path, v.Raw, v.Canonical)
			}
			if v.Unit != v.CanonicalUnit {
				t.Errorf("%s: unit %q != canonical %q with NoMess", d.Path, v.Unit, v.CanonicalUnit)
			}
		}
	}
}

func TestGenerateUniqueRawNamesPerDataset(t *testing.T) {
	m, err := Generate(t.TempDir(), DefaultGenConfig(30, 5))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range m.Datasets {
		seen := map[string]bool{}
		for _, v := range d.Vars {
			if seen[v.Raw] {
				t.Errorf("%s: duplicate raw name %q", d.Path, v.Raw)
			}
			seen[v.Raw] = true
		}
	}
}

func TestGenerateConfigValidation(t *testing.T) {
	base := DefaultGenConfig(3, 1)
	cases := []func(*GenConfig){
		func(c *GenConfig) { c.Datasets = 0 },
		func(c *GenConfig) { c.RowsMin = 0 },
		func(c *GenConfig) { c.RowsMax = c.RowsMin - 1 },
		func(c *GenConfig) { c.VarsMin = 0 },
		func(c *GenConfig) { c.Region.MaxLat = c.Region.MinLat - 1 },
		func(c *GenConfig) { c.TimeSpan.End = c.TimeSpan.Start.Add(-1) },
	}
	for i, mutate := range cases {
		cfg := base
		mutate(&cfg)
		if _, err := Generate(t.TempDir(), cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m, err := Generate(dir, DefaultGenConfig(6, 9))
	if err != nil {
		t.Fatal(err)
	}
	back, err := ReadManifest(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Datasets) != len(m.Datasets) {
		t.Fatalf("round trip datasets = %d, want %d", len(back.Datasets), len(m.Datasets))
	}
	byPath := back.ByPath()
	for _, d := range m.Datasets {
		got, ok := byPath[d.Path]
		if !ok {
			t.Fatalf("dataset %s missing from manifest", d.Path)
		}
		if got.Rows != d.Rows || len(got.Vars) != len(d.Vars) {
			t.Errorf("dataset %s corrupted: %+v", d.Path, got)
		}
	}
	if _, err := ReadManifest(filepath.Join(dir, "nope.json")); err == nil {
		t.Error("missing manifest should fail")
	}
}

func TestCanonicalForFirstWins(t *testing.T) {
	m := &Manifest{Datasets: []DatasetInfo{
		{Path: "a", Vars: []VarTruth{{Raw: "temp", Canonical: "water_temperature"}}},
		{Path: "b", Vars: []VarTruth{{Raw: "temp", Canonical: "air_temperature"}}},
	}}
	cf := m.CanonicalFor()
	if cf["temp"] != "water_temperature" {
		t.Errorf("CanonicalFor = %q, want first mapping", cf["temp"])
	}
}

func TestMessScale(t *testing.T) {
	m := DefaultMess()
	half := m.Scale(0.5)
	if half.MisspellRate != m.MisspellRate*0.5 {
		t.Error("Scale did not halve misspell rate")
	}
	if half.ExcessivePerDataset != 1 {
		t.Errorf("scaled excessive = %d, want 1", half.ExcessivePerDataset)
	}
	zero := m.Scale(0)
	if zero.MisspellRate != 0 || zero.ExcessivePerDataset != 0 {
		t.Error("Scale(0) should zero everything")
	}
}

func TestMisspellProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		out := misspell("water_temperature", rng)
		if out == "" {
			t.Fatal("misspell produced empty name")
		}
		if out[0] != 'w' {
			t.Errorf("misspell changed first letter: %q", out)
		}
		diff := len(out) - len("water_temperature")
		if diff < -1 || diff > 1 {
			t.Errorf("misspell changed length by %d: %q", diff, out)
		}
	}
	if got := misspell("ab", rng); got != "ab" {
		t.Errorf("short names should be untouched, got %q", got)
	}
}

func TestFormatExt(t *testing.T) {
	if FormatCSV.Ext() != ".csv" || FormatOBS.Ext() != ".obs" || FormatJSONL.Ext() != ".jsonl" {
		t.Error("format extensions wrong")
	}
	if Format("x").Ext() != ".dat" {
		t.Error("unknown format extension wrong")
	}
}

func TestGenerateWithCustomVocabulary(t *testing.T) {
	cfg := DefaultGenConfig(3, 2)
	cfg.Vocabulary = vocab.Standard()[:5]
	cfg.VarsMin, cfg.VarsMax = 2, 4
	m, err := Generate(t.TempDir(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	allowed := map[string]bool{}
	for _, v := range cfg.Vocabulary {
		allowed[v.Name] = true
	}
	for _, d := range m.Datasets {
		for _, v := range d.Vars {
			if v.Category == semdiv.CatExcessive {
				continue
			}
			if !allowed[v.Canonical] {
				t.Errorf("canonical %q outside custom vocabulary", v.Canonical)
			}
		}
	}
}
