package archive

import (
	"fmt"
	"math/rand"
	"strings"

	"metamess/internal/semdiv"
	"metamess/internal/vocab"
)

// MessConfig sets the injection rate for each Table-1 category. Rates are
// probabilities per emitted variable and should sum to less than 1; the
// remaining mass emits the clean canonical name.
type MessConfig struct {
	// MisspellRate injects minor variations (transpositions, drops,
	// doubled letters) of the canonical name.
	MisspellRate float64 `json:"misspellRate"`
	// SynonymRate emits a curated synonym instead of the canonical name.
	SynonymRate float64 `json:"synonymRate"`
	// AbbrevRate emits an abbreviation (MWHLA-style).
	AbbrevRate float64 `json:"abbrevRate"`
	// AmbiguousRate emits an ambiguous short form ("temp").
	AmbiguousRate float64 `json:"ambiguousRate"`
	// BareBaseRate emits the bare base concept for multi-context
	// variables ("temperature" instead of "water_temperature").
	BareBaseRate float64 `json:"bareBaseRate"`
	// MultiLevelRate emits a numeric-suffix family member
	// ("fluores410"-style) for the variable's base concept.
	MultiLevelRate float64 `json:"multiLevelRate"`
	// ExcessivePerDataset appends this many bookkeeping variables
	// (qa_level, ..._flag) to every dataset.
	ExcessivePerDataset int `json:"excessivePerDataset"`
	// UnitAliasRate writes a unit alias ("C", "Centigrade") instead of
	// the canonical symbol.
	UnitAliasRate float64 `json:"unitAliasRate"`
	// UnitConvertRate records a variable in a genuinely different unit of
	// the same family (degF instead of degC, cm/s instead of m/s), with
	// the observation values converted accordingly — legacy-instrument
	// data that the wrangling chain must convert back.
	UnitConvertRate float64 `json:"unitConvertRate"`
}

// DefaultMess returns the mess profile used by the experiments: every
// category present, clean names still the majority.
func DefaultMess() MessConfig {
	return MessConfig{
		MisspellRate:        0.08,
		SynonymRate:         0.12,
		AbbrevRate:          0.08,
		AmbiguousRate:       0.04,
		BareBaseRate:        0.06,
		MultiLevelRate:      0.05,
		ExcessivePerDataset: 2,
		UnitAliasRate:       0.30,
		UnitConvertRate:     0.06,
	}
}

// NoMess returns a profile that emits only clean canonical names.
func NoMess() MessConfig { return MessConfig{} }

// Scale returns a copy of the profile with every rate multiplied by f
// (ExcessivePerDataset is scaled and rounded). Used by mess-level sweeps.
func (m MessConfig) Scale(f float64) MessConfig {
	s := m
	s.MisspellRate *= f
	s.SynonymRate *= f
	s.AbbrevRate *= f
	s.AmbiguousRate *= f
	s.BareBaseRate *= f
	s.MultiLevelRate *= f
	s.UnitAliasRate *= f
	s.UnitConvertRate *= f
	s.ExcessivePerDataset = int(float64(m.ExcessivePerDataset)*f + 0.5)
	return s
}

// messer applies the profile deterministically from a seeded rng.
type messer struct {
	cfg MessConfig
	rng *rand.Rand
	// multiContextBases are bases that occur under 2+ contexts, eligible
	// for bare-base (source-context) injection.
	multiContextBases map[string]bool
	unitAliases       map[string][]string
}

func newMesser(cfg MessConfig, rng *rand.Rand, vars []vocab.Variable) *messer {
	contexts := make(map[string]map[string]bool)
	for _, v := range vars {
		if v.Context == "" {
			continue
		}
		set := contexts[v.Base]
		if set == nil {
			set = make(map[string]bool)
			contexts[v.Base] = set
		}
		set[v.Context] = true
	}
	names := make(map[string]bool, len(vars))
	for _, v := range vars {
		names[v.Name] = true
	}
	multi := make(map[string]bool)
	for base, ctxs := range contexts {
		// A bare base that is itself a canonical variable name ("pressure")
		// cannot be injected as source-context mess: it already denotes a
		// specific variable.
		if len(ctxs) >= 2 && !names[base] {
			multi[base] = true
		}
	}
	return &messer{
		cfg:               cfg,
		rng:               rng,
		multiContextBases: multi,
		unitAliases: map[string][]string{
			"degC": {"C", "Centigrade", "deg C", "celsius"},
			"PSU":  {"psu", "practical salinity units", "ppt"},
			"m/s":  {"m s-1", "meters per second"},
			"mg/L": {"mg l-1", "milligrams per liter"},
			"NTU":  {"ntu"},
			"m":    {"meters", "metres"},
			"dbar": {"decibar", "db"},
			"kPa":  {"kilopascal"},
			"%":    {"percent", "pct"},
			"ug/L": {"µg/L", "ug l-1"},
			"1":    {"count", "unitless", "n/a"},
			"pH":   {"ph units"},
		},
	}
}

// messName derives the emitted (possibly messy) name and its ground-truth
// category for one canonical variable.
func (m *messer) messName(v vocab.Variable) (raw string, cat semdiv.Category) {
	roll := m.rng.Float64()
	cum := m.cfg.MisspellRate
	if roll < cum {
		if mis := misspell(v.Name, m.rng); mis != v.Name {
			return mis, semdiv.CatMinorVariation
		}
		return v.Name, semdiv.CatClean
	}
	cum += m.cfg.SynonymRate
	if roll < cum {
		if len(v.Synonyms) > 0 {
			return v.Synonyms[m.rng.Intn(len(v.Synonyms))], semdiv.CatSynonym
		}
		return v.Name, semdiv.CatClean
	}
	cum += m.cfg.AbbrevRate
	if roll < cum {
		if len(v.Abbrevs) > 0 {
			return v.Abbrevs[m.rng.Intn(len(v.Abbrevs))], semdiv.CatAbbreviation
		}
		return v.Name, semdiv.CatClean
	}
	cum += m.cfg.AmbiguousRate
	if roll < cum {
		if amb, ok := ambiguousFormFor(v); ok {
			return amb, semdiv.CatAmbiguous
		}
		return v.Name, semdiv.CatClean
	}
	cum += m.cfg.BareBaseRate
	if roll < cum {
		if m.multiContextBases[v.Base] {
			return v.Base, semdiv.CatSourceContext
		}
		return v.Name, semdiv.CatClean
	}
	cum += m.cfg.MultiLevelRate
	if roll < cum {
		if stem, ok := multiLevelStem(v.Base); ok {
			return fmt.Sprintf("%s%d", stem, 100+m.rng.Intn(900)), semdiv.CatMultiLevel
		}
		return v.Name, semdiv.CatClean
	}
	return v.Name, semdiv.CatClean
}

// crossUnits maps a vocabulary unit to same-family units with
// non-identity conversions a legacy instrument might report in.
var crossUnits = map[string][]string{
	"degC": {"degF"},
	"m/s":  {"cm/s", "knots"},
	"m":    {"ft"},
	"dbar": {"kPa"},
}

// messUnit derives the emitted unit string for the canonical symbol and
// reports whether observation values must be converted into it.
func (m *messer) messUnit(canonical string) (unit string, convert bool) {
	if cross := crossUnits[canonical]; len(cross) > 0 && m.rng.Float64() < m.cfg.UnitConvertRate {
		return cross[m.rng.Intn(len(cross))], true
	}
	aliases := m.unitAliases[canonical]
	if len(aliases) == 0 || m.rng.Float64() >= m.cfg.UnitAliasRate {
		return canonical, false
	}
	return aliases[m.rng.Intn(len(aliases))], false
}

// excessiveNames returns the dataset's bookkeeping variables.
func (m *messer) excessiveNames() []string {
	pool := []string{"qa_level", "qc_flags", "instrument_serial", "sigma_theta_qc", "sensor_serial_no", "salinity_flag"}
	n := m.cfg.ExcessivePerDataset
	if n > len(pool) {
		n = len(pool)
	}
	// Deterministic subset: shuffle a copy with the shared rng.
	idx := m.rng.Perm(len(pool))[:n]
	out := make([]string, n)
	for i, j := range idx {
		out[i] = pool[j]
	}
	return out
}

// misspell applies one random small edit: transpose, drop, or double a
// letter (never the first character, keeping names recognizable).
func misspell(name string, rng *rand.Rand) string {
	r := []rune(name)
	if len(r) < 4 {
		return name
	}
	pos := 1 + rng.Intn(len(r)-2)
	switch rng.Intn(3) {
	case 0: // transpose pos and pos+1
		r[pos], r[pos+1] = r[pos+1], r[pos]
		return string(r)
	case 1: // drop pos
		return string(append(r[:pos:pos], r[pos+1:]...))
	default: // double pos
		out := make([]rune, 0, len(r)+1)
		out = append(out, r[:pos+1]...)
		out = append(out, r[pos])
		out = append(out, r[pos+1:]...)
		return string(out)
	}
}

// ambiguousFormFor maps a variable to its ambiguous short form, when the
// ambiguity dictionary has one for its base.
func ambiguousFormFor(v vocab.Variable) (string, bool) {
	switch v.Base {
	case "temperature":
		return "temp", true
	case "depth":
		return "level", true
	default:
		return "", false
	}
}

// multiLevelStem returns the truncated stem used for numeric-suffix
// family members, mirroring the poster's fluores375 example.
func multiLevelStem(base string) (string, bool) {
	b := strings.ReplaceAll(base, " ", "")
	if len(b) < 6 {
		return "", false
	}
	cut := len(b) * 7 / 10
	if cut < 4 {
		cut = 4
	}
	return b[:cut], true
}
