package archive

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"metamess/internal/geo"
	"metamess/internal/semdiv"
	"metamess/internal/units"
	"metamess/internal/vocab"
)

// GenConfig configures archive generation. All randomness flows from
// Seed, so equal configs produce byte-identical archives.
type GenConfig struct {
	// Seed drives all randomness.
	Seed int64 `json:"seed"`
	// Datasets is the number of dataset files to emit.
	Datasets int `json:"datasets"`
	// Region bounds all observation locations (Columbia River estuary by
	// default).
	Region geo.BBox `json:"region"`
	// TimeSpan bounds all observation times.
	TimeSpan geo.TimeRange `json:"timeSpan"`
	// RowsMin and RowsMax bound per-dataset observation counts.
	RowsMin int `json:"rowsMin"`
	RowsMax int `json:"rowsMax"`
	// VarsMin and VarsMax bound per-dataset variable counts (before
	// excessive variables are appended).
	VarsMin int `json:"varsMin"`
	VarsMax int `json:"varsMax"`
	// Mess sets the semantic-diversity injection profile.
	Mess MessConfig `json:"mess"`
	// Vocabulary is the canonical variable list; nil means vocab.Standard.
	Vocabulary []vocab.Variable `json:"-"`
}

// DefaultGenConfig returns the configuration the experiments use, sized
// for n datasets.
func DefaultGenConfig(n int, seed int64) GenConfig {
	return GenConfig{
		Seed:     seed,
		Datasets: n,
		Region:   geo.BBox{MinLat: 45.8, MinLon: -124.3, MaxLat: 46.6, MaxLon: -122.8},
		TimeSpan: geo.NewTimeRange(
			time.Date(2009, 1, 1, 0, 0, 0, 0, time.UTC),
			time.Date(2012, 12, 31, 0, 0, 0, 0, time.UTC)),
		RowsMin: 40, RowsMax: 160,
		VarsMin: 3, VarsMax: 8,
		Mess: DefaultMess(),
	}
}

// sourceSpec fixes each source's format and spatial character.
type sourceSpec struct {
	name   string
	format Format
	extent float64 // degrees of spatial spread within a dataset
	moving bool
}

var sources = []sourceSpec{
	{name: "stations", format: FormatOBS, extent: 0.002, moving: false},
	{name: "cruises", format: FormatCSV, extent: 0.4, moving: true},
	{name: "auv", format: FormatJSONL, extent: 0.08, moving: true},
}

// Generate writes a synthetic archive under root and returns its
// ground-truth manifest (which it also saves as root/manifest.json).
func Generate(root string, cfg GenConfig) (*Manifest, error) {
	if cfg.Datasets <= 0 {
		return nil, fmt.Errorf("archive: config needs a positive dataset count")
	}
	if cfg.RowsMin <= 0 || cfg.RowsMax < cfg.RowsMin {
		return nil, fmt.Errorf("archive: bad row bounds [%d,%d]", cfg.RowsMin, cfg.RowsMax)
	}
	if cfg.VarsMin <= 0 || cfg.VarsMax < cfg.VarsMin {
		return nil, fmt.Errorf("archive: bad variable bounds [%d,%d]", cfg.VarsMin, cfg.VarsMax)
	}
	if !cfg.Region.Valid() {
		return nil, fmt.Errorf("archive: invalid region %v", cfg.Region)
	}
	if !cfg.TimeSpan.Valid() {
		return nil, fmt.Errorf("archive: invalid time span")
	}
	vars := cfg.Vocabulary
	if vars == nil {
		vars = vocab.Standard()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	ms := newMesser(cfg.Mess, rng, vars)
	byName := vocab.ByName(vars)
	unitReg := units.NewRegistry()

	m := &Manifest{Root: root, Seed: cfg.Seed}
	for i := 0; i < cfg.Datasets; i++ {
		spec := sources[i%len(sources)]
		info, err := generateDataset(root, i, spec, cfg, vars, byName, rng, ms, unitReg)
		if err != nil {
			return nil, err
		}
		m.Datasets = append(m.Datasets, *info)
	}
	if err := m.WriteJSON(filepath.Join(root, "manifest.json")); err != nil {
		return nil, err
	}
	return m, nil
}

func generateDataset(root string, i int, spec sourceSpec, cfg GenConfig,
	vars []vocab.Variable, byName map[string]vocab.Variable,
	rng *rand.Rand, ms *messer, unitReg *units.Registry) (*DatasetInfo, error) {

	// Time extent: 1-30 days somewhere in the span.
	span := cfg.TimeSpan.Duration()
	maxStartOff := span - 30*24*time.Hour
	if maxStartOff < 0 {
		maxStartOff = 0
	}
	start := cfg.TimeSpan.Start.Add(time.Duration(rng.Int63n(int64(maxStartOff) + 1)))
	duration := time.Duration(1+rng.Intn(30)) * 24 * time.Hour

	// Anchor location.
	anchor := geo.Point{
		Lat: cfg.Region.MinLat + rng.Float64()*(cfg.Region.MaxLat-cfg.Region.MinLat),
		Lon: cfg.Region.MinLon + rng.Float64()*(cfg.Region.MaxLon-cfg.Region.MinLon),
	}

	// Pick variables and mess their names; raw names must stay unique
	// within the dataset.
	k := cfg.VarsMin + rng.Intn(cfg.VarsMax-cfg.VarsMin+1)
	perm := rng.Perm(len(vars))
	var chosen []vocab.Variable
	var truths []VarTruth
	// convertTo holds the emitted unit for variables recorded in a
	// different (same-family) unit; values convert at emission time.
	var convertTo []string
	used := make(map[string]bool)
	for _, pi := range perm {
		if len(chosen) >= k {
			break
		}
		v := vars[pi]
		raw, cat := ms.messName(v)
		if used[raw] {
			raw, cat = v.Name, semdiv.CatClean
			if used[raw] {
				continue
			}
		}
		used[raw] = true
		unit, convert := ms.messUnit(v.Unit)
		target := ""
		if convert {
			target = unit
		}
		chosen = append(chosen, v)
		convertTo = append(convertTo, target)
		truths = append(truths, VarTruth{
			Raw: raw, Canonical: v.Name, Category: cat,
			Unit: unit, CanonicalUnit: v.Unit,
		})
	}
	for _, name := range ms.excessiveNames() {
		if used[name] {
			continue
		}
		used[name] = true
		chosen = append(chosen, vocab.Variable{
			Name: name, Base: name, Unit: "1",
			Typical: geo.ValueRange{Min: 0, Max: 5},
		})
		convertTo = append(convertTo, "")
		truths = append(truths, VarTruth{
			Raw: name, Canonical: name, Category: semdiv.CatExcessive,
			Unit: "1", CanonicalUnit: "1",
		})
	}

	// Generate observations.
	rows := cfg.RowsMin + rng.Intn(cfg.RowsMax-cfg.RowsMin+1)
	obs := make([]Observation, rows)
	bbox := geo.EmptyBBox()
	var trange geo.TimeRange
	for r := 0; r < rows; r++ {
		frac := float64(r) / float64(rows)
		at := start.Add(time.Duration(frac * float64(duration)))
		var p geo.Point
		if spec.moving {
			p = geo.Point{
				Lat: clampLat(anchor.Lat + (rng.Float64()-0.5)*spec.extent),
				Lon: clampLon(anchor.Lon + (rng.Float64()-0.5)*spec.extent),
			}
		} else {
			p = anchor
		}
		values := make([]float64, len(chosen))
		for vi, v := range chosen {
			tr := v.Typical
			if cv, ok := byName[v.Name]; ok {
				tr = cv.Typical
			}
			val := tr.Min + rng.Float64()*tr.Width()
			if target := convertTo[vi]; target != "" {
				conv, err := unitReg.Convert(val, v.Unit, target)
				if err != nil {
					return nil, fmt.Errorf("archive: convert %s %s->%s: %w", v.Name, v.Unit, target, err)
				}
				val = conv
			}
			values[vi] = val
		}
		obs[r] = Observation{Time: at, Point: p, Values: values}
		bbox = bbox.ExtendPoint(p)
		trange = trange.Extend(at)
	}

	// Write the file.
	year := start.Year()
	rel := filepath.Join(spec.name, strconv.Itoa(year),
		fmt.Sprintf("%s-%04d%s", spec.name, i, spec.format.Ext()))
	abs := filepath.Join(root, rel)
	if err := os.MkdirAll(filepath.Dir(abs), 0o755); err != nil {
		return nil, fmt.Errorf("archive: mkdir: %w", err)
	}
	var werr error
	switch spec.format {
	case FormatCSV:
		werr = writeCSV(abs, truths, obs)
	case FormatOBS:
		werr = writeOBS(abs, fmt.Sprintf("%s-%04d", spec.name, i), anchor, truths, obs)
	case FormatJSONL:
		werr = writeJSONL(abs, fmt.Sprintf("%s-%04d", spec.name, i), truths, obs)
	default:
		werr = fmt.Errorf("archive: unknown format %q", spec.format)
	}
	if werr != nil {
		return nil, werr
	}

	return &DatasetInfo{
		Path: rel, Format: spec.format, Source: spec.name,
		BBox: bbox, Time: trange, Rows: rows, Vars: truths,
	}, nil
}

func clampLat(v float64) float64 {
	if v > 90 {
		return 90
	}
	if v < -90 {
		return -90
	}
	return v
}

func clampLon(v float64) float64 {
	if v > 180 {
		return 180
	}
	if v < -180 {
		return -180
	}
	return v
}

// writeCSV emits the cruise format: a header row
// time,latitude,longitude,<name [unit]>... then one record per row.
func writeCSV(path string, truths []VarTruth, obs []Observation) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("archive: create %s: %w", path, err)
	}
	w := csv.NewWriter(f)
	header := []string{"time", "latitude", "longitude"}
	for _, t := range truths {
		cell := t.Raw
		if t.Unit != "" {
			cell = fmt.Sprintf("%s [%s]", t.Raw, t.Unit)
		}
		header = append(header, cell)
	}
	if err := w.Write(header); err != nil {
		f.Close()
		return fmt.Errorf("archive: write %s: %w", path, err)
	}
	rec := make([]string, len(header))
	for _, o := range obs {
		rec[0] = o.Time.UTC().Format(time.RFC3339)
		rec[1] = strconv.FormatFloat(o.Point.Lat, 'f', 5, 64)
		rec[2] = strconv.FormatFloat(o.Point.Lon, 'f', 5, 64)
		for i, v := range o.Values {
			rec[3+i] = strconv.FormatFloat(v, 'f', 3, 64)
		}
		if err := w.Write(rec); err != nil {
			f.Close()
			return fmt.Errorf("archive: write %s: %w", path, err)
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return fmt.Errorf("archive: flush %s: %w", path, err)
	}
	return f.Close()
}

// writeOBS emits the fixed-station format: "#key: value" headers with
// tab-separated field and unit lists, then tab-separated rows of unix
// seconds and values.
func writeOBS(path, station string, loc geo.Point, truths []VarTruth, obs []Observation) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("archive: create %s: %w", path, err)
	}
	w := bufio.NewWriter(f)
	fmt.Fprintln(w, "# CMOP-style observation file")
	fmt.Fprintf(w, "#station: %s\n", station)
	fmt.Fprintf(w, "#lat: %.5f\n", loc.Lat)
	fmt.Fprintf(w, "#lon: %.5f\n", loc.Lon)
	fmt.Fprintf(w, "#fields:")
	for _, t := range truths {
		fmt.Fprintf(w, "\t%s", t.Raw)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "#units:")
	for _, t := range truths {
		fmt.Fprintf(w, "\t%s", t.Unit)
	}
	fmt.Fprintln(w)
	for _, o := range obs {
		fmt.Fprintf(w, "%d", o.Time.Unix())
		for _, v := range o.Values {
			fmt.Fprintf(w, "\t%.3f", v)
		}
		fmt.Fprintln(w)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("archive: flush %s: %w", path, err)
	}
	return f.Close()
}

// jsonlHeader and jsonlObs are the JSON-lines records of the AUV format.
type jsonlHeader struct {
	Type     string     `json:"type"` // "header"
	Platform string     `json:"platform"`
	Fields   []jsonlVar `json:"fields"`
}

type jsonlVar struct {
	Name string `json:"name"`
	Unit string `json:"unit,omitempty"`
}

type jsonlObs struct {
	Type   string    `json:"type"` // "obs"
	Time   time.Time `json:"time"`
	Lat    float64   `json:"lat"`
	Lon    float64   `json:"lon"`
	Values []float64 `json:"values"`
}

// writeJSONL emits the AUV format: a header line then one JSON object per
// observation.
func writeJSONL(path, platform string, truths []VarTruth, obs []Observation) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("archive: create %s: %w", path, err)
	}
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	hdr := jsonlHeader{Type: "header", Platform: platform}
	for _, t := range truths {
		hdr.Fields = append(hdr.Fields, jsonlVar{Name: t.Raw, Unit: t.Unit})
	}
	if err := enc.Encode(hdr); err != nil {
		f.Close()
		return fmt.Errorf("archive: write %s: %w", path, err)
	}
	for _, o := range obs {
		rec := jsonlObs{Type: "obs", Time: o.Time.UTC(), Lat: o.Point.Lat, Lon: o.Point.Lon, Values: o.Values}
		if err := enc.Encode(rec); err != nil {
			f.Close()
			return fmt.Errorf("archive: write %s: %w", path, err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("archive: flush %s: %w", path, err)
	}
	return f.Close()
}
