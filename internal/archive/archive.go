// Package archive provides the synthetic scientific-data archive that
// stands in for the CMOP observatory archive the poster wrangles. The
// generator emits station, cruise, and AUV datasets in three on-disk
// formats (CSV, key-value "obs" text, and JSON lines), injects semantic
// diversity of every Table-1 category at configurable rates, and records
// a ground-truth manifest so experiments can score detection and
// resolution exactly.
//
// The substitution is documented in DESIGN.md: real observatory data is
// unavailable, and what the wrangling pipeline exercises is precisely the
// heterogeneity this generator reproduces — directory conventions, mixed
// formats, and messy variable names with known canonical answers.
package archive

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"metamess/internal/geo"
	"metamess/internal/semdiv"
)

// Format identifies an on-disk dataset format.
type Format string

// The archive's file formats.
const (
	FormatCSV   Format = "csv"   // header row, comma-separated observations
	FormatOBS   Format = "obs"   // "#key: value" header plus whitespace rows
	FormatJSONL Format = "jsonl" // JSON-lines header and observations
)

// Ext returns the file extension for the format.
func (f Format) Ext() string {
	switch f {
	case FormatCSV:
		return ".csv"
	case FormatOBS:
		return ".obs"
	case FormatJSONL:
		return ".jsonl"
	default:
		return ".dat"
	}
}

// VarTruth records the ground truth for one emitted variable name.
type VarTruth struct {
	// Raw is the name as written into the file.
	Raw string `json:"raw"`
	// Canonical is the name the wrangling process should recover; for
	// excessive variables it equals Raw (they are marked, not renamed).
	Canonical string `json:"canonical"`
	// Category is the semantic-diversity category that was injected.
	Category semdiv.Category `json:"category"`
	// Unit is the unit string as written; CanonicalUnit the registry
	// symbol it should resolve to.
	Unit          string `json:"unit"`
	CanonicalUnit string `json:"canonicalUnit"`
}

// DatasetInfo describes one generated dataset and its ground truth.
type DatasetInfo struct {
	// Path is relative to the archive root.
	Path   string        `json:"path"`
	Format Format        `json:"format"`
	Source string        `json:"source"`
	BBox   geo.BBox      `json:"bbox"`
	Time   geo.TimeRange `json:"time"`
	Rows   int           `json:"rows"`
	Vars   []VarTruth    `json:"vars"`
}

// Manifest is the generator's ground-truth record for a whole archive.
// The scanner never reads it; only experiments do.
type Manifest struct {
	Root     string        `json:"root"`
	Seed     int64         `json:"seed"`
	Datasets []DatasetInfo `json:"datasets"`
}

// ByPath indexes the manifest's datasets by relative path.
func (m *Manifest) ByPath() map[string]DatasetInfo {
	out := make(map[string]DatasetInfo, len(m.Datasets))
	for _, d := range m.Datasets {
		out[d.Path] = d
	}
	return out
}

// CanonicalFor returns the ground-truth raw->canonical mapping across the
// archive. Conflicting truths for the same raw name (possible when a raw
// form is reused) keep the first mapping; experiments treat those rows as
// inherently ambiguous.
func (m *Manifest) CanonicalFor() map[string]string {
	out := make(map[string]string)
	for _, d := range m.Datasets {
		for _, v := range d.Vars {
			if _, seen := out[v.Raw]; !seen {
				out[v.Raw] = v.Canonical
			}
		}
	}
	return out
}

// CategoryCounts tallies injected categories across the archive.
func (m *Manifest) CategoryCounts() map[semdiv.Category]int {
	out := make(map[semdiv.Category]int)
	for _, d := range m.Datasets {
		for _, v := range d.Vars {
			out[v.Category]++
		}
	}
	return out
}

// WriteJSON saves the manifest next to the archive.
func (m *Manifest) WriteJSON(path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("archive: encode manifest: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("archive: write manifest: %w", err)
	}
	return nil
}

// ReadManifest loads a manifest written by WriteJSON.
func ReadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("archive: read manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("archive: decode manifest: %w", err)
	}
	return &m, nil
}

// Observation is one generated data row, shared by the format writers.
type Observation struct {
	Time   time.Time
	Point  geo.Point
	Values []float64 // aligned with the dataset's variable list
}
