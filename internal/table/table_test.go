package table

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func sample(t *testing.T) *Table {
	t.Helper()
	tb := MustNew("field", "unit", "count")
	rows := [][]string{
		{"air_temperature", "degC", "10"},
		{"airtemp", "C", "3"},
		{"salinity", "PSU", "7"},
		{"air_temperature", "degC", "2"},
	}
	for _, r := range rows {
		if err := tb.AppendRow(r...); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

func TestNewRejectsDuplicates(t *testing.T) {
	if _, err := New("a", "b", "a"); err == nil {
		t.Error("duplicate columns should fail")
	}
}

func TestAppendRowWidthCheck(t *testing.T) {
	tb := MustNew("a", "b")
	if err := tb.AppendRow("1"); err == nil {
		t.Error("short row should fail")
	}
	if err := tb.AppendRow("1", "2", "3"); err == nil {
		t.Error("long row should fail")
	}
	if err := tb.AppendRow("1", "2"); err != nil {
		t.Errorf("exact row failed: %v", err)
	}
}

func TestCellAccess(t *testing.T) {
	tb := sample(t)
	got, err := tb.Cell(1, "field")
	if err != nil || got != "airtemp" {
		t.Errorf("Cell(1,field) = %q, %v", got, err)
	}
	if err := tb.SetCell(1, "field", "air_temperature"); err != nil {
		t.Fatal(err)
	}
	got, _ = tb.Cell(1, "field")
	if got != "air_temperature" {
		t.Errorf("SetCell did not stick: %q", got)
	}
	if _, err := tb.Cell(0, "nope"); err == nil {
		t.Error("unknown column should fail")
	}
	if _, err := tb.Cell(99, "field"); err == nil {
		t.Error("out-of-range row should fail")
	}
	if err := tb.SetCell(99, "field", "x"); err == nil {
		t.Error("out-of-range set should fail")
	}
}

func TestRowReturnsCopy(t *testing.T) {
	tb := sample(t)
	r, err := tb.Row(0)
	if err != nil {
		t.Fatal(err)
	}
	r[0] = "mutated"
	got, _ := tb.Cell(0, "field")
	if got == "mutated" {
		t.Error("Row returned a live reference")
	}
	if _, err := tb.Row(-1); err == nil {
		t.Error("negative row should fail")
	}
}

func TestColumnValuesAndCounts(t *testing.T) {
	tb := sample(t)
	vals, err := tb.ColumnValues("field")
	if err != nil || len(vals) != 4 {
		t.Fatalf("ColumnValues: %v, %v", vals, err)
	}
	counts, err := tb.ValueCounts("field")
	if err != nil {
		t.Fatal(err)
	}
	if counts[0].Value != "air_temperature" || counts[0].Count != 2 {
		t.Errorf("top facet = %+v, want air_temperature x2", counts[0])
	}
	if len(counts) != 3 {
		t.Errorf("distinct count = %d, want 3", len(counts))
	}
	// Ties (count 1) must be ordered by value ascending.
	if counts[1].Value > counts[2].Value {
		t.Errorf("tie ordering wrong: %q before %q", counts[1].Value, counts[2].Value)
	}
	if _, err := tb.ValueCounts("nope"); err == nil {
		t.Error("unknown column should fail")
	}
}

func TestAddRemoveRenameColumn(t *testing.T) {
	tb := sample(t)
	if err := tb.AddColumn("context"); err != nil {
		t.Fatal(err)
	}
	if got, _ := tb.Cell(0, "context"); got != "" {
		t.Errorf("new column cell = %q, want empty", got)
	}
	if err := tb.AddColumn("field"); err == nil {
		t.Error("duplicate AddColumn should fail")
	}
	if err := tb.RenameColumn("context", "source_context"); err != nil {
		t.Fatal(err)
	}
	if _, ok := tb.ColumnIndex("source_context"); !ok {
		t.Error("renamed column missing")
	}
	if err := tb.RenameColumn("source_context", "field"); err == nil {
		t.Error("rename onto existing column should fail")
	}
	if err := tb.RemoveColumn("source_context"); err != nil {
		t.Fatal(err)
	}
	if tb.NumCols() != 3 {
		t.Errorf("NumCols = %d, want 3", tb.NumCols())
	}
	// Index map must stay consistent after removal of a middle column.
	if err := tb.RemoveColumn("unit"); err != nil {
		t.Fatal(err)
	}
	got, err := tb.Cell(0, "count")
	if err != nil || got != "10" {
		t.Errorf("after removal Cell(0,count) = %q, %v; want 10", got, err)
	}
	if err := tb.RemoveColumn("ghost"); err == nil {
		t.Error("removing unknown column should fail")
	}
}

func TestFilterRows(t *testing.T) {
	tb := sample(t)
	removed := tb.FilterRows(func(_ int, row []string) bool {
		return row[0] != "salinity"
	})
	if removed != 1 || tb.NumRows() != 3 {
		t.Errorf("removed=%d rows=%d, want 1/3", removed, tb.NumRows())
	}
	for i := 0; i < tb.NumRows(); i++ {
		if v, _ := tb.Cell(i, "field"); v == "salinity" {
			t.Error("filtered row still present")
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	tb := sample(t)
	cl := tb.Clone()
	if !tb.Equal(cl) {
		t.Fatal("clone not equal to original")
	}
	if err := cl.SetCell(0, "field", "changed"); err != nil {
		t.Fatal(err)
	}
	if got, _ := tb.Cell(0, "field"); got == "changed" {
		t.Error("mutating clone changed original")
	}
	if tb.Equal(cl) {
		t.Error("Equal should detect the difference")
	}
	if err := cl.AddColumn("extra"); err != nil {
		t.Fatal(err)
	}
	if tb.NumCols() == cl.NumCols() {
		t.Error("adding a column to clone affected original width")
	}
}

func TestEqualShapes(t *testing.T) {
	a := MustNew("x")
	b := MustNew("y")
	if a.Equal(b) {
		t.Error("different column names should not be equal")
	}
	c := MustNew("x")
	_ = c.AppendRow("1")
	if a.Equal(c) {
		t.Error("different row counts should not be equal")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tb := sample(t)
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !tb.Equal(back) {
		t.Error("CSV round trip changed the table")
	}
}

func TestCSVQuotingRoundTrip(t *testing.T) {
	tb := MustNew("name", "note")
	_ = tb.AppendRow(`comma, value`, "line\nbreak")
	_ = tb.AppendRow(`"quoted"`, "")
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !tb.Equal(back) {
		t.Error("quoted CSV round trip changed the table")
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("empty input should fail (no header)")
	}
	if _, err := ReadCSV(strings.NewReader("a,b\n1\n")); err == nil {
		t.Error("ragged row should fail")
	}
	if _, err := ReadCSV(strings.NewReader("a,a\n")); err == nil {
		t.Error("duplicate header should fail")
	}
}

func TestCSVRoundTripProperty(t *testing.T) {
	f := func(cells [][2]string) bool {
		tb := MustNew("c0", "c1")
		for _, c := range cells {
			if strings.ContainsRune(c[0], '\r') || strings.ContainsRune(c[1], '\r') {
				continue // csv normalizes \r\n; skip to keep the property crisp
			}
			if err := tb.AppendRow(c[0], c[1]); err != nil {
				return false
			}
		}
		var buf bytes.Buffer
		if err := tb.WriteCSV(&buf); err != nil {
			return false
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			return false
		}
		return tb.Equal(back)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkValueCounts(b *testing.B) {
	tb := MustNew("field")
	names := []string{"air_temperature", "airtemp", "salinity", "temp", "oxygen"}
	for i := 0; i < 10000; i++ {
		_ = tb.AppendRow(names[i%len(names)])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tb.ValueCounts("field"); err != nil {
			b.Fatal(err)
		}
	}
}
