// Package table provides the columnar grid model the refine engine
// operates on: named columns, string-valued cells, and bulk accessors.
// It mirrors the data model of Google Refine projects: catalog entries
// are extracted into a grid, cleaned by operations, and written back.
package table

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
)

// Table is a rectangular grid of string cells under named columns.
// All mutating methods keep every row exactly len(Columns()) wide.
type Table struct {
	cols []string
	idx  map[string]int
	rows [][]string
}

// New creates an empty table with the given column names. Duplicate
// column names are rejected.
func New(cols ...string) (*Table, error) {
	t := &Table{idx: make(map[string]int, len(cols))}
	for _, c := range cols {
		if _, dup := t.idx[c]; dup {
			return nil, fmt.Errorf("table: duplicate column %q", c)
		}
		t.idx[c] = len(t.cols)
		t.cols = append(t.cols, c)
	}
	return t, nil
}

// MustNew is New that panics on error, for static schemas.
func MustNew(cols ...string) *Table {
	t, err := New(cols...)
	if err != nil {
		panic(err)
	}
	return t
}

// Columns returns a copy of the column names in order.
func (t *Table) Columns() []string {
	out := make([]string, len(t.cols))
	copy(out, t.cols)
	return out
}

// NumRows returns the row count.
func (t *Table) NumRows() int { return len(t.rows) }

// NumCols returns the column count.
func (t *Table) NumCols() int { return len(t.cols) }

// ColumnIndex returns the position of the named column.
func (t *Table) ColumnIndex(name string) (int, bool) {
	i, ok := t.idx[name]
	return i, ok
}

// AppendRow adds a row; it must have exactly one cell per column.
func (t *Table) AppendRow(cells ...string) error {
	if len(cells) != len(t.cols) {
		return fmt.Errorf("table: row has %d cells, want %d", len(cells), len(t.cols))
	}
	row := make([]string, len(cells))
	copy(row, cells)
	t.rows = append(t.rows, row)
	return nil
}

// Cell returns the cell at (row, named column).
func (t *Table) Cell(row int, col string) (string, error) {
	ci, ok := t.idx[col]
	if !ok {
		return "", fmt.Errorf("table: no column %q", col)
	}
	if row < 0 || row >= len(t.rows) {
		return "", fmt.Errorf("table: row %d out of range (%d rows)", row, len(t.rows))
	}
	return t.rows[row][ci], nil
}

// SetCell assigns the cell at (row, named column).
func (t *Table) SetCell(row int, col, value string) error {
	ci, ok := t.idx[col]
	if !ok {
		return fmt.Errorf("table: no column %q", col)
	}
	if row < 0 || row >= len(t.rows) {
		return fmt.Errorf("table: row %d out of range (%d rows)", row, len(t.rows))
	}
	t.rows[row][ci] = value
	return nil
}

// Row returns a copy of row i.
func (t *Table) Row(i int) ([]string, error) {
	if i < 0 || i >= len(t.rows) {
		return nil, fmt.Errorf("table: row %d out of range (%d rows)", i, len(t.rows))
	}
	out := make([]string, len(t.rows[i]))
	copy(out, t.rows[i])
	return out, nil
}

// ColumnValues returns a copy of the named column's cells, top to bottom.
func (t *Table) ColumnValues(col string) ([]string, error) {
	ci, ok := t.idx[col]
	if !ok {
		return nil, fmt.Errorf("table: no column %q", col)
	}
	out := make([]string, len(t.rows))
	for i, r := range t.rows {
		out[i] = r[ci]
	}
	return out, nil
}

// ValueCounts returns the distinct values of a column with their
// frequencies, ordered by descending count then ascending value — the
// shape a text facet displays.
func (t *Table) ValueCounts(col string) ([]ValueCount, error) {
	vals, err := t.ColumnValues(col)
	if err != nil {
		return nil, err
	}
	counts := make(map[string]int)
	for _, v := range vals {
		counts[v]++
	}
	out := make([]ValueCount, 0, len(counts))
	for v, c := range counts {
		out = append(out, ValueCount{Value: v, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Value < out[j].Value
	})
	return out, nil
}

// ValueCount pairs a distinct cell value with its frequency.
type ValueCount struct {
	Value string `json:"value"`
	Count int    `json:"count"`
}

// AddColumn appends a new empty column (cells default to "").
func (t *Table) AddColumn(name string) error {
	if _, dup := t.idx[name]; dup {
		return fmt.Errorf("table: duplicate column %q", name)
	}
	t.idx[name] = len(t.cols)
	t.cols = append(t.cols, name)
	for i := range t.rows {
		t.rows[i] = append(t.rows[i], "")
	}
	return nil
}

// RemoveColumn deletes a column and its cells.
func (t *Table) RemoveColumn(name string) error {
	ci, ok := t.idx[name]
	if !ok {
		return fmt.Errorf("table: no column %q", name)
	}
	t.cols = append(t.cols[:ci], t.cols[ci+1:]...)
	delete(t.idx, name)
	for n, i := range t.idx {
		if i > ci {
			t.idx[n] = i - 1
		}
	}
	for r := range t.rows {
		t.rows[r] = append(t.rows[r][:ci], t.rows[r][ci+1:]...)
	}
	return nil
}

// RenameColumn changes a column's name in place.
func (t *Table) RenameColumn(oldName, newName string) error {
	ci, ok := t.idx[oldName]
	if !ok {
		return fmt.Errorf("table: no column %q", oldName)
	}
	if _, dup := t.idx[newName]; dup && newName != oldName {
		return fmt.Errorf("table: duplicate column %q", newName)
	}
	delete(t.idx, oldName)
	t.idx[newName] = ci
	t.cols[ci] = newName
	return nil
}

// FilterRows removes all rows for which keep returns false and reports
// how many were removed. keep receives the row index and a live view of
// the row; it must not retain or mutate the slice.
func (t *Table) FilterRows(keep func(i int, row []string) bool) int {
	out := t.rows[:0]
	removed := 0
	for i, r := range t.rows {
		if keep(i, r) {
			out = append(out, r)
		} else {
			removed++
		}
	}
	t.rows = out
	return removed
}

// Clone returns a deep copy of the table.
func (t *Table) Clone() *Table {
	c := &Table{
		cols: make([]string, len(t.cols)),
		idx:  make(map[string]int, len(t.idx)),
		rows: make([][]string, len(t.rows)),
	}
	copy(c.cols, t.cols)
	for k, v := range t.idx {
		c.idx[k] = v
	}
	for i, r := range t.rows {
		nr := make([]string, len(r))
		copy(nr, r)
		c.rows[i] = nr
	}
	return c
}

// Equal reports whether two tables have identical columns and cells.
func (t *Table) Equal(o *Table) bool {
	if len(t.cols) != len(o.cols) || len(t.rows) != len(o.rows) {
		return false
	}
	for i := range t.cols {
		if t.cols[i] != o.cols[i] {
			return false
		}
	}
	for i := range t.rows {
		for j := range t.rows[i] {
			if t.rows[i][j] != o.rows[i][j] {
				return false
			}
		}
	}
	return true
}

// WriteCSV writes the table (header row first) to w.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.cols); err != nil {
		return fmt.Errorf("table: write header: %w", err)
	}
	for i, r := range t.rows {
		if err := cw.Write(r); err != nil {
			return fmt.Errorf("table: write row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a table from CSV: first record is the header.
func ReadCSV(r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("table: read header: %w", err)
	}
	t, err := New(header...)
	if err != nil {
		return nil, err
	}
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, fmt.Errorf("table: read row: %w", err)
		}
		if err := t.AppendRow(rec...); err != nil {
			return nil, err
		}
	}
}
