package server

import (
	"math"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Per-client token-bucket rate limiting, evaluated before the admission
// gate: admission protects the server from aggregate overload, while
// the limiter protects every other client from one hot one — a client
// past its budget is refused before it can take a queue position, so it
// cannot monopolize the admission queue and starve the rest.

// maxRateLimitClients bounds the bucket map; past it, full (idle)
// buckets are evicted, and if none are full the newcomer is charged
// against a fresh bucket that replaces the stalest one.
const maxRateLimitClients = 8192

type bucket struct {
	tokens float64
	last   time.Time
}

// rateLimiter is a per-client token bucket: each client accrues rate
// tokens per second up to burst, and each search spends one. All
// methods on a nil *rateLimiter are inert (limiting disabled).
type rateLimiter struct {
	rate  float64
	burst float64

	mu      sync.Mutex
	buckets map[string]*bucket
}

// newRateLimiter builds a limiter allowing rate requests/second with
// the given burst (0 = 2×rate, minimum 1). rate <= 0 disables limiting
// (returns nil).
func newRateLimiter(rate float64, burst int) *rateLimiter {
	if rate <= 0 {
		return nil
	}
	b := float64(burst)
	if burst <= 0 {
		b = math.Max(1, 2*rate)
	}
	return &rateLimiter{
		rate:    rate,
		burst:   b,
		buckets: make(map[string]*bucket),
	}
}

// take spends one token for key. When the bucket is empty it reports
// limited=true and how long until the next token accrues — the accurate
// Retry-After for the 429.
func (l *rateLimiter) take(key string, now time.Time) (wait time.Duration, limited bool) {
	if l == nil {
		return 0, false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buckets[key]
	if b == nil {
		if len(l.buckets) >= maxRateLimitClients {
			l.evictLocked(now)
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	} else {
		b.tokens = math.Min(l.burst, b.tokens+now.Sub(b.last).Seconds()*l.rate)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return 0, false
	}
	need := (1 - b.tokens) / l.rate
	return time.Duration(need * float64(time.Second)), true
}

// evictLocked drops every bucket that has been idle long enough to
// refill completely (it holds no state a fresh bucket wouldn't), and
// failing that the single stalest bucket, so the map stays bounded even
// against an address-spinning client.
func (l *rateLimiter) evictLocked(now time.Time) {
	fillTime := time.Duration(l.burst / l.rate * float64(time.Second))
	var (
		stalest     string
		stalestLast time.Time
	)
	for key, b := range l.buckets {
		if now.Sub(b.last) >= fillTime {
			delete(l.buckets, key)
			continue
		}
		if stalest == "" || b.last.Before(stalestLast) {
			stalest, stalestLast = key, b.last
		}
	}
	if len(l.buckets) >= maxRateLimitClients && stalest != "" {
		delete(l.buckets, stalest)
	}
}

// clients reports the resident bucket count (monitoring).
func (l *rateLimiter) clients() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buckets)
}

// clientKey identifies the requester for rate limiting: the
// X-Client-Id header when present (multi-tenant callers behind one
// gateway), else the connection's client IP.
func clientKey(r *http.Request) string {
	if id := r.Header.Get("X-Client-Id"); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// retryAfterHeader renders a wait as a whole-second Retry-After value,
// rounding up (a client returning too early would only be refused
// again) and clamping to at least 1.
func retryAfterHeader(wait time.Duration) string {
	secs := int(math.Ceil(wait.Seconds()))
	if secs < 1 {
		secs = 1
	}
	if secs > maxRetryAfterSeconds {
		secs = maxRetryAfterSeconds
	}
	return strconv.Itoa(secs)
}
