package server

import (
	"container/list"
	"sync"
)

// queryCache is a fixed-capacity LRU of marshaled search-response
// bodies, keyed by (snapshot generation, normalized query). Keying by
// generation is the whole invalidation story: a publish bumps the
// generation, so every request after it computes a different key and
// misses — no clearing, no coordination with the wrangler, and searches
// racing the publish still serve internally-consistent bodies cached
// under the generation they actually read. Entries for dead generations
// are never hit again and age out through normal LRU eviction.
type queryCache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recently used
	entries map[cacheKey]*list.Element
}

type cacheKey struct {
	generation uint64
	query      string
}

type cacheEntry struct {
	key  cacheKey
	body []byte
}

// newQueryCache returns a cache holding up to capacity entries;
// capacity <= 0 disables caching (Get always misses, Put drops).
func newQueryCache(capacity int) *queryCache {
	c := &queryCache{cap: capacity}
	if capacity > 0 {
		c.ll = list.New()
		c.entries = make(map[cacheKey]*list.Element, capacity)
	}
	return c
}

func (c *queryCache) enabled() bool { return c.cap > 0 }

// Get returns the cached body for the key, marking it most recently
// used. The body is shared: callers must not mutate it.
func (c *queryCache) Get(generation uint64, query string) ([]byte, bool) {
	if !c.enabled() {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[cacheKey{generation, query}]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// Put stores a body under the key, evicting the least recently used
// entry when full. The cache keeps the slice; callers must not mutate
// it afterwards.
func (c *queryCache) Put(generation uint64, query string, body []byte) {
	if !c.enabled() {
		return
	}
	key := cacheKey{generation, query}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).body = body
		c.ll.MoveToFront(el)
		return
	}
	c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, body: body})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// Len returns the current entry count.
func (c *queryCache) Len() int {
	if !c.enabled() {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
