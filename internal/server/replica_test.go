package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"metamess"
	"metamess/internal/archive"
)

// newDurableLeader builds a wrangled durable system and serves it — the
// leader every replication test tails. CompactMinBytes=1 so a
// CompactIfNeeded call always compacts, letting tests force rotations.
func newDurableLeader(t testing.TB, n int, seed int64) (*metamess.System, *httptest.Server, string) {
	t.Helper()
	root := t.TempDir()
	if _, err := archive.Generate(root, archive.DefaultGenConfig(n, seed)); err != nil {
		t.Fatal(err)
	}
	sys, err := metamess.OpenDurable(metamess.Config{
		ArchiveRoot:     root,
		DataDir:         t.TempDir(),
		CompactMinBytes: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	if _, err := sys.Wrangle(); err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Sys: sys})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return sys, ts, root
}

// newFollower opens a durable follower (its catalog comes only from
// replication) and starts a fast-polling replicator against the leader.
func newFollower(t testing.TB, leaderURL, dataDir string) (*metamess.System, *Replicator) {
	t.Helper()
	sys, err := metamess.OpenDurable(metamess.Config{
		ArchiveRoot: t.TempDir(), // throwaway: a follower never wrangles
		DataDir:     dataDir,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	rep, err := NewReplicator(ReplicaConfig{
		Leader:   leaderURL,
		Sys:      sys,
		PollWait: 50 * time.Millisecond,
		Backoff:  10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep.Start()
	t.Cleanup(rep.Stop)
	return sys, rep
}

func waitForGeneration(t testing.TB, sys *metamess.System, want uint64) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for sys.SnapshotGeneration() < want {
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck at generation %d, want %d", sys.SnapshotGeneration(), want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// publish lands one more generation on the leader by dropping fresh
// datasets into the archive and re-wrangling.
func publish(t testing.TB, sys *metamess.System, root string, seed int64) uint64 {
	t.Helper()
	before := sys.SnapshotGeneration()
	sub := filepath.Join(root, fmt.Sprintf("extra-%d", seed))
	if _, err := archive.Generate(sub, archive.DefaultGenConfig(6, seed)); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Wrangle(); err != nil {
		t.Fatal(err)
	}
	after := sys.SnapshotGeneration()
	if after <= before {
		t.Fatalf("publish did not advance the generation (%d -> %d)", before, after)
	}
	return after
}

// equivalenceQueries are the probes the battery replays against both
// nodes; rankings must be byte-identical at the same generation.
func equivalenceQueries(t testing.TB) [][]byte {
	t.Helper()
	reqs := []SearchRequest{
		{Variables: []Variable{{Name: "temperature"}}, K: 10},
		{Variables: []Variable{{Name: "salinity"}, {Name: "temperature"}}, K: 5},
		{Near: &LatLon{Lat: 46.2, Lon: -123.8}, Variables: []Variable{{Name: "temperature"}}, K: 8},
	}
	out := make([][]byte, 0, len(reqs))
	for _, r := range reqs {
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, b)
	}
	return out
}

// assertByteIdentical replays the probe queries against both servers
// and requires identical generation headers and identical bodies.
func assertByteIdentical(t testing.TB, leaderURL, followerURL string) {
	t.Helper()
	for i, q := range equivalenceQueries(t) {
		ls, lh, lb := postJSON(t, leaderURL+"/search", q)
		fs, fh, fb := postJSON(t, followerURL+"/search", q)
		if ls != http.StatusOK || fs != http.StatusOK {
			t.Fatalf("query %d: leader %d, follower %d", i, ls, fs)
		}
		if lg, fg := lh.Get("X-Dnhd-Generation"), fh.Get("X-Dnhd-Generation"); lg != fg {
			t.Fatalf("query %d: generation header %s (leader) vs %s (follower)", i, lg, fg)
		}
		if !bytes.Equal(lb, fb) {
			t.Fatalf("query %d: rankings differ at the same generation\nleader:   %s\nfollower: %s", i, lb, fb)
		}
	}
}

// TestLeaderFollowerEquivalence is the battery the tentpole is proven
// by: a follower tails a live leader through multiple publishes and a
// compaction, restarts, and at every checkpoint serves byte-identical
// rankings at the leader's generation.
func TestLeaderFollowerEquivalence(t *testing.T) {
	lsys, lts, root := newDurableLeader(t, 24, 7)
	fdir := t.TempDir()
	fsys, rep := newFollower(t, lts.URL, fdir)

	fsrv, err := New(Config{Sys: fsys, Replica: rep})
	if err != nil {
		t.Fatal(err)
	}
	fts := httptest.NewServer(fsrv.Handler())
	defer fts.Close()

	// Initial catch-up (the wrangled generation), then three live
	// publishes, each verified byte-identical after replication.
	waitForGeneration(t, fsys, lsys.SnapshotGeneration())
	assertByteIdentical(t, lts.URL, fts.URL)
	for i, seed := range []int64{101, 202, 303} {
		gen := publish(t, lsys, root, seed)
		waitForGeneration(t, fsys, gen)
		assertByteIdentical(t, lts.URL, fts.URL)
		if i == 1 {
			// A compaction mid-stream, with the follower caught up: the
			// rotation must not force a resync (the checkpoint lands exactly
			// at the follower's generation) and the next publish must tail
			// cleanly from the fresh journal.
			if _, err := lsys.CompactIfNeeded(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if got := rep.Stats().Resyncs; got != 0 {
		t.Errorf("live follower resynced %d times; the tail should have covered every publish", got)
	}

	// The follower's /stats and /readyz carry the replication section.
	status, _, body := get(t, fts.URL+"/stats")
	if status != http.StatusOK {
		t.Fatalf("follower stats: %d", status)
	}
	var stats StatsResponse
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Replication == nil {
		t.Fatal("follower /stats has no replication section")
	}
	if !stats.Replication.Ready || stats.Replication.LagGenerations != 0 {
		t.Errorf("caught-up follower reports %+v", stats.Replication)
	}
	status, _, body = get(t, fts.URL+"/readyz")
	if status != http.StatusOK || !bytes.Contains(body, []byte(`"replication"`)) {
		t.Errorf("follower readyz: %d %s", status, body)
	}
	status, _, body = get(t, fts.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("follower metrics: %d", status)
	}
	for _, family := range []string{
		"dnh_replica_lag_generations", "dnh_replica_applied_total",
		"dnh_replica_resyncs_total", "dnh_replica_connected",
		"dnh_ratelimit_shed_total", "dnh_journal_tail_total",
	} {
		if !bytes.Contains(body, []byte(family)) {
			t.Errorf("follower /metrics missing %s", family)
		}
	}

	// Restart the follower: recovery must land on the last applied
	// generation and the new tail must resume without a resync.
	rep.Stop()
	lastApplied := fsys.SnapshotGeneration()
	fts.Close()
	if err := fsys.Close(); err != nil {
		t.Fatal(err)
	}
	fsys2, rep2 := newFollower(t, lts.URL, fdir)
	if got := fsys2.SnapshotGeneration(); got != lastApplied {
		t.Fatalf("restarted follower recovered generation %d, want %d", got, lastApplied)
	}
	fsrv2, err := New(Config{Sys: fsys2, Replica: rep2})
	if err != nil {
		t.Fatal(err)
	}
	fts2 := httptest.NewServer(fsrv2.Handler())
	defer fts2.Close()

	gen := publish(t, lsys, root, 404)
	waitForGeneration(t, fsys2, gen)
	assertByteIdentical(t, lts.URL, fts2.URL)
	if got := rep2.Stats().Resyncs; got != 0 {
		t.Errorf("restarted follower resynced %d times; it should resume from its own journal", got)
	}
}

// TestFollowerResyncAfterCompaction covers the bootstrap path: a
// follower that starts (or falls) behind the leader's retained journals
// must rebuild from the checkpoint — cleanly, never from torn frames.
func TestFollowerResyncAfterCompaction(t *testing.T) {
	lsys, lts, root := newDurableLeader(t, 20, 11)
	publish(t, lsys, root, 505)
	// Compact: the pre-compaction journal is folded away, so a from=0
	// tail can no longer be served from journals alone.
	if _, err := lsys.CompactIfNeeded(); err != nil {
		t.Fatal(err)
	}
	gen := publish(t, lsys, root, 606)

	fsys, rep := newFollower(t, lts.URL, t.TempDir())
	waitForGeneration(t, fsys, gen)
	if got := rep.Stats().Resyncs; got < 1 {
		t.Errorf("fresh follower behind a compaction resynced %d times, want >= 1", got)
	}

	fsrv, err := New(Config{Sys: fsys, Replica: rep})
	if err != nil {
		t.Fatal(err)
	}
	fts := httptest.NewServer(fsrv.Handler())
	defer fts.Close()
	assertByteIdentical(t, lts.URL, fts.URL)
}

// TestJournalTailEndpoint pins the wire contract: generation header,
// resync signal, parameter validation, and the 404 on non-durable
// nodes.
func TestJournalTailEndpoint(t *testing.T) {
	lsys, lts, _ := newDurableLeader(t, 12, 3)
	gen := lsys.SnapshotGeneration()

	status, h, body := get(t, lts.URL+"/journal/tail?from=0")
	if status != http.StatusOK {
		t.Fatalf("tail: %d %s", status, body)
	}
	if h.Get("X-Dnhd-Generation") != fmt.Sprint(gen) {
		t.Errorf("generation header %q, want %d", h.Get("X-Dnhd-Generation"), gen)
	}
	if len(body) == 0 {
		t.Error("tail from 0 returned no frames")
	}

	// Caught up: empty body, no resync.
	status, h, body = get(t, lts.URL+fmt.Sprintf("/journal/tail?from=%d", gen))
	if status != http.StatusOK || len(body) != 0 || h.Get("X-Dnhd-Resync") != "" {
		t.Errorf("caught-up tail: %d, %d bytes, resync=%q", status, len(body), h.Get("X-Dnhd-Resync"))
	}

	// Below the checkpoint after a compaction: resync signal, no frames.
	if _, err := lsys.CompactIfNeeded(); err != nil {
		t.Fatal(err)
	}
	status, h, body = get(t, lts.URL+"/journal/tail?from=0")
	if status != http.StatusOK || h.Get("X-Dnhd-Resync") != "1" || len(body) != 0 {
		t.Errorf("behind-checkpoint tail: %d, resync=%q, %d bytes", status, h.Get("X-Dnhd-Resync"), len(body))
	}

	// The checkpoint download is well-formed.
	status, _, body = get(t, lts.URL+"/journal/checkpoint")
	if status != http.StatusOK || len(body) == 0 {
		t.Errorf("checkpoint: %d, %d bytes", status, len(body))
	}

	status, _, _ = get(t, lts.URL+"/journal/tail?from=zzz")
	if status != http.StatusBadRequest {
		t.Errorf("bad from: %d, want 400", status)
	}

	// Non-durable nodes have no journal to tail.
	sys, _, _ := newTestSystem(t, 8, 5)
	_, ts := newTestServer(t, sys, 0)
	status, _, _ = get(t, ts.URL+"/journal/tail?from=0")
	if status != http.StatusNotFound {
		t.Errorf("non-durable tail: %d, want 404", status)
	}
}

// TestJournalTailLongPoll verifies the blocking tail: an up-to-date
// tailer with wait_ms sees a publish land without re-polling.
func TestJournalTailLongPoll(t *testing.T) {
	lsys, lts, root := newDurableLeader(t, 12, 9)
	gen := lsys.SnapshotGeneration()

	type result struct {
		status int
		frames []byte
		gen    string
	}
	done := make(chan result, 1)
	go func() {
		status, h, body := get(t, lts.URL+fmt.Sprintf("/journal/tail?from=%d&wait_ms=10000", gen))
		done <- result{status, body, h.Get("X-Dnhd-Generation")}
	}()

	time.Sleep(150 * time.Millisecond) // let the poll park
	want := publish(t, lsys, root, 707)

	select {
	case res := <-done:
		if res.status != http.StatusOK || len(res.frames) == 0 {
			t.Fatalf("long poll: %d, %d bytes", res.status, len(res.frames))
		}
		if res.gen != fmt.Sprint(want) {
			t.Errorf("long poll answered at generation %s, want %d", res.gen, want)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("long poll never released after the publish")
	}
}

// TestMinGenerationReadYourWrites pins the X-Min-Generation contract:
// a satisfied demand answers normally, a future demand waits and then
// answers once the generation lands, and an unreachable demand answers
// 412 naming the current generation.
func TestMinGenerationReadYourWrites(t *testing.T) {
	sys, _, root := newTestSystem(t, 16, 21)
	_, ts := newTestServer(t, sys, 0)
	gen := sys.SnapshotGeneration()
	q, _ := json.Marshal(SearchRequest{Variables: []Variable{{Name: "temperature"}}, K: 3})

	do := func(min string) (int, http.Header, []byte) {
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/search", bytes.NewReader(q))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Min-Generation", min)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		buf := new(bytes.Buffer)
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, resp.Header, buf.Bytes()
	}

	// Already satisfied: plain 200.
	if status, _, body := do(fmt.Sprint(gen)); status != http.StatusOK {
		t.Fatalf("satisfied min-gen: %d %s", status, body)
	}

	// Unreachable: 412 with the current generation in header and body.
	status, h, body := do(fmt.Sprint(gen + 100))
	if status != http.StatusPreconditionFailed {
		t.Fatalf("unreachable min-gen: %d %s", status, body)
	}
	if h.Get("X-Dnhd-Generation") != fmt.Sprint(gen) {
		t.Errorf("412 generation header %q, want %d", h.Get("X-Dnhd-Generation"), gen)
	}
	if !bytes.Contains(body, []byte(`"generation"`)) {
		t.Errorf("412 body does not name the current generation: %s", body)
	}

	// Arrives during the wait: the request parks, the publish lands, the
	// response is a 200 at (or past) the demanded generation.
	type res struct {
		status int
		header http.Header
	}
	done := make(chan res, 1)
	go func() {
		status, h, _ := do(fmt.Sprint(gen + 1))
		done <- res{status, h}
	}()
	time.Sleep(100 * time.Millisecond)
	publish(t, sys, root, 808)
	select {
	case r := <-done:
		if r.status != http.StatusOK {
			t.Fatalf("min-gen wait resolved to %d", r.status)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("min-gen wait never resolved after the publish")
	}

	// Bad header: 400 before any waiting.
	if status, _, _ := do("not-a-number"); status != http.StatusBadRequest {
		t.Errorf("bad min-gen header: %d, want 400", status)
	}
}
