package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"metamess"
	"metamess/internal/archive"
	"metamess/internal/workload"
)

// Overload battery: admission shedding, singleflight byte-identity,
// stale-while-revalidate byte-identity across a publish, the
// partial-results deadline contract, and the fuzz-corpus no-5xx
// invariant.

func newOverloadServer(t testing.TB, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func searchBody(t testing.TB, m *archive.Manifest, n int, seed int64) [][]byte {
	t.Helper()
	judged, err := workload.Queries(m, n, seed, workload.DefaultRelevance(), false)
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]byte, len(judged))
	for i, j := range judged {
		body, err := json.Marshal(RequestFromQuery(j.Query))
		if err != nil {
			t.Fatal(err)
		}
		out[i] = body
	}
	return out
}

// TestAdmissionShedding holds the server's only slot and verifies the
// next request is shed instantly with 429 + Retry-After, that /readyz
// flips to 503 shedding while /healthz (liveness) stays 200, and that
// releasing the slot restores service.
func TestAdmissionShedding(t *testing.T) {
	sys, m, _ := newTestSystem(t, 24, 7)
	srv, ts := newOverloadServer(t, Config{Sys: sys, MaxInFlight: 1, QueueDepth: -1})
	body := searchBody(t, m, 1, 13)[0]

	release, reason := srv.adm.acquire(context.Background())
	if reason != shedNone {
		t.Fatalf("direct acquire shed: %v", reason)
	}

	start := time.Now()
	status, hdr, respBody := postJSON(t, ts.URL+"/search", body)
	shedLatency := time.Since(start)
	if status != http.StatusTooManyRequests {
		t.Fatalf("saturated search: status %d body %s, want 429", status, respBody)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}
	if !bytes.Contains(respBody, []byte("overloaded")) {
		t.Errorf("shed body = %s, want an overloaded error", respBody)
	}
	// The shed path does no search work; even on a loaded runner the
	// loopback round trip should be far under the wait bound.
	if shedLatency > DefaultQueueWait {
		t.Errorf("shed took %v, want < %v (instant path)", shedLatency, DefaultQueueWait)
	}

	if status, _, body := get(t, ts.URL+"/readyz"); status != http.StatusServiceUnavailable ||
		!bytes.Contains(body, []byte(`"shedding": true`)) && !bytes.Contains(body, []byte(`"shedding":true`)) {
		t.Errorf("readyz while shedding: %d %s, want 503 shedding", status, body)
	}
	if status, _, _ := get(t, ts.URL+"/healthz"); status != http.StatusOK {
		t.Errorf("healthz while shedding: %d, want 200 (liveness is not readiness)", status)
	}
	if n := srv.metrics.shed.Load(); n == 0 {
		t.Error("shed metric not incremented")
	}
	if n := srv.adm.shedFull.Load(); n != 1 {
		t.Errorf("shedFull = %d, want 1", n)
	}

	release()
	if status, _, respBody := postJSON(t, ts.URL+"/search", body); status != http.StatusOK {
		t.Fatalf("post-release search: %d %s", status, respBody)
	}

	var stats StatsResponse
	_, _, raw := get(t, ts.URL+"/stats")
	if err := json.Unmarshal(raw, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Overload.MaxInFlight != 1 || stats.Overload.Shed == 0 || stats.Overload.Admitted == 0 {
		t.Errorf("overload stats = %+v, want maxInFlight 1, shed > 0, admitted > 0", stats.Overload)
	}
}

// TestReadyzHealthy verifies the readiness probe on an ungated,
// unloaded server.
func TestReadyzHealthy(t *testing.T) {
	sys, _, _ := newTestSystem(t, 12, 7)
	_, ts := newOverloadServer(t, Config{Sys: sys})
	status, _, body := get(t, ts.URL+"/readyz")
	if status != http.StatusOK || !bytes.Contains(body, []byte(`"ready"`)) {
		t.Errorf("readyz: %d %s, want 200 ready", status, body)
	}
}

// TestSingleflightByteIdentity proves followers receive the leader's
// bytes verbatim. A generated archive searches in microseconds, so
// concurrent requests rarely overlap a real flight on a small machine;
// instead the test itself becomes the flight leader (same key
// derivation as serveSearch), lets HTTP followers pile up on the held
// flight, then publishes a genuine executor outcome — every follower
// must answer 200 with that exact body, and at least one must be marked
// collapsed. Run under -race this is also the data-race check on the
// flight group.
func TestSingleflightByteIdentity(t *testing.T) {
	sys, m, _ := newTestSystem(t, 48, 7)
	srv, ts := newOverloadServer(t, Config{Sys: sys, CacheSize: -1})
	body := searchBody(t, m, 1, 17)[0]

	// serveSearch keys flights on the re-marshaled decoded request; a
	// marshal round-trip of the same struct reproduces it exactly.
	var req SearchRequest
	if err := json.Unmarshal(body, &req); err != nil {
		t.Fatal(err)
	}
	keyBytes, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	key := string(keyBytes)
	gen := sys.SnapshotGeneration()
	fk := flightKey{generation: gen, query: key}

	f, leader := srv.flights.join(fk)
	if !leader {
		t.Fatal("test did not become flight leader")
	}

	const width = 8
	bodies := make([][]byte, width)
	states := make([]string, width)
	var wg sync.WaitGroup
	for i := 0; i < width; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/search", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			if _, err := buf.ReadFrom(resp.Body); err != nil {
				t.Error(err)
				return
			}
			if resp.StatusCode != http.StatusOK {
				t.Errorf("follower %d: status %d body %s", i, resp.StatusCode, buf.Bytes())
				return
			}
			bodies[i] = buf.Bytes()
			states[i] = resp.Header.Get("X-Dnhd-Cache")
		}(i)
	}

	// Let the followers reach the flight, then run the search for real
	// and release them with its outcome.
	time.Sleep(100 * time.Millisecond)
	out := srv.executeSearch(context.Background(), req.toQuery(), key, nil)
	if out.status != http.StatusOK {
		t.Fatalf("leader execution: status %d body %s", out.status, out.body)
	}
	srv.flights.finish(fk, f, out)
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	collapsed := 0
	for i := range bodies {
		if states[i] == "collapsed" {
			collapsed++
			if !bytes.Equal(bodies[i], out.body) {
				t.Fatalf("follower %d: collapsed body diverged from leader's:\n%s\nvs\n%s", i, bodies[i], out.body)
			}
		} else if !bytes.Equal(bodies[i], out.body) {
			// A straggler that missed the flight re-executed; same
			// generation + deterministic ranking = same bytes.
			t.Fatalf("follower %d (%s): body diverged:\n%s\nvs\n%s", i, states[i], bodies[i], out.body)
		}
	}
	if collapsed == 0 {
		t.Fatal("no follower was collapsed onto the held flight")
	}
	if n := srv.metrics.collapsed.Load(); n != uint64(collapsed) {
		t.Errorf("collapsed metric = %d, want %d", n, collapsed)
	}
}

// TestStaleWhileRevalidate publishes a new generation under a warm
// cache and verifies the property: every post-publish response is
// either byte-identical to the previously valid generation's response
// (marked stale, labeled with the old generation) or a fresh
// new-generation response — never a torn mix — and the background
// revalidation eventually promotes the query to a fresh hit.
func TestStaleWhileRevalidate(t *testing.T) {
	sys, m, root := newTestSystem(t, 36, 7)
	_, ts := newOverloadServer(t, Config{Sys: sys, StaleWindow: time.Minute})
	body := searchBody(t, m, 1, 19)[0]

	// Warm the cache at the first generation.
	status, hdr, oldBody := postJSON(t, ts.URL+"/search", body)
	if status != http.StatusOK {
		t.Fatalf("warm: %d %s", status, oldBody)
	}
	oldGen := hdr.Get("X-Dnhd-Generation")
	if status, hdr, cached := postJSON(t, ts.URL+"/search", body); status != http.StatusOK ||
		hdr.Get("X-Dnhd-Cache") != "hit" || !bytes.Equal(cached, oldBody) {
		t.Fatalf("warm replay: %d %s (%s)", status, hdr.Get("X-Dnhd-Cache"), cached)
	}

	// Publish: grow the archive and re-wrangle, bumping the generation.
	if _, err := archive.Generate(filepath.Join(root, "extra"), archive.DefaultGenConfig(10, 99)); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Wrangle(); err != nil {
		t.Fatal(err)
	}
	newGen := fmt.Sprint(sys.SnapshotGeneration())
	if newGen == oldGen {
		t.Fatal("generation did not bump")
	}

	// The first post-publish request must be answered from the previous
	// generation — the cliff the stale window exists to remove.
	status, hdr, staleBody := postJSON(t, ts.URL+"/search", body)
	if status != http.StatusOK || hdr.Get("X-Dnhd-Cache") != "stale" {
		t.Fatalf("first post-publish response: %d cache=%s, want 200 stale", status, hdr.Get("X-Dnhd-Cache"))
	}
	if hdr.Get("X-Dnhd-Generation") != oldGen {
		t.Errorf("stale generation = %s, want %s", hdr.Get("X-Dnhd-Generation"), oldGen)
	}
	if !bytes.Equal(staleBody, oldBody) {
		t.Fatalf("stale response not byte-identical to the prior generation's:\n%s\nvs\n%s", staleBody, oldBody)
	}

	// Poll until revalidation lands; every interim response must be
	// old-generation bytes verbatim or a fresh new-generation response.
	deadline := time.Now().Add(10 * time.Second)
	for {
		status, hdr, resp := postJSON(t, ts.URL+"/search", body)
		if status != http.StatusOK {
			t.Fatalf("post-publish poll: %d %s", status, resp)
		}
		state, gen := hdr.Get("X-Dnhd-Cache"), hdr.Get("X-Dnhd-Generation")
		switch state {
		case "stale":
			if gen != oldGen || !bytes.Equal(resp, oldBody) {
				t.Fatalf("stale response torn: gen=%s (want %s), identical=%v", gen, oldGen, bytes.Equal(resp, oldBody))
			}
		case "hit", "miss", "collapsed":
			if gen != newGen {
				t.Fatalf("%s response labeled generation %s, want %s", state, gen, newGen)
			}
			if state == "hit" {
				return // revalidated and promoted
			}
		default:
			t.Fatalf("unexpected cache state %q", state)
		}
		if time.Now().After(deadline) {
			t.Fatal("revalidation never promoted the query to a fresh hit")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDeadlinePartial sends an already-expired client budget
// (X-Deadline-Ms: 0): the response must be a 200 with partial:true and
// the partial header, and must never enter the cache — the identical
// follow-up is partial again, and an undeadlined run still pays (then
// caches) the full search.
func TestDeadlinePartial(t *testing.T) {
	sys, m, _ := newTestSystem(t, 24, 7)
	srv, ts := newOverloadServer(t, Config{Sys: sys})
	body := searchBody(t, m, 1, 23)[0]

	expired := func() (http.Header, SearchResponse) {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/search", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Deadline-Ms", "0")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("expired-deadline search: status %d, want 200", resp.StatusCode)
		}
		var sr SearchResponse
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatal(err)
		}
		return resp.Header, sr
	}

	for round := 0; round < 2; round++ {
		hdr, sr := expired()
		if !sr.Partial {
			t.Fatalf("round %d: partial = false, want true", round)
		}
		if hdr.Get("X-Dnhd-Partial") != "1" {
			t.Errorf("round %d: missing X-Dnhd-Partial header", round)
		}
		if state := hdr.Get("X-Dnhd-Cache"); state == "hit" || state == "stale" {
			t.Fatalf("round %d: partial served from cache (%s) — partials must never be cached", round, state)
		}
	}
	if n := srv.metrics.partials.Load(); n < 2 {
		t.Errorf("partials metric = %d, want >= 2", n)
	}

	// Without a deadline the same query is a full miss (proving the
	// partial rounds cached nothing), then a hit.
	status, hdr, resp := postJSON(t, ts.URL+"/search", body)
	if status != http.StatusOK || hdr.Get("X-Dnhd-Cache") != "miss" {
		t.Fatalf("undeadlined run: %d cache=%s body=%s, want 200 miss", status, hdr.Get("X-Dnhd-Cache"), resp)
	}
	var sr SearchResponse
	if err := json.Unmarshal(resp, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Partial {
		t.Error("undeadlined run returned partial")
	}
	if status, hdr, _ := postJSON(t, ts.URL+"/search", body); status != http.StatusOK || hdr.Get("X-Dnhd-Cache") != "hit" {
		t.Errorf("undeadlined replay: %d cache=%s, want 200 hit", status, hdr.Get("X-Dnhd-Cache"))
	}
}

// TestSearchPartialContextCanceled checks the library-level contract:
// an expired context yields partial results and no error.
func TestSearchPartialContextCanceled(t *testing.T) {
	sys, _, _ := newTestSystem(t, 24, 7)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	hits, partial, err := sys.SearchPartialContext(ctx,
		metamess.Query{Variables: []metamess.VariableTerm{{Name: "temperature"}}, K: 5})
	if err != nil {
		t.Fatalf("SearchPartialContext: %v", err)
	}
	if !partial {
		t.Error("canceled context: partial = false, want true")
	}
	_ = hits // whatever was gathered before the cancel is valid
}

// TestHostileMixNo5xx replays fuzz-corpus garbage as text queries:
// rejections are expected, 5xx never.
func TestHostileMixNo5xx(t *testing.T) {
	sys, _, _ := newTestSystem(t, 24, 7)
	_, ts := newOverloadServer(t, Config{Sys: sys, MaxInFlight: 2, QueueDepth: 2, QueueWait: time.Millisecond})

	var corpus []string
	for _, dir := range []string{
		"../expr/testdata/fuzz/FuzzExprParse",
		"../scan/testdata/fuzz/FuzzScanParsers",
	} {
		ss, err := workload.CorpusStrings(dir)
		if err != nil {
			t.Fatalf("corpus %s: %v", dir, err)
		}
		corpus = append(corpus, ss...)
	}
	if len(corpus) == 0 {
		t.Fatal("no corpus strings")
	}
	reqs := workload.HostileTextRequests(ts.URL, corpus, 120, 5)
	stats, err := workload.Replay(context.Background(), reqs, workload.LoadOptions{Concurrency: 8, TolerateClientErrors: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Status.Server5xx != 0 || stats.Status.Transport != 0 {
		t.Fatalf("hostile mix: %d server errors, %d transport errors, want 0 (status %+v)",
			stats.Status.Server5xx, stats.Status.Transport, stats.Status)
	}
}
