package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"metamess"
	"metamess/internal/archive"
	"metamess/internal/workload"
)

func newTestSystem(t testing.TB, n int, seed int64) (*metamess.System, *archive.Manifest, string) {
	t.Helper()
	root := t.TempDir()
	m, err := archive.Generate(root, archive.DefaultGenConfig(n, seed))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := metamess.New(metamess.Config{ArchiveRoot: root})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Wrangle(); err != nil {
		t.Fatal(err)
	}
	return sys, m, root
}

func newTestServer(t testing.TB, sys *metamess.System, cacheSize int) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(Config{Sys: sys, CacheSize: cacheSize})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func get(t testing.TB, url string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, body
}

func postJSON(t testing.TB, url string, body []byte) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, out
}

func TestEndpointsSmoke(t *testing.T) {
	sys, m, _ := newTestSystem(t, 24, 7)
	_, ts := newTestServer(t, sys, 0)

	status, _, body := get(t, ts.URL+"/healthz")
	if status != http.StatusOK || !bytes.Contains(body, []byte(`"ok"`)) {
		t.Errorf("healthz: %d %s", status, body)
	}

	status, _, body = get(t, ts.URL+"/stats")
	if status != http.StatusOK {
		t.Errorf("stats: %d %s", status, body)
	}
	var stats StatsResponse
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatalf("stats body: %v", err)
	}
	if stats.Datasets != len(m.Datasets) {
		t.Errorf("stats datasets = %d, want %d", stats.Datasets, len(m.Datasets))
	}
	if stats.Shards.Count < 1 || len(stats.Shards.Sizes) != stats.Shards.Count {
		t.Errorf("stats shards = %+v, want count ≥ 1 with matching sizes", stats.Shards)
	}
	sum := 0
	for _, n := range stats.Shards.Sizes {
		sum += n
	}
	if sum != stats.Datasets {
		t.Errorf("shard sizes sum to %d, want %d", sum, stats.Datasets)
	}

	status, _, body = get(t, ts.URL+"/curator/queue")
	if status != http.StatusOK || !bytes.Contains(body, []byte(`"queue"`)) {
		t.Errorf("curator/queue: %d %s", status, body)
	}

	status, _, body = get(t, ts.URL+"/dataset/"+m.Datasets[0].Path)
	if status != http.StatusOK || !bytes.Contains(body, []byte("Dataset:")) {
		t.Errorf("dataset: %d %s", status, body)
	}
	status, _, _ = get(t, ts.URL+"/dataset/no/such/file.csv")
	if status != http.StatusNotFound {
		t.Errorf("unknown dataset: %d, want 404", status)
	}

	req, _ := json.Marshal(SearchRequest{Variables: []Variable{{Name: "temperature"}}, K: 5})
	status, _, body = postJSON(t, ts.URL+"/search", req)
	if status != http.StatusOK {
		t.Errorf("search: %d %s", status, body)
	}
	var sr SearchResponse
	if err := json.Unmarshal(body, &sr); err != nil || sr.Count == 0 {
		t.Errorf("search response: %v, count %d", err, sr.Count)
	}

	status, _, body = get(t, ts.URL+"/search/text?q="+
		"near+46.2,-123.8+in+mid-2010+with+temperature")
	if status != http.StatusOK {
		t.Errorf("search/text: %d %s", status, body)
	}

	// Error shapes.
	status, _, _ = postJSON(t, ts.URL+"/search", []byte("{not json"))
	if status != http.StatusBadRequest {
		t.Errorf("bad body: %d, want 400", status)
	}
	status, _, _ = postJSON(t, ts.URL+"/search", []byte("{}"))
	if status != http.StatusBadRequest {
		t.Errorf("empty query: %d, want 400", status)
	}
	status, _, _ = get(t, ts.URL+"/search/text")
	if status != http.StatusBadRequest {
		t.Errorf("missing q: %d, want 400", status)
	}
	status, _, _ = get(t, ts.URL+"/search/text?q=wibble+wobble")
	if status != http.StatusBadRequest {
		t.Errorf("unparsable q: %d, want 400", status)
	}
}

// TestCacheByteIdentity is the cache-correctness property test: for a
// workload of derived queries, the cached (second) response must be
// byte-identical to the uncached (first) one, and both must be
// byte-identical to what a cache-disabled server over the same system
// returns.
func TestCacheByteIdentity(t *testing.T) {
	sys, m, _ := newTestSystem(t, 30, 11)
	_, cached := newTestServer(t, sys, 0)
	_, uncached := newTestServer(t, sys, -1)

	judged, err := workload.Queries(m, 12, 13, workload.DefaultRelevance(), false)
	if err != nil {
		t.Fatal(err)
	}
	// The generator anchors queries on random datasets with replacement;
	// dedupe so every body below really is a first request.
	var bodies [][]byte
	seen := make(map[string]bool)
	for _, j := range judged {
		body, err := json.Marshal(RequestFromQuery(j.Query))
		if err != nil {
			t.Fatal(err)
		}
		if !seen[string(body)] {
			seen[string(body)] = true
			bodies = append(bodies, body)
		}
	}
	for i, body := range bodies {
		status1, h1, b1 := postJSON(t, cached.URL+"/search", body)
		status2, h2, b2 := postJSON(t, cached.URL+"/search", body)
		status3, h3, b3 := postJSON(t, uncached.URL+"/search", body)
		if status1 != 200 || status2 != 200 || status3 != 200 {
			t.Fatalf("query %d: statuses %d/%d/%d", i, status1, status2, status3)
		}
		if got := h1.Get("X-Dnhd-Cache"); got != "miss" {
			t.Errorf("query %d: first request cache=%q, want miss", i, got)
		}
		if got := h2.Get("X-Dnhd-Cache"); got != "hit" {
			t.Errorf("query %d: second request cache=%q, want hit", i, got)
		}
		if got := h3.Get("X-Dnhd-Cache"); got != "miss" {
			t.Errorf("query %d: uncached server cache=%q, want miss", i, got)
		}
		if !bytes.Equal(b1, b2) {
			t.Errorf("query %d: cached response differs from uncached", i)
		}
		if !bytes.Equal(b1, b3) {
			t.Errorf("query %d: cache-disabled server response differs", i)
		}
	}
}

// TestTextNormalizationSharesCacheEntry checks that textual variants of
// one query (whitespace, clause order) normalize to the same cache key.
func TestTextNormalizationSharesCacheEntry(t *testing.T) {
	sys, _, _ := newTestSystem(t, 20, 3)
	_, ts := newTestServer(t, sys, 0)

	q1 := "near+46.2,-123.8+with+temperature+top+10"
	q2 := "with++temperature++near+46.2,-123.8+top+10" // reordered, extra spaces
	status, h, b1 := get(t, ts.URL+"/search/text?q="+q1)
	if status != 200 || h.Get("X-Dnhd-Cache") != "miss" {
		t.Fatalf("first: %d cache=%q", status, h.Get("X-Dnhd-Cache"))
	}
	status, h, b2 := get(t, ts.URL+"/search/text?q="+q2)
	if status != 200 {
		t.Fatalf("second: %d", status)
	}
	if h.Get("X-Dnhd-Cache") != "hit" {
		t.Errorf("normalized variant missed the cache (%q)", h.Get("X-Dnhd-Cache"))
	}
	if !bytes.Equal(b1, b2) {
		t.Error("variant responses differ")
	}

	// The structured equivalent normalizes to the same key and shares
	// the entry across endpoints.
	body := []byte(`{"near":{"lat":46.2,"lon":-123.8},"variables":[{"name":"temperature"}],"k":10}`)
	status, h, b3 := postJSON(t, ts.URL+"/search", body)
	if status != 200 {
		t.Fatalf("structured: %d", status)
	}
	if h.Get("X-Dnhd-Cache") != "hit" {
		t.Errorf("structured equivalent missed the text query's entry (%q)", h.Get("X-Dnhd-Cache"))
	}
	if !bytes.Equal(b1, b3) {
		t.Error("structured response differs from text response")
	}
}

// TestCacheInvalidationOnPublish checks the generation-keying story end
// to end: a publish bumps the snapshot generation, the next identical
// query misses the cache, and its response reflects the new catalog.
func TestCacheInvalidationOnPublish(t *testing.T) {
	sys, m, root := newTestSystem(t, 25, 5)
	_, ts := newTestServer(t, sys, 0)

	const q = "/search/text?q=with+temperature+top+200"
	status, h, b1 := get(t, ts.URL+q)
	if status != 200 || h.Get("X-Dnhd-Cache") != "miss" {
		t.Fatalf("first: %d cache=%q", status, h.Get("X-Dnhd-Cache"))
	}
	if _, h, b := get(t, ts.URL+q); h.Get("X-Dnhd-Cache") != "hit" || !bytes.Equal(b, b1) {
		t.Fatalf("second request should hit with identical bytes")
	}
	var r1 SearchResponse
	if err := json.Unmarshal(b1, &r1); err != nil {
		t.Fatal(err)
	}
	gen1 := sys.SnapshotGeneration()
	if r1.Generation != gen1 {
		t.Errorf("response generation %d, snapshot %d", r1.Generation, gen1)
	}

	// Grow the archive in place and re-wrangle: the incremental scan
	// picks up the new files and Publish swaps in a new snapshot.
	if _, err := archive.Generate(filepath.Join(root, "extra"), archive.DefaultGenConfig(10, 99)); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Wrangle(); err != nil {
		t.Fatal(err)
	}
	gen2 := sys.SnapshotGeneration()
	if gen2 <= gen1 {
		t.Fatalf("publish did not bump generation: %d -> %d", gen1, gen2)
	}
	if got, want := sys.DatasetCount(), len(m.Datasets)+10; got != want {
		t.Fatalf("dataset count = %d, want %d", got, want)
	}

	status, h, b3 := get(t, ts.URL+q)
	if status != 200 {
		t.Fatalf("post-publish: %d", status)
	}
	if h.Get("X-Dnhd-Cache") != "miss" {
		t.Errorf("post-publish request hit a stale entry (cache=%q)", h.Get("X-Dnhd-Cache"))
	}
	var r3 SearchResponse
	if err := json.Unmarshal(b3, &r3); err != nil {
		t.Fatal(err)
	}
	if r3.Generation != gen2 {
		t.Errorf("post-publish generation = %d, want %d", r3.Generation, gen2)
	}
	if r3.Count < r1.Count {
		t.Errorf("post-publish count = %d, was %d — new datasets missing", r3.Count, r1.Count)
	}
	if bytes.Equal(b1, b3) {
		t.Error("post-publish response identical to pre-publish")
	}
}

// TestCacheSurvivesNoopRewrangle is the serving-layer half of the
// generation-stability argument: a re-wrangle over an unchanged archive
// publishes an empty delta, the snapshot generation holds, and every
// cached response stays valid — where the pre-delta write path evicted
// the whole cache on each publish.
func TestCacheSurvivesNoopRewrangle(t *testing.T) {
	sys, _, _ := newTestSystem(t, 15, 23)
	srv, ts := newTestServer(t, sys, 0)

	const q = "/search/text?q=with+temperature+top+50"
	status, h, b1 := get(t, ts.URL+q)
	if status != 200 || h.Get("X-Dnhd-Cache") != "miss" {
		t.Fatalf("first: %d cache=%q", status, h.Get("X-Dnhd-Cache"))
	}
	gen := sys.SnapshotGeneration()

	rep, err := sys.Wrangle() // what the SIGHUP kick runs in the background
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Delta.GenerationStable {
		t.Fatalf("expected a no-op re-wrangle, got delta %+v", rep.Delta)
	}
	if got := sys.SnapshotGeneration(); got != gen {
		t.Fatalf("no-op re-wrangle moved the generation: %d -> %d", gen, got)
	}

	hitsBefore := srv.metrics.cacheHits.Load()
	status, h, b2 := get(t, ts.URL+q)
	if status != 200 || h.Get("X-Dnhd-Cache") != "hit" {
		t.Fatalf("post-rewrangle: %d cache=%q — the no-op publish evicted the cache", status, h.Get("X-Dnhd-Cache"))
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("cached response changed across a no-op re-wrangle")
	}
	if srv.metrics.cacheHits.Load() != hitsBefore+1 {
		t.Fatal("hit counter did not advance")
	}
}

// TestConcurrentRewrangleUnderLoad hammers the search endpoints while
// the background scheduler re-wrangles on a tight interval, checking
// (under -race in CI) that every response is well-formed and that any
// two responses for the same query at the same generation are
// byte-identical — the cache-correctness property with publishes racing
// the reads.
func TestConcurrentRewrangleUnderLoad(t *testing.T) {
	sys, m, root := newTestSystem(t, 20, 17)
	srv, err := New(Config{Sys: sys, RewrangleEvery: 25 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr.String()
	srv.Rewrangle() // a SIGHUP-style kick on top of the ticker

	// Churn the archive while the load runs: with the delta-aware write
	// path an unchanged archive publishes nothing (and keeps the
	// generation stable), so real mutations are what make the
	// re-wrangles race the readers with actual snapshot swaps.
	churnDone := make(chan struct{})
	churnStop := make(chan struct{})
	// Append to an OBS file: its parser skips blank lines, so the churn
	// changes size and content hash without ever failing a parse.
	target := filepath.Join(root, m.Datasets[0].Path)
	for _, d := range m.Datasets {
		if string(d.Format) == "obs" {
			target = filepath.Join(root, d.Path)
			break
		}
	}
	go func() {
		defer close(churnDone)
		for i := 0; ; i++ {
			select {
			case <-churnStop:
				return
			case <-time.After(10 * time.Millisecond):
			}
			f, err := os.OpenFile(target, os.O_APPEND|os.O_WRONLY, 0o644)
			if err != nil {
				t.Errorf("churn: %v", err)
				return
			}
			// Appending a blank line changes size (and hash) without
			// perturbing the parsed summary's validity.
			f.WriteString("\n")
			f.Close()
		}
	}()
	defer func() {
		close(churnStop)
		<-churnDone
	}()

	queries := []string{
		"/search/text?q=with+temperature+top+50",
		"/search/text?q=with+salinity+top+50",
		"/search/text?q=near+46.2,-123.8+in+2010+with+temperature",
		"/search/text?q=in+mid-2010+with+%22turbidity%22",
	}
	const workers, perWorker = 4, 25
	var mu sync.Mutex
	seen := make(map[string][]byte) // query|generation -> body
	var wg sync.WaitGroup
	errs := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				q := queries[(w+i)%len(queries)]
				resp, err := http.Get(base + q)
				if err != nil {
					errs <- err
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != 200 {
					errs <- fmt.Errorf("%s: status %d: %s", q, resp.StatusCode, body)
					return
				}
				var sr SearchResponse
				if err := json.Unmarshal(body, &sr); err != nil {
					errs <- fmt.Errorf("%s: %v", q, err)
					return
				}
				key := fmt.Sprintf("%s|%d", q, sr.Generation)
				mu.Lock()
				if prev, ok := seen[key]; ok {
					if !bytes.Equal(prev, body) {
						errs <- fmt.Errorf("%s: two different bodies at generation %d", q, sr.Generation)
					}
				} else {
					seen[key] = body
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// With delta-aware publishing only a churn-observing run moves the
	// generation, and the load may finish before one does — the mutator
	// and the 25ms ticker are still going, so wait for a publish that
	// saw the churn rather than asserting on whatever ran first.
	var stats StatsResponse
	deadline := time.Now().Add(15 * time.Second)
	for {
		status, _, body := get(t, base+"/stats")
		if status != 200 {
			t.Fatalf("stats: %d", status)
		}
		if err := json.Unmarshal(body, &stats); err != nil {
			t.Fatal(err)
		}
		if stats.Generation > 1 || time.Now().After(deadline) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if stats.Rewrangle.Runs == 0 {
		t.Error("rewrangler never ran")
	}
	if stats.Rewrangle.Failures != 0 {
		t.Errorf("rewrangle failures: %d (%s)", stats.Rewrangle.Failures, stats.Rewrangle.LastError)
	}
	if stats.Generation <= 1 {
		t.Errorf("generation = %d, want a churn-observing publish", stats.Generation)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Errorf("shutdown: %v", err)
	}
}

// TestGracefulShutdown checks that Shutdown drains in-flight requests
// (no 5xx or truncated responses) and then refuses new connections.
func TestGracefulShutdown(t *testing.T) {
	sys, _, _ := newTestSystem(t, 15, 29)
	srv, err := New(Config{Sys: sys})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr.String()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(base + "/search/text?q=with+temperature")
				if err != nil {
					return // transport error after close is the expected end
				}
				body, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 || rerr != nil || len(body) == 0 {
					errs <- fmt.Errorf("in-flight request failed: %d %v", resp.StatusCode, rerr)
					return
				}
			}
		}()
	}
	time.Sleep(50 * time.Millisecond) // let the load get going
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Errorf("shutdown: %v", err)
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("server still accepting connections after Shutdown")
	}
}

// TestStatsMetrics checks the /stats accounting: request counts,
// latency rows, cache hit/miss tallies, and the in-flight gauge.
func TestStatsMetrics(t *testing.T) {
	sys, _, _ := newTestSystem(t, 15, 31)
	_, ts := newTestServer(t, sys, 0)

	const q = "/search/text?q=with+temperature"
	get(t, ts.URL+q)
	get(t, ts.URL+q)
	get(t, ts.URL+q)
	get(t, ts.URL+"/healthz")
	get(t, ts.URL+"/nope")

	status, _, body := get(t, ts.URL+"/stats")
	if status != 200 {
		t.Fatalf("stats: %d", status)
	}
	var stats StatsResponse
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	rows := make(map[string]EndpointStats)
	for _, row := range stats.Endpoints {
		rows[row.Endpoint] = row
	}
	if got := rows["/search/text"].Requests; got != 3 {
		t.Errorf("/search/text requests = %d, want 3", got)
	}
	if rows["/search/text"].P50Ms <= 0 || rows["/search/text"].P99Ms < rows["/search/text"].P50Ms {
		t.Errorf("latency percentiles malformed: %+v", rows["/search/text"])
	}
	if got := rows["/healthz"].Requests; got != 1 {
		t.Errorf("/healthz requests = %d, want 1", got)
	}
	if got := rows["other"]; got.Requests != 1 || got.Errors != 1 {
		t.Errorf("other row = %+v, want 1 request 1 error", got)
	}
	if stats.Cache.Hits != 2 || stats.Cache.Misses != 1 {
		t.Errorf("cache hits/misses = %d/%d, want 2/1", stats.Cache.Hits, stats.Cache.Misses)
	}
	if stats.Cache.Entries != 1 {
		t.Errorf("cache entries = %d, want 1", stats.Cache.Entries)
	}
	// The gauge counts the /stats request reading it.
	if stats.InFlight != 1 {
		t.Errorf("inFlight = %d, want 1", stats.InFlight)
	}
	if stats.UptimeSec <= 0 {
		t.Errorf("uptime = %v", stats.UptimeSec)
	}
	// Three identical queries: one executed search, two cache hits.
	if stats.Search.SearchesRun != 1 {
		t.Errorf("searchesRun = %d, want 1", stats.Search.SearchesRun)
	}
	if stats.Search.PoolHits+stats.Search.PoolMisses == 0 {
		t.Error("pool counters both zero after an executed search")
	}
	// Per-search allocation figures need a second sampling window with at
	// least one executed search in between.
	get(t, ts.URL+"/search/text?q=with+salinity")
	_, _, body = get(t, ts.URL+"/stats")
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Search.SearchesRun != 2 {
		t.Errorf("searchesRun = %d, want 2", stats.Search.SearchesRun)
	}
	if stats.Search.AllocsPerSearch <= 0 || stats.Search.BytesPerSearch <= 0 {
		t.Errorf("per-search alloc sample = %.1f allocs / %.1f bytes, want > 0",
			stats.Search.AllocsPerSearch, stats.Search.BytesPerSearch)
	}
}

// TestSearchStructuredNormalization checks that JSON field order and
// unknown fields do not defeat the cache key.
func TestSearchStructuredNormalization(t *testing.T) {
	sys, _, _ := newTestSystem(t, 15, 37)
	_, ts := newTestServer(t, sys, 0)

	b1 := []byte(`{"variables":[{"name":"temperature"}],"k":5}`)
	b2 := []byte(`{"k":5,  "variables":[{"name":"temperature"}], "ignoredExtra":true}`)
	status, h, r1 := postJSON(t, ts.URL+"/search", b1)
	if status != 200 || h.Get("X-Dnhd-Cache") != "miss" {
		t.Fatalf("first: %d %q", status, h.Get("X-Dnhd-Cache"))
	}
	status, h, r2 := postJSON(t, ts.URL+"/search", b2)
	if status != 200 {
		t.Fatalf("second: %d", status)
	}
	if h.Get("X-Dnhd-Cache") != "hit" {
		t.Errorf("reordered body missed the cache (%q)", h.Get("X-Dnhd-Cache"))
	}
	if !bytes.Equal(r1, r2) {
		t.Error("responses differ")
	}
}

func TestNewRequiresSystem(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil Sys accepted")
	}
}

func TestEndpointLabel(t *testing.T) {
	cases := map[string]string{
		"/search":            epSearch,
		"/search/text":       epSearchText,
		"/dataset/a/b.csv":   epDataset,
		"/curator/queue":     epCurator,
		"/healthz":           epHealthz,
		"/stats":             epStats,
		"/":                  endpointOther,
		"/dataset":           endpointOther,
		"/search/textextras": endpointOther,
	}
	for path, want := range cases {
		if got := endpointLabel(path); got != want {
			t.Errorf("endpointLabel(%q) = %q, want %q", path, got, want)
		}
	}
}

// TestStatsDurabilityAndRewranglerCompaction drives a durable system
// through the server: /stats must carry the durability section with
// the journaled generation, a non-durable server must omit it, and the
// rewrangler's post-run compaction hook must fold the journal into a
// checkpoint (the store was configured with a tiny compaction floor).
func TestStatsDurabilityAndRewranglerCompaction(t *testing.T) {
	root := t.TempDir()
	if _, err := archive.Generate(root, archive.DefaultGenConfig(15, 33)); err != nil {
		t.Fatal(err)
	}
	sys, err := metamess.OpenDurable(metamess.Config{
		ArchiveRoot:     root,
		DataDir:         t.TempDir(),
		CompactMinBytes: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if _, err := sys.Wrangle(); err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Sys: sys})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr.String()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	status, _, body := get(t, base+"/stats")
	if status != 200 {
		t.Fatalf("stats: %d", status)
	}
	var stats StatsResponse
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Durability == nil {
		t.Fatal("durable server reported no durability section")
	}
	if stats.Durability.Generation != sys.SnapshotGeneration() {
		t.Errorf("durable generation %d, want %d", stats.Durability.Generation, sys.SnapshotGeneration())
	}
	if stats.Durability.Appends == 0 {
		t.Error("no journal appends after a publish")
	}

	// A rewrangle (no archive change) completes and its compaction hook
	// fires: the initial wrangle's journal exceeds the floor, so the
	// post-run check must fold it into a checkpoint.
	srv.Rewrangle()
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, _, body := get(t, base+"/stats")
		if err := json.Unmarshal(body, &stats); err != nil {
			t.Fatal(err)
		}
		if stats.Rewrangle.Runs >= 1 && stats.Durability != nil && stats.Durability.Compactions >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rewrangler never compacted: %+v %+v", stats.Rewrangle, stats.Durability)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if stats.Rewrangle.Failures != 0 {
		t.Errorf("rewrangle failures: %+v", stats.Rewrangle)
	}
	if stats.Durability.JournalBytes != 0 {
		t.Errorf("journal not emptied by compaction: %d bytes", stats.Durability.JournalBytes)
	}
	if stats.Durability.CheckpointBytes == 0 {
		t.Error("no checkpoint after compaction")
	}

	// Control: a non-durable system has no durability section.
	plain, _, _ := newTestSystem(t, 10, 34)
	_, ts := newTestServer(t, plain, 0)
	_, _, body = get(t, ts.URL+"/stats")
	var plainStats StatsResponse
	if err := json.Unmarshal(body, &plainStats); err != nil {
		t.Fatal(err)
	}
	if plainStats.Durability != nil {
		t.Error("non-durable server reported a durability section")
	}
}
