package server

import (
	"context"
	"math"
	"sync/atomic"
	"time"
)

// DefaultQueueWait bounds how long an over-limit search request may sit
// in the admission queue before it is shed.
const DefaultQueueWait = 50 * time.Millisecond

// sheddingWindow is how long after the last shed /readyz keeps
// reporting the instance as shedding — long enough for a load balancer
// polling every few seconds to notice a burst it would otherwise miss.
const sheddingWindow = 5 * time.Second

// shedReason labels why a request was refused admission.
type shedReason int

const (
	shedNone shedReason = iota
	// shedQueueFull: the in-flight limit and the wait queue were both
	// full — the instant, sub-millisecond shed path.
	shedQueueFull
	// shedWaitTimeout: the request queued but no slot freed within the
	// wait bound.
	shedWaitTimeout
	// shedClientGone: the client disconnected (or its deadline expired)
	// while queued.
	shedClientGone
)

func (r shedReason) String() string {
	switch r {
	case shedQueueFull:
		return "queue_full"
	case shedWaitTimeout:
		return "wait_timeout"
	case shedClientGone:
		return "client_gone"
	}
	return "none"
}

// admission is the bounded-concurrency gate in front of the search
// endpoints: at most max requests execute at once, at most depth more
// wait (FIFO — blocked channel sends are released in arrival order by
// the runtime) for up to wait, and everything past that is shed
// immediately with 429. Shedding does no search work, so a saturated
// server answers excess load in microseconds instead of convoying it.
type admission struct {
	max   int
	depth int
	wait  time.Duration

	slots  chan struct{}
	queued atomic.Int64

	admitted     atomic.Uint64
	waited       atomic.Uint64 // admissions that had to queue first
	shedFull     atomic.Uint64
	shedTimeout  atomic.Uint64
	shedClient   atomic.Uint64
	peakInFlight atomic.Int64
	lastShedNs   atomic.Int64 // UnixNano of the most recent shed
	// Queue-full shed decision time (entry to refusal), server-side: the
	// proof that shedding does no work. Client-observed shed latency also
	// includes the network and both sides' scheduling.
	shedFullSumNs atomic.Int64
	shedFullMaxNs atomic.Int64
	// serviceNs is an EWMA of admitted requests' slot-hold time — the
	// observed drain rate the Retry-After derivation feeds on.
	serviceNs atomic.Int64
}

// newAdmission builds the gate. max <= 0 disables admission control
// (returns nil; all methods on a nil *admission are inert and admit).
// depth 0 defaults to 2*max; negative depth means no wait queue.
func newAdmission(max, depth int, wait time.Duration) *admission {
	if max <= 0 {
		return nil
	}
	if depth == 0 {
		depth = 2 * max
	}
	if depth < 0 {
		depth = 0
	}
	if wait <= 0 {
		wait = DefaultQueueWait
	}
	return &admission{
		max:   max,
		depth: depth,
		wait:  wait,
		slots: make(chan struct{}, max),
	}
}

// acquire admits the request (returning a release func) or sheds it
// (returning a reason). The fast paths — free slot, or full queue — do
// not touch the clock beyond a timer allocation avoided entirely.
func (a *admission) acquire(ctx context.Context) (release func(), reason shedReason) {
	if a == nil {
		return func() {}, shedNone
	}
	t0 := time.Now()
	select {
	case a.slots <- struct{}{}:
		return a.admit(false), shedNone
	default:
	}
	// No free slot: take a queue position or shed on the spot.
	if a.queued.Add(1) > int64(a.depth) {
		a.queued.Add(-1)
		a.shed(&a.shedFull)
		d := time.Since(t0).Nanoseconds()
		a.shedFullSumNs.Add(d)
		for {
			cur := a.shedFullMaxNs.Load()
			if d <= cur || a.shedFullMaxNs.CompareAndSwap(cur, d) {
				break
			}
		}
		return nil, shedQueueFull
	}
	timer := time.NewTimer(a.wait)
	defer timer.Stop()
	select {
	case a.slots <- struct{}{}:
		a.queued.Add(-1)
		return a.admit(true), shedNone
	case <-timer.C:
		a.queued.Add(-1)
		a.shed(&a.shedTimeout)
		return nil, shedWaitTimeout
	case <-ctx.Done():
		a.queued.Add(-1)
		a.shed(&a.shedClient)
		return nil, shedClientGone
	}
}

func (a *admission) admit(queuedFirst bool) func() {
	a.admitted.Add(1)
	if queuedFirst {
		a.waited.Add(1)
	}
	// len on a buffered channel is approximate under concurrency, but
	// the watermark only needs to be monotone and close.
	if n := int64(len(a.slots)); n > a.peakInFlight.Load() {
		a.peakInFlight.Store(n)
	}
	t0 := time.Now()
	return func() {
		a.observeService(time.Since(t0).Nanoseconds())
		<-a.slots
	}
}

// observeService folds one admitted request's slot-hold time into the
// service-time EWMA (α = 1/8). A lost CAS race just drops one sample.
func (a *admission) observeService(ns int64) {
	for range 4 {
		old := a.serviceNs.Load()
		next := old + (ns-old)/8
		if old == 0 {
			next = ns
		}
		if a.serviceNs.CompareAndSwap(old, next) {
			return
		}
	}
}

// maxRetryAfterSeconds caps the derived Retry-After: past it the
// backlog estimate says more about a stall than a drain rate, and
// clients should not be told to go away for minutes.
const maxRetryAfterSeconds = 30

// retryAfterSeconds derives the Retry-After hint for a shed response
// from the observed queue drain rate: the backlog ahead of a returning
// client (requests holding slots plus requests queued) drains at max
// slots per mean service time, so the expected wait is
// backlog × mean / max, rounded up to whole seconds and clamped to
// [1, maxRetryAfterSeconds]. Before any request has completed (no mean
// yet) it falls back to 1.
func (a *admission) retryAfterSeconds() int {
	if a == nil {
		return 1
	}
	mean := a.serviceNs.Load()
	if mean <= 0 {
		return 1
	}
	backlog := a.inFlight() + a.queued.Load()
	if backlog < 1 {
		backlog = 1
	}
	secs := int(math.Ceil(float64(backlog) * float64(mean) / float64(a.max) / float64(time.Second)))
	if secs < 1 {
		return 1
	}
	if secs > maxRetryAfterSeconds {
		return maxRetryAfterSeconds
	}
	return secs
}

func (a *admission) shed(counter *atomic.Uint64) {
	counter.Add(1)
	a.lastShedNs.Store(time.Now().UnixNano())
}

func (a *admission) shedTotal() uint64 {
	if a == nil {
		return 0
	}
	return a.shedFull.Load() + a.shedTimeout.Load() + a.shedClient.Load()
}

// inFlight reports the slots currently held.
func (a *admission) inFlight() int64 {
	if a == nil {
		return 0
	}
	return int64(len(a.slots))
}

// shedding reports whether the gate is refusing (or was recently
// refusing) work: the wait queue is at capacity right now, or a shed
// happened within sheddingWindow. This is the /readyz drain signal — a
// balancer that stops routing here sheds nothing a user sees.
func (a *admission) shedding() bool {
	if a == nil {
		return false
	}
	if a.depth > 0 && a.queued.Load() >= int64(a.depth) {
		return true
	}
	last := a.lastShedNs.Load()
	return last > 0 && time.Since(time.Unix(0, last)) < sheddingWindow
}
