package server

import (
	"context"
	"sync/atomic"
	"time"
)

// DefaultQueueWait bounds how long an over-limit search request may sit
// in the admission queue before it is shed.
const DefaultQueueWait = 50 * time.Millisecond

// sheddingWindow is how long after the last shed /readyz keeps
// reporting the instance as shedding — long enough for a load balancer
// polling every few seconds to notice a burst it would otherwise miss.
const sheddingWindow = 5 * time.Second

// shedReason labels why a request was refused admission.
type shedReason int

const (
	shedNone shedReason = iota
	// shedQueueFull: the in-flight limit and the wait queue were both
	// full — the instant, sub-millisecond shed path.
	shedQueueFull
	// shedWaitTimeout: the request queued but no slot freed within the
	// wait bound.
	shedWaitTimeout
	// shedClientGone: the client disconnected (or its deadline expired)
	// while queued.
	shedClientGone
)

func (r shedReason) String() string {
	switch r {
	case shedQueueFull:
		return "queue_full"
	case shedWaitTimeout:
		return "wait_timeout"
	case shedClientGone:
		return "client_gone"
	}
	return "none"
}

// admission is the bounded-concurrency gate in front of the search
// endpoints: at most max requests execute at once, at most depth more
// wait (FIFO — blocked channel sends are released in arrival order by
// the runtime) for up to wait, and everything past that is shed
// immediately with 429. Shedding does no search work, so a saturated
// server answers excess load in microseconds instead of convoying it.
type admission struct {
	max   int
	depth int
	wait  time.Duration

	slots  chan struct{}
	queued atomic.Int64

	admitted     atomic.Uint64
	waited       atomic.Uint64 // admissions that had to queue first
	shedFull     atomic.Uint64
	shedTimeout  atomic.Uint64
	shedClient   atomic.Uint64
	peakInFlight atomic.Int64
	lastShedNs   atomic.Int64 // UnixNano of the most recent shed
	// Queue-full shed decision time (entry to refusal), server-side: the
	// proof that shedding does no work. Client-observed shed latency also
	// includes the network and both sides' scheduling.
	shedFullSumNs atomic.Int64
	shedFullMaxNs atomic.Int64
}

// newAdmission builds the gate. max <= 0 disables admission control
// (returns nil; all methods on a nil *admission are inert and admit).
// depth 0 defaults to 2*max; negative depth means no wait queue.
func newAdmission(max, depth int, wait time.Duration) *admission {
	if max <= 0 {
		return nil
	}
	if depth == 0 {
		depth = 2 * max
	}
	if depth < 0 {
		depth = 0
	}
	if wait <= 0 {
		wait = DefaultQueueWait
	}
	return &admission{
		max:   max,
		depth: depth,
		wait:  wait,
		slots: make(chan struct{}, max),
	}
}

// acquire admits the request (returning a release func) or sheds it
// (returning a reason). The fast paths — free slot, or full queue — do
// not touch the clock beyond a timer allocation avoided entirely.
func (a *admission) acquire(ctx context.Context) (release func(), reason shedReason) {
	if a == nil {
		return func() {}, shedNone
	}
	t0 := time.Now()
	select {
	case a.slots <- struct{}{}:
		return a.admit(false), shedNone
	default:
	}
	// No free slot: take a queue position or shed on the spot.
	if a.queued.Add(1) > int64(a.depth) {
		a.queued.Add(-1)
		a.shed(&a.shedFull)
		d := time.Since(t0).Nanoseconds()
		a.shedFullSumNs.Add(d)
		for {
			cur := a.shedFullMaxNs.Load()
			if d <= cur || a.shedFullMaxNs.CompareAndSwap(cur, d) {
				break
			}
		}
		return nil, shedQueueFull
	}
	timer := time.NewTimer(a.wait)
	defer timer.Stop()
	select {
	case a.slots <- struct{}{}:
		a.queued.Add(-1)
		return a.admit(true), shedNone
	case <-timer.C:
		a.queued.Add(-1)
		a.shed(&a.shedTimeout)
		return nil, shedWaitTimeout
	case <-ctx.Done():
		a.queued.Add(-1)
		a.shed(&a.shedClient)
		return nil, shedClientGone
	}
}

func (a *admission) admit(queuedFirst bool) func() {
	a.admitted.Add(1)
	if queuedFirst {
		a.waited.Add(1)
	}
	// len on a buffered channel is approximate under concurrency, but
	// the watermark only needs to be monotone and close.
	if n := int64(len(a.slots)); n > a.peakInFlight.Load() {
		a.peakInFlight.Store(n)
	}
	return func() { <-a.slots }
}

func (a *admission) shed(counter *atomic.Uint64) {
	counter.Add(1)
	a.lastShedNs.Store(time.Now().UnixNano())
}

func (a *admission) shedTotal() uint64 {
	if a == nil {
		return 0
	}
	return a.shedFull.Load() + a.shedTimeout.Load() + a.shedClient.Load()
}

// inFlight reports the slots currently held.
func (a *admission) inFlight() int64 {
	if a == nil {
		return 0
	}
	return int64(len(a.slots))
}

// shedding reports whether the gate is refusing (or was recently
// refusing) work: the wait queue is at capacity right now, or a shed
// happened within sheddingWindow. This is the /readyz drain signal — a
// balancer that stops routing here sheds nothing a user sees.
func (a *admission) shedding() bool {
	if a == nil {
		return false
	}
	if a.depth > 0 && a.queued.Load() >= int64(a.depth) {
		return true
	}
	last := a.lastShedNs.Load()
	return last > 0 && time.Since(time.Unix(0, last)) < sheddingWindow
}
