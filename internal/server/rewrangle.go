package server

import (
	"log/slog"
	"sync"
	"time"

	"metamess"
	"metamess/internal/obs"
)

// rewrangler re-runs the wrangling pipeline in the background — on a
// fixed interval, and on demand when the daemon relays a SIGHUP through
// Kick. Wrangling mutates only the working catalog until its final
// Publish step atomically swaps the published snapshot, so searches
// keep serving the old generation for the whole run and never see a
// partial catalog; the cache's generation keying picks up the swap on
// the next request. Runs are serialized by the loop goroutine itself.
type rewrangler struct {
	sys      *metamess.System
	interval time.Duration
	logger   *slog.Logger
	kick     chan struct{}
	stop     chan struct{}
	done     chan struct{}

	mu           sync.Mutex
	runs         int
	failures     int
	lastErr      string
	lastDuration time.Duration
	lastFinished time.Time
	running      bool
	lastDelta    metamess.DeltaSummary
	noopRuns     int
	compactions  int
	compactErr   string
	// lastTrace is the previous run's rendered span tree, served at
	// /debug/wrangletrace. Wrangles are seconds-scale and rare, so every
	// run is traced — the span overhead is noise against a single fsync.
	lastTrace *obs.SpanTree
}

// DeltaStats is the last completed run's churn, plus how many runs in a
// row published nothing — the operational signal that re-wrangling is
// keeping up with (or outpacing) archive change.
type DeltaStats struct {
	Added            int  `json:"added"`
	Changed          int  `json:"changed"`
	Removed          int  `json:"removed"`
	Unchanged        int  `json:"unchanged"`
	Published        int  `json:"published"`
	Retracted        int  `json:"retracted"`
	FullReprocess    bool `json:"fullReprocess,omitempty"`
	GenerationStable bool `json:"generationStable"`
	// NoopRuns counts consecutive completed runs with an empty publish
	// delta (reset by any run that changed the catalog).
	NoopRuns int `json:"noopRuns"`
}

// RewrangleStats is the scheduler's row in the /stats response.
type RewrangleStats struct {
	Runs         int        `json:"runs"`
	Failures     int        `json:"failures"`
	Running      bool       `json:"running"`
	LastError    string     `json:"lastError,omitempty"`
	LastMs       float64    `json:"lastMs,omitempty"`
	LastFinished string     `json:"lastFinished,omitempty"`
	IntervalSec  float64    `json:"intervalSec,omitempty"`
	LastDelta    DeltaStats `json:"lastDelta"`
	// Compactions counts journal-into-checkpoint folds this scheduler
	// triggered (durable systems only); LastCompactError is the most
	// recent compactor failure, cleared by a clean pass.
	Compactions      int    `json:"compactions,omitempty"`
	LastCompactError string `json:"lastCompactError,omitempty"`
}

func newRewrangler(sys *metamess.System, interval time.Duration, logger *slog.Logger) *rewrangler {
	return &rewrangler{
		sys:      sys,
		interval: interval,
		logger:   logger,
		kick:     make(chan struct{}, 1), // a kick before start() is kept
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// start launches the scheduler goroutine. With no interval the loop
// only serves kicks.
func (r *rewrangler) start() { go r.loop() }

func (r *rewrangler) loop() {
	defer close(r.done)
	var tick <-chan time.Time
	if r.interval > 0 {
		t := time.NewTicker(r.interval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-r.stop:
			return
		case <-tick:
		case <-r.kick:
		}
		r.run()
	}
}

// Kick schedules an immediate re-wrangle (the SIGHUP path); a kick is
// dropped when one is already pending.
func (r *rewrangler) Kick() {
	select {
	case r.kick <- struct{}{}:
	default:
	}
}

// stopAndWait shuts the loop down, waiting for an in-progress run.
func (r *rewrangler) stopAndWait() {
	close(r.stop)
	<-r.done
}

func (r *rewrangler) run() {
	r.mu.Lock()
	r.running = true
	r.mu.Unlock()
	// Every background run is traced: the write path is seconds-scale
	// and runs at most once per interval, so span overhead is noise, and
	// /debug/wrangletrace always has the latest run's stage breakdown.
	tr := obs.NewTrace()
	root := tr.Start(-1, "wrangle-run")
	start := time.Now()
	rep, err := r.sys.WrangleWithTrace(tr, root)
	d := time.Since(start)

	r.mu.Lock()
	r.running = false
	r.runs++
	r.lastDuration = d
	r.lastFinished = time.Now()
	if err != nil {
		r.failures++
		r.lastErr = err.Error()
	} else {
		r.lastErr = ""
		r.lastDelta = rep.Delta
		if rep.Delta.GenerationStable {
			r.noopRuns++
		} else {
			r.noopRuns = 0
		}
	}
	r.mu.Unlock()

	if err != nil {
		r.logger.Error("rewrangle failed", "after", d, "err", err)
	} else {
		r.logger.Info("rewrangle",
			"datasets", rep.Datasets,
			"coverage", rep.CoverageAfter,
			"generation", r.sys.SnapshotGeneration(),
			"added", rep.Delta.Added,
			"changed", rep.Delta.Changed,
			"removed", rep.Delta.Removed,
			"published", rep.Delta.Published,
			"duration", d)
	}

	// The background compactor rides the rewrangle loop: after every run
	// (including failed ones — a failed journal append degrades the
	// store, and compaction is what repairs it) fold the journal into a
	// fresh checkpoint if it has outgrown the configured ratio. Searches
	// read the immutable snapshot throughout; publishes are serialized
	// with this loop anyway.
	cid := tr.Start(root, "compact")
	compacted, cerr := r.sys.CompactIfNeeded()
	tr.End(cid)
	tr.End(root)
	tree := tr.Tree()
	obs.ReleaseTrace(tr)
	r.mu.Lock()
	r.lastTrace = tree
	if cerr != nil {
		r.compactErr = cerr.Error()
	} else {
		r.compactErr = ""
		if compacted {
			r.compactions++
		}
	}
	r.mu.Unlock()
	if cerr != nil {
		r.logger.Error("compact failed", "err", cerr)
	} else if compacted {
		if ds, ok := r.sys.Durability(); ok {
			r.logger.Info("compact: journal folded into checkpoint",
				"generation", ds.Generation,
				"checkpointBytes", ds.CheckpointBytes,
				"ms", ds.LastCompactMs)
		}
	}
}

// trace returns the last completed run's span tree (nil before the
// first background run).
func (r *rewrangler) trace() *obs.SpanTree {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastTrace
}

func (r *rewrangler) stats() RewrangleStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := RewrangleStats{
		Runs:      r.runs,
		Failures:  r.failures,
		Running:   r.running,
		LastError: r.lastErr,
		LastDelta: DeltaStats{
			Added:            r.lastDelta.Added,
			Changed:          r.lastDelta.Changed,
			Removed:          r.lastDelta.Removed,
			Unchanged:        r.lastDelta.Unchanged,
			Published:        r.lastDelta.Published,
			Retracted:        r.lastDelta.Retracted,
			FullReprocess:    r.lastDelta.FullReprocess,
			GenerationStable: r.lastDelta.GenerationStable,
			NoopRuns:         r.noopRuns,
		},
		Compactions:      r.compactions,
		LastCompactError: r.compactErr,
	}
	if r.lastDuration > 0 {
		s.LastMs = float64(r.lastDuration) / float64(time.Millisecond)
	}
	if !r.lastFinished.IsZero() {
		s.LastFinished = r.lastFinished.UTC().Format(time.RFC3339)
	}
	if r.interval > 0 {
		s.IntervalSec = r.interval.Seconds()
	}
	return s
}
