package server

import "sync"

// flightKey identifies a collapsible search: the normalized query bytes
// under one snapshot generation. Publishes bump the generation, so a
// flight can never leak a previous snapshot's bytes into the next one's
// key space — the same invariant the query cache rests on.
type flightKey struct {
	generation uint64
	query      string
}

// searchOutcome is one executed search rendered to the wire: what the
// leader writes is exactly what followers and the cache get.
type searchOutcome struct {
	status int
	body   []byte
	// cacheState is the X-Dnhd-Cache header the leader serves with
	// ("miss" or "bypass"); followers serve "collapsed" instead.
	cacheState string
	partial    bool
	generation uint64
}

// flight is one in-progress search execution shared by all concurrent
// requests for the same flightKey. done is closed exactly once, after
// out is set; followers read out only after done, so no lock is needed
// on the result itself.
type flight struct {
	done chan struct{}
	out  searchOutcome
}

// flightGroup collapses concurrent identical cold queries: the first
// request for a key becomes the leader and runs the executor once;
// every request that joins before the leader finishes waits on the
// flight and is served the leader's bytes verbatim. A hand-rolled
// singleflight — the module has no dependencies to lean on.
type flightGroup struct {
	mu sync.Mutex
	m  map[flightKey]*flight
}

// join returns the in-progress flight for key, creating one (and
// electing the caller leader) if none exists.
func (g *flightGroup) join(key flightKey) (f *flight, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f := g.m[key]; f != nil {
		return f, false
	}
	if g.m == nil {
		g.m = make(map[flightKey]*flight)
	}
	f = &flight{done: make(chan struct{})}
	g.m[key] = f
	return f, true
}

// finish publishes the leader's outcome and releases the followers.
// The key is deleted first, so requests arriving after finish start a
// fresh flight instead of reading a completed one (the cache, not the
// flight map, is the steady-state fast path).
func (g *flightGroup) finish(key flightKey, f *flight, out searchOutcome) {
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	f.out = out
	close(f.done)
}
