package server

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"metamess"
)

// Replicator is dnhd's follower engine: it tails a leader's journal
// over HTTP (`GET /journal/tail?from=<gen>`, long-polled), applies each
// checksummed frame through the catalog's replication path, and
// bootstraps from the leader's checkpoint whenever the tail answers
// with a resync signal (the follower fell behind the journals' reach —
// typically across a compaction while the follower was down). A durable
// follower journals everything it applies, so a restart resumes from
// its own recovered generation instead of re-downloading the world.

// DefaultReplicaPollWait is the long-poll wait the follower asks the
// leader to hold an empty tail for.
const DefaultReplicaPollWait = 10 * time.Second

// DefaultReplicaBackoff is the retry delay after a tail or apply error.
const DefaultReplicaBackoff = 500 * time.Millisecond

// DefaultMaxLag is the /readyz lag threshold (generations behind the
// leader) when the config leaves it 0.
const DefaultMaxLag = 16

// ReplicaConfig configures a Replicator.
type ReplicaConfig struct {
	// Leader is the leader's base URL (e.g. http://leader:8080).
	// Required.
	Leader string
	// Sys is the follower's system — the catalog the tailed records are
	// applied to (and, when durable, the store that mirrors them).
	// Required.
	Sys *metamess.System
	// MaxLag is how many generations behind the leader /readyz tolerates
	// before reporting not-ready (0 = DefaultMaxLag).
	MaxLag uint64
	// PollWait is the long-poll hold per tail request
	// (0 = DefaultReplicaPollWait).
	PollWait time.Duration
	// Backoff is the retry delay after an error
	// (0 = DefaultReplicaBackoff).
	Backoff time.Duration
	// Client overrides the HTTP client (nil = one with a timeout sized
	// to PollWait).
	Client *http.Client
	// Logger receives replication logs; nil discards them.
	Logger *slog.Logger
}

// Replicator tails one leader. Start launches the loop; Stop halts it.
type Replicator struct {
	cfg    ReplicaConfig
	client *http.Client
	logger *slog.Logger

	kick   chan struct{}
	cancel context.CancelFunc
	done   chan struct{}

	leaderGen atomic.Uint64
	applied   atomic.Uint64 // records applied
	batches   atomic.Uint64 // non-empty tail responses
	resyncs   atomic.Uint64 // checkpoint bootstraps
	errCount  atomic.Uint64
	connected atomic.Bool
	caughtUp  atomic.Bool // reached the leader's generation at least once

	mu           sync.Mutex
	lastErr      string
	lastCaughtUp time.Time
	started      time.Time
}

// NewReplicator wires a follower loop; call Start to begin tailing.
func NewReplicator(cfg ReplicaConfig) (*Replicator, error) {
	if cfg.Leader == "" {
		return nil, fmt.Errorf("server: ReplicaConfig.Leader is required")
	}
	if cfg.Sys == nil {
		return nil, fmt.Errorf("server: ReplicaConfig.Sys is required")
	}
	if cfg.MaxLag == 0 {
		cfg.MaxLag = DefaultMaxLag
	}
	if cfg.PollWait <= 0 {
		cfg.PollWait = DefaultReplicaPollWait
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = DefaultReplicaBackoff
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	client := cfg.Client
	if client == nil {
		// The long poll holds the request open for PollWait; the timeout
		// must comfortably outlast it plus a large frame transfer.
		client = &http.Client{Timeout: cfg.PollWait + 30*time.Second}
	}
	return &Replicator{
		cfg:    cfg,
		client: client,
		logger: logger,
		kick:   make(chan struct{}, 1),
	}, nil
}

// Start launches the tail loop in the background.
func (r *Replicator) Start() {
	ctx, cancel := context.WithCancel(context.Background())
	r.cancel = cancel
	r.done = make(chan struct{})
	r.mu.Lock()
	r.started = time.Now()
	r.mu.Unlock()
	go r.run(ctx)
}

// Stop halts the loop and waits for it to exit. Safe only after Start.
func (r *Replicator) Stop() {
	r.cancel()
	<-r.done
}

// Kick asks the loop to retry immediately (the follower SIGHUP path) —
// it cuts an error backoff short; a healthy loop is always tailing.
func (r *Replicator) Kick() {
	select {
	case r.kick <- struct{}{}:
	default:
	}
}

func (r *Replicator) run(ctx context.Context) {
	defer close(r.done)
	for ctx.Err() == nil {
		n, err := r.iterate(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			r.errCount.Add(1)
			r.connected.Store(false)
			r.mu.Lock()
			r.lastErr = err.Error()
			r.mu.Unlock()
			r.logger.Warn("replica: tail failed", "leader", r.cfg.Leader, "err", err)
			// A failed apply can leave a durable follower degraded (catalog
			// ahead of its journal); compaction is the designed repair.
			if _, cerr := r.cfg.Sys.CompactIfNeeded(); cerr != nil {
				r.logger.Warn("replica: compact after error", "err", cerr)
			}
			select {
			case <-ctx.Done():
			case <-r.kick:
			case <-time.After(r.cfg.Backoff):
			}
			continue
		}
		if n == 0 {
			// An empty, non-blocking answer (leader restarted mid-poll,
			// zero PollWait in tests): yield briefly so a confused leader
			// cannot drive a hot loop.
			select {
			case <-ctx.Done():
			case <-r.kick:
			case <-time.After(10 * time.Millisecond):
			}
		}
	}
}

// iterate performs one tail round-trip: poll, then apply or resync.
// It returns how many records were applied.
func (r *Replicator) iterate(ctx context.Context) (int, error) {
	from := r.cfg.Sys.SnapshotGeneration()
	waitMs := r.cfg.PollWait.Milliseconds()
	url := fmt.Sprintf("%s/journal/tail?from=%d&wait_ms=%d", r.cfg.Leader, from, waitMs)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return 0, fmt.Errorf("leader tail: %s: %s", resp.Status, body)
	}
	if lg, err := strconv.ParseUint(resp.Header.Get("X-Dnhd-Generation"), 10, 64); err == nil {
		r.leaderGen.Store(lg)
	}
	if resp.Header.Get("X-Dnhd-Resync") == "1" {
		io.Copy(io.Discard, resp.Body)
		n, err := r.resync(ctx)
		if err != nil {
			return 0, err
		}
		return n, nil
	}
	frames, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, err
	}
	applied, err := r.cfg.Sys.ApplyReplicatedFrames(frames)
	r.applied.Add(uint64(applied))
	if err != nil {
		return applied, err
	}
	if applied > 0 {
		r.batches.Add(1)
		// Fold the follower's own journal into a checkpoint when it has
		// grown — followers compact on the same policy leaders do.
		if _, err := r.cfg.Sys.CompactIfNeeded(); err != nil {
			r.logger.Warn("replica: compact", "err", err)
		}
	}
	r.connected.Store(true)
	r.noteProgress()
	return applied, nil
}

// resync downloads the leader's checkpoint and applies it as one pinned
// delta — the recovery path for a follower that fell behind the
// journals' reach.
func (r *Replicator) resync(ctx context.Context) (int, error) {
	r.logger.Info("replica: resyncing from checkpoint", "leader", r.cfg.Leader,
		"generation", r.cfg.Sys.SnapshotGeneration())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.cfg.Leader+"/journal/checkpoint", nil)
	if err != nil {
		return 0, err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return 0, fmt.Errorf("leader checkpoint: %s: %s", resp.Status, body)
	}
	gen, err := r.cfg.Sys.BootstrapFromCheckpoint(resp.Body)
	if err != nil {
		return 0, err
	}
	r.resyncs.Add(1)
	r.connected.Store(true)
	r.noteProgress()
	// The bootstrap landed as one large journal record on a durable
	// follower; fold it into a local checkpoint promptly.
	if _, err := r.cfg.Sys.CompactIfNeeded(); err != nil {
		r.logger.Warn("replica: compact after resync", "err", err)
	}
	r.logger.Info("replica: resync complete", "generation", gen)
	return 1, nil
}

// noteProgress records catch-up: whenever the follower reaches the last
// known leader generation, the lag clock resets.
func (r *Replicator) noteProgress() {
	if r.cfg.Sys.SnapshotGeneration() >= r.leaderGen.Load() {
		r.caughtUp.Store(true)
		r.mu.Lock()
		r.lastCaughtUp = time.Now()
		r.mu.Unlock()
	}
}

// Lag returns how far behind the leader this follower is: generations
// (last known leader generation minus the follower's), and seconds
// since the follower was last caught up (0 while caught up).
func (r *Replicator) Lag() (gens uint64, seconds float64) {
	follower := r.cfg.Sys.SnapshotGeneration()
	leader := r.leaderGen.Load()
	if leader > follower {
		gens = leader - follower
	}
	if gens == 0 && r.caughtUp.Load() {
		return 0, 0
	}
	r.mu.Lock()
	since := r.lastCaughtUp
	if since.IsZero() {
		since = r.started
	}
	r.mu.Unlock()
	if since.IsZero() {
		return gens, 0
	}
	return gens, time.Since(since).Seconds()
}

// Ready reports whether this follower should take traffic: it has been
// caught up with the leader at least once and is currently within
// MaxLag generations. A follower that synced and then lost its leader
// stays ready — it serves a consistent (if aging) generation, which
// beats serving nothing.
func (r *Replicator) Ready() bool {
	if !r.caughtUp.Load() {
		return false
	}
	gens, _ := r.Lag()
	return gens <= r.cfg.MaxLag
}

// ReplicaStats is the replication section of /stats and /readyz.
type ReplicaStats struct {
	Leader           string  `json:"leader"`
	Connected        bool    `json:"connected"`
	Ready            bool    `json:"ready"`
	LeaderGeneration uint64  `json:"leaderGeneration"`
	Generation       uint64  `json:"generation"`
	LagGenerations   uint64  `json:"lagGenerations"`
	LagSeconds       float64 `json:"lagSeconds"`
	MaxLag           uint64  `json:"maxLag"`
	AppliedRecords   uint64  `json:"appliedRecords"`
	Batches          uint64  `json:"batches"`
	Resyncs          uint64  `json:"resyncs"`
	Errors           uint64  `json:"errors"`
	LastError        string  `json:"lastError,omitempty"`
}

// Stats returns a point-in-time replication view.
func (r *Replicator) Stats() ReplicaStats {
	gens, secs := r.Lag()
	r.mu.Lock()
	lastErr := r.lastErr
	r.mu.Unlock()
	return ReplicaStats{
		Leader:           r.cfg.Leader,
		Connected:        r.connected.Load(),
		Ready:            r.Ready(),
		LeaderGeneration: r.leaderGen.Load(),
		Generation:       r.cfg.Sys.SnapshotGeneration(),
		LagGenerations:   gens,
		LagSeconds:       secs,
		MaxLag:           r.cfg.MaxLag,
		AppliedRecords:   r.applied.Load(),
		Batches:          r.batches.Load(),
		Resyncs:          r.resyncs.Load(),
		Errors:           r.errCount.Load(),
		LastError:        lastErr,
	}
}
