package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"
)

// metricLine matches one Prometheus text-format sample:
// name{labels} value — labels optional, value a Go float.
var metricLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? ` +
		`(-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?|\+Inf|-Inf|NaN)$`)

func TestMetricsExposition(t *testing.T) {
	sys, _, _ := newTestSystem(t, 24, 11)
	_, ts := newTestServer(t, sys, 8)

	// Exercise the read path so the stage histograms have observations.
	q := "near+46.2,-123.8+in+mid-2010+with+temperature"
	for i := 0; i < 3; i++ {
		status, _, body := get(t, ts.URL+"/search/text?q="+q)
		if status != http.StatusOK {
			t.Fatalf("search/text: %d %s", status, body)
		}
	}

	status, hdr, body := get(t, ts.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics: %d", status)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type %q", ct)
	}

	text := string(body)
	// Families the acceptance gate cares about: search stages, journal,
	// cache, pool, snapshot, slowlog. The journal/wrangle families are
	// package-registered so they exist at zero even on a non-durable
	// system.
	for _, want := range []string{
		`dnh_search_stage_duration_seconds_bucket{stage="parse",le="`,
		`dnh_search_stage_duration_seconds_bucket{stage="scatter",le="`,
		`dnh_search_stage_duration_seconds_bucket{stage="merge",le="`,
		"dnh_search_stage_duration_seconds_count",
		"dnh_journal_appends_total",
		"dnh_journal_fsyncs_total",
		"dnh_wrangle_runs_total",
		"dnh_cache_hits_total",
		"dnh_cache_misses_total",
		"dnh_search_pool_hits_total",
		"dnh_searches_total",
		"dnh_snapshot_generation",
		"dnh_http_requests_total",
		"dnh_http_request_duration_seconds_bucket",
		"dnh_slowlog_entries",
		"dnh_slow_queries_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Every non-comment line must be a well-formed sample.
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !metricLine.MatchString(line) {
			t.Errorf("malformed sample line: %q", line)
		}
	}

	// The repeated query parses every time (parse happens before the
	// cache lookup), so the parse histogram must have observations.
	if !regexp.MustCompile(`dnh_search_stage_duration_seconds_count\{stage="parse"\} [1-9]`).MatchString(text) {
		t.Errorf("parse stage histogram has no observations:\n%s", text)
	}
}

// collectStages sums the direct children's durations and returns the
// set of names seen.
func collectStages(tree *spanTreeJSON) (sum int64, names map[string]bool) {
	names = make(map[string]bool)
	for _, c := range tree.Children {
		sum += c.DurUs
		names[c.Name] = true
	}
	return sum, names
}

// spanTreeJSON mirrors obs.SpanTree for decoding responses.
type spanTreeJSON struct {
	Name     string           `json:"name"`
	StartUs  int64            `json:"startUs"`
	DurUs    int64            `json:"durUs"`
	Attrs    map[string]int64 `json:"attrs"`
	Children []*spanTreeJSON  `json:"children"`
}

func TestForcedTraceResponse(t *testing.T) {
	sys, _, _ := newTestSystem(t, 24, 13)
	_, ts := newTestServer(t, sys, 8)

	q := "near+46.2,-123.8+in+mid-2010+with+temperature"
	// Prime the cache so the traced request would hit it if it didn't
	// bypass.
	status, _, plain := get(t, ts.URL+"/search/text?q="+q)
	if status != http.StatusOK {
		t.Fatalf("untraced: %d", status)
	}

	status, hdr, body := get(t, ts.URL+"/search/text?q="+q+"&debug=trace")
	if status != http.StatusOK {
		t.Fatalf("traced: %d %s", status, body)
	}
	if c := hdr.Get("X-Dnhd-Cache"); c != "bypass" {
		t.Errorf("X-Dnhd-Cache = %q, want bypass (forced traces must not serve from cache)", c)
	}
	var resp struct {
		Generation uint64          `json:"generation"`
		Hits       json.RawMessage `json:"hits"`
		Trace      *spanTreeJSON   `json:"trace"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Trace == nil {
		t.Fatal("no trace in forced-trace response")
	}
	if resp.Trace.Name != "search" {
		t.Errorf("root span %q, want search", resp.Trace.Name)
	}
	if g, ok := resp.Trace.Attrs["generation"]; !ok || uint64(g) != resp.Generation {
		t.Errorf("root generation attr %d (present %v), response generation %d", g, ok, resp.Generation)
	}
	// Stage durations nest inside the request: the direct children are
	// sequential, so their sum can't exceed the root's duration (1µs
	// slack for rounding — each span truncates to whole microseconds).
	sum, names := collectStages(resp.Trace)
	if sum > resp.Trace.DurUs+int64(len(resp.Trace.Children)) {
		t.Errorf("child durations sum %dus > root %dus", sum, resp.Trace.DurUs)
	}
	for _, want := range []string{"parse", "scatter", "merge"} {
		if !names[want] {
			t.Errorf("trace missing %q stage (got %v)", want, names)
		}
	}

	// Tracing must not change what the client gets: same generation,
	// same hits as the untraced (cached) response.
	var plainResp struct {
		Generation uint64          `json:"generation"`
		Hits       json.RawMessage `json:"hits"`
	}
	if err := json.Unmarshal(plain, &plainResp); err != nil {
		t.Fatal(err)
	}
	if plainResp.Generation == resp.Generation && !bytes.Equal(plainResp.Hits, resp.Hits) {
		t.Errorf("traced hits differ from untraced at the same generation:\n%s\nvs\n%s", resp.Hits, plainResp.Hits)
	}

	// X-Trace: 1 is the header spelling of the same switch.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/search/text?q="+q, nil)
	req.Header.Set("X-Trace", "1")
	hresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var hbody struct {
		Trace *spanTreeJSON `json:"trace"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&hbody); err != nil {
		t.Fatal(err)
	}
	if hbody.Trace == nil {
		t.Error("X-Trace: 1 request returned no trace")
	}
}

func TestSlowlogEndpoint(t *testing.T) {
	sys, _, _ := newTestSystem(t, 24, 17)
	srv, err := New(Config{Sys: sys, CacheSize: 8, SlowThreshold: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	q := "near+46.2,-123.8+in+mid-2010+with+temperature"
	for i := 0; i < 3; i++ {
		if status, _, _ := get(t, ts.URL+"/search/text?q="+q); status != http.StatusOK {
			t.Fatalf("search: %d", status)
		}
	}

	status, _, body := get(t, ts.URL+"/debug/slowlog")
	if status != http.StatusOK {
		t.Fatalf("/debug/slowlog: %d", status)
	}
	var slow SlowlogResponse
	if err := json.Unmarshal(body, &slow); err != nil {
		t.Fatal(err)
	}
	// Every request beat a 1ns threshold.
	if slow.Count < 1 || slow.Total < 3 {
		t.Fatalf("slowlog count %d total %d, want every search logged: %s", slow.Count, slow.Total, body)
	}
	if slow.ThresholdMs <= 0 {
		t.Errorf("thresholdMs = %v, want > 0", slow.ThresholdMs)
	}
	for _, e := range slow.Slowest {
		if e.Query == "" {
			t.Errorf("slowlog entry with empty query: %+v", e)
		}
		if e.WallMs < 0 {
			t.Errorf("negative wallMs: %+v", e)
		}
	}
	// Slowest-first ordering.
	for i := 1; i < len(slow.Slowest); i++ {
		if slow.Slowest[i].WallMs > slow.Slowest[i-1].WallMs {
			t.Errorf("slowlog not sorted slowest-first at %d", i)
		}
	}

	// Disabled by negative threshold: endpoint still answers, zero
	// threshold reported.
	srv2, err := New(Config{Sys: sys, CacheSize: 8, SlowThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	t.Cleanup(ts2.Close)
	if status, _, _ := get(t, ts2.URL+"/search/text?q="+q); status != http.StatusOK {
		t.Fatalf("search: %d", status)
	}
	status, _, body = get(t, ts2.URL+"/debug/slowlog")
	if status != http.StatusOK {
		t.Fatalf("/debug/slowlog: %d", status)
	}
	if err := json.Unmarshal(body, &slow); err != nil {
		t.Fatal(err)
	}
	if slow.Count != 0 || slow.Total != 0 {
		t.Errorf("disabled slowlog recorded entries: %s", body)
	}
}
