package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"

	"metamess"
	"metamess/internal/catalog"
	"metamess/internal/geo"
)

// pushFeature builds the complete, valid catalog feature a push
// producer would send: canonical variable name, plausible range,
// content hash, and an ID derived from the path.
func pushFeature(path string, lat float64) *catalog.Feature {
	return &catalog.Feature{
		ID:     catalog.IDForPath(path),
		Path:   path,
		Source: "push",
		Format: "csv",
		BBox:   geo.BBox{MinLat: lat, MinLon: -124.4, MaxLat: lat + 0.1, MaxLon: -124.3},
		Time: geo.NewTimeRange(
			time.Date(2010, 6, 1, 0, 0, 0, 0, time.UTC),
			time.Date(2010, 6, 2, 0, 0, 0, 0, time.UTC)),
		Variables: []catalog.VarFeature{{
			RawName: "temp [C]",
			Name:    "temperature",
			Unit:    "C",
			Range:   geo.NewValueRange(5, 10),
			Count:   24,
		}},
		RowCount:    24,
		Bytes:       512,
		ScannedAt:   time.Date(2010, 6, 2, 0, 0, 0, 0, time.UTC),
		ModTime:     time.Date(2010, 6, 2, 0, 0, 0, 0, time.UTC),
		ContentHash: "deadbeef00000000",
	}
}

func publishBody(t testing.TB, features []*catalog.Feature, remove []string) []byte {
	t.Helper()
	b, err := json.Marshal(metamess.PublishRequest{Features: features, Remove: remove})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// searchNearPush runs a search scoped to the pushed features' extent
// and returns status, generation header, and the hit paths.
func searchNearPush(t testing.TB, baseURL string) (int, string, []string) {
	t.Helper()
	q, err := json.Marshal(SearchRequest{
		Near:      &LatLon{Lat: 45.55, Lon: -124.35},
		Variables: []Variable{{Name: "temperature"}},
		K:         50,
	})
	if err != nil {
		t.Fatal(err)
	}
	status, h, body := postJSON(t, baseURL+"/search", q)
	if status != http.StatusOK {
		return status, h.Get("X-Dnhd-Generation"), nil
	}
	var resp SearchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("search body: %v", err)
	}
	paths := make([]string, 0, len(resp.Hits))
	for _, hit := range resp.Hits {
		paths = append(paths, hit.Path)
	}
	return status, h.Get("X-Dnhd-Generation"), paths
}

func hasPath(paths []string, want string) bool {
	for _, p := range paths {
		if p == want {
			return true
		}
	}
	return false
}

// TestPublishEndpoint walks the push-ingest happy path end to end:
// publish advances the generation, the pushed datasets become
// searchable immediately (the generation-keyed cache cannot serve the
// stale ranking), a replay is a stable no-op, retraction works, and
// /stats + /metrics account for all of it.
func TestPublishEndpoint(t *testing.T) {
	sys, _, _ := newTestSystem(t, 16, 13)
	_, ts := newTestServer(t, sys, 16)
	gen0 := sys.SnapshotGeneration()

	// Warm the cache at the pre-publish generation.
	if status, _, _ := searchNearPush(t, ts.URL); status != http.StatusOK {
		t.Fatalf("pre-publish search: %d", status)
	}
	if status, _, paths := searchNearPush(t, ts.URL); status != http.StatusOK || hasPath(paths, "push/a.csv") {
		t.Fatalf("pre-publish search (cached): %d, paths %v", status, paths)
	}

	batch := []*catalog.Feature{pushFeature("push/a.csv", 45.5), pushFeature("push/b.csv", 45.6)}
	status, h, body := postJSON(t, ts.URL+"/publish", publishBody(t, batch, nil))
	if status != http.StatusOK {
		t.Fatalf("publish: %d %s", status, body)
	}
	var rec metamess.PublishReceipt
	if err := json.Unmarshal(body, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Published != 2 || rec.Retracted != 0 || rec.Stable {
		t.Errorf("receipt %+v, want 2 published, unstable", rec)
	}
	if rec.Generation <= gen0 {
		t.Errorf("publish did not advance the generation: %d -> %d", gen0, rec.Generation)
	}
	if h.Get("X-Dnhd-Generation") != fmt.Sprint(rec.Generation) {
		t.Errorf("generation header %q, receipt %d", h.Get("X-Dnhd-Generation"), rec.Generation)
	}

	// The same query now serves the new generation with the pushed
	// dataset ranked — the cached pre-publish ranking is unreachable.
	status, gen, paths := searchNearPush(t, ts.URL)
	if status != http.StatusOK || gen != fmt.Sprint(rec.Generation) {
		t.Fatalf("post-publish search: %d at generation %s, want %d", status, gen, rec.Generation)
	}
	if !hasPath(paths, "push/a.csv") || !hasPath(paths, "push/b.csv") {
		t.Errorf("pushed datasets not ranked: %v", paths)
	}

	// Replaying the batch is a generation-stable no-op.
	status, _, body = postJSON(t, ts.URL+"/publish", publishBody(t, batch, nil))
	if status != http.StatusOK {
		t.Fatalf("replay: %d %s", status, body)
	}
	var replay metamess.PublishReceipt
	if err := json.Unmarshal(body, &replay); err != nil {
		t.Fatal(err)
	}
	if !replay.Stable || replay.Generation != rec.Generation || replay.Published != 0 {
		t.Errorf("replay receipt %+v, want stable at generation %d", replay, rec.Generation)
	}

	// Retraction: remove one pushed dataset by path.
	status, _, body = postJSON(t, ts.URL+"/publish", publishBody(t, nil, []string{"push/b.csv"}))
	if status != http.StatusOK {
		t.Fatalf("retract: %d %s", status, body)
	}
	var retract metamess.PublishReceipt
	if err := json.Unmarshal(body, &retract); err != nil {
		t.Fatal(err)
	}
	if retract.Retracted != 1 || retract.Generation <= rec.Generation {
		t.Errorf("retract receipt %+v", retract)
	}
	if _, _, paths := searchNearPush(t, ts.URL); hasPath(paths, "push/b.csv") || !hasPath(paths, "push/a.csv") {
		t.Errorf("retraction not visible: %v", paths)
	}

	// /stats accounts for every batch; /metrics exports the families.
	status, _, body = get(t, ts.URL+"/stats")
	if status != http.StatusOK {
		t.Fatalf("stats: %d", status)
	}
	var stats StatsResponse
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Ingest.Publishes != 3 || stats.Ingest.Stable != 1 || stats.Ingest.Features != 2 || stats.Ingest.Rejected != 0 {
		t.Errorf("ingest stats %+v, want 3 publishes / 1 stable / 2 features / 0 rejected", stats.Ingest)
	}
	status, _, body = get(t, ts.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("metrics: %d", status)
	}
	for _, family := range []string{
		"dnh_publishes_total", "dnh_publishes_stable_total",
		"dnh_publish_rejected_total", "dnh_publish_features_total",
	} {
		if !bytes.Contains(body, []byte(family)) {
			t.Errorf("/metrics missing %s", family)
		}
	}

	// Method discipline: GET on the publish route is not a publish.
	if status, _, _ := get(t, ts.URL+"/publish"); status != http.StatusMethodNotAllowed {
		t.Errorf("GET /publish: %d, want 405", status)
	}
}

// TestPublishReplicatesToFollower is the push-era extension of the
// leader/follower battery: a POST /publish on the leader must arrive on
// a tailing follower byte-identically at the same generation, through
// exactly the journal-tail machinery a wrangle uses. Followers
// themselves never mount the endpoint.
func TestPublishReplicatesToFollower(t *testing.T) {
	lsys, lts, _ := newDurableLeader(t, 16, 19)
	fsys, rep := newFollower(t, lts.URL, t.TempDir())
	fsrv, err := New(Config{Sys: fsys, Replica: rep})
	if err != nil {
		t.Fatal(err)
	}
	fts := serve(t, fsrv)
	waitForGeneration(t, fsys, lsys.SnapshotGeneration())

	batch := []*catalog.Feature{pushFeature("push/a.csv", 45.5), pushFeature("push/b.csv", 45.6)}
	status, _, body := postJSON(t, lts.URL+"/publish", publishBody(t, batch, nil))
	if status != http.StatusOK {
		t.Fatalf("leader publish: %d %s", status, body)
	}
	var rec metamess.PublishReceipt
	if err := json.Unmarshal(body, &rec); err != nil {
		t.Fatal(err)
	}

	waitForGeneration(t, fsys, rec.Generation)
	assertByteIdentical(t, lts.URL, fts.URL)

	// The pushed datasets rank identically on both nodes.
	ls, lg, lp := searchNearPush(t, lts.URL)
	fs, fg, fp := searchNearPush(t, fts.URL)
	if ls != http.StatusOK || fs != http.StatusOK || lg != fg {
		t.Fatalf("push probe: leader %d@%s, follower %d@%s", ls, lg, fs, fg)
	}
	if !hasPath(fp, "push/a.csv") || !hasPath(fp, "push/b.csv") {
		t.Errorf("pushed datasets missing on the follower: %v", fp)
	}
	if fmt.Sprint(lp) != fmt.Sprint(fp) {
		t.Errorf("push probe rankings differ:\nleader:   %v\nfollower: %v", lp, fp)
	}
	if got := rep.Stats().Resyncs; got != 0 {
		t.Errorf("publish replication resynced %d times; the tail should have covered it", got)
	}

	// A follower never accepts a direct publish — it would fork the
	// replica — regardless of configuration.
	status, _, _ = postJSON(t, fts.URL+"/publish", publishBody(t, batch, nil))
	if status != http.StatusNotFound {
		t.Errorf("follower publish: %d, want 404 (route not mounted)", status)
	}
}

// TestPublishRejectionLeavesStoreUntouched pins the failure-mode
// invariant: a rejected publish — invalid feature, semantic validation
// error, malformed body, oversize body, or a mid-stream client
// disconnect — must leave the generation, the journal, and the served
// rankings exactly as they were. No refused appends, no degradation.
func TestPublishRejectionLeavesStoreUntouched(t *testing.T) {
	lsys, lts, _ := newDurableLeader(t, 16, 23)
	gen0 := lsys.SnapshotGeneration()
	d0, ok := lsys.Durability()
	if !ok {
		t.Fatal("durable system reports no durability stats")
	}
	_, _, want := searchNearPush(t, lts.URL)

	post := func(body []byte) int {
		status, _, _ := postJSON(t, lts.URL+"/publish", body)
		return status
	}

	// Invalid feature: ID does not match the path.
	bad := pushFeature("push/a.csv", 45.5)
	bad.ID = "0000000000000000"
	if got := post(publishBody(t, []*catalog.Feature{bad}, nil)); got != http.StatusUnprocessableEntity {
		t.Errorf("invalid feature: %d, want 422", got)
	}

	// Semantic validation error: a physically implausible range for a
	// known variable (caught by the wrangle-grade validation checks).
	implausible := pushFeature("push/a.csv", 45.5)
	implausible.Variables[0].Name = "water_temperature" // canonical: the check knows its typical range
	implausible.Variables[0].Range = geo.NewValueRange(-500, 900)
	if got := post(publishBody(t, []*catalog.Feature{implausible}, nil)); got != http.StatusUnprocessableEntity {
		t.Errorf("implausible range: %d, want 422", got)
	}

	// Malformed body.
	if got := post([]byte("not json")); got != http.StatusUnprocessableEntity {
		t.Errorf("malformed body: %d, want 422", got)
	}

	// Empty batch.
	if got := post([]byte("{}")); got != http.StatusUnprocessableEntity {
		t.Errorf("empty batch: %d, want 422", got)
	}

	// Oversize body: a server capped at 64 bytes refuses before decoding.
	smallSrv, err := New(Config{Sys: lsys, MaxPublishBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	smallTS := serve(t, smallSrv)
	status, _, _ := postJSON(t, smallTS.URL+"/publish", publishBody(t, []*catalog.Feature{pushFeature("push/a.csv", 45.5)}, nil))
	if status != http.StatusRequestEntityTooLarge {
		t.Errorf("oversize body: %d, want 413", status)
	}

	// Mid-stream disconnect: promise 4096 bytes, send a fragment, hang
	// up. The handler's body read fails and nothing decodes.
	u, err := url.Parse(lts.URL)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", u.Host)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(conn, "POST /publish HTTP/1.1\r\nHost: %s\r\nContent-Type: application/json\r\nContent-Length: 4096\r\n\r\n", u.Host)
	fmt.Fprint(conn, `{"features":[`)
	conn.Close()

	// The disconnect is counted as a rejection once the handler notices;
	// poll /stats for all five rejections on the main server (the
	// oversize 413 landed on the small server's own counters).
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, _, body := get(t, lts.URL+"/stats")
		var stats StatsResponse
		if err := json.Unmarshal(body, &stats); err != nil {
			t.Fatal(err)
		}
		if stats.Ingest.Rejected >= 5 {
			if stats.Ingest.Publishes != 0 || stats.Ingest.Features != 0 {
				t.Errorf("rejections recorded accepted work: %+v", stats.Ingest)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("disconnect never counted as a rejection: %+v", stats.Ingest)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The store is untouched: same generation, no new appends, no
	// refusals, not degraded, identical rankings.
	if got := lsys.SnapshotGeneration(); got != gen0 {
		t.Errorf("rejections moved the generation: %d -> %d", gen0, got)
	}
	d1, _ := lsys.Durability()
	if d1.Appends != d0.Appends || d1.RefusedAppends != d0.RefusedAppends || d1.Degraded {
		t.Errorf("rejections touched the journal: before %+v, after %+v", d0, d1)
	}
	if _, _, got := searchNearPush(t, lts.URL); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("rankings drifted across rejections:\nbefore %v\nafter  %v", want, got)
	}
}

// serve starts an httptest server for srv with cleanup.
func serve(t testing.TB, srv *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}
