// Package server is the "Data Near Here" serving layer: a long-lived
// HTTP JSON API over a wrangled metamess.System, so the catalog is
// wrangled once and queried continuously instead of per-process.
//
// Endpoints:
//
//	POST /search          structured query (SearchRequest JSON body)
//	POST /publish         push-ingest a batch of feature deltas
//	GET  /search/text?q=  textual query ("near 45.5,-124.4 in mid-2010 ...")
//	GET  /dataset/{path}  rendered summary page for an archive path
//	GET  /curator/queue   names awaiting a curator decision
//	GET  /healthz         liveness + catalog size and generation
//	GET  /stats           serving metrics (counts, latency, cache, rewrangle)
//	GET  /metrics         Prometheus text exposition (internal/obs)
//	GET  /debug/slowlog   the N slowest recent queries past the threshold
//	GET  /debug/wrangletrace  the last wrangle run's span tree
//
// Search responses are cached in an LRU keyed by (normalized query,
// snapshot generation): a publish bumps the generation, so stale
// entries are invalidated by construction. A background rewrangler can
// re-run the pipeline on an interval or on demand (SIGHUP) while
// searches keep serving the previous snapshot.
//
// Every search carries an obs.QueryObs through its context: stage
// timings and per-shard candidate counts always feed the /metrics
// histograms and the slow-query log, and a span tree is attached when
// the request forces one (?debug=trace or X-Trace: 1 — returned inline
// in the response, bypassing the cache) or the configured sampler picks
// it.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"metamess"
	"metamess/internal/obs"
	"metamess/internal/search"
)

// Endpoint labels used by the metrics registry.
const (
	epSearch      = "/search"
	epSearchText  = "/search/text"
	epDataset     = "/dataset"
	epCurator     = "/curator/queue"
	epHealthz     = "/healthz"
	epReadyz      = "/readyz"
	epStats       = "/stats"
	epMetrics     = "/metrics"
	epDebug       = "/debug"
	epJournal     = "/journal"
	epPublish     = "/publish"
	endpointOther = "other"
)

var endpointNames = []string{epSearch, epSearchText, epDataset, epCurator, epHealthz, epReadyz, epStats, epMetrics, epDebug, epJournal, epPublish, endpointOther}

// DefaultCacheSize is the query-cache capacity when Config leaves it 0.
const DefaultCacheSize = 512

// DefaultSlowThreshold is the slow-query threshold when Config leaves
// it 0; negative disables the slow-query log.
const DefaultSlowThreshold = 250 * time.Millisecond

// DefaultSlowLogSize is the slow-query ring capacity when Config leaves
// it 0.
const DefaultSlowLogSize = 64

// Config configures a Server.
type Config struct {
	// Sys is the wrangled (or catalog-loaded) system to serve. Required.
	Sys *metamess.System
	// CacheSize caps the query-result cache entry count; 0 means
	// DefaultCacheSize, negative disables caching.
	CacheSize int
	// RewrangleEvery re-runs the wrangling pipeline on this interval;
	// 0 disables the timer (Rewrangle/SIGHUP kicks still work).
	RewrangleEvery time.Duration
	// TraceSample traces 1 in N searches into the aggregate trace
	// machinery (forced ?debug=trace requests are always traced);
	// 0 disables sampling.
	TraceSample int
	// SlowThreshold is the wall-time floor for the slow-query log; 0
	// means DefaultSlowThreshold, negative disables the log.
	SlowThreshold time.Duration
	// SlowLogSize caps the slow-query ring; 0 means DefaultSlowLogSize.
	SlowLogSize int
	// MaxInFlight caps concurrently executing search requests; past it
	// requests queue briefly (QueueDepth/QueueWait) and are then shed
	// with 429 + Retry-After. 0 disables admission control. Only the
	// search endpoints are gated — health, readiness, and metrics always
	// answer.
	MaxInFlight int
	// QueueDepth is how many over-limit searches may wait for a slot;
	// 0 means 2*MaxInFlight, negative disables the wait queue.
	QueueDepth int
	// QueueWait bounds how long a queued search waits before being shed;
	// 0 means DefaultQueueWait.
	QueueWait time.Duration
	// RequestTimeout is the per-search execution budget. A search that
	// exhausts it (or the client's X-Deadline-Ms, whichever is smaller)
	// stops mid-scatter and returns the results gathered so far with
	// Partial: true — HTTP 200, never cached. 0 disables the server-side
	// budget (client deadlines are always honored).
	RequestTimeout time.Duration
	// RateLimit caps each client's sustained search rate
	// (requests/second), keyed by X-Client-Id or client IP; over-budget
	// requests are shed with 429 and an accurate Retry-After before they
	// can take an admission-queue position. 0 disables per-client
	// limiting.
	RateLimit float64
	// RateBurst is the token-bucket burst per client (0 = 2×RateLimit,
	// minimum 1).
	RateBurst int
	// Replica, when set, marks this server as a follower: /readyz gates
	// on its lag, and /stats + /metrics expose its replication state.
	// The caller owns the replicator's lifecycle (Start/Stop).
	Replica *Replicator
	// MaxPublishBytes caps a POST /publish request body; larger bodies
	// are refused with 413 before decoding. 0 means
	// DefaultMaxPublishBytes, negative disables the endpoint (405-free:
	// the route simply is not mounted — push-less deployments expose no
	// write surface).
	MaxPublishBytes int64
	// StaleWindow enables stale-while-revalidate: for this long after a
	// publish bumps the generation, a miss at the new generation may be
	// served the previous generation's cached bytes (X-Dnhd-Cache:
	// stale, generation header set to the bytes' generation) while one
	// background flight warms the new entry. 0 disables — every miss
	// after a publish pays the cold executor run.
	StaleWindow time.Duration
	// Logger receives serving and rewrangle logs; nil discards them.
	Logger *slog.Logger
}

// Server is the dnhd HTTP service.
type Server struct {
	sys     *metamess.System
	cache   *queryCache
	metrics *serveMetrics
	rew     *rewrangler
	logger  *slog.Logger
	sampler *obs.Sampler
	slow    *obs.SlowLog
	httpSrv *http.Server

	adm             *admission
	limiter         *rateLimiter
	replica         *Replicator
	maxPublishBytes int64
	flights         flightGroup
	reqTimeout      time.Duration
	staleWindow     time.Duration
	// revalSem bounds concurrent background revalidation flights; warms
	// past the bound are skipped (the next stale hit re-triggers them),
	// so a publish over a hot cache cannot stampede the executor.
	revalSem chan struct{}

	// Generation-transition tracking for stale-while-revalidate: when a
	// search observes a generation different from the last one noted,
	// the previous generation and the switch time are recorded — the
	// staleness bound is measured from when this server first *saw* the
	// new generation, which is within one request of the publish.
	genMu       sync.Mutex
	curGen      uint64
	prevGen     uint64
	genSwitched time.Time

	// Allocation-sampling state for /stats: per-search figures are the
	// process-wide MemStats delta between consecutive /stats reads divided
	// by the searches executed in that window, so they approximate (other
	// handlers allocate too) but track the steady-state pooling payoff.
	allocMu      sync.Mutex
	lastMallocs  uint64
	lastBytes    uint64
	lastSearches uint64
}

// New wires a server; call Start (or mount Handler yourself) to serve.
func New(cfg Config) (*Server, error) {
	if cfg.Sys == nil {
		return nil, fmt.Errorf("server: Config.Sys is required")
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	size := cfg.CacheSize
	if size == 0 {
		size = DefaultCacheSize
	}
	slowThreshold := cfg.SlowThreshold
	if slowThreshold == 0 {
		slowThreshold = DefaultSlowThreshold
	}
	slowSize := cfg.SlowLogSize
	if slowSize == 0 {
		slowSize = DefaultSlowLogSize
	}
	maxPublish := cfg.MaxPublishBytes
	if maxPublish == 0 {
		maxPublish = DefaultMaxPublishBytes
	}
	if cfg.Replica != nil {
		// A follower's catalog is a replica of the leader's journal; a
		// direct publish would fork it. The endpoint exists only on
		// leaders, whatever the configuration says.
		maxPublish = -1
	}
	return &Server{
		sys:     cfg.Sys,
		cache:   newQueryCache(size),
		metrics: newServeMetrics(endpointNames),
		rew:     newRewrangler(cfg.Sys, cfg.RewrangleEvery, logger),
		logger:  logger,
		sampler: obs.NewSampler(cfg.TraceSample),
		// NewSlowLog returns nil (log disabled, all methods inert) when
		// the threshold went negative.
		slow:            obs.NewSlowLog(slowSize, float64(slowThreshold)/float64(time.Millisecond)),
		adm:             newAdmission(cfg.MaxInFlight, cfg.QueueDepth, cfg.QueueWait),
		limiter:         newRateLimiter(cfg.RateLimit, cfg.RateBurst),
		replica:         cfg.Replica,
		maxPublishBytes: maxPublish,
		reqTimeout:      cfg.RequestTimeout,
		staleWindow:     cfg.StaleWindow,
		revalSem:        make(chan struct{}, maxRevalidations),
		curGen:          cfg.Sys.SnapshotGeneration(),
	}, nil
}

// maxRevalidations bounds concurrent background cache warms.
const maxRevalidations = 4

// Handler returns the instrumented route tree.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /search", s.handleSearch)
	mux.HandleFunc("GET /search/text", s.handleSearchText)
	mux.HandleFunc("GET /dataset/{path...}", s.handleDataset)
	mux.HandleFunc("GET /curator/queue", s.handleCuratorQueue)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/slowlog", s.handleSlowlog)
	mux.HandleFunc("GET /debug/wrangletrace", s.handleWrangleTrace)
	mux.HandleFunc("GET /journal/tail", s.handleJournalTail)
	mux.HandleFunc("GET /journal/checkpoint", s.handleJournalCheckpoint)
	if s.maxPublishBytes > 0 {
		mux.HandleFunc("POST /publish", s.handlePublish)
	}
	return s.instrument(mux)
}

// Start listens on addr, launches the rewrangle scheduler, and serves
// in the background; the returned address is concrete (useful with
// ":0"). Use Shutdown to stop.
func (s *Server) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	s.rew.start()
	s.httpSrv = &http.Server{Handler: s.Handler()}
	go func() {
		if err := s.httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.logger.Error("server: serve", "err", err)
		}
	}()
	return ln.Addr(), nil
}

// Shutdown drains in-flight requests (bounded by ctx), refuses new
// ones, and stops the rewrangle scheduler, waiting for a run in
// progress — so by the time it returns no publish can still be racing
// the journal, and the owner may safely Close the system (dnhd does).
// Safe only after Start.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.httpSrv.Shutdown(ctx)
	s.rew.stopAndWait()
	return err
}

// Rewrangle schedules an immediate background re-wrangle (the SIGHUP
// path). It returns without waiting for the run.
func (s *Server) Rewrangle() { s.rew.Kick() }

// --- wire types ------------------------------------------------------

// SearchRequest is the JSON body of POST /search, mirroring
// metamess.Query.
type SearchRequest struct {
	Near      *LatLon    `json:"near,omitempty"`
	From      time.Time  `json:"from,omitzero"`
	To        time.Time  `json:"to,omitzero"`
	Variables []Variable `json:"variables,omitempty"`
	K         int        `json:"k,omitempty"`
}

// LatLon is a WGS84 coordinate on the wire.
type LatLon struct {
	Lat float64 `json:"lat"`
	Lon float64 `json:"lon"`
}

// Variable is one queried variable, optionally range-constrained.
type Variable struct {
	Name string   `json:"name"`
	Min  *float64 `json:"min,omitempty"`
	Max  *float64 `json:"max,omitempty"`
}

// SearchResponse is the body of both search endpoints.
type SearchResponse struct {
	// Generation identifies the published snapshot the ranking was
	// computed from.
	Generation uint64         `json:"generation"`
	Count      int            `json:"count"`
	Hits       []metamess.Hit `json:"hits"`
	// Partial marks a response whose deadline (RequestTimeout or the
	// client's X-Deadline-Ms) expired mid-search: Hits holds whatever
	// the scatter had gathered and ranked by then. Partial responses are
	// HTTP 200 and are never cached.
	Partial bool `json:"partial,omitempty"`
	// Trace is the request's span tree, present only when the client
	// forced tracing (?debug=trace / X-Trace: 1).
	Trace *obs.SpanTree `json:"trace,omitempty"`
}

// RequestFromQuery converts an internal workload query into the wire
// request the load generator replays against /search.
func RequestFromQuery(q search.Query) SearchRequest {
	req := SearchRequest{K: q.K}
	if q.Location != nil {
		req.Near = &LatLon{Lat: q.Location.Lat, Lon: q.Location.Lon}
	}
	if q.Time != nil {
		req.From, req.To = q.Time.Start, q.Time.End
	}
	for _, t := range q.Terms {
		v := Variable{Name: t.Name}
		if t.Range != nil {
			lo, hi := t.Range.Min, t.Range.Max
			v.Min, v.Max = &lo, &hi
		}
		req.Variables = append(req.Variables, v)
	}
	return req
}

func (req SearchRequest) toQuery() metamess.Query {
	q := metamess.Query{From: req.From, To: req.To, K: req.K}
	if req.Near != nil {
		q.Near = &metamess.LatLon{Lat: req.Near.Lat, Lon: req.Near.Lon}
	}
	for _, v := range req.Variables {
		q.Variables = append(q.Variables, metamess.VariableTerm{Name: v.Name, Min: v.Min, Max: v.Max})
	}
	return q
}

// --- handlers --------------------------------------------------------

// admitSearch runs the pre-execution gates in front of a search
// endpoint, cheapest-refusal first: the per-client rate limit (one hot
// client must not take queue positions from the rest), then the
// read-your-writes wait (X-Min-Generation — waiting must not hold an
// admission slot), then the admission gate. A refused request is
// answered here — 429/412 with headers, no parsing and no executor
// work — and false returned.
func (s *Server) admitSearch(w http.ResponseWriter, r *http.Request) (release func(), ok bool) {
	if wait, limited := s.limiter.take(clientKey(r), time.Now()); limited {
		s.metrics.ratelimitShed.Add(1)
		w.Header().Set("Retry-After", retryAfterHeader(wait))
		writeError(w, http.StatusTooManyRequests, "client rate limit exceeded, retry later")
		return nil, false
	}
	if !s.awaitMinGeneration(w, r) {
		return nil, false
	}
	release, reason := s.adm.acquire(r.Context())
	if reason == shedNone {
		return release, true
	}
	s.metrics.shed.Add(1)
	// Retry-After tracks the observed drain rate: backlog × mean
	// service time / slots, not a hardcoded guess.
	w.Header().Set("Retry-After", strconv.Itoa(s.adm.retryAfterSeconds()))
	writeError(w, http.StatusTooManyRequests, "server overloaded ("+reason.String()+"), retry later")
	return nil, false
}

// DefaultMinGenWait bounds how long an X-Min-Generation request waits
// for replication (or a local publish) to reach the demanded generation
// when the request carries no deadline of its own.
const DefaultMinGenWait = 2 * time.Second

// awaitMinGeneration implements read-your-writes: a client that just
// wrote through the leader sends the publish's generation in
// X-Min-Generation, and a follower holds the search until its replica
// catches up — up to the request's deadline (X-Deadline-Ms /
// RequestTimeout, else DefaultMinGenWait) — or answers 412 with the
// generation it does have, so the client can retry or fall back to the
// leader. Runs before the admission gate: a waiting request must not
// hold a slot. On a leader the demanded generation is usually already
// current and this is one atomic load.
func (s *Server) awaitMinGeneration(w http.ResponseWriter, r *http.Request) bool {
	h := r.Header.Get("X-Min-Generation")
	if h == "" {
		return true
	}
	min, err := strconv.ParseUint(h, 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad X-Min-Generation: "+err.Error())
		return false
	}
	if s.sys.SnapshotGeneration() >= min {
		return true
	}
	s.metrics.minGenWaits.Add(1)
	ctx, cancel := s.requestContext(r)
	defer cancel()
	if _, bounded := ctx.Deadline(); !bounded {
		var cancelWait context.CancelFunc
		ctx, cancelWait = context.WithTimeout(ctx, DefaultMinGenWait)
		defer cancelWait()
	}
	ticker := time.NewTicker(5 * time.Millisecond)
	defer ticker.Stop()
	for {
		if s.sys.SnapshotGeneration() >= min {
			return true
		}
		select {
		case <-ticker.C:
		case <-ctx.Done():
			gen := s.sys.SnapshotGeneration()
			s.metrics.minGenStale.Add(1)
			w.Header().Set("X-Dnhd-Generation", strconv.FormatUint(gen, 10))
			writeJSON(w, http.StatusPreconditionFailed, map[string]any{
				"error":      fmt.Sprintf("generation %d not yet available", min),
				"generation": gen,
			})
			return false
		}
	}
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admitSearch(w, r)
	if !ok {
		return
	}
	defer release()
	var req SearchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	qo := s.beginQuery(r)
	defer s.endQuery(qo)
	s.serveSearch(w, r, req, qo)
}

func (s *Server) handleSearchText(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admitSearch(w, r)
	if !ok {
		return
	}
	defer release()
	text := r.URL.Query().Get("q")
	if text == "" {
		writeError(w, http.StatusBadRequest, "missing q parameter")
		return
	}
	qo := s.beginQuery(r)
	defer s.endQuery(qo)
	// Parse once, then feed the same structured path /search uses: the
	// parsed form validates early, executes without a second parse, and
	// normalizes the cache key — textual variants of one query (spacing,
	// clause order) and their structured equivalent share an entry.
	tr, root := qo.Tracer()
	t0 := time.Now()
	pid := tr.Start(root, "parse")
	iq, err := search.ParseQuery(text)
	tr.End(pid)
	qo.ParseNs = time.Since(t0).Nanoseconds()
	searchStageParse.ObserveSeconds(qo.ParseNs)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.serveSearch(w, r, RequestFromQuery(iq), qo)
}

// requestContext derives the search's execution budget: the smaller of
// the server-wide RequestTimeout and the client's X-Deadline-Ms header
// (milliseconds of remaining budget; 0 means already expired). With
// neither, the request context passes through unchanged.
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	budget := s.reqTimeout
	bounded := budget > 0
	if h := r.Header.Get("X-Deadline-Ms"); h != "" {
		if ms, err := strconv.ParseInt(h, 10, 64); err == nil && ms >= 0 {
			// ms == 0 is a real (already expired) budget, not "unset" —
			// the deterministic way to ask for an immediate partial.
			if d := time.Duration(ms) * time.Millisecond; !bounded || d < budget {
				budget = d
			}
			bounded = true
		}
	}
	if !bounded {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), budget)
}

// serveSearch runs the overload-hardened search path shared by both
// search endpoints. Re-marshaling the decoded request normalizes field
// order, whitespace, and unknown fields out of the cache key. The
// layers, cheapest first:
//
//  1. cache hit at the current generation — served as before;
//  2. stale-while-revalidate — within StaleWindow of a publish, the
//     previous generation's cached bytes are served immediately
//     (X-Dnhd-Cache: stale, X-Dnhd-Generation labels the bytes) while
//     one background flight warms the new generation's entry;
//  3. singleflight — concurrent identical misses elect one leader to
//     run the executor; followers get the leader's bytes verbatim
//     (X-Dnhd-Cache: collapsed).
//
// Forced-trace requests bypass all three: a cached or shared body has
// no trace to return, and a body with an inline trace must not be
// served to untraced clients.
func (s *Server) serveSearch(w http.ResponseWriter, r *http.Request, req SearchRequest, qo *obs.QueryObs) {
	keyBytes, err := json.Marshal(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	key := string(keyBytes)
	q := req.toQuery()
	ctx, cancel := s.requestContext(r)
	defer cancel()
	ctx = obs.WithQuery(ctx, qo)
	start := time.Now()

	gen := s.sys.SnapshotGeneration()
	s.noteGeneration(gen)
	if qo.Forced {
		out := s.executeSearch(ctx, q, key, qo)
		s.serveOutcome(w, out, out.cacheState)
		s.noteSlow(start, key, out.generation, qo, false)
		return
	}

	tr, root := qo.Tracer()
	cid := tr.Start(root, "cache_lookup")
	cached, ok := s.cache.Get(gen, key)
	tr.End(cid)
	if ok {
		s.metrics.cacheHits.Add(1)
		w.Header().Set("X-Dnhd-Cache", "hit")
		w.Header().Set("X-Dnhd-Generation", strconv.FormatUint(gen, 10))
		writeJSONBytes(w, http.StatusOK, cached)
		s.noteSlow(start, key, gen, qo, true)
		return
	}
	if prev, ok := s.staleSource(gen); ok {
		if staleBody, ok := s.cache.Get(prev, key); ok {
			s.metrics.staleServed.Add(1)
			s.startRevalidate(gen, key, q)
			w.Header().Set("X-Dnhd-Cache", "stale")
			w.Header().Set("X-Dnhd-Generation", strconv.FormatUint(prev, 10))
			writeJSONBytes(w, http.StatusOK, staleBody)
			s.noteSlow(start, key, prev, qo, true)
			return
		}
	}

	fk := flightKey{generation: gen, query: key}
	f, leader := s.flights.join(fk)
	if leader {
		var out searchOutcome
		// finish in a deferred call so a panicking executor (recovered
		// by net/http) still releases the followers — with the default
		// 500 outcome rather than a hang.
		out = searchOutcome{status: http.StatusInternalServerError, body: []byte(`{"error":"search failed"}`), cacheState: "miss"}
		func() {
			defer func() { s.flights.finish(fk, f, out) }()
			out = s.executeSearch(ctx, q, key, qo)
		}()
		s.serveOutcome(w, out, out.cacheState)
		s.noteSlow(start, key, out.generation, qo, false)
		return
	}
	select {
	case <-f.done:
		s.metrics.collapsed.Add(1)
		s.serveOutcome(w, f.out, "collapsed")
	case <-ctx.Done():
		// The follower's own deadline expired while the leader was still
		// working: answer with an empty partial rather than holding the
		// connection for bytes the client no longer has time for.
		s.metrics.partials.Add(1)
		out := partialOutcome(gen, nil)
		s.serveOutcome(w, out, "timeout")
	}
	s.noteSlow(start, key, gen, qo, false)
}

// serveOutcome writes one executed (or shared) search outcome.
func (s *Server) serveOutcome(w http.ResponseWriter, out searchOutcome, cacheState string) {
	w.Header().Set("X-Dnhd-Cache", cacheState)
	w.Header().Set("X-Dnhd-Generation", strconv.FormatUint(out.generation, 10))
	if out.partial {
		w.Header().Set("X-Dnhd-Partial", "1")
	}
	writeJSONBytes(w, out.status, out.body)
}

// partialOutcome renders an empty partial response labeled with gen.
func partialOutcome(gen uint64, hits []metamess.Hit) searchOutcome {
	body, err := json.Marshal(SearchResponse{Generation: gen, Count: len(hits), Hits: hits, Partial: true})
	if err != nil {
		return searchOutcome{status: http.StatusInternalServerError, body: []byte(`{"error":"marshal failed"}`), generation: gen}
	}
	return searchOutcome{status: http.StatusOK, body: body, cacheState: "miss", partial: true, generation: gen}
}

// executeSearch runs the executor with the generation-race retry loop
// and renders the outcome. The generation is read before the search and
// re-checked after: if a publish landed in between, the attempt is
// retried (so the response's generation label is exact and a cache
// entry keyed G never holds data from a later snapshot); with publishes
// landing faster than searches finish, the last attempt is served
// unlabeled-safe — generation 0 — and uncached. A deadline that expires
// mid-scatter yields the results gathered so far with Partial: true,
// HTTP 200, never cached. qo may be nil (background revalidation).
func (s *Server) executeSearch(ctx context.Context, q metamess.Query, key string, qo *obs.QueryObs) searchOutcome {
	tr, root := qo.Tracer()
	forced := qo != nil && qo.Forced
	var lastBody []byte
	for attempt := 0; attempt < 3; attempt++ {
		gen := s.sys.SnapshotGeneration()
		// A generation-race retry re-runs the executor; zero the stage
		// counters so histograms and the slow log see the attempt that
		// produced the response, not a sum across attempts.
		if attempt > 0 {
			qo.ResetStages()
		}
		hits, partial, err := s.sys.SearchPartialContext(ctx, q)
		if err != nil {
			body, merr := json.Marshal(map[string]string{"error": err.Error()})
			if merr != nil {
				body = []byte(`{"error":"bad query"}`)
			}
			return searchOutcome{status: http.StatusBadRequest, body: body, cacheState: "miss", generation: gen}
		}
		s.metrics.searchesRun.Add(1)
		if qo != nil {
			observeStages(qo)
		}
		if partial {
			s.metrics.partials.Add(1)
			resp := SearchResponse{Generation: gen, Count: len(hits), Hits: hits, Partial: true}
			if forced {
				tr.Attr(root, "generation", int64(gen))
				tr.End(root)
				resp.Trace = tr.Tree()
			}
			body, merr := json.Marshal(resp)
			if merr != nil {
				return searchOutcome{status: http.StatusInternalServerError, body: []byte(`{"error":"marshal failed"}`), generation: gen}
			}
			state := "miss"
			if forced {
				state = "bypass"
			}
			return searchOutcome{status: http.StatusOK, body: body, cacheState: state, partial: true, generation: gen}
		}
		if s.sys.SnapshotGeneration() != gen {
			// A publish raced the search; the snapshot it used is
			// ambiguous. Retry against the fresh generation.
			var merr error
			if lastBody, merr = json.Marshal(SearchResponse{Count: len(hits), Hits: hits}); merr != nil {
				return searchOutcome{status: http.StatusInternalServerError, body: []byte(`{"error":"marshal failed"}`)}
			}
			continue
		}
		resp := SearchResponse{Generation: gen, Count: len(hits), Hits: hits}
		if forced {
			tr.Attr(root, "generation", int64(gen))
			tr.End(root)
			resp.Trace = tr.Tree()
			body, merr := json.Marshal(resp)
			if merr != nil {
				return searchOutcome{status: http.StatusInternalServerError, body: []byte(`{"error":"marshal failed"}`), generation: gen}
			}
			return searchOutcome{status: http.StatusOK, body: body, cacheState: "bypass", generation: gen}
		}
		body, merr := json.Marshal(resp)
		if merr != nil {
			return searchOutcome{status: http.StatusInternalServerError, body: []byte(`{"error":"marshal failed"}`), generation: gen}
		}
		if s.cache.enabled() {
			s.metrics.cacheMiss.Add(1)
		}
		s.cache.Put(gen, key, body)
		return searchOutcome{status: http.StatusOK, body: body, cacheState: "miss", generation: gen}
	}
	return searchOutcome{status: http.StatusOK, body: lastBody, cacheState: "miss"}
}

// --- stale-while-revalidate ------------------------------------------

// noteGeneration records generation transitions as the serving path
// observes them.
func (s *Server) noteGeneration(gen uint64) {
	if s.staleWindow <= 0 {
		return
	}
	s.genMu.Lock()
	if gen != s.curGen {
		s.prevGen = s.curGen
		s.curGen = gen
		s.genSwitched = time.Now()
	}
	s.genMu.Unlock()
}

// staleSource returns the generation whose cached bytes may be served
// in place of a cold miss at gen: the previous generation, within
// StaleWindow of the switch.
func (s *Server) staleSource(gen uint64) (uint64, bool) {
	if s.staleWindow <= 0 {
		return 0, false
	}
	s.genMu.Lock()
	defer s.genMu.Unlock()
	if s.prevGen == 0 || gen != s.curGen {
		return 0, false
	}
	if time.Since(s.genSwitched) > s.staleWindow {
		return 0, false
	}
	return s.prevGen, true
}

// startRevalidate kicks one background flight to warm (gen, key). The
// flight group guarantees at most one warm per entry; revalSem bounds
// warms across entries — past it the warm is skipped and the next
// stale hit tries again.
func (s *Server) startRevalidate(gen uint64, key string, q metamess.Query) {
	select {
	case s.revalSem <- struct{}{}:
	default:
		return
	}
	fk := flightKey{generation: gen, query: key}
	f, leader := s.flights.join(fk)
	if !leader {
		<-s.revalSem
		return
	}
	s.metrics.revalidations.Add(1)
	go func() {
		defer func() { <-s.revalSem }()
		timeout := s.reqTimeout
		if timeout <= 0 {
			timeout = 30 * time.Second
		}
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		defer cancel()
		out := searchOutcome{status: http.StatusInternalServerError, body: []byte(`{"error":"search failed"}`), cacheState: "miss"}
		func() {
			defer func() {
				recover() // a panicking warm must still release joiners
				s.flights.finish(fk, f, out)
			}()
			out = s.executeSearch(ctx, q, key, nil)
		}()
	}()
}

// --- replication (leader side) ---------------------------------------

// maxTailWait caps a tail request's long-poll hold, so a dead follower
// cannot pin a connection indefinitely.
const maxTailWait = 30 * time.Second

// handleJournalTail streams journal frames to a follower:
// GET /journal/tail?from=<gen>&wait_ms=<hold>&max_bytes=<cap>. The
// response body is raw checksummed journal lines for every record past
// from; X-Dnhd-Generation carries the leader's current generation, and
// X-Dnhd-Resync: 1 (empty body) tells a follower whose from predates
// the journals' reach to bootstrap from /journal/checkpoint instead.
// With wait_ms, an empty tail long-polls until a publish lands or the
// hold expires. Any durable node can serve tails — a durable follower
// journals leader-stamped records, so chaining followers off followers
// works unchanged.
func (s *Server) handleJournalTail(w http.ResponseWriter, r *http.Request) {
	if !s.sys.Durable() {
		writeError(w, http.StatusNotFound, "journal tailing requires a durable node (-data)")
		return
	}
	q := r.URL.Query()
	var from uint64
	if raw := q.Get("from"); raw != "" {
		var err error
		if from, err = strconv.ParseUint(raw, 10, 64); err != nil {
			writeError(w, http.StatusBadRequest, "bad from parameter: "+err.Error())
			return
		}
	}
	var wait time.Duration
	if raw := q.Get("wait_ms"); raw != "" {
		ms, err := strconv.ParseInt(raw, 10, 64)
		if err != nil || ms < 0 {
			writeError(w, http.StatusBadRequest, "bad wait_ms parameter")
			return
		}
		if wait = time.Duration(ms) * time.Millisecond; wait > maxTailWait {
			wait = maxTailWait
		}
	}
	var maxBytes int64
	if raw := q.Get("max_bytes"); raw != "" {
		n, err := strconv.ParseInt(raw, 10, 64)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "bad max_bytes parameter")
			return
		}
		maxBytes = n
	}
	frames, gen, resync, err := s.sys.JournalTail(from, maxBytes)
	if err == nil && len(frames) == 0 && !resync && wait > 0 {
		ctx, cancel := context.WithTimeout(r.Context(), wait)
		s.sys.AwaitPublish(ctx, from)
		cancel()
		frames, gen, resync, err = s.sys.JournalTail(from, maxBytes)
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.metrics.tailsServed.Add(1)
	w.Header().Set("X-Dnhd-Generation", strconv.FormatUint(gen, 10))
	if resync {
		w.Header().Set("X-Dnhd-Resync", "1")
	}
	w.Header().Set("Content-Type", "application/x-dnh-journal")
	w.WriteHeader(http.StatusOK)
	w.Write(frames)
}

// handleJournalCheckpoint streams the on-disk checkpoint — the
// follower bootstrap download behind the resync signal.
func (s *Server) handleJournalCheckpoint(w http.ResponseWriter, r *http.Request) {
	rc, err := s.sys.CheckpointReader()
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	defer rc.Close()
	w.Header().Set("Content-Type", "application/x-dnh-checkpoint")
	w.WriteHeader(http.StatusOK)
	io.Copy(w, rc)
}

func (s *Server) handleDataset(w http.ResponseWriter, r *http.Request) {
	path := r.PathValue("path")
	summary, err := s.sys.DatasetSummary(path)
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"path": path, "summary": summary})
}

func (s *Server) handleCuratorQueue(w http.ResponseWriter, r *http.Request) {
	queue := s.sys.CuratorQueue()
	if queue == nil {
		queue = []string{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"count": len(queue), "queue": queue})
}

// handleHealthz is liveness: the process is up and can read its
// snapshot. It answers 200 even while shedding — restarting a merely
// overloaded instance would only make the overload worse. Routing
// decisions belong to /readyz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":     "ok",
		"datasets":   s.sys.DatasetCount(),
		"generation": s.sys.SnapshotGeneration(),
	})
}

// ReadyzResponse is the /readyz body — the load-balancer drain signal.
type ReadyzResponse struct {
	Status      string `json:"status"` // "ready", "shedding", or "lagging"
	Shedding    bool   `json:"shedding"`
	InFlight    int64  `json:"inFlight"`
	Queued      int64  `json:"queued"`
	MaxInFlight int    `json:"maxInFlight,omitempty"`
	QueueDepth  int    `json:"queueDepth,omitempty"`
	// Replication is present on followers: /readyz answers 503 while the
	// replica has never caught up or is beyond its MaxLag.
	Replication *ReplicaStats `json:"replication,omitempty"`
}

// handleReadyz is readiness: 503 while the admission gate is shedding
// (queue at capacity now, or a shed within the last few seconds), so a
// balancer drains a saturated instance before more users see 429s — or,
// on a follower, while replication has never caught up or lags beyond
// -max-lag. Never gated by admission itself.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	resp := ReadyzResponse{Status: "ready", InFlight: s.adm.inFlight()}
	if s.adm != nil {
		resp.Queued = s.adm.queued.Load()
		resp.MaxInFlight = s.adm.max
		resp.QueueDepth = s.adm.depth
	}
	status := http.StatusOK
	if s.adm.shedding() {
		resp.Status = "shedding"
		resp.Shedding = true
		status = http.StatusServiceUnavailable
	}
	if s.replica != nil {
		rs := s.replica.Stats()
		resp.Replication = &rs
		if !rs.Ready {
			resp.Status = "lagging"
			status = http.StatusServiceUnavailable
		}
	}
	writeJSON(w, status, resp)
}

// StatsResponse is the /stats body.
type StatsResponse struct {
	UptimeSec  float64         `json:"uptimeSec"`
	Datasets   int             `json:"datasets"`
	Generation uint64          `json:"generation"`
	InFlight   int64           `json:"inFlight"`
	Shards     ShardStats      `json:"shards"`
	Endpoints  []EndpointStats `json:"endpoints"`
	Cache      CacheStats      `json:"cache"`
	Search     SearchStats     `json:"search"`
	Overload   OverloadStats   `json:"overload"`
	Rewrangle  RewrangleStats  `json:"rewrangle"`
	// Ingest reports push-publish activity (POST /publish).
	Ingest IngestStats `json:"ingest"`
	// Durability reports the publish journal + checkpoint store; absent
	// when the system runs without a data directory.
	Durability *metamess.DurabilityStats `json:"durability,omitempty"`
	// Replication reports follower state (lag, applied records,
	// resyncs); absent on nodes not following a leader.
	Replication *ReplicaStats `json:"replication,omitempty"`
}

// SearchStats reports query-execution efficiency: scratch-pool reuse
// counters from internal/search, the number of searches that actually
// ran against the catalog (cache hits excluded), and approximate
// per-search allocation figures sampled as the process-wide heap delta
// between consecutive /stats reads divided by the searches executed in
// that window. The per-search numbers are zero until a window with at
// least one executed search has elapsed.
type SearchStats struct {
	PoolHits        uint64  `json:"poolHits"`
	PoolMisses      uint64  `json:"poolMisses"`
	SearchesRun     uint64  `json:"searchesRun"`
	AllocsPerSearch float64 `json:"allocsPerSearch"`
	BytesPerSearch  float64 `json:"bytesPerSearch"`
}

// sampleSearchStats reads the pool counters and advances the
// allocation-sampling window.
//
// The MemStats read, the searches-run read, and the baseline swap all
// happen under one lock: concurrent /stats readers previously read
// MemStats before contending for the lock, so a reader could pair a
// stale MemStats with a baseline another reader had already advanced
// past it and report negative (uint64-wrapped) per-search figures. With
// every read inside the critical section the sample is always at least
// as fresh as the baseline it is diffed against, and the deltas are
// monotonic by construction; the >= guards stay as defense in depth.
func (s *Server) sampleSearchStats() SearchStats {
	var st SearchStats
	st.PoolHits, st.PoolMisses = search.PoolStats()

	var ms runtime.MemStats
	s.allocMu.Lock()
	defer s.allocMu.Unlock()
	runtime.ReadMemStats(&ms)
	st.SearchesRun = s.metrics.searchesRun.Load()
	if ran := st.SearchesRun - s.lastSearches; ran > 0 && s.lastMallocs > 0 &&
		st.SearchesRun >= s.lastSearches && ms.Mallocs >= s.lastMallocs && ms.TotalAlloc >= s.lastBytes {
		st.AllocsPerSearch = float64(ms.Mallocs-s.lastMallocs) / float64(ran)
		st.BytesPerSearch = float64(ms.TotalAlloc-s.lastBytes) / float64(ran)
	}
	s.lastMallocs, s.lastBytes, s.lastSearches = ms.Mallocs, ms.TotalAlloc, st.SearchesRun
	return st
}

// ShardStats reports the published snapshot's partitioning: how many
// shards the catalog is hashed across and how many features each holds
// (sizes sum to Datasets). A skewed Sizes histogram means one shard
// dominates publish patching and scatter-gather tail latency.
type ShardStats struct {
	Count int   `json:"count"`
	Sizes []int `json:"sizes"`
}

// OverloadStats is the admission/overload row in /stats: the gate's
// configuration and live occupancy, plus the degraded-mode serving
// counters (sheds, collapsed flights, stale serves, partial results).
type OverloadStats struct {
	MaxInFlight    int     `json:"maxInFlight"` // 0 = admission disabled
	QueueDepth     int     `json:"queueDepth,omitempty"`
	QueueWaitMs    float64 `json:"queueWaitMs,omitempty"`
	InFlight       int64   `json:"inFlight"`
	Queued         int64   `json:"queued"`
	PeakInFlight   int64   `json:"peakInFlight"`
	Admitted       uint64  `json:"admitted"`
	Waited         uint64  `json:"waited"` // admitted after queuing
	Shed           uint64  `json:"shed"`
	ShedQueueFull  uint64  `json:"shedQueueFull"`
	ShedTimeout    uint64  `json:"shedTimeout"`
	ShedClientGone uint64  `json:"shedClientGone"`
	// Queue-full shed decision time measured inside the gate — what the
	// shed itself cost the server, excluding network and client
	// scheduling. Timeout sheds are excluded: they cost the configured
	// wait by design.
	ShedDecisionMeanUs float64 `json:"shedDecisionMeanUs,omitempty"`
	ShedDecisionMaxUs  float64 `json:"shedDecisionMaxUs,omitempty"`
	Shedding           bool    `json:"shedding"`
	Collapsed          uint64  `json:"collapsedFlights"`
	StaleServed        uint64  `json:"staleServed"`
	Revalidations      uint64  `json:"revalidations"`
	PartialResults     uint64  `json:"partialResults"`
	// RetryAfterSec is the Retry-After an overload shed would carry right
	// now, derived from the observed drain rate.
	RetryAfterSec int `json:"retryAfterSec,omitempty"`
	// Per-client rate limiting (0/absent when -rate-limit is off).
	RateLimitPerSec  float64 `json:"rateLimitPerSec,omitempty"`
	RateLimited      uint64  `json:"rateLimited"`
	RateLimitClients int     `json:"rateLimitClients,omitempty"`
	// Read-your-writes: X-Min-Generation requests that had to wait, and
	// those answered 412 because the generation never arrived in time.
	MinGenWaits uint64 `json:"minGenWaits"`
	MinGenStale uint64 `json:"minGenStale"`
}

func (s *Server) overloadStats() OverloadStats {
	st := OverloadStats{
		Collapsed:      s.metrics.collapsed.Load(),
		StaleServed:    s.metrics.staleServed.Load(),
		Revalidations:  s.metrics.revalidations.Load(),
		PartialResults: s.metrics.partials.Load(),
		RateLimited:    s.metrics.ratelimitShed.Load(),
		MinGenWaits:    s.metrics.minGenWaits.Load(),
		MinGenStale:    s.metrics.minGenStale.Load(),
	}
	if l := s.limiter; l != nil {
		st.RateLimitPerSec = l.rate
		st.RateLimitClients = l.clients()
	}
	if a := s.adm; a != nil {
		st.MaxInFlight = a.max
		st.QueueDepth = a.depth
		st.QueueWaitMs = float64(a.wait) / float64(time.Millisecond)
		st.InFlight = a.inFlight()
		st.Queued = a.queued.Load()
		st.PeakInFlight = a.peakInFlight.Load()
		st.Admitted = a.admitted.Load()
		st.Waited = a.waited.Load()
		st.Shed = a.shedTotal()
		st.ShedQueueFull = a.shedFull.Load()
		st.ShedTimeout = a.shedTimeout.Load()
		st.ShedClientGone = a.shedClient.Load()
		if st.ShedQueueFull > 0 {
			st.ShedDecisionMeanUs = float64(a.shedFullSumNs.Load()) / float64(st.ShedQueueFull) / 1e3
			st.ShedDecisionMaxUs = float64(a.shedFullMaxNs.Load()) / 1e3
		}
		st.Shedding = a.shedding()
		st.RetryAfterSec = a.retryAfterSeconds()
	}
	return st
}

// IngestStats is the push-publish row in /stats.
type IngestStats struct {
	// Publishes counts accepted POST /publish batches; Stable counts the
	// subset whose delta was empty (replays — generation unchanged).
	Publishes uint64 `json:"publishes"`
	Stable    uint64 `json:"stable,omitempty"`
	// Rejected counts batches refused with no state change.
	Rejected uint64 `json:"rejected,omitempty"`
	// Features counts features actually upserted by accepted publishes.
	Features uint64 `json:"features"`
}

func (s *Server) ingestStats() IngestStats {
	return IngestStats{
		Publishes: s.metrics.publishes.Load(),
		Stable:    s.metrics.publishStable.Load(),
		Rejected:  s.metrics.publishRejected.Load(),
		Features:  s.metrics.publishFeaturesN.Load(),
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	hits, misses := s.metrics.cacheHits.Load(), s.metrics.cacheMiss.Load()
	cache := CacheStats{
		Hits:    hits,
		Misses:  misses,
		Entries: s.cache.Len(),
		Stale:   s.metrics.staleServed.Load(),
	}
	if hits+misses > 0 {
		cache.HitRate = float64(hits) / float64(hits+misses)
	}
	sizes := s.sys.SnapshotShardSizes()
	resp := StatsResponse{
		UptimeSec:  time.Since(s.metrics.start).Seconds(),
		Datasets:   s.sys.DatasetCount(),
		Generation: s.sys.SnapshotGeneration(),
		InFlight:   s.metrics.inFlight.Load(),
		Shards:     ShardStats{Count: len(sizes), Sizes: sizes},
		Endpoints:  s.metrics.snapshotEndpoints(),
		Cache:      cache,
		Search:     s.sampleSearchStats(),
		Overload:   s.overloadStats(),
		Rewrangle:  s.rew.stats(),
		Ingest:     s.ingestStats(),
	}
	if ds, ok := s.sys.Durability(); ok {
		resp.Durability = &ds
	}
	if s.replica != nil {
		rs := s.replica.Stats()
		resp.Replication = &rs
	}
	writeJSON(w, http.StatusOK, resp)
}

// --- instrumentation -------------------------------------------------

// endpointLabel maps a request path to its metrics label.
func endpointLabel(path string) string {
	switch {
	case path == epSearch:
		return epSearch
	case path == epSearchText:
		return epSearchText
	case strings.HasPrefix(path, epDataset+"/"):
		return epDataset
	case path == epCurator:
		return epCurator
	case path == epHealthz:
		return epHealthz
	case path == epReadyz:
		return epReadyz
	case path == epStats:
		return epStats
	case path == epMetrics:
		return epMetrics
	case path == epDebug || strings.HasPrefix(path, epDebug+"/"):
		return epDebug
	case path == epJournal || strings.HasPrefix(path, epJournal+"/"):
		return epJournal
	case path == epPublish:
		return epPublish
	}
	return endpointOther
}

type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.metrics.inFlight.Add(1)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		// Deferred so a panicking handler (recovered by net/http) still
		// releases the gauge and records its request.
		defer func() {
			s.metrics.inFlight.Add(-1)
			s.metrics.observe(endpointLabel(r.URL.Path), rec.status, time.Since(start))
		}()
		next.ServeHTTP(rec, r)
	})
}

// --- response helpers ------------------------------------------------

func writeJSON(w http.ResponseWriter, status int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSONBytes(w, status, body)
}

func writeJSONBytes(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
