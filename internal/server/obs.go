package server

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"metamess/internal/obs"
	"metamess/internal/search"
)

// Read-path metric families in the process-wide registry. Stage
// histograms are fed from each executed query's obs.QueryObs footprint
// after the search returns — the executor itself only accumulates
// nanosecond counters, so the search hot path never touches the
// registry.
var (
	searchStageParse = obs.Default().Histogram("dnh_search_stage_duration_seconds",
		"Search stage wall time in seconds.", obs.DurationBuckets, "stage", "parse")
	searchStagePlan = obs.Default().Histogram("dnh_search_stage_duration_seconds",
		"Search stage wall time in seconds.", obs.DurationBuckets, "stage", "plan")
	searchStageScatter = obs.Default().Histogram("dnh_search_stage_duration_seconds",
		"Search stage wall time in seconds.", obs.DurationBuckets, "stage", "scatter")
	searchStageMerge = obs.Default().Histogram("dnh_search_stage_duration_seconds",
		"Search stage wall time in seconds.", obs.DurationBuckets, "stage", "merge")
	searchStageExplain = obs.Default().Histogram("dnh_search_stage_duration_seconds",
		"Search stage wall time in seconds.", obs.DurationBuckets, "stage", "explain")
	tracesForced = obs.Default().Counter("dnh_traces_total",
		"Traced requests by mode.", "mode", "forced")
	tracesSampled = obs.Default().Counter("dnh_traces_total",
		"Traced requests by mode.", "mode", "sampled")
	slowQueries = obs.Default().Counter("dnh_slow_queries_total",
		"Queries at or above the slow-query threshold.")
)

// beginQuery builds the request's observability footprint: every search
// gets a pooled QueryObs (stage timings and shard counts always
// accumulate — they feed the histograms and the slow-query log), and a
// trace is attached when the client forces one (?debug=trace or
// X-Trace: 1) or the sampler picks the request.
func (s *Server) beginQuery(r *http.Request) *obs.QueryObs {
	qo := obs.GetQueryObs()
	if r.URL.Query().Get("debug") == "trace" || r.Header.Get("X-Trace") == "1" {
		qo.Forced = true
		qo.Trace = obs.NewTrace()
		tracesForced.Inc()
	} else if s.sampler.Sample() {
		qo.Trace = obs.NewTrace()
		tracesSampled.Inc()
	}
	if qo.Trace != nil {
		qo.Root = qo.Trace.Start(-1, "search")
	}
	return qo
}

// endQuery recycles the footprint and its trace (span trees rendered
// for the response were deep-copied by Tree, so pooling is safe).
func (s *Server) endQuery(qo *obs.QueryObs) {
	obs.ReleaseTrace(qo.Trace)
	obs.PutQueryObs(qo)
}

// observeStages feeds one executed search's stage timings into the
// histograms. Parse is observed separately (once per request, not per
// generation-race attempt).
func observeStages(qo *obs.QueryObs) {
	searchStagePlan.ObserveSeconds(qo.PlanNs)
	searchStageScatter.ObserveSeconds(qo.ScatterNs)
	searchStageMerge.ObserveSeconds(qo.MergeNs)
	searchStageExplain.ObserveSeconds(qo.ExplainNs)
}

// noteSlow records the finished request into the slow-query log when it
// crossed the threshold, and mirrors it to the structured log. The
// fast path is one nil/threshold check.
func (s *Server) noteSlow(start time.Time, key string, gen uint64, qo *obs.QueryObs, cacheHit bool) {
	wallMs := float64(time.Since(start).Nanoseconds()) / 1e6
	if !s.slow.Slow(wallMs) {
		return
	}
	slowQueries.Inc()
	e := obs.SlowEntry{
		Time:       time.Now().UTC().Format(time.RFC3339),
		Query:      key,
		Generation: gen,
		WallMs:     wallMs,
		CacheHit:   cacheHit,
		Traced:     qo.Trace != nil,
		Tiers:      qo.TiersRun,
		ShardSkew:  qo.Skew(),
	}
	if len(qo.ShardCandidates) > 0 {
		e.ShardCandidates = append([]int32(nil), qo.ShardCandidates...)
	}
	for _, st := range [...]struct {
		name string
		ns   int64
	}{
		{"parse", qo.ParseNs},
		{"plan", qo.PlanNs},
		{"scatter", qo.ScatterNs},
		{"merge", qo.MergeNs},
		{"explain", qo.ExplainNs},
	} {
		if st.ns > 0 {
			e.Stages = append(e.Stages, obs.StageMs{Stage: st.name, Ms: float64(st.ns) / 1e6})
		}
	}
	s.slow.Record(e)
	s.logger.Warn("slow query",
		"query", key,
		"wallMs", wallMs,
		"generation", gen,
		"tiers", qo.TiersRun,
		"shardSkew", e.ShardSkew,
		"cacheHit", cacheHit)
}

// handleMetrics serves the Prometheus text exposition: the process-wide
// registry (search/wrangle/publish/journal stage families) plus this
// server instance's own families (HTTP, cache, pool, snapshot,
// durability gauges).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var buf bytes.Buffer
	obs.Default().WritePrometheus(&buf)
	s.writeServerFamilies(&buf)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write(buf.Bytes())
}

// writeServerFamilies renders the families owned by this Server value
// (not the process-wide registry, so tests running several servers in
// one process don't cross their counters).
func (s *Server) writeServerFamilies(w io.Writer) {
	promFamily(w, "dnh_uptime_seconds", "gauge", "Seconds since the server started.")
	promFloat(w, "dnh_uptime_seconds", "", time.Since(s.metrics.start).Seconds())
	promFamily(w, "dnh_http_in_flight", "gauge", "Requests currently being served.")
	promInt(w, "dnh_http_in_flight", "", s.metrics.inFlight.Load())

	promFamily(w, "dnh_http_requests_total", "counter", "HTTP requests by endpoint.")
	for _, name := range s.metrics.names {
		promUint(w, "dnh_http_requests_total", `endpoint="`+name+`"`, s.metrics.endpoints[name].requests.Load())
	}
	promFamily(w, "dnh_http_request_errors_total", "counter", "HTTP responses with status >= 400 by endpoint.")
	for _, name := range s.metrics.names {
		promUint(w, "dnh_http_request_errors_total", `endpoint="`+name+`"`, s.metrics.endpoints[name].errors.Load())
	}
	promFamily(w, "dnh_http_request_duration_seconds", "histogram", "HTTP request latency by endpoint.")
	for _, name := range s.metrics.names {
		e := s.metrics.endpoints[name]
		labels := `endpoint="` + name + `"`
		var cum uint64
		for i, ms := range latencyBucketsMs {
			cum += e.buckets[i].Load()
			promUint(w, "dnh_http_request_duration_seconds_bucket",
				labels+`,le="`+strconv.FormatFloat(ms/1000, 'g', -1, 64)+`"`, cum)
		}
		cum += e.buckets[len(latencyBucketsMs)].Load()
		promUint(w, "dnh_http_request_duration_seconds_bucket", labels+`,le="+Inf"`, cum)
		promFloat(w, "dnh_http_request_duration_seconds_sum", labels, float64(e.totalUs.Load())/1e6)
		promUint(w, "dnh_http_request_duration_seconds_count", labels, e.requests.Load())
	}

	promFamily(w, "dnh_cache_hits_total", "counter", "Query-cache hits.")
	promUint(w, "dnh_cache_hits_total", "", s.metrics.cacheHits.Load())
	promFamily(w, "dnh_cache_misses_total", "counter", "Query-cache misses.")
	promUint(w, "dnh_cache_misses_total", "", s.metrics.cacheMiss.Load())
	promFamily(w, "dnh_cache_entries", "gauge", "Query-cache resident entries.")
	promInt(w, "dnh_cache_entries", "", int64(s.cache.Len()))

	// Overload families: always rendered (at zero when idle or when
	// admission is disabled) so dashboards and alerts can be written
	// before the first incident.
	promFamily(w, "dnh_admission_shed_total", "counter", "Search requests shed with 429, by reason.")
	if a := s.adm; a != nil {
		promUint(w, "dnh_admission_shed_total", `reason="queue_full"`, a.shedFull.Load())
		promUint(w, "dnh_admission_shed_total", `reason="wait_timeout"`, a.shedTimeout.Load())
		promUint(w, "dnh_admission_shed_total", `reason="client_gone"`, a.shedClient.Load())
	} else {
		promUint(w, "dnh_admission_shed_total", `reason="queue_full"`, 0)
		promUint(w, "dnh_admission_shed_total", `reason="wait_timeout"`, 0)
		promUint(w, "dnh_admission_shed_total", `reason="client_gone"`, 0)
	}
	promFamily(w, "dnh_admission_in_flight", "gauge", "Searches holding an admission slot.")
	promInt(w, "dnh_admission_in_flight", "", s.adm.inFlight())
	var queued, limit int64
	if a := s.adm; a != nil {
		queued, limit = a.queued.Load(), int64(a.max)
	}
	promFamily(w, "dnh_admission_queued", "gauge", "Searches waiting for an admission slot.")
	promInt(w, "dnh_admission_queued", "", queued)
	promFamily(w, "dnh_admission_limit", "gauge", "Configured in-flight search limit (0 = unlimited).")
	promInt(w, "dnh_admission_limit", "", limit)
	promFamily(w, "dnh_flights_collapsed_total", "counter", "Follower responses served from a singleflight leader's bytes.")
	promUint(w, "dnh_flights_collapsed_total", "", s.metrics.collapsed.Load())
	promFamily(w, "dnh_cache_stale_total", "counter", "Previous-generation cache bytes served during the stale window.")
	promUint(w, "dnh_cache_stale_total", "", s.metrics.staleServed.Load())
	promFamily(w, "dnh_cache_revalidations_total", "counter", "Background flights warming the new generation after a publish.")
	promUint(w, "dnh_cache_revalidations_total", "", s.metrics.revalidations.Load())
	promFamily(w, "dnh_search_partial_total", "counter", "Deadline-expired searches answered with partial results.")
	promUint(w, "dnh_search_partial_total", "", s.metrics.partials.Load())
	promFamily(w, "dnh_ratelimit_shed_total", "counter", "Search requests refused by the per-client rate limit.")
	promUint(w, "dnh_ratelimit_shed_total", "", s.metrics.ratelimitShed.Load())
	promFamily(w, "dnh_ratelimit_clients", "gauge", "Clients with a resident rate-limit bucket.")
	promInt(w, "dnh_ratelimit_clients", "", int64(s.limiter.clients()))
	promFamily(w, "dnh_min_generation_waits_total", "counter", "Searches that waited for an X-Min-Generation to publish.")
	promUint(w, "dnh_min_generation_waits_total", "", s.metrics.minGenWaits.Load())
	promFamily(w, "dnh_min_generation_stale_total", "counter", "X-Min-Generation waits that expired into 412.")
	promUint(w, "dnh_min_generation_stale_total", "", s.metrics.minGenStale.Load())
	promFamily(w, "dnh_journal_tail_total", "counter", "Journal tail responses served to followers.")
	promUint(w, "dnh_journal_tail_total", "", s.metrics.tailsServed.Load())
	promFamily(w, "dnh_publishes_total", "counter", "Accepted push publishes.")
	promUint(w, "dnh_publishes_total", "", s.metrics.publishes.Load())
	promFamily(w, "dnh_publishes_stable_total", "counter", "Accepted publishes whose delta was empty (generation unchanged).")
	promUint(w, "dnh_publishes_stable_total", "", s.metrics.publishStable.Load())
	promFamily(w, "dnh_publish_rejected_total", "counter", "Publish batches refused with no state change.")
	promUint(w, "dnh_publish_rejected_total", "", s.metrics.publishRejected.Load())
	promFamily(w, "dnh_publish_features_total", "counter", "Features upserted through push publishes.")
	promUint(w, "dnh_publish_features_total", "", s.metrics.publishFeaturesN.Load())

	promFamily(w, "dnh_searches_total", "counter", "Searches executed against the catalog (cache hits excluded).")
	promUint(w, "dnh_searches_total", "", s.metrics.searchesRun.Load())
	poolHits, poolMisses := search.PoolStats()
	promFamily(w, "dnh_search_pool_hits_total", "counter", "Query-scratch pool reuses.")
	promUint(w, "dnh_search_pool_hits_total", "", poolHits)
	promFamily(w, "dnh_search_pool_misses_total", "counter", "Query-scratch pool fresh allocations.")
	promUint(w, "dnh_search_pool_misses_total", "", poolMisses)

	promFamily(w, "dnh_snapshot_generation", "gauge", "Published snapshot generation.")
	promUint(w, "dnh_snapshot_generation", "", s.sys.SnapshotGeneration())
	promFamily(w, "dnh_datasets", "gauge", "Datasets in the published catalog.")
	promInt(w, "dnh_datasets", "", int64(s.sys.DatasetCount()))
	promFamily(w, "dnh_snapshot_shard_features", "gauge", "Features per snapshot shard.")
	for i, n := range s.sys.SnapshotShardSizes() {
		promInt(w, "dnh_snapshot_shard_features", `shard="`+strconv.Itoa(i)+`"`, int64(n))
	}

	if ds, ok := s.sys.Durability(); ok {
		// Journal bytes since the last checkpoint are exactly the warm
		// restart's replay backlog — the lag a replica would have to
		// catch up.
		promFamily(w, "dnh_journal_lag_bytes", "gauge", "Journal bytes not yet folded into the checkpoint (replay backlog).")
		promInt(w, "dnh_journal_lag_bytes", "", ds.JournalBytes)
		promFamily(w, "dnh_checkpoint_size_bytes", "gauge", "Checkpoint size on disk.")
		promInt(w, "dnh_checkpoint_size_bytes", "", ds.CheckpointBytes)
		promFamily(w, "dnh_store_degraded", "gauge", "1 while the durable store refuses appends after a journal error.")
		var degraded int64
		if ds.Degraded {
			degraded = 1
		}
		promInt(w, "dnh_store_degraded", "", degraded)
	}

	if rep := s.replica; rep != nil {
		rs := rep.Stats()
		promFamily(w, "dnh_replica_lag_generations", "gauge", "Generations this follower is behind its leader.")
		promUint(w, "dnh_replica_lag_generations", "", rs.LagGenerations)
		promFamily(w, "dnh_replica_lag_seconds", "gauge", "Seconds since this follower was last caught up.")
		promFloat(w, "dnh_replica_lag_seconds", "", rs.LagSeconds)
		promFamily(w, "dnh_replica_applied_total", "counter", "Replicated records applied from the leader's journal.")
		promUint(w, "dnh_replica_applied_total", "", rs.AppliedRecords)
		promFamily(w, "dnh_replica_resyncs_total", "counter", "Checkpoint bootstraps after falling behind the journals.")
		promUint(w, "dnh_replica_resyncs_total", "", rs.Resyncs)
		promFamily(w, "dnh_replica_connected", "gauge", "1 while the last leader exchange succeeded.")
		var connected int64
		if rs.Connected {
			connected = 1
		}
		promInt(w, "dnh_replica_connected", "", connected)
	}

	promFamily(w, "dnh_slowlog_entries", "gauge", "Slow-query log resident entries.")
	promInt(w, "dnh_slowlog_entries", "", int64(s.slow.Len()))
}

func promFamily(w io.Writer, name, kind, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, kind)
}

func promUint(w io.Writer, name, labels string, v uint64) {
	promValue(w, name, labels, strconv.FormatUint(v, 10))
}

func promInt(w io.Writer, name, labels string, v int64) {
	promValue(w, name, labels, strconv.FormatInt(v, 10))
}

func promFloat(w io.Writer, name, labels string, v float64) {
	promValue(w, name, labels, strconv.FormatFloat(v, 'g', -1, 64))
}

func promValue(w io.Writer, name, labels, val string) {
	if labels == "" {
		fmt.Fprintf(w, "%s %s\n", name, val)
	} else {
		fmt.Fprintf(w, "%s{%s} %s\n", name, labels, val)
	}
}

// SlowlogResponse is the /debug/slowlog body.
type SlowlogResponse struct {
	ThresholdMs float64         `json:"thresholdMs"`
	Count       int             `json:"count"`
	Total       uint64          `json:"total"`
	Slowest     []obs.SlowEntry `json:"slowest"`
}

func (s *Server) handleSlowlog(w http.ResponseWriter, r *http.Request) {
	entries := s.slow.Entries()
	if entries == nil {
		entries = []obs.SlowEntry{}
	}
	writeJSON(w, http.StatusOK, SlowlogResponse{
		ThresholdMs: s.slow.ThresholdMs(),
		Count:       s.slow.Len(),
		Total:       s.slow.Total(),
		Slowest:     entries,
	})
}

func (s *Server) handleWrangleTrace(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"trace": s.rew.trace()})
}
