package server

import (
	"sync/atomic"
	"time"
)

// serveMetrics is the serving-side metrics registry: per-endpoint
// request counts and latency histograms, cache hit/miss counters, and
// an in-flight gauge. It measures the HTTP layer itself and is distinct
// from internal/metrics, which scores IR quality (precision/recall)
// offline. Endpoints are registered once at construction, so the hot
// path is map-read plus atomic increments — no locks.
type serveMetrics struct {
	start     time.Time
	inFlight  atomic.Int64
	cacheHits atomic.Uint64
	cacheMiss atomic.Uint64
	// searchesRun counts searches actually executed against the catalog
	// (cache hits excluded) — the denominator for /stats' approximate
	// per-search allocation figures.
	searchesRun atomic.Uint64
	// Overload counters: requests shed at admission, follower responses
	// served from a collapsed flight, previous-generation bytes served
	// during the stale window, background cache warms started, and
	// deadline-expired partial responses.
	shed          atomic.Uint64
	collapsed     atomic.Uint64
	staleServed   atomic.Uint64
	revalidations atomic.Uint64
	partials      atomic.Uint64
	// ratelimitShed counts requests refused by the per-client token
	// bucket — before the admission gate, so they never appear in shed.
	ratelimitShed atomic.Uint64
	// Read-your-writes counters: searches that waited for X-Min-Generation
	// to arrive, and waits that expired into a 412.
	minGenWaits atomic.Uint64
	minGenStale atomic.Uint64
	// tailsServed counts journal tail responses served to followers.
	tailsServed atomic.Uint64
	// Push-ingest counters: accepted publishes (and how many arrived as
	// generation-stable replays), plus batches rejected before any state
	// change — malformed bodies, invalid features, validation errors.
	publishes        atomic.Uint64
	publishStable    atomic.Uint64
	publishRejected  atomic.Uint64
	publishFeaturesN atomic.Uint64
	endpoints        map[string]*endpointMetrics
	names            []string // registration order, for stable /stats output
}

// latencyBucketsMs are the histogram upper bounds in milliseconds; an
// implicit +Inf bucket catches the rest.
var latencyBucketsMs = []float64{0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}

type endpointMetrics struct {
	requests atomic.Uint64
	errors   atomic.Uint64 // responses with status >= 400
	totalUs  atomic.Uint64 // summed latency, microseconds
	buckets  []atomic.Uint64
}

func newServeMetrics(endpoints []string) *serveMetrics {
	m := &serveMetrics{
		start:     time.Now(),
		endpoints: make(map[string]*endpointMetrics, len(endpoints)),
		names:     endpoints,
	}
	for _, name := range endpoints {
		m.endpoints[name] = &endpointMetrics{
			buckets: make([]atomic.Uint64, len(latencyBucketsMs)+1),
		}
	}
	return m
}

// observe records one finished request.
func (m *serveMetrics) observe(endpoint string, status int, d time.Duration) {
	e := m.endpoints[endpoint]
	if e == nil {
		e = m.endpoints[endpointOther]
	}
	e.requests.Add(1)
	if status >= 400 {
		e.errors.Add(1)
	}
	e.totalUs.Add(uint64(d.Microseconds()))
	ms := float64(d) / float64(time.Millisecond)
	i := 0
	for i < len(latencyBucketsMs) && ms > latencyBucketsMs[i] {
		i++
	}
	e.buckets[i].Add(1)
}

// EndpointStats is one endpoint's row in the /stats response.
type EndpointStats struct {
	Endpoint string  `json:"endpoint"`
	Requests uint64  `json:"requests"`
	Errors   uint64  `json:"errors"`
	MeanMs   float64 `json:"meanMs"`
	P50Ms    float64 `json:"p50Ms"`
	P90Ms    float64 `json:"p90Ms"`
	P99Ms    float64 `json:"p99Ms"`
	// Buckets is the cumulative latency histogram: Buckets[i] requests
	// finished within latencyBucketsMs[i] (last entry = all).
	Buckets []uint64 `json:"buckets"`
}

// CacheStats reports query-cache effectiveness. Stale counts
// previous-generation bytes served during the stale-while-revalidate
// window (not part of the hit/miss ratio: a stale serve is a miss at
// the current generation answered from the previous one).
type CacheStats struct {
	Hits    uint64  `json:"hits"`
	Misses  uint64  `json:"misses"`
	Entries int     `json:"entries"`
	HitRate float64 `json:"hitRate"`
	Stale   uint64  `json:"stale"`
}

// snapshotEndpoints renders the per-endpoint rows.
func (m *serveMetrics) snapshotEndpoints() []EndpointStats {
	out := make([]EndpointStats, 0, len(m.names))
	for _, name := range m.names {
		e := m.endpoints[name]
		n := e.requests.Load()
		row := EndpointStats{Endpoint: name, Requests: n, Errors: e.errors.Load()}
		counts := make([]uint64, len(e.buckets))
		var total uint64
		for i := range e.buckets {
			total += e.buckets[i].Load()
			counts[i] = total
		}
		row.Buckets = counts
		if n > 0 {
			row.MeanMs = float64(e.totalUs.Load()) / float64(n) / 1000
			row.P50Ms = bucketQuantile(counts, 0.50)
			row.P90Ms = bucketQuantile(counts, 0.90)
			row.P99Ms = bucketQuantile(counts, 0.99)
		}
		out = append(out, row)
	}
	return out
}

// bucketQuantile estimates a quantile from a cumulative histogram,
// reporting the upper bound of the bucket holding the q-th request
// (the conservative convention Prometheus uses without interpolation).
func bucketQuantile(cumulative []uint64, q float64) float64 {
	total := cumulative[len(cumulative)-1]
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	for i, c := range cumulative {
		if c >= rank {
			if i < len(latencyBucketsMs) {
				return latencyBucketsMs[i]
			}
			return latencyBucketsMs[len(latencyBucketsMs)-1] * 2 // +Inf bucket
		}
	}
	return latencyBucketsMs[len(latencyBucketsMs)-1] * 2
}
