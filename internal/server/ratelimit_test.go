package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"
)

func TestRateLimiterTokenBucket(t *testing.T) {
	l := newRateLimiter(2, 3) // 2 tokens/s, burst 3
	now := time.Now()

	// The burst admits immediately; the next take is refused with an
	// accurate wait: 1 token at 2/s = 500ms.
	for i := 0; i < 3; i++ {
		if wait, limited := l.take("a", now); limited {
			t.Fatalf("take %d limited after %v", i, wait)
		}
	}
	wait, limited := l.take("a", now)
	if !limited {
		t.Fatal("4th take within the burst window admitted")
	}
	if wait < 450*time.Millisecond || wait > 550*time.Millisecond {
		t.Errorf("refusal wait %v, want ~500ms (1 token at 2/s)", wait)
	}

	// Other clients are untouched — limits are per key.
	if _, limited := l.take("b", now); limited {
		t.Error("fresh client limited by another client's spend")
	}

	// Tokens accrue over time, capped at the burst.
	if _, limited := l.take("a", now.Add(600*time.Millisecond)); limited {
		t.Error("refilled token not granted after 600ms")
	}
	for i := 0; i < 3; i++ {
		l.take("a", now.Add(time.Hour)) // refill to burst, spend it all
	}
	if _, limited := l.take("a", now.Add(time.Hour)); !limited {
		t.Error("burst cap not enforced after a long idle")
	}

	// Nil limiter is inert.
	var nilL *rateLimiter
	if _, limited := nilL.take("x", now); limited {
		t.Error("nil limiter limited a request")
	}
	if newRateLimiter(0, 5) != nil {
		t.Error("rate 0 should disable limiting")
	}
}

func TestRateLimiterEviction(t *testing.T) {
	l := newRateLimiter(100, 1)
	now := time.Now()
	for i := 0; i < maxRateLimitClients; i++ {
		l.take("client-"+strconv.Itoa(i), now)
	}
	if got := l.clients(); got != maxRateLimitClients {
		t.Fatalf("resident clients %d, want %d", got, maxRateLimitClients)
	}
	// The next new client must not grow the map past the bound: every
	// earlier bucket has fully refilled (burst/rate = 10ms) by +1s.
	l.take("overflow", now.Add(time.Second))
	if got := l.clients(); got > maxRateLimitClients {
		t.Errorf("bucket map grew past the bound: %d", got)
	}
}

func TestRetryAfterHeaderClamps(t *testing.T) {
	cases := []struct {
		wait time.Duration
		want string
	}{
		{0, "1"},
		{200 * time.Millisecond, "1"},
		{1001 * time.Millisecond, "2"},
		{5 * time.Minute, strconv.Itoa(maxRetryAfterSeconds)},
	}
	for _, c := range cases {
		if got := retryAfterHeader(c.wait); got != c.want {
			t.Errorf("retryAfterHeader(%v) = %s, want %s", c.wait, got, c.want)
		}
	}
}

func TestClientKey(t *testing.T) {
	r := httptest.NewRequest(http.MethodPost, "/search", nil)
	r.RemoteAddr = "10.1.2.3:54321"
	if got := clientKey(r); got != "10.1.2.3" {
		t.Errorf("clientKey by IP = %q", got)
	}
	r.Header.Set("X-Client-Id", "tenant-7")
	if got := clientKey(r); got != "tenant-7" {
		t.Errorf("clientKey with X-Client-Id = %q", got)
	}
}

// TestRetryAfterDerivation pins the shed Retry-After math: backlog ×
// mean service time / slots, ceil'd to seconds and clamped to
// [1, maxRetryAfterSeconds] — no more hardcoded "1".
func TestRetryAfterDerivation(t *testing.T) {
	a := newAdmission(2, 6, time.Second)

	// No observed service time yet: the safe floor.
	if got := a.retryAfterSeconds(); got != 1 {
		t.Errorf("cold gate Retry-After = %d, want 1", got)
	}

	// Mean 500ms, 2 in flight + 6 queued = backlog 8, 2 slots:
	// 8 × 0.5s / 2 = 2s.
	a.serviceNs.Store((500 * time.Millisecond).Nanoseconds())
	a.slots <- struct{}{}
	a.slots <- struct{}{}
	a.queued.Store(6)
	if got := a.retryAfterSeconds(); got != 2 {
		t.Errorf("Retry-After = %d, want 2 (8 x 500ms / 2 slots)", got)
	}

	// Fractional waits round up: backlog 1 at 200ms mean is still 1s.
	a.queued.Store(0)
	<-a.slots
	<-a.slots
	a.serviceNs.Store((200 * time.Millisecond).Nanoseconds())
	if got := a.retryAfterSeconds(); got != 1 {
		t.Errorf("sub-second Retry-After = %d, want 1", got)
	}

	// A stalled drain clamps at the cap.
	a.serviceNs.Store((10 * time.Minute).Nanoseconds())
	a.queued.Store(6)
	if got := a.retryAfterSeconds(); got != maxRetryAfterSeconds {
		t.Errorf("stalled Retry-After = %d, want %d", got, maxRetryAfterSeconds)
	}

	// Disabled admission keeps the legacy floor.
	var nilA *admission
	if got := nilA.retryAfterSeconds(); got != 1 {
		t.Errorf("nil gate Retry-After = %d, want 1", got)
	}
}

// TestObserveServiceEWMA pins the drain-rate estimator: first sample
// adopted directly, later samples folded at alpha = 1/8.
func TestObserveServiceEWMA(t *testing.T) {
	a := newAdmission(1, 1, time.Second)
	a.observeService(800)
	if got := a.serviceNs.Load(); got != 800 {
		t.Fatalf("first sample = %d, want 800", got)
	}
	a.observeService(1600)
	// 800 + (1600-800)/8 = 900.
	if got := a.serviceNs.Load(); got != 900 {
		t.Fatalf("EWMA after second sample = %d, want 900", got)
	}
}

// TestRateLimitBeforeAdmission drives the server end to end: a client
// past its budget gets 429 with the limiter's accurate Retry-After and
// the dedicated counter — and never consumes an admission queue
// position; an unrelated client keeps being served.
func TestRateLimitBeforeAdmission(t *testing.T) {
	sys, _, _ := newTestSystem(t, 12, 13)
	srv, err := New(Config{Sys: sys, RateLimit: 0.5, RateBurst: 2, MaxInFlight: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	q, _ := json.Marshal(SearchRequest{Variables: []Variable{{Name: "temperature"}}, K: 3})

	do := func(clientID string) (int, http.Header) {
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/search", bytes.NewReader(q))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Client-Id", clientID)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode, resp.Header
	}

	for i := 0; i < 2; i++ {
		if status, _ := do("hot"); status != http.StatusOK {
			t.Fatalf("within-burst request %d: %d", i, status)
		}
	}
	status, h := do("hot")
	if status != http.StatusTooManyRequests {
		t.Fatalf("over-budget request: %d, want 429", status)
	}
	// 1 token at 0.5/s = 2s away.
	if ra := h.Get("Retry-After"); ra != "2" {
		t.Errorf("rate-limit Retry-After = %q, want 2 (1 token at 0.5/s)", ra)
	}
	if status, _ := do("cold"); status != http.StatusOK {
		t.Errorf("unrelated client limited: %d", status)
	}

	// The refusal is the limiter's, not the admission gate's: the shed
	// counter stays untouched and the dedicated one moved.
	var stats StatsResponse
	_, _, body := get(t, ts.URL+"/stats")
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Overload.RateLimited != 1 {
		t.Errorf("rateLimited = %d, want 1", stats.Overload.RateLimited)
	}
	if stats.Overload.Shed != 0 {
		t.Errorf("admission shed = %d, want 0 (rate limit runs first)", stats.Overload.Shed)
	}
	if stats.Overload.RateLimitClients < 2 {
		t.Errorf("rateLimitClients = %d, want >= 2", stats.Overload.RateLimitClients)
	}
	_, _, metrics := get(t, ts.URL+"/metrics")
	if !bytes.Contains(metrics, []byte("dnh_ratelimit_shed_total 1")) {
		t.Error("/metrics does not carry dnh_ratelimit_shed_total 1")
	}
}
