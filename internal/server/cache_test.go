package server

import (
	"bytes"
	"fmt"
	"testing"
)

func TestQueryCacheLRUEviction(t *testing.T) {
	c := newQueryCache(3)
	for i := 0; i < 3; i++ {
		c.Put(1, fmt.Sprintf("q%d", i), []byte{byte(i)})
	}
	// Touch q0 so q1 is the least recently used.
	if _, ok := c.Get(1, "q0"); !ok {
		t.Fatal("q0 missing")
	}
	c.Put(1, "q3", []byte{3})
	if _, ok := c.Get(1, "q1"); ok {
		t.Error("q1 should have been evicted as LRU")
	}
	for _, q := range []string{"q0", "q2", "q3"} {
		if _, ok := c.Get(1, q); !ok {
			t.Errorf("%s should survive", q)
		}
	}
	if c.Len() != 3 {
		t.Errorf("Len = %d, want 3", c.Len())
	}
}

func TestQueryCacheGenerationKeying(t *testing.T) {
	c := newQueryCache(8)
	c.Put(1, "q", []byte("old"))
	c.Put(2, "q", []byte("new"))
	if body, ok := c.Get(1, "q"); !ok || !bytes.Equal(body, []byte("old")) {
		t.Errorf("gen 1 = %q, %v", body, ok)
	}
	if body, ok := c.Get(2, "q"); !ok || !bytes.Equal(body, []byte("new")) {
		t.Errorf("gen 2 = %q, %v", body, ok)
	}
	if _, ok := c.Get(3, "q"); ok {
		t.Error("gen 3 should miss")
	}
}

func TestQueryCachePutReplacesExisting(t *testing.T) {
	c := newQueryCache(2)
	c.Put(1, "q", []byte("a"))
	c.Put(1, "q", []byte("b"))
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
	if body, _ := c.Get(1, "q"); !bytes.Equal(body, []byte("b")) {
		t.Errorf("body = %q, want b", body)
	}
}

func TestQueryCacheDisabled(t *testing.T) {
	for _, capacity := range []int{0, -1} {
		c := newQueryCache(capacity)
		c.Put(1, "q", []byte("x"))
		if _, ok := c.Get(1, "q"); ok {
			t.Errorf("capacity %d: disabled cache returned a hit", capacity)
		}
		if c.Len() != 0 {
			t.Errorf("capacity %d: Len = %d", capacity, c.Len())
		}
	}
}
