package server

import (
	"errors"
	"io"
	"net/http"
	"strconv"
	"time"

	"metamess"
)

// DefaultMaxPublishBytes caps a POST /publish body when Config leaves
// MaxPublishBytes at 0. 8 MiB fits thousands of feature summaries; a
// producer with more splits batches.
const DefaultMaxPublishBytes = 8 << 20

// handlePublish is the push-ingest endpoint: a producer POSTs a batch
// of complete catalog features (and optional retractions) and the
// system publishes them through exactly the wrangle pipeline — sharded
// apply, journal append, follower notification, cache invalidation.
//
// The request runs the same front gates as a search (per-client rate
// limit, admission) but not the X-Min-Generation wait: that gate orders
// reads after writes, and this IS the write. Failure modes never touch
// state:
//
//	413 — body over MaxPublishBytes (refused before decoding)
//	400 — body unreadable (client disconnect, chunked-transfer error)
//	422 — decoded but rejected (invalid feature, validation error)
//	503 — accepted but undurable (journal degraded)
//
// A 200 carries the PublishReceipt; its generation echoes into
// X-Dnhd-Generation so a read-your-writes client can forward it as
// X-Min-Generation to any replica.
func (s *Server) handlePublish(w http.ResponseWriter, r *http.Request) {
	if wait, limited := s.limiter.take(clientKey(r), time.Now()); limited {
		s.metrics.ratelimitShed.Add(1)
		w.Header().Set("Retry-After", retryAfterHeader(wait))
		writeError(w, http.StatusTooManyRequests, "client rate limit exceeded, retry later")
		return
	}
	release, reason := s.adm.acquire(r.Context())
	if reason != shedNone {
		s.metrics.shed.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(s.adm.retryAfterSeconds()))
		writeError(w, http.StatusTooManyRequests, "server overloaded ("+reason.String()+"), retry later")
		return
	}
	defer release()

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.maxPublishBytes))
	if err != nil {
		s.metrics.publishRejected.Add(1)
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"publish body exceeds "+strconv.FormatInt(s.maxPublishBytes, 10)+" bytes")
			return
		}
		// A mid-stream disconnect or transfer error lands here: the batch
		// never decoded, so nothing was applied or journaled.
		writeError(w, http.StatusBadRequest, "reading publish body: "+err.Error())
		return
	}
	req, err := metamess.DecodePublishRequest(body)
	if err != nil {
		s.metrics.publishRejected.Add(1)
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	receipt, err := s.sys.PublishFeatures(req)
	if err != nil {
		s.metrics.publishRejected.Add(1)
		if errors.Is(err, metamess.ErrPublishRejected) {
			writeError(w, http.StatusUnprocessableEntity, err.Error())
			return
		}
		// The journal refused or failed the append: the publish is not
		// durable and the client must not treat it as accepted.
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	s.metrics.publishes.Add(1)
	s.metrics.publishFeaturesN.Add(uint64(receipt.Published))
	if receipt.Stable {
		s.metrics.publishStable.Add(1)
	}
	s.noteGeneration(receipt.Generation)
	w.Header().Set("X-Dnhd-Generation", strconv.FormatUint(receipt.Generation, 10))
	writeJSON(w, http.StatusOK, receipt)
}
