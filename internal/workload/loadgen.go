package workload

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// This file is the serving-side load generator: it replays query
// workloads against a running dnhd server over HTTP and reports
// throughput, latency percentiles, and per-status/per-cache-state
// accounting — the numbers recorded in BENCH_serve.json. The offline
// side of the package judges ranking quality; this side measures the
// serving layer itself. It speaks raw HTTPRequests (no dependency on
// the server package, which the experiment harness must be able to
// import this package without).
//
// Two replay modes:
//
//   - closed loop (default): Concurrency workers, each issuing the next
//     request when its previous one finishes. Offered load adapts to the
//     server — good for measuring capacity, useless for overloading it.
//   - open loop (Arrivals set): request i is launched at start +
//     Arrivals[i] regardless of completions, so offered load is fixed by
//     the schedule. This is what creates real overload: a slow server
//     faces a growing backlog instead of a politely waiting client.

// LoadOptions tunes a replay run.
type LoadOptions struct {
	// Concurrency is the number of in-flight requests (default 1).
	// Ignored in open-loop mode.
	Concurrency int
	// Timeout bounds each request (default 30s).
	Timeout time.Duration
	// Arrivals, when non-empty, switches Replay to an open-loop
	// schedule: request i is issued at start+Arrivals[i] (offsets must
	// be non-decreasing; len must equal len(reqs)).
	Arrivals []time.Duration
	// MaxOutstanding caps the requests the open-loop generator holds in
	// flight at once (default 512); the dispatcher stalls at the cap, so
	// a collapsed server throttles the generator instead of exhausting
	// its file descriptors.
	MaxOutstanding int
	// TolerateClientErrors stops 4xx responses (other than 429, which is
	// never an error) from counting as replay errors — for hostile-mix
	// runs where rejections are the expected outcome.
	TolerateClientErrors bool
}

// StatusCounts classifies responses for the overload report. Shed429 is
// broken out of the 4xx class: sheds are the admission gate working as
// designed, not client mistakes.
type StatusCounts struct {
	OK2xx     int `json:"ok2xx"`
	Shed429   int `json:"shed429"`
	Client4xx int `json:"client4xx"`
	Server5xx int `json:"server5xx"`
	// Transport counts requests with no HTTP status at all (dial/read
	// failures, client-side timeouts).
	Transport int `json:"transport"`
}

// LoadStats summarizes one replay run. Latencies are client-observed,
// percentiles computed exactly from every recorded request.
type LoadStats struct {
	Requests    int     `json:"requests"`
	Errors      int     `json:"errors"`
	DurationSec float64 `json:"durationSec"`
	QPS         float64 `json:"qps"`
	P50Ms       float64 `json:"p50Ms"`
	P90Ms       float64 `json:"p90Ms"`
	P99Ms       float64 `json:"p99Ms"`
	MaxMs       float64 `json:"maxMs"`
	// Status classifies every response; CacheStates counts the server's
	// X-Dnhd-Cache headers (hit/miss/stale/collapsed/bypass/timeout).
	Status      StatusCounts   `json:"status"`
	CacheStates map[string]int `json:"cacheStates,omitempty"`
	// CacheHits and CacheMisses mirror CacheStates["hit"/"miss"] —
	// kept as top-level fields for report compatibility.
	CacheHits   int `json:"cacheHits"`
	CacheMisses int `json:"cacheMisses"`
	// Partials counts responses flagged X-Dnhd-Partial (deadline expired
	// mid-search; HTTP 200 with partial:true).
	Partials int `json:"partials"`
	// ShedRate is Shed429 / Requests; admitted and shed percentiles
	// split the latency distribution by outcome — under overload the
	// admitted tail shows queue wait, the shed tail must stay at
	// microseconds (shedding that is slow is not shedding).
	ShedRate      float64 `json:"shedRate"`
	AdmittedP50Ms float64 `json:"admittedP50Ms,omitempty"`
	AdmittedP99Ms float64 `json:"admittedP99Ms,omitempty"`
	ShedP50Ms     float64 `json:"shedP50Ms,omitempty"`
	ShedP99Ms     float64 `json:"shedP99Ms,omitempty"`
	// OfferedQPS is the schedule's intended rate (open-loop runs only);
	// QPS is what actually completed.
	OfferedQPS float64 `json:"offeredQPS,omitempty"`
	// Latencies holds every request's client-observed latency, indexed
	// like the request slice passed to Replay — callers use it to pick
	// exemplar requests (e.g. the p99) for a follow-up traced replay.
	// Not serialized.
	Latencies []time.Duration `json:"-"`
	// Statuses holds every request's HTTP status (0 = transport error),
	// indexed like Latencies. Not serialized.
	Statuses []int `json:"-"`
}

// HTTPRequest is one replayable request.
type HTTPRequest struct {
	Method string
	URL    string
	Body   []byte
	// Header holds extra request headers (e.g. X-Deadline-Ms).
	Header map[string]string
}

// outcome is one issued request's record; slots are written disjointly
// by index, so no lock is needed.
type outcome struct {
	latency time.Duration
	status  int
	cache   string
	partial bool
	ok      bool
}

// Replay issues the requests — closed-loop over Concurrency workers, or
// open-loop when opts.Arrivals is set — and gathers LoadStats. A
// response counts as an error when the transport fails, the status is
// 5xx, a 2xx body is empty, or (unless TolerateClientErrors) the status
// is 4xx other than 429; replay continues regardless. 429 sheds are
// never errors: they are measured, not failed.
func Replay(ctx context.Context, reqs []HTTPRequest, opts LoadOptions) (LoadStats, error) {
	if len(reqs) == 0 {
		return LoadStats{}, fmt.Errorf("workload: no requests to replay")
	}
	if len(opts.Arrivals) > 0 && len(opts.Arrivals) != len(reqs) {
		return LoadStats{}, fmt.Errorf("workload: %d arrivals for %d requests", len(opts.Arrivals), len(reqs))
	}
	timeout := opts.Timeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	// A dedicated transport with an idle pool sized to the replay's
	// concurrency: the default transport keeps only two idle conns per
	// host, so a high-concurrency replay would redial per request and
	// the measured backlog would form in connection setup instead of at
	// the server's admission gate.
	conns := opts.Concurrency
	if len(opts.Arrivals) > 0 {
		conns = opts.MaxOutstanding
		if conns <= 0 {
			conns = 512
		}
	}
	if conns < 2 {
		conns = 2
	}
	transport := &http.Transport{
		MaxIdleConns:        conns,
		MaxIdleConnsPerHost: conns,
		IdleConnTimeout:     90 * time.Second,
	}
	defer transport.CloseIdleConnections()
	client := &http.Client{Timeout: timeout, Transport: transport}

	outcomes := make([]outcome, len(reqs))
	var elapsed time.Duration
	if len(opts.Arrivals) > 0 {
		elapsed = replayOpen(ctx, client, reqs, opts, outcomes)
	} else {
		elapsed = replayClosed(ctx, client, reqs, opts, outcomes)
	}
	if err := ctx.Err(); err != nil {
		return LoadStats{}, err
	}
	stats := aggregate(reqs, outcomes, opts, elapsed)
	return stats, nil
}

// replayClosed is the fixed-concurrency worker pool: each request index
// is dispatched exactly once, so workers write disjoint outcome slots.
func replayClosed(ctx context.Context, client *http.Client, reqs []HTTPRequest, opts LoadOptions, outcomes []outcome) time.Duration {
	conc := opts.Concurrency
	if conc <= 0 {
		conc = 1
	}
	if conc > len(reqs) {
		conc = len(reqs)
	}
	work := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				outcomes[i] = issue(ctx, client, reqs[i])
			}
		}()
	}
	for i := range reqs {
		select {
		case work <- i:
		case <-ctx.Done():
			close(work)
			wg.Wait()
			return time.Since(start)
		}
	}
	close(work)
	wg.Wait()
	return time.Since(start)
}

// replayOpen launches request i at start+Arrivals[i] on its own
// goroutine. The dispatcher sleeps between offsets and blocks at
// MaxOutstanding; schedule slip (dispatch later than the offset) is
// load-generator backpressure, visible as QPS < OfferedQPS.
func replayOpen(ctx context.Context, client *http.Client, reqs []HTTPRequest, opts LoadOptions, outcomes []outcome) time.Duration {
	maxOut := opts.MaxOutstanding
	if maxOut <= 0 {
		maxOut = 512
	}
	sem := make(chan struct{}, maxOut)
	var wg sync.WaitGroup
	start := time.Now()
	for i := range reqs {
		if d := opts.Arrivals[i] - time.Since(start); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
			}
		}
		if ctx.Err() != nil {
			break
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			outcomes[i] = issue(ctx, client, reqs[i])
		}(i)
	}
	wg.Wait()
	return time.Since(start)
}

func aggregate(reqs []HTTPRequest, outcomes []outcome, opts LoadOptions, elapsed time.Duration) LoadStats {
	stats := LoadStats{
		Requests:    len(reqs),
		DurationSec: elapsed.Seconds(),
		CacheStates: make(map[string]int),
		Latencies:   make([]time.Duration, len(reqs)),
		Statuses:    make([]int, len(reqs)),
	}
	var admitted, shed []time.Duration
	for i, o := range outcomes {
		stats.Latencies[i] = o.latency
		stats.Statuses[i] = o.status
		if o.cache != "" {
			stats.CacheStates[o.cache]++
		}
		if o.partial {
			stats.Partials++
		}
		switch {
		case o.status == 0:
			stats.Status.Transport++
			stats.Errors++
		case o.status == http.StatusTooManyRequests:
			stats.Status.Shed429++
			shed = append(shed, o.latency)
		case o.status >= 500:
			stats.Status.Server5xx++
			stats.Errors++
		case o.status >= 400:
			stats.Status.Client4xx++
			if !opts.TolerateClientErrors {
				stats.Errors++
			}
		default:
			stats.Status.OK2xx++
			admitted = append(admitted, o.latency)
			if !o.ok {
				stats.Errors++ // 2xx with an empty body
			}
		}
	}
	stats.CacheHits = stats.CacheStates["hit"]
	stats.CacheMisses = stats.CacheStates["miss"]
	if stats.Requests > 0 {
		stats.ShedRate = float64(stats.Status.Shed429) / float64(stats.Requests)
	}
	if elapsed > 0 {
		stats.QPS = float64(stats.Requests) / elapsed.Seconds()
	}
	if n := len(opts.Arrivals); n > 1 {
		if span := opts.Arrivals[n-1].Seconds(); span > 0 {
			stats.OfferedQPS = float64(n) / span
		}
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	all := append([]time.Duration(nil), stats.Latencies...)
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	stats.P50Ms = ms(percentile(all, 0.50))
	stats.P90Ms = ms(percentile(all, 0.90))
	stats.P99Ms = ms(percentile(all, 0.99))
	stats.MaxMs = ms(all[len(all)-1])
	if len(admitted) > 0 {
		sort.Slice(admitted, func(i, j int) bool { return admitted[i] < admitted[j] })
		stats.AdmittedP50Ms = ms(percentile(admitted, 0.50))
		stats.AdmittedP99Ms = ms(percentile(admitted, 0.99))
	}
	if len(shed) > 0 {
		sort.Slice(shed, func(i, j int) bool { return shed[i] < shed[j] })
		stats.ShedP50Ms = ms(percentile(shed, 0.50))
		stats.ShedP99Ms = ms(percentile(shed, 0.99))
	}
	return stats
}

// issue sends one request and classifies the response. ok means 2xx
// with a non-empty body; cache echoes the X-Dnhd-Cache header ("" when
// absent); partial reflects X-Dnhd-Partial.
func issue(ctx context.Context, client *http.Client, r HTTPRequest) outcome {
	t0 := time.Now()
	done := func(o outcome) outcome {
		o.latency = time.Since(t0)
		return o
	}
	var body io.Reader
	if r.Body != nil {
		body = bytes.NewReader(r.Body)
	}
	req, err := http.NewRequestWithContext(ctx, r.Method, r.URL, body)
	if err != nil {
		return done(outcome{})
	}
	if r.Body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	for k, v := range r.Header {
		req.Header.Set(k, v)
	}
	resp, err := client.Do(req)
	if err != nil {
		return done(outcome{})
	}
	defer resp.Body.Close()
	n, err := io.Copy(io.Discard, resp.Body)
	return done(outcome{
		status:  resp.StatusCode,
		cache:   resp.Header.Get("X-Dnhd-Cache"),
		partial: resp.Header.Get("X-Dnhd-Partial") == "1",
		ok:      resp.StatusCode >= 200 && resp.StatusCode < 300 && err == nil && n > 0,
	})
}

// percentile returns the q-th percentile of sorted latencies (nearest
// rank).
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(q*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}
