package workload

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// This file is the serving-side load generator: it replays query
// workloads against a running dnhd server over HTTP, concurrently, and
// reports throughput and latency percentiles — the numbers recorded in
// BENCH_serve.json. The offline side of the package judges ranking
// quality; this side measures the serving layer itself. It speaks raw
// HTTPRequests (no dependency on the server package, which the
// experiment harness must be able to import this package without).

// LoadOptions tunes a replay run.
type LoadOptions struct {
	// Concurrency is the number of in-flight requests (default 1).
	Concurrency int
	// Timeout bounds each request (default 30s).
	Timeout time.Duration
}

// LoadStats summarizes one replay run. Latencies are client-observed,
// percentiles computed exactly from every recorded request.
type LoadStats struct {
	Requests    int     `json:"requests"`
	Errors      int     `json:"errors"`
	DurationSec float64 `json:"durationSec"`
	QPS         float64 `json:"qps"`
	P50Ms       float64 `json:"p50Ms"`
	P90Ms       float64 `json:"p90Ms"`
	P99Ms       float64 `json:"p99Ms"`
	MaxMs       float64 `json:"maxMs"`
	// CacheHits and CacheMisses count the server's X-Dnhd-Cache
	// headers observed across responses.
	CacheHits   int `json:"cacheHits"`
	CacheMisses int `json:"cacheMisses"`
	// Latencies holds every request's client-observed latency, indexed
	// like the request slice passed to Replay — callers use it to pick
	// exemplar requests (e.g. the p99) for a follow-up traced replay.
	// Not serialized.
	Latencies []time.Duration `json:"-"`
}

// HTTPRequest is one replayable request.
type HTTPRequest struct {
	Method string
	URL    string
	Body   []byte
}

// Replay issues the requests with opts.Concurrency workers and gathers
// LoadStats. A response is an error when the transport fails, the
// status is not 200, or the body is empty; replay continues regardless.
// Requests are spread across workers in order, each issued once.
func Replay(ctx context.Context, reqs []HTTPRequest, opts LoadOptions) (LoadStats, error) {
	if len(reqs) == 0 {
		return LoadStats{}, fmt.Errorf("workload: no requests to replay")
	}
	conc := opts.Concurrency
	if conc <= 0 {
		conc = 1
	}
	if conc > len(reqs) {
		conc = len(reqs)
	}
	timeout := opts.Timeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	client := &http.Client{Timeout: timeout}

	type workerStats struct {
		errors, hits, misses int
	}
	work := make(chan int)
	perWorker := make([]workerStats, conc)
	// Each request index is dispatched exactly once, so workers write
	// disjoint latency slots — no lock needed.
	latencies := make([]time.Duration, len(reqs))
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ws := &perWorker[w]
			for i := range work {
				r := reqs[i]
				t0 := time.Now()
				ok, cache := issue(ctx, client, r)
				latencies[i] = time.Since(t0)
				if !ok {
					ws.errors++
				}
				switch cache {
				case "hit":
					ws.hits++
				case "miss":
					ws.misses++
				}
			}
		}(w)
	}
	for i := range reqs {
		select {
		case work <- i:
		case <-ctx.Done():
			close(work)
			wg.Wait()
			return LoadStats{}, ctx.Err()
		}
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(start)

	all := append([]time.Duration(nil), latencies...)
	stats := LoadStats{DurationSec: elapsed.Seconds(), Latencies: latencies}
	for _, ws := range perWorker {
		stats.Errors += ws.errors
		stats.CacheHits += ws.hits
		stats.CacheMisses += ws.misses
	}
	stats.Requests = len(all)
	if elapsed > 0 {
		stats.QPS = float64(len(all)) / elapsed.Seconds()
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	stats.P50Ms = ms(percentile(all, 0.50))
	stats.P90Ms = ms(percentile(all, 0.90))
	stats.P99Ms = ms(percentile(all, 0.99))
	stats.MaxMs = ms(all[len(all)-1])
	return stats, nil
}

// issue sends one request; ok means 200 with a non-empty body, and
// cache echoes the X-Dnhd-Cache header ("" when absent).
func issue(ctx context.Context, client *http.Client, r HTTPRequest) (ok bool, cache string) {
	var body io.Reader
	if r.Body != nil {
		body = bytes.NewReader(r.Body)
	}
	req, err := http.NewRequestWithContext(ctx, r.Method, r.URL, body)
	if err != nil {
		return false, ""
	}
	if r.Body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := client.Do(req)
	if err != nil {
		return false, ""
	}
	defer resp.Body.Close()
	n, err := io.Copy(io.Discard, resp.Body)
	cache = resp.Header.Get("X-Dnhd-Cache")
	return resp.StatusCode == http.StatusOK && err == nil && n > 0, cache
}

// percentile returns the q-th percentile of sorted latencies (nearest
// rank).
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(q*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}
