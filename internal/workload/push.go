package workload

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"time"

	"metamess/internal/catalog"
	"metamess/internal/geo"
)

// This file generates push-ingest traffic: batched POST /publish
// requests carrying complete, valid catalog features, and the
// interleaving helper that mixes a publish stream into a query replay —
// the workload shape of a push-fed deployment, where producers land
// deltas while readers search.

// publishWire mirrors the POST /publish body. It is declared locally so
// the workload package (which experiment harnesses import) does not
// depend on the metamess facade.
type publishWire struct {
	Features []*catalog.Feature `json:"features,omitempty"`
	Remove   []string           `json:"remove,omitempty"`
}

// pushVars are the canonical variables the generated features carry,
// with ranges inside the vocabulary's plausible bounds so the publishes
// clear wrangle-grade validation.
var pushVars = []struct {
	name     string
	raw      string
	unit     string
	min, max float64
}{
	{"water_temperature", "temp [C]", "C", 6, 18},
	{"salinity", "sal (PSU)", "PSU", 2, 30},
	{"turbidity", "turb", "NTU", 1, 80},
	{"dissolved_oxygen", "do mg/l", "mg/L", 3, 12},
}

// PublishRequests builds n POST /publish batches of batch features
// each, deterministic for a seed. Every batch lands at fresh paths
// (push/b<batch>/f<i>.csv) so each publish is a real delta: the
// generation advances exactly once per accepted batch.
func PublishRequests(base string, n, batch int, seed int64) ([]HTTPRequest, error) {
	if n <= 0 || batch <= 0 {
		return nil, fmt.Errorf("workload: publish stream needs n > 0 and batch > 0")
	}
	rng := rand.New(rand.NewSource(seed))
	t0 := time.Date(2010, 6, 1, 0, 0, 0, 0, time.UTC)
	out := make([]HTTPRequest, n)
	for i := 0; i < n; i++ {
		features := make([]*catalog.Feature, batch)
		for j := 0; j < batch; j++ {
			v := pushVars[rng.Intn(len(pushVars))]
			lo := v.min + rng.Float64()*(v.max-v.min)*0.5
			hi := lo + rng.Float64()*(v.max-lo)
			lat := 45 + rng.Float64()*2
			lon := -125 + rng.Float64()*2
			start := t0.Add(time.Duration(rng.Intn(90*24)) * time.Hour)
			path := fmt.Sprintf("push/b%04d/f%03d.csv", i, j)
			features[j] = &catalog.Feature{
				ID:     catalog.IDForPath(path),
				Path:   path,
				Source: "push",
				Format: "csv",
				BBox:   geo.BBox{MinLat: lat, MinLon: lon, MaxLat: lat + 0.05, MaxLon: lon + 0.05},
				Time:   geo.NewTimeRange(start, start.Add(24*time.Hour)),
				Variables: []catalog.VarFeature{{
					RawName: v.raw,
					Name:    v.name,
					Unit:    v.unit,
					Range:   geo.NewValueRange(lo, hi),
					Count:   24,
				}},
				RowCount:    24,
				Bytes:       int64(256 + rng.Intn(1024)),
				ScannedAt:   start,
				ModTime:     start,
				ContentHash: fmt.Sprintf("%016x", rng.Uint64()),
			}
		}
		body, err := json.Marshal(publishWire{Features: features})
		if err != nil {
			return nil, err
		}
		out[i] = HTTPRequest{Method: http.MethodPost, URL: base + "/publish", Body: body}
	}
	return out, nil
}

// InterleaveEvery mixes inserts into a base stream: one insert after
// every `every` base requests, remaining inserts appended at the end.
// The result preserves both streams' internal order — the push-storm
// shape where publishes keep landing while queries are in flight.
func InterleaveEvery(base, inserts []HTTPRequest, every int) []HTTPRequest {
	if every <= 0 {
		every = 1
	}
	out := make([]HTTPRequest, 0, len(base)+len(inserts))
	ins := 0
	for i, r := range base {
		out = append(out, r)
		if (i+1)%every == 0 && ins < len(inserts) {
			out = append(out, inserts[ins])
			ins++
		}
	}
	out = append(out, inserts[ins:]...)
	return out
}
