package workload

import (
	"testing"
	"time"

	"metamess/internal/archive"
	"metamess/internal/catalog"
	"metamess/internal/semdiv"
)

func manifest(t *testing.T, n int, seed int64) *archive.Manifest {
	t.Helper()
	m, err := archive.Generate(t.TempDir(), archive.DefaultGenConfig(n, seed))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestQueriesDeterministicAndJudged(t *testing.T) {
	m := manifest(t, 21, 5)
	a, err := Queries(m, 10, 42, DefaultRelevance(), false)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Queries(m, 10, 42, DefaultRelevance(), false)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 10 || len(b) != 10 {
		t.Fatalf("lens = %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Variable != b[i].Variable || len(a[i].Relevant) != len(b[i].Relevant) {
			t.Errorf("query %d differs between runs", i)
		}
	}
	for i, j := range a {
		if j.Query.Location == nil || j.Query.Time == nil || len(j.Query.Terms) != 1 {
			t.Errorf("query %d incomplete: %+v", i, j.Query)
		}
		// The anchor dataset itself is always relevant.
		if len(j.Relevant) == 0 {
			t.Errorf("query %d has no relevant datasets", i)
		}
	}
}

func TestQueriesUseRawForms(t *testing.T) {
	m := manifest(t, 30, 7)
	js, err := Queries(m, 20, 1, DefaultRelevance(), true)
	if err != nil {
		t.Fatal(err)
	}
	sawMessy := false
	for _, j := range js {
		if j.Query.Terms[0].Name != j.Variable {
			sawMessy = true
		}
		if j.Query.Terms[0].Name != j.RawForm {
			t.Errorf("raw-form query uses %q, want %q", j.Query.Terms[0].Name, j.RawForm)
		}
	}
	if !sawMessy {
		t.Error("no messy raw form in 20 queries at default mess rates")
	}
}

func TestVariableQueriesRelevanceIgnoresSpaceTime(t *testing.T) {
	m := manifest(t, 21, 11)
	js, err := VariableQueries(m, 10, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range js {
		if j.Query.Location != nil || j.Query.Time != nil {
			t.Error("variable-only query has space/time dimensions")
		}
		// Relevance must equal the ground-truth carrier set.
		want := 0
		for _, d := range m.Datasets {
			for _, v := range d.Vars {
				if v.Canonical == j.Variable && v.Category != semdiv.CatExcessive {
					want++
					break
				}
			}
		}
		if len(j.Relevant) != want {
			t.Errorf("variable %s: relevant = %d, want %d", j.Variable, len(j.Relevant), want)
		}
		// Every relevant ID is a valid dataset ID.
		valid := map[string]bool{}
		for _, d := range m.Datasets {
			valid[catalog.IDForPath(d.Path)] = true
		}
		for id := range j.Relevant {
			if !valid[id] {
				t.Errorf("relevant ID %s not in manifest", id)
			}
		}
	}
}

func TestQueriesEmptyManifest(t *testing.T) {
	if _, err := Queries(&archive.Manifest{}, 5, 1, DefaultRelevance(), false); err == nil {
		t.Error("empty manifest accepted")
	}
	if _, err := VariableQueries(&archive.Manifest{}, 5, 1, false); err == nil {
		t.Error("empty manifest accepted by VariableQueries")
	}
}

func TestCorpusDedupes(t *testing.T) {
	m := manifest(t, 30, 13)
	corpus := Corpus(m)
	seen := map[string]bool{}
	for _, ln := range corpus {
		if seen[ln.Raw] {
			t.Errorf("duplicate raw %q in corpus", ln.Raw)
		}
		seen[ln.Raw] = true
		if ln.Canonical == "" {
			t.Errorf("raw %q lacks canonical", ln.Raw)
		}
	}
	if len(corpus) == 0 {
		t.Fatal("empty corpus")
	}
}

func TestRelevanceSpecFiltering(t *testing.T) {
	m := manifest(t, 21, 17)
	loose, err := VariableQueries(m, 5, 9, false)
	if err != nil {
		t.Fatal(err)
	}
	// Tight relevance (1 km, time overlap) is a subset of loose.
	tight, err := Queries(m, 5, 9, RelevanceSpec{MaxKm: 1, RequireTimeOverlap: true}, false)
	if err != nil {
		t.Fatal(err)
	}
	_ = loose
	for _, j := range tight {
		if len(j.Relevant) == 0 {
			t.Error("tight relevance excluded even the anchor dataset")
		}
	}
}

func TestTimeRangeAround(t *testing.T) {
	center := time.Date(2010, 6, 15, 12, 0, 0, 0, time.UTC)
	r := TimeRangeAround(center, 30)
	if !r.Contains(center) {
		t.Error("range misses center")
	}
	if r.Duration() != 30*24*time.Hour {
		t.Errorf("duration = %v", r.Duration())
	}
}

func TestRankedIDsOrder(t *testing.T) {
	if got := RankedIDs(nil); len(got) != 0 {
		t.Error("nil results should produce empty ids")
	}
}
