package workload

import (
	"fmt"
	"math/rand"
	"net/url"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"
)

// This file generates overload-shaped traffic: zipfian key popularity
// (a few queries dominate, a long tail stays cold — the distribution
// that exercises both the cache and the singleflight), burst and ramp
// arrival schedules for open-loop replay, and a hostile request mix
// drawn from the fuzz corpora (parser-breaking inputs a public endpoint
// will eventually receive).

// ZipfIndices returns total indices in [0, n) with zipfian popularity:
// index 0 is the most popular, s > 1 steepens the skew. Deterministic
// for a seed. The draws are shuffled-free — raw rand.Zipf order — so
// repeats of a popular index cluster naturally, the arrival pattern
// that makes singleflight collapsing observable.
func ZipfIndices(total, n int, s float64, seed int64) []int {
	if n <= 0 || total <= 0 {
		return nil
	}
	if s <= 1 {
		s = 1.2
	}
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, s, 1, uint64(n-1))
	out := make([]int, total)
	for i := range out {
		out[i] = int(z.Uint64())
	}
	return out
}

// Rebase returns a copy of reqs with each URL's oldBase prefix swapped
// for newBase — one node's request set replayed against another (e.g.
// a leader-derived query pool aimed at its read replica). URLs outside
// oldBase are kept as-is.
func Rebase(reqs []HTTPRequest, oldBase, newBase string) []HTTPRequest {
	out := make([]HTTPRequest, len(reqs))
	for i, r := range reqs {
		if strings.HasPrefix(r.URL, oldBase) {
			r.URL = newBase + strings.TrimPrefix(r.URL, oldBase)
		}
		out[i] = r
	}
	return out
}

// SteadyArrivals returns n offsets at a constant qps — the open-loop
// baseline schedule.
func SteadyArrivals(n int, qps float64) []time.Duration {
	if n <= 0 || qps <= 0 {
		return nil
	}
	gap := time.Duration(float64(time.Second) / qps)
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = time.Duration(i) * gap
	}
	return out
}

// BurstArrivals returns n offsets averaging qps, released in bursts of
// burst simultaneous requests: every burst lands at one instant, and
// bursts are spaced to preserve the average rate. Bursts are what
// overflow a bounded admission queue — a steady schedule at the same
// average rate may never shed.
func BurstArrivals(n, burst int, qps float64) []time.Duration {
	if n <= 0 || qps <= 0 {
		return nil
	}
	if burst <= 1 {
		return SteadyArrivals(n, qps)
	}
	period := time.Duration(float64(burst) / qps * float64(time.Second))
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = time.Duration(i/burst) * period
	}
	return out
}

// RampArrivals returns n offsets whose instantaneous rate grows
// linearly from startQPS to endQPS — the pattern of a traffic shift
// landing on an instance, where the interesting question is when (not
// whether) shedding starts.
func RampArrivals(n int, startQPS, endQPS float64) []time.Duration {
	if n <= 0 || startQPS <= 0 || endQPS <= 0 {
		return nil
	}
	out := make([]time.Duration, n)
	t := 0.0
	for i := range out {
		out[i] = time.Duration(t * float64(time.Second))
		frac := 0.0
		if n > 1 {
			frac = float64(i) / float64(n-1)
		}
		rate := startQPS + (endQPS-startQPS)*frac
		t += 1 / rate
	}
	return out
}

// CorpusStrings extracts the string-typed inputs from a `go test fuzz
// v1` corpus directory: one file per case, each value line shaped like
// string("...") or []byte("..."). Unparsable lines are skipped — the
// corpus only has to yield hostile bytes, not parse perfectly.
func CorpusStrings(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("workload: corpus %s: %w", dir, err)
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			continue
		}
		for _, line := range strings.Split(string(raw), "\n") {
			line = strings.TrimSpace(line)
			var lit string
			switch {
			case strings.HasPrefix(line, "string(") && strings.HasSuffix(line, ")"):
				lit = line[len("string(") : len(line)-1]
			case strings.HasPrefix(line, "[]byte(") && strings.HasSuffix(line, ")"):
				lit = line[len("[]byte(") : len(line)-1]
			default:
				continue
			}
			if s, err := strconv.Unquote(lit); err == nil {
				out = append(out, s)
			}
		}
	}
	return out, nil
}

// HostileTextRequests builds n GET /search/text requests whose q values
// are drawn (seeded, with replacement) from the corpus strings — the
// abuse mix for the no-5xx invariant. Most will be rejected with 400;
// none may crash or 500 the server.
func HostileTextRequests(base string, corpus []string, n int, seed int64) []HTTPRequest {
	if len(corpus) == 0 || n <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]HTTPRequest, n)
	for i := range out {
		q := corpus[rng.Intn(len(corpus))]
		out[i] = HTTPRequest{
			Method: "GET",
			URL:    base + "/search/text?q=" + url.QueryEscape(q),
		}
	}
	return out
}
