package workload

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestZipfIndicesSkewAndDeterminism(t *testing.T) {
	const total, n = 5000, 100
	a := ZipfIndices(total, n, 1.2, 7)
	b := ZipfIndices(total, n, 1.2, 7)
	if len(a) != total {
		t.Fatalf("len = %d, want %d", len(a), total)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %d vs %d", i, a[i], b[i])
		}
		if a[i] < 0 || a[i] >= n {
			t.Fatalf("index %d out of [0,%d)", a[i], n)
		}
	}
	counts := make([]int, n)
	for _, idx := range a {
		counts[idx]++
	}
	// Zipfian skew: the most popular key dominates any tail key, and the
	// head outweighs a uniform share many times over.
	if counts[0] < 5*total/n {
		t.Errorf("head count %d, want well above the uniform share %d", counts[0], total/n)
	}
	tail := 0
	for _, c := range counts[n/2:] {
		tail += c
	}
	if tail >= counts[0] {
		t.Errorf("tail half (%d draws) outweighs the head key (%d)", tail, counts[0])
	}

	if got := ZipfIndices(0, 10, 1.2, 1); got != nil {
		t.Errorf("total 0: got %v", got)
	}
	if got := ZipfIndices(10, 0, 1.2, 1); got != nil {
		t.Errorf("n 0: got %v", got)
	}
}

func TestArrivalSchedules(t *testing.T) {
	steady := SteadyArrivals(4, 100)
	want := []time.Duration{0, 10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond}
	for i := range want {
		if steady[i] != want[i] {
			t.Errorf("steady[%d] = %v, want %v", i, steady[i], want[i])
		}
	}

	burst := BurstArrivals(8, 4, 100)
	// Bursts of 4 at 100 qps: offsets 0,0,0,0 then 40ms x4 — same span,
	// same average rate, released in slabs.
	for i, wantOff := range []time.Duration{0, 0, 0, 0, 40 * time.Millisecond, 40 * time.Millisecond, 40 * time.Millisecond, 40 * time.Millisecond} {
		if burst[i] != wantOff {
			t.Errorf("burst[%d] = %v, want %v", i, burst[i], wantOff)
		}
	}

	ramp := RampArrivals(100, 50, 500)
	if ramp[0] != 0 {
		t.Errorf("ramp[0] = %v, want 0", ramp[0])
	}
	for i := 1; i < len(ramp); i++ {
		if ramp[i] <= ramp[i-1] {
			t.Fatalf("ramp not strictly increasing at %d: %v then %v", i, ramp[i-1], ramp[i])
		}
	}
	// Accelerating arrivals: the last quarter takes less wall time than
	// the first quarter.
	first := ramp[25] - ramp[0]
	last := ramp[99] - ramp[74]
	if last >= first {
		t.Errorf("ramp last quarter (%v) not faster than first (%v)", last, first)
	}
}

func TestCorpusStringsReadsFuzzCorpora(t *testing.T) {
	got, err := CorpusStrings("../scan/testdata/fuzz/FuzzScanParsers")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("no strings extracted from the scan fuzz corpus")
	}
	found := false
	for _, s := range got {
		if s == "csv" {
			found = true
		}
	}
	if !found {
		t.Errorf("expected the csv format tag among corpus strings, got %d strings", len(got))
	}
	if _, err := CorpusStrings("no/such/dir"); err == nil {
		t.Error("missing dir: want error")
	}
}

func TestHostileTextRequestsShape(t *testing.T) {
	reqs := HostileTextRequests("http://x", []string{"a b", `"; DROP`}, 10, 3)
	if len(reqs) != 10 {
		t.Fatalf("len = %d, want 10", len(reqs))
	}
	for _, r := range reqs {
		if r.Method != http.MethodGet {
			t.Errorf("method %q", r.Method)
		}
		const prefix = "http://x/search/text?q="
		if len(r.URL) <= len(prefix) || r.URL[:len(prefix)] != prefix {
			t.Errorf("url %q", r.URL)
		}
	}
	if HostileTextRequests("http://x", nil, 10, 3) != nil {
		t.Error("empty corpus: want nil")
	}
}

// TestReplayOpenLoop drives the open-loop path: arrivals dispatch on
// schedule regardless of completion, per-status and per-cache-state
// counts land in the stats, and 429s are sheds, not errors.
func TestReplayOpenLoop(t *testing.T) {
	var n atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		i := n.Add(1)
		switch {
		case i%3 == 0:
			w.Header().Set("Retry-After", "1")
			http.Error(w, "overloaded", http.StatusTooManyRequests)
		case i%3 == 1:
			w.Header().Set("X-Dnhd-Cache", "hit")
			w.Write([]byte(`{"ok":true}`))
		default:
			w.Header().Set("X-Dnhd-Cache", "collapsed")
			w.Header().Set("X-Dnhd-Partial", "1")
			w.Write([]byte(`{"ok":true,"partial":true}`))
		}
	}))
	defer ts.Close()

	const total = 30
	reqs := make([]HTTPRequest, total)
	for i := range reqs {
		reqs[i] = HTTPRequest{Method: http.MethodGet, URL: ts.URL, Header: map[string]string{"X-Test": "1"}}
	}
	stats, err := Replay(context.Background(), reqs, LoadOptions{Arrivals: BurstArrivals(total, 5, 2000)})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Requests != total {
		t.Errorf("requests = %d, want %d", stats.Requests, total)
	}
	if stats.Errors != 0 {
		t.Errorf("errors = %d, want 0 (429 is a shed, not an error)", stats.Errors)
	}
	if stats.Status.Shed429 != total/3 {
		t.Errorf("shed = %d, want %d", stats.Status.Shed429, total/3)
	}
	if stats.Status.OK2xx != total-total/3 {
		t.Errorf("2xx = %d, want %d", stats.Status.OK2xx, total-total/3)
	}
	if stats.ShedRate <= 0 || stats.ShedRate >= 1 {
		t.Errorf("shedRate = %v, want in (0,1)", stats.ShedRate)
	}
	if stats.CacheStates["hit"] == 0 || stats.CacheStates["collapsed"] == 0 {
		t.Errorf("cache states = %v, want hit and collapsed counted", stats.CacheStates)
	}
	if stats.Partials == 0 {
		t.Errorf("partials = %d, want > 0", stats.Partials)
	}
	if stats.AdmittedP99Ms <= 0 || stats.ShedP50Ms <= 0 {
		t.Errorf("latency splits: admittedP99=%v shedP50=%v, want > 0", stats.AdmittedP99Ms, stats.ShedP50Ms)
	}
	if stats.OfferedQPS <= 0 {
		t.Errorf("offeredQPS = %v, want > 0", stats.OfferedQPS)
	}
}

func TestReplayArrivalsLengthMismatch(t *testing.T) {
	reqs := []HTTPRequest{{Method: http.MethodGet, URL: "http://127.0.0.1:1"}}
	if _, err := Replay(context.Background(), reqs, LoadOptions{Arrivals: make([]time.Duration, 2)}); err == nil {
		t.Fatal("mismatched arrivals: want error")
	}
}

func TestRebaseSwapsURLPrefix(t *testing.T) {
	reqs := []HTTPRequest{
		{Method: http.MethodPost, URL: "http://leader:8080/search", Body: []byte(`{}`)},
		{Method: http.MethodGet, URL: "http://leader:8080/search/text?q=x"},
		{Method: http.MethodGet, URL: "http://elsewhere:9/healthz"},
	}
	out := Rebase(reqs, "http://leader:8080", "http://replica:8081")
	if out[0].URL != "http://replica:8081/search" || out[1].URL != "http://replica:8081/search/text?q=x" {
		t.Errorf("rebased URLs = %q, %q", out[0].URL, out[1].URL)
	}
	if out[2].URL != "http://elsewhere:9/healthz" {
		t.Errorf("foreign URL rewritten: %q", out[2].URL)
	}
	// The originals are untouched and the bodies ride along.
	if reqs[0].URL != "http://leader:8080/search" {
		t.Error("Rebase mutated its input")
	}
	if string(out[0].Body) != `{}` || out[0].Method != http.MethodPost {
		t.Error("Rebase dropped method or body")
	}
}
