// Package workload generates the query workloads and ground-truth
// relevance judgements the experiments score against. Relevance is
// computed from the archive generator's manifest, not from the system
// under test: a dataset is relevant to a query when its ground truth
// says it carries the queried canonical variable and its true spatial
// and temporal extents fall within the query's tolerances.
package workload

import (
	"fmt"
	"math/rand"
	"time"

	"metamess/internal/archive"
	"metamess/internal/catalog"
	"metamess/internal/geo"
	"metamess/internal/search"
	"metamess/internal/semdiv"
)

// RelevanceSpec defines when a dataset counts as relevant to a query.
type RelevanceSpec struct {
	// MaxKm is the largest center-to-center distance still relevant.
	MaxKm float64
	// RequireTimeOverlap demands the dataset's true time range overlap
	// the query's.
	RequireTimeOverlap bool
}

// DefaultRelevance matches the experiment setup: within 20 km and
// overlapping in time.
func DefaultRelevance() RelevanceSpec {
	return RelevanceSpec{MaxKm: 20, RequireTimeOverlap: true}
}

// Judged pairs a query with its ground-truth relevant dataset IDs.
type Judged struct {
	Query    search.Query
	Relevant map[string]bool
	// Variable is the canonical variable the query asks for.
	Variable string
	// RawForm is the (possibly messy) surface form used as the query
	// term; equals Variable for clean queries.
	RawForm string
}

// Queries derives n judged queries from a manifest. Each query anchors
// on a randomly chosen dataset: its centroid, its time range, and one of
// its variables (queried by canonical name, or by a messy raw form when
// useRawForms is set — the workload that shows why wrangling matters).
func Queries(m *archive.Manifest, n int, seed int64, spec RelevanceSpec, useRawForms bool) ([]Judged, error) {
	if len(m.Datasets) == 0 {
		return nil, fmt.Errorf("workload: empty manifest")
	}
	rng := rand.New(rand.NewSource(seed))
	var out []Judged
	for attempts := 0; len(out) < n && attempts < n*20; attempts++ {
		d := m.Datasets[rng.Intn(len(m.Datasets))]
		// Pick a non-excessive variable.
		var candidates []archive.VarTruth
		for _, v := range d.Vars {
			if v.Category != semdiv.CatExcessive {
				candidates = append(candidates, v)
			}
		}
		if len(candidates) == 0 {
			continue
		}
		vt := candidates[rng.Intn(len(candidates))]
		center := d.BBox.Center()
		tr := d.Time
		q := search.Query{
			Location: &center,
			Time:     &tr,
			K:        10,
		}
		term := vt.Canonical
		if useRawForms {
			term = vt.Raw
		}
		q.Terms = []search.Term{{Name: term}}

		relevant := relevantSet(m, vt.Canonical, center, tr, spec)
		out = append(out, Judged{
			Query:    q,
			Relevant: relevant,
			Variable: vt.Canonical,
			RawForm:  vt.Raw,
		})
	}
	if len(out) < n {
		return nil, fmt.Errorf("workload: only derived %d of %d queries", len(out), n)
	}
	return out, nil
}

// VariableQueries derives n judged variable-only queries: no location or
// time dimension, so a dataset can only be found through its variable
// names. Relevance is every dataset carrying the canonical variable, and
// K admits the whole catalog — the workload that exposes how messy names
// hide data from exact matching.
func VariableQueries(m *archive.Manifest, n int, seed int64, useRawForms bool) ([]Judged, error) {
	if len(m.Datasets) == 0 {
		return nil, fmt.Errorf("workload: empty manifest")
	}
	rng := rand.New(rand.NewSource(seed))
	var out []Judged
	for attempts := 0; len(out) < n && attempts < n*20; attempts++ {
		d := m.Datasets[rng.Intn(len(m.Datasets))]
		var candidates []archive.VarTruth
		for _, v := range d.Vars {
			if v.Category != semdiv.CatExcessive {
				candidates = append(candidates, v)
			}
		}
		if len(candidates) == 0 {
			continue
		}
		vt := candidates[rng.Intn(len(candidates))]
		term := vt.Canonical
		if useRawForms {
			term = vt.Raw
		}
		out = append(out, Judged{
			Query: search.Query{
				Terms: []search.Term{{Name: term}},
				K:     len(m.Datasets),
			},
			Relevant: relevantSet(m, vt.Canonical, geo.Point{}, geo.TimeRange{},
				RelevanceSpec{MaxKm: 0, RequireTimeOverlap: false}),
			Variable: vt.Canonical,
			RawForm:  vt.Raw,
		})
	}
	if len(out) < n {
		return nil, fmt.Errorf("workload: only derived %d of %d queries", len(out), n)
	}
	return out, nil
}

// relevantSet computes ground-truth relevance from the manifest.
func relevantSet(m *archive.Manifest, canonical string, center geo.Point,
	tr geo.TimeRange, spec RelevanceSpec) map[string]bool {
	out := make(map[string]bool)
	for _, d := range m.Datasets {
		has := false
		for _, v := range d.Vars {
			if v.Canonical == canonical && v.Category != semdiv.CatExcessive {
				has = true
				break
			}
		}
		if !has {
			continue
		}
		if spec.MaxKm > 0 && geo.HaversineKm(d.BBox.Center(), center) > spec.MaxKm {
			continue
		}
		if spec.RequireTimeOverlap && !d.Time.Overlaps(tr) {
			continue
		}
		out[catalog.IDForPath(d.Path)] = true
	}
	return out
}

// RankedIDs extracts the dataset IDs of a result list, in rank order.
func RankedIDs(results []search.Result) []string {
	out := make([]string, len(results))
	for i, r := range results {
		out[i] = r.Feature.ID
	}
	return out
}

// MessyNameCorpus derives the flat classification corpus for the Table-1
// experiment from a manifest: every (raw name, true category) pair.
type LabeledName struct {
	Raw      string
	Category semdiv.Category
	// Canonical is the ground-truth resolution.
	Canonical string
}

// Corpus extracts the labeled names of a manifest, de-duplicated by raw
// form (first truth wins, matching Manifest.CanonicalFor).
func Corpus(m *archive.Manifest) []LabeledName {
	seen := make(map[string]bool)
	var out []LabeledName
	for _, d := range m.Datasets {
		for _, v := range d.Vars {
			if seen[v.Raw] {
				continue
			}
			seen[v.Raw] = true
			out = append(out, LabeledName{Raw: v.Raw, Category: v.Category, Canonical: v.Canonical})
		}
	}
	return out
}

// TimeRangeAround is a convenience for example programs: the n-day range
// centred on a date.
func TimeRangeAround(center time.Time, days int) geo.TimeRange {
	half := time.Duration(days) * 24 * time.Hour / 2
	return geo.NewTimeRange(center.Add(-half), center.Add(half))
}
