// Load-generator tests live in an external test package so they can
// replay against the real serving handler (internal/server depends on
// the metamess facade, which the workload package itself must stay
// importable from).
package workload_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"metamess"
	"metamess/internal/archive"
	"metamess/internal/server"
	"metamess/internal/workload"
)

func newHandler(t *testing.T, n int, seed int64) (*httptest.Server, *archive.Manifest) {
	t.Helper()
	root := t.TempDir()
	m, err := archive.Generate(root, archive.DefaultGenConfig(n, seed))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := metamess.New(metamess.Config{ArchiveRoot: root})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Wrangle(); err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{Sys: sys})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, m
}

func TestReplayAgainstServer(t *testing.T) {
	ts, m := newHandler(t, 20, 21)
	judged, err := workload.Queries(m, 10, 23, workload.DefaultRelevance(), false)
	if err != nil {
		t.Fatal(err)
	}
	var reqs []workload.HTTPRequest
	for _, j := range judged {
		body, err := json.Marshal(server.RequestFromQuery(j.Query))
		if err != nil {
			t.Fatal(err)
		}
		reqs = append(reqs, workload.HTTPRequest{Method: http.MethodPost, URL: ts.URL + "/search", Body: body})
	}
	// Repeat the whole set so the second pass hits the cache.
	reqs = append(reqs, reqs...)

	stats, err := workload.Replay(context.Background(), reqs, workload.LoadOptions{Concurrency: 4})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Requests != len(reqs) {
		t.Errorf("requests = %d, want %d", stats.Requests, len(reqs))
	}
	if stats.Errors != 0 {
		t.Errorf("errors = %d", stats.Errors)
	}
	if stats.QPS <= 0 || stats.DurationSec <= 0 {
		t.Errorf("throughput malformed: %+v", stats)
	}
	if stats.P50Ms <= 0 || stats.P50Ms > stats.P99Ms || stats.P99Ms > stats.MaxMs {
		t.Errorf("percentiles malformed: %+v", stats)
	}
	if stats.CacheHits == 0 {
		t.Errorf("no cache hits across a repeated workload: %+v", stats)
	}
	if stats.CacheHits+stats.CacheMisses != stats.Requests {
		t.Errorf("cache headers %d+%d do not cover %d requests",
			stats.CacheHits, stats.CacheMisses, stats.Requests)
	}
}

func TestReplayCountsErrors(t *testing.T) {
	ts, _ := newHandler(t, 10, 25)
	reqs := []workload.HTTPRequest{
		{Method: http.MethodGet, URL: ts.URL + "/search/text?q=with+temperature"},
		{Method: http.MethodPost, URL: ts.URL + "/search", Body: []byte("{not json")},
		{Method: http.MethodGet, URL: ts.URL + "/no/such/endpoint"},
	}
	stats, err := workload.Replay(context.Background(), reqs, workload.LoadOptions{Concurrency: 2})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Requests != 3 || stats.Errors != 2 {
		t.Errorf("requests/errors = %d/%d, want 3/2", stats.Requests, stats.Errors)
	}
}

func TestReplayHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	reqs := make([]workload.HTTPRequest, 50)
	for i := range reqs {
		reqs[i] = workload.HTTPRequest{Method: http.MethodGet, URL: "http://127.0.0.1:0/"}
	}
	if _, err := workload.Replay(ctx, reqs, workload.LoadOptions{Concurrency: 2, Timeout: time.Second}); err == nil {
		t.Error("canceled replay returned nil error")
	}
}

func TestReplayRejectsEmpty(t *testing.T) {
	if _, err := workload.Replay(context.Background(), nil, workload.LoadOptions{}); err == nil {
		t.Error("empty replay returned nil error")
	}
}
