package workload

import (
	"bytes"
	"encoding/json"
	"testing"

	"metamess/internal/catalog"
)

func TestPublishRequestsDeterministicAndValid(t *testing.T) {
	a, err := PublishRequests("http://x", 3, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PublishRequests("http://x", 3, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 3 {
		t.Fatalf("got %d requests, want 3", len(a))
	}
	seen := make(map[string]bool)
	for i := range a {
		if a[i].Method != "POST" || a[i].URL != "http://x/publish" {
			t.Errorf("request %d: %s %s", i, a[i].Method, a[i].URL)
		}
		if !bytes.Equal(a[i].Body, b[i].Body) {
			t.Errorf("request %d not deterministic", i)
		}
		var wire struct {
			Features []*catalog.Feature `json:"features"`
		}
		if err := json.Unmarshal(a[i].Body, &wire); err != nil {
			t.Fatalf("request %d body: %v", i, err)
		}
		if len(wire.Features) != 4 {
			t.Fatalf("request %d: %d features, want 4", i, len(wire.Features))
		}
		for _, f := range wire.Features {
			if err := f.Validate(); err != nil {
				t.Errorf("request %d: invalid feature: %v", i, err)
			}
			if seen[f.Path] {
				t.Errorf("path %s repeats across batches — publishes would be no-ops", f.Path)
			}
			seen[f.Path] = true
		}
	}
	if _, err := PublishRequests("http://x", 0, 4, 9); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestInterleaveEvery(t *testing.T) {
	q := func(u string) HTTPRequest { return HTTPRequest{Method: "GET", URL: u} }
	base := []HTTPRequest{q("a"), q("b"), q("c"), q("d"), q("e")}
	ins := []HTTPRequest{q("P1"), q("P2"), q("P3")}
	got := InterleaveEvery(base, ins, 2)
	want := []string{"a", "b", "P1", "c", "d", "P2", "e", "P3"}
	if len(got) != len(want) {
		t.Fatalf("got %d requests, want %d", len(got), len(want))
	}
	for i, w := range want {
		if got[i].URL != w {
			t.Errorf("position %d: %s, want %s", i, got[i].URL, w)
		}
	}
	if got := InterleaveEvery(nil, ins, 2); len(got) != len(ins) {
		t.Errorf("empty base: %d requests, want %d", len(got), len(ins))
	}
}
