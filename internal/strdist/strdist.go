// Package strdist implements the string distance and similarity measures
// used by nearest-neighbour transformation discovery: Levenshtein,
// Damerau-Levenshtein (optimal string alignment), Jaro, and Jaro-Winkler.
//
// All distances operate on Unicode code points, not bytes, so that
// variable names with non-ASCII characters are measured sensibly.
package strdist

import "unicode/utf8"

// Levenshtein returns the edit distance between a and b: the minimum
// number of single-rune insertions, deletions, and substitutions needed
// to transform one into the other.
func Levenshtein(a, b string) int {
	ra, rb := runes(a), runes(b)
	la, lb := len(ra), len(rb)
	if la == 0 {
		return lb
	}
	if lb == 0 {
		return la
	}
	// Single-row dynamic program; prev tracks the diagonal.
	row := make([]int, lb+1)
	for j := range row {
		row[j] = j
	}
	for i := 1; i <= la; i++ {
		prev := row[0]
		row[0] = i
		for j := 1; j <= lb; j++ {
			cur := row[j]
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			row[j] = min3(row[j]+1, row[j-1]+1, prev+cost)
			prev = cur
		}
	}
	return row[lb]
}

// DamerauLevenshtein returns the optimal-string-alignment distance: like
// Levenshtein but also counting transposition of adjacent runes as one
// edit. ("air_temperatrue" is distance 1 from "air_temperature".)
func DamerauLevenshtein(a, b string) int {
	ra, rb := runes(a), runes(b)
	la, lb := len(ra), len(rb)
	if la == 0 {
		return lb
	}
	if lb == 0 {
		return la
	}
	d := make([][]int, la+1)
	for i := range d {
		d[i] = make([]int, lb+1)
		d[i][0] = i
	}
	for j := 0; j <= lb; j++ {
		d[0][j] = j
	}
	for i := 1; i <= la; i++ {
		for j := 1; j <= lb; j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			d[i][j] = min3(d[i-1][j]+1, d[i][j-1]+1, d[i-1][j-1]+cost)
			if i > 1 && j > 1 && ra[i-1] == rb[j-2] && ra[i-2] == rb[j-1] {
				if t := d[i-2][j-2] + 1; t < d[i][j] {
					d[i][j] = t
				}
			}
		}
	}
	return d[la][lb]
}

// LevenshteinSimilarity maps the Levenshtein distance into [0,1], where 1
// means identical strings and 0 means nothing in common.
func LevenshteinSimilarity(a, b string) float64 {
	la, lb := utf8.RuneCountInString(a), utf8.RuneCountInString(b)
	longest := la
	if lb > longest {
		longest = lb
	}
	if longest == 0 {
		return 1
	}
	return 1 - float64(Levenshtein(a, b))/float64(longest)
}

// Jaro returns the Jaro similarity in [0,1].
func Jaro(a, b string) float64 {
	ra, rb := runes(a), runes(b)
	la, lb := len(ra), len(rb)
	if la == 0 && lb == 0 {
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	window := max2(la, lb)/2 - 1
	if window < 0 {
		window = 0
	}
	matchedA := make([]bool, la)
	matchedB := make([]bool, lb)
	matches := 0
	for i := 0; i < la; i++ {
		lo := max2(0, i-window)
		hi := min2(lb-1, i+window)
		for j := lo; j <= hi; j++ {
			if matchedB[j] || ra[i] != rb[j] {
				continue
			}
			matchedA[i] = true
			matchedB[j] = true
			matches++
			break
		}
	}
	if matches == 0 {
		return 0
	}
	// Count transpositions among matched runes.
	transpositions := 0
	j := 0
	for i := 0; i < la; i++ {
		if !matchedA[i] {
			continue
		}
		for !matchedB[j] {
			j++
		}
		if ra[i] != rb[j] {
			transpositions++
		}
		j++
	}
	m := float64(matches)
	return (m/float64(la) + m/float64(lb) + (m-float64(transpositions)/2)/m) / 3
}

// JaroWinkler returns the Jaro-Winkler similarity in [0,1], boosting
// strings that share a common prefix (up to 4 runes) with the standard
// scaling factor 0.1.
func JaroWinkler(a, b string) float64 {
	j := Jaro(a, b)
	prefix := 0
	ra, rb := runes(a), runes(b)
	for prefix < len(ra) && prefix < len(rb) && prefix < 4 && ra[prefix] == rb[prefix] {
		prefix++
	}
	return j + float64(prefix)*0.1*(1-j)
}

func runes(s string) []rune { return []rune(s) }

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min3(a, b, c int) int { return min2(min2(a, b), c) }
