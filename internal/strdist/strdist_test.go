package strdist

import (
	"testing"
	"testing/quick"
	"unicode/utf8"
)

func TestLevenshteinBasics(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"", "abc", 3},
		{"abc", "", 3},
		{"abc", "abc", 0},
		{"kitten", "sitting", 3},
		{"air_temperature", "air_temperatrue", 2}, // transposition = 2 plain edits
		{"airtemp", "air_temp", 1},
		{"temp", "temperature", 7},
		{"flaw", "lawn", 2},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLevenshteinUnicode(t *testing.T) {
	if got := Levenshtein("tempé", "tempe"); got != 1 {
		t.Errorf("unicode distance = %d, want 1", got)
	}
	if got := Levenshtein("日本語", "日本"); got != 1 {
		t.Errorf("CJK distance = %d, want 1", got)
	}
}

func TestDamerauTransposition(t *testing.T) {
	if got := DamerauLevenshtein("air_temperature", "air_temperatrue"); got != 1 {
		t.Errorf("Damerau transposition = %d, want 1", got)
	}
	if got := DamerauLevenshtein("abc", "acb"); got != 1 {
		t.Errorf("abc->acb = %d, want 1", got)
	}
	// Damerau is never greater than plain Levenshtein.
	pairs := [][2]string{{"salinity", "salinty"}, {"oxygen", "oxygne"}, {"ph", "hp"}}
	for _, p := range pairs {
		if d, l := DamerauLevenshtein(p[0], p[1]), Levenshtein(p[0], p[1]); d > l {
			t.Errorf("Damerau(%q,%q)=%d > Levenshtein=%d", p[0], p[1], d, l)
		}
	}
}

func TestLevenshteinProperties(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 40 {
			a = a[:40]
		}
		if len(b) > 40 {
			b = b[:40]
		}
		d := Levenshtein(a, b)
		// Symmetry.
		if d != Levenshtein(b, a) {
			return false
		}
		// Identity of indiscernibles.
		if (d == 0) != (a == b) {
			return false
		}
		// Upper bound: length of the longer string.
		la, lb := utf8.RuneCountInString(a), utf8.RuneCountInString(b)
		longest := la
		if lb > longest {
			longest = lb
		}
		// Lower bound: difference in lengths.
		diff := la - lb
		if diff < 0 {
			diff = -diff
		}
		return d >= diff && d <= longest
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLevenshteinTriangleInequality(t *testing.T) {
	f := func(a, b, c string) bool {
		if len(a) > 20 {
			a = a[:20]
		}
		if len(b) > 20 {
			b = b[:20]
		}
		if len(c) > 20 {
			c = c[:20]
		}
		return Levenshtein(a, c) <= Levenshtein(a, b)+Levenshtein(b, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLevenshteinSimilarityRange(t *testing.T) {
	if s := LevenshteinSimilarity("", ""); s != 1 {
		t.Errorf("sim(\"\",\"\") = %g, want 1", s)
	}
	if s := LevenshteinSimilarity("abc", "abc"); s != 1 {
		t.Errorf("identical sim = %g, want 1", s)
	}
	if s := LevenshteinSimilarity("abc", "xyz"); s != 0 {
		t.Errorf("disjoint sim = %g, want 0", s)
	}
	s := LevenshteinSimilarity("air_temperature", "air_temperatrue")
	if s <= 0.8 || s >= 1 {
		t.Errorf("near-miss sim = %g, want in (0.8,1)", s)
	}
}

func TestJaroKnownValues(t *testing.T) {
	// Classic textbook values.
	cases := []struct {
		a, b string
		want float64
		tol  float64
	}{
		{"MARTHA", "MARHTA", 0.9444, 0.001},
		{"DIXON", "DICKSONX", 0.7667, 0.001},
		{"JELLYFISH", "SMELLYFISH", 0.8962, 0.001},
		{"", "", 1, 0},
		{"a", "", 0, 0},
		{"same", "same", 1, 0},
	}
	for _, c := range cases {
		got := Jaro(c.a, c.b)
		if diff := got - c.want; diff > c.tol || diff < -c.tol {
			t.Errorf("Jaro(%q,%q) = %.4f, want %.4f", c.a, c.b, got, c.want)
		}
	}
}

func TestJaroWinklerPrefixBoost(t *testing.T) {
	// Winkler boosts shared prefixes, so JW >= Jaro always.
	pairs := [][2]string{
		{"air_temperature", "air_temp"},
		{"salinity", "salinty"},
		{"MARTHA", "MARHTA"},
	}
	for _, p := range pairs {
		j, jw := Jaro(p[0], p[1]), JaroWinkler(p[0], p[1])
		if jw < j {
			t.Errorf("JaroWinkler(%q,%q)=%g < Jaro=%g", p[0], p[1], jw, j)
		}
	}
	// A shared-prefix pair should beat a same-Jaro pair without prefix.
	withPrefix := JaroWinkler("temperature", "temperatura")
	if withPrefix < 0.9 {
		t.Errorf("prefixed pair JW = %g, want >= 0.9", withPrefix)
	}
}

func TestJaroWinklerBounds(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 30 {
			a = a[:30]
		}
		if len(b) > 30 {
			b = b[:30]
		}
		s := JaroWinkler(a, b)
		return s >= 0 && s <= 1 && s == JaroWinkler(b, a) == (JaroWinkler(a, b) == JaroWinkler(b, a))
	}
	// The composite condition above simplifies to bounds + symmetry.
	g := func(a, b string) bool {
		if len(a) > 30 {
			a = a[:30]
		}
		if len(b) > 30 {
			b = b[:30]
		}
		s := JaroWinkler(a, b)
		return s >= 0 && s <= 1.0000001 && s == JaroWinkler(b, a)
	}
	_ = f
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkLevenshtein(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Levenshtein("water_temperature_near_surface", "water_temperatrue_near_surface")
	}
}

func BenchmarkJaroWinkler(b *testing.B) {
	for i := 0; i < b.N; i++ {
		JaroWinkler("water_temperature_near_surface", "water_temperatrue_near_surface")
	}
}
