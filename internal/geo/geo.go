// Package geo provides the geospatial and temporal primitives used by the
// metadata catalog and the ranked search engine: points, bounding boxes,
// great-circle distances, and time intervals with distance semantics.
//
// "Data Near Here" ranks datasets by how far their spatial and temporal
// extents lie from the query terms, so every type here exposes a Distance
// method returning a non-negative separation (zero when overlapping or
// containing) that the scorer normalizes into a similarity.
package geo

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"time"
)

// EarthRadiusKm is the mean Earth radius used for great-circle distances.
const EarthRadiusKm = 6371.0088

// Point is a WGS84 coordinate in decimal degrees.
type Point struct {
	Lat float64 `json:"lat"`
	Lon float64 `json:"lon"`
}

// Valid reports whether the point lies within the legal lat/lon domain.
func (p Point) Valid() bool {
	return p.Lat >= -90 && p.Lat <= 90 && p.Lon >= -180 && p.Lon <= 180 &&
		!math.IsNaN(p.Lat) && !math.IsNaN(p.Lon)
}

// String formats the point as "lat,lon" with 5-decimal precision (~1 m).
func (p Point) String() string {
	return fmt.Sprintf("%.5f,%.5f", p.Lat, p.Lon)
}

// HaversineKm returns the great-circle distance between two points in km.
func HaversineKm(a, b Point) float64 {
	const degToRad = math.Pi / 180
	lat1 := a.Lat * degToRad
	lat2 := b.Lat * degToRad
	dLat := (b.Lat - a.Lat) * degToRad
	dLon := (b.Lon - a.Lon) * degToRad
	sinLat := math.Sin(dLat / 2)
	sinLon := math.Sin(dLon / 2)
	h := sinLat*sinLat + math.Cos(lat1)*math.Cos(lat2)*sinLon*sinLon
	if h > 1 {
		h = 1
	}
	return 2 * EarthRadiusKm * math.Asin(math.Sqrt(h))
}

// BBox is an axis-aligned geographic bounding box. Boxes never wrap the
// antimeridian; archive generators in this repository do not produce
// wrapping extents, and queries that would wrap are split by callers.
type BBox struct {
	MinLat float64 `json:"minLat"`
	MinLon float64 `json:"minLon"`
	MaxLat float64 `json:"maxLat"`
	MaxLon float64 `json:"maxLon"`
}

// ErrEmptyBBox is returned when an operation needs a non-empty box.
var ErrEmptyBBox = errors.New("geo: empty bounding box")

// MarshalJSON renders an empty box as null: the empty sentinel's ±Inf
// bounds are unrepresentable in JSON, and without this every feature
// lacking a spatial extent would poison catalog persistence (the
// sharded Save→Load round-trip test caught exactly that).
func (b BBox) MarshalJSON() ([]byte, error) {
	if b.IsEmpty() {
		return []byte("null"), nil
	}
	type plain BBox
	return json.Marshal(plain(b))
}

// UnmarshalJSON restores null to the canonical empty box.
func (b *BBox) UnmarshalJSON(data []byte) error {
	if string(data) == "null" {
		*b = EmptyBBox()
		return nil
	}
	type plain BBox
	var p plain
	if err := json.Unmarshal(data, &p); err != nil {
		return err
	}
	*b = BBox(p)
	return nil
}

// NewBBox returns the minimal box covering the two corner points.
func NewBBox(a, b Point) BBox {
	return BBox{
		MinLat: math.Min(a.Lat, b.Lat),
		MinLon: math.Min(a.Lon, b.Lon),
		MaxLat: math.Max(a.Lat, b.Lat),
		MaxLon: math.Max(a.Lon, b.Lon),
	}
}

// EmptyBBox returns a box that contains nothing and extends under union.
func EmptyBBox() BBox {
	return BBox{
		MinLat: math.Inf(1), MinLon: math.Inf(1),
		MaxLat: math.Inf(-1), MaxLon: math.Inf(-1),
	}
}

// IsEmpty reports whether the box contains no points.
func (b BBox) IsEmpty() bool {
	return b.MinLat > b.MaxLat || b.MinLon > b.MaxLon
}

// Valid reports whether the box is non-empty and within the lat/lon domain.
func (b BBox) Valid() bool {
	return !b.IsEmpty() &&
		Point{b.MinLat, b.MinLon}.Valid() && Point{b.MaxLat, b.MaxLon}.Valid()
}

// Center returns the box's central point.
func (b BBox) Center() Point {
	return Point{Lat: (b.MinLat + b.MaxLat) / 2, Lon: (b.MinLon + b.MaxLon) / 2}
}

// Contains reports whether p lies within the box (borders inclusive).
func (b BBox) Contains(p Point) bool {
	return p.Lat >= b.MinLat && p.Lat <= b.MaxLat &&
		p.Lon >= b.MinLon && p.Lon <= b.MaxLon
}

// Intersects reports whether the two boxes share any point.
func (b BBox) Intersects(o BBox) bool {
	if b.IsEmpty() || o.IsEmpty() {
		return false
	}
	return b.MinLat <= o.MaxLat && o.MinLat <= b.MaxLat &&
		b.MinLon <= o.MaxLon && o.MinLon <= b.MaxLon
}

// Union returns the minimal box covering both boxes.
func (b BBox) Union(o BBox) BBox {
	if b.IsEmpty() {
		return o
	}
	if o.IsEmpty() {
		return b
	}
	return BBox{
		MinLat: math.Min(b.MinLat, o.MinLat),
		MinLon: math.Min(b.MinLon, o.MinLon),
		MaxLat: math.Max(b.MaxLat, o.MaxLat),
		MaxLon: math.Max(b.MaxLon, o.MaxLon),
	}
}

// ExtendPoint returns the minimal box covering the box and p.
func (b BBox) ExtendPoint(p Point) BBox {
	return b.Union(BBox{MinLat: p.Lat, MinLon: p.Lon, MaxLat: p.Lat, MaxLon: p.Lon})
}

// DistanceKm returns the great-circle separation between the box and p:
// zero when the box contains p, otherwise the distance from p to the
// nearest point on the box boundary (clamped corner approximation, which
// is exact for the small extents generated here).
func (b BBox) DistanceKm(p Point) float64 {
	if b.IsEmpty() {
		return math.Inf(1)
	}
	nearest := Point{
		Lat: clamp(p.Lat, b.MinLat, b.MaxLat),
		Lon: clamp(p.Lon, b.MinLon, b.MaxLon),
	}
	return HaversineKm(p, nearest)
}

// DistanceToBoxKm returns the separation between two boxes: zero when they
// intersect, otherwise the distance between their nearest boundary points.
func (b BBox) DistanceToBoxKm(o BBox) float64 {
	if b.IsEmpty() || o.IsEmpty() {
		return math.Inf(1)
	}
	if b.Intersects(o) {
		return 0
	}
	nearB := Point{
		Lat: clamp(o.Center().Lat, b.MinLat, b.MaxLat),
		Lon: clamp(o.Center().Lon, b.MinLon, b.MaxLon),
	}
	nearO := Point{
		Lat: clamp(nearB.Lat, o.MinLat, o.MaxLat),
		Lon: clamp(nearB.Lon, o.MinLon, o.MaxLon),
	}
	return HaversineKm(nearB, nearO)
}

// AreaDeg2 returns the box area in square degrees (zero when empty).
func (b BBox) AreaDeg2() float64 {
	if b.IsEmpty() {
		return 0
	}
	return (b.MaxLat - b.MinLat) * (b.MaxLon - b.MinLon)
}

// String formats the box as "[minLat,minLon .. maxLat,maxLon]".
func (b BBox) String() string {
	if b.IsEmpty() {
		return "[empty]"
	}
	return fmt.Sprintf("[%.5f,%.5f .. %.5f,%.5f]", b.MinLat, b.MinLon, b.MaxLat, b.MaxLon)
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// TimeRange is a half-open-free inclusive interval [Start, End].
type TimeRange struct {
	Start time.Time `json:"start"`
	End   time.Time `json:"end"`
}

// NewTimeRange orders the endpoints so Start <= End.
func NewTimeRange(a, b time.Time) TimeRange {
	if b.Before(a) {
		a, b = b, a
	}
	return TimeRange{Start: a, End: b}
}

// IsZero reports whether the range is the zero value.
func (t TimeRange) IsZero() bool { return t.Start.IsZero() && t.End.IsZero() }

// Valid reports whether Start <= End and the range is non-zero.
func (t TimeRange) Valid() bool { return !t.IsZero() && !t.End.Before(t.Start) }

// Duration returns End − Start.
func (t TimeRange) Duration() time.Duration { return t.End.Sub(t.Start) }

// Contains reports whether the instant lies inside the range (inclusive).
func (t TimeRange) Contains(at time.Time) bool {
	return !at.Before(t.Start) && !at.After(t.End)
}

// Overlaps reports whether the two ranges share any instant.
func (t TimeRange) Overlaps(o TimeRange) bool {
	return !t.Start.After(o.End) && !o.Start.After(t.End)
}

// Union returns the minimal range covering both ranges.
func (t TimeRange) Union(o TimeRange) TimeRange {
	if t.IsZero() {
		return o
	}
	if o.IsZero() {
		return t
	}
	u := t
	if o.Start.Before(u.Start) {
		u.Start = o.Start
	}
	if o.End.After(u.End) {
		u.End = o.End
	}
	return u
}

// Extend returns the minimal range covering the range and the instant.
func (t TimeRange) Extend(at time.Time) TimeRange {
	return t.Union(TimeRange{Start: at, End: at})
}

// Distance returns the gap between the two ranges (zero when overlapping).
func (t TimeRange) Distance(o TimeRange) time.Duration {
	if t.Overlaps(o) {
		return 0
	}
	if t.End.Before(o.Start) {
		return o.Start.Sub(t.End)
	}
	return t.Start.Sub(o.End)
}

// String formats the range as "start..end" in RFC3339.
func (t TimeRange) String() string {
	return t.Start.Format(time.RFC3339) + ".." + t.End.Format(time.RFC3339)
}

// ValueRange is an inclusive numeric interval, used for per-variable
// observed ranges ("temperature between 5 and 10 C").
type ValueRange struct {
	Min float64 `json:"min"`
	Max float64 `json:"max"`
}

// NewValueRange orders the endpoints so Min <= Max.
func NewValueRange(a, b float64) ValueRange {
	if b < a {
		a, b = b, a
	}
	return ValueRange{Min: a, Max: b}
}

// Contains reports whether v lies inside the interval (inclusive).
func (r ValueRange) Contains(v float64) bool { return v >= r.Min && v <= r.Max }

// Overlaps reports whether the two intervals share any value.
func (r ValueRange) Overlaps(o ValueRange) bool { return r.Min <= o.Max && o.Min <= r.Max }

// Union returns the minimal interval covering both.
func (r ValueRange) Union(o ValueRange) ValueRange {
	return ValueRange{Min: math.Min(r.Min, o.Min), Max: math.Max(r.Max, o.Max)}
}

// Width returns Max − Min.
func (r ValueRange) Width() float64 { return r.Max - r.Min }

// Distance returns the gap between the intervals (zero when overlapping).
func (r ValueRange) Distance(o ValueRange) float64 {
	if r.Overlaps(o) {
		return 0
	}
	if r.Max < o.Min {
		return o.Min - r.Max
	}
	return r.Min - o.Max
}

// String formats the interval as "[min..max]".
func (r ValueRange) String() string { return fmt.Sprintf("[%g..%g]", r.Min, r.Max) }
