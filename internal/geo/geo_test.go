package geo

import (
	"encoding/json"
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestPointValid(t *testing.T) {
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{0, 0}, true},
		{Point{45.5, -124.4}, true},
		{Point{90, 180}, true},
		{Point{-90, -180}, true},
		{Point{90.1, 0}, false},
		{Point{0, 180.1}, false},
		{Point{math.NaN(), 0}, false},
	}
	for _, c := range cases {
		if got := c.p.Valid(); got != c.want {
			t.Errorf("Valid(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestHaversineKnownDistances(t *testing.T) {
	// Portland, OR to Astoria, OR is roughly 118 km.
	portland := Point{45.5152, -122.6784}
	astoria := Point{46.1879, -123.8313}
	d := HaversineKm(portland, astoria)
	if d < 100 || d > 130 {
		t.Errorf("Portland-Astoria = %.1f km, want ~118", d)
	}
	if got := HaversineKm(portland, portland); got != 0 {
		t.Errorf("self distance = %g, want 0", got)
	}
	// Symmetry.
	if d2 := HaversineKm(astoria, portland); math.Abs(d-d2) > 1e-9 {
		t.Errorf("asymmetric: %g vs %g", d, d2)
	}
}

func TestHaversineEquatorDegree(t *testing.T) {
	// One degree of longitude at the equator is ~111.2 km.
	d := HaversineKm(Point{0, 0}, Point{0, 1})
	if math.Abs(d-111.19) > 0.5 {
		t.Errorf("1 degree at equator = %.2f km, want ~111.19", d)
	}
}

func TestBBoxContainsIntersects(t *testing.T) {
	b := BBox{MinLat: 45, MinLon: -125, MaxLat: 47, MaxLon: -122}
	if !b.Contains(Point{46, -123}) {
		t.Error("center point should be contained")
	}
	if !b.Contains(Point{45, -125}) {
		t.Error("corner should be contained (inclusive)")
	}
	if b.Contains(Point{44.9, -123}) {
		t.Error("outside point contained")
	}
	o := BBox{MinLat: 46.5, MinLon: -123, MaxLat: 48, MaxLon: -120}
	if !b.Intersects(o) || !o.Intersects(b) {
		t.Error("overlapping boxes should intersect")
	}
	far := BBox{MinLat: 0, MinLon: 0, MaxLat: 1, MaxLon: 1}
	if b.Intersects(far) {
		t.Error("disjoint boxes intersect")
	}
}

func TestBBoxEmptyBehaviour(t *testing.T) {
	e := EmptyBBox()
	if !e.IsEmpty() {
		t.Fatal("EmptyBBox not empty")
	}
	if e.Intersects(e) {
		t.Error("empty box intersects itself")
	}
	b := NewBBox(Point{1, 2}, Point{3, 4})
	if got := e.Union(b); got != b {
		t.Errorf("empty union b = %v, want %v", got, b)
	}
	if got := b.Union(e); got != b {
		t.Errorf("b union empty = %v, want %v", got, b)
	}
	if !math.IsInf(e.DistanceKm(Point{0, 0}), 1) {
		t.Error("distance to empty box should be +Inf")
	}
	if e.AreaDeg2() != 0 {
		t.Error("empty box area should be 0")
	}
}

func TestBBoxExtendPoint(t *testing.T) {
	b := EmptyBBox()
	pts := []Point{{45, -124}, {46, -123}, {44.5, -124.5}}
	for _, p := range pts {
		b = b.ExtendPoint(p)
	}
	for _, p := range pts {
		if !b.Contains(p) {
			t.Errorf("extended box %v misses %v", b, p)
		}
	}
	want := BBox{MinLat: 44.5, MinLon: -124.5, MaxLat: 46, MaxLon: -123}
	if b != want {
		t.Errorf("box = %v, want %v", b, want)
	}
}

func TestBBoxDistance(t *testing.T) {
	b := BBox{MinLat: 45, MinLon: -125, MaxLat: 47, MaxLon: -122}
	if d := b.DistanceKm(Point{46, -123}); d != 0 {
		t.Errorf("inside point distance = %g, want 0", d)
	}
	d := b.DistanceKm(Point{48, -123})
	want := HaversineKm(Point{48, -123}, Point{47, -123})
	if math.Abs(d-want) > 1e-9 {
		t.Errorf("outside distance = %g, want %g", d, want)
	}
}

func TestBBoxDistanceToBox(t *testing.T) {
	a := BBox{MinLat: 45, MinLon: -125, MaxLat: 46, MaxLon: -124}
	b := BBox{MinLat: 45.5, MinLon: -124.5, MaxLat: 47, MaxLon: -123}
	if d := a.DistanceToBoxKm(b); d != 0 {
		t.Errorf("intersecting boxes distance = %g, want 0", d)
	}
	c := BBox{MinLat: 48, MinLon: -125, MaxLat: 49, MaxLon: -124}
	if d := a.DistanceToBoxKm(c); d <= 0 {
		t.Errorf("disjoint boxes distance = %g, want > 0", d)
	}
}

func TestBBoxUnionProperties(t *testing.T) {
	f := func(aLat, aLon, bLat, bLon, cLat, cLon float64) bool {
		norm := func(lat, lon float64) Point {
			return Point{Lat: math.Mod(lat, 90), Lon: math.Mod(lon, 180)}
		}
		a := NewBBox(norm(aLat, aLon), norm(bLat, bLon))
		b := NewBBox(norm(bLat, bLon), norm(cLat, cLon))
		u := a.Union(b)
		// Union must contain both boxes' corners.
		return u.Contains(Point{a.MinLat, a.MinLon}) &&
			u.Contains(Point{a.MaxLat, a.MaxLon}) &&
			u.Contains(Point{b.MinLat, b.MinLon}) &&
			u.Contains(Point{b.MaxLat, b.MaxLon}) &&
			u == b.Union(a) // commutative
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTimeRange(t *testing.T) {
	t0 := time.Date(2010, 6, 1, 0, 0, 0, 0, time.UTC)
	t1 := t0.Add(24 * time.Hour)
	r := NewTimeRange(t1, t0) // reversed on purpose
	if r.Start != t0 || r.End != t1 {
		t.Fatalf("NewTimeRange did not order endpoints: %v", r)
	}
	if !r.Contains(t0) || !r.Contains(t1) || !r.Contains(t0.Add(time.Hour)) {
		t.Error("Contains failed for in-range instants")
	}
	if r.Contains(t0.Add(-time.Second)) {
		t.Error("Contains accepted out-of-range instant")
	}
	if r.Duration() != 24*time.Hour {
		t.Errorf("Duration = %v, want 24h", r.Duration())
	}
}

func TestTimeRangeOverlapDistance(t *testing.T) {
	t0 := time.Date(2010, 6, 1, 0, 0, 0, 0, time.UTC)
	a := NewTimeRange(t0, t0.Add(10*time.Hour))
	b := NewTimeRange(t0.Add(5*time.Hour), t0.Add(15*time.Hour))
	c := NewTimeRange(t0.Add(20*time.Hour), t0.Add(30*time.Hour))
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("overlapping ranges not detected")
	}
	if a.Overlaps(c) {
		t.Error("disjoint ranges overlap")
	}
	if d := a.Distance(b); d != 0 {
		t.Errorf("overlap distance = %v, want 0", d)
	}
	if d := a.Distance(c); d != 10*time.Hour {
		t.Errorf("gap = %v, want 10h", d)
	}
	if d := c.Distance(a); d != 10*time.Hour {
		t.Errorf("reverse gap = %v, want 10h", d)
	}
}

func TestTimeRangeUnionExtend(t *testing.T) {
	t0 := time.Date(2010, 6, 1, 0, 0, 0, 0, time.UTC)
	var r TimeRange
	r = r.Extend(t0.Add(5 * time.Hour))
	r = r.Extend(t0)
	r = r.Extend(t0.Add(10 * time.Hour))
	if r.Start != t0 || r.End != t0.Add(10*time.Hour) {
		t.Errorf("Extend sequence produced %v", r)
	}
}

func TestValueRange(t *testing.T) {
	r := NewValueRange(10, 5)
	if r.Min != 5 || r.Max != 10 {
		t.Fatalf("NewValueRange did not order endpoints: %v", r)
	}
	if !r.Contains(5) || !r.Contains(10) || !r.Contains(7.5) {
		t.Error("Contains failed")
	}
	if r.Contains(4.999) || r.Contains(10.001) {
		t.Error("Contains accepted out-of-range value")
	}
	o := NewValueRange(8, 12)
	if !r.Overlaps(o) {
		t.Error("overlap not detected")
	}
	if d := r.Distance(NewValueRange(15, 20)); d != 5 {
		t.Errorf("gap = %g, want 5", d)
	}
	if d := NewValueRange(15, 20).Distance(r); d != 5 {
		t.Errorf("reverse gap = %g, want 5", d)
	}
	u := r.Union(o)
	if u.Min != 5 || u.Max != 12 {
		t.Errorf("union = %v, want [5..12]", u)
	}
	if r.Width() != 5 {
		t.Errorf("width = %g, want 5", r.Width())
	}
}

func TestValueRangeQuick(t *testing.T) {
	f := func(a, b, c, d float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(c) || math.IsNaN(d) {
			return true
		}
		r1, r2 := NewValueRange(a, b), NewValueRange(c, d)
		// Distance is symmetric and zero iff overlapping.
		if r1.Distance(r2) != r2.Distance(r1) {
			return false
		}
		if r1.Overlaps(r2) != (r1.Distance(r2) == 0) {
			return false
		}
		// Union contains all endpoints.
		u := r1.Union(r2)
		return u.Contains(r1.Min) && u.Contains(r1.Max) && u.Contains(r2.Min) && u.Contains(r2.Max)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkHaversine(b *testing.B) {
	p1 := Point{45.5, -122.6}
	p2 := Point{46.2, -123.8}
	for i := 0; i < b.N; i++ {
		HaversineKm(p1, p2)
	}
}

func TestBBoxJSONRoundTrip(t *testing.T) {
	// The empty box's ±Inf sentinels must serialize (as null) and come
	// back canonical — features without a spatial extent are persisted.
	data, err := json.Marshal(EmptyBBox())
	if err != nil {
		t.Fatalf("marshal empty bbox: %v", err)
	}
	if string(data) != "null" {
		t.Fatalf("empty bbox marshals to %s, want null", data)
	}
	var back BBox
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !back.IsEmpty() || back != EmptyBBox() {
		t.Fatalf("empty bbox round-tripped to %+v", back)
	}

	b := BBox{MinLat: 45.1, MinLon: -124.5, MaxLat: 46.2, MaxLon: -123.8}
	data, err = json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	var got BBox
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got != b {
		t.Fatalf("bbox round-tripped to %+v, want %+v", got, b)
	}
}
