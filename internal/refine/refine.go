// Package refine implements a Google-Refine-workalike transformation
// engine over the table package's grid model: mass edits, expression
// text transforms, column operations, row-level facet filtering, an
// undoable operation history, and JSON rule import/export in the format
// the poster shows ("op": "core/mass-edit", ...).
//
// Rules are data: a curator (or the discovery step in internal/cluster)
// produces operations, exports them to JSON for audit, and replays them
// against future re-scans of the archive. All operations are
// deterministic and, for mass edits, idempotent.
package refine

import (
	"fmt"

	"metamess/internal/expr"
	"metamess/internal/table"
)

// Operation is one replayable transformation step.
type Operation interface {
	// OpName returns the wire name, e.g. "core/mass-edit".
	OpName() string
	// Description returns the human-readable summary stored in rule files.
	Description() string
	// Apply mutates t in place and reports how many cells/rows changed.
	Apply(t *table.Table) (Result, error)
}

// Result summarizes one operation application.
type Result struct {
	// CellsChanged counts cell mutations (or rows removed/added for
	// row/column operations).
	CellsChanged int
}

// EngineConfig mirrors Refine's engine configuration: the facets that
// restrict which rows an operation touches. Mode is always "row-based".
type EngineConfig struct {
	Facets []Facet `json:"facets"`
	Mode   string  `json:"mode"`
}

// Facet restricts operations to rows whose column value is in Selected.
// An empty Selected list selects all rows (an unconstrained facet).
type Facet struct {
	Type     string   `json:"type"` // "list" (text facet)
	Column   string   `json:"columnName"`
	Selected []string `json:"selection,omitempty"`
}

// rowSelected reports whether row i passes every facet.
func (ec EngineConfig) rowSelected(t *table.Table, i int) (bool, error) {
	for _, f := range ec.Facets {
		if len(f.Selected) == 0 {
			continue
		}
		v, err := t.Cell(i, f.Column)
		if err != nil {
			return false, err
		}
		hit := false
		for _, s := range f.Selected {
			if v == s {
				hit = true
				break
			}
		}
		if !hit {
			return false, nil
		}
	}
	return true, nil
}

// Edit is one from→to mapping inside a mass edit, matching the poster's
// JSON: {"fromBlank": false, "fromError": false, "from": ["ATastn"],
// "to": "sea surface temperature"}.
type Edit struct {
	FromBlank bool     `json:"fromBlank"`
	FromError bool     `json:"fromError"`
	From      []string `json:"from"`
	To        string   `json:"to"`
}

// MassEdit replaces occurrences of each Edit.From value in a column with
// Edit.To — the operation Refine's clustering UI emits and the poster's
// example rule uses.
type MassEdit struct {
	Desc       string       `json:"description"`
	Engine     EngineConfig `json:"engineConfig"`
	ColumnName string       `json:"columnName"`
	Expression string       `json:"expression"` // always "value" for mass edits
	Edits      []Edit       `json:"edits"`
}

// OpName implements Operation.
func (m *MassEdit) OpName() string { return "core/mass-edit" }

// Description implements Operation.
func (m *MassEdit) Description() string {
	if m.Desc != "" {
		return m.Desc
	}
	return fmt.Sprintf("Mass edit %d value groups in column %s", len(m.Edits), m.ColumnName)
}

// Apply implements Operation: for each selected row, if the cell matches
// any From value (or is blank and FromBlank is set), replace it with To.
func (m *MassEdit) Apply(t *table.Table) (Result, error) {
	if _, ok := t.ColumnIndex(m.ColumnName); !ok {
		return Result{}, fmt.Errorf("refine: mass-edit: no column %q", m.ColumnName)
	}
	lookup := make(map[string]string)
	blankTo := ""
	haveBlank := false
	for _, e := range m.Edits {
		if e.FromBlank {
			haveBlank = true
			blankTo = e.To
		}
		for _, f := range e.From {
			lookup[f] = e.To
		}
	}
	changed := 0
	for i := 0; i < t.NumRows(); i++ {
		ok, err := m.Engine.rowSelected(t, i)
		if err != nil {
			return Result{}, fmt.Errorf("refine: mass-edit: %w", err)
		}
		if !ok {
			continue
		}
		v, err := t.Cell(i, m.ColumnName)
		if err != nil {
			return Result{}, err
		}
		var to string
		var hit bool
		if v == "" && haveBlank {
			to, hit = blankTo, true
		} else {
			to, hit = lookup[v]
		}
		if !hit || to == v {
			continue
		}
		if err := t.SetCell(i, m.ColumnName, to); err != nil {
			return Result{}, err
		}
		changed++
	}
	return Result{CellsChanged: changed}, nil
}

// OnErrorPolicy says what a text transform does when its expression fails
// on a cell.
type OnErrorPolicy string

// Text-transform error policies, mirroring Refine's onError field.
const (
	KeepOriginal OnErrorPolicy = "keep-original"
	SetToBlank   OnErrorPolicy = "set-to-blank"
	StoreError   OnErrorPolicy = "store-error" // stores "#ERROR: ..." in the cell
)

// TextTransform rewrites every selected cell in a column through an
// expression ("core/text-transform").
type TextTransform struct {
	Desc       string        `json:"description"`
	Engine     EngineConfig  `json:"engineConfig"`
	ColumnName string        `json:"columnName"`
	Expression string        `json:"expression"`
	OnError    OnErrorPolicy `json:"onError"`
	// Repeat re-applies the expression until the value stops changing
	// (at most RepeatCount times), as Refine's repeat option does.
	Repeat      bool `json:"repeat"`
	RepeatCount int  `json:"repeatCount"`
}

// OpName implements Operation.
func (tt *TextTransform) OpName() string { return "core/text-transform" }

// Description implements Operation.
func (tt *TextTransform) Description() string {
	if tt.Desc != "" {
		return tt.Desc
	}
	return fmt.Sprintf("Text transform on column %s: %s", tt.ColumnName, tt.Expression)
}

// Apply implements Operation.
func (tt *TextTransform) Apply(t *table.Table) (Result, error) {
	if _, ok := t.ColumnIndex(tt.ColumnName); !ok {
		return Result{}, fmt.Errorf("refine: text-transform: no column %q", tt.ColumnName)
	}
	compiled, err := expr.Compile(tt.Expression)
	if err != nil {
		return Result{}, fmt.Errorf("refine: text-transform: %w", err)
	}
	maxRepeat := 1
	if tt.Repeat {
		maxRepeat = tt.RepeatCount
		if maxRepeat < 1 {
			maxRepeat = 10
		}
	}
	cols := t.Columns()
	changed := 0
	for i := 0; i < t.NumRows(); i++ {
		ok, err := tt.Engine.rowSelected(t, i)
		if err != nil {
			return Result{}, fmt.Errorf("refine: text-transform: %w", err)
		}
		if !ok {
			continue
		}
		orig, err := t.Cell(i, tt.ColumnName)
		if err != nil {
			return Result{}, err
		}
		cur := orig
		failed := false
		for rep := 0; rep < maxRepeat; rep++ {
			env := expr.Env{"value": cur, "rowIndex": float64(i)}
			// Expose sibling cells as cells_<column> bindings.
			for _, c := range cols {
				v, _ := t.Cell(i, c)
				env["cells_"+sanitizeIdent(c)] = v
			}
			out, err := compiled.EvalString(env)
			if err != nil {
				failed = true
				switch tt.OnError {
				case SetToBlank:
					cur = ""
				case StoreError:
					cur = "#ERROR: " + err.Error()
				default: // KeepOriginal
					cur = orig
				}
				break
			}
			if out == cur {
				break
			}
			cur = out
		}
		_ = failed
		if cur != orig {
			if err := t.SetCell(i, tt.ColumnName, cur); err != nil {
				return Result{}, err
			}
			changed++
		}
	}
	return Result{CellsChanged: changed}, nil
}

// sanitizeIdent maps a column name to a legal expression identifier.
func sanitizeIdent(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// ColumnRename renames a column ("core/column-rename").
type ColumnRename struct {
	Desc    string `json:"description"`
	OldName string `json:"oldColumnName"`
	NewName string `json:"newColumnName"`
}

// OpName implements Operation.
func (c *ColumnRename) OpName() string { return "core/column-rename" }

// Description implements Operation.
func (c *ColumnRename) Description() string {
	if c.Desc != "" {
		return c.Desc
	}
	return fmt.Sprintf("Rename column %s to %s", c.OldName, c.NewName)
}

// Apply implements Operation.
func (c *ColumnRename) Apply(t *table.Table) (Result, error) {
	if err := t.RenameColumn(c.OldName, c.NewName); err != nil {
		return Result{}, fmt.Errorf("refine: column-rename: %w", err)
	}
	return Result{CellsChanged: t.NumRows()}, nil
}

// ColumnRemoval deletes a column ("core/column-removal").
type ColumnRemoval struct {
	Desc       string `json:"description"`
	ColumnName string `json:"columnName"`
}

// OpName implements Operation.
func (c *ColumnRemoval) OpName() string { return "core/column-removal" }

// Description implements Operation.
func (c *ColumnRemoval) Description() string {
	if c.Desc != "" {
		return c.Desc
	}
	return "Remove column " + c.ColumnName
}

// Apply implements Operation.
func (c *ColumnRemoval) Apply(t *table.Table) (Result, error) {
	if err := t.RemoveColumn(c.ColumnName); err != nil {
		return Result{}, fmt.Errorf("refine: column-removal: %w", err)
	}
	return Result{CellsChanged: t.NumRows()}, nil
}

// ColumnAddition adds a column computed from an expression over each row
// ("core/column-addition"). The expression sees "value" bound to the base
// column's cell.
type ColumnAddition struct {
	Desc         string        `json:"description"`
	Engine       EngineConfig  `json:"engineConfig"`
	BaseColumn   string        `json:"baseColumnName"`
	NewColumn    string        `json:"newColumnName"`
	Expression   string        `json:"expression"`
	ColumnInsert int           `json:"columnInsertIndex"`
	OnError      OnErrorPolicy `json:"onError"`
}

// OpName implements Operation.
func (c *ColumnAddition) OpName() string { return "core/column-addition" }

// Description implements Operation.
func (c *ColumnAddition) Description() string {
	if c.Desc != "" {
		return c.Desc
	}
	return fmt.Sprintf("Create column %s from %s with %s", c.NewColumn, c.BaseColumn, c.Expression)
}

// Apply implements Operation.
func (c *ColumnAddition) Apply(t *table.Table) (Result, error) {
	if _, ok := t.ColumnIndex(c.BaseColumn); !ok {
		return Result{}, fmt.Errorf("refine: column-addition: no base column %q", c.BaseColumn)
	}
	compiled, err := expr.Compile(c.Expression)
	if err != nil {
		return Result{}, fmt.Errorf("refine: column-addition: %w", err)
	}
	if err := t.AddColumn(c.NewColumn); err != nil {
		return Result{}, fmt.Errorf("refine: column-addition: %w", err)
	}
	changed := 0
	for i := 0; i < t.NumRows(); i++ {
		ok, err := c.Engine.rowSelected(t, i)
		if err != nil {
			return Result{}, fmt.Errorf("refine: column-addition: %w", err)
		}
		if !ok {
			continue
		}
		base, err := t.Cell(i, c.BaseColumn)
		if err != nil {
			return Result{}, err
		}
		out, err := compiled.EvalString(expr.Env{"value": base, "rowIndex": float64(i)})
		if err != nil {
			switch c.OnError {
			case StoreError:
				out = "#ERROR: " + err.Error()
			default:
				out = ""
			}
		}
		if out == "" {
			continue
		}
		if err := t.SetCell(i, c.NewColumn, out); err != nil {
			return Result{}, err
		}
		changed++
	}
	return Result{CellsChanged: changed}, nil
}

// RowRemoval removes the rows selected by the engine's facets
// ("core/row-removal"). With no facets it removes nothing, guarding
// against an accidental full wipe.
type RowRemoval struct {
	Desc   string       `json:"description"`
	Engine EngineConfig `json:"engineConfig"`
}

// OpName implements Operation.
func (r *RowRemoval) OpName() string { return "core/row-removal" }

// Description implements Operation.
func (r *RowRemoval) Description() string {
	if r.Desc != "" {
		return r.Desc
	}
	return "Remove rows matching facets"
}

// Apply implements Operation.
func (r *RowRemoval) Apply(t *table.Table) (Result, error) {
	constrained := false
	for _, f := range r.Engine.Facets {
		if len(f.Selected) > 0 {
			constrained = true
			break
		}
	}
	if !constrained {
		return Result{}, nil
	}
	// Selection must be computed before filtering: FilterRows compacts the
	// backing rows in place, so reading cells mid-filter would see moved rows.
	selected := make([]bool, t.NumRows())
	for i := range selected {
		sel, err := r.Engine.rowSelected(t, i)
		if err != nil {
			return Result{}, fmt.Errorf("refine: row-removal: %w", err)
		}
		selected[i] = sel
	}
	removed := t.FilterRows(func(i int, _ []string) bool { return !selected[i] })
	return Result{CellsChanged: removed}, nil
}
