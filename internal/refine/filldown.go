package refine

import (
	"fmt"

	"metamess/internal/table"
)

// FillDown copies the nearest non-blank value above into blank cells of
// a column ("core/fill-down") — Refine's standard repair for grids where
// a value was recorded once per group, such as unit columns in catalog
// extracts.
type FillDown struct {
	Desc       string       `json:"description"`
	Engine     EngineConfig `json:"engineConfig"`
	ColumnName string       `json:"columnName"`
}

// OpName implements Operation.
func (f *FillDown) OpName() string { return "core/fill-down" }

// Description implements Operation.
func (f *FillDown) Description() string {
	if f.Desc != "" {
		return f.Desc
	}
	return "Fill down column " + f.ColumnName
}

// Apply implements Operation. Facet-excluded rows neither receive fills
// nor update the carried value, mirroring Refine's row-based engine.
func (f *FillDown) Apply(t *table.Table) (Result, error) {
	if _, ok := t.ColumnIndex(f.ColumnName); !ok {
		return Result{}, fmt.Errorf("refine: fill-down: no column %q", f.ColumnName)
	}
	carried := ""
	changed := 0
	for i := 0; i < t.NumRows(); i++ {
		sel, err := f.Engine.rowSelected(t, i)
		if err != nil {
			return Result{}, fmt.Errorf("refine: fill-down: %w", err)
		}
		if !sel {
			continue
		}
		v, err := t.Cell(i, f.ColumnName)
		if err != nil {
			return Result{}, err
		}
		if v != "" {
			carried = v
			continue
		}
		if carried == "" {
			continue
		}
		if err := t.SetCell(i, f.ColumnName, carried); err != nil {
			return Result{}, err
		}
		changed++
	}
	return Result{CellsChanged: changed}, nil
}
