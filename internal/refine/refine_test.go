package refine

import (
	"strings"
	"testing"

	"metamess/internal/table"
)

func grid(t *testing.T) *table.Table {
	t.Helper()
	tb := table.MustNew("field", "unit")
	rows := [][]string{
		{"ATastn", "C"},
		{"air_temperatrue", "degC"},
		{"airtemp", "C"},
		{"salinity", "PSU"},
		{"", "PSU"},
		{"qa_level", ""},
	}
	for _, r := range rows {
		if err := tb.AppendRow(r...); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

func TestMassEditPosterExample(t *testing.T) {
	// The poster's example rule: ATastn -> "sea surface temperature".
	tb := grid(t)
	op := &MassEdit{
		Desc:       "Mass edit cells in column field",
		Engine:     EngineConfig{Mode: "row-based"},
		ColumnName: "field",
		Expression: "value",
		Edits: []Edit{
			{From: []string{"ATastn"}, To: "sea surface temperature"},
		},
	}
	res, err := op.Apply(tb)
	if err != nil {
		t.Fatal(err)
	}
	if res.CellsChanged != 1 {
		t.Errorf("CellsChanged = %d, want 1", res.CellsChanged)
	}
	got, _ := tb.Cell(0, "field")
	if got != "sea surface temperature" {
		t.Errorf("cell = %q", got)
	}
}

func TestMassEditMultipleFromAndBlank(t *testing.T) {
	tb := grid(t)
	op := &MassEdit{
		ColumnName: "field",
		Edits: []Edit{
			{From: []string{"airtemp", "air_temperatrue"}, To: "air_temperature"},
			{FromBlank: true, To: "unknown"},
		},
	}
	res, err := op.Apply(tb)
	if err != nil {
		t.Fatal(err)
	}
	if res.CellsChanged != 3 {
		t.Errorf("CellsChanged = %d, want 3", res.CellsChanged)
	}
	for _, want := range []struct {
		row int
		val string
	}{{1, "air_temperature"}, {2, "air_temperature"}, {4, "unknown"}} {
		if got, _ := tb.Cell(want.row, "field"); got != want.val {
			t.Errorf("row %d = %q, want %q", want.row, got, want.val)
		}
	}
}

func TestMassEditIdempotent(t *testing.T) {
	tb := grid(t)
	op := &MassEdit{
		ColumnName: "field",
		Edits:      []Edit{{From: []string{"airtemp"}, To: "air_temperature"}},
	}
	if _, err := op.Apply(tb); err != nil {
		t.Fatal(err)
	}
	snapshot := tb.Clone()
	res, err := op.Apply(tb)
	if err != nil {
		t.Fatal(err)
	}
	if res.CellsChanged != 0 {
		t.Errorf("second application changed %d cells, want 0", res.CellsChanged)
	}
	if !tb.Equal(snapshot) {
		t.Error("second application mutated the table")
	}
}

func TestMassEditUnknownColumn(t *testing.T) {
	tb := grid(t)
	op := &MassEdit{ColumnName: "ghost"}
	if _, err := op.Apply(tb); err == nil {
		t.Error("unknown column should fail")
	}
}

func TestMassEditWithFacet(t *testing.T) {
	tb := grid(t)
	// Only rows whose unit is "C" are selected.
	op := &MassEdit{
		ColumnName: "field",
		Engine: EngineConfig{
			Mode:   "row-based",
			Facets: []Facet{{Type: "list", Column: "unit", Selected: []string{"C"}}},
		},
		Edits: []Edit{{From: []string{"ATastn", "airtemp", "salinity"}, To: "X"}},
	}
	res, err := op.Apply(tb)
	if err != nil {
		t.Fatal(err)
	}
	if res.CellsChanged != 2 {
		t.Errorf("CellsChanged = %d, want 2 (only unit=C rows)", res.CellsChanged)
	}
	if got, _ := tb.Cell(3, "field"); got != "salinity" {
		t.Errorf("faceted-out row changed: %q", got)
	}
}

func TestTextTransform(t *testing.T) {
	tb := grid(t)
	op := &TextTransform{
		ColumnName: "field",
		Expression: `value.toLowercase().replace("_", " ")`,
		OnError:    KeepOriginal,
	}
	res, err := op.Apply(tb)
	if err != nil {
		t.Fatal(err)
	}
	if res.CellsChanged == 0 {
		t.Error("expected changed cells")
	}
	got, _ := tb.Cell(1, "field")
	if got != "air temperatrue" {
		t.Errorf("cell = %q", got)
	}
}

func TestTextTransformRepeat(t *testing.T) {
	tb := table.MustNew("v")
	_ = tb.AppendRow("a__b__c")
	op := &TextTransform{
		ColumnName:  "v",
		Expression:  `value.replace("__", "_")`,
		Repeat:      true,
		RepeatCount: 10,
	}
	if _, err := op.Apply(tb); err != nil {
		t.Fatal(err)
	}
	got, _ := tb.Cell(0, "v")
	if got != "a_b_c" {
		t.Errorf("repeat transform = %q, want a_b_c", got)
	}
}

func TestTextTransformOnError(t *testing.T) {
	tb := table.MustNew("v")
	_ = tb.AppendRow("notanumber")
	_ = tb.AppendRow("42")

	keep := &TextTransform{ColumnName: "v", Expression: `toNumber(value) + 1`, OnError: KeepOriginal}
	tbl := tb.Clone()
	if _, err := keep.Apply(tbl); err != nil {
		t.Fatal(err)
	}
	if got, _ := tbl.Cell(0, "v"); got != "notanumber" {
		t.Errorf("keep-original = %q", got)
	}
	if got, _ := tbl.Cell(1, "v"); got != "43" {
		t.Errorf("numeric row = %q, want 43", got)
	}

	blank := &TextTransform{ColumnName: "v", Expression: `toNumber(value) + 1`, OnError: SetToBlank}
	tbl = tb.Clone()
	if _, err := blank.Apply(tbl); err != nil {
		t.Fatal(err)
	}
	if got, _ := tbl.Cell(0, "v"); got != "" {
		t.Errorf("set-to-blank = %q", got)
	}

	store := &TextTransform{ColumnName: "v", Expression: `toNumber(value) + 1`, OnError: StoreError}
	tbl = tb.Clone()
	if _, err := store.Apply(tbl); err != nil {
		t.Fatal(err)
	}
	if got, _ := tbl.Cell(0, "v"); !strings.HasPrefix(got, "#ERROR:") {
		t.Errorf("store-error = %q", got)
	}
}

func TestTextTransformBadExpression(t *testing.T) {
	tb := grid(t)
	op := &TextTransform{ColumnName: "field", Expression: `value.`}
	if _, err := op.Apply(tb); err == nil {
		t.Error("bad expression should fail at Apply")
	}
}

func TestTextTransformSiblingCells(t *testing.T) {
	tb := table.MustNew("field", "unit")
	_ = tb.AppendRow("temp", "degC")
	op := &TextTransform{
		ColumnName: "field",
		Expression: `value + " (" + cells_unit + ")"`,
	}
	if _, err := op.Apply(tb); err != nil {
		t.Fatal(err)
	}
	got, _ := tb.Cell(0, "field")
	if got != "temp (degC)" {
		t.Errorf("sibling binding = %q", got)
	}
}

func TestColumnOps(t *testing.T) {
	tb := grid(t)
	if _, err := (&ColumnRename{OldName: "unit", NewName: "units"}).Apply(tb); err != nil {
		t.Fatal(err)
	}
	if _, ok := tb.ColumnIndex("units"); !ok {
		t.Error("rename failed")
	}
	if _, err := (&ColumnAddition{
		BaseColumn: "field",
		NewColumn:  "fp",
		Expression: `value.fingerprint()`,
	}).Apply(tb); err != nil {
		t.Fatal(err)
	}
	got, _ := tb.Cell(0, "fp")
	if got != "atastn" {
		t.Errorf("added column cell = %q", got)
	}
	if _, err := (&ColumnRemoval{ColumnName: "fp"}).Apply(tb); err != nil {
		t.Fatal(err)
	}
	if _, ok := tb.ColumnIndex("fp"); ok {
		t.Error("removal failed")
	}
	if _, err := (&ColumnRename{OldName: "ghost", NewName: "x"}).Apply(tb); err == nil {
		t.Error("renaming unknown column should fail")
	}
	if _, err := (&ColumnRemoval{ColumnName: "ghost"}).Apply(tb); err == nil {
		t.Error("removing unknown column should fail")
	}
	if _, err := (&ColumnAddition{BaseColumn: "ghost", NewColumn: "x", Expression: "value"}).Apply(tb); err == nil {
		t.Error("adding from unknown base should fail")
	}
}

func TestRowRemoval(t *testing.T) {
	tb := grid(t)
	op := &RowRemoval{
		Engine: EngineConfig{Facets: []Facet{{Column: "field", Selected: []string{"qa_level"}}}},
	}
	res, err := op.Apply(tb)
	if err != nil {
		t.Fatal(err)
	}
	if res.CellsChanged != 1 || tb.NumRows() != 5 {
		t.Errorf("removed=%d rows=%d, want 1/5", res.CellsChanged, tb.NumRows())
	}
	// Unconstrained removal is a no-op, not a wipe.
	safe := &RowRemoval{}
	res, err = safe.Apply(tb)
	if err != nil {
		t.Fatal(err)
	}
	if res.CellsChanged != 0 || tb.NumRows() != 5 {
		t.Error("unconstrained row removal should remove nothing")
	}
}

func TestRowRemovalMultipleSelected(t *testing.T) {
	tb := grid(t)
	op := &RowRemoval{
		Engine: EngineConfig{Facets: []Facet{{Column: "unit", Selected: []string{"C", "PSU"}}}},
	}
	res, err := op.Apply(tb)
	if err != nil {
		t.Fatal(err)
	}
	if res.CellsChanged != 4 || tb.NumRows() != 2 {
		t.Errorf("removed=%d rows=%d, want 4/2", res.CellsChanged, tb.NumRows())
	}
	// Remaining rows must be the degC and blank-unit rows, in order.
	if got, _ := tb.Cell(0, "field"); got != "air_temperatrue" {
		t.Errorf("row 0 after removal = %q", got)
	}
	if got, _ := tb.Cell(1, "field"); got != "qa_level" {
		t.Errorf("row 1 after removal = %q", got)
	}
}

func TestDescriptions(t *testing.T) {
	ops := []Operation{
		&MassEdit{ColumnName: "f", Edits: []Edit{{From: []string{"a"}, To: "b"}}},
		&TextTransform{ColumnName: "f", Expression: "value"},
		&ColumnRename{OldName: "a", NewName: "b"},
		&ColumnRemoval{ColumnName: "a"},
		&ColumnAddition{BaseColumn: "a", NewColumn: "b", Expression: "value"},
		&RowRemoval{},
	}
	for _, op := range ops {
		if op.Description() == "" {
			t.Errorf("%s has empty description", op.OpName())
		}
		if !strings.HasPrefix(op.OpName(), "core/") {
			t.Errorf("%s: op names follow Refine's core/ namespace", op.OpName())
		}
	}
	custom := &MassEdit{Desc: "hand-written"}
	if custom.Description() != "hand-written" {
		t.Error("explicit description should win")
	}
}
