package refine

import (
	"encoding/json"
	"strings"
	"testing"

	"metamess/internal/table"
)

// posterRule is the JSON fragment printed on the poster, as a rule list.
const posterRule = `[
  {   "op": "core/mass-edit",
    "description": "Mass edit cells in column field",
    "engineConfig": { "facets": [],
      "mode": "row-based" },
    "columnName": "field",
    "expression": "value",
    "edits": [   {
        "fromBlank": false,
        "fromError": false,
        "from": [ "ATastn" ],
        "to": "sea surface temperature"  } ]  }
]`

func TestImportPosterRule(t *testing.T) {
	ops, err := ImportJSON([]byte(posterRule))
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 1 {
		t.Fatalf("got %d ops, want 1", len(ops))
	}
	me, ok := ops[0].(*MassEdit)
	if !ok {
		t.Fatalf("op type = %T, want *MassEdit", ops[0])
	}
	if me.ColumnName != "field" || me.Expression != "value" {
		t.Errorf("decoded op = %+v", me)
	}
	if len(me.Edits) != 1 || me.Edits[0].From[0] != "ATastn" ||
		me.Edits[0].To != "sea surface temperature" {
		t.Errorf("edits = %+v", me.Edits)
	}
	if me.Engine.Mode != "row-based" {
		t.Errorf("mode = %q", me.Engine.Mode)
	}

	// And it must actually work against a grid.
	tb := table.MustNew("field")
	_ = tb.AppendRow("ATastn")
	res, err := me.Apply(tb)
	if err != nil || res.CellsChanged != 1 {
		t.Fatalf("apply: %v, changed %d", err, res.CellsChanged)
	}
	got, _ := tb.Cell(0, "field")
	if got != "sea surface temperature" {
		t.Errorf("cell = %q", got)
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	ops := []Operation{
		&MassEdit{
			Desc:       "Mass edit cells in column field",
			Engine:     EngineConfig{Mode: "row-based"},
			ColumnName: "field",
			Expression: "value",
			Edits: []Edit{
				{From: []string{"airtemp", "AirTemp"}, To: "air_temperature"},
				{FromBlank: true, To: "unknown"},
			},
		},
		&TextTransform{
			ColumnName: "unit",
			Expression: `value.toLowercase()`,
			OnError:    KeepOriginal,
			Repeat:     true, RepeatCount: 3,
		},
		&ColumnRename{OldName: "fld", NewName: "field"},
		&ColumnRemoval{ColumnName: "scratch"},
		&ColumnAddition{BaseColumn: "field", NewColumn: "fp", Expression: "value.fingerprint()"},
		&RowRemoval{Engine: EngineConfig{Facets: []Facet{{Type: "list", Column: "field", Selected: []string{"qa_level"}}}}},
	}
	data, err := ExportJSON(ops)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ImportJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(ops) {
		t.Fatalf("round trip count %d, want %d", len(back), len(ops))
	}
	for i := range ops {
		if back[i].OpName() != ops[i].OpName() {
			t.Errorf("op %d name = %q, want %q", i, back[i].OpName(), ops[i].OpName())
		}
	}
	// Second export must be byte-identical: rules are stable artifacts.
	data2, err := ExportJSON(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Error("export is not stable across an import/export cycle")
	}
}

func TestExportContainsOpDiscriminator(t *testing.T) {
	data, err := ExportJSON([]Operation{&ColumnRename{OldName: "a", NewName: "b"}})
	if err != nil {
		t.Fatal(err)
	}
	var raw []map[string]interface{}
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	if raw[0]["op"] != "core/column-rename" {
		t.Errorf("op field = %v", raw[0]["op"])
	}
	if raw[0]["description"] == "" {
		t.Error("description should be populated on export")
	}
}

func TestImportErrors(t *testing.T) {
	cases := []string{
		`not json`,
		`[{"noop": true}]`,
		`[{"op": "core/unknown-op"}]`,
		`[{"op": "core/mass-edit", "edits": "not-a-list"}]`,
	}
	for _, c := range cases {
		if _, err := ImportJSON([]byte(c)); err == nil {
			t.Errorf("ImportJSON(%q) should fail", c)
		}
	}
}

func TestImportDefaults(t *testing.T) {
	ops, err := ImportJSON([]byte(`[
	  {"op": "core/mass-edit", "columnName": "f", "edits": []},
	  {"op": "core/text-transform", "columnName": "f", "expression": "value"}
	]`))
	if err != nil {
		t.Fatal(err)
	}
	if me := ops[0].(*MassEdit); me.Expression != "value" {
		t.Errorf("mass-edit default expression = %q, want value", me.Expression)
	}
	if tt := ops[1].(*TextTransform); tt.OnError != KeepOriginal {
		t.Errorf("text-transform default onError = %q, want keep-original", tt.OnError)
	}
}

func TestProjectHistoryUndoRedo(t *testing.T) {
	tb := table.MustNew("field")
	for _, v := range []string{"airtemp", "ATastn", "salinity"} {
		_ = tb.AppendRow(v)
	}
	p := NewProject(tb)

	op1 := &MassEdit{ColumnName: "field", Edits: []Edit{{From: []string{"airtemp"}, To: "air_temperature"}}}
	op2 := &TextTransform{ColumnName: "field", Expression: `value.toUppercase()`}
	if _, err := p.Apply(op1); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Apply(op2); err != nil {
		t.Fatal(err)
	}
	if got, _ := p.Table().Cell(0, "field"); got != "AIR_TEMPERATURE" {
		t.Errorf("after ops = %q", got)
	}
	if len(p.History()) != 2 {
		t.Errorf("history len = %d", len(p.History()))
	}
	if p.TotalCellsChanged() != 4 {
		t.Errorf("total changed = %d, want 4", p.TotalCellsChanged())
	}

	if !p.Undo() {
		t.Fatal("undo failed")
	}
	if got, _ := p.Table().Cell(0, "field"); got != "air_temperature" {
		t.Errorf("after undo = %q", got)
	}
	if !p.Undo() {
		t.Fatal("second undo failed")
	}
	if got, _ := p.Table().Cell(0, "field"); got != "airtemp" {
		t.Errorf("after double undo = %q", got)
	}
	if p.Undo() {
		t.Error("undo on empty history should return false")
	}

	if !p.Redo() {
		t.Fatal("redo failed")
	}
	if got, _ := p.Table().Cell(0, "field"); got != "air_temperature" {
		t.Errorf("after redo = %q", got)
	}
	if !p.Redo() {
		t.Fatal("second redo failed")
	}
	if got, _ := p.Table().Cell(0, "field"); got != "AIR_TEMPERATURE" {
		t.Errorf("after double redo = %q", got)
	}
	if p.Redo() {
		t.Error("redo with empty stack should return false")
	}
}

func TestProjectApplyClearsRedo(t *testing.T) {
	tb := table.MustNew("f")
	_ = tb.AppendRow("a")
	p := NewProject(tb)
	_, _ = p.Apply(&MassEdit{ColumnName: "f", Edits: []Edit{{From: []string{"a"}, To: "b"}}})
	p.Undo()
	_, _ = p.Apply(&MassEdit{ColumnName: "f", Edits: []Edit{{From: []string{"a"}, To: "c"}}})
	if p.Redo() {
		t.Error("redo stack should be cleared by a new Apply")
	}
	if got, _ := p.Table().Cell(0, "f"); got != "c" {
		t.Errorf("cell = %q, want c", got)
	}
}

func TestProjectFailedOpLeavesTableIntact(t *testing.T) {
	tb := table.MustNew("f")
	_ = tb.AppendRow("a")
	p := NewProject(tb)
	before := p.Table().Clone()
	_, err := p.Apply(&TextTransform{ColumnName: "ghost", Expression: "value"})
	if err == nil {
		t.Fatal("expected error")
	}
	if !p.Table().Equal(before) {
		t.Error("failed op mutated the table")
	}
	if len(p.History()) != 0 {
		t.Error("failed op recorded in history")
	}
}

func TestProjectApplyAll(t *testing.T) {
	tb := table.MustNew("f")
	_ = tb.AppendRow(" A ")
	p := NewProject(tb)
	ops := []Operation{
		&TextTransform{ColumnName: "f", Expression: "value.trim()"},
		&TextTransform{ColumnName: "f", Expression: "value.toLowercase()"},
	}
	results, err := p.ApplyAll(ops)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	if got, _ := p.Table().Cell(0, "f"); got != "a" {
		t.Errorf("cell = %q, want a", got)
	}
	// A failing op mid-list stops and reports position.
	bad := []Operation{&ColumnRemoval{ColumnName: "ghost"}}
	if _, err := p.ApplyAll(bad); err == nil || !strings.Contains(err.Error(), "op 0") {
		t.Errorf("ApplyAll error = %v", err)
	}
}
