package refine

import (
	"fmt"

	"metamess/internal/table"
)

// Project couples a table with an undoable operation history, the way a
// Google Refine project does. Operations applied through the project are
// recorded and can be undone, redone, and exported as a JSON rule file.
type Project struct {
	tbl     *table.Table
	applied []historyEntry
	undone  []historyEntry
}

type historyEntry struct {
	op     Operation
	before *table.Table // snapshot for undo
	result Result
}

// NewProject wraps a table. The project takes ownership of t.
func NewProject(t *table.Table) *Project {
	return &Project{tbl: t}
}

// Table returns the project's current grid.
func (p *Project) Table() *table.Table { return p.tbl }

// Apply runs op against the grid, recording it in the history. Applying a
// new operation clears the redo stack.
func (p *Project) Apply(op Operation) (Result, error) {
	before := p.tbl.Clone()
	res, err := op.Apply(p.tbl)
	if err != nil {
		// Restore the pre-op snapshot: failed ops must not half-apply.
		p.tbl = before
		return Result{}, err
	}
	p.applied = append(p.applied, historyEntry{op: op, before: before, result: res})
	p.undone = nil
	return res, nil
}

// ApplyAll runs a rule list in order, stopping at the first error.
func (p *Project) ApplyAll(ops []Operation) ([]Result, error) {
	results := make([]Result, 0, len(ops))
	for i, op := range ops {
		res, err := p.Apply(op)
		if err != nil {
			return results, fmt.Errorf("refine: applying op %d (%s): %w", i, op.OpName(), err)
		}
		results = append(results, res)
	}
	return results, nil
}

// Undo reverts the most recent operation. It reports whether anything
// was undone.
func (p *Project) Undo() bool {
	if len(p.applied) == 0 {
		return false
	}
	last := p.applied[len(p.applied)-1]
	p.applied = p.applied[:len(p.applied)-1]
	redoEntry := historyEntry{op: last.op, before: p.tbl, result: last.result}
	p.tbl = last.before
	p.undone = append(p.undone, redoEntry)
	return true
}

// Redo re-applies the most recently undone operation. It reports whether
// anything was redone.
func (p *Project) Redo() bool {
	if len(p.undone) == 0 {
		return false
	}
	last := p.undone[len(p.undone)-1]
	p.undone = p.undone[:len(p.undone)-1]
	undoEntry := historyEntry{op: last.op, before: p.tbl, result: last.result}
	p.tbl = last.before
	p.applied = append(p.applied, undoEntry)
	return true
}

// History returns the applied operations in order.
func (p *Project) History() []Operation {
	ops := make([]Operation, len(p.applied))
	for i, e := range p.applied {
		ops[i] = e.op
	}
	return ops
}

// ExportHistory renders the applied operations as a JSON rule file.
func (p *Project) ExportHistory() ([]byte, error) {
	return ExportJSON(p.History())
}

// TotalCellsChanged sums the recorded results, for progress reporting.
func (p *Project) TotalCellsChanged() int {
	n := 0
	for _, e := range p.applied {
		n += e.result.CellsChanged
	}
	return n
}
