package refine

import (
	"testing"

	"metamess/internal/table"
)

func fillGrid(t *testing.T) *table.Table {
	t.Helper()
	tb := table.MustNew("field", "unit")
	rows := [][]string{
		{"water_temperature", "degC"},
		{"water_temperature", ""},
		{"salinity", "PSU"},
		{"salinity", ""},
		{"salinity", ""},
		{"oxygen", ""},
	}
	for _, r := range rows {
		if err := tb.AppendRow(r...); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

func TestFillDownBasic(t *testing.T) {
	tb := fillGrid(t)
	op := &FillDown{ColumnName: "unit"}
	res, err := op.Apply(tb)
	if err != nil {
		t.Fatal(err)
	}
	if res.CellsChanged != 4 {
		t.Errorf("changed = %d, want 4", res.CellsChanged)
	}
	want := []string{"degC", "degC", "PSU", "PSU", "PSU", "PSU"}
	for i, w := range want {
		if got, _ := tb.Cell(i, "unit"); got != w {
			t.Errorf("row %d = %q, want %q", i, got, w)
		}
	}
}

func TestFillDownLeadingBlanksStayBlank(t *testing.T) {
	tb := table.MustNew("unit")
	_ = tb.AppendRow("")
	_ = tb.AppendRow("")
	_ = tb.AppendRow("degC")
	_ = tb.AppendRow("")
	op := &FillDown{ColumnName: "unit"}
	res, err := op.Apply(tb)
	if err != nil {
		t.Fatal(err)
	}
	if res.CellsChanged != 1 {
		t.Errorf("changed = %d, want 1", res.CellsChanged)
	}
	if got, _ := tb.Cell(0, "unit"); got != "" {
		t.Error("leading blank filled from nowhere")
	}
}

func TestFillDownWithFacet(t *testing.T) {
	tb := fillGrid(t)
	// Only salinity rows participate; the degC carried value from the
	// temperature rows must not leak into them.
	op := &FillDown{
		ColumnName: "unit",
		Engine:     EngineConfig{Facets: []Facet{{Column: "field", Selected: []string{"salinity"}}}},
	}
	res, err := op.Apply(tb)
	if err != nil {
		t.Fatal(err)
	}
	if res.CellsChanged != 2 {
		t.Errorf("changed = %d, want 2", res.CellsChanged)
	}
	if got, _ := tb.Cell(1, "unit"); got != "" {
		t.Error("faceted-out row filled")
	}
	if got, _ := tb.Cell(4, "unit"); got != "PSU" {
		t.Errorf("salinity fill = %q", got)
	}
	if got, _ := tb.Cell(5, "unit"); got != "" {
		t.Error("oxygen row filled from salinity carry")
	}
}

func TestFillDownIdempotent(t *testing.T) {
	tb := fillGrid(t)
	op := &FillDown{ColumnName: "unit"}
	if _, err := op.Apply(tb); err != nil {
		t.Fatal(err)
	}
	snap := tb.Clone()
	res, err := op.Apply(tb)
	if err != nil {
		t.Fatal(err)
	}
	if res.CellsChanged != 0 || !tb.Equal(snap) {
		t.Error("second fill-down changed cells")
	}
}

func TestFillDownJSONRoundTrip(t *testing.T) {
	ops := []Operation{&FillDown{ColumnName: "unit"}}
	data, err := ExportJSON(ops)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ImportJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].OpName() != "core/fill-down" {
		t.Fatalf("round trip = %+v", back)
	}
	tb := fillGrid(t)
	if _, err := back[0].Apply(tb); err != nil {
		t.Fatal(err)
	}
	if got, _ := tb.Cell(1, "unit"); got != "degC" {
		t.Errorf("replayed fill = %q", got)
	}
}

func TestFillDownUnknownColumn(t *testing.T) {
	tb := fillGrid(t)
	if _, err := (&FillDown{ColumnName: "ghost"}).Apply(tb); err == nil {
		t.Error("unknown column accepted")
	}
}
