package refine

import (
	"encoding/json"
	"fmt"
)

// opEnvelope is the wire form of any operation: the "op" discriminator
// plus the operation's own fields flattened alongside, exactly as Google
// Refine exports operation histories.
type opEnvelope struct {
	Op string `json:"op"`
	// Raw retains the full object for second-pass decoding.
	raw json.RawMessage
}

// ExportJSON renders a rule list as indented JSON — the artifact a
// curator audits, edits, and checks into version control.
func ExportJSON(ops []Operation) ([]byte, error) {
	out := make([]json.RawMessage, 0, len(ops))
	for i, op := range ops {
		body, err := json.Marshal(op)
		if err != nil {
			return nil, fmt.Errorf("refine: export op %d: %w", i, err)
		}
		// Splice the "op" discriminator into the object.
		var m map[string]json.RawMessage
		if err := json.Unmarshal(body, &m); err != nil {
			return nil, fmt.Errorf("refine: export op %d: %w", i, err)
		}
		nameJSON, _ := json.Marshal(op.OpName())
		m["op"] = nameJSON
		descJSON, _ := json.Marshal(op.Description())
		m["description"] = descJSON
		merged, err := json.Marshal(m)
		if err != nil {
			return nil, fmt.Errorf("refine: export op %d: %w", i, err)
		}
		out = append(out, merged)
	}
	return json.MarshalIndent(out, "", "  ")
}

// ImportJSON parses a rule list previously produced by ExportJSON (or
// written by hand in the same format).
func ImportJSON(data []byte) ([]Operation, error) {
	var raws []json.RawMessage
	if err := json.Unmarshal(data, &raws); err != nil {
		return nil, fmt.Errorf("refine: import: %w", err)
	}
	ops := make([]Operation, 0, len(raws))
	for i, raw := range raws {
		var env struct {
			Op string `json:"op"`
		}
		if err := json.Unmarshal(raw, &env); err != nil {
			return nil, fmt.Errorf("refine: import op %d: %w", i, err)
		}
		op, err := decodeOp(env.Op, raw)
		if err != nil {
			return nil, fmt.Errorf("refine: import op %d: %w", i, err)
		}
		ops = append(ops, op)
	}
	return ops, nil
}

func decodeOp(name string, raw json.RawMessage) (Operation, error) {
	switch name {
	case "core/mass-edit":
		var op MassEdit
		if err := json.Unmarshal(raw, &op); err != nil {
			return nil, err
		}
		if op.Expression == "" {
			op.Expression = "value"
		}
		return &op, nil
	case "core/text-transform":
		var op TextTransform
		if err := json.Unmarshal(raw, &op); err != nil {
			return nil, err
		}
		if op.OnError == "" {
			op.OnError = KeepOriginal
		}
		return &op, nil
	case "core/column-rename":
		var op ColumnRename
		if err := json.Unmarshal(raw, &op); err != nil {
			return nil, err
		}
		return &op, nil
	case "core/column-removal":
		var op ColumnRemoval
		if err := json.Unmarshal(raw, &op); err != nil {
			return nil, err
		}
		return &op, nil
	case "core/column-addition":
		var op ColumnAddition
		if err := json.Unmarshal(raw, &op); err != nil {
			return nil, err
		}
		return &op, nil
	case "core/row-removal":
		var op RowRemoval
		if err := json.Unmarshal(raw, &op); err != nil {
			return nil, err
		}
		return &op, nil
	case "core/fill-down":
		var op FillDown
		if err := json.Unmarshal(raw, &op); err != nil {
			return nil, err
		}
		return &op, nil
	case "":
		return nil, fmt.Errorf("missing \"op\" field")
	default:
		return nil, fmt.Errorf("unknown operation %q", name)
	}
}
