package search

import (
	"math"
	"time"

	"metamess/internal/catalog"
	"metamess/internal/geo"
)

// The planner turns a query into tiers of candidate positions over one
// snapshot shard, one per widening step. Plans are per-shard: every
// shard carries the full set of secondary indexes over its own
// features, so the same tiering and the same outside-score bounds apply
// within each shard independently, and the scatter-gather executor can
// prove per-shard exactness before merging. Each query dimension
// contributes a candidate set from the shard's index:
//
//   - variables: union of the name and hierarchy-parent indexes over
//     all term expansions — a non-candidate's variable score is exactly 0;
//   - space: grid candidates within the distance where the decay score
//     falls below PruneScore — a non-candidate's space score is < ε;
//   - time: interval-index candidates within the corresponding gap —
//     a non-candidate's time score is < ε.
//
// Tier 1 is the intersection of the dimension sets (datasets plausible
// on every dimension), tier 2 their union, tier 3 the full catalog.
// Each tier carries the exact upper bound on the score of anything
// outside it: beyond the intersection, a dataset misses at least one
// dimension set; beyond the union it misses all of them. The executor
// stops widening as soon as the current K-th score strictly exceeds
// the tier bound, so results are provably identical to a full scan.
type plan struct {
	tiers []tier
}

// tier is one widening step: score these positions (all=true → every
// feature), then stop if the K-th accumulated score beats bound.
type tier struct {
	pos   []int32
	all   bool
	bound float64 // score ceiling for anything outside this tier; <0 = none
}

// dimSet is one query dimension's candidate set — unsorted positions,
// possibly with duplicates (the mark sweep below tolerates both).
// all=true means the dimension cannot prune (its index declined, e.g.
// an over-large radius) and every feature must be treated as a
// candidate.
type dimSet struct {
	pos    []int32
	all    bool
	weight float64
	// beta bounds the dimension score of a non-candidate (0 for
	// variables, PruneScore for space and time).
	beta float64
}

func (s *Searcher) buildPlan(sh *catalog.Shard, q Query, expanded []expandedTerm) plan {
	var dims []dimSet
	w := s.opts.Weights
	eps := s.opts.PruneScore

	if len(expanded) > 0 {
		dims = append(dims, dimSet{
			pos:    varCandidates(sh, expanded),
			weight: w.Variables,
			beta:   0,
		})
	}
	if q.Location != nil || q.Region != nil {
		var qb geo.BBox
		if q.Location != nil {
			qb = geo.BBox{
				MinLat: q.Location.Lat, MinLon: q.Location.Lon,
				MaxLat: q.Location.Lat, MaxLon: q.Location.Lon,
			}
		} else {
			qb = *q.Region
		}
		// decay(d, scale) ≥ ε  ⟺  d ≤ scale·(1/ε − 1); +1 km of slack
		// keeps float rounding on the candidate side.
		maxKm := s.opts.SpaceScaleKm*(1/eps-1) + 1
		pos, ok := sh.SpatialCandidates(qb, maxKm)
		dims = append(dims, dimSet{pos: pos, all: !ok, weight: w.Space, beta: eps})
	}
	if q.Time != nil {
		gapF := float64(s.opts.TimeScale) * (1/eps - 1)
		var pos []int32
		ok := false
		if gapF < float64(math.MaxInt64)/4 {
			maxGap := time.Duration(gapF) + time.Hour
			pos, ok = sh.TimeCandidates(*q.Time, maxGap)
		}
		dims = append(dims, dimSet{pos: pos, all: !ok, weight: w.Time, beta: eps})
	}

	totalWeight := 0.0
	for _, d := range dims {
		totalWeight += d.weight
	}
	if totalWeight == 0 {
		return plan{tiers: []tier{{all: true, bound: -1}}}
	}

	// Intersection and union come from one mark sweep: each dimension
	// sets its bit on its candidate positions (idempotent, so unsorted
	// and duplicated index output is fine), then a single ascending
	// pass classifies every position. No sorting, and the tiers come
	// out in deterministic position order.
	fullMask := uint8(1)<<len(dims) - 1
	var allMask uint8
	for di, d := range dims {
		if d.all {
			allMask |= uint8(1) << di
		}
	}
	interAll := allMask == fullMask
	unionAll := allMask != 0

	var interPos, unionPos []int32
	if !interAll {
		marks := make([]uint8, sh.Len())
		for di, d := range dims {
			if d.all {
				continue
			}
			bit := uint8(1) << di
			for _, p := range d.pos {
				marks[p] |= bit
			}
		}
		for i, m := range marks {
			m |= allMask
			if m == fullMask {
				interPos = append(interPos, int32(i))
			}
			if !unionAll && m != 0 {
				unionPos = append(unionPos, int32(i))
			}
		}
	}

	// Outside the intersection at least one dimension d is missed:
	// score ≤ (Σw − w_d·(1−β_d))/Σw, maximized over d. Outside the
	// union every dimension is missed: score ≤ Σ(w_d·β_d)/Σw.
	interBound := 0.0
	unionBound := 0.0
	for _, d := range dims {
		if b := (totalWeight - d.weight*(1-d.beta)) / totalWeight; b > interBound {
			interBound = b
		}
		unionBound += d.weight * d.beta / totalWeight
	}

	// A single dimension makes intersection and union identical, so the
	// union tier is only added for multi-dimensional queries. An all
	// intersection implies every dimension declined to prune (interAll
	// ⟹ unionAll), leaving just the full scan.
	var tiers []tier
	if !interAll {
		tiers = append(tiers, tier{pos: interPos, bound: interBound})
		if len(dims) > 1 && !unionAll {
			tiers = append(tiers, tier{pos: unionPos, bound: unionBound})
		}
	}
	tiers = append(tiers, tier{all: true, bound: -1})
	return plan{tiers: tiers}
}

// varCandidates unions the shard's variable-name and hierarchy-parent
// indexes over all term expansions; positions may repeat across terms
// (the mark sweep dedups).
func varCandidates(sh *catalog.Shard, expanded []expandedTerm) []int32 {
	var out []int32
	for _, et := range expanded {
		for _, exp := range et.expansions {
			out = append(out, sh.WithVariable(exp.Name)...)
		}
		out = append(out, sh.WithParent(et.term.Name)...)
	}
	return out
}
