package search

import (
	"math"
	"time"

	"metamess/internal/catalog"
	"metamess/internal/geo"
)

// The planner turns a query into tiers of candidate positions over one
// snapshot shard, one per widening step. Plans are per-shard: every
// shard carries the full set of secondary indexes over its own
// features, so the same tiering and the same outside-score bounds apply
// within each shard independently, and the scatter-gather executor can
// prove per-shard exactness before merging. Each query dimension
// contributes a candidate set from the shard's index:
//
//   - variables: union of the name and hierarchy-parent indexes over
//     all term expansions — a non-candidate's variable score is exactly 0;
//   - space: grid candidates within the distance where the decay score
//     falls below PruneScore — a non-candidate's space score is < ε;
//   - time: interval-index candidates within the corresponding gap —
//     a non-candidate's time score is < ε.
//
// Tier 1 is the intersection of the dimension sets (datasets plausible
// on every dimension), tier 2 their union, tier 3 the full catalog.
// Each tier carries the exact upper bound on the score of anything
// outside it: beyond the intersection, a dataset misses at least one
// dimension set; beyond the union it misses all of them. The executor
// stops widening as soon as the current K-th score strictly exceeds
// the tier bound, so results are provably identical to a full scan.
//
// Query terms are resolved against the shard's interned dictionary
// exactly once, here: each expansion costs one map probe, and from that
// point the dimension is a list of compressed posting containers marked
// directly into the sweep — no string touches the hot loop. All
// intermediate buffers (candidate lists, marks, tier positions) come
// from the query's pooled scratch, so planning allocates nothing in
// steady state. Because the buffers are recycled, a plan is only valid
// until its scratch is released.
type plan struct {
	tiers []tier
}

// tier is one widening step: score these positions (all=true → every
// feature), then stop if the K-th accumulated score beats bound.
type tier struct {
	pos   []int32
	all   bool
	bound float64 // score ceiling for anything outside this tier; <0 = none
}

// dimSet is one query dimension's candidate set: posting containers
// (the variable dimension, straight from the interned index) and/or
// positions (space and time, whose indexes emit position runs) —
// unsorted, possibly duplicated across entries; the mark sweep below
// tolerates both. all=true means the dimension cannot prune (its index
// declined, e.g. an over-large radius) and every feature must be
// treated as a candidate.
type dimSet struct {
	lists  []catalog.Postings
	pos    []int32
	all    bool
	weight float64
	// beta bounds the dimension score of a non-candidate (0 for
	// variables, PruneScore for space and time).
	beta float64
}

func (s *Searcher) buildPlan(sh *catalog.Shard, q Query, expanded []expandedTerm, sc *scratch) plan {
	dims := sc.dims[:0]
	w := s.opts.Weights
	eps := s.opts.PruneScore

	if len(expanded) > 0 {
		lists := sc.lists[:0]
		for _, et := range expanded {
			for _, exp := range et.expansions {
				if id, ok := sh.VariableID(exp.Name); ok {
					lists = append(lists, sh.VariablePostings(id))
				}
			}
			if id, ok := sh.ParentID(et.term.Name); ok {
				lists = append(lists, sh.ParentPostings(id))
			}
		}
		sc.lists = lists
		dims = append(dims, dimSet{
			lists:  lists,
			weight: w.Variables,
			beta:   0,
		})
	}
	if q.Location != nil || q.Region != nil {
		var qb geo.BBox
		if q.Location != nil {
			qb = geo.BBox{
				MinLat: q.Location.Lat, MinLon: q.Location.Lon,
				MaxLat: q.Location.Lat, MaxLon: q.Location.Lon,
			}
		} else {
			qb = *q.Region
		}
		// decay(d, scale) ≥ ε  ⟺  d ≤ scale·(1/ε − 1); +1 km of slack
		// keeps float rounding on the candidate side.
		maxKm := s.opts.SpaceScaleKm*(1/eps-1) + 1
		pos, ok := sh.SpatialCandidatesAppend(qb, maxKm, sc.spat[:0])
		sc.spat = pos
		dims = append(dims, dimSet{pos: pos, all: !ok, weight: w.Space, beta: eps})
	}
	if q.Time != nil {
		gapF := float64(s.opts.TimeScale) * (1/eps - 1)
		pos := sc.temp[:0]
		ok := false
		if gapF < float64(math.MaxInt64)/4 {
			maxGap := time.Duration(gapF) + time.Hour
			pos, ok = sh.TimeCandidatesAppend(*q.Time, maxGap, pos)
		}
		sc.temp = pos
		dims = append(dims, dimSet{pos: pos, all: !ok, weight: w.Time, beta: eps})
	}
	sc.dims = dims

	totalWeight := 0.0
	for _, d := range dims {
		totalWeight += d.weight
	}
	if totalWeight == 0 {
		sc.tiers = append(sc.tiers[:0], tier{all: true, bound: -1})
		return plan{tiers: sc.tiers}
	}

	// Intersection and union come from one mark sweep: each dimension
	// sets its bit on its candidate positions (idempotent, so unsorted
	// and duplicated index output is fine), then a single ascending
	// pass classifies every position. No sorting, and the tiers come
	// out in deterministic position order.
	fullMask := uint8(1)<<len(dims) - 1
	var allMask uint8
	for di, d := range dims {
		if d.all {
			allMask |= uint8(1) << di
		}
	}
	interAll := allMask == fullMask
	unionAll := allMask != 0

	interPos := sc.inter[:0]
	unionPos := sc.union[:0]
	if !interAll {
		marks := sc.marksFor(sh.Len())
		for di, d := range dims {
			if d.all {
				continue
			}
			bit := uint8(1) << di
			for _, l := range d.lists {
				l.Mark(marks, bit)
			}
			for _, p := range d.pos {
				marks[p] |= bit
			}
		}
		for i, m := range marks {
			m |= allMask
			if m == fullMask {
				interPos = append(interPos, int32(i))
			}
			if !unionAll && m != 0 {
				unionPos = append(unionPos, int32(i))
			}
		}
	}
	sc.inter = interPos
	sc.union = unionPos

	// Outside the intersection at least one dimension d is missed:
	// score ≤ (Σw − w_d·(1−β_d))/Σw, maximized over d. Outside the
	// union every dimension is missed: score ≤ Σ(w_d·β_d)/Σw.
	interBound := 0.0
	unionBound := 0.0
	for _, d := range dims {
		if b := (totalWeight - d.weight*(1-d.beta)) / totalWeight; b > interBound {
			interBound = b
		}
		unionBound += d.weight * d.beta / totalWeight
	}

	// A single dimension makes intersection and union identical, so the
	// union tier is only added for multi-dimensional queries. An all
	// intersection implies every dimension declined to prune (interAll
	// ⟹ unionAll), leaving just the full scan.
	tiers := sc.tiers[:0]
	if !interAll {
		tiers = append(tiers, tier{pos: interPos, bound: interBound})
		if len(dims) > 1 && !unionAll {
			tiers = append(tiers, tier{pos: unionPos, bound: unionBound})
		}
	}
	tiers = append(tiers, tier{all: true, bound: -1})
	sc.tiers = tiers
	return plan{tiers: tiers}
}
