package search

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"metamess/internal/catalog"
	"metamess/internal/geo"
)

// TestScoreBoundsProperty checks that every score a query can produce
// stays in [0,1] for arbitrary feature geometry.
func TestScoreBoundsProperty(t *testing.T) {
	base := time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)
	f := func(lat, lon float64, latOff, lonOff float64, dayOff int16, lo, hi float64) bool {
		clampf := func(v, a, b float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return a
			}
			return math.Mod(math.Abs(v), b-a) + a
		}
		pLat := clampf(lat, -80, 80)
		pLon := clampf(lon, -170, 170)
		fLat := clampf(pLat+math.Mod(latOff, 5), -85, 85)
		fLon := clampf(pLon+math.Mod(lonOff, 5), -175, 175)
		vLo := clampf(lo, -1000, 1000)
		vHi := clampf(hi, -1000, 1000)
		if vHi < vLo {
			vLo, vHi = vHi, vLo
		}
		c := catalog.New()
		feat := &catalog.Feature{
			ID:   catalog.IDForPath("p.obs"),
			Path: "p.obs", Source: "s", Format: "obs",
			BBox: geo.NewBBox(geo.Point{Lat: fLat, Lon: fLon}, geo.Point{Lat: fLat, Lon: fLon}),
			Time: geo.NewTimeRange(base.AddDate(0, 0, int(dayOff)%2000), base.AddDate(0, 0, int(dayOff)%2000+10)),
			Variables: []catalog.VarFeature{{
				RawName: "v", Name: "v",
				Range: geo.NewValueRange(vLo, vHi), Count: 10,
			}},
		}
		if err := c.Upsert(feat); err != nil {
			return false
		}
		s := New(c, DefaultOptions())
		loc := geo.Point{Lat: pLat, Lon: pLon}
		tr := geo.NewTimeRange(base, base.AddDate(0, 0, 30))
		qr := geo.NewValueRange(0, 10)
		res, err := s.Search(Query{
			Location: &loc,
			Time:     &tr,
			Terms:    []Term{{Name: "v", Range: &qr}},
		})
		if err != nil {
			return false
		}
		for _, r := range res {
			if r.Score < 0 || r.Score > 1+1e-9 || math.IsNaN(r.Score) {
				return false
			}
			if r.Space < 0 || r.Space > 1+1e-9 || r.Time < 0 || r.Time > 1+1e-9 ||
				r.Vars < 0 || r.Vars > 1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestScoreMonotoneInDistance verifies that, all else equal, a farther
// dataset never outranks a nearer one.
func TestScoreMonotoneInDistance(t *testing.T) {
	c := catalog.New()
	tr := june2010
	dists := []float64{0.0, 0.2, 0.5, 1.0, 2.0, 5.0}
	for i, d := range dists {
		f := mkFeature(pathN(i), geo.Point{Lat: astoria.Lat + d, Lon: astoria.Lon}, tr,
			v("salinity", 0, 30))
		if err := c.Upsert(f); err != nil {
			t.Fatal(err)
		}
	}
	s := New(c, DefaultOptions())
	res, err := s.Search(Query{Location: &astoria, Terms: []Term{{Name: "salinity"}}, K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(dists) {
		t.Fatalf("results = %d", len(res))
	}
	for i := 1; i < len(res); i++ {
		if res[i-1].Score < res[i].Score {
			t.Errorf("rank %d score %.4f < rank %d score %.4f", i-1, res[i-1].Score, i, res[i].Score)
		}
	}
	// The nearest dataset is first.
	want := catalog.IDForPath(pathN(0))
	if res[0].Feature.ID != want {
		t.Errorf("top hit = %s, want the co-located dataset", res[0].Feature.Path)
	}
}

// TestMoreVariableMatchesScoreHigher verifies the variable dimension
// aggregates across terms.
func TestMoreVariableMatchesScoreHigher(t *testing.T) {
	c := catalog.New()
	both := mkFeature("both.obs", astoria, june2010, v("salinity", 0, 30), v("turbidity", 0, 50))
	one := mkFeature("one.obs", astoria, june2010, v("salinity", 0, 30))
	if err := c.Upsert(both); err != nil {
		t.Fatal(err)
	}
	if err := c.Upsert(one); err != nil {
		t.Fatal(err)
	}
	s := New(c, DefaultOptions())
	res, err := s.Search(Query{Terms: []Term{{Name: "salinity"}, {Name: "turbidity"}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0].Feature.Path != "both.obs" {
		t.Fatalf("results = %+v", res)
	}
	if res[0].Score <= res[1].Score {
		t.Error("two-term match should beat one-term match")
	}
}

func BenchmarkSearchLinear1000(b *testing.B) {
	c := catalog.New()
	names := []string{"water_temperature", "salinity", "turbidity", "dissolved_oxygen"}
	for i := 0; i < 1000; i++ {
		p := geo.Point{Lat: 45.8 + float64(i%80)*0.01, Lon: -124.3 + float64(i%150)*0.01}
		f := mkFeature(pathN(i), p, june2010, v(names[i%len(names)], 0, 30))
		if err := c.Upsert(f); err != nil {
			b.Fatal(err)
		}
	}
	s := New(c, linearOpts())
	q := Query{Location: &astoria, Time: &june2010, Terms: []Term{{Name: "salinity"}}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Search(q); err != nil {
			b.Fatal(err)
		}
	}
}

func linearOpts() Options {
	o := DefaultOptions()
	o.UseIndex = false
	return o
}

func BenchmarkParseQuery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ParseQuery(`near 45.5,-124.4 in mid-2010 with temperature between 5 and 10`); err != nil {
			b.Fatal(err)
		}
	}
}
