package search

import (
	"testing"
	"testing/quick"
	"time"
)

func TestParsePosterExample(t *testing.T) {
	// The poster's example information need, verbatim in spirit.
	q, err := ParseQuery(`near 45.5,-124.4 in mid-2010 with temperature between 5 and 10`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Location == nil || q.Location.Lat != 45.5 || q.Location.Lon != -124.4 {
		t.Errorf("location = %v", q.Location)
	}
	if q.Time == nil {
		t.Fatal("no time range")
	}
	if q.Time.Start.Month() != time.May || q.Time.End.Month() != time.August {
		t.Errorf("mid-2010 = %v", *q.Time)
	}
	if q.Time.Start.Year() != 2010 {
		t.Errorf("year = %d", q.Time.Start.Year())
	}
	if len(q.Terms) != 1 || q.Terms[0].Name != "temperature" {
		t.Fatalf("terms = %+v", q.Terms)
	}
	if q.Terms[0].Range == nil || q.Terms[0].Range.Min != 5 || q.Terms[0].Range.Max != 10 {
		t.Errorf("range = %v", q.Terms[0].Range)
	}
}

func TestParseClauses(t *testing.T) {
	q, err := ParseQuery(`from 2010-05-01 to 2010-08-01 with salinity with "sea surface temperature" top 5`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Time == nil || q.Time.Start.Day() != 1 || q.Time.End.Month() != time.August {
		t.Errorf("time = %v", q.Time)
	}
	if len(q.Terms) != 2 || q.Terms[1].Name != "sea surface temperature" {
		t.Errorf("terms = %+v", q.Terms)
	}
	if q.K != 5 {
		t.Errorf("K = %d", q.K)
	}
}

func TestParseYearQualifiers(t *testing.T) {
	cases := map[string][2]time.Month{
		"in 2011":       {time.January, time.December},
		"in early-2011": {time.January, time.April},
		"in mid-2011":   {time.May, time.August},
		"in late-2011":  {time.September, time.December},
	}
	for src, want := range cases {
		q, err := ParseQuery(src + " with salinity")
		if err != nil {
			t.Errorf("%s: %v", src, err)
			continue
		}
		if q.Time.Start.Month() != want[0] || q.Time.End.Month() != want[1] {
			t.Errorf("%s = %v..%v", src, q.Time.Start, q.Time.End)
		}
	}
}

func TestParseConnectives(t *testing.T) {
	q, err := ParseQuery(`near 46.2,-123.8 and with salinity and with turbidity`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Terms) != 2 {
		t.Errorf("terms = %+v", q.Terms)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",                               // empty query fails validation
		"near",                           // missing coordinates
		"near notapoint",                 // bad coordinates
		"near 99,200 with x",             // out-of-range coordinates
		"from 2010-05-01 with x",         // from without to
		"from yesterday to 2010-08-01",   // bad date
		"in",                             // missing year
		"in soon-2010",                   // unknown qualifier
		"in 99999",                       // silly year
		"with",                           // missing name
		"with temp between 5",            // incomplete between
		"with temp between five and ten", // non-numeric bounds
		"top",                            // missing count
		"top zero",                       // bad count
		"top -3 with x",                  // non-positive count
		`with "unterminated`,             // quote
		"frobnicate the catalog",         // unknown token
	}
	for _, src := range bad {
		if _, err := ParseQuery(src); err == nil {
			t.Errorf("ParseQuery(%q) should fail", src)
		}
	}
}

func TestParseNeverPanics(t *testing.T) {
	f := func(s string) bool {
		if len(s) > 120 {
			s = s[:120]
		}
		_, _ = ParseQuery(s)
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParsedQueryRunsAgainstCatalog(t *testing.T) {
	c := testCatalog(t)
	s := New(c, DefaultOptions())
	q, err := ParseQuery(`near 46.19,-123.83 in mid-2010 with water_temperature between 5 and 10 top 3`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 || res[0].Feature.Path != "near.obs" {
		t.Errorf("results = %+v", res)
	}
}
