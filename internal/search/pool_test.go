package search

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"metamess/internal/catalog"
	"metamess/internal/geo"
)

func res(id string, score float64) Result {
	return Result{Feature: &catalog.Feature{ID: id}, Score: score}
}

func date(y, m, d int) time.Time {
	return time.Date(y, time.Month(m), d, 0, 0, 0, 0, time.UTC)
}

// benchishFeature fabricates a deterministic coastal-transect feature
// for allocation tests: spread positions, a seasonal window, and a
// couple of variables drawn from the name pool.
func benchishFeature(i int, names []string) *catalog.Feature {
	path := fmt.Sprintf("alloc/ds%04d.obs", i)
	lat := 42 + float64(i%50)*0.1
	lon := -125 + float64((i/50)%40)*0.1
	start := date(2010, 1, 1).AddDate(0, 0, (i*3)%700)
	f := &catalog.Feature{
		ID:     catalog.IDForPath(path),
		Path:   path,
		Source: "alloc",
		Format: "obs",
		BBox: geo.BBox{
			MinLat: lat, MinLon: lon,
			MaxLat: lat + 0.05, MaxLon: lon + 0.05,
		},
		Time:        geo.NewTimeRange(start, start.AddDate(0, 0, 14)),
		RowCount:    1000,
		Bytes:       4096,
		ModTime:     start,
		ScannedAt:   start,
		ContentHash: fmt.Sprintf("alloc%d", i),
		Variables: []catalog.VarFeature{
			{RawName: names[i%len(names)], Name: names[i%len(names)],
				Range: geo.NewValueRange(float64(i%20), float64(i%20+15)), Count: 900},
			{RawName: names[(i+1)%len(names)], Name: names[(i+1)%len(names)],
				Range: geo.NewValueRange(0, 30), Count: 800, Parent: "fluorescence"},
		},
	}
	return f
}

// rankedIDs drains a heap's contents through the final ranking order.
func rankedIDs(h *topK) []string {
	out := append([]Result(nil), h.items...)
	rank(out)
	ids := make([]string, len(out))
	for i, r := range out {
		ids[i] = r.Feature.ID
	}
	return ids
}

func requireIDs(t *testing.T, ctx string, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %v, want %v", ctx, got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: got %v, want %v", ctx, got, want)
		}
	}
}

// TestTopKDegenerateBounds pins the edge bounds: K=0 keeps nothing (and
// must not panic), K=1 keeps exactly the best under the ranking order.
func TestTopKDegenerateBounds(t *testing.T) {
	h := newTopK(0)
	for i := 0; i < 5; i++ {
		h.consider(res(fmt.Sprintf("d%d", i), float64(i)))
	}
	if len(h.items) != 0 {
		t.Fatalf("K=0 heap kept %d items", len(h.items))
	}

	h = newTopK(1)
	h.consider(res("mid", 0.5))
	h.consider(res("best", 0.9))
	h.consider(res("low", 0.1))
	requireIDs(t, "K=1", rankedIDs(h), []string{"best"})
}

// TestTopKTieBreaking pins the total order on equal scores: the lower
// ID ranks higher, so with K=2 and three equal-scored candidates the
// two lowest IDs survive regardless of arrival order.
func TestTopKTieBreaking(t *testing.T) {
	arrivals := [][]string{
		{"a", "b", "c"},
		{"c", "b", "a"},
		{"b", "a", "c"},
		{"c", "a", "b"},
	}
	for _, order := range arrivals {
		h := newTopK(2)
		for _, id := range order {
			h.consider(res(id, 0.7))
		}
		requireIDs(t, fmt.Sprintf("arrival %v", order), rankedIDs(h), []string{"a", "b"})
	}
}

// TestTopKEvictionOrder feeds scores in several orders and checks the
// root always holds the worst kept result and evictions happen strictly
// worst-first: the survivors are the true top-K with the K-th at the
// root.
func TestTopKEvictionOrder(t *testing.T) {
	feeds := [][]float64{
		{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7},
		{0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1},
		{0.4, 0.7, 0.1, 0.6, 0.3, 0.5, 0.2},
	}
	for fi, feed := range feeds {
		h := newTopK(3)
		for i, s := range feed {
			h.consider(res(fmt.Sprintf("d%d", i), s))
			if len(h.items) == 0 {
				continue
			}
			// Root invariant after every insert: no kept item ranks below it.
			for _, r := range h.items[1:] {
				if outranked(r, h.items[0]) {
					t.Fatalf("feed %d: root %.2f not the worst kept (saw %.2f)",
						fi, h.items[0].Score, r.Score)
				}
			}
		}
		got := append([]Result(nil), h.items...)
		rank(got)
		if len(got) != 3 || got[0].Score != 0.7 || got[1].Score != 0.6 || got[2].Score != 0.5 {
			t.Fatalf("feed %d: survivors %v, want scores 0.7/0.6/0.5", fi, got)
		}
		if h.items[0].Score != 0.5 {
			t.Fatalf("feed %d: root score %.2f, want the K-th (0.5)", fi, h.items[0].Score)
		}
	}
}

// TestTopKPooledReset guards the pooling change: a heap reused through
// reset must behave exactly like a fresh one — stale items gone, a new
// (smaller or larger) K honored, and a scatter-gather merge of several
// reused heaps identical to one built from scratch.
func TestTopKPooledReset(t *testing.T) {
	h := &topK{}
	h.reset(3)
	for i := 0; i < 6; i++ {
		h.consider(res(fmt.Sprintf("old%d", i), 0.9))
	}
	h.reset(2) // shrink across reuse
	h.consider(res("x", 0.3))
	h.consider(res("y", 0.8))
	h.consider(res("z", 0.5))
	requireIDs(t, "after reset", rankedIDs(h), []string{"y", "z"})

	// Merge pooled-then-reset per-shard heaps into a fresh gather heap,
	// as the scatter path does each tier round.
	shard1, shard2 := &topK{}, &topK{}
	for round := 0; round < 3; round++ {
		shard1.reset(2)
		shard2.reset(2)
	}
	for i, s := range []float64{0.2, 0.9, 0.4} {
		shard1.consider(res(fmt.Sprintf("s1-%d", i), s))
	}
	for i, s := range []float64{0.6, 0.1, 0.8} {
		shard2.consider(res(fmt.Sprintf("s2-%d", i), s))
	}
	merge := newTopK(3)
	for _, sh := range []*topK{shard1, shard2} {
		for _, r := range sh.items {
			merge.consider(r)
		}
	}
	requireIDs(t, "merged", rankedIDs(merge), []string{"s1-1", "s2-2", "s2-0"})
}

// TestEffectiveWorkersSerialFallback pins the adaptive fan-out clamp:
// one worker per parallelMinWork candidates, serial below the
// threshold, never exceeding the request — so a small tier runs on the
// calling goroutine no matter how many workers were configured.
func TestEffectiveWorkersSerialFallback(t *testing.T) {
	min := parallelMinWork
	cases := []struct {
		workers, work, want int
	}{
		{8, 0, 1},
		{8, min - 1, 1},   // below threshold: serial despite 8 workers
		{8, min, 1},       // one threshold's worth still serial-equivalent
		{8, 2 * min, 2},   // enough for two real batches
		{8, 16 * min, 8},  // clamped by the request, not the work
		{2, 16 * min, 2},  //
		{1, 16 * min, 1},  // explicit serial config stays serial
		{0, 16 * min, 1},  // non-positive request normalizes to serial
		{8, 8*min - 1, 7}, // floor division: just under 8 batches
		{8, 8 * min, 8},   //
	}
	for _, c := range cases {
		if got := effectiveWorkers(c.workers, c.work); got != c.want {
			t.Errorf("effectiveWorkers(%d, %d) = %d, want %d", c.workers, c.work, got, c.want)
		}
	}
}

// TestClampFanOutProcsCeiling pins the scheduler-parallelism cap: a
// worker request beyond GOMAXPROCS (or the test override) is cut to the
// ceiling, so on a 1-core host every configuration degrades to the
// serial path instead of paying goroutine overhead for no concurrency.
func TestClampFanOutProcsCeiling(t *testing.T) {
	oldCap := maxFanOutProcs
	defer func() { maxFanOutProcs = oldCap }()

	maxFanOutProcs = 0 // default: machine parallelism
	limit := runtime.GOMAXPROCS(0)
	if n := runtime.NumCPU(); n < limit {
		limit = n
	}
	if got := clampFanOut(limit + 5); got != limit {
		t.Errorf("clampFanOut(%d) = %d, want min(GOMAXPROCS, NumCPU) = %d", limit+5, got, limit)
	}
	if got := clampFanOut(1); got != 1 {
		t.Errorf("clampFanOut(1) = %d, want 1", got)
	}

	maxFanOutProcs = 4
	for workers, want := range map[int]int{1: 1, 4: 4, 8: 4} {
		if got := clampFanOut(workers); got != want {
			t.Errorf("cap=4: clampFanOut(%d) = %d, want %d", workers, got, want)
		}
	}
}

// TestSearchSteadyStateAllocs pins the pooling payoff: once the scratch
// pool is warm, a single-shard indexed query allocates only its
// response — bounded by a small constant independent of catalog size.
func TestSearchSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inflates allocation counts")
	}
	names := []string{"water_temperature", "salinity", "turbidity", "nitrate"}
	c := catalog.NewSharded(1)
	for i := 0; i < 400; i++ {
		if err := c.Upsert(benchishFeature(i, names)); err != nil {
			t.Fatal(err)
		}
	}
	c.Snapshot()
	s := New(c, DefaultOptions())
	q := Query{
		Location: &geo.Point{Lat: 44.6, Lon: -124.0},
		Time:     &geo.TimeRange{Start: date(2010, 6, 1), End: date(2010, 8, 1)},
		Terms:    []Term{{Name: "salinity", Range: &geo.ValueRange{Min: 25, Max: 35}}},
		K:        10,
	}
	for i := 0; i < 4; i++ { // warm the pool and the lazy snapshot state
		if _, err := s.Search(q); err != nil {
			t.Fatal(err)
		}
	}
	const budget = 48 // response slice + K explanations + query bookkeeping
	avg := testing.AllocsPerRun(50, func() {
		if _, err := s.Search(q); err != nil {
			t.Fatal(err)
		}
	})
	if avg > budget {
		t.Fatalf("steady-state Search allocates %.1f/op, budget %d", avg, budget)
	}
}
