package search

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"metamess/internal/geo"
)

// ParseQuery parses the textual query language of the "Data Near Here"
// search box. The poster's example information need parses directly:
//
//	near 45.5,-124.4 in mid-2010 with temperature between 5 and 10
//
// Clauses (any order, any subset):
//
//	near LAT,LON                      location
//	from YYYY-MM-DD to YYYY-MM-DD     explicit period
//	in YYYY | in early-YYYY | in mid-YYYY | in late-YYYY
//	with NAME [between X and Y]       variable term (repeatable)
//	top K                             result count
//
// Variable names may be bare words or quoted ("sea surface temperature").
func ParseQuery(s string) (Query, error) {
	var q Query
	toks, err := tokenizeQuery(s)
	if err != nil {
		return q, err
	}
	i := 0
	next := func() (string, bool) {
		if i >= len(toks) {
			return "", false
		}
		t := toks[i]
		i++
		return t, true
	}
	peek := func() string {
		if i >= len(toks) {
			return ""
		}
		return toks[i]
	}
	for {
		tok, ok := next()
		if !ok {
			break
		}
		switch strings.ToLower(tok) {
		case "near":
			arg, ok := next()
			if !ok {
				return q, fmt.Errorf("search: near needs LAT,LON")
			}
			p, err := parseLatLon(arg)
			if err != nil {
				return q, err
			}
			q.Location = &p
		case "from":
			arg, ok := next()
			if !ok {
				return q, fmt.Errorf("search: from needs a date")
			}
			start, err := parseDate(arg)
			if err != nil {
				return q, err
			}
			if kw, _ := next(); strings.ToLower(kw) != "to" {
				return q, fmt.Errorf("search: from DATE must be followed by to DATE")
			}
			arg, ok = next()
			if !ok {
				return q, fmt.Errorf("search: to needs a date")
			}
			end, err := parseDate(arg)
			if err != nil {
				return q, err
			}
			tr := geo.NewTimeRange(start, end)
			q.Time = &tr
		case "in":
			arg, ok := next()
			if !ok {
				return q, fmt.Errorf("search: in needs a year")
			}
			tr, err := parseYearish(arg)
			if err != nil {
				return q, err
			}
			q.Time = &tr
		case "with":
			name, ok := next()
			if !ok {
				return q, fmt.Errorf("search: with needs a variable name")
			}
			term := Term{Name: name}
			if strings.ToLower(peek()) == "between" {
				next() // consume between
				loTok, ok1 := next()
				andTok, ok2 := next()
				hiTok, ok3 := next()
				if !ok1 || !ok2 || !ok3 || strings.ToLower(andTok) != "and" {
					return q, fmt.Errorf("search: between needs X and Y")
				}
				lo, err1 := strconv.ParseFloat(loTok, 64)
				hi, err2 := strconv.ParseFloat(hiTok, 64)
				if err1 != nil || err2 != nil {
					return q, fmt.Errorf("search: between bounds must be numbers")
				}
				r := geo.NewValueRange(lo, hi)
				term.Range = &r
			}
			q.Terms = append(q.Terms, term)
		case "top":
			arg, ok := next()
			if !ok {
				return q, fmt.Errorf("search: top needs a count")
			}
			k, err := strconv.Atoi(arg)
			if err != nil || k <= 0 {
				return q, fmt.Errorf("search: bad top count %q", arg)
			}
			q.K = k
		case "and": // connective noise between clauses is allowed
		default:
			return q, fmt.Errorf("search: unexpected token %q", tok)
		}
	}
	if err := q.Validate(); err != nil {
		return q, err
	}
	return q, nil
}

// tokenizeQuery splits on whitespace, honouring double-quoted phrases.
func tokenizeQuery(s string) ([]string, error) {
	var toks []string
	var cur strings.Builder
	inQuote := false
	flush := func() {
		if cur.Len() > 0 {
			toks = append(toks, cur.String())
			cur.Reset()
		}
	}
	for _, r := range s {
		switch {
		case r == '"':
			if inQuote {
				flush()
			}
			inQuote = !inQuote
		case !inQuote && (r == ' ' || r == '\t' || r == '\n'):
			flush()
		default:
			cur.WriteRune(r)
		}
	}
	if inQuote {
		return nil, fmt.Errorf("search: unterminated quote")
	}
	flush()
	return toks, nil
}

func parseLatLon(s string) (geo.Point, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 2 {
		return geo.Point{}, fmt.Errorf("search: location %q must be LAT,LON", s)
	}
	lat, err1 := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
	lon, err2 := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
	if err1 != nil || err2 != nil {
		return geo.Point{}, fmt.Errorf("search: bad coordinates %q", s)
	}
	p := geo.Point{Lat: lat, Lon: lon}
	if !p.Valid() {
		return geo.Point{}, fmt.Errorf("search: coordinates %q out of range", s)
	}
	return p, nil
}

func parseDate(s string) (time.Time, error) {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return time.Time{}, fmt.Errorf("search: bad date %q (want YYYY-MM-DD)", s)
	}
	return t, nil
}

// parseYearish handles "2010", "early-2010", "mid-2010", "late-2010".
func parseYearish(s string) (geo.TimeRange, error) {
	part := ""
	yearStr := s
	if i := strings.IndexByte(s, '-'); i > 0 {
		part, yearStr = strings.ToLower(s[:i]), s[i+1:]
	}
	year, err := strconv.Atoi(yearStr)
	if err != nil || year < 1800 || year > 3000 {
		return geo.TimeRange{}, fmt.Errorf("search: bad year %q", s)
	}
	month := func(m time.Month, day int) time.Time {
		return time.Date(year, m, day, 0, 0, 0, 0, time.UTC)
	}
	switch part {
	case "":
		return geo.NewTimeRange(month(time.January, 1), month(time.December, 31)), nil
	case "early":
		return geo.NewTimeRange(month(time.January, 1), month(time.April, 30)), nil
	case "mid":
		return geo.NewTimeRange(month(time.May, 1), month(time.August, 31)), nil
	case "late":
		return geo.NewTimeRange(month(time.September, 1), month(time.December, 31)), nil
	default:
		return geo.TimeRange{}, fmt.Errorf("search: unknown year qualifier %q", part)
	}
}
