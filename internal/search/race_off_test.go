//go:build !race

package search

// raceEnabled reports whether the race detector instruments this build;
// allocation-count assertions are skipped under it (instrumentation
// adds allocations that testing.AllocsPerRun cannot see past).
const raceEnabled = false
