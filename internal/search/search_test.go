package search

import (
	"strings"
	"testing"
	"time"

	"metamess/internal/catalog"
	"metamess/internal/geo"
	"metamess/internal/semdiv"
	"metamess/internal/vocab"
)

var (
	astoria  = geo.Point{Lat: 46.19, Lon: -123.83}
	portland = geo.Point{Lat: 45.52, Lon: -122.68}
	june2010 = geo.NewTimeRange(
		time.Date(2010, 6, 1, 0, 0, 0, 0, time.UTC),
		time.Date(2010, 6, 30, 0, 0, 0, 0, time.UTC))
)

// mkFeature builds a feature near a point with given vars.
func mkFeature(path string, at geo.Point, tr geo.TimeRange, vars ...catalog.VarFeature) *catalog.Feature {
	return &catalog.Feature{
		ID:     catalog.IDForPath(path),
		Path:   path,
		Source: "stations",
		Format: "obs",
		BBox: geo.BBox{
			MinLat: at.Lat - 0.01, MinLon: at.Lon - 0.01,
			MaxLat: at.Lat + 0.01, MaxLon: at.Lon + 0.01,
		},
		Time:      tr,
		Variables: vars,
		RowCount:  100,
		Bytes:     1000,
	}
}

func v(name string, min, max float64) catalog.VarFeature {
	return catalog.VarFeature{
		RawName: name, Name: name,
		Range: geo.ValueRange{Min: min, Max: max}, Count: 100,
	}
}

func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	c := catalog.New()
	feats := []*catalog.Feature{
		mkFeature("near.obs", astoria, june2010, v("water_temperature", 5, 10), v("salinity", 10, 30)),
		mkFeature("far.obs", portland, june2010, v("water_temperature", 5, 10)),
		mkFeature("late.obs", astoria,
			geo.NewTimeRange(
				time.Date(2011, 6, 1, 0, 0, 0, 0, time.UTC),
				time.Date(2011, 6, 30, 0, 0, 0, 0, time.UTC)),
			v("water_temperature", 15, 22)),
		mkFeature("novar.obs", astoria, june2010, v("turbidity", 0, 50)),
	}
	for _, f := range feats {
		if err := c.Upsert(f); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestSearchRanksNearnessFirst(t *testing.T) {
	c := testCatalog(t)
	s := New(c, DefaultOptions())
	// The poster's example query: observations near a point in mid-2010
	// with temperature between 5-10C.
	res, err := s.Search(Query{
		Location: &astoria,
		Time:     &june2010,
		Terms:    []Term{{Name: "water_temperature", Range: &geo.ValueRange{Min: 5, Max: 10}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("no results")
	}
	if res[0].Feature.Path != "near.obs" {
		t.Errorf("top hit = %s, want near.obs", res[0].Feature.Path)
	}
	// The perfect hit scores near 1 on every dimension.
	if res[0].Score < 0.95 {
		t.Errorf("top score = %.3f, want ~1", res[0].Score)
	}
	// far.obs matches variable+time but is ~100km away: lower score.
	var farScore, nearScore float64
	for _, r := range res {
		switch r.Feature.Path {
		case "near.obs":
			nearScore = r.Score
		case "far.obs":
			farScore = r.Score
		}
	}
	if farScore >= nearScore {
		t.Errorf("far (%.3f) should score below near (%.3f)", farScore, nearScore)
	}
}

func TestSearchTimeGapLowersScore(t *testing.T) {
	c := testCatalog(t)
	s := New(c, DefaultOptions())
	res, err := s.Search(Query{Location: &astoria, Time: &june2010})
	if err != nil {
		t.Fatal(err)
	}
	scores := map[string]float64{}
	for _, r := range res {
		scores[r.Feature.Path] = r.Score
	}
	if scores["late.obs"] >= scores["near.obs"] {
		t.Errorf("year-late dataset (%.3f) should rank below in-period (%.3f)",
			scores["late.obs"], scores["near.obs"])
	}
}

func TestSearchValueRangeFit(t *testing.T) {
	c := testCatalog(t)
	s := New(c, DefaultOptions())
	// Query 5-10C: late.obs observed 15-22C (disjoint) must score below
	// near.obs (5-10C, exact cover).
	res, err := s.Search(Query{
		Terms: []Term{{Name: "water_temperature", Range: &geo.ValueRange{Min: 5, Max: 10}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	scores := map[string]float64{}
	for _, r := range res {
		scores[r.Feature.Path] = r.Score
	}
	if scores["late.obs"] >= scores["near.obs"] {
		t.Errorf("disjoint range (%.3f) should score below covering range (%.3f)",
			scores["late.obs"], scores["near.obs"])
	}
}

func TestSearchKLimitsAndOrdering(t *testing.T) {
	c := testCatalog(t)
	s := New(c, DefaultOptions())
	res, err := s.Search(Query{Location: &astoria, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("K=2 returned %d", len(res))
	}
	if res[0].Score < res[1].Score {
		t.Error("results not sorted by score")
	}
}

func TestSearchEmptyAndInvalidQueries(t *testing.T) {
	s := New(testCatalog(t), DefaultOptions())
	if _, err := s.Search(Query{}); err == nil {
		t.Error("empty query accepted")
	}
	bad := geo.Point{Lat: 99, Lon: 0}
	if _, err := s.Search(Query{Location: &bad}); err == nil {
		t.Error("invalid location accepted")
	}
	if _, err := s.Search(Query{Terms: []Term{{}}}); err == nil {
		t.Error("empty term accepted")
	}
	r := geo.EmptyBBox()
	if _, err := s.Search(Query{Region: &r}); err == nil {
		t.Error("empty region accepted")
	}
}

func TestSearchRegionQuery(t *testing.T) {
	c := testCatalog(t)
	s := New(c, DefaultOptions())
	region := geo.BBox{MinLat: 46, MinLon: -124.2, MaxLat: 46.4, MaxLon: -123.4}
	res, err := s.Search(Query{Region: &region})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 || res[0].Feature.Path == "far.obs" {
		t.Errorf("region query top hit = %v", res)
	}
}

func TestSearchIndexVsLinearScanAgree(t *testing.T) {
	c := testCatalog(t)
	q := Query{
		Location: &astoria,
		Terms:    []Term{{Name: "water_temperature"}},
	}
	withIdx := New(c, Options{UseIndex: true})
	noIdx := New(c, Options{UseIndex: false})
	a, err := withIdx.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := noIdx.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("index %d vs scan %d results", len(a), len(b))
	}
	for i := range a {
		if a[i].Feature.ID != b[i].Feature.ID || a[i].Score != b[i].Score {
			t.Errorf("rank %d differs: %s/%.3f vs %s/%.3f",
				i, a[i].Feature.Path, a[i].Score, b[i].Feature.Path, b[i].Score)
		}
	}
}

func TestSearchExcludedVariablesInvisible(t *testing.T) {
	c := catalog.New()
	f := mkFeature("qa.obs", astoria, june2010, v("salinity", 10, 30))
	f.Variables = append(f.Variables, catalog.VarFeature{
		RawName: "qa_level", Name: "qa_level", Excluded: true, Count: 10,
		Range: geo.ValueRange{Min: 0, Max: 4},
	})
	if err := c.Upsert(f); err != nil {
		t.Fatal(err)
	}
	s := New(c, DefaultOptions())
	res, err := s.Search(Query{Terms: []Term{{Name: "qa_level"}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Errorf("excluded variable matched: %v", res)
	}
	// But the summary page still shows it (detailed dataset view).
	sum := Summarize(f)
	if len(sum.Excluded) != 1 || sum.Excluded[0].Name != "qa_level" {
		t.Errorf("summary excluded = %+v", sum.Excluded)
	}
}

func TestSearchWithKnowledgeExpander(t *testing.T) {
	c := testCatalog(t)
	k, err := semdiv.NewKnowledge(vocab.Standard())
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Expander = NewKnowledgeExpander(k)
	s := New(c, opts)

	// "wtemp" is a curated synonym of water_temperature.
	res, err := s.Search(Query{Terms: []Term{{Name: "wtemp"}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("synonym query found nothing")
	}
	if res[0].TermScores[0].MatchedAs != "water_temperature" {
		t.Errorf("matched as %q", res[0].TermScores[0].MatchedAs)
	}

	// Bare "temperature" expands across contexts and still matches.
	res, err = s.Search(Query{Terms: []Term{{Name: "temperature"}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("bare base query found nothing")
	}

	// Abbreviation: SST resolves to water_temperature.
	res, err = s.Search(Query{Terms: []Term{{Name: "SST"}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("abbreviation query found nothing")
	}

	// Without the expander, the synonym query finds nothing.
	plain := New(c, DefaultOptions())
	res, err = plain.Search(Query{Terms: []Term{{Name: "wtemp"}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Errorf("unexpanded synonym matched: %v", res)
	}
}

func TestSearchHierarchyParentMatch(t *testing.T) {
	c := catalog.New()
	f := mkFeature("optics.obs", astoria, june2010, v("fluores375", 0, 100))
	f.Variables[0].Parent = "fluorescence"
	if err := c.Upsert(f); err != nil {
		t.Fatal(err)
	}
	s := New(c, DefaultOptions())
	res, err := s.Search(Query{Terms: []Term{{Name: "fluorescence"}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("parent query results = %d", len(res))
	}
	if res[0].Vars != 0.8 {
		t.Errorf("parent match weight = %.2f, want 0.8", res[0].Vars)
	}
	if !strings.Contains(res[0].TermScores[0].MatchedAs, "child of") {
		t.Errorf("matchedAs = %q", res[0].TermScores[0].MatchedAs)
	}
}

func TestExpanderWeightsAndDedup(t *testing.T) {
	k, err := semdiv.NewKnowledge(vocab.Standard())
	if err != nil {
		t.Fatal(err)
	}
	e := NewKnowledgeExpander(k)
	exps := e.Expand("temperature")
	names := map[string]float64{}
	for _, x := range exps {
		names[x.Name] = x.Weight
	}
	if names["water_temperature"] != 0.9 || names["air_temperature"] != 0.9 {
		t.Errorf("context expansions = %v", names)
	}
	if names["temperature"] != 1 {
		t.Errorf("original term weight = %v", names["temperature"])
	}
	// Sorted by weight desc.
	for i := 1; i < len(exps); i++ {
		if exps[i-1].Weight < exps[i].Weight {
			t.Error("expansions not sorted by weight")
		}
	}
	// Single-context base keeps full weight.
	for _, x := range e.Expand("humidity") {
		if x.Name == "relative_humidity" && x.Weight != 1 {
			t.Errorf("single-context weight = %v", x.Weight)
		}
	}
}

func TestRangeFit(t *testing.T) {
	cases := []struct {
		query, observed  geo.ValueRange
		wantMin, wantMax float64
	}{
		{geo.ValueRange{Min: 5, Max: 10}, geo.ValueRange{Min: 0, Max: 20}, 1, 1},       // covered
		{geo.ValueRange{Min: 5, Max: 10}, geo.ValueRange{Min: 7.5, Max: 20}, 0.5, 0.5}, // half overlap
		{geo.ValueRange{Min: 5, Max: 10}, geo.ValueRange{Min: 50, Max: 60}, 0, 0.1},    // far disjoint
	}
	for _, c := range cases {
		got := rangeFit(c.query, c.observed)
		if got < c.wantMin-1e-9 || got > c.wantMax+1e-9 {
			t.Errorf("rangeFit(%v, %v) = %.3f, want in [%.2f,%.2f]",
				c.query, c.observed, got, c.wantMin, c.wantMax)
		}
	}
	// Point query.
	if got := rangeFit(geo.ValueRange{Min: 7, Max: 7}, geo.ValueRange{Min: 5, Max: 10}); got != 1 {
		t.Errorf("contained point fit = %.3f", got)
	}
}

func TestSummaryRender(t *testing.T) {
	f := mkFeature("stations/2010/s1.obs", astoria, june2010,
		v("water_temperature", 5.2, 18.9), v("salinity", 3, 30))
	f.Variables[0].RawName = "ATastn"
	f.Variables[0].CanonicalUnit = "degC"
	f.Variables[0].Contexts = []string{"water"}
	f.Variables = append(f.Variables, catalog.VarFeature{
		RawName: "qa_level", Name: "qa_level", Excluded: true, Count: 5,
		Range: geo.ValueRange{Min: 0, Max: 4}, Unit: "1",
	})
	sum := Summarize(f)
	if len(sum.Searchable) != 2 || len(sum.Excluded) != 1 {
		t.Fatalf("summary split = %d/%d", len(sum.Searchable), len(sum.Excluded))
	}
	page := sum.Render()
	for _, want := range []string{
		"stations/2010/s1.obs",
		"water_temperature [degC]",
		"raw: ATastn",
		"qa_level",
		"[excluded from search]",
		"contexts: water",
		"2 searchable, 1 excluded",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("summary page missing %q:\n%s", want, page)
		}
	}
}

func BenchmarkSearch1000(b *testing.B) {
	c := catalog.New()
	names := []string{"water_temperature", "salinity", "turbidity", "dissolved_oxygen"}
	for i := 0; i < 1000; i++ {
		p := geo.Point{Lat: 45.8 + float64(i%80)*0.01, Lon: -124.3 + float64(i%150)*0.01}
		f := mkFeature(pathN(i), p, june2010, v(names[i%len(names)], 0, 30), v(names[(i+1)%len(names)], 0, 30))
		if err := c.Upsert(f); err != nil {
			b.Fatal(err)
		}
	}
	s := New(c, DefaultOptions())
	q := Query{Location: &astoria, Time: &june2010, Terms: []Term{{Name: "salinity"}}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Search(q); err != nil {
			b.Fatal(err)
		}
	}
}

func pathN(i int) string {
	return "bench/" + string(rune('a'+i%26)) + "/" + time.Unix(int64(i), 0).UTC().Format("20060102150405") + ".obs"
}
