package search

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"metamess/internal/catalog"
	"metamess/internal/geo"
)

// The equivalence property: indexed parallel search over the snapshot
// returns byte-identical rankings to the linear-scan ablation
// (UseIndex=false) for every catalog, query, and K — including K larger
// than the catalog. Scores are compared with exact float equality;
// any drift in the planner's widening bounds, the candidate indexes,
// or the heap merge shows up here.

func randomFeature(rng *rand.Rand, trial, i int, names []string) *catalog.Feature {
	path := fmt.Sprintf("t%d/d%03d.obs", trial, i)
	f := &catalog.Feature{
		ID:     catalog.IDForPath(path),
		Path:   path,
		Source: "stations",
		Format: "obs",
	}
	// 10% of features have no spatial extent at all.
	if rng.Float64() >= 0.1 {
		lat := -75 + rng.Float64()*150
		lon := -179 + rng.Float64()*358
		dLat := rng.Float64() * 0.5
		dLon := rng.Float64() * 0.5
		f.BBox = geo.BBox{
			MinLat: lat, MinLon: lon,
			MaxLat: clampLat(lat + dLat), MaxLon: clampLon(lon + dLon),
		}
	}
	// 10% have no temporal extent.
	if rng.Float64() >= 0.1 {
		start := time.Date(2000+rng.Intn(15), time.Month(1+rng.Intn(12)), 1+rng.Intn(28),
			0, 0, 0, 0, time.UTC)
		f.Time = geo.NewTimeRange(start, start.AddDate(0, 0, rng.Intn(400)))
	}
	// 1-4 distinct variables; some excluded, some with hierarchy parents.
	perm := rng.Perm(len(names))
	nVars := 1 + rng.Intn(4)
	for _, vi := range perm[:nVars] {
		lo := -5 + rng.Float64()*40
		v := catalog.VarFeature{
			RawName:  names[vi],
			Name:     names[vi],
			Range:    geo.NewValueRange(lo, lo+rng.Float64()*20),
			Count:    rng.Intn(200),
			Excluded: rng.Float64() < 0.1,
		}
		switch names[vi] {
		case "fluores375", "fluores410":
			v.Parent = "fluorescence"
		}
		f.Variables = append(f.Variables, v)
	}
	return f
}

func clampLat(v float64) float64 {
	if v > 90 {
		return 90
	}
	return v
}

func clampLon(v float64) float64 {
	if v > 180 {
		return 180
	}
	return v
}

func randomQuery(rng *rand.Rand, names []string, n int) Query {
	var q Query
	for empty := true; empty; {
		q = Query{}
		if rng.Float64() < 0.6 {
			q.Location = &geo.Point{Lat: -75 + rng.Float64()*150, Lon: -179 + rng.Float64()*358}
			empty = false
		} else if rng.Float64() < 0.3 {
			lat := -75 + rng.Float64()*150
			lon := -170 + rng.Float64()*340
			b := geo.NewBBox(geo.Point{Lat: lat, Lon: lon},
				geo.Point{Lat: clampLat(lat + 2), Lon: clampLon(lon + 2)})
			q.Region = &b
			empty = false
		}
		if rng.Float64() < 0.6 {
			start := time.Date(2000+rng.Intn(15), time.Month(1+rng.Intn(12)), 1+rng.Intn(28),
				0, 0, 0, 0, time.UTC)
			tr := geo.NewTimeRange(start, start.AddDate(0, 0, rng.Intn(120)))
			q.Time = &tr
			empty = false
		}
		for t := rng.Intn(4); t > 0; t-- {
			term := Term{Name: names[rng.Intn(len(names))]}
			if rng.Float64() < 0.5 {
				lo := rng.Float64() * 30
				r := geo.NewValueRange(lo, lo+rng.Float64()*15)
				term.Range = &r
			}
			q.Terms = append(q.Terms, term)
			empty = false
		}
	}
	switch rng.Intn(4) {
	case 0:
		q.K = 1
	case 1:
		q.K = 3
	case 2:
		q.K = 10
	default:
		q.K = n + 7 // deliberately larger than the catalog
	}
	return q
}

func TestSnapshotParallelMatchesLinearScan(t *testing.T) {
	// Force the parallel executor even on tiny catalogs and single-CPU
	// hosts.
	oldMin, oldCap := parallelMinWork, maxFanOutProcs
	parallelMinWork, maxFanOutProcs = 1, 64
	defer func() { parallelMinWork, maxFanOutProcs = oldMin, oldCap }()

	names := []string{
		"water_temperature", "salinity", "turbidity", "dissolved_oxygen",
		"fluores375", "fluores410", "nitrate", "fluorescence",
	}
	rng := rand.New(rand.NewSource(20130408))
	for trial := 0; trial < 30; trial++ {
		n := rng.Intn(140)
		c := catalog.New()
		for i := 0; i < n; i++ {
			if err := c.Upsert(randomFeature(rng, trial, i, names)); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
		}
		idxOpts := DefaultOptions()
		idxOpts.Workers = 1 + rng.Intn(8)
		idxOpts.PruneScore = []float64{0.05, 0.2, 0.01}[rng.Intn(3)]
		linOpts := DefaultOptions()
		linOpts.UseIndex = false
		linOpts.Workers = 1 + rng.Intn(8)
		indexed := New(c, idxOpts)
		linear := New(c, linOpts)

		for qi := 0; qi < 8; qi++ {
			q := randomQuery(rng, names, n)
			a, err := indexed.Search(q)
			if err != nil {
				t.Fatalf("trial %d query %d: indexed: %v", trial, qi, err)
			}
			b, err := linear.Search(q)
			if err != nil {
				t.Fatalf("trial %d query %d: linear: %v", trial, qi, err)
			}
			requireSameResults(t, fmt.Sprintf("trial %d query %d (%+v): indexed vs linear", trial, qi, q), a, b)
		}
	}
}

// requireSameResults fails unless the two rankings are identical in
// every observable way: order, IDs, all four score components, and
// per-term explanations — exact float equality, no tolerance. Both the
// indexed-vs-linear ablation and the shard-count equivalence property
// compare through it.
func requireSameResults(t *testing.T, label string, a, b []Result) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d results vs %d", label, len(a), len(b))
	}
	for i := range a {
		if a[i].Feature.ID != b[i].Feature.ID {
			t.Fatalf("%s: rank %d: %s vs %s", label, i, a[i].Feature.Path, b[i].Feature.Path)
		}
		if a[i].Score != b[i].Score || a[i].Space != b[i].Space ||
			a[i].Time != b[i].Time || a[i].Vars != b[i].Vars {
			t.Fatalf("%s: rank %d (%s): scores differ: %+v vs %+v",
				label, i, a[i].Feature.Path, a[i], b[i])
		}
		if len(a[i].TermScores) != len(b[i].TermScores) {
			t.Fatalf("%s: rank %d: term score counts differ", label, i)
		}
		for j := range a[i].TermScores {
			if a[i].TermScores[j] != b[i].TermScores[j] {
				t.Fatalf("%s: rank %d term %d: %+v vs %+v",
					label, i, j, a[i].TermScores[j], b[i].TermScores[j])
			}
		}
	}
}

// TestSearchSnapshotStableAcrossPublish verifies a search started
// before a publish keeps its consistent view while new searches see the
// replacement catalog.
func TestSearchSnapshotStableAcrossPublish(t *testing.T) {
	c := catalog.New()
	if err := c.Upsert(mkFeature("old.obs", astoria, june2010, v("salinity", 0, 30))); err != nil {
		t.Fatal(err)
	}
	s := New(c, DefaultOptions())
	if res, err := s.Search(Query{Terms: []Term{{Name: "salinity"}}}); err != nil || len(res) != 1 || res[0].Feature.Path != "old.obs" {
		t.Fatalf("pre-publish search: %v %v", res, err)
	}
	next := catalog.New()
	if err := next.Upsert(mkFeature("new.obs", astoria, june2010, v("salinity", 0, 30))); err != nil {
		t.Fatal(err)
	}
	c.ReplaceAll(next)
	res, err := s.Search(Query{Terms: []Term{{Name: "salinity"}}})
	if err != nil || len(res) != 1 || res[0].Feature.Path != "new.obs" {
		t.Fatalf("post-publish search: %v %v", res, err)
	}
}
