package search

import (
	"sort"
	"strings"

	"metamess/internal/fingerprint"
	"metamess/internal/hierarchy"
	"metamess/internal/semdiv"
)

// KnowledgeExpander rewrites query terms using the curated knowledge
// base: synonyms and abbreviations resolve to preferred names at full
// weight; bare multi-context bases additionally expand to every
// context-qualified variable at a small penalty, so a query for
// "temperature" finds both air_temperature and water_temperature. With
// IncludeAlternates set (the default), a resolved term also expands to
// the curated alternate surface forms — the search-time-only alternative
// to wrangling, which finds curated-messy names even in an unwrangled
// catalog.
type KnowledgeExpander struct {
	k *semdiv.Knowledge
	// ContextWeight is the weight of context-qualified expansions
	// (default 0.9).
	ContextWeight float64
	// AlternateWeight is the weight of reverse (canonical-to-alternate)
	// expansions (default 0.95).
	AlternateWeight float64
	// IncludeAlternates enables reverse expansion.
	IncludeAlternates bool

	canonByKey map[string]string
}

// NewKnowledgeExpander builds an expander over the knowledge base.
func NewKnowledgeExpander(k *semdiv.Knowledge) *KnowledgeExpander {
	e := &KnowledgeExpander{
		k:                 k,
		ContextWeight:     0.9,
		AlternateWeight:   0.95,
		IncludeAlternates: true,
		canonByKey:        make(map[string]string),
	}
	for _, v := range k.Vocabulary {
		e.canonByKey[normKey(v.Name)] = v.Name
	}
	return e
}

// Expand implements Expander.
func (e *KnowledgeExpander) Expand(term string) []Expansion {
	weights := make(map[string]float64)
	add := func(name string, w float64) {
		if name == "" {
			return
		}
		if w > weights[name] {
			weights[name] = w
		}
	}
	add(term, 1)

	// Abbreviation dictionary.
	if canon, ok := e.k.Abbrevs[normKey(term)]; ok {
		add(canon, 1)
	}
	// Synonym table, plus reverse expansion to the curated surface forms.
	if pref, st := e.k.Synonyms.Resolve(term); st != 0 { // Preferred or Alternate
		add(pref, 1)
		if e.IncludeAlternates {
			for _, alt := range e.k.Synonyms.AlternatesOf(pref) {
				add(alt, e.AlternateWeight)
			}
		}
	}
	// Context qualification: a bare base concept expands to each
	// qualified canonical variable.
	base := term
	if ctxs := e.k.Contexts.TaxonomiesOf(base); len(ctxs) > 0 {
		for _, ctx := range ctxs {
			qualified := hierarchy.Qualified(ctx, base)
			if canon, ok := e.canonByKey[normKey(qualified)]; ok {
				w := e.ContextWeight
				if len(ctxs) == 1 {
					w = 1 // unambiguous context loses nothing
				}
				add(canon, w)
			}
		}
	}

	out := make([]Expansion, 0, len(weights))
	for name, w := range weights {
		out = append(out, Expansion{Name: name, Weight: w})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Weight != out[j].Weight {
			return out[i].Weight > out[j].Weight
		}
		return out[i].Name < out[j].Name
	})
	return out
}

func normKey(s string) string { return strings.Join(fingerprint.Tokens(s), "") }
