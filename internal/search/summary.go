package search

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"metamess/internal/catalog"
)

// Summary is the structured form of the poster's "dataset summary page":
// everything the catalog knows about one dataset, rendered from metadata
// alone (the raw data is never touched).
type Summary struct {
	Path       string
	Source     string
	Format     string
	BBox       string
	TimeRange  string
	RowCount   int
	Bytes      int64
	Searchable []SummaryVar
	Excluded   []SummaryVar
}

// SummaryVar is one variable line on the summary page.
type SummaryVar struct {
	Name     string
	RawName  string
	Unit     string
	Range    string
	Count    int
	Contexts []string
	Parent   string
}

// Summarize builds the summary for a feature.
func Summarize(f *catalog.Feature) Summary {
	s := Summary{
		Path:     f.Path,
		Source:   f.Source,
		Format:   f.Format,
		BBox:     f.BBox.String(),
		RowCount: f.RowCount,
		Bytes:    f.Bytes,
	}
	if f.Time.Valid() {
		s.TimeRange = f.Time.Start.UTC().Format(time.RFC3339) + " .. " + f.Time.End.UTC().Format(time.RFC3339)
	}
	for _, v := range f.Variables {
		unit := v.CanonicalUnit
		if unit == "" {
			unit = v.Unit
		}
		sv := SummaryVar{
			Name:     v.Name,
			RawName:  v.RawName,
			Unit:     unit,
			Count:    v.Count,
			Contexts: v.Contexts,
			Parent:   v.Parent,
		}
		if v.Count > 0 {
			sv.Range = fmt.Sprintf("%.3g .. %.3g", v.Range.Min, v.Range.Max)
		}
		if v.Excluded {
			s.Excluded = append(s.Excluded, sv)
		} else {
			s.Searchable = append(s.Searchable, sv)
		}
	}
	sort.Slice(s.Searchable, func(i, j int) bool { return s.Searchable[i].Name < s.Searchable[j].Name })
	sort.Slice(s.Excluded, func(i, j int) bool { return s.Excluded[i].Name < s.Excluded[j].Name })
	return s
}

// Render formats the summary as the text "page" the CLIs print.
func (s Summary) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Dataset: %s\n", s.Path)
	fmt.Fprintf(&b, "Source:  %s (%s), %d rows, %d bytes\n", s.Source, s.Format, s.RowCount, s.Bytes)
	fmt.Fprintf(&b, "Extent:  %s\n", s.BBox)
	if s.TimeRange != "" {
		fmt.Fprintf(&b, "Time:    %s\n", s.TimeRange)
	}
	fmt.Fprintf(&b, "Variables (%d searchable, %d excluded):\n", len(s.Searchable), len(s.Excluded))
	for _, v := range s.Searchable {
		b.WriteString("  " + formatVarLine(v, false) + "\n")
	}
	for _, v := range s.Excluded {
		b.WriteString("  " + formatVarLine(v, true) + "\n")
	}
	return b.String()
}

func formatVarLine(v SummaryVar, excluded bool) string {
	var b strings.Builder
	b.WriteString(v.Name)
	if v.Unit != "" {
		fmt.Fprintf(&b, " [%s]", v.Unit)
	}
	if v.Range != "" {
		fmt.Fprintf(&b, "  %s", v.Range)
	}
	fmt.Fprintf(&b, "  (%d obs", v.Count)
	if v.RawName != v.Name {
		fmt.Fprintf(&b, ", raw: %s", v.RawName)
	}
	b.WriteString(")")
	if len(v.Contexts) > 0 {
		fmt.Fprintf(&b, " contexts: %s", strings.Join(v.Contexts, ","))
	}
	if v.Parent != "" {
		fmt.Fprintf(&b, " under: %s", v.Parent)
	}
	if excluded {
		b.WriteString(" [excluded from search]")
	}
	return b.String()
}
