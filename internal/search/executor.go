package search

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"metamess/internal/catalog"
	"metamess/internal/obs"
)

// parallelMinWork is the candidate count each scoring worker must be
// able to claim before fan-out engages: effectiveWorkers clamps the
// worker count to work/parallelMinWork, so batches below the threshold
// stay on the calling goroutine. A package variable so tests can force
// the parallel path on tiny catalogs.
var parallelMinWork = 256

// cancelCheckEvery is how many candidates a scoring loop processes
// between context checks; a Background context makes the check a nil
// select, so the uncancellable path pays almost nothing.
const cancelCheckEvery = 512

func canceled(ctx context.Context) bool {
	select {
	case <-ctx.Done():
		return true
	default:
		return false
	}
}

// searchSnapshot runs the query over every shard of the snapshot and
// returns the exact global top-K, ranked, in freshly allocated memory
// (all scratch is pooled and released before returning).
//
// Single-shard snapshots keep the monolithic path: one plan, with the
// worker pool splitting candidate batches inside the shard. Multi-shard
// snapshots scatter-gather in tier-synchronized rounds. Every shard
// carries the full index set over its own features, so each builds its
// own plan — and because the tier structure and outside-score bounds
// are derived from the query and the options alone (never from shard
// content), all plans share the same tiers. Round ti scatters tier ti
// of every shard across the workers (one shard per worker at a time,
// scored serially into a bounded local top-K), gathers each shard's
// results into a single merge heap, and then — at the barrier — applies
// the monolithic widening argument globally: if the heap holds K
// results and the K-th score strictly exceeds the tier's outside bound,
// everything unscored in every shard is provably outranked, and the
// search stops without touching the wider tiers.
//
// Exactness composes: the merge heap keeps the best K under the total
// ranking order (score desc, ID asc — IDs are unique), and the stopping
// rule is the same proof the single-shard executor uses. The result is
// byte-identical for every shard count — the property
// TestShardedSearchMatchesSingleShard pins.
//
// qo is the query's observability footprint (nil when unobserved — the
// benchmark and library paths): stage timings, per-shard candidate
// counts, and — when a trace is attached — plan/scatter/merge phase
// spans with per-shard and per-tier children. Every hook is
// nil-guarded, so the qo == nil path never reads the clock and never
// allocates; the ranking itself is identical either way.
func (s *Searcher) searchSnapshot(ctx context.Context, snap *catalog.Snapshot, q Query, expanded []expandedTerm, k int, qo *obs.QueryObs) []Result {
	shards := snap.Shards()
	workers := s.opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	workers = clampFanOut(workers)
	qo.SizeShards(len(shards))
	tr, root := qo.Tracer()

	if len(shards) == 1 {
		sc := getScratch()
		var results []Result
		var t0 time.Time
		if s.opts.UseIndex {
			if qo != nil {
				t0 = time.Now()
			}
			pid := tr.Start(root, "plan")
			spid := tr.Start(pid, "shard-plan")
			pln := s.buildPlan(shards[0], q, expanded, sc)
			tr.Attr(spid, "shard", 0)
			tr.Attr(spid, "tiers", int64(len(pln.tiers)))
			tr.End(spid)
			tr.End(pid)
			if qo != nil {
				qo.PlanNs += time.Since(t0).Nanoseconds()
				t0 = time.Now()
			}
			sid := tr.Start(root, "scatter")
			results = s.executePlan(ctx, shards[0], pln, q, expanded, k, workers, sc, qo, 0, sid)
			tr.End(sid)
			if qo != nil {
				qo.ScatterNs += time.Since(t0).Nanoseconds()
			}
		} else {
			if qo != nil {
				t0 = time.Now()
			}
			sid := tr.Start(root, "scatter")
			results = s.linearShard(ctx, shards[0], q, expanded, k, workers, sc, qo, 0, sid)
			tr.End(sid)
			if qo != nil {
				qo.ScatterNs += time.Since(t0).Nanoseconds()
				qo.NoteTier(0)
			}
		}
		if qo != nil {
			t0 = time.Now()
		}
		mid := tr.Start(root, "merge")
		rank(results)
		if len(results) > k {
			results = results[:k]
		}
		out := append([]Result(nil), results...) // detach from pooled scratch
		tr.Attr(mid, "results", int64(len(out)))
		tr.End(mid)
		if qo != nil {
			qo.MergeNs += time.Since(t0).Nanoseconds()
		}
		putScratch(sc)
		return out
	}

	// One scratch per shard: each is owned by exactly one worker at a
	// time (parallelDo hands every shard index to a single claimant per
	// round, and rounds are separated by barriers).
	scs := make([]*scratch, len(shards))
	for si := range scs {
		scs[si] = getScratch()
	}
	defer func() {
		for _, sc := range scs {
			putScratch(sc)
		}
	}()

	merge := newTopK(k)
	var mu sync.Mutex
	gather := func(local []Result) {
		mu.Lock()
		for _, r := range local {
			merge.consider(r)
		}
		mu.Unlock()
	}

	// Trace spans inside parallelDo callbacks are safe (the Trace is
	// mutex-guarded) and candidate counts go to disjoint per-shard
	// slots; the stage-duration fields are only touched here on the
	// request goroutine, between barriers.
	var t0 time.Time

	if !s.opts.UseIndex {
		// Linear ablation: one full-scan round over every shard.
		if qo != nil {
			t0 = time.Now()
		}
		sid := tr.Start(root, "scatter")
		parallelDo(workers, len(shards), func(si int) {
			if canceled(ctx) {
				return
			}
			gather(s.linearShard(ctx, shards[si], q, expanded, k, 1, scs[si], qo, si, sid))
		})
		tr.End(sid)
		if qo != nil {
			qo.ScatterNs += time.Since(t0).Nanoseconds()
			qo.NoteTier(0)
			t0 = time.Now()
		}
		mid := tr.Start(root, "merge")
		out := append([]Result(nil), merge.items...)
		rank(out)
		tr.Attr(mid, "results", int64(len(out)))
		tr.End(mid)
		if qo != nil {
			qo.MergeNs += time.Since(t0).Nanoseconds()
		}
		return out
	}

	if qo != nil {
		t0 = time.Now()
	}
	pid := tr.Start(root, "plan")
	plans := make([]plan, len(shards))
	parallelDo(workers, len(shards), func(si int) {
		spid := tr.Start(pid, "shard-plan")
		plans[si] = s.buildPlan(shards[si], q, expanded, scs[si])
		scs[si].scoredFor(shards[si].Len())
		tr.Attr(spid, "shard", int64(si))
		tr.Attr(spid, "tiers", int64(len(plans[si].tiers)))
		tr.End(spid)
	})
	tr.End(pid)
	maxTiers := 0
	for _, p := range plans {
		if len(p.tiers) > maxTiers {
			maxTiers = len(p.tiers)
		}
	}
	if qo != nil {
		qo.PlanNs += time.Since(t0).Nanoseconds()
		t0 = time.Now()
	}

	sid := tr.Start(root, "scatter")
	completedTiers := 0
	for ti := 0; ti < maxTiers; ti++ {
		if canceled(ctx) {
			break
		}
		parallelDo(workers, len(shards), func(si int) {
			if ti >= len(plans[si].tiers) || canceled(ctx) {
				return
			}
			sc := scs[si]
			t := plans[si].tiers[ti]
			sh := shards[si]
			was := sc.scored
			batch := sc.batch[:0]
			if t.all {
				for i := 0; i < sh.Len(); i++ {
					if !was[i] {
						batch = append(batch, int32(i))
					}
				}
			} else {
				for _, p := range t.pos {
					if !was[p] {
						batch = append(batch, p)
					}
				}
			}
			for _, p := range batch {
				was[p] = true
			}
			sc.batch = batch
			tid := tr.Start(sid, "tier")
			if len(batch) > 0 {
				gather(s.scorePositions(ctx, sh, batch, q, expanded, k, 1, sc))
			}
			qo.AddShardCandidates(si, len(batch))
			tr.Attr(tid, "shard", int64(si))
			tr.Attr(tid, "tier", int64(ti))
			tr.Attr(tid, "candidates", int64(len(batch)))
			tr.End(tid)
		})
		qo.NoteTier(ti)
		if !canceled(ctx) {
			completedTiers++
		}
		// Barrier: all workers joined, so the heap is quiescent. Stop
		// when K gathered results strictly clear every shard's outside
		// bound for this tier (bounds are query-derived and identical
		// across shards; the max is taken defensively).
		if k <= 0 || len(merge.items) < k {
			continue
		}
		bound := -1.0
		for _, p := range plans {
			if ti < len(p.tiers) && p.tiers[ti].bound > bound {
				bound = p.tiers[ti].bound
			}
		}
		if merge.items[0].Score > bound {
			break
		}
	}
	// A deadline that cut the scatter short is visible in the trace:
	// how many tier rounds ran to completion, and that the cut happened
	// — the per-tier child spans carry the candidate counts.
	tr.Attr(sid, "completedTiers", int64(completedTiers))
	if canceled(ctx) {
		tr.Attr(sid, "deadlined", 1)
	}
	tr.End(sid)
	if qo != nil {
		qo.ScatterNs += time.Since(t0).Nanoseconds()
		t0 = time.Now()
	}
	mid := tr.Start(root, "merge")
	out := append([]Result(nil), merge.items...)
	rank(out)
	tr.Attr(mid, "results", int64(len(out)))
	tr.End(mid)
	if qo != nil {
		qo.MergeNs += time.Since(t0).Nanoseconds()
	}
	return out
}

// parallelDo runs fn(0..n-1) across up to workers goroutines, claiming
// indices off a shared counter; with one worker it stays on the calling
// goroutine. It returns when every call has finished.
func parallelDo(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// linearShard computes one shard's exact top-K by full scan — the
// linear ablation. The returned slice is unsorted, has at most k
// elements, and aliases the scratch: callers copy out before releasing
// sc. The whole scan is one "tier" span under parent, and every
// position counts as an examined candidate for shard si. Safe to call
// from scatter workers: it only touches the (mutex-guarded) trace and
// shard si's own counter slot.
func (s *Searcher) linearShard(ctx context.Context, sh *catalog.Shard, q Query, expanded []expandedTerm, k, workers int, sc *scratch, qo *obs.QueryObs, si int, parent int32) []Result {
	tr, _ := qo.Tracer()
	tid := tr.Start(parent, "tier")
	all := sc.batch[:0]
	for i := 0; i < sh.Len(); i++ {
		all = append(all, int32(i))
	}
	sc.batch = all
	res := s.scorePositions(ctx, sh, all, q, expanded, k, workers, sc)
	qo.AddShardCandidates(si, len(all))
	tr.Attr(tid, "shard", int64(si))
	tr.Attr(tid, "tier", 0)
	tr.Attr(tid, "candidates", int64(len(all)))
	tr.End(tid)
	return res
}

// executePlan runs the tiers of a plan over one shard: score each
// tier's not-yet-scored candidates, merge into the accumulated top-K,
// and stop as soon as the K-th score strictly exceeds the tier's
// outside bound — anything unscored in this shard is then provably
// below every returned result. (The multi-shard scatter path runs the
// same tier loop inline, with the bound check against the global merge
// heap at each tier barrier.) Only the single-shard path calls it, so
// it runs on the request goroutine and may touch qo's tier counter
// directly; each executed tier becomes a "tier" span under parent.
func (s *Searcher) executePlan(ctx context.Context, sh *catalog.Shard, pln plan, q Query, expanded []expandedTerm, k, workers int, sc *scratch, qo *obs.QueryObs, si int, parent int32) []Result {
	tr, _ := qo.Tracer()
	n := sh.Len()
	scored := sc.scoredFor(n)
	acc := sc.acc[:0]
	completedTiers := 0
	for ti, t := range pln.tiers {
		if canceled(ctx) {
			break
		}
		batch := sc.batch[:0]
		if t.all {
			for i := 0; i < n; i++ {
				if !scored[i] {
					batch = append(batch, int32(i))
				}
			}
		} else {
			for _, p := range t.pos {
				if !scored[p] {
					batch = append(batch, p)
				}
			}
		}
		for _, p := range batch {
			scored[p] = true
		}
		sc.batch = batch
		tid := tr.Start(parent, "tier")
		if len(batch) > 0 {
			acc = append(acc, s.scorePositions(ctx, sh, batch, q, expanded, k, workers, sc)...)
			rank(acc)
			if len(acc) > k {
				acc = acc[:k]
			}
		}
		qo.AddShardCandidates(si, len(batch))
		qo.NoteTier(ti)
		tr.Attr(tid, "shard", int64(si))
		tr.Attr(tid, "tier", int64(ti))
		tr.Attr(tid, "candidates", int64(len(batch)))
		tr.End(tid)
		if !canceled(ctx) {
			completedTiers++
		}
		if len(acc) >= k && acc[k-1].Score > t.bound {
			break
		}
	}
	tr.Attr(parent, "completedTiers", int64(completedTiers))
	if canceled(ctx) {
		tr.Attr(parent, "deadlined", 1)
	}
	sc.acc = acc
	return acc
}

// scorePositions scores a candidate batch from one shard and returns
// its top-K (by the ranking order), unsorted, aliasing scratch or
// worker-local memory. The fan-out is adaptive: effectiveWorkers grants
// one worker per parallelMinWork candidates (never more than asked), so
// small batches are scored serially on the calling goroutine into the
// scratch's pooled heap. Parallel batches give each worker a bounded
// top-K min-heap so memory stays O(K·workers) regardless of catalog
// size, and the merged heaps contain a superset of the batch's true
// top-K.
func (s *Searcher) scorePositions(ctx context.Context, sh *catalog.Shard, pos []int32, q Query, expanded []expandedTerm, k, workers int, sc *scratch) []Result {
	workers = effectiveWorkers(workers, len(pos))
	if workers <= 1 {
		h := &sc.heap
		h.reset(k)
		for i, p := range pos {
			if i%cancelCheckEvery == 0 && canceled(ctx) {
				return h.items
			}
			if r := s.score(sh.At(p), q, expanded); r.Score > 0 {
				h.consider(r)
			}
		}
		return h.items
	}
	heaps := make([]*topK, workers)
	var wg sync.WaitGroup
	chunk := (len(pos) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(pos) {
			hi = len(pos)
		}
		if lo >= hi {
			heaps[w] = newTopK(k)
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			h := newTopK(k)
			for i, p := range pos[lo:hi] {
				if i%cancelCheckEvery == 0 && canceled(ctx) {
					break
				}
				if r := s.score(sh.At(p), q, expanded); r.Score > 0 {
					h.consider(r)
				}
			}
			heaps[w] = h
		}(w, lo, hi)
	}
	wg.Wait()
	// Fresh slice, not scratch: the caller may be accumulating into
	// sc.acc across tiers, and a parallel batch is large enough that one
	// merge allocation is noise.
	out := make([]Result, 0, len(heaps)*k)
	for _, h := range heaps {
		out = append(out, h.items...)
	}
	return out
}

// topK is a bounded min-heap ordered by the ranking comparator (score
// ascending, then ID descending), so the root is the worst kept result
// and a better candidate evicts it in O(log K).
type topK struct {
	k     int
	items []Result
}

func newTopK(k int) *topK { return &topK{k: k} }

// reset empties the heap for reuse at a (possibly different) bound,
// keeping the item buffer's capacity.
func (h *topK) reset(k int) {
	h.k = k
	h.items = h.items[:0]
}

// outranked reports whether a ranks strictly below b in the final
// ordering (score descending, ID ascending on ties).
func outranked(a, b Result) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.Feature.ID > b.Feature.ID
}

func (h *topK) consider(r Result) {
	if h.k <= 0 {
		return
	}
	if len(h.items) < h.k {
		h.items = append(h.items, r)
		h.up(len(h.items) - 1)
		return
	}
	if outranked(h.items[0], r) {
		h.items[0] = r
		h.down(0)
	}
}

func (h *topK) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !outranked(h.items[i], h.items[parent]) {
			return
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *topK) down(i int) {
	n := len(h.items)
	for {
		worst := i
		if l := 2*i + 1; l < n && outranked(h.items[l], h.items[worst]) {
			worst = l
		}
		if r := 2*i + 2; r < n && outranked(h.items[r], h.items[worst]) {
			worst = r
		}
		if worst == i {
			return
		}
		h.items[i], h.items[worst] = h.items[worst], h.items[i]
		i = worst
	}
}
