package search

import (
	"context"
	"runtime"
	"sync"

	"metamess/internal/catalog"
)

// parallelMinWork is the candidate count below which scoring stays on
// the calling goroutine; a package variable so tests can force the
// parallel path on tiny catalogs.
var parallelMinWork = 256

// cancelCheckEvery is how many candidates a scoring loop processes
// between context checks; a Background context makes the check a nil
// select, so the uncancellable path pays almost nothing.
const cancelCheckEvery = 512

func canceled(ctx context.Context) bool {
	select {
	case <-ctx.Done():
		return true
	default:
		return false
	}
}

// executePlan runs the tiers of a plan over the snapshot: score each
// tier's not-yet-scored candidates (in parallel), merge into the
// accumulated top-K, and stop as soon as the K-th score strictly
// exceeds the tier's outside bound — anything unscored is then provably
// below every returned result.
func (s *Searcher) executePlan(ctx context.Context, snap *catalog.Snapshot, pln plan, q Query, expanded []expandedTerm, k int) []Result {
	n := snap.Len()
	scored := make([]bool, n)
	var acc []Result
	for _, t := range pln.tiers {
		if canceled(ctx) {
			return acc
		}
		var batch []int32
		if t.all {
			for i := 0; i < n; i++ {
				if !scored[i] {
					batch = append(batch, int32(i))
				}
			}
		} else {
			for _, p := range t.pos {
				if !scored[p] {
					batch = append(batch, p)
				}
			}
		}
		for _, p := range batch {
			scored[p] = true
		}
		if len(batch) > 0 {
			acc = append(acc, s.scorePositions(ctx, snap, batch, q, expanded, k)...)
			rank(acc)
			if len(acc) > k {
				acc = acc[:k]
			}
		}
		if len(acc) >= k && acc[k-1].Score > t.bound {
			break
		}
	}
	return acc
}

// scorePositions scores a candidate batch and returns its top-K (by the
// ranking order), unsorted. Large batches fan out across a worker pool;
// each worker keeps a bounded top-K min-heap so memory stays O(K·workers)
// regardless of catalog size, and the merged heaps contain a superset
// of the batch's true top-K.
func (s *Searcher) scorePositions(ctx context.Context, snap *catalog.Snapshot, pos []int32, q Query, expanded []expandedTerm, k int) []Result {
	workers := s.opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if len(pos) < parallelMinWork || workers <= 1 {
		h := newTopK(k)
		for i, p := range pos {
			if i%cancelCheckEvery == 0 && canceled(ctx) {
				return h.items
			}
			if r := s.score(snap.At(p), q, expanded); r.Score > 0 {
				h.consider(r)
			}
		}
		return h.items
	}
	if workers > len(pos) {
		workers = len(pos)
	}
	heaps := make([]*topK, workers)
	var wg sync.WaitGroup
	chunk := (len(pos) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(pos) {
			hi = len(pos)
		}
		if lo >= hi {
			heaps[w] = newTopK(k)
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			h := newTopK(k)
			for i, p := range pos[lo:hi] {
				if i%cancelCheckEvery == 0 && canceled(ctx) {
					break
				}
				if r := s.score(snap.At(p), q, expanded); r.Score > 0 {
					h.consider(r)
				}
			}
			heaps[w] = h
		}(w, lo, hi)
	}
	wg.Wait()
	var out []Result
	for _, h := range heaps {
		out = append(out, h.items...)
	}
	return out
}

// topK is a bounded min-heap ordered by the ranking comparator (score
// ascending, then ID descending), so the root is the worst kept result
// and a better candidate evicts it in O(log K).
type topK struct {
	k     int
	items []Result
}

func newTopK(k int) *topK { return &topK{k: k} }

// outranked reports whether a ranks strictly below b in the final
// ordering (score descending, ID ascending on ties).
func outranked(a, b Result) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.Feature.ID > b.Feature.ID
}

func (h *topK) consider(r Result) {
	if h.k <= 0 {
		return
	}
	if len(h.items) < h.k {
		h.items = append(h.items, r)
		h.up(len(h.items) - 1)
		return
	}
	if outranked(h.items[0], r) {
		h.items[0] = r
		h.down(0)
	}
}

func (h *topK) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !outranked(h.items[i], h.items[parent]) {
			return
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *topK) down(i int) {
	n := len(h.items)
	for {
		worst := i
		if l := 2*i + 1; l < n && outranked(h.items[l], h.items[worst]) {
			worst = l
		}
		if r := 2*i + 2; r < n && outranked(h.items[r], h.items[worst]) {
			worst = r
		}
		if worst == i {
			return
		}
		h.items[i], h.items[worst] = h.items[worst], h.items[i]
		i = worst
	}
}
