//go:build race

package search

// raceEnabled: see race_off_test.go.
const raceEnabled = true
