package search

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"metamess/internal/catalog"
	"metamess/internal/obs"
)

// The tracing properties: attaching a QueryObs (with a forced trace)
// must be purely observational. Rankings are byte-identical with and
// without it; the per-shard candidate counts it records are the real
// examined sets — a traced linear scan examines every live feature
// exactly once, and the indexed executor's counters agree with the
// "candidates" attributes on its own tier spans. Runs under -race in
// CI, so the scatter workers' concurrent span recording is checked too.

// tracedSearch runs one search with a forced trace attached and returns
// the results plus the footprint's counters and rendered span tree.
func tracedSearch(t *testing.T, s *Searcher, q Query) ([]Result, *obs.QueryObs, *obs.SpanTree) {
	t.Helper()
	qo := obs.GetQueryObs()
	qo.Forced = true
	qo.Trace = obs.NewTrace()
	qo.Root = qo.Trace.Start(-1, "search")
	res, err := s.SearchContext(obs.WithQuery(context.Background(), qo), q)
	if err != nil {
		t.Fatalf("traced search: %v", err)
	}
	qo.Trace.End(qo.Root)
	return res, qo, qo.Trace.Tree()
}

// releaseTraced recycles what tracedSearch handed out.
func releaseTraced(qo *obs.QueryObs) {
	obs.ReleaseTrace(qo.Trace)
	obs.PutQueryObs(qo)
}

// sumTierCandidates walks the span tree adding up the "candidates"
// attribute of every "tier" span.
func sumTierCandidates(n *obs.SpanTree) int64 {
	if n == nil {
		return 0
	}
	var sum int64
	if n.Name == "tier" {
		sum += n.Attrs["candidates"]
	}
	for _, c := range n.Children {
		sum += sumTierCandidates(c)
	}
	return sum
}

func TestTracedSearchObservational(t *testing.T) {
	// Force the scatter/parallel machinery even on tiny catalogs and
	// single-CPU hosts.
	oldMin, oldCap := parallelMinWork, maxFanOutProcs
	parallelMinWork, maxFanOutProcs = 1, 64
	defer func() { parallelMinWork, maxFanOutProcs = oldMin, oldCap }()

	names := []string{
		"water_temperature", "salinity", "turbidity", "dissolved_oxygen",
		"fluores375", "fluores410", "nitrate", "fluorescence",
	}
	rng := rand.New(rand.NewSource(20260807))
	for trial := 0; trial < 10; trial++ {
		// The 1-shard baseline plus a random scatter partitioning.
		for _, sc := range []int{1, 2 + rng.Intn(15)} {
			n := 20 + rng.Intn(100)
			c := catalog.NewSharded(sc)
			for i := 0; i < n; i++ {
				if err := c.Upsert(randomFeature(rng, trial, i, names)); err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
			}
			idxOpts := DefaultOptions()
			idxOpts.Workers = 1 + rng.Intn(8)
			indexed := New(c, idxOpts)
			linOpts := DefaultOptions()
			linOpts.UseIndex = false
			linOpts.Workers = 1 + rng.Intn(8)
			linear := New(c, linOpts)

			for qi := 0; qi < 6; qi++ {
				q := randomQuery(rng, names, n)
				label := fmt.Sprintf("trial %d shards %d query %d (%+v)", trial, sc, qi, q)

				// Tracing on vs. off: byte-identical rankings.
				plain, err := indexed.Search(q)
				if err != nil {
					t.Fatalf("%s: untraced: %v", label, err)
				}
				traced, qo, tree := tracedSearch(t, indexed, q)
				requireSameResults(t, label+": traced vs untraced", plain, traced)

				// The executor's counters agree with its own spans: the
				// tier spans' candidates attributes sum to the footprint's
				// per-shard totals.
				if got, want := sumTierCandidates(tree), qo.TotalCandidates(); got != want {
					t.Fatalf("%s: tier span candidates %d != footprint total %d", label, got, want)
				}
				if qo.TiersRun < 1 {
					t.Fatalf("%s: TiersRun = %d, want >= 1", label, qo.TiersRun)
				}
				if len(qo.ShardCandidates) != sc {
					t.Fatalf("%s: %d shard counters, want %d", label, len(qo.ShardCandidates), sc)
				}
				releaseTraced(qo)

				// The linear-scan oracle examines every live feature
				// exactly once, however it is sharded: its traced per-shard
				// candidate counts must sum to the catalog size.
				linTraced, lqo, _ := tracedSearch(t, linear, q)
				if got := lqo.TotalCandidates(); got != int64(n) {
					t.Fatalf("%s: linear scan examined %d candidates, want %d", label, got, n)
				}
				linPlain, err := linear.Search(q)
				if err != nil {
					t.Fatalf("%s: linear untraced: %v", label, err)
				}
				requireSameResults(t, label+": linear traced vs untraced", linPlain, linTraced)
				releaseTraced(lqo)
			}
		}
	}
}
