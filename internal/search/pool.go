package search

import (
	"runtime"
	"sync"
	"sync/atomic"

	"metamess/internal/catalog"
)

// Query-scratch pooling: everything a steady-state query needs beyond
// its response — candidate position buffers, the planner's mark array,
// the executor's scored set and batch, the bounded top-K heap, the
// accumulator — lives in one scratch struct recycled through a
// sync.Pool. A query takes one scratch per shard it plans over, and the
// only per-query allocations left are the response slice and its ≤K
// explanations. Results are copied out of pooled memory before the
// scratch is released, and released scratches drop their Feature
// pointers so a pooled buffer never pins a retired snapshot.
type scratch struct {
	marks  []uint8 // planner mark sweep, one byte per shard position
	scored []bool  // executor already-scored set
	batch  []int32 // executor per-tier unscored batch
	spat   []int32 // spatial candidate buffer
	temp   []int32 // temporal candidate buffer
	inter  []int32 // tier-1 (intersection) positions
	union  []int32 // tier-2 (union) positions
	lists  []catalog.Postings
	dims   []dimSet
	tiers  []tier
	heap   topK
	acc    []Result
}

var scratchPool sync.Pool

var (
	poolHits   atomic.Uint64
	poolMisses atomic.Uint64
)

// PoolStats reports how often query scratch was recycled versus
// freshly allocated since process start — the /stats counters that make
// pool effectiveness observable.
func PoolStats() (hits, misses uint64) {
	return poolHits.Load(), poolMisses.Load()
}

func getScratch() *scratch {
	if v := scratchPool.Get(); v != nil {
		poolHits.Add(1)
		return v.(*scratch)
	}
	poolMisses.Add(1)
	return &scratch{}
}

// putScratch clears what could pin memory and recycles the scratch.
// Buffers keep their capacity; Feature pointers are dropped so a pooled
// scratch never holds a retired snapshot alive.
func putScratch(sc *scratch) {
	sc.batch = sc.batch[:0]
	sc.spat = sc.spat[:0]
	sc.temp = sc.temp[:0]
	sc.inter = sc.inter[:0]
	sc.union = sc.union[:0]
	sc.lists = sc.lists[:0]
	sc.dims = sc.dims[:0]
	sc.tiers = sc.tiers[:0]
	items := sc.heap.items[:cap(sc.heap.items)]
	for i := range items {
		items[i] = Result{}
	}
	sc.heap.items = items[:0]
	acc := sc.acc[:cap(sc.acc)]
	for i := range acc {
		acc[i] = Result{}
	}
	sc.acc = acc[:0]
	scratchPool.Put(sc)
}

// marksFor returns the mark array sized and zeroed for a shard of n
// positions, reusing the pooled buffer's capacity.
func (sc *scratch) marksFor(n int) []uint8 {
	if cap(sc.marks) < n {
		sc.marks = make([]uint8, n)
	} else {
		sc.marks = sc.marks[:n]
		clear(sc.marks)
	}
	return sc.marks
}

// scoredFor returns the scored set sized and zeroed for n positions.
func (sc *scratch) scoredFor(n int) []bool {
	if cap(sc.scored) < n {
		sc.scored = make([]bool, n)
	} else {
		sc.scored = sc.scored[:n]
		clear(sc.scored)
	}
	return sc.scored
}

// effectiveWorkers clamps a scoring fan-out to what the work can feed:
// one worker per parallelMinWork candidates, never more than requested,
// and serial below the threshold. Fan-out overhead (goroutines, one
// bounded heap per worker, the merge) only pays for itself when every
// worker gets a meaningful batch — without the clamp an 8-worker
// configuration loses to 1-worker on every small tier.
func effectiveWorkers(workers, work int) int {
	if workers < 1 {
		workers = 1
	}
	if byWork := work / parallelMinWork; workers > byWork {
		workers = byWork
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// maxFanOutProcs overrides the scheduler-parallelism ceiling clampFanOut
// applies (0 = use runtime.GOMAXPROCS at query time). A package variable
// so equivalence and race tests can lift the ceiling and drive the
// parallel paths on single-CPU machines.
var maxFanOutProcs = 0

// clampFanOut caps a requested worker count at the machine's actual
// parallelism — min(GOMAXPROCS, NumCPU): workers beyond GOMAXPROCS
// cannot be scheduled concurrently, and scoring is CPU-bound, so
// threads beyond the physical cores only time-slice one another. With
// the cap, an 8-worker configuration on a 1-core host degrades to the
// serial path instead of paying goroutine and per-worker-heap overhead
// for concurrency the hardware cannot deliver.
func clampFanOut(workers int) int {
	limit := maxFanOutProcs
	if limit <= 0 {
		limit = runtime.GOMAXPROCS(0)
		if n := runtime.NumCPU(); n < limit {
			limit = n
		}
	}
	if workers > limit {
		return limit
	}
	return workers
}
