package search

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"metamess/internal/catalog"
)

// The shard-count equivalence property: scatter-gather search over an
// N-shard snapshot returns byte-identical ranked results to the same
// search over a 1-shard build — same order, same IDs, same scores to
// the last bit, same per-term explanations — for randomized shard
// counts (1–16), catalogs, queries, worker counts, and publish deltas.
// The same feature set is maintained in one catalog per shard count;
// deltas go through ApplyDelta so the sharded incremental patch path
// (clean shards pointer-shared, dirty shards spliced) is what the
// queries actually read, not a fresh build. A linear-scan searcher over
// the 1-shard catalog rides along as the ablation oracle, closing the
// triangle: sharded ≡ single-shard ≡ full scan.
func TestShardedSearchMatchesSingleShard(t *testing.T) {
	// Force the scatter/parallel machinery even on tiny catalogs and
	// single-CPU hosts.
	oldMin, oldCap := parallelMinWork, maxFanOutProcs
	parallelMinWork, maxFanOutProcs = 1, 64
	defer func() { parallelMinWork, maxFanOutProcs = oldMin, oldCap }()

	names := []string{
		"water_temperature", "salinity", "turbidity", "dissolved_oxygen",
		"fluores375", "fluores410", "nitrate", "fluorescence",
	}
	rng := rand.New(rand.NewSource(987654321))

	for trial := 0; trial < 12; trial++ {
		// Always include the 1-shard baseline; add two random counts in
		// [2,16] so most trials cross-check three partitionings.
		shardCounts := []int{1, 2 + rng.Intn(15), 2 + rng.Intn(15)}
		cats := make([]*catalog.Catalog, len(shardCounts))
		for ci, sc := range shardCounts {
			cats[ci] = catalog.NewSharded(sc)
		}

		n := 20 + rng.Intn(120)
		live := make(map[int]bool)
		features := make(map[int]*catalog.Feature)
		for i := 0; i < n; i++ {
			f := randomFeature(rng, trial, i, names)
			features[i] = f
			live[i] = true
			for _, c := range cats {
				if err := c.Upsert(f); err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
			}
		}

		searchers := make([]*Searcher, len(cats))
		for ci, c := range cats {
			opts := DefaultOptions()
			opts.Workers = 1 + rng.Intn(8)
			opts.PruneScore = []float64{0.05, 0.2, 0.01}[rng.Intn(3)]
			searchers[ci] = New(c, opts)
		}
		linOpts := DefaultOptions()
		linOpts.UseIndex = false
		linOpts.Workers = 1 + rng.Intn(8)
		linear := New(cats[0], linOpts)

		nextID := n
		for round := 0; round < 3; round++ {
			// Materialize every snapshot, then query: all searchers must
			// agree exactly, and the 1-shard indexed path must agree with
			// the linear ablation.
			for qi := 0; qi < 6; qi++ {
				q := randomQuery(rng, names, n)
				base, err := searchers[0].Search(q)
				if err != nil {
					t.Fatalf("trial %d round %d query %d: %v", trial, round, qi, err)
				}
				for ci := 1; ci < len(searchers); ci++ {
					got, err := searchers[ci].Search(q)
					if err != nil {
						t.Fatalf("trial %d round %d query %d (shards=%d): %v",
							trial, round, qi, shardCounts[ci], err)
					}
					requireSameResults(t,
						fmt.Sprintf("trial %d round %d query %d: shards=%d vs shards=1",
							trial, round, qi, shardCounts[ci]), got, base)
				}
				lin, err := linear.Search(q)
				if err != nil {
					t.Fatalf("trial %d round %d query %d: linear: %v", trial, round, qi, err)
				}
				requireSameResults(t,
					fmt.Sprintf("trial %d round %d query %d: shards=1 vs linear", trial, round, qi),
					base, lin)
			}

			// Random publish delta: adds, content modifications (same ID,
			// new extents/variables), and removals — identical for every
			// catalog, applied through ApplyDelta so subsequent rounds
			// search patched snapshots.
			var changed []*catalog.Feature
			var removed []string
			// Mutations draw from the pre-add live set so no ID appears
			// twice in changed (ApplyDelta's contract), in sorted order
			// for deterministic rng consumption.
			liveSorted := make([]int, 0, len(live))
			for i := range live {
				liveSorted = append(liveSorted, i)
			}
			sort.Ints(liveSorted)
			for k := 0; k < 1+rng.Intn(4); k++ {
				f := randomFeature(rng, trial, nextID, names)
				features[nextID] = f
				live[nextID] = true
				nextID++
				changed = append(changed, f)
			}
			for _, i := range liveSorted {
				if rng.Float64() < 0.08 {
					removed = append(removed, features[i].ID)
					delete(live, i)
					delete(features, i)
				} else if rng.Float64() < 0.1 {
					f := randomFeature(rng, trial, i, names) // same path → same ID, new content
					features[i] = f
					changed = append(changed, f)
				}
			}
			sortFeaturesByID(changed)
			for ci, c := range cats {
				// ApplyDelta takes ownership: each catalog gets private clones.
				private := make([]*catalog.Feature, len(changed))
				for i, f := range changed {
					private[i] = f.Clone()
				}
				if _, err := c.ApplyDelta(private, append([]string(nil), removed...)); err != nil {
					t.Fatalf("trial %d round %d (shards=%d): ApplyDelta: %v",
						trial, round, shardCounts[ci], err)
				}
			}
		}
	}
}

func sortFeaturesByID(fs []*catalog.Feature) {
	sort.Slice(fs, func(i, j int) bool { return fs[i].ID < fs[j].ID })
}
