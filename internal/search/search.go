// Package search implements the "Data Near Here" ranked search the
// poster's IR architecture serves: queries name a location, a time
// period, and variables (optionally with desired value ranges), and
// datasets are ranked by distance-based similarity of their catalog
// features to the query terms. Searches run over the published metadata
// catalog only — never over the raw data.
package search

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"metamess/internal/catalog"
	"metamess/internal/geo"
	"metamess/internal/obs"
)

// Term is one variable query term, optionally constrained to a value
// range ("temperature between 5-10C").
type Term struct {
	Name  string
	Range *geo.ValueRange
}

// Query is a ranked-search request. Any subset of the dimensions may be
// present; scoring averages over the dimensions the query uses.
type Query struct {
	// Location scores datasets by distance from a point ("near here").
	Location *geo.Point
	// Region scores datasets by distance from a box; ignored when
	// Location is set.
	Region *geo.BBox
	// Time scores datasets by temporal gap from the range.
	Time *geo.TimeRange
	// Terms scores datasets by variable presence and range fit.
	Terms []Term
	// K caps the result count (default 10).
	K int
}

// Validate rejects structurally bad queries.
func (q Query) Validate() error {
	if q.Location == nil && q.Region == nil && q.Time == nil && len(q.Terms) == 0 {
		return fmt.Errorf("search: empty query")
	}
	if q.Location != nil && !q.Location.Valid() {
		return fmt.Errorf("search: invalid location %v", *q.Location)
	}
	if q.Region != nil && !q.Region.Valid() {
		return fmt.Errorf("search: invalid region %v", *q.Region)
	}
	if q.Time != nil && !q.Time.Valid() {
		return fmt.Errorf("search: invalid time range")
	}
	for i, t := range q.Terms {
		if t.Name == "" {
			return fmt.Errorf("search: term %d has no name", i)
		}
	}
	return nil
}

// Weights balances the query dimensions; zero values default to 1.
type Weights struct {
	Space, Time, Variables float64
}

func (w Weights) normalized() Weights {
	if w.Space <= 0 {
		w.Space = 1
	}
	if w.Time <= 0 {
		w.Time = 1
	}
	if w.Variables <= 0 {
		w.Variables = 1
	}
	return w
}

// Options tunes the searcher.
type Options struct {
	// Weights balances space/time/variable scores.
	Weights Weights
	// SpaceScaleKm is the distance at which the space score halves.
	// Default 25 km (estuary scale).
	SpaceScaleKm float64
	// TimeScale is the gap at which the time score halves. Default 30 days.
	TimeScale time.Duration
	// UseIndex plans candidate sets through the snapshot's secondary
	// indexes (variable-name, spatial grid, time-interval) before
	// scoring. Disable for the linear-scan ablation, which scores every
	// feature; both paths return identical rankings.
	UseIndex bool
	// Workers is the number of goroutines scoring candidates in
	// parallel, each with a bounded top-K heap. Over a multi-shard
	// snapshot the workers scatter across shards (one shard per worker
	// at a time); over a single-shard snapshot they split candidate
	// batches within the shard. 0 means GOMAXPROCS; small batches stay
	// on the calling goroutine either way.
	Workers int
	// PruneScore is the per-dimension score ε below which the spatial
	// and temporal indexes may prune a candidate. Exactness is kept by
	// the planner's widening bounds regardless of the value; smaller ε
	// means larger candidate sets and less frequent widening. Default
	// 0.05 (≈475 km / 570 days at the default scales).
	PruneScore float64
	// Expander rewrites query terms (synonyms, abbreviations, context
	// qualification). Nil means exact matching only.
	Expander Expander
	// ParentWeight scores a variable whose hierarchy parent matches the
	// query term ("fluorescence" finding fluores375). Default 0.8.
	ParentWeight float64
}

// DefaultOptions returns the searcher defaults.
func DefaultOptions() Options {
	return Options{
		SpaceScaleKm: 25,
		TimeScale:    30 * 24 * time.Hour,
		UseIndex:     true,
		PruneScore:   0.05,
		ParentWeight: 0.8,
	}
}

// Expansion is one rewrite of a query term.
type Expansion struct {
	Name   string
	Weight float64
}

// Expander rewrites a query term into catalog variable names.
type Expander interface {
	Expand(term string) []Expansion
}

// TermScore explains how one query term scored against a dataset.
type TermScore struct {
	Term      string  `json:"term"`
	Score     float64 `json:"score"`
	MatchedAs string  `json:"matchedAs,omitempty"`
}

// Result is one ranked hit. Feature points into the immutable search
// snapshot and must be treated as read-only.
type Result struct {
	Feature *catalog.Feature `json:"feature"`
	// Score is the overall similarity in [0,1].
	Score float64 `json:"score"`
	// Space, Time, and Vars are the per-dimension scores (NaN-free; 1 when
	// the query does not use the dimension).
	Space, Time, Vars float64     `json:"-"`
	TermScores        []TermScore `json:"termScores,omitempty"`
}

// Searcher ranks catalog features against queries. Every query runs
// over the catalog's current immutable snapshot: one atomic pointer
// load, no locks, and no feature copies on the read path.
type Searcher struct {
	cat  *catalog.Catalog
	opts Options
}

// New returns a searcher over the catalog. Zero-valued option fields are
// filled with defaults.
func New(cat *catalog.Catalog, opts Options) *Searcher {
	def := DefaultOptions()
	if opts.SpaceScaleKm <= 0 {
		opts.SpaceScaleKm = def.SpaceScaleKm
	}
	if opts.TimeScale <= 0 {
		opts.TimeScale = def.TimeScale
	}
	if opts.ParentWeight <= 0 {
		opts.ParentWeight = def.ParentWeight
	}
	if opts.PruneScore <= 0 || opts.PruneScore >= 1 {
		opts.PruneScore = def.PruneScore
	}
	opts.Weights = opts.Weights.normalized()
	return &Searcher{cat: cat, opts: opts}
}

// Search returns the top-K datasets by similarity to the query.
//
// Results are exact: within each snapshot shard the planner scores
// index candidates tier by tier (intersection of the per-dimension
// candidate sets, then their union, then everything in the shard) and
// stops only when the K-th score strictly exceeds the provable ceiling
// on everything unscored — a dataset outside a dimension's candidate
// set scores 0 on the variable dimension and below PruneScore on the
// spatial and temporal ones. Per-shard top-Ks are gathered through a
// single merge heap, so the ranking is identical for every shard count,
// and the linear-scan ablation (UseIndex=false) returns byte-identical
// rankings too.
func (s *Searcher) Search(q Query) ([]Result, error) {
	return s.SearchContext(context.Background(), q)
}

// SearchContext is Search with cancellation: a long scoring pass checks
// ctx between tiers and every few hundred candidates, and returns
// ctx.Err() instead of a partial ranking when the caller gives up — the
// serving layer's request-scoped entry point.
//
// When the context carries an obs.QueryObs (attached by the serving
// layer), the executor records per-stage timings, per-shard candidate
// counts, and — for sampled or forced traces — a span tree. Without
// one, the whole observability surface collapses to a single context
// lookup and nil checks; rankings are identical either way.
func (s *Searcher) SearchContext(ctx context.Context, q Query) ([]Result, error) {
	results, err := s.searchCtx(ctx, q, false)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// SearchPartialContext is SearchContext with best-effort semantics on
// deadline: when ctx ends before the ranking is complete, it returns
// whatever the scatter had gathered and ranked by then — possibly
// nothing — with partial=true instead of an error. The serving layer
// uses it to answer a deadline-expired request with HTTP 200 and a
// Partial flag rather than burning the work already done. Partial
// rankings are exact over the candidates that were scored, but tiers
// the deadline cut off may hold better-scoring datasets; only
// partial=false results carry the executor's exactness guarantee.
func (s *Searcher) SearchPartialContext(ctx context.Context, q Query) (results []Result, partial bool, err error) {
	results, err = s.searchCtx(ctx, q, true)
	if err != nil {
		return nil, false, err
	}
	return results, ctx.Err() != nil, nil
}

// searchCtx is the shared search body. With partialOK, a context that
// ends mid-search stops the scatter early and the gathered results are
// still explained and returned; without it the caller discards them
// (preserving SearchContext's error contract).
func (s *Searcher) searchCtx(ctx context.Context, q Query, partialOK bool) ([]Result, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil && !partialOK {
		return nil, err
	}
	k := q.K
	if k <= 0 {
		k = 10
	}
	qo := obs.QueryFromContext(ctx)
	tr, root := qo.Tracer()
	var t0 time.Time
	if qo != nil {
		t0 = time.Now()
	}
	eid := tr.Start(root, "expand")
	expanded := s.expandTerms(q.Terms)
	tr.Attr(eid, "terms", int64(len(expanded)))
	tr.End(eid)
	if qo != nil {
		// Term expansion is query preparation; fold it into plan time.
		qo.PlanNs += time.Since(t0).Nanoseconds()
	}
	snap := s.cat.Snapshot()

	results := s.searchSnapshot(ctx, snap, q, expanded, k, qo)
	// Explain pass: per-term score breakdowns are recomputed for the ≤K
	// returned results only. The hot scoring loop computes bare sums —
	// allocating a TermScores slice (and building matched-as labels) for
	// every scored candidate would dominate the query's allocations just
	// to throw all but K away. scoreTerm is deterministic, so the
	// explanation carries exactly the score the ranking used.
	if len(expanded) > 0 {
		if qo != nil {
			t0 = time.Now()
		}
		xid := tr.Start(root, "explain")
		for i := range results {
			ts := make([]TermScore, len(expanded))
			for j, et := range expanded {
				ts[j] = s.scoreTerm(results[i].Feature, et, true)
			}
			results[i].TermScores = ts
		}
		tr.End(xid)
		if qo != nil {
			qo.ExplainNs += time.Since(t0).Nanoseconds()
		}
	}
	return results, nil
}

func rank(results []Result) {
	sort.Slice(results, func(i, j int) bool {
		if results[i].Score != results[j].Score {
			return results[i].Score > results[j].Score
		}
		return results[i].Feature.ID < results[j].Feature.ID
	})
}

// expandedTerm carries a term with its rewrites.
type expandedTerm struct {
	term       Term
	expansions []Expansion
}

func (s *Searcher) expandTerms(terms []Term) []expandedTerm {
	out := make([]expandedTerm, len(terms))
	for i, t := range terms {
		exps := []Expansion{{Name: t.Name, Weight: 1}}
		if s.opts.Expander != nil {
			if e := s.opts.Expander.Expand(t.Name); len(e) > 0 {
				exps = e
			}
		}
		out[i] = expandedTerm{term: t, expansions: exps}
	}
	return out
}

// score computes the distance-based similarity of one feature.
func (s *Searcher) score(f *catalog.Feature, q Query, expanded []expandedTerm) Result {
	r := Result{Feature: f, Space: 1, Time: 1, Vars: 1}
	w := s.opts.Weights
	totalWeight := 0.0
	total := 0.0

	if q.Location != nil || q.Region != nil {
		var distKm float64
		if q.Location != nil {
			distKm = f.BBox.DistanceKm(*q.Location)
		} else {
			distKm = f.BBox.DistanceToBoxKm(*q.Region)
		}
		r.Space = decay(distKm, s.opts.SpaceScaleKm)
		total += w.Space * r.Space
		totalWeight += w.Space
	}
	if q.Time != nil {
		gap := f.Time.Distance(*q.Time)
		r.Time = decay(float64(gap), float64(s.opts.TimeScale))
		total += w.Time * r.Time
		totalWeight += w.Time
	}
	if len(expanded) > 0 {
		sum := 0.0
		for _, et := range expanded {
			sum += s.scoreTerm(f, et, false).Score
		}
		r.Vars = sum / float64(len(expanded))
		total += w.Variables * r.Vars
		totalWeight += w.Variables
	}
	if totalWeight == 0 {
		return r
	}
	r.Score = total / totalWeight
	return r
}

// scoreTerm scores one query term against a feature: the best expansion
// match (by name or hierarchy parent), degraded by value-range fit.
// With explain=false only the score is computed — no matched-as label
// and no string building, keeping the per-candidate loop free of
// allocations; the explain pass re-runs with explain=true for the
// results actually returned, and yields the identical Score (the match
// loops are the same either way).
func (s *Searcher) scoreTerm(f *catalog.Feature, et expandedTerm, explain bool) TermScore {
	best := TermScore{Term: et.term.Name}
	// matched/viaParent record how the current best was found; the label
	// string is only built once, after the loops, when explaining.
	var matched, viaParent string
	consider := func(v catalog.VarFeature, weight float64, name, parent string) {
		if v.Excluded {
			return
		}
		score := weight
		if et.term.Range != nil && v.Count > 0 {
			score *= rangeFit(*et.term.Range, v.Range)
		}
		if score > best.Score {
			best.Score = score
			matched, viaParent = name, parent
		}
	}
	for _, exp := range et.expansions {
		if v, ok := f.Variable(exp.Name); ok {
			consider(v, exp.Weight, exp.Name, "")
		}
	}
	// Hierarchy-parent match: querying the parent concept finds members.
	for _, v := range f.Variables {
		if v.Parent != "" && v.Parent == et.term.Name {
			consider(v, s.opts.ParentWeight, v.Name, v.Parent)
		}
	}
	if explain && best.Score > 0 {
		if viaParent != "" {
			best.MatchedAs = matched + " (child of " + viaParent + ")"
		} else {
			best.MatchedAs = matched
		}
	}
	return best
}

// rangeFit maps the relationship between the queried range and the
// observed range into (0,1]: 1 when the observed range covers the query,
// the overlap fraction when they intersect, and a distance decay when
// disjoint.
func rangeFit(query, observed geo.ValueRange) float64 {
	if query.Width() <= 0 {
		// Point query: containment or distance decay.
		if observed.Contains(query.Min) {
			return 1
		}
		scale := observed.Width()
		if scale <= 0 {
			scale = math.Abs(query.Min)
			if scale == 0 {
				scale = 1
			}
		}
		return decay(observed.Distance(query), scale)
	}
	if observed.Overlaps(query) {
		interMin := math.Max(query.Min, observed.Min)
		interMax := math.Min(query.Max, observed.Max)
		return (interMax - interMin) / query.Width()
	}
	return 0.5 * decay(observed.Distance(query), query.Width())
}

// decay maps a non-negative distance to (0,1] with half-life scale.
func decay(dist, scale float64) float64 {
	if dist <= 0 {
		return 1
	}
	if scale <= 0 {
		return 0
	}
	return 1 / (1 + dist/scale)
}
