// Package units canonicalizes the measurement-unit strings that appear in
// scientific archives. The poster's Table 1 calls out unit synonymy
// ("C", "degC", "Centigrade") as a category of semantic diversity; this
// package resolves unit aliases to a canonical symbol per unit family and
// converts values between units of the same family.
package units

import (
	"fmt"
	"sort"

	"metamess/internal/fingerprint"
)

// Family groups interconvertible units.
type Family string

// Unit families observed in coastal-margin observatory data.
const (
	Temperature   Family = "temperature"
	Salinity      Family = "salinity"
	Speed         Family = "speed"
	Pressure      Family = "pressure"
	Length        Family = "length"
	Concentration Family = "concentration"
	Turbidity     Family = "turbidity"
	Fraction      Family = "fraction"
	PH            Family = "ph"
	Dimensionless Family = "dimensionless"
)

// Unit describes one measurement unit and its linear mapping to the
// family's canonical unit: canonical = value*Scale + Offset.
type Unit struct {
	// Symbol is the canonical display symbol, e.g. "degC".
	Symbol string
	// Family is the unit family the unit converts within.
	Family Family
	// Scale and Offset define the affine map to the canonical unit.
	Scale  float64
	Offset float64
}

// Canonical reports whether this unit is its family's canonical unit.
func (u Unit) Canonical() bool { return u.Scale == 1 && u.Offset == 0 }

// toCanonical maps a value in this unit into the family canonical unit.
func (u Unit) toCanonical(v float64) float64 { return v*u.Scale + u.Offset }

// fromCanonical maps a canonical value back into this unit.
func (u Unit) fromCanonical(v float64) float64 { return (v - u.Offset) / u.Scale }

// Registry resolves unit aliases. The zero value is unusable; construct
// with NewRegistry, which pre-loads the standard table and accepts
// curator additions via AddAlias.
type Registry struct {
	units   map[string]Unit   // canonical symbol -> unit
	aliases map[string]string // normalized alias -> canonical symbol
}

// NewRegistry returns a registry loaded with the standard unit table.
func NewRegistry() *Registry {
	r := &Registry{
		units:   make(map[string]Unit),
		aliases: make(map[string]string),
	}
	add := func(u Unit, aliases ...string) {
		r.units[u.Symbol] = u
		r.aliases[normalize(u.Symbol)] = u.Symbol
		for _, a := range aliases {
			r.aliases[normalize(a)] = u.Symbol
		}
	}

	// Temperature: canonical degC.
	add(Unit{Symbol: "degC", Family: Temperature, Scale: 1, Offset: 0},
		"C", "°C", "Celsius", "Centigrade", "deg C", "degrees C",
		"degrees Celsius", "deg_C", "celcius")
	add(Unit{Symbol: "degF", Family: Temperature, Scale: 5.0 / 9.0, Offset: -160.0 / 9.0},
		"F", "°F", "Fahrenheit", "deg F", "degrees F", "degrees Fahrenheit")
	add(Unit{Symbol: "K", Family: Temperature, Scale: 1, Offset: -273.15},
		"Kelvin", "degK", "deg K", "degrees K")

	// Salinity: canonical PSU (practical salinity unit; 1 PSU ~ 1 g/kg).
	add(Unit{Symbol: "PSU", Family: Salinity, Scale: 1, Offset: 0},
		"psu", "practical salinity units", "practical salinity unit", "PSS-78", "pss")
	add(Unit{Symbol: "g/kg", Family: Salinity, Scale: 1, Offset: 0},
		"g kg-1", "grams per kilogram", "ppt", "parts per thousand")

	// Speed: canonical m/s.
	add(Unit{Symbol: "m/s", Family: Speed, Scale: 1, Offset: 0},
		"m s-1", "meters per second", "metres per second", "mps", "m.s-1")
	add(Unit{Symbol: "cm/s", Family: Speed, Scale: 0.01, Offset: 0},
		"cm s-1", "centimeters per second")
	add(Unit{Symbol: "knots", Family: Speed, Scale: 0.514444, Offset: 0},
		"kt", "kts", "knot")

	// Pressure: canonical dbar (decibar, ~1 m depth of seawater).
	add(Unit{Symbol: "dbar", Family: Pressure, Scale: 1, Offset: 0},
		"decibar", "decibars", "db")
	add(Unit{Symbol: "bar", Family: Pressure, Scale: 10, Offset: 0}, "bars")
	add(Unit{Symbol: "Pa", Family: Pressure, Scale: 1e-4, Offset: 0},
		"pascal", "pascals")
	add(Unit{Symbol: "kPa", Family: Pressure, Scale: 0.1, Offset: 0},
		"kilopascal", "kilopascals")

	// Length/depth: canonical m.
	add(Unit{Symbol: "m", Family: Length, Scale: 1, Offset: 0},
		"meter", "meters", "metre", "metres")
	add(Unit{Symbol: "cm", Family: Length, Scale: 0.01, Offset: 0},
		"centimeter", "centimeters")
	add(Unit{Symbol: "km", Family: Length, Scale: 1000, Offset: 0},
		"kilometer", "kilometers", "kilometre", "kilometres")
	add(Unit{Symbol: "ft", Family: Length, Scale: 0.3048, Offset: 0},
		"foot", "feet")

	// Concentration: canonical mg/L.
	add(Unit{Symbol: "mg/L", Family: Concentration, Scale: 1, Offset: 0},
		"mg l-1", "mg/l", "milligrams per liter", "milligrams per litre")
	add(Unit{Symbol: "ug/L", Family: Concentration, Scale: 0.001, Offset: 0},
		"ug l-1", "µg/L", "micrograms per liter")

	// Turbidity: canonical NTU.
	add(Unit{Symbol: "NTU", Family: Turbidity, Scale: 1, Offset: 0},
		"nephelometric turbidity units", "ntu")

	// Fractions: canonical percent.
	add(Unit{Symbol: "%", Family: Fraction, Scale: 1, Offset: 0},
		"percent", "pct", "percentage")

	// pH: canonical pH (no conversions).
	add(Unit{Symbol: "pH", Family: PH, Scale: 1, Offset: 0}, "ph units", "ph unit")

	// Dimensionless: counts, levels, flags.
	add(Unit{Symbol: "1", Family: Dimensionless, Scale: 1, Offset: 0},
		"count", "counts", "level", "levels", "flag", "flags",
		"dimensionless", "unitless", "none", "n/a", "na", "-")

	return r
}

// Lookup resolves a raw unit string to its Unit, reporting whether the
// string (after normalization) is known.
func (r *Registry) Lookup(raw string) (Unit, bool) {
	sym, ok := r.aliases[normalize(raw)]
	if !ok {
		return Unit{}, false
	}
	return r.units[sym], true
}

// Canonicalize maps a raw unit string to its canonical symbol; unknown
// strings are returned unchanged with ok=false so callers can flag them
// for curation.
func (r *Registry) Canonicalize(raw string) (string, bool) {
	u, ok := r.Lookup(raw)
	if !ok {
		return raw, false
	}
	return u.Symbol, true
}

// AddAlias registers a curator-supplied alias for an existing canonical
// symbol. It fails if the symbol is unknown, so typos surface immediately.
func (r *Registry) AddAlias(alias, canonicalSymbol string) error {
	if _, ok := r.units[canonicalSymbol]; !ok {
		return fmt.Errorf("units: unknown canonical symbol %q", canonicalSymbol)
	}
	r.aliases[normalize(alias)] = canonicalSymbol
	return nil
}

// AddUnit registers a new unit (and its canonical-symbol alias).
func (r *Registry) AddUnit(u Unit, aliases ...string) error {
	if u.Symbol == "" {
		return fmt.Errorf("units: unit needs a symbol")
	}
	if u.Scale == 0 {
		return fmt.Errorf("units: unit %q needs a non-zero scale", u.Symbol)
	}
	r.units[u.Symbol] = u
	r.aliases[normalize(u.Symbol)] = u.Symbol
	for _, a := range aliases {
		r.aliases[normalize(a)] = u.Symbol
	}
	return nil
}

// Convert converts v from one unit string to another; both must resolve
// and belong to the same family.
func (r *Registry) Convert(v float64, fromRaw, toRaw string) (float64, error) {
	from, ok := r.Lookup(fromRaw)
	if !ok {
		return 0, fmt.Errorf("units: unknown unit %q", fromRaw)
	}
	to, ok := r.Lookup(toRaw)
	if !ok {
		return 0, fmt.Errorf("units: unknown unit %q", toRaw)
	}
	if from.Family != to.Family {
		return 0, fmt.Errorf("units: cannot convert %s (%s) to %s (%s)",
			from.Symbol, from.Family, to.Symbol, to.Family)
	}
	return to.fromCanonical(from.toCanonical(v)), nil
}

// ToCanonical converts v from a raw unit into the family canonical unit,
// returning the converted value and the canonical symbol.
func (r *Registry) ToCanonical(v float64, fromRaw string) (float64, string, error) {
	from, ok := r.Lookup(fromRaw)
	if !ok {
		return 0, "", fmt.Errorf("units: unknown unit %q", fromRaw)
	}
	canon, err := r.canonicalOf(from.Family)
	if err != nil {
		return 0, "", err
	}
	return canon.fromCanonical(from.toCanonical(v)), canon.Symbol, nil
}

// canonicalOf finds the canonical unit of a family.
func (r *Registry) canonicalOf(f Family) (Unit, error) {
	for _, u := range r.units {
		if u.Family == f && u.Canonical() {
			return u, nil
		}
	}
	return Unit{}, fmt.Errorf("units: family %q has no canonical unit", f)
}

// Symbols returns all canonical symbols, sorted, for documentation.
func (r *Registry) Symbols() []string {
	out := make([]string, 0, len(r.units))
	for s := range r.units {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// AliasCount returns the number of registered aliases (diagnostics).
func (r *Registry) AliasCount() int { return len(r.aliases) }

// Aliases returns every registered alias as sorted "alias=symbol"
// pairs — a deterministic enumeration for fingerprinting the registry's
// curated state.
func (r *Registry) Aliases() []string {
	out := make([]string, 0, len(r.aliases))
	for a, sym := range r.aliases {
		out = append(out, a+"="+sym)
	}
	sort.Strings(out)
	return out
}

func normalize(s string) string { return fingerprint.Normalize(s) }
