package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCanonicalizeTemperatureSynonyms(t *testing.T) {
	r := NewRegistry()
	// The poster's Table 1 synonym row: C, degC, Centigrade are the same.
	for _, raw := range []string{"C", "degC", "Centigrade", "°C", "celsius", "DEG C"} {
		got, ok := r.Canonicalize(raw)
		if !ok || got != "degC" {
			t.Errorf("Canonicalize(%q) = %q, %v; want degC, true", raw, got, ok)
		}
	}
}

func TestCanonicalizeUnknown(t *testing.T) {
	r := NewRegistry()
	got, ok := r.Canonicalize("furlongs per fortnight")
	if ok {
		t.Error("unknown unit reported as known")
	}
	if got != "furlongs per fortnight" {
		t.Errorf("unknown unit should round-trip unchanged, got %q", got)
	}
}

func TestConvertTemperature(t *testing.T) {
	r := NewRegistry()
	cases := []struct {
		v        float64
		from, to string
		want     float64
	}{
		{0, "C", "F", 32},
		{100, "C", "degF", 212},
		{32, "F", "C", 0},
		{0, "C", "K", 273.15},
		{273.15, "K", "C", 0},
		{-40, "C", "F", -40},
	}
	for _, c := range cases {
		got, err := r.Convert(c.v, c.from, c.to)
		if err != nil {
			t.Errorf("Convert(%g, %q, %q): %v", c.v, c.from, c.to, err)
			continue
		}
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Convert(%g, %q, %q) = %g, want %g", c.v, c.from, c.to, got, c.want)
		}
	}
}

func TestConvertSpeedAndPressure(t *testing.T) {
	r := NewRegistry()
	if got, err := r.Convert(100, "cm/s", "m/s"); err != nil || math.Abs(got-1) > 1e-12 {
		t.Errorf("100 cm/s = %g m/s (%v), want 1", got, err)
	}
	if got, err := r.Convert(1, "bar", "dbar"); err != nil || math.Abs(got-10) > 1e-12 {
		t.Errorf("1 bar = %g dbar (%v), want 10", got, err)
	}
	if got, err := r.Convert(10000, "Pa", "dbar"); err != nil || math.Abs(got-1) > 1e-9 {
		t.Errorf("10000 Pa = %g dbar (%v), want 1", got, err)
	}
}

func TestConvertCrossFamilyFails(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Convert(1, "C", "m/s"); err == nil {
		t.Error("cross-family conversion should fail")
	}
	if _, err := r.Convert(1, "nope", "C"); err == nil {
		t.Error("unknown source unit should fail")
	}
	if _, err := r.Convert(1, "C", "nope"); err == nil {
		t.Error("unknown target unit should fail")
	}
}

func TestToCanonical(t *testing.T) {
	r := NewRegistry()
	v, sym, err := r.ToCanonical(212, "F")
	if err != nil {
		t.Fatal(err)
	}
	if sym != "degC" || math.Abs(v-100) > 1e-9 {
		t.Errorf("ToCanonical(212 F) = %g %s, want 100 degC", v, sym)
	}
	if _, _, err := r.ToCanonical(1, "unknowable"); err == nil {
		t.Error("unknown unit should fail")
	}
}

func TestAddAlias(t *testing.T) {
	r := NewRegistry()
	// Curatorial activity: adding entries to a synonym table.
	if err := r.AddAlias("grados", "degC"); err != nil {
		t.Fatal(err)
	}
	if got, ok := r.Canonicalize("Grados"); !ok || got != "degC" {
		t.Errorf("added alias not resolved: %q, %v", got, ok)
	}
	if err := r.AddAlias("x", "no_such_symbol"); err == nil {
		t.Error("alias to unknown symbol should fail")
	}
}

func TestAddUnit(t *testing.T) {
	r := NewRegistry()
	err := r.AddUnit(Unit{Symbol: "mm", Family: Length, Scale: 0.001}, "millimeter")
	if err != nil {
		t.Fatal(err)
	}
	if got, err := r.Convert(1000, "mm", "m"); err != nil || math.Abs(got-1) > 1e-12 {
		t.Errorf("1000 mm = %g m (%v), want 1", got, err)
	}
	if err := r.AddUnit(Unit{Symbol: "", Family: Length, Scale: 1}); err == nil {
		t.Error("empty symbol should fail")
	}
	if err := r.AddUnit(Unit{Symbol: "zero", Family: Length, Scale: 0}); err == nil {
		t.Error("zero scale should fail")
	}
}

func TestConvertRoundTripProperty(t *testing.T) {
	r := NewRegistry()
	pairs := [][2]string{{"C", "F"}, {"C", "K"}, {"m/s", "knots"}, {"m", "ft"}, {"dbar", "Pa"}}
	f := func(v float64) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
			return true
		}
		for _, p := range pairs {
			there, err := r.Convert(v, p[0], p[1])
			if err != nil {
				return false
			}
			back, err := r.Convert(there, p[1], p[0])
			if err != nil {
				return false
			}
			tol := 1e-6 * (1 + math.Abs(v))
			if math.Abs(back-v) > tol {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSymbolsSortedAndComplete(t *testing.T) {
	r := NewRegistry()
	syms := r.Symbols()
	if len(syms) < 15 {
		t.Fatalf("expected a rich unit table, got %d symbols", len(syms))
	}
	for i := 1; i < len(syms); i++ {
		if syms[i-1] >= syms[i] {
			t.Errorf("Symbols not sorted at %d", i)
		}
	}
	if r.AliasCount() <= len(syms) {
		t.Error("expected more aliases than canonical symbols")
	}
}

func TestDimensionlessAliases(t *testing.T) {
	r := NewRegistry()
	for _, raw := range []string{"count", "counts", "unitless", "n/a", "-"} {
		if got, ok := r.Canonicalize(raw); !ok || got != "1" {
			t.Errorf("Canonicalize(%q) = %q, %v; want \"1\", true", raw, got, ok)
		}
	}
}

func BenchmarkCanonicalize(b *testing.B) {
	r := NewRegistry()
	for i := 0; i < b.N; i++ {
		r.Canonicalize("degrees Celsius")
	}
}
