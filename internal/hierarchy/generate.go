package hierarchy

import (
	"sort"
	"strings"

	"metamess/internal/fingerprint"
)

// GenerateOptions configures automatic hierarchy generation, mirroring
// the poster's "Configure: levels, aggregation" annotation on the
// generate-hierarchies component.
type GenerateOptions struct {
	// MinGroupSize is the smallest family that earns its own parent node;
	// smaller families stay at the top level. Default 2.
	MinGroupSize int
	// GroupNumericSuffixes groups names that differ only by a trailing
	// number (fluores375, fluores400) under their common stem. Default on
	// via DefaultGenerateOptions.
	GroupNumericSuffixes bool
	// GroupByFirstToken groups names sharing their first word token
	// (water_temperature, water_velocity -> water). Default on via
	// DefaultGenerateOptions.
	GroupByFirstToken bool
}

// DefaultGenerateOptions returns the options used by the wrangling chain
// unless a process config overrides them.
func DefaultGenerateOptions() GenerateOptions {
	return GenerateOptions{
		MinGroupSize:         2,
		GroupNumericSuffixes: true,
		GroupByFirstToken:    true,
	}
}

// Generate builds a taxonomy from a flat list of (canonical) variable
// names. Two aggregations are mined:
//
//   - numeric-suffix families: names whose tokens are a shared stem plus a
//     number ("fluores375", "fluores400") nest under the stem;
//   - first-token families: names sharing their leading token
//     ("water_temperature", "water_velocity") nest under that token.
//
// Numeric-suffix grouping wins when both apply, because it captures the
// poster's "concepts at multiple levels of detail" example directly.
// Ungrouped names sit at the top level.
func Generate(name string, names []string, opts GenerateOptions) (*Taxonomy, error) {
	if opts.MinGroupSize < 2 {
		opts.MinGroupSize = 2
	}
	x := NewTaxonomy(name)

	// De-duplicate by normalized form, keeping first display form.
	seen := make(map[string]string)
	var order []string
	for _, n := range names {
		k := norm(n)
		if k == "" {
			continue
		}
		if _, dup := seen[k]; !dup {
			seen[k] = n
			order = append(order, k)
		}
	}
	sort.Strings(order)

	assigned := make(map[string]string) // member key -> parent term

	if opts.GroupNumericSuffixes {
		stems := make(map[string][]string) // stem -> member keys
		for _, k := range order {
			disp := seen[k]
			stem, ok := numericStem(disp)
			if !ok {
				continue
			}
			stems[stem] = append(stems[stem], k)
		}
		var stemKeys []string
		for s := range stems {
			stemKeys = append(stemKeys, s)
		}
		sort.Strings(stemKeys)
		for _, stem := range stemKeys {
			members := stems[stem]
			if len(members) < opts.MinGroupSize {
				continue
			}
			for _, m := range members {
				assigned[m] = stem
			}
		}
	}

	if opts.GroupByFirstToken {
		firsts := make(map[string][]string)
		for _, k := range order {
			if _, done := assigned[k]; done {
				continue
			}
			toks := fingerprint.Tokens(seen[k])
			if len(toks) < 2 {
				continue // single-token names have no family token
			}
			firsts[toks[0]] = append(firsts[toks[0]], k)
		}
		var firstKeys []string
		for f := range firsts {
			firstKeys = append(firstKeys, f)
		}
		sort.Strings(firstKeys)
		for _, tok := range firstKeys {
			members := firsts[tok]
			if len(members) < opts.MinGroupSize {
				continue
			}
			for _, m := range members {
				assigned[m] = tok
			}
		}
	}

	// Build the tree: parents first (sorted), then members, then loners.
	parents := make(map[string][]string)
	for _, k := range order {
		if p, ok := assigned[k]; ok {
			parents[p] = append(parents[p], k)
		}
	}
	var parentKeys []string
	for p := range parents {
		parentKeys = append(parentKeys, p)
	}
	sort.Strings(parentKeys)
	for _, p := range parentKeys {
		for _, m := range parents[p] {
			disp := seen[m]
			if norm(p) == m {
				// The member is the parent concept itself.
				if _, err := x.AddPath(disp); err != nil {
					return nil, err
				}
				continue
			}
			if _, err := x.AddPath(p, disp); err != nil {
				return nil, err
			}
		}
	}
	for _, k := range order {
		if _, grouped := assigned[k]; grouped {
			continue
		}
		if x.Contains(seen[k]) {
			continue
		}
		if _, err := x.AddPath(seen[k]); err != nil {
			return nil, err
		}
	}
	return x, nil
}

// numericStem splits a name like "fluores375" or "fluores_375" into its
// letter stem when the name is a stem plus a trailing number.
func numericStem(name string) (string, bool) {
	toks := fingerprint.Tokens(name)
	if len(toks) < 2 {
		return "", false
	}
	last := toks[len(toks)-1]
	if !allDigits(last) {
		return "", false
	}
	stem := strings.Join(toks[:len(toks)-1], " ")
	if stem == "" {
		return "", false
	}
	return stem, true
}

func allDigits(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if r < '0' || r > '9' {
			return false
		}
	}
	return true
}
