package hierarchy

import (
	"strings"
	"testing"
)

func build(t *testing.T) *Taxonomy {
	t.Helper()
	x := NewTaxonomy("variables")
	paths := [][]string{
		{"optics", "fluorescence", "fluores375"},
		{"optics", "fluorescence", "fluores400"},
		{"optics", "turbidity"},
		{"physics", "temperature"},
		{"physics", "salinity"},
	}
	for _, p := range paths {
		if _, err := x.AddPath(p...); err != nil {
			t.Fatal(err)
		}
	}
	return x
}

func TestAddPathAndFind(t *testing.T) {
	x := build(t)
	if x.Size() != 8 {
		t.Errorf("Size = %d, want 8", x.Size())
	}
	if !x.Contains("fluores375") || !x.Contains("Fluorescence") {
		t.Error("Contains failed (should normalize)")
	}
	if x.Contains("nonexistent") {
		t.Error("Contains accepted unknown term")
	}
	if _, err := x.AddPath(); err == nil {
		t.Error("empty path should fail")
	}
	if _, err := x.AddPath("a", "", "b"); err == nil {
		t.Error("empty term should fail")
	}
}

func TestAddPathConflict(t *testing.T) {
	x := build(t)
	// fluorescence already lives under optics; placing it under physics fails.
	if _, err := x.AddPath("physics", "fluorescence"); err == nil {
		t.Error("conflicting placement accepted")
	}
	// Re-adding the same path is a no-op.
	before := x.Size()
	if _, err := x.AddPath("optics", "fluorescence"); err != nil {
		t.Errorf("idempotent re-add failed: %v", err)
	}
	if x.Size() != before {
		t.Error("idempotent re-add changed size")
	}
}

func TestParentAncestors(t *testing.T) {
	x := build(t)
	p, ok := x.Parent("fluores375")
	if !ok || p != "fluorescence" {
		t.Errorf("Parent = %q, %v", p, ok)
	}
	if _, ok := x.Parent("optics"); ok {
		t.Error("top-level term should have no parent")
	}
	anc := x.Ancestors("fluores375")
	if len(anc) != 2 || anc[0] != "fluorescence" || anc[1] != "optics" {
		t.Errorf("Ancestors = %v", anc)
	}
	if x.Ancestors("ghost") != nil {
		t.Error("ancestors of unknown term should be nil")
	}
}

func TestChildrenDescendantsLeaves(t *testing.T) {
	x := build(t)
	top := x.Children("")
	if len(top) != 2 || top[0] != "optics" || top[1] != "physics" {
		t.Errorf("top-level = %v", top)
	}
	kids := x.Children("fluorescence")
	if len(kids) != 2 || kids[0] != "fluores375" {
		t.Errorf("children = %v", kids)
	}
	if x.Children("ghost") != nil {
		t.Error("children of unknown term should be nil")
	}
	desc := x.Descendants("optics")
	if len(desc) != 4 {
		t.Errorf("descendants = %v", desc)
	}
	leaves := x.Leaves("optics")
	if len(leaves) != 3 { // fluores375, fluores400, turbidity
		t.Errorf("leaves = %v", leaves)
	}
	all := x.Descendants("")
	if len(all) != 8 {
		t.Errorf("all descendants = %d, want 8", len(all))
	}
}

func TestDepth(t *testing.T) {
	x := build(t)
	cases := map[string]int{"optics": 1, "fluorescence": 2, "fluores375": 3, "ghost": 0}
	for term, want := range cases {
		if got := x.Depth(term); got != want {
			t.Errorf("Depth(%q) = %d, want %d", term, got, want)
		}
	}
}

func TestMenuCollapseExpose(t *testing.T) {
	x := build(t)
	full := x.Menu(0)
	if len(full) != 8 {
		t.Errorf("full menu = %d lines, want 8:\n%s", len(full), strings.Join(full, "\n"))
	}
	// Collapsed at depth 1: only the two top-level terms, with counts.
	top := x.Menu(1)
	if len(top) != 2 {
		t.Fatalf("depth-1 menu = %v", top)
	}
	if !strings.Contains(top[0], "optics") || !strings.Contains(top[0], "(+4)") {
		t.Errorf("collapsed line = %q, want optics (+4)", top[0])
	}
	// Depth 2 exposes fluorescence but collapses its children.
	mid := x.Menu(2)
	found := false
	for _, line := range mid {
		if strings.Contains(line, "fluorescence") && strings.Contains(line, "(+2)") {
			found = true
		}
	}
	if !found {
		t.Errorf("depth-2 menu missing collapsed fluorescence: %v", mid)
	}
	// Indentation encodes depth.
	if !strings.HasPrefix(full[1], "  ") {
		t.Errorf("second-level term not indented: %q", full[1])
	}
}

func TestSetMultipleTaxonomies(t *testing.T) {
	air := NewTaxonomy("air")
	water := NewTaxonomy("water")
	if _, err := air.AddPath("temperature"); err != nil {
		t.Fatal(err)
	}
	if _, err := water.AddPath("temperature"); err != nil {
		t.Fatal(err)
	}
	if _, err := water.AddPath("salinity"); err != nil {
		t.Fatal(err)
	}
	s := NewSet()
	if err := s.Add(air); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(water); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(NewTaxonomy("air")); err == nil {
		t.Error("duplicate taxonomy accepted")
	}
	// Table 1's source-context row: temperature occurs in both contexts.
	ctx := s.TaxonomiesOf("temperature")
	if len(ctx) != 2 || ctx[0] != "air" || ctx[1] != "water" {
		t.Errorf("contexts = %v", ctx)
	}
	if got := s.TaxonomiesOf("salinity"); len(got) != 1 || got[0] != "water" {
		t.Errorf("salinity contexts = %v", got)
	}
	if got := s.Names(); len(got) != 2 {
		t.Errorf("Names = %v", got)
	}
	if _, ok := s.Get("air"); !ok {
		t.Error("Get failed")
	}
}

func TestQualified(t *testing.T) {
	cases := []struct{ ctx, term, want string }{
		{"water", "temperature", "water_temperature"},
		{"air", "Temperature", "air_temperature"},
		{"", "salinity", "salinity"},
		{"near surface", "oxygen", "near_surface_oxygen"},
	}
	for _, c := range cases {
		if got := Qualified(c.ctx, c.term); got != c.want {
			t.Errorf("Qualified(%q,%q) = %q, want %q", c.ctx, c.term, got, c.want)
		}
	}
}

func TestGenerateNumericFamilies(t *testing.T) {
	names := []string{"fluores375", "fluores400", "fluores440", "salinity", "temperature"}
	x, err := Generate("vars", names, DefaultGenerateOptions())
	if err != nil {
		t.Fatal(err)
	}
	// The poster's multi-level example: fluoresNNN group under "fluores".
	kids := x.Children("fluores")
	if len(kids) != 3 {
		t.Fatalf("fluores children = %v", kids)
	}
	if p, ok := x.Parent("fluores375"); !ok || p != "fluores" {
		t.Errorf("parent of fluores375 = %q, %v", p, ok)
	}
	// Loners stay top-level.
	if d := x.Depth("salinity"); d != 1 {
		t.Errorf("salinity depth = %d, want 1", d)
	}
}

func TestGenerateFirstTokenFamilies(t *testing.T) {
	names := []string{
		"water_temperature", "water_velocity", "water_salinity",
		"air_temperature", "air_pressure",
		"oxygen",
	}
	x, err := Generate("vars", names, DefaultGenerateOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(x.Children("water")) != 3 {
		t.Errorf("water children = %v", x.Children("water"))
	}
	if len(x.Children("air")) != 2 {
		t.Errorf("air children = %v", x.Children("air"))
	}
	if d := x.Depth("oxygen"); d != 1 {
		t.Errorf("oxygen depth = %d", d)
	}
}

func TestGenerateMinGroupSize(t *testing.T) {
	names := []string{"water_temperature", "water_velocity", "air_pressure"}
	opts := DefaultGenerateOptions()
	opts.MinGroupSize = 3
	x, err := Generate("vars", names, opts)
	if err != nil {
		t.Fatal(err)
	}
	// No family reaches size 3, so everything is top level.
	if len(x.Children("")) != 3 {
		t.Errorf("top level = %v", x.Children(""))
	}
}

func TestGenerateMemberEqualsParent(t *testing.T) {
	// "fluores" itself plus numeric members: the stem node is the name.
	names := []string{"fluores 375", "fluores 400", "fluores"}
	x, err := Generate("vars", names, DefaultGenerateOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !x.Contains("fluores") {
		t.Fatal("stem missing")
	}
	if len(x.Children("fluores")) != 2 {
		t.Errorf("children = %v", x.Children("fluores"))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	names := []string{"b_x", "b_y", "a_1", "a_2", "zeta"}
	first, err := Generate("v", names, DefaultGenerateOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := Generate("v", names, DefaultGenerateOptions())
		if err != nil {
			t.Fatal(err)
		}
		a, b := strings.Join(first.Menu(0), "\n"), strings.Join(again.Menu(0), "\n")
		if a != b {
			t.Fatalf("nondeterministic generation:\n%s\nvs\n%s", a, b)
		}
	}
}

func TestGenerateDuplicatesAndBlanks(t *testing.T) {
	names := []string{"salinity", "Salinity", "", "salinity"}
	x, err := Generate("v", names, DefaultGenerateOptions())
	if err != nil {
		t.Fatal(err)
	}
	if x.Size() != 1 {
		t.Errorf("Size = %d, want 1 (dedup + blank skip)", x.Size())
	}
}

func BenchmarkGenerate500(b *testing.B) {
	var names []string
	bases := []string{"water", "air", "river", "ocean", "sensor"}
	vars := []string{"temperature", "salinity", "velocity", "oxygen", "ph"}
	for i := 0; i < 500; i++ {
		names = append(names, bases[i%5]+"_"+vars[(i/5)%5]+suffix(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Generate("bench", names, DefaultGenerateOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func suffix(i int) string {
	if i%3 == 0 {
		return ""
	}
	return "_v2"
}
