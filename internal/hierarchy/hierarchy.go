// Package hierarchy implements the variable taxonomies of the wrangling
// process's "generate hierarchies" component: multi-level concept trees
// (fluorescence above fluores375/fluores400), source-context
// qualification (temperature under both air and water), membership in
// multiple taxonomies at once, and hierarchical menu rendering with
// collapse/expose — the approaches the poster's Table 1 prescribes for
// the "source-context naming variations" and "concepts at multiple
// levels of detail" categories.
package hierarchy

import (
	"fmt"
	"sort"
	"strings"

	"metamess/internal/fingerprint"
)

// Node is one concept in a taxonomy tree.
type Node struct {
	// Term is the concept's display name.
	Term string
	// Children are sub-concepts, kept sorted by term.
	Children []*Node
	parent   *Node
}

// Taxonomy is a named concept tree with an unnamed synthetic root.
type Taxonomy struct {
	// Name identifies the taxonomy ("variables", "air", "water", ...).
	Name   string
	root   *Node
	byTerm map[string]*Node // normalized term -> node
}

// NewTaxonomy returns an empty taxonomy.
func NewTaxonomy(name string) *Taxonomy {
	return &Taxonomy{
		Name:   name,
		root:   &Node{Term: ""},
		byTerm: make(map[string]*Node),
	}
}

// AddPath inserts a path of concepts from the root, creating missing
// nodes: AddPath("optics", "fluorescence", "fluores375") nests the three
// terms. It returns the leaf node. A term may appear at only one place in
// a taxonomy; re-adding a consistent prefix is a no-op, while attaching
// an existing term under a different parent is an error.
func (x *Taxonomy) AddPath(terms ...string) (*Node, error) {
	if len(terms) == 0 {
		return nil, fmt.Errorf("hierarchy: empty path")
	}
	cur := x.root
	for _, term := range terms {
		k := norm(term)
		if k == "" {
			return nil, fmt.Errorf("hierarchy: empty term in path %v", terms)
		}
		if existing, ok := x.byTerm[k]; ok {
			if existing.parent != cur {
				return nil, fmt.Errorf("hierarchy: %q already placed under %q", term, existing.parentTerm())
			}
			cur = existing
			continue
		}
		child := &Node{Term: term, parent: cur}
		cur.Children = append(cur.Children, child)
		sort.Slice(cur.Children, func(i, j int) bool { return cur.Children[i].Term < cur.Children[j].Term })
		x.byTerm[k] = child
		cur = child
	}
	return cur, nil
}

func (n *Node) parentTerm() string {
	if n.parent == nil || n.parent.Term == "" {
		return "(root)"
	}
	return n.parent.Term
}

// Find returns the node for a term, matching with fingerprint
// normalization.
func (x *Taxonomy) Find(term string) (*Node, bool) {
	n, ok := x.byTerm[norm(term)]
	return n, ok
}

// Contains reports whether the taxonomy holds the term.
func (x *Taxonomy) Contains(term string) bool {
	_, ok := x.Find(term)
	return ok
}

// Parent returns the parent term of a term, if it has a non-root parent.
func (x *Taxonomy) Parent(term string) (string, bool) {
	n, ok := x.Find(term)
	if !ok || n.parent == nil || n.parent.Term == "" {
		return "", false
	}
	return n.parent.Term, true
}

// Ancestors returns the terms from the immediate parent up to (not
// including) the root, nearest first.
func (x *Taxonomy) Ancestors(term string) []string {
	n, ok := x.Find(term)
	if !ok {
		return nil
	}
	var out []string
	for p := n.parent; p != nil && p.Term != ""; p = p.parent {
		out = append(out, p.Term)
	}
	return out
}

// Children returns the direct sub-terms of a term (or the top-level terms
// when term is empty), sorted.
func (x *Taxonomy) Children(term string) []string {
	var n *Node
	if term == "" {
		n = x.root
	} else {
		var ok bool
		n, ok = x.Find(term)
		if !ok {
			return nil
		}
	}
	out := make([]string, len(n.Children))
	for i, c := range n.Children {
		out[i] = c.Term
	}
	return out
}

// Descendants returns every term strictly below the given term
// (depth-first, children sorted).
func (x *Taxonomy) Descendants(term string) []string {
	var n *Node
	if term == "" {
		n = x.root
	} else {
		var ok bool
		n, ok = x.Find(term)
		if !ok {
			return nil
		}
	}
	var out []string
	var walk func(*Node)
	walk = func(nd *Node) {
		for _, c := range nd.Children {
			out = append(out, c.Term)
			walk(c)
		}
	}
	walk(n)
	return out
}

// Leaves returns the leaf terms below term ("" for the whole taxonomy).
func (x *Taxonomy) Leaves(term string) []string {
	var out []string
	for _, d := range x.Descendants(term) {
		if n, _ := x.Find(d); len(n.Children) == 0 {
			out = append(out, d)
		}
	}
	return out
}

// Depth returns the number of edges from the root to the term; top-level
// terms have depth 1. Unknown terms return 0.
func (x *Taxonomy) Depth(term string) int {
	n, ok := x.Find(term)
	if !ok {
		return 0
	}
	d := 0
	for p := n; p != nil && p.Term != ""; p = p.parent {
		d++
	}
	return d
}

// Size returns the number of terms in the taxonomy.
func (x *Taxonomy) Size() int { return len(x.byTerm) }

// Menu renders the taxonomy as an indented hierarchical menu, expanding
// nodes only down to maxDepth levels (0 = everything) — the "collapse or
// expose as needed" behaviour Table 1 prescribes. Collapsed nodes that
// hide children are suffixed with the hidden-descendant count.
func (x *Taxonomy) Menu(maxDepth int) []string {
	var out []string
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		for _, c := range n.Children {
			line := strings.Repeat("  ", depth) + c.Term
			if maxDepth > 0 && depth+1 >= maxDepth && len(c.Children) > 0 {
				hidden := len(x.Descendants(c.Term))
				out = append(out, fmt.Sprintf("%s (+%d)", line, hidden))
				continue
			}
			out = append(out, line)
			walk(c, depth+1)
		}
	}
	walk(x.root, 0)
	return out
}

// Set is a collection of taxonomies; a term may live in several at once
// ("link to multiple taxonomies" — Table 1's approach for source-context
// variations).
type Set struct {
	taxonomies map[string]*Taxonomy
	order      []string
}

// NewSet returns an empty taxonomy set.
func NewSet() *Set {
	return &Set{taxonomies: make(map[string]*Taxonomy)}
}

// Add registers a taxonomy; duplicate names are rejected.
func (s *Set) Add(x *Taxonomy) error {
	if _, dup := s.taxonomies[x.Name]; dup {
		return fmt.Errorf("hierarchy: duplicate taxonomy %q", x.Name)
	}
	s.taxonomies[x.Name] = x
	s.order = append(s.order, x.Name)
	return nil
}

// Get returns a taxonomy by name.
func (s *Set) Get(name string) (*Taxonomy, bool) {
	x, ok := s.taxonomies[name]
	return x, ok
}

// Names returns the taxonomy names in insertion order.
func (s *Set) Names() []string {
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}

// TaxonomiesOf returns the names of every taxonomy containing the term —
// the contexts in which the concept occurs. A "temperature" found in both
// the "air" and "water" taxonomies is context-ambiguous until qualified.
func (s *Set) TaxonomiesOf(term string) []string {
	var out []string
	for _, name := range s.order {
		if s.taxonomies[name].Contains(term) {
			out = append(out, name)
		}
	}
	return out
}

// Qualified returns the context-qualified name for a term in a context
// taxonomy, e.g. Qualified("water", "temperature") = "water_temperature".
func Qualified(context, term string) string {
	c := strings.Join(fingerprint.Tokens(context), "_")
	t := strings.Join(fingerprint.Tokens(term), "_")
	if c == "" {
		return t
	}
	return c + "_" + t
}

func norm(s string) string { return fingerprint.Normalize(s) }
