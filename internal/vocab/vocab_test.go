package vocab

import (
	"strings"
	"testing"

	"metamess/internal/units"
)

func TestStandardVocabularyConsistency(t *testing.T) {
	vars := Standard()
	if len(vars) < 15 {
		t.Fatalf("vocabulary = %d entries, want a rich list", len(vars))
	}
	reg := units.NewRegistry()
	seen := map[string]bool{}
	for _, v := range vars {
		if v.Name == "" || v.Base == "" {
			t.Errorf("entry %+v missing name or base", v)
		}
		if seen[v.Name] {
			t.Errorf("duplicate canonical name %q", v.Name)
		}
		seen[v.Name] = true
		if _, ok := reg.Lookup(v.Unit); !ok {
			t.Errorf("%s: unit %q not in registry", v.Name, v.Unit)
		}
		if v.Typical.Min > v.Typical.Max {
			t.Errorf("%s: inverted typical range", v.Name)
		}
		for _, s := range v.Synonyms {
			if strings.EqualFold(s, v.Name) {
				t.Errorf("%s: synonym equals canonical name", v.Name)
			}
		}
	}
	// The poster's examples must be present.
	for _, want := range []string{"water_temperature", "air_temperature", "fluores375", "fluores400"} {
		if !seen[want] {
			t.Errorf("canonical vocabulary missing %q", want)
		}
	}
}

func TestMultiContextBasesExist(t *testing.T) {
	// Table 1's source-context row needs a base in 2+ contexts.
	contexts := map[string]map[string]bool{}
	for _, v := range Standard() {
		if v.Context == "" {
			continue
		}
		if contexts[v.Base] == nil {
			contexts[v.Base] = map[string]bool{}
		}
		contexts[v.Base][v.Context] = true
	}
	multi := 0
	for _, ctxs := range contexts {
		if len(ctxs) >= 2 {
			multi++
		}
	}
	if multi == 0 {
		t.Error("no base concept occurs in multiple contexts")
	}
	if len(contexts["temperature"]) < 2 {
		t.Errorf("temperature contexts = %v, want air+water", contexts["temperature"])
	}
}

func TestHelpers(t *testing.T) {
	vars := Standard()
	names := Names(vars)
	if len(names) != len(vars) || names[0] != vars[0].Name {
		t.Error("Names broken")
	}
	byName := ByName(vars)
	if byName["salinity"].Unit != "PSU" {
		t.Errorf("ByName lookup = %+v", byName["salinity"])
	}
	if len(ExcessivePrefixes()) == 0 || len(ExcessiveSuffixes()) == 0 {
		t.Error("excessive markers empty")
	}
	amb := AmbiguousTerms()
	if len(amb["temp"]) != 2 {
		t.Errorf("ambiguous temp = %v", amb["temp"])
	}
}
