// Package vocab defines the canonical vocabulary of environmental
// variables used throughout the reproduction: the list "in the minds of
// the scientists" that the archive's harvested names must be wrangled
// onto. Each entry carries the canonical name, its source context, unit,
// typical value range (for the synthetic archive generator), and the
// curated synonyms/abbreviations seeded into the knowledge base.
//
// The list is modeled on the variables a coastal-margin observatory
// (CMOP) archive carries: temperatures in several contexts, salinity,
// dissolved oxygen, optics, currents, and meteorology.
package vocab

import "metamess/internal/geo"

// Variable is one canonical environmental variable.
type Variable struct {
	// Name is the canonical variable name, e.g. "water_temperature".
	Name string
	// Base is the context-free concept, e.g. "temperature".
	Base string
	// Context is the source context ("water", "air", ...), empty when the
	// concept is context-free.
	Context string
	// Unit is the canonical unit symbol from the units registry.
	Unit string
	// Typical is the physically plausible value range, used by the
	// synthetic archive generator and by range sanity checks.
	Typical geo.ValueRange
	// Synonyms are curated alternate names seeded into the synonym table.
	Synonyms []string
	// Abbrevs are curated abbreviations (the poster's "MWHLA" row).
	Abbrevs []string
}

// Standard returns the canonical vocabulary. The slice is freshly
// allocated; callers may reorder it.
func Standard() []Variable {
	return []Variable{
		{
			Name: "water_temperature", Base: "temperature", Context: "water",
			Unit: "degC", Typical: geo.ValueRange{Min: 4, Max: 22},
			Synonyms: []string{"temp_water", "wtemp", "watertemp", "sea surface temperature"},
			Abbrevs:  []string{"WT", "SST"},
		},
		{
			Name: "air_temperature", Base: "temperature", Context: "air",
			Unit: "degC", Typical: geo.ValueRange{Min: -5, Max: 35},
			Synonyms: []string{"temp_air", "atemp", "airtemp"},
			Abbrevs:  []string{"AT", "ATastn"},
		},
		{
			Name: "salinity", Base: "salinity", Context: "water",
			Unit: "PSU", Typical: geo.ValueRange{Min: 0, Max: 34},
			Synonyms: []string{"salt", "practical_salinity"},
			Abbrevs:  []string{"SAL"},
		},
		{
			Name: "dissolved_oxygen", Base: "oxygen", Context: "water",
			Unit: "mg/L", Typical: geo.ValueRange{Min: 0, Max: 14},
			Synonyms: []string{"oxygen", "do_conc", "oxygen_concentration"},
			Abbrevs:  []string{"DO", "DOX"},
		},
		{
			Name: "water_velocity", Base: "velocity", Context: "water",
			Unit: "m/s", Typical: geo.ValueRange{Min: 0, Max: 3},
			Synonyms: []string{"current_speed", "velocity"},
			Abbrevs:  []string{"VEL"},
		},
		{
			Name: "wind_speed", Base: "speed", Context: "wind",
			Unit: "m/s", Typical: geo.ValueRange{Min: 0, Max: 30},
			Synonyms: []string{"windspeed", "wind_velocity"},
			Abbrevs:  []string{"WS", "MWHLA"},
		},
		{
			Name: "turbidity", Base: "turbidity", Context: "water",
			Unit: "NTU", Typical: geo.ValueRange{Min: 0, Max: 120},
			Synonyms: []string{"turb", "nephelometric_turbidity"},
			Abbrevs:  []string{"TRB"},
		},
		{
			Name: "chlorophyll", Base: "chlorophyll", Context: "water",
			Unit: "ug/L", Typical: geo.ValueRange{Min: 0, Max: 60},
			Synonyms: []string{"chl", "chlorophyll_a", "chla"},
			Abbrevs:  []string{"CHL"},
		},
		{
			Name: "ph", Base: "ph", Context: "water",
			Unit: "pH", Typical: geo.ValueRange{Min: 6.5, Max: 8.8},
			Synonyms: []string{"acidity", "ph_level"},
			Abbrevs:  []string{"PH"},
		},
		{
			Name: "depth", Base: "depth", Context: "water",
			Unit: "m", Typical: geo.ValueRange{Min: 0, Max: 300},
			Synonyms: []string{"water_depth", "sounding"},
			Abbrevs:  []string{"DEP", "Z"},
		},
		{
			Name: "pressure", Base: "pressure", Context: "water",
			Unit: "dbar", Typical: geo.ValueRange{Min: 0, Max: 310},
			Synonyms: []string{"water_pressure", "sea_pressure"},
			Abbrevs:  []string{"PRS"},
		},
		{
			Name: "conductivity", Base: "conductivity", Context: "water",
			Unit: "1", Typical: geo.ValueRange{Min: 0, Max: 6},
			Synonyms: []string{"cond", "electrical_conductivity"},
			Abbrevs:  []string{"CND"},
		},
		{
			Name: "fluorescence", Base: "fluorescence", Context: "water",
			Unit: "1", Typical: geo.ValueRange{Min: 0, Max: 500},
			Synonyms: []string{"fluor", "fluorescence_intensity"},
			Abbrevs:  []string{"FLU"},
		},
		{
			Name: "fluores375", Base: "fluorescence", Context: "water",
			Unit: "1", Typical: geo.ValueRange{Min: 0, Max: 500},
		},
		{
			Name: "fluores400", Base: "fluorescence", Context: "water",
			Unit: "1", Typical: geo.ValueRange{Min: 0, Max: 500},
		},
		{
			Name: "fluores440", Base: "fluorescence", Context: "water",
			Unit: "1", Typical: geo.ValueRange{Min: 0, Max: 500},
		},
		{
			Name: "air_pressure", Base: "pressure", Context: "air",
			Unit: "kPa", Typical: geo.ValueRange{Min: 95, Max: 105},
			Synonyms: []string{"barometric_pressure", "baro"},
			Abbrevs:  []string{"BP"},
		},
		{
			Name: "relative_humidity", Base: "humidity", Context: "air",
			Unit: "%", Typical: geo.ValueRange{Min: 20, Max: 100},
			Synonyms: []string{"humidity", "rel_hum"},
			Abbrevs:  []string{"RH"},
		},
		{
			Name: "wind_direction", Base: "direction", Context: "wind",
			Unit: "1", Typical: geo.ValueRange{Min: 0, Max: 360},
			Synonyms: []string{"wind_dir"},
			Abbrevs:  []string{"WD"},
		},
		{
			Name: "nitrate", Base: "nitrate", Context: "water",
			Unit: "mg/L", Typical: geo.ValueRange{Min: 0, Max: 3},
			Synonyms: []string{"no3", "nitrate_concentration"},
			Abbrevs:  []string{"NIT"},
		},
	}
}

// Names returns the canonical names of vars, in order.
func Names(vars []Variable) []string {
	out := make([]string, len(vars))
	for i, v := range vars {
		out[i] = v.Name
	}
	return out
}

// ByName indexes vars by canonical name.
func ByName(vars []Variable) map[string]Variable {
	m := make(map[string]Variable, len(vars))
	for _, v := range vars {
		m[v.Name] = v
	}
	return m
}

// ExcessivePrefixes are the name prefixes that mark quality-assurance or
// bookkeeping variables — the poster's "excessive variables" category
// (qa_level): excluded from search, shown in detailed views.
func ExcessivePrefixes() []string {
	return []string{"qa_", "qc_", "flag_", "sigma_", "instrument_", "sensor_serial"}
}

// ExcessiveSuffixes complement ExcessivePrefixes for suffix-marked
// bookkeeping variables.
func ExcessiveSuffixes() []string {
	return []string{"_qc", "_qa", "_flag", "_raw_counts", "_stddev"}
}

// AmbiguousTerms returns the short forms whose meaning depends on the
// dataset — the poster's "temp: temporary or temperature?" row — mapped
// to their candidate expansions.
func AmbiguousTerms() map[string][]string {
	return map[string][]string{
		"temp":  {"temperature", "temporary"},
		"cond":  {"conductivity", "condition"},
		"sal":   {"salinity", "sample_alignment"},
		"do":    {"dissolved_oxygen", "data_offset"},
		"level": {"water_level", "qa_level"},
	}
}
