// Package obs is the serving stack's zero-dependency observability
// layer: structured tracing (a pooled span tree, off by default,
// sampled or forced per request), a hand-rolled Prometheus text-format
// metrics registry, and a slow-query ring buffer. It measures how the
// system runs; internal/metrics, by contrast, scores how well the
// ranking retrieves (precision/recall/NDCG) offline.
//
// The tracing API is built to be free when disabled: every method is
// nil-receiver-safe and returns before touching the clock, so
// instrumented code calls tr.Start/tr.End unconditionally and a
// disabled path costs one nil check — no allocations, no time.Now.
// Traces and per-query footprints (QueryObs) are recycled through
// sync.Pools, so an enabled trace allocates only while its span slice
// grows toward steady state.
package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// maxSpanAttrs is the inline attribute capacity per span; the span
// taxonomy needs at most shard/tier/candidates(/result counts), so
// attributes never allocate.
const maxSpanAttrs = 4

// Attr is one span attribute (integer-valued by design: counts,
// indexes, generations).
type Attr struct {
	Key string
	Val int64
}

type span struct {
	name   string
	parent int32
	start  time.Duration // offset from the trace's t0
	dur    time.Duration // -1 until End
	nattrs uint8
	attrs  [maxSpanAttrs]Attr
}

// Trace is one request's span tree, stored flat (parent-indexed) and
// guarded by a mutex so scatter workers can record spans concurrently.
// Contention only exists when tracing is on; the disabled path never
// reaches the lock.
type Trace struct {
	mu    sync.Mutex
	t0    time.Time
	spans []span
}

var tracePool sync.Pool

// NewTrace returns a pooled, empty trace clocked from now.
func NewTrace() *Trace {
	t, _ := tracePool.Get().(*Trace)
	if t == nil {
		t = &Trace{}
	}
	t.t0 = time.Now()
	return t
}

// ReleaseTrace recycles a trace. The caller must have rendered (Tree)
// whatever it needs first.
func ReleaseTrace(t *Trace) {
	if t == nil {
		return
	}
	for i := range t.spans {
		t.spans[i] = span{}
	}
	t.spans = t.spans[:0]
	tracePool.Put(t)
}

// Start opens a span under parent (-1 = root) and returns its id.
// Nil-safe: a nil trace returns -1 without reading the clock.
func (t *Trace) Start(parent int32, name string) int32 {
	if t == nil {
		return -1
	}
	at := time.Since(t.t0)
	t.mu.Lock()
	id := int32(len(t.spans))
	t.spans = append(t.spans, span{name: name, parent: parent, start: at, dur: -1})
	t.mu.Unlock()
	return id
}

// End closes a span. Nil-safe; ids from a nil trace (-1) are ignored.
func (t *Trace) End(id int32) {
	if t == nil || id < 0 {
		return
	}
	at := time.Since(t.t0)
	t.mu.Lock()
	if int(id) < len(t.spans) {
		sp := &t.spans[id]
		sp.dur = at - sp.start
	}
	t.mu.Unlock()
}

// Attr attaches an integer attribute to a span (first maxSpanAttrs
// stick). Nil-safe.
func (t *Trace) Attr(id int32, key string, v int64) {
	if t == nil || id < 0 {
		return
	}
	t.mu.Lock()
	if int(id) < len(t.spans) {
		sp := &t.spans[id]
		if sp.nattrs < maxSpanAttrs {
			sp.attrs[sp.nattrs] = Attr{Key: key, Val: v}
			sp.nattrs++
		}
	}
	t.mu.Unlock()
}

// SpanTree is the JSON rendering of a trace: the root span with its
// children nested, durations in microseconds.
type SpanTree struct {
	Name     string           `json:"name"`
	StartUs  int64            `json:"startUs"`
	DurUs    int64            `json:"durUs"`
	Attrs    map[string]int64 `json:"attrs,omitempty"`
	Children []*SpanTree      `json:"children,omitempty"`
}

// Tree renders the trace as a nested span tree (nil when the trace is
// nil or empty). Spans never ended render with the elapsed time so far.
func (t *Trace) Tree() *SpanTree {
	if t == nil {
		return nil
	}
	now := time.Since(t.t0)
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) == 0 {
		return nil
	}
	nodes := make([]*SpanTree, len(t.spans))
	var root *SpanTree
	for i := range t.spans {
		sp := &t.spans[i]
		dur := sp.dur
		if dur < 0 {
			dur = now - sp.start
		}
		n := &SpanTree{
			Name:    sp.name,
			StartUs: sp.start.Microseconds(),
			DurUs:   dur.Microseconds(),
		}
		if sp.nattrs > 0 {
			n.Attrs = make(map[string]int64, sp.nattrs)
			for _, a := range sp.attrs[:sp.nattrs] {
				n.Attrs[a.Key] = a.Val
			}
		}
		nodes[i] = n
		if sp.parent >= 0 && int(sp.parent) < len(nodes) {
			p := nodes[sp.parent]
			p.Children = append(p.Children, n)
		} else if root == nil {
			root = n
		}
	}
	return root
}

// Sampler decides which untraced requests get a trace anyway: 1 in N,
// round-robin off an atomic counter. A nil sampler (or N <= 0) never
// samples.
type Sampler struct {
	n uint64
	c atomic.Uint64
}

// NewSampler returns a 1-in-n sampler (n <= 0 disables sampling).
func NewSampler(n int) *Sampler {
	if n <= 0 {
		return nil
	}
	return &Sampler{n: uint64(n)}
}

// Sample reports whether this request should be traced.
func (s *Sampler) Sample() bool {
	if s == nil {
		return false
	}
	return s.c.Add(1)%s.n == 0
}

// QueryObs is one query's observability footprint, threaded through the
// search executor via the request context. The stage counters and
// per-shard candidate counts are always recorded when a QueryObs is
// attached (the serving layer always attaches one — they feed the stage
// histograms and the slow-query log, allocation-free); Trace is non-nil
// only for sampled or forced requests. Library callers that never
// attach one (benchmarks, the facade's plain Search) pay a single
// context lookup and nothing else.
type QueryObs struct {
	// Trace is the span sink for this query; nil when not traced.
	Trace *Trace
	// Root is the trace span search-internal spans parent under.
	Root int32
	// Forced marks a per-request trace (?debug=trace / X-Trace: 1):
	// the span tree is returned inline and the response bypasses the
	// cache.
	Forced bool

	// ParseNs is the text-query parse time, recorded once per request
	// by the serving layer (not reset between search attempts).
	ParseNs int64
	// Per-stage wall time, nanoseconds, accumulated by the executor.
	PlanNs, ScatterNs, MergeNs, ExplainNs int64
	// TiersRun is the deepest widening tier executed, 1-based
	// (widenings = TiersRun - 1).
	TiersRun int32
	// ShardCandidates counts the candidates examined (scored) per
	// shard; parallel shard workers write disjoint slots.
	ShardCandidates []int32
}

var queryObsPool sync.Pool

// GetQueryObs returns a pooled, reset footprint.
func GetQueryObs() *QueryObs {
	q, _ := queryObsPool.Get().(*QueryObs)
	if q == nil {
		q = &QueryObs{Root: -1}
	}
	return q
}

// PutQueryObs resets and recycles a footprint. The caller releases the
// trace separately (ReleaseTrace).
func PutQueryObs(q *QueryObs) {
	if q == nil {
		return
	}
	q.Trace = nil
	q.Root = -1
	q.Forced = false
	q.ParseNs = 0
	q.ResetStages()
	q.ShardCandidates = q.ShardCandidates[:0]
	queryObsPool.Put(q)
}

// Tracer returns the attached trace and its root span id; (nil, -1)
// when untraced or q is nil, so call sites need no branching.
func (q *QueryObs) Tracer() (*Trace, int32) {
	if q == nil || q.Trace == nil {
		return nil, -1
	}
	return q.Trace, q.Root
}

// ResetStages zeroes the stage counters (per search attempt; the
// serving layer retries generation races). Nil-safe.
func (q *QueryObs) ResetStages() {
	if q == nil {
		return
	}
	q.PlanNs, q.ScatterNs, q.MergeNs, q.ExplainNs = 0, 0, 0, 0
	q.TiersRun = 0
	for i := range q.ShardCandidates {
		q.ShardCandidates[i] = 0
	}
}

// SizeShards sizes the per-shard candidate counters, reusing pooled
// capacity. Nil-safe.
func (q *QueryObs) SizeShards(n int) {
	if q == nil {
		return
	}
	if cap(q.ShardCandidates) < n {
		q.ShardCandidates = make([]int32, n)
	} else {
		q.ShardCandidates = q.ShardCandidates[:n]
		for i := range q.ShardCandidates {
			q.ShardCandidates[i] = 0
		}
	}
}

// AddShardCandidates credits n examined candidates to shard si.
// Nil-safe; parallel callers must own distinct si.
func (q *QueryObs) AddShardCandidates(si, n int) {
	if q == nil || si < 0 || si >= len(q.ShardCandidates) {
		return
	}
	q.ShardCandidates[si] += int32(n)
}

// NoteTier records that widening tier ti (0-based) executed. Nil-safe;
// called from the barrier goroutine only.
func (q *QueryObs) NoteTier(ti int) {
	if q == nil {
		return
	}
	if t := int32(ti + 1); t > q.TiersRun {
		q.TiersRun = t
	}
}

// TotalCandidates sums the per-shard examined counts.
func (q *QueryObs) TotalCandidates() int64 {
	if q == nil {
		return 0
	}
	var sum int64
	for _, c := range q.ShardCandidates {
		sum += int64(c)
	}
	return sum
}

// Skew is the max/mean ratio of per-shard examined counts — 1.0 is
// perfectly balanced, N means one shard did N× the average. Zero when
// nothing was examined or the snapshot has one shard.
func (q *QueryObs) Skew() float64 {
	if q == nil || len(q.ShardCandidates) < 2 {
		return 0
	}
	var sum, max int64
	for _, c := range q.ShardCandidates {
		sum += int64(c)
		if int64(c) > max {
			max = int64(c)
		}
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(q.ShardCandidates))
	return float64(max) / mean
}

type queryObsKey struct{}

// WithQuery attaches a footprint to the context for the executor to
// find.
func WithQuery(ctx context.Context, q *QueryObs) context.Context {
	return context.WithValue(ctx, queryObsKey{}, q)
}

// QueryFromContext returns the attached footprint, or nil. The nil path
// is one interface lookup — cheap enough for every query.
func QueryFromContext(ctx context.Context) *QueryObs {
	q, _ := ctx.Value(queryObsKey{}).(*QueryObs)
	return q
}
