package obs

import (
	"context"
	"regexp"
	"strings"
	"testing"
	"time"
)

func TestTraceTreeNesting(t *testing.T) {
	tr := NewTrace()
	root := tr.Start(-1, "search")
	plan := tr.Start(root, "plan")
	sp := tr.Start(plan, "shard-plan")
	tr.Attr(sp, "shard", 3)
	tr.End(sp)
	tr.End(plan)
	scatter := tr.Start(root, "scatter")
	tr.End(scatter)
	tr.Attr(root, "generation", 7)
	tr.End(root)

	tree := tr.Tree()
	if tree == nil || tree.Name != "search" {
		t.Fatalf("root = %+v, want search", tree)
	}
	if got := tree.Attrs["generation"]; got != 7 {
		t.Fatalf("generation attr = %d, want 7", got)
	}
	if len(tree.Children) != 2 || tree.Children[0].Name != "plan" || tree.Children[1].Name != "scatter" {
		t.Fatalf("children = %+v, want [plan scatter]", tree.Children)
	}
	pc := tree.Children[0].Children
	if len(pc) != 1 || pc[0].Name != "shard-plan" || pc[0].Attrs["shard"] != 3 {
		t.Fatalf("plan children = %+v, want one shard-plan with shard=3", pc)
	}
	// Direct children are sequential phases: their durations must fit
	// inside the root's.
	var sum int64
	for _, c := range tree.Children {
		sum += c.DurUs
	}
	if sum > tree.DurUs+1 { // +1 for microsecond truncation
		t.Fatalf("phase durations %dus exceed root %dus", sum, tree.DurUs)
	}
	ReleaseTrace(tr)
}

func TestTraceNilSafety(t *testing.T) {
	var tr *Trace
	id := tr.Start(-1, "x")
	if id != -1 {
		t.Fatalf("nil Start = %d, want -1", id)
	}
	tr.End(id)
	tr.Attr(id, "k", 1)
	if tr.Tree() != nil {
		t.Fatal("nil Tree should be nil")
	}
	ReleaseTrace(tr)

	var q *QueryObs
	qtr, root := q.Tracer()
	if qtr != nil || root != -1 {
		t.Fatalf("nil Tracer = (%v, %d), want (nil, -1)", qtr, root)
	}
	q.ResetStages()
	q.SizeShards(4)
	q.AddShardCandidates(0, 10)
	q.NoteTier(2)
	if q.TotalCandidates() != 0 || q.Skew() != 0 {
		t.Fatal("nil QueryObs should report zeros")
	}
	var s *Sampler
	if s.Sample() {
		t.Fatal("nil sampler sampled")
	}
	var l *SlowLog
	if l.Slow(1e9) || l.Len() != 0 || l.Total() != 0 || l.Entries() != nil || l.ThresholdMs() != 0 {
		t.Fatal("nil slowlog should be inert")
	}
	l.Record(SlowEntry{})
}

func TestDisabledTraceAllocFree(t *testing.T) {
	var tr *Trace
	q := GetQueryObs()
	q.SizeShards(2)
	allocs := testing.AllocsPerRun(100, func() {
		id := tr.Start(-1, "x")
		tr.Attr(id, "k", 1)
		tr.End(id)
		q.AddShardCandidates(0, 5)
		q.NoteTier(0)
	})
	if allocs != 0 {
		t.Fatalf("disabled-path allocs = %v, want 0", allocs)
	}
	PutQueryObs(q)
}

func TestQueryObsContextAndPool(t *testing.T) {
	if QueryFromContext(context.Background()) != nil {
		t.Fatal("empty context should carry no QueryObs")
	}
	q := GetQueryObs()
	q.SizeShards(3)
	q.AddShardCandidates(1, 42)
	ctx := WithQuery(context.Background(), q)
	if got := QueryFromContext(ctx); got != q {
		t.Fatalf("round-trip = %p, want %p", got, q)
	}
	if q.TotalCandidates() != 42 {
		t.Fatalf("total = %d, want 42", q.TotalCandidates())
	}
	PutQueryObs(q)
	q2 := GetQueryObs()
	if q2.Trace != nil || q2.Root != -1 || q2.Forced || q2.TotalCandidates() != 0 {
		t.Fatalf("pooled QueryObs not reset: %+v", q2)
	}
	PutQueryObs(q2)
}

func TestSkew(t *testing.T) {
	q := GetQueryObs()
	defer PutQueryObs(q)
	q.SizeShards(4)
	for i := 0; i < 4; i++ {
		q.AddShardCandidates(i, 10)
	}
	if got := q.Skew(); got != 1 {
		t.Fatalf("balanced skew = %v, want 1", got)
	}
	q.ResetStages()
	q.AddShardCandidates(0, 40)
	if got := q.Skew(); got != 4 {
		t.Fatalf("one-hot skew = %v, want 4", got)
	}
}

func TestSampler(t *testing.T) {
	s := NewSampler(3)
	hits := 0
	for i := 0; i < 30; i++ {
		if s.Sample() {
			hits++
		}
	}
	if hits != 10 {
		t.Fatalf("1-in-3 over 30 = %d hits, want 10", hits)
	}
	if NewSampler(0) != nil {
		t.Fatal("NewSampler(0) should be nil (disabled)")
	}
}

// expositionLine matches the three legal line shapes of the Prometheus
// text format: HELP, TYPE, and a sample with optional labels.
var expositionLine = regexp.MustCompile(
	`^(# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .*` +
		`|# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)` +
		`|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? [0-9eE.+-]+(e[+-][0-9]+)?)$`)

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_requests_total", "Requests served.", "endpoint", "search")
	c.Add(5)
	if c2 := r.Counter("t_requests_total", "Requests served.", "endpoint", "search"); c2 != c {
		t.Fatal("get-or-create returned a different counter")
	}
	r.Counter("t_requests_total", "Requests served.", "endpoint", "stats").Inc()
	r.Gauge("t_generation", "Snapshot generation.").Set(9)
	r.GaugeFunc("t_lag_bytes", "Journal lag.", func() float64 { return 123.5 })
	h := r.Histogram("t_stage_seconds", "Stage duration.", []float64{0.001, 0.01, 0.1}, "stage", "plan")
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(5) // lands in +Inf

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()

	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if !expositionLine.MatchString(line) && !strings.Contains(line, "+Inf") {
			t.Errorf("malformed exposition line: %q", line)
		}
	}
	for _, want := range []string{
		"# TYPE t_requests_total counter",
		`t_requests_total{endpoint="search"} 5`,
		`t_requests_total{endpoint="stats"} 1`,
		"t_generation 9",
		"t_lag_bytes 123.5",
		"# TYPE t_stage_seconds histogram",
		`t_stage_seconds_bucket{stage="plan",le="0.001"} 1`,
		`t_stage_seconds_bucket{stage="plan",le="0.01"} 1`,
		`t_stage_seconds_bucket{stage="plan",le="0.1"} 2`,
		`t_stage_seconds_bucket{stage="plan",le="+Inf"} 3`,
		`t_stage_seconds_count{stage="plan"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// Families are sorted by name.
	gi := strings.Index(out, "t_generation")
	ri := strings.Index(out, "t_requests_total")
	si := strings.Index(out, "t_stage_seconds")
	if !(gi < ri && ri < si) {
		t.Errorf("families not sorted: gen@%d req@%d stage@%d", gi, ri, si)
	}
}

func TestHistogramObserveSeconds(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t_dur_seconds", "d", DurationBuckets)
	h.ObserveSeconds((2 * time.Millisecond).Nanoseconds())
	if h.Count() != 1 {
		t.Fatalf("count = %d, want 1", h.Count())
	}
	var b strings.Builder
	r.WritePrometheus(&b)
	if !strings.Contains(b.String(), `le="0.0025"} 1`) {
		t.Fatalf("2ms observation missing from 2.5ms bucket:\n%s", b.String())
	}
}

func TestGaugeFuncReRegisterReplaces(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("t_g", "g", func() float64 { return 1 })
	r.GaugeFunc("t_g", "g", func() float64 { return 2 })
	var b strings.Builder
	r.WritePrometheus(&b)
	if !strings.Contains(b.String(), "t_g 2") {
		t.Fatalf("re-registered GaugeFunc not replaced:\n%s", b.String())
	}
}

func TestSlowLogRing(t *testing.T) {
	l := NewSlowLog(3, 10)
	if l.Slow(5) {
		t.Fatal("5ms should be under a 10ms threshold")
	}
	if !l.Slow(10) {
		t.Fatal("10ms should cross a 10ms threshold")
	}
	for i := 1; i <= 5; i++ {
		l.Record(SlowEntry{Query: "q", WallMs: float64(10 * i)})
	}
	if l.Len() != 3 || l.Total() != 5 {
		t.Fatalf("len=%d total=%d, want 3/5", l.Len(), l.Total())
	}
	got := l.Entries()
	if len(got) != 3 || got[0].WallMs != 50 || got[1].WallMs != 40 || got[2].WallMs != 30 {
		t.Fatalf("entries = %+v, want 50/40/30 (recent three, slowest first)", got)
	}
	if NewSlowLog(0, 10) != nil || NewSlowLog(3, 0) != nil {
		t.Fatal("disabled slowlog should be nil")
	}
}
