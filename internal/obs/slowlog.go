package obs

import "sync"

// StageMs is one named stage's share of a slow query's wall time.
type StageMs struct {
	Stage string  `json:"stage"`
	Ms    float64 `json:"ms"`
}

// SlowEntry is one slow query as kept by the ring: the normalized query
// (the cache key, so identical queries collapse to one shape), the
// snapshot generation it ran against, wall time, the per-stage summary,
// and the shard-balance picture.
type SlowEntry struct {
	Time            string    `json:"time"` // RFC3339
	Query           string    `json:"query"`
	Generation      uint64    `json:"generation"`
	WallMs          float64   `json:"wallMs"`
	Stages          []StageMs `json:"stages,omitempty"`
	ShardCandidates []int32   `json:"shardCandidates,omitempty"`
	ShardSkew       float64   `json:"shardSkew,omitempty"`
	Tiers           int32     `json:"tiers,omitempty"`
	CacheHit        bool      `json:"cacheHit,omitempty"`
	Traced          bool      `json:"traced,omitempty"`
}

// SlowLog is a fixed-size ring of the most recent queries that crossed
// the threshold. The threshold check is lock-free (immutable field);
// fast queries never touch the mutex, and slow ones pay one short
// critical section — by definition a rounding error on their latency.
// It keeps the most recent N slow queries, not the N slowest ever: a
// burst of regressions is visible immediately instead of being masked
// by historical outliers.
type SlowLog struct {
	thresholdMs float64 // immutable after construction
	mu          sync.Mutex
	ring        []SlowEntry
	n           int // entries populated, ≤ len(ring)
	next        int
	total       uint64
}

// NewSlowLog returns a ring of size entries recording queries at or
// above thresholdMs. size <= 0 or thresholdMs <= 0 disables the log
// (returns nil; all methods are nil-safe).
func NewSlowLog(size int, thresholdMs float64) *SlowLog {
	if size <= 0 || thresholdMs <= 0 {
		return nil
	}
	return &SlowLog{thresholdMs: thresholdMs, ring: make([]SlowEntry, size)}
}

// ThresholdMs returns the recording threshold (0 when disabled).
func (l *SlowLog) ThresholdMs() float64 {
	if l == nil {
		return 0
	}
	return l.thresholdMs
}

// Slow reports whether wallMs crosses the threshold — the lock-free
// fast-path check callers make before building an entry.
func (l *SlowLog) Slow(wallMs float64) bool {
	return l != nil && wallMs >= l.thresholdMs
}

// Record stores e, evicting the oldest entry when full.
func (l *SlowLog) Record(e SlowEntry) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.ring[l.next] = e
	l.next = (l.next + 1) % len(l.ring)
	if l.n < len(l.ring) {
		l.n++
	}
	l.total++
	l.mu.Unlock()
}

// Entries returns a copy of the retained entries, slowest first.
func (l *SlowLog) Entries() []SlowEntry {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	out := make([]SlowEntry, 0, l.n)
	start := (l.next - l.n + len(l.ring)) % len(l.ring)
	for i := 0; i < l.n; i++ {
		out = append(out, l.ring[(start+i)%len(l.ring)])
	}
	l.mu.Unlock()
	// Slowest first; stable order for equal times comes from ring order.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].WallMs > out[j-1].WallMs; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Len returns how many entries are retained right now.
func (l *SlowLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// Total returns how many slow queries have been recorded since start
// (including evicted ones).
func (l *SlowLog) Total() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}
