package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is a minimal Prometheus-compatible metrics registry:
// counters, gauges (direct or callback-backed), and fixed-bucket
// histograms, all lock-free on the hot path (the registry lock is taken
// only at registration and exposition). Instruments are get-or-create,
// so package-level `var x = obs.Default().Counter(...)` registration is
// idempotent and the metric family exists (at zero) from process start
// — exactly what scrape-side absence alerts need.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

type family struct {
	name, help, kind string
	bounds           []float64 // histograms only
	order            []string  // label-set keys in registration order
	insts            map[string]any
}

// Counter is a monotonically increasing uint64.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable int64.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the value by d.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

type funcGauge struct {
	mu sync.Mutex
	fn func() float64
}

func (g *funcGauge) value() float64 {
	g.mu.Lock()
	fn := g.fn
	g.mu.Unlock()
	if fn == nil {
		return 0
	}
	return fn()
}

// Histogram is a fixed-bucket histogram. Buckets are upper bounds
// (Prometheus `le`), exposed cumulatively; observation is two atomic
// adds and one CAS loop for the float sum.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1, last is +Inf
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits
}

// Observe records v.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nv) {
			return
		}
	}
}

// ObserveSeconds records a duration in seconds given nanoseconds — the
// common case for the stage histograms.
func (h *Histogram) ObserveSeconds(ns int64) {
	h.Observe(float64(ns) / 1e9)
}

// Count returns how many observations were recorded.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// DurationBuckets are the shared bounds (seconds) for every stage
// duration histogram: 100µs to 10s, roughly logarithmic.
var DurationBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry that GET /metrics exposes.
func Default() *Registry { return defaultRegistry }

// NewRegistry returns an empty registry (tests use private ones).
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelKey renders a label list (k1, v1, k2, v2, ...) into the
// exposition-format label body, e.g. `stage="plan"`.
func labelKey(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[i+1]))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func (r *Registry) instrument(name, help, kind string, bounds []float64, labels []string, mk func() any) any {
	if len(labels)%2 != 0 {
		panic("obs: labels must be key/value pairs: " + name)
	}
	key := labelKey(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, bounds: bounds, insts: make(map[string]any)}
		r.families[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: %s already registered as %s, requested %s", name, f.kind, kind))
	}
	in, ok := f.insts[key]
	if !ok {
		in = mk()
		f.insts[key] = in
		f.order = append(f.order, key)
	}
	return in
}

// Counter returns (registering if needed) the counter name{labels...}.
// Labels are alternating key, value pairs.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	return r.instrument(name, help, "counter", nil, labels, func() any { return &Counter{} }).(*Counter)
}

// Gauge returns (registering if needed) the gauge name{labels...}.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	return r.instrument(name, help, "gauge", nil, labels, func() any { return &Gauge{} }).(*Gauge)
}

// GaugeFunc registers (or re-points) a callback-backed gauge, evaluated
// at exposition time. Re-registering replaces the callback, so a
// restarted server in tests does not leave a stale closure behind.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	g := r.instrument(name, help, "gauge", nil, labels, func() any { return &funcGauge{} }).(*funcGauge)
	g.mu.Lock()
	g.fn = fn
	g.mu.Unlock()
}

// Histogram returns (registering if needed) the histogram
// name{labels...} with the given upper bounds (must be sorted
// ascending; +Inf is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	return r.instrument(name, help, "histogram", bounds, labels, func() any {
		return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
	}).(*Histogram)
}

// WritePrometheus renders the registry in Prometheus text exposition
// format (version 0.0.4): families sorted by name, instruments in
// registration order, histograms with cumulative buckets, _sum and
// _count.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()

	for _, f := range fams {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind)
		for _, key := range f.order {
			switch in := f.insts[key].(type) {
			case *Counter:
				writeSample(w, f.name, key, "", formatUint(in.Value()))
			case *Gauge:
				writeSample(w, f.name, key, "", strconv.FormatInt(in.Value(), 10))
			case *funcGauge:
				writeSample(w, f.name, key, "", formatFloat(in.value()))
			case *Histogram:
				var cum uint64
				for i, b := range in.bounds {
					cum += in.counts[i].Load()
					writeSample(w, f.name+"_bucket", key, `le="`+formatFloat(b)+`"`, formatUint(cum))
				}
				cum += in.counts[len(in.bounds)].Load()
				writeSample(w, f.name+"_bucket", key, `le="+Inf"`, formatUint(cum))
				writeSample(w, f.name+"_sum", key, "", formatFloat(math.Float64frombits(in.sum.Load())))
				writeSample(w, f.name+"_count", key, "", formatUint(in.count.Load()))
			}
		}
	}
}

func writeSample(w io.Writer, name, labels, extra, val string) {
	switch {
	case labels == "" && extra == "":
		fmt.Fprintf(w, "%s %s\n", name, val)
	case labels == "":
		fmt.Fprintf(w, "%s{%s} %s\n", name, extra, val)
	case extra == "":
		fmt.Fprintf(w, "%s{%s} %s\n", name, labels, val)
	default:
		fmt.Fprintf(w, "%s{%s,%s} %s\n", name, labels, extra, val)
	}
}

func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
