// Package fingerprint implements the key-collision normalizations used to
// discover transformations over messy variable names: the classic "key
// fingerprint" (case/punctuation/word-order insensitive), character
// n-gram fingerprints, and a simplified phonetic code.
//
// Two raw names that produce the same fingerprint are candidates for the
// same canonical variable; the cluster package groups values by these
// keys exactly as Google Refine's key-collision clustering does.
package fingerprint

import (
	"sort"
	"strings"
	"unicode"
)

// Key returns the key fingerprint of s: trim, lower-case, strip
// punctuation and control characters, fold common diacritics, split into
// whitespace-separated tokens, sort and de-duplicate the tokens, and join
// with single spaces. Word-order and punctuation differences collapse:
// "Air_Temperature", "temperature, air", and "AIR TEMPERATURE" all
// fingerprint to "air temperature".
func Key(s string) string {
	tokens := tokenize(s)
	if len(tokens) == 0 {
		return ""
	}
	sort.Strings(tokens)
	out := tokens[:1]
	for _, t := range tokens[1:] {
		if t != out[len(out)-1] {
			out = append(out, t)
		}
	}
	return strings.Join(out, " ")
}

// NGram returns the n-gram fingerprint of s: normalize as Key does but
// without tokenizing, remove all whitespace, then collect the sorted,
// de-duplicated set of rune n-grams joined together. Small typos only
// disturb a few n-grams, so near-identical strings still collide for
// small n. n must be at least 1; values below 1 are treated as 1.
func NGram(s string, n int) string {
	if n < 1 {
		n = 1
	}
	norm := strings.Join(tokenize(s), "")
	runes := []rune(norm)
	if len(runes) == 0 {
		return ""
	}
	if len(runes) <= n {
		return string(runes)
	}
	grams := make([]string, 0, len(runes)-n+1)
	for i := 0; i+n <= len(runes); i++ {
		grams = append(grams, string(runes[i:i+n]))
	}
	sort.Strings(grams)
	var b strings.Builder
	last := ""
	for _, g := range grams {
		if g == last {
			continue
		}
		b.WriteString(g)
		last = g
	}
	return b.String()
}

// Phonetic returns a simplified metaphone-style phonetic code for s: the
// normalized string with vowels (except a leading one) removed and
// common digraph confusions collapsed (ph→f, ck→k, etc.), then
// de-duplicated consecutive runes. "fluoresence" and "fluorescence"
// produce the same code.
func Phonetic(s string) string {
	norm := strings.Join(tokenize(s), "")
	if norm == "" {
		return ""
	}
	replacer := strings.NewReplacer(
		"ph", "f", "gh", "g", "ck", "k", "sch", "sk",
		"qu", "kw", "x", "ks", "z", "s", "wr", "r",
		"mb", "m", "tio", "sho", "tia", "sha", "ce", "se",
		"ci", "si", "cy", "sy", "c", "k",
	)
	norm = replacer.Replace(norm)
	var b strings.Builder
	var last rune = -1
	for i, r := range norm {
		isVowel := strings.ContainsRune("aeiou", r)
		if isVowel && i != 0 {
			continue
		}
		if r == last {
			continue
		}
		b.WriteRune(r)
		last = r
	}
	return b.String()
}

// Tokens returns the normalized word tokens of s in their original order.
// Used by vocabulary matching and hierarchy grouping.
func Tokens(s string) []string { return tokenize(s) }

// Normalize lower-cases s, folds punctuation to spaces, and collapses
// whitespace runs, preserving token order (unlike Key, which sorts).
func Normalize(s string) string { return strings.Join(tokenize(s), " ") }

// tokenize lower-cases, folds diacritics for a small common set, maps
// punctuation/underscores/digit-letter boundaries to separators, and
// splits on whitespace. Digits are preserved as their own tokens so that
// "fluores375" tokenizes to ["fluores", "375"].
func tokenize(s string) []string {
	var b strings.Builder
	b.Grow(len(s) + 8)
	prevClass := 0 // 0 none, 1 letter, 2 digit
	for _, r := range strings.TrimSpace(s) {
		r = foldRune(r)
		switch {
		case unicode.IsLetter(r):
			if prevClass == 2 {
				b.WriteByte(' ')
			}
			b.WriteRune(unicode.ToLower(r))
			prevClass = 1
		case unicode.IsDigit(r):
			if prevClass == 1 {
				b.WriteByte(' ')
			}
			b.WriteRune(r)
			prevClass = 2
		default:
			b.WriteByte(' ')
			prevClass = 0
		}
	}
	return strings.Fields(b.String())
}

// foldRune maps a handful of common accented letters to ASCII; a full
// Unicode decomposition is unnecessary for environmental variable names.
func foldRune(r rune) rune {
	switch r {
	case 'á', 'à', 'â', 'ä', 'ã', 'å', 'Á', 'À', 'Â', 'Ä', 'Ã', 'Å':
		return 'a'
	case 'é', 'è', 'ê', 'ë', 'É', 'È', 'Ê', 'Ë':
		return 'e'
	case 'í', 'ì', 'î', 'ï', 'Í', 'Ì', 'Î', 'Ï':
		return 'i'
	case 'ó', 'ò', 'ô', 'ö', 'õ', 'Ó', 'Ò', 'Ô', 'Ö', 'Õ':
		return 'o'
	case 'ú', 'ù', 'û', 'ü', 'Ú', 'Ù', 'Û', 'Ü':
		return 'u'
	case 'ñ', 'Ñ':
		return 'n'
	case 'ç', 'Ç':
		return 'c'
	default:
		return r
	}
}
