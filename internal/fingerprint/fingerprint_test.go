package fingerprint

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestKeyCollapsesCaseAndPunctuation(t *testing.T) {
	variants := []string{
		"Air_Temperature",
		"air temperature",
		"AIR-TEMPERATURE",
		"temperature, air",
		"  air   temperature  ",
		"Temperature Air",
	}
	want := Key(variants[0])
	if want == "" {
		t.Fatal("empty fingerprint for non-empty input")
	}
	for _, v := range variants[1:] {
		if got := Key(v); got != want {
			t.Errorf("Key(%q) = %q, want %q", v, got, want)
		}
	}
}

func TestKeyDistinguishesDifferentConcepts(t *testing.T) {
	if Key("air_temperature") == Key("water_temperature") {
		t.Error("different concepts collided")
	}
	if Key("salinity") == Key("temperature") {
		t.Error("unrelated names collided")
	}
}

func TestKeyDedupesTokens(t *testing.T) {
	if got, want := Key("temp temp temp"), "temp"; got != want {
		t.Errorf("Key dedup = %q, want %q", got, want)
	}
}

func TestKeyEmpty(t *testing.T) {
	for _, s := range []string{"", "   ", "___", "!!!"} {
		if got := Key(s); got != "" {
			t.Errorf("Key(%q) = %q, want empty", s, got)
		}
	}
}

func TestKeyDiacritics(t *testing.T) {
	if Key("salinité") != Key("salinite") {
		t.Error("diacritic fold failed")
	}
}

func TestNGramToleratesTypos(t *testing.T) {
	// 1-gram fingerprints are just sorted unique letters, so a
	// transposition collides while a different word does not.
	a, b := NGram("air_temperature", 1), NGram("air_temperatrue", 1)
	if a != b {
		t.Errorf("1-gram fingerprints differ: %q vs %q", a, b)
	}
	if NGram("salinity", 1) == NGram("temperature", 1) {
		t.Error("unrelated names collided at n=1")
	}
}

func TestNGramWhitespaceInsensitive(t *testing.T) {
	if NGram("air temperature", 2) != NGram("airtemperature", 2) {
		t.Error("2-gram fingerprint should ignore spaces")
	}
}

func TestNGramShortStrings(t *testing.T) {
	if got := NGram("ph", 3); got != "ph" {
		t.Errorf("NGram short = %q, want %q", got, "ph")
	}
	if got := NGram("", 2); got != "" {
		t.Errorf("NGram empty = %q, want empty", got)
	}
	if got := NGram("abc", 0); got == "" {
		t.Error("NGram with n<1 should clamp to 1, not return empty")
	}
}

func TestPhoneticCollisions(t *testing.T) {
	pairs := [][2]string{
		{"fluorescence", "fluoresence"}, // missing c
		{"phosphate", "fosfate"},
		{"turbidity", "turbiddity"},
	}
	for _, p := range pairs {
		if Phonetic(p[0]) != Phonetic(p[1]) {
			t.Errorf("Phonetic(%q)=%q != Phonetic(%q)=%q",
				p[0], Phonetic(p[0]), p[1], Phonetic(p[1]))
		}
	}
	if Phonetic("oxygen") == Phonetic("salinity") {
		t.Error("unrelated names phonetically collided")
	}
}

func TestTokensSplitsDigits(t *testing.T) {
	got := Tokens("fluores375")
	if len(got) != 2 || got[0] != "fluores" || got[1] != "375" {
		t.Errorf("Tokens(fluores375) = %v, want [fluores 375]", got)
	}
	got = Tokens("CTD_Cast42_temp")
	want := []string{"ctd", "cast", "42", "temp"}
	if len(got) != len(want) {
		t.Fatalf("Tokens = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Tokens[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestNormalizePreservesOrder(t *testing.T) {
	if got, want := Normalize("Water_Temperature (C)"), "water temperature c"; got != want {
		t.Errorf("Normalize = %q, want %q", got, want)
	}
	// Normalize keeps order; Key sorts.
	if Normalize("b a") == Key("b a") && Normalize("b a") != "b a" {
		t.Error("Normalize should preserve token order")
	}
}

func TestKeyIdempotent(t *testing.T) {
	f := func(s string) bool {
		if len(s) > 60 {
			s = s[:60]
		}
		k := Key(s)
		return Key(k) == k
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNGramIdempotentNormalization(t *testing.T) {
	f := func(s string) bool {
		if len(s) > 40 {
			s = s[:40]
		}
		// Fingerprint of the fingerprint of a lowercase alnum string is stable
		// for n=1 because output is sorted unique letters.
		g := NGram(s, 1)
		return NGram(g, 1) == g
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKeyOutputIsSortedTokens(t *testing.T) {
	f := func(s string) bool {
		if len(s) > 60 {
			s = s[:60]
		}
		k := Key(s)
		if k == "" {
			return true
		}
		toks := strings.Split(k, " ")
		for i := 1; i < len(toks); i++ {
			if toks[i-1] >= toks[i] {
				return false // must be strictly ascending (sorted + deduped)
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkKey(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Key("Water_Temperature_Near_Surface (degC)")
	}
}

func BenchmarkNGram2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		NGram("Water_Temperature_Near_Surface (degC)", 2)
	}
}
