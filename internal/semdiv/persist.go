package semdiv

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"metamess/internal/synonym"
	"metamess/internal/vocab"
)

// knowledgeFile is the on-disk form of the curated knowledge base, so a
// curator's accumulated work (synonyms, abbreviations, ambiguity rulings)
// survives across sessions and ships with the process config.
type knowledgeFile struct {
	Version int `json:"version"`
	// Synonyms maps preferred names to alternates.
	Synonyms map[string][]string `json:"synonyms"`
	// Abbrevs maps abbreviation forms to canonical names.
	Abbrevs map[string]string `json:"abbrevs"`
	// ExcessivePrefixes and ExcessiveSuffixes mark bookkeeping names.
	ExcessivePrefixes []string `json:"excessivePrefixes"`
	ExcessiveSuffixes []string `json:"excessiveSuffixes"`
	// Ambiguous maps short forms to candidate expansions.
	Ambiguous map[string][]string `json:"ambiguous"`
}

// EncodeKnowledge renders the mutable, curator-owned parts of the
// knowledge base (the vocabulary itself is code, not curation) as JSON
// — the payload SaveKnowledge writes to disk and the publish journal's
// knowledge-epoch sidecar embeds.
func EncodeKnowledge(k *Knowledge) ([]byte, error) {
	kf := knowledgeFile{
		Version:           1,
		Synonyms:          make(map[string][]string),
		Abbrevs:           make(map[string]string),
		ExcessivePrefixes: k.ExcessivePrefixes,
		ExcessiveSuffixes: k.ExcessiveSuffixes,
		Ambiguous:         k.Ambiguous,
	}
	for _, pref := range k.Synonyms.PreferredNames() {
		kf.Synonyms[pref] = k.Synonyms.AlternatesOf(pref)
	}
	for ab, canon := range k.Abbrevs {
		kf.Abbrevs[ab] = canon
	}
	data, err := json.MarshalIndent(kf, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("semdiv: encode knowledge: %w", err)
	}
	return data, nil
}

// SaveKnowledge persists the mutable, curator-owned parts of the
// knowledge base (the vocabulary itself is code, not curation).
func SaveKnowledge(k *Knowledge, path string) error {
	data, err := EncodeKnowledge(k)
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("semdiv: write knowledge: %w", err)
	}
	return nil
}

// MergeEncodedKnowledge merges curation previously produced by
// EncodeKnowledge into k. Merging a full dump over a fresh
// vocabulary-derived knowledge base reproduces the original state
// exactly (the restore path after a crash), and a curator's partial
// file only needs their additions.
func MergeEncodedKnowledge(k *Knowledge, data []byte) error {
	var kf knowledgeFile
	if err := json.Unmarshal(data, &kf); err != nil {
		return fmt.Errorf("semdiv: decode knowledge: %w", err)
	}
	if kf.Version != 1 {
		return fmt.Errorf("semdiv: unsupported knowledge version %d", kf.Version)
	}
	saved := synonym.NewTable()
	prefs := make([]string, 0, len(kf.Synonyms))
	for p := range kf.Synonyms {
		prefs = append(prefs, p)
	}
	sort.Strings(prefs)
	for _, p := range prefs {
		if err := saved.Add(p, kf.Synonyms[p]...); err != nil {
			return fmt.Errorf("semdiv: saved synonym %q: %w", p, err)
		}
	}
	if err := k.Synonyms.Merge(saved); err != nil {
		return fmt.Errorf("semdiv: merge saved synonyms: %w", err)
	}
	for ab, canon := range kf.Abbrevs {
		k.Abbrevs[normKey(ab)] = canon
	}
	if len(kf.ExcessivePrefixes) > 0 {
		k.ExcessivePrefixes = kf.ExcessivePrefixes
	}
	if len(kf.ExcessiveSuffixes) > 0 {
		k.ExcessiveSuffixes = kf.ExcessiveSuffixes
	}
	for short, cands := range kf.Ambiguous {
		k.Ambiguous[short] = cands
	}
	return nil
}

// LoadKnowledge rebuilds a knowledge base from a saved file plus the
// canonical vocabulary (which always comes from code). Saved curation is
// merged over the vocabulary-derived seed, so a curator's file only
// needs their additions.
func LoadKnowledge(path string, vars []vocab.Variable) (*Knowledge, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("semdiv: read knowledge: %w", err)
	}
	k, err := NewKnowledge(vars)
	if err != nil {
		return nil, err
	}
	if err := MergeEncodedKnowledge(k, data); err != nil {
		return nil, err
	}
	return k, nil
}
