package semdiv

import (
	"fmt"
	"sort"

	"metamess/internal/refine"
)

// Plan is the resolver's output: the concrete actions that implement
// Table 1's "possible technical approach" column for a batch of findings.
type Plan struct {
	// Translations maps each raw name to its desired name (minor
	// variations, synonyms, abbreviations, single-context bases).
	Translations map[string]string
	// Exclusions lists raw names to mark as excluded from search but kept
	// for detailed dataset views (excessive variables).
	Exclusions []string
	// CuratorQueue lists findings that need a human decision: ambiguous
	// usages and unknown names.
	CuratorQueue []Finding
	// ContextLinks maps a base concept to the contexts it occurs in;
	// search exposes these as taxonomy links.
	ContextLinks map[string][]string
	// Groups maps a hierarchy parent to the raw names grouped below it
	// (multi-level concepts).
	Groups map[string][]string
}

// Resolve turns findings into a plan, applying each category's approach.
func Resolve(findings []Finding) *Plan {
	p := &Plan{
		Translations: make(map[string]string),
		ContextLinks: make(map[string][]string),
		Groups:       make(map[string][]string),
	}
	for _, f := range findings {
		switch f.Category {
		case CatMinorVariation, CatSynonym, CatAbbreviation:
			if f.Canonical != "" && f.Canonical != f.RawName {
				p.Translations[f.RawName] = f.Canonical
			}
		case CatExcessive:
			p.Exclusions = append(p.Exclusions, f.RawName)
		case CatAmbiguous, CatUnknown:
			p.CuratorQueue = append(p.CuratorQueue, f)
		case CatSourceContext:
			if _, dup := p.ContextLinks[f.RawName]; !dup {
				p.ContextLinks[f.RawName] = append([]string(nil), f.Contexts...)
			}
			// Ambiguous across contexts: also needs curator attention.
			p.CuratorQueue = append(p.CuratorQueue, f)
		case CatMultiLevel:
			if f.GroupParent != "" {
				p.Groups[f.GroupParent] = append(p.Groups[f.GroupParent], f.RawName)
			}
		case CatClean:
			// Nothing to do.
		}
	}
	sort.Strings(p.Exclusions)
	for parent := range p.Groups {
		sort.Strings(p.Groups[parent])
	}
	return p
}

// TranslationOp renders the plan's translations as a single mass-edit
// rule over the given column, grouped by target name for auditability.
// Returns nil when there is nothing to translate.
func (p *Plan) TranslationOp(column string) *refine.MassEdit {
	if len(p.Translations) == 0 {
		return nil
	}
	byTarget := make(map[string][]string)
	for raw, canon := range p.Translations {
		byTarget[canon] = append(byTarget[canon], raw)
	}
	targets := make([]string, 0, len(byTarget))
	for t := range byTarget {
		targets = append(targets, t)
	}
	sort.Strings(targets)
	var edits []refine.Edit
	for _, t := range targets {
		from := byTarget[t]
		sort.Strings(from)
		edits = append(edits, refine.Edit{From: from, To: t})
	}
	return &refine.MassEdit{
		Desc:       fmt.Sprintf("Resolve %d semantic-diversity findings in column %s", len(p.Translations), column),
		Engine:     refine.EngineConfig{Mode: "row-based"},
		ColumnName: column,
		Expression: "value",
		Edits:      edits,
	}
}

// DecisionAction is a curator's ruling on an ambiguous name, matching
// Table 1: clarify where possible, hide the variable, or leave as is.
type DecisionAction int

// Curator decision actions.
const (
	LeaveAsIs DecisionAction = iota
	ClarifyTo
	Hide
)

// Decision records one curator ruling.
type Decision struct {
	RawName string
	Action  DecisionAction
	// Target is the clarified canonical name when Action is ClarifyTo.
	Target string
}

// ApplyDecisions folds curator decisions into the plan: clarifications
// become translations, hides become exclusions, leaves drop off the
// queue. Unresolved queue entries remain queued. Unknown raw names are
// rejected so typos in a decision file surface.
func (p *Plan) ApplyDecisions(decisions []Decision) error {
	queued := make(map[string]int, len(p.CuratorQueue))
	for i, f := range p.CuratorQueue {
		queued[f.RawName] = i
	}
	resolved := make(map[string]bool)
	for _, d := range decisions {
		if _, ok := queued[d.RawName]; !ok {
			return fmt.Errorf("semdiv: decision for %q, which is not in the curator queue", d.RawName)
		}
		switch d.Action {
		case ClarifyTo:
			if d.Target == "" {
				return fmt.Errorf("semdiv: clarify decision for %q needs a target", d.RawName)
			}
			p.Translations[d.RawName] = d.Target
		case Hide:
			p.Exclusions = append(p.Exclusions, d.RawName)
		case LeaveAsIs:
			// Drop from queue without further action.
		default:
			return fmt.Errorf("semdiv: unknown decision action %d for %q", d.Action, d.RawName)
		}
		resolved[d.RawName] = true
	}
	var remaining []Finding
	for _, f := range p.CuratorQueue {
		if !resolved[f.RawName] {
			remaining = append(remaining, f)
		}
	}
	p.CuratorQueue = remaining
	sort.Strings(p.Exclusions)
	return nil
}

// Summary tallies findings by category — the row counts of a regenerated
// Table 1.
func Summary(findings []Finding) map[Category]int {
	out := make(map[Category]int)
	for _, f := range findings {
		out[f.Category]++
	}
	return out
}
