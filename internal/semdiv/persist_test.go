package semdiv

import (
	"os"
	"path/filepath"
	"testing"

	"metamess/internal/vocab"
)

func TestKnowledgeSaveLoadRoundTrip(t *testing.T) {
	k, err := NewKnowledge(vocab.Standard())
	if err != nil {
		t.Fatal(err)
	}
	// Curated additions beyond the vocabulary seed.
	if err := k.Synonyms.Add("water_temperature", "exotic_wtemp_v9"); err != nil {
		t.Fatal(err)
	}
	k.Abbrevs["xwt"] = "water_temperature"
	k.Ambiguous["vel"] = []string{"water_velocity", "velocity_flag"}

	path := filepath.Join(t.TempDir(), "knowledge.json")
	if err := SaveKnowledge(k, path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadKnowledge(path, vocab.Standard())
	if err != nil {
		t.Fatal(err)
	}
	if !back.Synonyms.Covers("exotic_wtemp_v9") {
		t.Error("curated synonym lost")
	}
	if back.Abbrevs["xwt"] != "water_temperature" {
		t.Errorf("curated abbrev = %q", back.Abbrevs["xwt"])
	}
	if len(back.Ambiguous["vel"]) != 2 {
		t.Errorf("curated ambiguity = %v", back.Ambiguous["vel"])
	}
	// Vocabulary-derived seed still present.
	if !back.Synonyms.Covers("airtemp") {
		t.Error("seed synonym lost")
	}
	if len(back.Contexts.Names()) < 2 {
		t.Error("contexts not rebuilt")
	}

	// The loaded knowledge classifies like the original.
	a, b := NewClassifier(k), NewClassifier(back)
	for _, name := range []string{"exotic_wtemp_v9", "xwt", "airtemp", "qa_level", "temp"} {
		fa, fb := a.Classify(name), b.Classify(name)
		if fa.Category != fb.Category || fa.Canonical != fb.Canonical {
			t.Errorf("classification of %q diverged: %s/%s vs %s/%s",
				name, fa.Category, fa.Canonical, fb.Category, fb.Canonical)
		}
	}
}

func TestLoadKnowledgeErrors(t *testing.T) {
	if _, err := LoadKnowledge(filepath.Join(t.TempDir(), "ghost.json"), vocab.Standard()); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadKnowledge(bad, vocab.Standard()); err == nil {
		t.Error("bad JSON accepted")
	}
	wrongVersion := filepath.Join(t.TempDir(), "v9.json")
	if err := os.WriteFile(wrongVersion, []byte(`{"version": 9}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadKnowledge(wrongVersion, vocab.Standard()); err == nil {
		t.Error("unknown version accepted")
	}
}

func TestSaveKnowledgeUnwritablePath(t *testing.T) {
	k, err := NewKnowledge(vocab.Standard())
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveKnowledge(k, filepath.Join(t.TempDir(), "no", "such", "dir", "k.json")); err == nil {
		t.Error("unwritable path accepted")
	}
}
