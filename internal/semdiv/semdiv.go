// Package semdiv implements the poster's Table 1, "Categories of
// Semantic Diversity, and Possible Approaches": a classifier that sorts
// harvested variable names into the seven categories, and a resolver
// that applies each category's prescribed approach (translate, mark and
// exclude, expose to the curator, qualify by context, group under a
// hierarchy).
package semdiv

import (
	"fmt"
	"sort"
	"strings"

	"metamess/internal/fingerprint"
	"metamess/internal/hierarchy"
	"metamess/internal/strdist"
	"metamess/internal/synonym"
	"metamess/internal/vocab"
)

// Category is one of the poster's seven semantic-diversity categories,
// plus Clean (already canonical) and Unknown ("the mess that's left",
// which feeds transformation discovery).
type Category string

// The categories, in the poster's Table 1 order.
const (
	CatMinorVariation Category = "minor-variation" // air_temperatrue, airtemp
	CatSynonym        Category = "synonym"         // C, degC, Centigrade
	CatAbbreviation   Category = "abbreviation"    // MWHLA
	CatExcessive      Category = "excessive"       // qa_level
	CatAmbiguous      Category = "ambiguous"       // temp: temporary or temperature?
	CatSourceContext  Category = "source-context"  // temperature (air or water?)
	CatMultiLevel     Category = "multi-level"     // fluores375 vs fluorescence
	CatClean          Category = "clean"           // already a canonical name
	CatUnknown        Category = "unknown"         // the mess that's left
)

// Categories returns the seven Table-1 categories in presentation order.
func Categories() []Category {
	return []Category{
		CatMinorVariation, CatSynonym, CatAbbreviation, CatExcessive,
		CatAmbiguous, CatSourceContext, CatMultiLevel,
	}
}

// Approach returns the "possible technical approach" column of Table 1
// for a category.
func (c Category) Approach() string {
	switch c {
	case CatMinorVariation, CatSynonym, CatAbbreviation:
		return "translate current to desired name"
	case CatExcessive:
		return "mark variables; exclude from search"
	case CatAmbiguous:
		return "provide interface to specify options"
	case CatSourceContext:
		return "link to multiple taxonomies"
	case CatMultiLevel:
		return "support hierarchical menus"
	case CatClean:
		return "none needed"
	default:
		return "discover transformations"
	}
}

// Finding is the classifier's verdict for one raw name.
type Finding struct {
	// RawName is the harvested name as seen in the archive.
	RawName string
	// Category is the diagnosed semantic-diversity category.
	Category Category
	// Canonical is the resolution target for translatable categories.
	Canonical string
	// Contexts lists the taxonomies containing the base concept, for
	// source-context findings.
	Contexts []string
	// GroupParent is the hierarchy parent for multi-level findings.
	GroupParent string
	// Candidates lists the possible expansions for ambiguous findings.
	Candidates []string
	// Evidence explains the verdict for curator review.
	Evidence string
}

// Knowledge is the curated state the classifier consults: exactly the
// artifacts the poster's curatorial activities maintain.
type Knowledge struct {
	// Synonyms maps alternate names to preferred names.
	Synonyms *synonym.Table
	// Abbrevs maps normalized abbreviations to canonical names.
	Abbrevs map[string]string
	// ExcessivePrefixes and ExcessiveSuffixes mark bookkeeping variables.
	ExcessivePrefixes []string
	ExcessiveSuffixes []string
	// Ambiguous maps short forms to candidate expansions.
	Ambiguous map[string][]string
	// Contexts holds one taxonomy per source context ("air", "water", ...).
	Contexts *hierarchy.Set
	// Vocabulary is the canonical variable list.
	Vocabulary []vocab.Variable
}

// NewKnowledge builds the knowledge base from a canonical vocabulary,
// seeding the synonym table, abbreviation dictionary, exclusion markers,
// ambiguity dictionary, and per-context taxonomies.
func NewKnowledge(vars []vocab.Variable) (*Knowledge, error) {
	k := &Knowledge{
		Synonyms:          synonym.NewTable(),
		Abbrevs:           make(map[string]string),
		ExcessivePrefixes: vocab.ExcessivePrefixes(),
		ExcessiveSuffixes: vocab.ExcessiveSuffixes(),
		Ambiguous:         vocab.AmbiguousTerms(),
		Contexts:          hierarchy.NewSet(),
		Vocabulary:        vars,
	}
	contexts := make(map[string]*hierarchy.Taxonomy)
	for _, v := range vars {
		if err := k.Synonyms.Add(v.Name, v.Synonyms...); err != nil {
			return nil, fmt.Errorf("semdiv: vocabulary %q: %w", v.Name, err)
		}
		// Abbreviations live in their own dictionary (higher classification
		// precedence) and in the synonym table (reverse query expansion).
		for _, a := range v.Abbrevs {
			k.Abbrevs[normKey(a)] = v.Name
		}
		if err := k.Synonyms.Add(v.Name, v.Abbrevs...); err != nil {
			return nil, fmt.Errorf("semdiv: vocabulary %q abbrevs: %w", v.Name, err)
		}
		if v.Context != "" {
			x, ok := contexts[v.Context]
			if !ok {
				x = hierarchy.NewTaxonomy(v.Context)
				contexts[v.Context] = x
				if err := k.Contexts.Add(x); err != nil {
					return nil, fmt.Errorf("semdiv: context %q: %w", v.Context, err)
				}
			}
			if _, err := x.AddPath(v.Base); err != nil {
				return nil, fmt.Errorf("semdiv: context %q term %q: %w", v.Context, v.Base, err)
			}
		}
	}
	return k, nil
}

// Classifier sorts raw names into categories against a knowledge base.
type Classifier struct {
	k *Knowledge
	// MinorVariationThreshold is the minimum normalized Levenshtein
	// similarity for a fuzzy match against the canonical vocabulary.
	MinorVariationThreshold float64

	canonByKey  map[string]string // normKey(canonical) -> canonical
	baseByKey   map[string]string // normKey(base) -> base
	contextsFor map[string][]string
}

// NewClassifier builds a classifier over the knowledge base.
func NewClassifier(k *Knowledge) *Classifier {
	c := &Classifier{
		k:                       k,
		MinorVariationThreshold: 0.82,
		canonByKey:              make(map[string]string),
		baseByKey:               make(map[string]string),
		contextsFor:             make(map[string][]string),
	}
	for _, v := range k.Vocabulary {
		c.canonByKey[normKey(v.Name)] = v.Name
		if v.Base != "" {
			c.baseByKey[normKey(v.Base)] = v.Base
		}
	}
	for key, base := range c.baseByKey {
		c.contextsFor[key] = k.Contexts.TaxonomiesOf(base)
	}
	return c
}

// Classify diagnoses one raw name. The checks run in specificity order;
// the first hit wins, matching how a curator would triage.
func (c *Classifier) Classify(raw string) Finding {
	f := Finding{RawName: raw}
	key := normKey(raw)
	if key == "" {
		f.Category = CatUnknown
		f.Evidence = "empty after normalization"
		return f
	}

	// 1. Excessive bookkeeping variables: marked, never translated.
	lower := strings.ToLower(strings.TrimSpace(raw))
	for _, p := range c.k.ExcessivePrefixes {
		if strings.HasPrefix(lower, p) {
			f.Category = CatExcessive
			f.Evidence = "prefix " + p
			return f
		}
	}
	for _, s := range c.k.ExcessiveSuffixes {
		if strings.HasSuffix(lower, s) {
			f.Category = CatExcessive
			f.Evidence = "suffix " + s
			return f
		}
	}

	// 2. Already canonical. A name that matches a canonical entry only up
	// to case/separators ("windspeed" vs "wind_speed") still needs the
	// translation to the canonical display form, so it is classified as a
	// minor variation rather than clean.
	if canon, ok := c.canonByKey[key]; ok {
		f.Canonical = canon
		if canon == raw {
			f.Category = CatClean
		} else {
			f.Category = CatMinorVariation
			f.Evidence = "canonical up to case/separators"
		}
		return f
	}

	// 3. Abbreviations (checked before the synonym table so the curated
	// abbreviation dictionary, which is higher precision, wins).
	if canon, ok := c.k.Abbrevs[key]; ok {
		f.Category = CatAbbreviation
		f.Canonical = canon
		f.Evidence = "abbreviation dictionary"
		return f
	}

	// 4. Curated synonyms.
	if pref, st := c.k.Synonyms.Resolve(raw); st == synonym.Alternate {
		f.Category = CatSynonym
		f.Canonical = pref
		f.Evidence = "synonym table"
		return f
	}

	// 5. Ambiguous short forms.
	if cands, ok := c.k.Ambiguous[key]; ok {
		f.Category = CatAmbiguous
		f.Candidates = append([]string(nil), cands...)
		f.Evidence = "ambiguity dictionary"
		return f
	}

	// 6. Source-context: the raw name is a bare base concept that occurs
	// in two or more context taxonomies.
	if base, ok := c.baseByKey[key]; ok {
		ctxs := c.contextsFor[key]
		if len(ctxs) >= 2 {
			f.Category = CatSourceContext
			f.Contexts = append([]string(nil), ctxs...)
			f.Evidence = "base concept in multiple contexts"
			return f
		}
		if len(ctxs) == 1 {
			// Unambiguous context: translate to the qualified name.
			qualified := hierarchy.Qualified(ctxs[0], base)
			if canon, ok := c.canonByKey[normKey(qualified)]; ok {
				f.Category = CatSynonym
				f.Canonical = canon
				f.Evidence = "single-context base concept"
				return f
			}
		}
	}

	// 7. Multi-level concepts: numeric-suffix members of a known family.
	if stem, ok := numericStem(raw); ok {
		if base, known := c.baseByKey[normKey(stem)]; known {
			f.Category = CatMultiLevel
			f.GroupParent = base
			f.Evidence = "numeric-suffix member of " + base
			return f
		}
		// The stem may fuzzily match a base (fluores ~ fluorescence).
		if base, sim := c.closestBase(stem); sim >= 0.6 {
			f.Category = CatMultiLevel
			f.GroupParent = base
			f.Evidence = fmt.Sprintf("numeric-suffix stem %.0f%% similar to %s", sim*100, base)
			return f
		}
	}

	// 8. Minor variations and misspellings: fuzzy match against canonical
	// names and their synonyms.
	if canon, sim := c.closestCanonical(raw); sim >= c.MinorVariationThreshold {
		f.Category = CatMinorVariation
		f.Canonical = canon
		f.Evidence = fmt.Sprintf("%.0f%% similar to %s", sim*100, canon)
		return f
	}

	f.Category = CatUnknown
	f.Evidence = "no curated knowledge matches"
	return f
}

// ClassifyAll classifies a batch of names, preserving input order.
func (c *Classifier) ClassifyAll(raws []string) []Finding {
	out := make([]Finding, len(raws))
	for i, r := range raws {
		out[i] = c.Classify(r)
	}
	return out
}

// closestCanonical finds the most similar canonical name, comparing the
// normalized forms so separator noise does not dilute similarity.
func (c *Classifier) closestCanonical(raw string) (string, float64) {
	rk := normKey(raw)
	best, bestSim := "", 0.0
	// Deterministic iteration: sort the canonical names once per call;
	// vocabulary sizes are tens of entries, so this stays cheap.
	names := make([]string, 0, len(c.canonByKey))
	for _, n := range c.canonByKey {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, canon := range names {
		sim := strdist.LevenshteinSimilarity(rk, normKey(canon))
		if sim > bestSim {
			best, bestSim = canon, sim
		}
	}
	return best, bestSim
}

// closestBase finds the most similar base concept.
func (c *Classifier) closestBase(stem string) (string, float64) {
	sk := normKey(stem)
	best, bestSim := "", 0.0
	bases := make([]string, 0, len(c.baseByKey))
	for _, b := range c.baseByKey {
		bases = append(bases, b)
	}
	sort.Strings(bases)
	for _, base := range bases {
		bk := normKey(base)
		sim := strdist.LevenshteinSimilarity(sk, bk)
		// A stem that is a strict prefix of the base (fluores ->
		// fluorescence) is strong evidence even at lower edit similarity,
		// so prefix matches are floored well above the acceptance bar.
		if strings.HasPrefix(bk, sk) && len(sk) >= 4 && sim < 0.75 {
			sim = 0.75
		}
		if sim > bestSim {
			best, bestSim = base, sim
		}
	}
	return best, bestSim
}

// numericStem splits "fluores375" into ("fluores", true).
func numericStem(name string) (string, bool) {
	toks := fingerprint.Tokens(name)
	if len(toks) < 2 {
		return "", false
	}
	last := toks[len(toks)-1]
	for _, r := range last {
		if r < '0' || r > '9' {
			return "", false
		}
	}
	stem := strings.Join(toks[:len(toks)-1], " ")
	if stem == "" {
		return "", false
	}
	return stem, true
}

// normKey is the separator-free matching key shared with the synonym
// package's semantics.
func normKey(s string) string { return strings.Join(fingerprint.Tokens(s), "") }
