package semdiv

import (
	"strings"
	"testing"

	"metamess/internal/table"
	"metamess/internal/vocab"
)

func classifier(t *testing.T) *Classifier {
	t.Helper()
	k, err := NewKnowledge(vocab.Standard())
	if err != nil {
		t.Fatal(err)
	}
	return NewClassifier(k)
}

func TestClassifyCleanNames(t *testing.T) {
	c := classifier(t)
	for _, name := range []string{"water_temperature", "salinity", "dissolved_oxygen"} {
		f := c.Classify(name)
		if f.Category != CatClean {
			t.Errorf("Classify(%q) = %s (%s), want clean", name, f.Category, f.Evidence)
		}
	}
}

func TestClassifyMinorVariations(t *testing.T) {
	c := classifier(t)
	// Table 1 row 1: air_temperature, air_temperatrue, airtemp.
	cases := map[string]string{
		"air_temperatrue": "air_temperature", // transposition
		"salinityy":       "salinity",        // insertion
		"turbidty":        "turbidity",       // deletion
	}
	for raw, want := range cases {
		f := c.Classify(raw)
		if f.Category != CatMinorVariation {
			t.Errorf("Classify(%q) = %s (%s), want minor-variation", raw, f.Category, f.Evidence)
			continue
		}
		if f.Canonical != want {
			t.Errorf("Classify(%q).Canonical = %q, want %q", raw, f.Canonical, want)
		}
	}
}

func TestClassifySynonyms(t *testing.T) {
	c := classifier(t)
	cases := map[string]string{
		"airtemp":                 "air_temperature", // curated synonym
		"sea surface temperature": "water_temperature",
		"salt":                    "salinity",
	}
	for raw, want := range cases {
		f := c.Classify(raw)
		if f.Category != CatSynonym {
			t.Errorf("Classify(%q) = %s (%s), want synonym", raw, f.Category, f.Evidence)
			continue
		}
		if f.Canonical != want {
			t.Errorf("Classify(%q).Canonical = %q, want %q", raw, f.Canonical, want)
		}
	}
}

func TestClassifyAbbreviations(t *testing.T) {
	c := classifier(t)
	// Table 1 row 3: MWHLA expands to its full variable name.
	cases := map[string]string{
		"MWHLA":  "wind_speed",
		"ATastn": "air_temperature",
		"SST":    "water_temperature",
		"RH":     "relative_humidity",
	}
	for raw, want := range cases {
		f := c.Classify(raw)
		if f.Category != CatAbbreviation {
			t.Errorf("Classify(%q) = %s (%s), want abbreviation", raw, f.Category, f.Evidence)
			continue
		}
		if f.Canonical != want {
			t.Errorf("Classify(%q).Canonical = %q, want %q", raw, f.Canonical, want)
		}
	}
}

func TestClassifyExcessive(t *testing.T) {
	c := classifier(t)
	// Table 1 row 4: quality assurance variables like qa_level.
	for _, raw := range []string{"qa_level", "qc_salinity", "flag_temp", "salinity_qc", "oxygen_flag"} {
		f := c.Classify(raw)
		if f.Category != CatExcessive {
			t.Errorf("Classify(%q) = %s (%s), want excessive", raw, f.Category, f.Evidence)
		}
	}
}

func TestClassifyAmbiguous(t *testing.T) {
	c := classifier(t)
	// Table 1 row 5: temp — temporary or temperature?
	f := c.Classify("temp")
	if f.Category != CatAmbiguous {
		t.Fatalf("Classify(temp) = %s (%s), want ambiguous", f.Category, f.Evidence)
	}
	if len(f.Candidates) != 2 {
		t.Errorf("candidates = %v", f.Candidates)
	}
	found := false
	for _, cand := range f.Candidates {
		if cand == "temperature" {
			found = true
		}
	}
	if !found {
		t.Errorf("temperature missing from candidates %v", f.Candidates)
	}
}

func TestClassifySourceContext(t *testing.T) {
	c := classifier(t)
	// Table 1 row 6: bare "temperature" is air or water depending on source.
	f := c.Classify("temperature")
	if f.Category != CatSourceContext {
		t.Fatalf("Classify(temperature) = %s (%s), want source-context", f.Category, f.Evidence)
	}
	if len(f.Contexts) < 2 {
		t.Errorf("contexts = %v, want at least [air water]", f.Contexts)
	}
	// A single-context base resolves directly: "humidity" only occurs in air.
	f = c.Classify("humidity")
	if f.Category != CatSynonym || f.Canonical != "relative_humidity" {
		t.Errorf("Classify(humidity) = %s -> %q (%s)", f.Category, f.Canonical, f.Evidence)
	}
}

func TestClassifyMultiLevel(t *testing.T) {
	c := classifier(t)
	// Table 1 row 7: fluores375/fluores400 vs fluorescence. The canonical
	// vocabulary already contains fluores375, so test an unseen member.
	f := c.Classify("fluores_410")
	if f.Category != CatMultiLevel {
		t.Fatalf("Classify(fluores_410) = %s (%s), want multi-level", f.Category, f.Evidence)
	}
	if f.GroupParent != "fluorescence" {
		t.Errorf("GroupParent = %q, want fluorescence", f.GroupParent)
	}
}

func TestClassifyUnknown(t *testing.T) {
	c := classifier(t)
	f := c.Classify("zqxwv_widget_frobnication")
	if f.Category != CatUnknown {
		t.Errorf("Classify = %s (%s), want unknown", f.Category, f.Evidence)
	}
	f = c.Classify("   ")
	if f.Category != CatUnknown {
		t.Errorf("blank name = %s, want unknown", f.Category)
	}
}

func TestClassifyAllOrder(t *testing.T) {
	c := classifier(t)
	raws := []string{"salinity", "qa_level", "MWHLA"}
	fs := c.ClassifyAll(raws)
	if len(fs) != 3 {
		t.Fatalf("len = %d", len(fs))
	}
	for i, raw := range raws {
		if fs[i].RawName != raw {
			t.Errorf("order broken at %d: %q", i, fs[i].RawName)
		}
	}
}

func TestCategoriesAndApproaches(t *testing.T) {
	cats := Categories()
	if len(cats) != 7 {
		t.Fatalf("Categories = %d, want 7 (Table 1 rows)", len(cats))
	}
	for _, c := range cats {
		if c.Approach() == "" {
			t.Errorf("category %s has no approach", c)
		}
	}
	if CatClean.Approach() != "none needed" {
		t.Error("clean approach wrong")
	}
	if !strings.Contains(CatUnknown.Approach(), "discover") {
		t.Error("unknown should route to discovery")
	}
}

func TestResolvePlan(t *testing.T) {
	c := classifier(t)
	raws := []string{
		"air_temperatrue",   // minor variation -> translate
		"airtemp",           // synonym -> translate
		"MWHLA",             // abbreviation -> translate
		"qa_level",          // excessive -> exclude
		"temp",              // ambiguous -> curator queue
		"temperature",       // source-context -> links + queue
		"fluores_410",       // multi-level -> group
		"water_temperature", // clean -> nothing
		"total_mystery_9x",  // unknown -> curator queue
	}
	plan := Resolve(c.ClassifyAll(raws))

	if got := plan.Translations["air_temperatrue"]; got != "air_temperature" {
		t.Errorf("translation = %q", got)
	}
	if got := plan.Translations["MWHLA"]; got != "wind_speed" {
		t.Errorf("abbrev translation = %q", got)
	}
	if len(plan.Exclusions) != 1 || plan.Exclusions[0] != "qa_level" {
		t.Errorf("exclusions = %v", plan.Exclusions)
	}
	if len(plan.CuratorQueue) != 3 { // temp, temperature, total_mystery_9x
		t.Errorf("curator queue = %d entries: %+v", len(plan.CuratorQueue), plan.CuratorQueue)
	}
	if ctxs := plan.ContextLinks["temperature"]; len(ctxs) < 2 {
		t.Errorf("context links = %v", ctxs)
	}
	if members := plan.Groups["fluorescence"]; len(members) != 1 || members[0] != "fluores_410" {
		t.Errorf("groups = %v", plan.Groups)
	}
}

func TestTranslationOpAppliesToGrid(t *testing.T) {
	c := classifier(t)
	raws := []string{"airtemp", "MWHLA", "salinityy"}
	plan := Resolve(c.ClassifyAll(raws))
	op := plan.TranslationOp("field")
	if op == nil {
		t.Fatal("nil translation op")
	}
	grid := table.MustNew("field")
	for _, r := range raws {
		_ = grid.AppendRow(r)
	}
	res, err := op.Apply(grid)
	if err != nil {
		t.Fatal(err)
	}
	if res.CellsChanged != 3 {
		t.Errorf("changed = %d, want 3", res.CellsChanged)
	}
	want := []string{"air_temperature", "wind_speed", "salinity"}
	for i, w := range want {
		if got, _ := grid.Cell(i, "field"); got != w {
			t.Errorf("row %d = %q, want %q", i, got, w)
		}
	}
}

func TestTranslationOpEmpty(t *testing.T) {
	p := &Plan{Translations: map[string]string{}}
	if op := p.TranslationOp("field"); op != nil {
		t.Error("empty plan should produce nil op")
	}
}

func TestApplyDecisions(t *testing.T) {
	c := classifier(t)
	plan := Resolve(c.ClassifyAll([]string{"temp", "total_mystery_9x", "level"}))
	if len(plan.CuratorQueue) != 3 {
		t.Fatalf("queue = %d", len(plan.CuratorQueue))
	}
	err := plan.ApplyDecisions([]Decision{
		{RawName: "temp", Action: ClarifyTo, Target: "water_temperature"},
		{RawName: "total_mystery_9x", Action: Hide},
		{RawName: "level", Action: LeaveAsIs},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.Translations["temp"]; got != "water_temperature" {
		t.Errorf("clarified translation = %q", got)
	}
	hidden := false
	for _, e := range plan.Exclusions {
		if e == "total_mystery_9x" {
			hidden = true
		}
	}
	if !hidden {
		t.Errorf("hide decision not applied: %v", plan.Exclusions)
	}
	if len(plan.CuratorQueue) != 0 {
		t.Errorf("queue not drained: %+v", plan.CuratorQueue)
	}
}

func TestApplyDecisionsErrors(t *testing.T) {
	c := classifier(t)
	plan := Resolve(c.ClassifyAll([]string{"temp"}))
	if err := plan.ApplyDecisions([]Decision{{RawName: "nope", Action: Hide}}); err == nil {
		t.Error("decision for unqueued name accepted")
	}
	if err := plan.ApplyDecisions([]Decision{{RawName: "temp", Action: ClarifyTo}}); err == nil {
		t.Error("clarify without target accepted")
	}
	if err := plan.ApplyDecisions([]Decision{{RawName: "temp", Action: DecisionAction(99)}}); err == nil {
		t.Error("unknown action accepted")
	}
	// Partial decisions leave the rest queued.
	plan = Resolve(c.ClassifyAll([]string{"temp", "level"}))
	if err := plan.ApplyDecisions([]Decision{{RawName: "temp", Action: Hide}}); err != nil {
		t.Fatal(err)
	}
	if len(plan.CuratorQueue) != 1 || plan.CuratorQueue[0].RawName != "level" {
		t.Errorf("queue = %+v", plan.CuratorQueue)
	}
}

func TestSummaryCountsEveryCategory(t *testing.T) {
	c := classifier(t)
	raws := []string{
		"air_temperatrue", "airtemp", "MWHLA", "qa_level", "temp",
		"temperature", "fluores_410", "water_temperature", "mystery_xx_yy",
	}
	sum := Summary(c.ClassifyAll(raws))
	for _, cat := range Categories() {
		if sum[cat] == 0 {
			t.Errorf("category %s has zero findings; corpus should exercise all 7", cat)
		}
	}
	if sum[CatClean] != 1 || sum[CatUnknown] != 1 {
		t.Errorf("clean=%d unknown=%d", sum[CatClean], sum[CatUnknown])
	}
}

func TestNewKnowledgeSeedsEverything(t *testing.T) {
	k, err := NewKnowledge(vocab.Standard())
	if err != nil {
		t.Fatal(err)
	}
	if k.Synonyms.Len() == 0 || len(k.Abbrevs) == 0 {
		t.Error("knowledge not seeded")
	}
	if len(k.Contexts.Names()) < 2 {
		t.Errorf("contexts = %v, want several", k.Contexts.Names())
	}
	if got := k.Contexts.TaxonomiesOf("temperature"); len(got) < 2 {
		t.Errorf("temperature contexts = %v", got)
	}
}

func BenchmarkClassify(b *testing.B) {
	k, err := NewKnowledge(vocab.Standard())
	if err != nil {
		b.Fatal(err)
	}
	c := NewClassifier(k)
	names := []string{"air_temperatrue", "airtemp", "MWHLA", "qa_level", "temp", "salinity"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Classify(names[i%len(names)])
	}
}
