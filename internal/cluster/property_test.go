package cluster

import (
	"fmt"
	"testing"
	"testing/quick"

	"metamess/internal/table"
)

// TestClustersPartitionValues verifies key-collision clusters never
// place one value in two clusters, and every recommended value is a
// member of its own cluster.
func TestClustersPartitionValues(t *testing.T) {
	methods := []Method{Fingerprint(), NGramFingerprint(1), Phonetic()}
	f := func(raw []string) bool {
		var vals []table.ValueCount
		seen := map[string]bool{}
		for i, r := range raw {
			if len(r) > 30 {
				r = r[:30]
			}
			if seen[r] {
				continue
			}
			seen[r] = true
			vals = append(vals, table.ValueCount{Value: r, Count: 1 + i%5})
		}
		for _, m := range methods {
			assigned := map[string]bool{}
			for _, c := range m.Cluster(vals) {
				if c.Size() < 2 {
					return false // singleton clusters must be filtered
				}
				memberIsRecommended := false
				for _, v := range c.Values {
					if assigned[v.Value] {
						return false // value in two clusters
					}
					assigned[v.Value] = true
					if v.Value == c.Recommended {
						memberIsRecommended = true
					}
				}
				if !memberIsRecommended {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestNearestNeighborSymmetricThreshold verifies the union-find clusters
// are independent of input order.
func TestNearestNeighborOrderIndependent(t *testing.T) {
	vals := []table.ValueCount{
		{Value: "salinity", Count: 5},
		{Value: "salinty", Count: 2},
		{Value: "turbidity", Count: 4},
		{Value: "turbidty", Count: 1},
		{Value: "oxygen", Count: 3},
	}
	reversed := make([]table.ValueCount, len(vals))
	for i, v := range vals {
		reversed[len(vals)-1-i] = v
	}
	a := Levenshtein(0.85).Cluster(vals)
	b := Levenshtein(0.85).Cluster(reversed)
	if len(a) != len(b) {
		t.Fatalf("cluster counts differ: %d vs %d", len(a), len(b))
	}
	key := func(cs []Cluster) map[string]string {
		out := map[string]string{}
		for _, c := range cs {
			for _, v := range c.Values {
				out[v.Value] = c.Recommended
			}
		}
		return out
	}
	ka, kb := key(a), key(b)
	for v, rec := range ka {
		if kb[v] != rec {
			t.Errorf("order-dependent recommendation for %q: %q vs %q", v, rec, kb[v])
		}
	}
}

// TestMassEditFromGeneratedClustersIsIdempotent applies a generated rule
// twice and checks a fixed point.
func TestMassEditFromGeneratedClustersIsIdempotent(t *testing.T) {
	grid := table.MustNew("field")
	values := []string{
		"Air Temperature", "air_temperature", "air_temperature",
		"AIR-TEMPERATURE", "salinity", "Salinity", "turbidity",
	}
	for _, v := range values {
		if err := grid.AppendRow(v); err != nil {
			t.Fatal(err)
		}
	}
	counts, err := grid.ValueCounts("field")
	if err != nil {
		t.Fatal(err)
	}
	op := ToMassEdit("field", Fingerprint().Cluster(counts), "")
	if op == nil {
		t.Fatal("no rule generated")
	}
	if _, err := op.Apply(grid); err != nil {
		t.Fatal(err)
	}
	snapshot := grid.Clone()
	res, err := op.Apply(grid)
	if err != nil {
		t.Fatal(err)
	}
	if res.CellsChanged != 0 || !grid.Equal(snapshot) {
		t.Error("generated mass edit is not idempotent")
	}
}

func BenchmarkNGram1Cluster1000(b *testing.B) {
	var vals []table.ValueCount
	for i := 0; i < 1000; i++ {
		vals = append(vals, table.ValueCount{Value: fmt.Sprintf("%s_%d", benchName(i), i%17), Count: 1})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NGramFingerprint(1).Cluster(vals)
	}
}
