package cluster

import (
	"testing"

	"metamess/internal/table"
)

func counts(pairs ...interface{}) []table.ValueCount {
	var out []table.ValueCount
	for i := 0; i < len(pairs); i += 2 {
		out = append(out, table.ValueCount{Value: pairs[i].(string), Count: pairs[i+1].(int)})
	}
	return out
}

func TestFingerprintClusters(t *testing.T) {
	vals := counts(
		"air_temperature", 10,
		"Air Temperature", 4,
		"AIR-TEMPERATURE", 1,
		"salinity", 7,
		"Salinity", 2,
		"oxygen", 3,
	)
	cs := Fingerprint().Cluster(vals)
	if len(cs) != 2 {
		t.Fatalf("clusters = %d, want 2", len(cs))
	}
	// Ordered by row count: air temperature (15) before salinity (9).
	if cs[0].Recommended != "air_temperature" {
		t.Errorf("recommended = %q, want air_temperature (most frequent)", cs[0].Recommended)
	}
	if cs[0].Size() != 3 || cs[0].RowCount() != 15 {
		t.Errorf("cluster 0: size=%d rows=%d", cs[0].Size(), cs[0].RowCount())
	}
	if cs[1].Recommended != "salinity" {
		t.Errorf("cluster 1 recommended = %q", cs[1].Recommended)
	}
}

func TestFingerprintIgnoresBlanksAndSingletons(t *testing.T) {
	vals := counts("", 100, "unique_name", 5, "other_name", 2)
	cs := Fingerprint().Cluster(vals)
	if len(cs) != 0 {
		t.Errorf("clusters = %d, want 0 (blanks and singletons excluded)", len(cs))
	}
}

func TestRecommendedTieBreak(t *testing.T) {
	vals := counts("b_name", 3, "a_name", 3)
	cs := Levenshtein(0.7).Cluster(vals)
	if len(cs) != 1 {
		t.Fatalf("clusters = %d, want 1", len(cs))
	}
	if cs[0].Recommended != "a_name" {
		t.Errorf("tie break picked %q, want a_name (ascending value)", cs[0].Recommended)
	}
}

func TestNGramFingerprintCatchesTypos(t *testing.T) {
	// Transposition changes word fingerprint but not 1-gram fingerprint.
	vals := counts("air_temperature", 9, "air_temperatrue", 1)
	if got := Fingerprint().Cluster(vals); len(got) != 0 {
		t.Errorf("word fingerprint unexpectedly clustered a transposition")
	}
	cs := NGramFingerprint(1).Cluster(vals)
	if len(cs) != 1 {
		t.Fatalf("1-gram clusters = %d, want 1", len(cs))
	}
	if cs[0].Recommended != "air_temperature" {
		t.Errorf("recommended = %q", cs[0].Recommended)
	}
}

func TestPhoneticCatchesSoundAlikes(t *testing.T) {
	vals := counts("fluorescence", 8, "fluoresence", 2, "salinity", 5)
	cs := Phonetic().Cluster(vals)
	if len(cs) != 1 {
		t.Fatalf("clusters = %d, want 1", len(cs))
	}
	if cs[0].Recommended != "fluorescence" {
		t.Errorf("recommended = %q", cs[0].Recommended)
	}
}

func TestLevenshteinNearestNeighbor(t *testing.T) {
	vals := counts(
		"salinity", 10,
		"salinty", 2, // deletion
		"salinityy", 1, // insertion
		"temperature", 8,
	)
	cs := Levenshtein(0.8).Cluster(vals)
	if len(cs) != 1 {
		t.Fatalf("clusters = %d, want 1", len(cs))
	}
	if cs[0].Size() != 3 {
		t.Errorf("cluster size = %d, want 3", cs[0].Size())
	}
	if cs[0].Recommended != "salinity" {
		t.Errorf("recommended = %q", cs[0].Recommended)
	}
}

func TestLevenshteinThresholdRespected(t *testing.T) {
	vals := counts("abc", 1, "xyz", 1)
	if cs := Levenshtein(0.5).Cluster(vals); len(cs) != 0 {
		t.Errorf("dissimilar values clustered: %+v", cs)
	}
	// Threshold 1.0 means only identical strings cluster — and distinct
	// values are never identical, so nothing clusters.
	vals = counts("abc", 1, "abd", 1)
	if cs := Levenshtein(1.0).Cluster(vals); len(cs) != 0 {
		t.Errorf("threshold 1.0 clustered non-identical values")
	}
}

func TestJaroWinklerMethod(t *testing.T) {
	vals := counts("water_temperature", 5, "water_temperatur", 1, "oxygen", 3)
	cs := JaroWinkler(0.95).Cluster(vals)
	if len(cs) != 1 || cs[0].Recommended != "water_temperature" {
		t.Fatalf("clusters = %+v", cs)
	}
}

func TestTransitiveChaining(t *testing.T) {
	// a~b and b~c should produce one component {a,b,c} even if a!~c.
	vals := counts("abcdefgh", 3, "abcdefgx", 2, "abcdefxx", 1)
	cs := Levenshtein(0.85).Cluster(vals)
	if len(cs) != 1 {
		t.Fatalf("clusters = %d, want 1 (transitive closure)", len(cs))
	}
	if cs[0].Size() != 3 {
		t.Errorf("component size = %d, want 3", cs[0].Size())
	}
}

func TestDiscoverOverTable(t *testing.T) {
	tb := table.MustNew("field")
	for _, v := range []string{"airtemp", "airtemp", "air temp", "salinity"} {
		_ = tb.AppendRow(v)
	}
	cs, err := Discover(tb, "field", NGramFingerprint(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 1 {
		t.Fatalf("clusters = %d, want 1", len(cs))
	}
	if cs[0].Recommended != "airtemp" {
		t.Errorf("recommended = %q (most frequent)", cs[0].Recommended)
	}
	if _, err := Discover(tb, "ghost", Fingerprint()); err == nil {
		t.Error("unknown column should fail")
	}
}

func TestToMassEdit(t *testing.T) {
	cs := []Cluster{
		{
			Key:         "air temperature",
			Values:      counts("air_temperature", 10, "Air Temperature", 4),
			Recommended: "air_temperature",
		},
	}
	me := ToMassEdit("field", cs, "")
	if me == nil {
		t.Fatal("nil mass edit")
	}
	if me.ColumnName != "field" || me.Expression != "value" {
		t.Errorf("op = %+v", me)
	}
	if len(me.Edits) != 1 {
		t.Fatalf("edits = %d, want 1", len(me.Edits))
	}
	if me.Edits[0].To != "air_temperature" || me.Edits[0].From[0] != "Air Temperature" {
		t.Errorf("edit = %+v", me.Edits[0])
	}

	// Applying the generated rule folds the cluster.
	tb := table.MustNew("field")
	_ = tb.AppendRow("Air Temperature")
	_ = tb.AppendRow("air_temperature")
	res, err := me.Apply(tb)
	if err != nil || res.CellsChanged != 1 {
		t.Fatalf("apply: %v changed=%d", err, res.CellsChanged)
	}
	got, _ := tb.Cell(0, "field")
	if got != "air_temperature" {
		t.Errorf("cell = %q", got)
	}
}

func TestToMassEditEmpty(t *testing.T) {
	if me := ToMassEdit("field", nil, ""); me != nil {
		t.Error("no clusters should produce nil op")
	}
	// A cluster whose only member is the recommended value yields nothing.
	cs := []Cluster{{Values: counts("x", 3), Recommended: "x"}}
	if me := ToMassEdit("field", cs, ""); me != nil {
		t.Error("degenerate cluster should produce nil op")
	}
}

func TestDeterministicOrdering(t *testing.T) {
	vals := counts(
		"aa bb", 2, "bb aa", 2, // cluster A, 4 rows
		"cc dd", 3, "dd cc", 1, // cluster B, 4 rows
	)
	first := Fingerprint().Cluster(vals)
	for i := 0; i < 5; i++ {
		again := Fingerprint().Cluster(vals)
		if len(again) != len(first) {
			t.Fatal("nondeterministic cluster count")
		}
		for j := range again {
			if again[j].Key != first[j].Key || again[j].Recommended != first[j].Recommended {
				t.Fatalf("nondeterministic ordering at %d: %+v vs %+v", j, again[j], first[j])
			}
		}
	}
}

func TestMethodNames(t *testing.T) {
	methods := []Method{
		Fingerprint(), NGramFingerprint(2), Phonetic(), Levenshtein(0.8), JaroWinkler(0.9),
	}
	seen := map[string]bool{}
	for _, m := range methods {
		if m.Name() == "" {
			t.Error("empty method name")
		}
		if seen[m.Name()] {
			t.Errorf("duplicate method name %q", m.Name())
		}
		seen[m.Name()] = true
	}
}

func BenchmarkFingerprintCluster1000(b *testing.B) {
	var vals []table.ValueCount
	for i := 0; i < 1000; i++ {
		vals = append(vals, table.ValueCount{Value: benchName(i), Count: 1 + i%7})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Fingerprint().Cluster(vals)
	}
}

func BenchmarkLevenshteinCluster300(b *testing.B) {
	var vals []table.ValueCount
	for i := 0; i < 300; i++ {
		vals = append(vals, table.ValueCount{Value: benchName(i), Count: 1 + i%7})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Levenshtein(0.85).Cluster(vals)
	}
}

var baseNames = []string{
	"air_temperature", "water_temperature", "salinity", "dissolved_oxygen",
	"turbidity", "chlorophyll", "ph", "conductivity", "pressure", "depth",
}

func benchName(i int) string {
	base := baseNames[i%len(baseNames)]
	switch i % 4 {
	case 0:
		return base
	case 1:
		return base + "_raw"
	case 2:
		return "obs_" + base
	default:
		return base + "_qc"
	}
}
