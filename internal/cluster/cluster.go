// Package cluster implements the "discover transformations" step of the
// metadata wrangling process: grouping the distinct values of a column
// that likely denote the same thing, exactly as Google Refine's
// clustering feature does, then emitting mass-edit rules that fold each
// cluster onto a recommended canonical value.
//
// Two families of methods are provided, following Refine:
//
//   - Key collision: values that normalize to the same key (fingerprint,
//     n-gram fingerprint, phonetic code) form a cluster. Fast and precise.
//   - Nearest neighbour: values whose pairwise string similarity exceeds a
//     threshold are connected; connected components form clusters.
//     Catches typos key collision misses, at higher cost and lower
//     precision.
package cluster

import (
	"fmt"
	"sort"

	"metamess/internal/fingerprint"
	"metamess/internal/refine"
	"metamess/internal/strdist"
	"metamess/internal/table"
)

// Cluster is a group of distinct column values judged to denote the same
// thing, plus the value the method recommends folding onto.
type Cluster struct {
	// Key is the collision key (key-collision methods) or a synthetic
	// component id (nearest-neighbour methods).
	Key string
	// Values lists the member values with their row frequencies, ordered
	// by descending count then ascending value.
	Values []table.ValueCount
	// Recommended is the member the cluster folds onto: the most frequent
	// value, ties broken by ascending value for determinism.
	Recommended string
}

// Size returns the number of distinct values in the cluster.
func (c Cluster) Size() int { return len(c.Values) }

// RowCount returns the total number of rows covered by the cluster.
func (c Cluster) RowCount() int {
	n := 0
	for _, v := range c.Values {
		n += v.Count
	}
	return n
}

// Method is one clustering algorithm.
type Method interface {
	// Name identifies the method in reports ("fingerprint", "levenshtein", ...).
	Name() string
	// Cluster groups the distinct values; only clusters with at least two
	// distinct members are returned, ordered by descending row count.
	Cluster(values []table.ValueCount) []Cluster
}

// keyCollision clusters values sharing a normalization key.
type keyCollision struct {
	name  string
	keyer func(string) string
}

// Fingerprint returns the key-collision method over fingerprint.Key —
// Refine's default and the poster's primary discovery tool.
func Fingerprint() Method {
	return keyCollision{name: "fingerprint", keyer: fingerprint.Key}
}

// NGramFingerprint returns the key-collision method over n-gram
// fingerprints, which tolerates small in-word typos.
func NGramFingerprint(n int) Method {
	return keyCollision{
		name:  fmt.Sprintf("ngram-fingerprint-%d", n),
		keyer: func(s string) string { return fingerprint.NGram(s, n) },
	}
}

// Phonetic returns the key-collision method over the simplified phonetic
// code, which catches sound-alike misspellings.
func Phonetic() Method {
	return keyCollision{name: "phonetic", keyer: fingerprint.Phonetic}
}

// Name implements Method.
func (k keyCollision) Name() string { return k.name }

// Cluster implements Method.
func (k keyCollision) Cluster(values []table.ValueCount) []Cluster {
	groups := make(map[string][]table.ValueCount)
	for _, v := range values {
		if v.Value == "" {
			continue // blanks are handled by fromBlank edits, not clustering
		}
		key := k.keyer(v.Value)
		if key == "" {
			continue
		}
		groups[key] = append(groups[key], v)
	}
	var out []Cluster
	for key, members := range groups {
		if len(members) < 2 {
			continue
		}
		out = append(out, finalize(key, members))
	}
	orderClusters(out)
	return out
}

// nearestNeighbor clusters values by pairwise similarity >= threshold.
type nearestNeighbor struct {
	name      string
	sim       func(a, b string) float64
	threshold float64
	// lengthPrune enables the length-difference prune, which is only a
	// sound bound for normalized Levenshtein similarity.
	lengthPrune bool
}

// Levenshtein returns the nearest-neighbour method over normalized
// Levenshtein similarity with the given threshold in (0,1].
func Levenshtein(threshold float64) Method {
	return nearestNeighbor{
		name:        "levenshtein",
		sim:         strdist.LevenshteinSimilarity,
		threshold:   threshold,
		lengthPrune: true,
	}
}

// JaroWinkler returns the nearest-neighbour method over Jaro-Winkler
// similarity with the given threshold in (0,1].
func JaroWinkler(threshold float64) Method {
	return nearestNeighbor{
		name:      "jaro-winkler",
		sim:       strdist.JaroWinkler,
		threshold: threshold,
	}
}

// Name implements Method.
func (nn nearestNeighbor) Name() string { return nn.name }

// Cluster implements Method.
func (nn nearestNeighbor) Cluster(values []table.ValueCount) []Cluster {
	// Work over non-blank distinct values; union-find connected components.
	var vals []table.ValueCount
	for _, v := range values {
		if v.Value != "" {
			vals = append(vals, v)
		}
	}
	n := len(vals)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}
	// Blocking: sort by value so similar strings are near one another and
	// compare each value with a bounded window plus all same-first-rune
	// values. For catalog-scale distinct counts (thousands) the plain
	// O(n^2) over distinct values is acceptable; we keep it exact.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if nn.lengthPrune && !lengthCompatible(vals[i].Value, vals[j].Value, nn.threshold) {
				continue
			}
			if nn.sim(vals[i].Value, vals[j].Value) >= nn.threshold {
				union(i, j)
			}
		}
	}
	groups := make(map[int][]table.ValueCount)
	for i, v := range vals {
		root := find(i)
		groups[root] = append(groups[root], v)
	}
	var out []Cluster
	for root, members := range groups {
		if len(members) < 2 {
			continue
		}
		c := finalize(fmt.Sprintf("nn-%d", root), members)
		out = append(out, c)
	}
	orderClusters(out)
	return out
}

// lengthCompatible prunes pairs whose length difference alone already
// caps similarity below the threshold (valid for normalized Levenshtein;
// conservative for Jaro-Winkler).
func lengthCompatible(a, b string, threshold float64) bool {
	la, lb := len(a), len(b)
	longest, diff := la, la-lb
	if lb > la {
		longest, diff = lb, lb-la
	}
	if longest == 0 {
		return true
	}
	return 1-float64(diff)/float64(longest) >= threshold
}

// finalize orders members and picks the recommended value.
func finalize(key string, members []table.ValueCount) Cluster {
	sort.Slice(members, func(i, j int) bool {
		if members[i].Count != members[j].Count {
			return members[i].Count > members[j].Count
		}
		return members[i].Value < members[j].Value
	})
	return Cluster{Key: key, Values: members, Recommended: members[0].Value}
}

// orderClusters sorts clusters by descending row count, then by key, so
// reports and generated rules are deterministic.
func orderClusters(cs []Cluster) {
	sort.Slice(cs, func(i, j int) bool {
		ri, rj := cs[i].RowCount(), cs[j].RowCount()
		if ri != rj {
			return ri > rj
		}
		return cs[i].Key < cs[j].Key
	})
}

// Discover runs a method over a table column and returns the clusters.
func Discover(t *table.Table, column string, m Method) ([]Cluster, error) {
	counts, err := t.ValueCounts(column)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	return m.Cluster(counts), nil
}

// ToMassEdit converts clusters into a replayable mass-edit rule on the
// given column: every non-recommended member maps to the recommended
// value. Returns nil when there is nothing to edit.
func ToMassEdit(column string, clusters []Cluster, description string) *refine.MassEdit {
	var edits []refine.Edit
	for _, c := range clusters {
		var from []string
		for _, v := range c.Values {
			if v.Value != c.Recommended {
				from = append(from, v.Value)
			}
		}
		if len(from) == 0 {
			continue
		}
		edits = append(edits, refine.Edit{From: from, To: c.Recommended})
	}
	if len(edits) == 0 {
		return nil
	}
	if description == "" {
		description = fmt.Sprintf("Mass edit cells in column %s (%d clusters)", column, len(edits))
	}
	return &refine.MassEdit{
		Desc:       description,
		Engine:     refine.EngineConfig{Mode: "row-based"},
		ColumnName: column,
		Expression: "value",
		Edits:      edits,
	}
}
