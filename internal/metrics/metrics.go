// Package metrics provides the information-retrieval quality measures
// the experiments report: precision/recall at k, F1, average precision,
// and NDCG. All functions treat result lists as ranked (best first) and
// relevance as a set of relevant item IDs.
//
// This package scores how well the ranking retrieves, offline, against
// ground truth. Operational telemetry — request tracing, Prometheus
// counters and histograms, the slow-query log — lives in internal/obs.
package metrics

import "math"

// All measures credit only the *first* occurrence of a relevant item:
// a result list that repeats a relevant ID cannot inflate its score.

// PrecisionAtK returns the fraction of the top-k results that are
// relevant. k is clamped to len(ranked); an empty list scores 0.
func PrecisionAtK(ranked []string, relevant map[string]bool, k int) float64 {
	if k <= 0 || len(ranked) == 0 {
		return 0
	}
	if k > len(ranked) {
		k = len(ranked)
	}
	hits := 0
	seen := make(map[string]bool, k)
	for _, id := range ranked[:k] {
		if relevant[id] && !seen[id] {
			seen[id] = true
			hits++
		}
	}
	return float64(hits) / float64(k)
}

// RecallAtK returns the fraction of relevant items found in the top-k.
// With no relevant items the measure is undefined; this returns 1 so
// that a query with nothing to find does not penalize an empty result.
func RecallAtK(ranked []string, relevant map[string]bool, k int) float64 {
	if len(relevant) == 0 {
		return 1
	}
	if k <= 0 {
		return 0
	}
	if k > len(ranked) {
		k = len(ranked)
	}
	hits := 0
	seen := make(map[string]bool, k)
	for _, id := range ranked[:k] {
		if relevant[id] && !seen[id] {
			seen[id] = true
			hits++
		}
	}
	return float64(hits) / float64(len(relevant))
}

// F1 combines precision and recall harmonically; zero when both are zero.
func F1(precision, recall float64) float64 {
	if precision+recall == 0 {
		return 0
	}
	return 2 * precision * recall / (precision + recall)
}

// AveragePrecision returns the mean of precision@i over the ranks i where
// a relevant item appears, divided by the number of relevant items.
func AveragePrecision(ranked []string, relevant map[string]bool) float64 {
	if len(relevant) == 0 {
		return 1
	}
	hits := 0
	sum := 0.0
	seen := make(map[string]bool)
	for i, id := range ranked {
		if relevant[id] && !seen[id] {
			seen[id] = true
			hits++
			sum += float64(hits) / float64(i+1)
		}
	}
	return sum / float64(len(relevant))
}

// NDCGAtK returns the normalized discounted cumulative gain with binary
// relevance: DCG over the top-k divided by the ideal DCG.
func NDCGAtK(ranked []string, relevant map[string]bool, k int) float64 {
	if len(relevant) == 0 {
		return 1
	}
	if k <= 0 {
		return 0
	}
	// DCG runs over the results actually returned (at most k); the ideal
	// is NOT clamped to the result-list length, so a short list that
	// misses relevant items scores below 1.
	window := k
	if window > len(ranked) {
		window = len(ranked)
	}
	dcg := 0.0
	seen := make(map[string]bool, window)
	for i, id := range ranked[:window] {
		if relevant[id] && !seen[id] {
			seen[id] = true
			dcg += 1 / math.Log2(float64(i)+2)
		}
	}
	ideal := 0.0
	n := len(relevant)
	if n > k {
		n = k
	}
	for i := 0; i < n; i++ {
		ideal += 1 / math.Log2(float64(i)+2)
	}
	if ideal == 0 {
		return 0
	}
	return dcg / ideal
}

// Mean averages a slice; empty input returns 0.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// ConfusionCounts tallies a binary classification outcome.
type ConfusionCounts struct {
	TP, FP, FN int
}

// Precision of the confusion counts (1 when nothing was predicted).
func (c ConfusionCounts) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 1
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall of the confusion counts (1 when nothing was expected).
func (c ConfusionCounts) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 1
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 of the confusion counts.
func (c ConfusionCounts) F1() float64 { return F1(c.Precision(), c.Recall()) }
