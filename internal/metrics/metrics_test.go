package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

var rel = map[string]bool{"a": true, "b": true, "c": true}

func TestPrecisionAtK(t *testing.T) {
	ranked := []string{"a", "x", "b", "y", "c"}
	cases := []struct {
		k    int
		want float64
	}{
		{1, 1}, {2, 0.5}, {3, 2.0 / 3}, {5, 0.6}, {10, 0.6}, {0, 0},
	}
	for _, c := range cases {
		if got := PrecisionAtK(ranked, rel, c.k); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("P@%d = %g, want %g", c.k, got, c.want)
		}
	}
	if got := PrecisionAtK(nil, rel, 3); got != 0 {
		t.Errorf("empty ranked P@3 = %g", got)
	}
}

func TestRecallAtK(t *testing.T) {
	ranked := []string{"a", "x", "b", "y", "c"}
	if got := RecallAtK(ranked, rel, 3); math.Abs(got-2.0/3) > 1e-9 {
		t.Errorf("R@3 = %g", got)
	}
	if got := RecallAtK(ranked, rel, 5); got != 1 {
		t.Errorf("R@5 = %g", got)
	}
	if got := RecallAtK(ranked, map[string]bool{}, 5); got != 1 {
		t.Errorf("no-relevant recall = %g, want 1", got)
	}
	if got := RecallAtK(ranked, rel, 0); got != 0 {
		t.Errorf("R@0 = %g", got)
	}
}

func TestF1(t *testing.T) {
	if got := F1(1, 1); got != 1 {
		t.Errorf("F1(1,1) = %g", got)
	}
	if got := F1(0, 0); got != 0 {
		t.Errorf("F1(0,0) = %g", got)
	}
	if got := F1(0.5, 1); math.Abs(got-2.0/3) > 1e-9 {
		t.Errorf("F1(0.5,1) = %g", got)
	}
}

func TestAveragePrecision(t *testing.T) {
	// Perfect ranking.
	if got := AveragePrecision([]string{"a", "b", "c"}, rel); math.Abs(got-1) > 1e-9 {
		t.Errorf("perfect AP = %g", got)
	}
	// a at 1 (p=1), b at 3 (p=2/3), c at 5 (p=3/5): AP = mean.
	got := AveragePrecision([]string{"a", "x", "b", "y", "c"}, rel)
	want := (1.0 + 2.0/3 + 3.0/5) / 3
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("AP = %g, want %g", got, want)
	}
	if got := AveragePrecision(nil, map[string]bool{}); got != 1 {
		t.Errorf("empty AP = %g", got)
	}
}

func TestNDCG(t *testing.T) {
	// Perfect ranking has NDCG 1.
	if got := NDCGAtK([]string{"a", "b", "c"}, rel, 3); math.Abs(got-1) > 1e-9 {
		t.Errorf("perfect NDCG = %g", got)
	}
	// Reversed relevance ranks lower.
	worse := NDCGAtK([]string{"x", "y", "a"}, rel, 3)
	if worse >= 1 || worse <= 0 {
		t.Errorf("degraded NDCG = %g", worse)
	}
	if got := NDCGAtK([]string{"x"}, rel, 0); got != 0 {
		t.Errorf("NDCG@0 = %g", got)
	}
	if got := NDCGAtK([]string{"x"}, map[string]bool{}, 3); got != 1 {
		t.Errorf("no-relevant NDCG = %g", got)
	}
}

func TestBoundsProperties(t *testing.T) {
	f := func(ids []string, relIdx []uint8, k uint8) bool {
		relevant := map[string]bool{}
		for _, i := range relIdx {
			if len(ids) > 0 {
				relevant[ids[int(i)%len(ids)]] = true
			}
		}
		kk := int(k%20) + 1
		for _, v := range []float64{
			PrecisionAtK(ids, relevant, kk),
			RecallAtK(ids, relevant, kk),
			AveragePrecision(ids, relevant),
			NDCGAtK(ids, relevant, kk),
		} {
			if v < 0 || v > 1+1e-9 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %g", got)
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %g", got)
	}
}

func TestConfusionCounts(t *testing.T) {
	c := ConfusionCounts{TP: 8, FP: 2, FN: 2}
	if got := c.Precision(); got != 0.8 {
		t.Errorf("precision = %g", got)
	}
	if got := c.Recall(); got != 0.8 {
		t.Errorf("recall = %g", got)
	}
	if got := c.F1(); math.Abs(got-0.8) > 1e-9 {
		t.Errorf("F1 = %g", got)
	}
	empty := ConfusionCounts{}
	if empty.Precision() != 1 || empty.Recall() != 1 {
		t.Error("empty confusion should default to 1")
	}
}

func TestDuplicateIDsCannotInflateScores(t *testing.T) {
	relevant := map[string]bool{"a": true, "b": true}
	dup := []string{"a", "a", "a", "a"}
	if got := RecallAtK(dup, relevant, 4); got != 0.5 {
		t.Errorf("duplicate recall = %g, want 0.5 (a counted once)", got)
	}
	if got := PrecisionAtK(dup, relevant, 4); got != 0.25 {
		t.Errorf("duplicate precision = %g, want 0.25", got)
	}
	if got := NDCGAtK(dup, relevant, 4); got >= 1 {
		t.Errorf("duplicate NDCG = %g, want < 1 (b never found)", got)
	}
	if got := AveragePrecision(dup, relevant); got != 0.5 {
		t.Errorf("duplicate AP = %g, want 0.5", got)
	}
}
