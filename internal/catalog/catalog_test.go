package catalog

import (
	"fmt"
	"testing"
	"time"

	"metamess/internal/geo"
)

func feat(path string, vars ...string) *Feature {
	f := &Feature{
		ID:     IDForPath(path),
		Path:   path,
		Source: "stations",
		Format: "csv",
		BBox:   geo.BBox{MinLat: 46, MinLon: -124, MaxLat: 46.2, MaxLon: -123.8},
		Time: geo.NewTimeRange(
			time.Date(2010, 6, 1, 0, 0, 0, 0, time.UTC),
			time.Date(2010, 6, 30, 0, 0, 0, 0, time.UTC)),
		RowCount:  100,
		Bytes:     4096,
		ScannedAt: time.Date(2013, 1, 1, 0, 0, 0, 0, time.UTC),
	}
	for _, v := range vars {
		f.Variables = append(f.Variables, VarFeature{
			RawName: v, Name: v, Unit: "degC",
			Range: geo.ValueRange{Min: 5, Max: 15}, Count: 100,
		})
	}
	return f
}

func TestUpsertGetDelete(t *testing.T) {
	c := New()
	f := feat("stations/2010/saturn01.csv", "water_temperature", "salinity")
	if err := c.Upsert(f); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
	got, ok := c.Get(f.ID)
	if !ok || got.Path != f.Path || len(got.Variables) != 2 {
		t.Fatalf("Get = %+v, %v", got, ok)
	}
	// Returned copies are isolated.
	got.Variables[0].Name = "mutated"
	again, _ := c.Get(f.ID)
	if again.Variables[0].Name == "mutated" {
		t.Error("Get returned a live reference")
	}
	if !c.Delete(f.ID) {
		t.Error("Delete returned false")
	}
	if c.Delete(f.ID) {
		t.Error("double Delete returned true")
	}
	if c.Len() != 0 {
		t.Errorf("Len after delete = %d", c.Len())
	}
}

func TestUpsertValidates(t *testing.T) {
	c := New()
	bad := feat("a.csv")
	bad.ID = "wrong"
	if err := c.Upsert(bad); err == nil {
		t.Error("mismatched ID accepted")
	}
	dup := feat("b.csv", "x")
	dup.Variables = append(dup.Variables, VarFeature{RawName: "x", Name: "x"})
	if err := c.Upsert(dup); err == nil {
		t.Error("duplicate variable accepted")
	}
	noName := feat("c.csv", "x")
	noName.Variables[0].Name = ""
	if err := c.Upsert(noName); err == nil {
		t.Error("empty variable name accepted")
	}
}

func TestUpsertReplacesAndReindexes(t *testing.T) {
	c := New()
	f := feat("a.csv", "old_name")
	if err := c.Upsert(f); err != nil {
		t.Fatal(err)
	}
	f2 := feat("a.csv", "new_name")
	if err := c.Upsert(f2); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	if ids := c.DatasetsWithVariable("old_name"); len(ids) != 0 {
		t.Errorf("old index entry survived: %v", ids)
	}
	if ids := c.DatasetsWithVariable("new_name"); len(ids) != 1 {
		t.Errorf("new index entry missing: %v", ids)
	}
}

func TestIndexExcludesExcludedVariables(t *testing.T) {
	c := New()
	f := feat("a.csv", "salinity")
	f.Variables = append(f.Variables, VarFeature{
		RawName: "qa_level", Name: "qa_level", Excluded: true, Count: 10,
	})
	if err := c.Upsert(f); err != nil {
		t.Fatal(err)
	}
	if ids := c.DatasetsWithVariable("qa_level"); len(ids) != 0 {
		t.Errorf("excluded variable indexed: %v", ids)
	}
	if ids := c.DatasetsWithVariable("salinity"); len(ids) != 1 {
		t.Errorf("searchable variable missing: %v", ids)
	}
	// But the variable remains in the detailed feature view.
	got, _ := c.Get(f.ID)
	if len(got.Variables) != 2 {
		t.Error("excluded variable dropped from feature")
	}
}

func TestAllSortedAndIsolated(t *testing.T) {
	c := New()
	for i := 0; i < 10; i++ {
		if err := c.Upsert(feat(fmt.Sprintf("d%02d.csv", i), "v")); err != nil {
			t.Fatal(err)
		}
	}
	all := c.All()
	if len(all) != 10 {
		t.Fatalf("All = %d", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].ID >= all[i].ID {
			t.Fatal("All not sorted by ID")
		}
	}
	ids := c.IDs()
	if len(ids) != 10 || ids[0] != all[0].ID {
		t.Error("IDs disagree with All")
	}
}

func TestVariableNameCounts(t *testing.T) {
	c := New()
	_ = c.Upsert(feat("a.csv", "salinity", "temp"))
	_ = c.Upsert(feat("b.csv", "salinity"))
	counts := c.VariableNameCounts()
	if counts[0].Value != "salinity" || counts[0].Count != 2 {
		t.Errorf("top count = %+v", counts[0])
	}
	names := c.DistinctVariableNames()
	if len(names) != 2 || names[0] != "salinity" || names[1] != "temp" {
		t.Errorf("names = %v", names)
	}
}

func TestMutateVariables(t *testing.T) {
	c := New()
	_ = c.Upsert(feat("a.csv", "airtemp"))
	_ = c.Upsert(feat("b.csv", "salinity"))
	gen := c.Generation()
	changed := c.MutateVariables(func(f *Feature) bool {
		for i := range f.Variables {
			if f.Variables[i].Name == "airtemp" {
				f.Variables[i].Name = "air_temperature"
				return true
			}
		}
		return false
	})
	if changed != 1 {
		t.Errorf("changed = %d", changed)
	}
	if c.Generation() == gen {
		t.Error("generation not bumped")
	}
	if ids := c.DatasetsWithVariable("air_temperature"); len(ids) != 1 {
		t.Errorf("index not updated: %v", ids)
	}
	if ids := c.DatasetsWithVariable("airtemp"); len(ids) != 0 {
		t.Errorf("stale index: %v", ids)
	}
}

func TestCloneAndReplaceAll(t *testing.T) {
	working := New()
	_ = working.Upsert(feat("a.csv", "salinity"))
	published := New()
	_ = published.Upsert(feat("old.csv", "oldvar"))

	published.ReplaceAll(working)
	if published.Len() != 1 {
		t.Fatalf("published Len = %d", published.Len())
	}
	if ids := published.DatasetsWithVariable("salinity"); len(ids) != 1 {
		t.Error("published index missing")
	}
	if ids := published.DatasetsWithVariable("oldvar"); len(ids) != 0 {
		t.Error("stale published entry")
	}
	// Publishing is a snapshot: later working changes do not leak.
	working.MutateVariables(func(f *Feature) bool {
		f.Variables[0].Name = "renamed"
		return true
	})
	if ids := published.DatasetsWithVariable("renamed"); len(ids) != 0 {
		t.Error("working mutation leaked into published catalog")
	}
}

func TestToTableApplyTableRoundTrip(t *testing.T) {
	c := New()
	_ = c.Upsert(feat("a.csv", "airtemp", "salinity"))
	_ = c.Upsert(feat("b.csv", "ATastn"))
	grid := c.ToTable()
	if grid.NumRows() != 3 {
		t.Fatalf("grid rows = %d", grid.NumRows())
	}
	// Wrangle the grid: rename every temperature variant.
	for i := 0; i < grid.NumRows(); i++ {
		v, _ := grid.Cell(i, "field")
		if v == "airtemp" || v == "ATastn" {
			_ = grid.SetCell(i, "field", "air_temperature")
		}
	}
	changed, err := c.ApplyTable(grid)
	if err != nil {
		t.Fatal(err)
	}
	if changed != 2 {
		t.Errorf("changed = %d, want 2", changed)
	}
	if ids := c.DatasetsWithVariable("air_temperature"); len(ids) != 2 {
		t.Errorf("renamed variable index = %v", ids)
	}
	// RawName preserved for provenance.
	f, _ := c.Get(IDForPath("b.csv"))
	if f.Variables[0].RawName != "ATastn" || f.Variables[0].Name != "air_temperature" {
		t.Errorf("provenance lost: %+v", f.Variables[0])
	}
}

func TestApplyTableErrors(t *testing.T) {
	c := New()
	_ = c.Upsert(feat("a.csv", "x", "y"))
	grid := c.ToTable()
	// Drop a row: row count mismatch must fail.
	grid.FilterRows(func(i int, _ []string) bool { return i != 0 })
	if _, err := c.ApplyTable(grid); err == nil {
		t.Error("row-count mismatch accepted")
	}
	bad := c.ToTable()
	_ = bad.RemoveColumn("field")
	if _, err := c.ApplyTable(bad); err == nil {
		t.Error("missing column accepted")
	}
}

func TestSearchableNamesAndVariable(t *testing.T) {
	f := feat("a.csv", "salinity", "water_temperature")
	f.Variables[0].Excluded = true
	names := f.SearchableNames()
	if len(names) != 1 || names[0] != "water_temperature" {
		t.Errorf("searchable = %v", names)
	}
	if _, ok := f.Variable("salinity"); !ok {
		t.Error("Variable lookup failed")
	}
	if _, ok := f.Variable("ghost"); ok {
		t.Error("Variable found ghost")
	}
}

func TestIDForPathStable(t *testing.T) {
	a := IDForPath("stations/2010/x.csv")
	b := IDForPath("stations/2010/x.csv")
	if a != b {
		t.Error("ID not stable")
	}
	if a == IDForPath("stations/2010/y.csv") {
		t.Error("distinct paths collided")
	}
	if len(a) != 16 {
		t.Errorf("ID length = %d, want 16 hex chars", len(a))
	}
}
