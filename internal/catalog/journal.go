package catalog

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"
)

// The publish journal is the catalog's write-ahead log: every publish
// appends one delta record — the features upserted, the IDs retracted,
// the resulting generation stamp, and the wrangling layer's opaque
// knowledge-epoch sidecar — as a single checksummed line. Because a
// record is one line, record application is all-or-nothing by
// construction: a crash mid-append leaves a torn final line that replay
// drops, so recovery always lands on the state before or after a
// publish, never between.

// SyncPolicy controls when journal (and log) appends are fsynced — the
// point at which an acknowledged publish is guaranteed to survive a
// crash.
type SyncPolicy int

const (
	// SyncAlways fsyncs every append before acknowledging it: a publish
	// that returned cannot be lost. The default.
	SyncAlways SyncPolicy = iota
	// SyncGroup is group commit: appends are flushed to the OS
	// immediately but fsynced only when the group window has elapsed
	// since the last fsync, bounding both the fsync rate and the data at
	// risk to one window.
	SyncGroup
	// SyncNone never fsyncs on append; durability happens at the OS's
	// discretion (and on Sync/Close). For tests and bulk loads.
	SyncNone
)

// ParseSyncPolicy maps the operator-facing policy names ("always",
// "group", "none") to a SyncPolicy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "", "always":
		return SyncAlways, nil
	case "group":
		return SyncGroup, nil
	case "none":
		return SyncNone, nil
	}
	return SyncAlways, fmt.Errorf("catalog: unknown sync policy %q (want always, group, or none)", s)
}

// DefaultGroupWindow is the SyncGroup fsync window when none is set.
const DefaultGroupWindow = 50 * time.Millisecond

// DeltaRecord is one journaled publish.
type DeltaRecord struct {
	// Gen is the published catalog's generation after this delta was
	// applied. Records in a journal carry strictly increasing stamps,
	// except sidecar-only records which re-stamp the current generation.
	Gen uint64
	// Changed and Removed are the publish delta.
	Changed []*Feature
	Removed []string
	// Sidecar is the knowledge-epoch state at publish time, opaque to
	// the catalog.
	Sidecar json.RawMessage
}

// Journal is an open publish journal. It is safe for concurrent use.
type Journal struct {
	mu       sync.Mutex
	path     string
	f        *os.File
	w        *bufio.Writer
	policy   SyncPolicy
	window   time.Duration
	lastSync time.Time
	size     int64
	appends  uint64
	syncs    uint64
	closed   bool
	// syncScheduled marks a pending deferred group-commit fsync.
	syncScheduled bool
}

// OpenJournal opens (creating if needed) the journal at path for
// appending. window applies to SyncGroup (0 = DefaultGroupWindow).
func OpenJournal(path string, policy SyncPolicy, window time.Duration) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("catalog: open journal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("catalog: stat journal: %w", err)
	}
	if window <= 0 {
		window = DefaultGroupWindow
	}
	return &Journal{
		path:   path,
		f:      f,
		w:      bufio.NewWriter(f),
		policy: policy,
		window: window,
		size:   st.Size(),
	}, nil
}

// Append journals one publish delta. On return the record is durable
// per the journal's sync policy (see SyncPolicy).
func (j *Journal) Append(rec DeltaRecord) error {
	line, err := encodeRecord(logRecord{
		Op:      "delta",
		Gen:     rec.Gen,
		Changed: rec.Changed,
		Removed: rec.Removed,
		Sidecar: rec.Sidecar,
	})
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("catalog: append to closed journal")
	}
	if _, err := j.w.Write(line); err != nil {
		return fmt.Errorf("catalog: append journal record: %w", err)
	}
	j.size += int64(len(line))
	j.appends++
	journalAppends.Inc()
	if err := j.w.Flush(); err != nil {
		return fmt.Errorf("catalog: flush journal: %w", err)
	}
	switch j.policy {
	case SyncAlways:
		return j.syncLocked()
	case SyncGroup:
		if time.Since(j.lastSync) >= j.window {
			return j.syncLocked()
		}
		// The group guarantee is "at most one window of acknowledged
		// records at risk" — which needs a deferred fsync for the last
		// record of a burst, not just an opportunistic one on the next
		// append (there may never be a next append).
		if !j.syncScheduled {
			j.syncScheduled = true
			delay := j.window - time.Since(j.lastSync)
			time.AfterFunc(delay, j.groupSync)
		}
	}
	return nil
}

// groupSync is the deferred group-commit fsync.
func (j *Journal) groupSync() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.syncScheduled = false
	if j.closed {
		return
	}
	// Appends flush as they go; the buffer is empty unless an append
	// failed, in which case syncing what reached the file is still the
	// best we can do.
	j.w.Flush()
	j.syncLocked()
}

func (j *Journal) syncLocked() error {
	start := time.Now()
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("catalog: sync journal: %w", err)
	}
	journalFsyncs.Inc()
	journalFsyncSeconds.ObserveSeconds(time.Since(start).Nanoseconds())
	j.syncs++
	j.lastSync = time.Now()
	return nil
}

// Sync forces buffered records to disk regardless of policy.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	if err := j.w.Flush(); err != nil {
		return fmt.Errorf("catalog: flush journal: %w", err)
	}
	return j.syncLocked()
}

// Size returns the journal's current byte size.
func (j *Journal) Size() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.size
}

// stats returns the size and fsync count under the lock (monitoring).
func (j *Journal) stats() (size int64, syncs uint64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.size, j.syncs
}

// Close flushes, fsyncs, and closes the journal.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	if err := j.w.Flush(); err != nil {
		j.f.Close()
		return fmt.Errorf("catalog: flush journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		j.f.Close()
		return fmt.Errorf("catalog: sync journal: %w", err)
	}
	if err := j.f.Close(); err != nil {
		return fmt.Errorf("catalog: close journal: %w", err)
	}
	return nil
}

// rotate atomically renames the journal file to toPath and starts a
// fresh, empty journal at the original path; appends before the call
// land in the old file, appends after in the new. The compactor uses
// this so checkpointing never blocks publishes for longer than a
// rename.
func (j *Journal) rotate(toPath string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("catalog: rotate closed journal")
	}
	// Best-effort flush + sync: every Append flushes before returning,
	// so the buffer is provably empty here — a flush error can only be a
	// sticky remnant of an append that already failed (and already
	// degraded the store). Rotation must still succeed then, because a
	// full-state checkpoint is exactly how a degraded store is repaired.
	j.w.Flush()
	j.f.Sync()
	if err := os.Rename(j.path, toPath); err != nil {
		return fmt.Errorf("catalog: rotate rename: %w", err)
	}
	if err := j.f.Close(); err != nil {
		return fmt.Errorf("catalog: rotate close: %w", err)
	}
	f, err := os.OpenFile(j.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("catalog: rotate reopen: %w", err)
	}
	j.f = f
	j.w = bufio.NewWriter(f)
	j.size = 0
	return nil
}

// ReplayJournal reads the journal at path and calls apply for each
// intact delta record in order. A missing file is an empty journal. A
// torn final line (crash mid-append) is dropped; corruption anywhere
// earlier — a bad checksum, bad JSON, a non-delta op, a record whose
// features fail validation — is an error, so a damaged journal can
// never half-load. It returns the number of records applied.
func ReplayJournal(path string, apply func(DeltaRecord) error) (int, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("catalog: open journal: %w", err)
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	lineNo, applied := 0, 0
	var pendingErr error
	for sc.Scan() {
		lineNo++
		if pendingErr != nil {
			// A bad line followed by more lines means mid-file corruption.
			return 0, pendingErr
		}
		rec, err := decodeLine(sc.Text())
		if err != nil {
			// Only fatal if another line follows (torn-tail tolerance).
			pendingErr = fmt.Errorf("catalog: journal line %d: %w", lineNo, err)
			continue
		}
		if rec.Op != "delta" {
			return 0, fmt.Errorf("catalog: journal line %d: unexpected op %q", lineNo, rec.Op)
		}
		for _, feat := range rec.Changed {
			if feat == nil {
				return 0, fmt.Errorf("catalog: journal line %d: null feature", lineNo)
			}
			if err := feat.Validate(); err != nil {
				return 0, fmt.Errorf("catalog: journal line %d: %w", lineNo, err)
			}
		}
		if err := apply(DeltaRecord{
			Gen:     rec.Gen,
			Changed: rec.Changed,
			Removed: rec.Removed,
			Sidecar: rec.Sidecar,
		}); err != nil {
			return 0, fmt.Errorf("catalog: journal line %d: %w", lineNo, err)
		}
		applied++
	}
	if err := sc.Err(); err != nil {
		return 0, fmt.Errorf("catalog: read journal: %w", err)
	}
	return applied, nil
}
