package catalog

import (
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"metamess/internal/geo"
)

// Snapshot is an immutable, index-carrying view of a catalog at one
// generation. It is built once — at publish time, or lazily on the
// first read after a mutation — and then shared by every search until
// the next mutation swaps in a successor, so queries touch no locks and
// copy no features.
//
// The snapshot is partitioned into shards by a hash of the feature ID:
// each shard owns its own ID-sorted feature slice, interned posting
// stores, spatial grid, and temporal index, built and patched
// independently of the others. Partitioning buys two things. Publish
// cost tracks the dirty shards only — applyDelta shares every clean
// shard with the predecessor snapshot by pointer and patches the rest
// in parallel — and search scatters across shards, each worker running
// the full planner/widening machinery over its shard before a single
// merge heap gathers the per-shard top-Ks.
//
// The features a snapshot exposes are private clones made at build
// time: later catalog mutations cannot reach them. In exchange, callers
// must treat everything a Snapshot returns as read-only.
type Snapshot struct {
	shards     []*Shard
	total      int
	generation uint64

	// all is the lazily merged, globally ID-sorted feature slice for
	// whole-catalog readers (persistence, validation, experiments);
	// search never needs it.
	allOnce sync.Once
	all     []*Feature
}

// Shard is one hash partition of a snapshot: an ID-sorted feature slice
// plus the secondary indexes over exactly those features. Positions —
// the integers the posting containers and candidate sets speak — index
// into the shard's own All(). Each index is an interned postingStore:
// terms (variable names, hierarchy parents, grid cells) map to dense
// uint32 IDs, each ID owning a compressed posting container, so query
// planning resolves strings once and then works in integers. A Shard is
// immutable and read-only, like everything else a Snapshot hands out.
// Feature-ID lookups binary-search the ID-sorted slice — no per-shard
// string map retaining every ID twice.
type Shard struct {
	features []*Feature
	// names indexes positions by current searchable variable name;
	// parents by the hierarchy parent of searchable variables.
	names    postingStore[string]
	parents  postingStore[string]
	spatial  spatialGrid
	temporal temporalIndex
}

// DefaultShardCount is the shard count used when a catalog is built
// with no explicit count: one shard per schedulable CPU, so a parallel
// publish and a scatter-gather search both saturate the machine.
func DefaultShardCount() int { return runtime.GOMAXPROCS(0) }

// shardIndex assigns a feature ID to a shard: FNV-1a over the ID bytes,
// reduced mod n. The hash is fixed (not seeded per process) so a given
// catalog partitions identically across runs, keeping publish benchmarks
// and shard-equivalence tests deterministic.
func shardIndex(id string, n int) int {
	if n <= 1 {
		return 0
	}
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= prime32
	}
	return int(h % uint32(n))
}

// newSnapshot clones the feature map and builds every shard, in
// parallel when there is more than one. Callers synchronize access to
// the map (the catalog holds its lock).
func newSnapshot(features map[string]*Feature, generation uint64, nShards int) *Snapshot {
	if nShards <= 0 {
		nShards = DefaultShardCount()
	}
	ids := make([][]string, nShards)
	for id := range features {
		si := shardIndex(id, nShards)
		ids[si] = append(ids[si], id)
	}
	s := &Snapshot{
		shards:     make([]*Shard, nShards),
		total:      len(features),
		generation: generation,
	}
	var wg sync.WaitGroup
	for si := range s.shards {
		sort.Strings(ids[si])
		if nShards == 1 {
			s.shards[si] = buildShard(features, ids[si])
			continue
		}
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			s.shards[si] = buildShard(features, ids[si])
		}(si)
	}
	wg.Wait()
	return s
}

// buildShard clones the listed features (ids pre-sorted) and builds the
// shard's interned indexes. Positions are handed to the builders in
// ascending order, so the frozen posting lists are born sorted.
func buildShard(features map[string]*Feature, ids []string) *Shard {
	sh := &Shard{features: make([]*Feature, len(ids))}
	names := newStoreBuilder[string]()
	parents := newStoreBuilder[string]()
	cells := newStoreBuilder[int32]()
	for i, id := range ids {
		f := features[id].Clone()
		sh.features[i] = f
		p := int32(i)
		for _, name := range f.SearchableNames() {
			names.add(name, p)
		}
		eachSearchableParent(f, func(parent string) { parents.add(parent, p) })
		for _, cell := range bboxCells(f.BBox) {
			cells.add(cell, p)
		}
	}
	n := len(ids)
	sh.names = names.build(n)
	sh.parents = parents.build(n)
	sh.spatial = spatialGrid{store: cells.build(n)}
	sh.temporal = buildTemporalIndex(sh.features)
	return sh
}

// eachSearchableParent visits the distinct hierarchy parents of f's
// searchable variables, in first-appearance order.
func eachSearchableParent(f *Feature, visit func(string)) {
	seen := make(map[string]bool)
	for _, v := range f.Variables {
		if v.Excluded || v.Parent == "" || seen[v.Parent] {
			continue
		}
		seen[v.Parent] = true
		visit(v.Parent)
	}
}

// applyDelta builds the successor snapshot incrementally. The delta is
// routed to shards by the same ID hash that partitioned the snapshot:
// a shard the delta does not touch is shared with s outright — pointer
// equality, no copies, no index work — and each dirty shard is patched
// independently (in parallel when there are several). The result is
// indistinguishable from newSnapshot over the same feature set
// (TestSnapshotApplyDeltaEquivalence); it just costs O(churn + dirty
// shards' index size) instead of O(catalog · variables).
//
// changed must be sorted by ID and ownership passes to the snapshot;
// removed must only name IDs present in s and disjoint from changed.
func (s *Snapshot) applyDelta(changed []*Feature, removed map[string]bool, generation uint64) *Snapshot {
	n := len(s.shards)
	changedBy := make([][]*Feature, n)
	for _, f := range changed {
		si := shardIndex(f.ID, n)
		changedBy[si] = append(changedBy[si], f) // keeps global ID order per shard
	}
	removedBy := make([]map[string]bool, n)
	for id := range removed {
		si := shardIndex(id, n)
		if removedBy[si] == nil {
			removedBy[si] = make(map[string]bool)
		}
		removedBy[si][id] = true
	}

	next := &Snapshot{
		shards:     make([]*Shard, n),
		generation: generation,
	}
	var wg sync.WaitGroup
	for si := range s.shards {
		if len(changedBy[si]) == 0 && len(removedBy[si]) == 0 {
			next.shards[si] = s.shards[si] // clean: shared with the predecessor
			continue
		}
		if n == 1 {
			next.shards[si] = s.shards[si].applyDelta(changedBy[si], removedBy[si])
			continue
		}
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			next.shards[si] = s.shards[si].applyDelta(changedBy[si], removedBy[si])
		}(si)
	}
	wg.Wait()
	for _, sh := range next.shards {
		next.total += len(sh.features)
	}
	return next
}

// applyDelta patches one shard: unchanged features are shared with sh
// (no re-clone), the ID-sorted slice is spliced, and each interned
// store is patched through its copy-on-write protocol — containers of
// untouched terms are shared with the predecessor when no position
// shifted, and only the touched terms' lists are rebuilt.
func (sh *Shard) applyDelta(changed []*Feature, removed map[string]bool) *Shard {
	replace := make(map[string]*Feature)
	var inserts []*Feature // sorted by ID (changed is)
	for _, f := range changed {
		if _, ok := sh.posOf(f.ID); ok {
			replace[f.ID] = f
		} else {
			inserts = append(inserts, f)
		}
	}

	// Splice the ID-sorted feature slice, tracking the old→new position
	// map and which positions carry new content ("dirty").
	old := sh.features
	newLen := len(old) - len(removed) + len(inserts)
	n := &Shard{features: make([]*Feature, 0, newLen)}
	posMap := make([]int32, len(old)) // old position → new, -1 when removed
	dirtyOld := make([]bool, len(old))
	var dirtyNew []int32
	i, j := 0, 0
	for i < len(old) || j < len(inserts) {
		takeOld := j >= len(inserts) || (i < len(old) && old[i].ID < inserts[j].ID)
		if takeOld {
			id := old[i].ID
			if removed[id] {
				posMap[i] = -1
				dirtyOld[i] = true
				i++
				continue
			}
			p := int32(len(n.features))
			if repl, ok := replace[id]; ok {
				n.features = append(n.features, repl)
				dirtyOld[i] = true
				dirtyNew = append(dirtyNew, p)
			} else {
				n.features = append(n.features, old[i])
			}
			posMap[i] = p
			i++
		} else {
			p := int32(len(n.features))
			n.features = append(n.features, inserts[j])
			dirtyNew = append(dirtyNew, p)
			j++
		}
	}
	// When nothing was inserted or removed, positions are unchanged and
	// untouched posting containers can be shared with sh outright.
	shifted := len(inserts) > 0 || len(removed) > 0

	// Names, parents, and grid cells whose posting lists the delta
	// touches: those of every dirty old feature (their entries leave)
	// and of every dirty new feature (their entries arrive).
	touchedNames := make(map[string]bool)
	touchedParents := make(map[string]bool)
	touchedCells := make(map[int32]bool)
	collect := func(f *Feature) {
		for _, name := range f.SearchableNames() {
			touchedNames[name] = true
		}
		eachSearchableParent(f, func(parent string) { touchedParents[parent] = true })
		for _, cell := range bboxCells(f.BBox) {
			touchedCells[cell] = true
		}
	}
	for p, dirty := range dirtyOld {
		if dirty {
			collect(old[p])
		}
	}
	for _, p := range dirtyNew {
		collect(n.features[p])
	}

	namePatch := sh.names.beginPatch(touchedNames, shifted, posMap, dirtyOld, newLen)
	parentPatch := sh.parents.beginPatch(touchedParents, shifted, posMap, dirtyOld, newLen)
	cellPatch := sh.spatial.store.beginPatch(touchedCells, shifted, posMap, dirtyOld, newLen)
	for _, p := range dirtyNew {
		f := n.features[p]
		for _, name := range f.SearchableNames() {
			namePatch.add(name, p)
		}
		eachSearchableParent(f, func(parent string) { parentPatch.add(parent, p) })
		for _, cell := range bboxCells(f.BBox) {
			cellPatch.add(cell, p)
		}
	}
	n.names = namePatch.finish(newLen)
	n.parents = parentPatch.finish(newLen)
	n.spatial = spatialGrid{store: cellPatch.finish(newLen)}

	n.temporal = sh.temporal.applyDelta(n.features, posMap, dirtyOld, dirtyNew)
	return n
}

// Len returns the number of features in the snapshot, across all shards.
func (s *Snapshot) Len() int { return s.total }

// Generation returns the catalog generation the snapshot was built at.
func (s *Snapshot) Generation() uint64 { return s.generation }

// Shards returns the snapshot's shards. The slice and the shards are
// read-only; shard order is stable for the lifetime of the catalog, and
// a feature's shard depends only on its ID and the shard count.
func (s *Snapshot) Shards() []*Shard { return s.shards }

// NumShards returns the shard count.
func (s *Snapshot) NumShards() int { return len(s.shards) }

// ShardSizes returns the per-shard feature counts, in shard order — the
// balance view /stats serves.
func (s *Snapshot) ShardSizes() []int {
	sizes := make([]int, len(s.shards))
	for i, sh := range s.shards {
		sizes[i] = len(sh.features)
	}
	return sizes
}

// All returns the snapshot's features sorted by ID, merged across
// shards. The merge is computed once, on first use, and cached: search
// never calls this — only whole-catalog readers (persistence,
// validation, experiment sweeps) do. Callers must not mutate the slice
// or the features; use Catalog.All for private copies.
func (s *Snapshot) All() []*Feature {
	s.allOnce.Do(func() {
		if len(s.shards) == 1 {
			s.all = s.shards[0].features
			return
		}
		merged := make([]*Feature, 0, s.total)
		for _, sh := range s.shards {
			merged = append(merged, sh.features...)
		}
		sort.Slice(merged, func(i, j int) bool { return merged[i].ID < merged[j].ID })
		s.all = merged
	})
	return s.all
}

// ByID returns the feature with the given ID without taking a lock or
// cloning: one hash to pick the shard, one binary search inside it —
// the serving-path alternative to Catalog.Get, whose per-call deep
// clone is wasted on read-only consumers. Read-only.
func (s *Snapshot) ByID(id string) (*Feature, bool) {
	return s.shards[shardIndex(id, len(s.shards))].ByID(id)
}

// Len returns the number of features in the shard.
func (sh *Shard) Len() int { return len(sh.features) }

// All returns the shard's shared feature slice, sorted by ID. Read-only.
func (sh *Shard) All() []*Feature { return sh.features }

// At returns the feature at a shard position. Read-only.
func (sh *Shard) At(i int32) *Feature { return sh.features[i] }

// posOf binary-searches the ID-sorted feature slice for id.
func (sh *Shard) posOf(id string) (int32, bool) {
	i := sort.Search(len(sh.features), func(i int) bool { return sh.features[i].ID >= id })
	if i < len(sh.features) && sh.features[i].ID == id {
		return int32(i), true
	}
	return 0, false
}

// ByID returns the shard's feature with the given ID. Read-only.
func (sh *Shard) ByID(id string) (*Feature, bool) {
	i, ok := sh.posOf(id)
	if !ok {
		return nil, false
	}
	return sh.features[i], true
}

// VariableID resolves a searchable variable name to the shard's dense
// term ID — one map probe, done once per (query, shard).
func (sh *Shard) VariableID(name string) (uint32, bool) { return sh.names.id(name) }

// VariablePostings returns the compressed posting container for a term
// ID obtained from VariableID. Read-only.
func (sh *Shard) VariablePostings(id uint32) Postings { return sh.names.at(id) }

// ParentID resolves a hierarchy parent name to the shard's dense term ID.
func (sh *Shard) ParentID(name string) (uint32, bool) { return sh.parents.id(name) }

// ParentPostings returns the posting container for a parent term ID.
// Read-only.
func (sh *Shard) ParentPostings(id uint32) Postings { return sh.parents.at(id) }

// WithVariable returns the shard positions of features whose searchable
// variables include name, sorted ascending, in a freshly allocated
// slice. Convenience wrapper over VariableID/VariablePostings for tests
// and offline readers; the query path uses the containers directly.
func (sh *Shard) WithVariable(name string) []int32 {
	if l, ok := sh.names.lookup(name); ok && l.Len() > 0 {
		return l.AppendTo(nil)
	}
	return nil
}

// WithParent returns the shard positions of features having a
// searchable variable whose hierarchy parent is name, sorted ascending,
// in a freshly allocated slice. Wrapper, like WithVariable.
func (sh *Shard) WithParent(name string) []int32 {
	if l, ok := sh.parents.lookup(name); ok && l.Len() > 0 {
		return l.AppendTo(nil)
	}
	return nil
}

// SpatialCandidatesAppend appends to dst the shard positions of every
// feature whose scoring distance from the query box (BBox.DistanceKm
// for point-sized boxes, BBox.DistanceToBoxKm otherwise) can be at most
// maxKm, and returns the extended slice. The set is a superset of the
// truth — grid cells are included conservatively — so pruning against
// it never loses an exact result. Positions come back in unspecified
// order and may repeat (a feature spanning several visited cells);
// callers deduplicate. ok is false when the radius is too large to
// prune (callers must treat every feature as a candidate).
func (sh *Shard) SpatialCandidatesAppend(query geo.BBox, maxKm float64, dst []int32) (pos []int32, ok bool) {
	return sh.spatial.candidates(query, maxKm, dst)
}

// SpatialCandidates is SpatialCandidatesAppend into a fresh slice.
func (sh *Shard) SpatialCandidates(query geo.BBox, maxKm float64) (pos []int32, ok bool) {
	return sh.spatial.candidates(query, maxKm, nil)
}

// TimeCandidatesAppend appends to dst the shard positions of every
// feature whose temporal gap from the query range (TimeRange.Distance)
// can be at most maxGap, again conservatively and in unspecified order.
// ok is false when the gap is too large to prune.
func (sh *Shard) TimeCandidatesAppend(query geo.TimeRange, maxGap time.Duration, dst []int32) (pos []int32, ok bool) {
	return sh.temporal.candidates(query, maxGap, dst)
}

// TimeCandidates is TimeCandidatesAppend into a fresh slice.
func (sh *Shard) TimeCandidates(query geo.TimeRange, maxGap time.Duration) (pos []int32, ok bool) {
	return sh.temporal.candidates(query, maxGap, nil)
}

// --- spatial grid ---------------------------------------------------

// The spatial index is a fixed geohash-style grid over the globe:
// every feature registers in each cell its bounding box overlaps, and a
// query visits the cells of its padded box. Padding is conservative —
// derived from lower bounds on the haversine metric the scorer itself
// uses — so the candidate set is always a superset of the features
// within maxKm.
const (
	gridCellDeg = 2.0
	gridCols    = int32(360 / gridCellDeg)
	gridRows    = int32(180 / gridCellDeg)
	// kmPerDegLat underestimates a degree of latitude (true value
	// ~111.195 km on the scoring sphere), inflating the pad.
	kmPerDegLat = 110.0
	// maxPruneKm: beyond this radius the grid stops pruning entirely.
	maxPruneKm = 15000.0
	gridPadDeg = 0.01
)

// spatialGrid interns occupied cell keys (row*gridCols+col) into the
// same compressed posting containers the term indexes use.
type spatialGrid struct {
	store postingStore[int32]
}

func gridRow(lat float64) int32 {
	r := int32((lat + 90) / gridCellDeg)
	if r < 0 {
		r = 0
	}
	if r >= gridRows {
		r = gridRows - 1
	}
	return r
}

func gridCol(lon float64) int32 {
	c := int32((lon + 180) / gridCellDeg)
	if c < 0 {
		c = 0
	}
	if c >= gridCols {
		c = gridCols - 1
	}
	return c
}

// bboxCells returns the grid cells a bounding box registers in; an
// empty extent scores zero on the space dimension and occupies no cell.
func bboxCells(b geo.BBox) []int32 {
	if b.IsEmpty() {
		return nil
	}
	r0, r1 := gridRow(b.MinLat), gridRow(b.MaxLat)
	c0, c1 := gridCol(b.MinLon), gridCol(b.MaxLon)
	cells := make([]int32, 0, (r1-r0+1)*(c1-c0+1))
	for r := r0; r <= r1; r++ {
		for c := c0; c <= c1; c++ {
			cells = append(cells, r*gridCols+c)
		}
	}
	return cells
}

// candidates visits the cells of the query box padded by maxKm,
// appending the occupants to dst.
//
// Latitude pad: haversine distance is at least R·Δφ, so a feature
// within maxKm clamps to a point within maxKm/kmPerDegLat degrees of
// the query's latitude span. Longitude pad: distance is at least
// 2R·sqrt(cosφ1·cosφ2)·sin(Δλ/2), giving Δλ ≤ 2·asin(maxKm/(2R·sqrt(cc)))
// with cc lower-bounded over the padded latitude band; near the poles
// (or when the bound degenerates) every column is visited. Columns wrap
// across the antimeridian, matching haversine's wrapped Δλ.
func (g spatialGrid) candidates(query geo.BBox, maxKm float64, dst []int32) ([]int32, bool) {
	if maxKm < 0 || math.IsInf(maxKm, 1) || maxKm >= maxPruneKm {
		return dst, false
	}
	latPad := maxKm/kmPerDegLat + gridPadDeg
	latLo := query.MinLat - latPad
	latHi := query.MaxLat + latPad

	const degToRad = math.Pi / 180
	a1 := math.Max(math.Abs(query.MinLat), math.Abs(query.MaxLat))
	a2 := math.Min(math.Max(math.Abs(latLo), math.Abs(latHi)), 90)
	cc := math.Cos(a1*degToRad) * math.Cos(a2*degToRad)

	allCols := false
	var lonPad float64
	if cc <= 1e-6 {
		allCols = true
	} else {
		sinHalf := maxKm / (2 * geo.EarthRadiusKm * math.Sqrt(cc))
		if sinHalf >= 1 {
			allCols = true
		} else {
			lonPad = 2*math.Asin(sinHalf)/degToRad + gridPadDeg
		}
	}

	r0, r1 := gridRow(latLo), gridRow(latHi)
	var colBuf [gridCols]int32
	cols := colBuf[:0]
	if allCols || (query.MaxLon+lonPad)-(query.MinLon-lonPad) >= 360 {
		for c := int32(0); c < gridCols; c++ {
			cols = append(cols, c)
		}
	} else {
		// Wrapped column range: pad may cross the antimeridian.
		c0 := int32(math.Floor((query.MinLon - lonPad + 180) / gridCellDeg))
		c1 := int32(math.Floor((query.MaxLon + lonPad + 180) / gridCellDeg))
		for c := c0; c <= c1; c++ {
			cols = append(cols, ((c%gridCols)+gridCols)%gridCols)
		}
	}

	for r := r0; r <= r1; r++ {
		for _, c := range cols {
			if l, ok := g.store.lookup(r*gridCols + c); ok {
				dst = l.AppendTo(dst)
			}
		}
	}
	return dst, true
}

// --- temporal interval index ----------------------------------------

// The temporal index keeps the features sorted by interval start
// (ascending) and by interval end (descending). A feature is within
// maxGap of query [qs,qe] iff Start ≤ qe+maxGap and End ≥ qs−maxGap;
// binary search on one order yields a prefix, the other predicate
// filters it. Zero time ranges are indexed at their literal (year-1)
// endpoints, matching TimeRange.Distance's scoring semantics exactly.
type temporalIndex struct {
	byStart []int32
	starts  []time.Time // key array aligned with byStart
	byEnd   []int32
	ends    []time.Time // key array aligned with byEnd
	startAt []time.Time // position-indexed Start
	endAt   []time.Time // position-indexed End
}

func buildTemporalIndex(features []*Feature) temporalIndex {
	n := len(features)
	t := temporalIndex{
		byStart: make([]int32, n),
		byEnd:   make([]int32, n),
		startAt: make([]time.Time, n),
		endAt:   make([]time.Time, n),
	}
	for i, f := range features {
		t.byStart[i] = int32(i)
		t.byEnd[i] = int32(i)
		t.startAt[i] = f.Time.Start
		t.endAt[i] = f.Time.End
	}
	sort.SliceStable(t.byStart, func(a, b int) bool {
		return t.startAt[t.byStart[a]].Before(t.startAt[t.byStart[b]])
	})
	sort.SliceStable(t.byEnd, func(a, b int) bool {
		return t.endAt[t.byEnd[a]].After(t.endAt[t.byEnd[b]])
	})
	t.starts = make([]time.Time, n)
	t.ends = make([]time.Time, n)
	for i, p := range t.byStart {
		t.starts[i] = t.startAt[p]
	}
	for i, p := range t.byEnd {
		t.ends[i] = t.endAt[p]
	}
	return t
}

// applyDelta patches the temporal index for a successor feature slice:
// surviving entries are remapped in order (posMap is monotone, so both
// sorted orders are preserved), and each dirty feature is merge-inserted
// at the position a fresh stable sort would have given it — ascending
// position among equal keys. The key arrays are then re-derived in one
// linear pass.
func (t temporalIndex) applyDelta(features []*Feature, posMap []int32, dirtyOld []bool, dirtyNew []int32) temporalIndex {
	n := len(features)
	out := temporalIndex{
		byStart: make([]int32, 0, n),
		byEnd:   make([]int32, 0, n),
		startAt: make([]time.Time, n),
		endAt:   make([]time.Time, n),
	}
	for i, f := range features {
		out.startAt[i] = f.Time.Start
		out.endAt[i] = f.Time.End
	}
	for _, p := range t.byStart {
		if posMap[p] >= 0 && !dirtyOld[p] {
			out.byStart = append(out.byStart, posMap[p])
		}
	}
	for _, p := range t.byEnd {
		if posMap[p] >= 0 && !dirtyOld[p] {
			out.byEnd = append(out.byEnd, posMap[p])
		}
	}
	for _, p := range dirtyNew {
		s := out.startAt[p]
		i := sort.Search(len(out.byStart), func(i int) bool {
			q := out.byStart[i]
			if !out.startAt[q].Equal(s) {
				return out.startAt[q].After(s)
			}
			return q > p
		})
		out.byStart = append(out.byStart, 0)
		copy(out.byStart[i+1:], out.byStart[i:])
		out.byStart[i] = p

		e := out.endAt[p]
		i = sort.Search(len(out.byEnd), func(i int) bool {
			q := out.byEnd[i]
			if !out.endAt[q].Equal(e) {
				return out.endAt[q].Before(e)
			}
			return q > p
		})
		out.byEnd = append(out.byEnd, 0)
		copy(out.byEnd[i+1:], out.byEnd[i:])
		out.byEnd[i] = p
	}
	out.starts = make([]time.Time, n)
	out.ends = make([]time.Time, n)
	for i, p := range out.byStart {
		out.starts[i] = out.startAt[p]
	}
	for i, p := range out.byEnd {
		out.ends[i] = out.endAt[p]
	}
	return out
}

func (t temporalIndex) candidates(query geo.TimeRange, maxGap time.Duration, dst []int32) ([]int32, bool) {
	if maxGap < 0 {
		return dst, false
	}
	latestStart := query.End.Add(maxGap)
	earliestEnd := query.Start.Add(-maxGap)

	// Prefix of byStart with Start ≤ latestStart.
	n1 := sort.Search(len(t.starts), func(i int) bool { return t.starts[i].After(latestStart) })
	// Prefix of byEnd with End ≥ earliestEnd.
	n2 := sort.Search(len(t.ends), func(i int) bool { return t.ends[i].Before(earliestEnd) })

	if n1 <= n2 {
		for i := 0; i < n1; i++ {
			p := t.byStart[i]
			if !t.endAt[p].Before(earliestEnd) {
				dst = append(dst, p)
			}
		}
	} else {
		for i := 0; i < n2; i++ {
			p := t.byEnd[i]
			if !t.startAt[p].After(latestStart) {
				dst = append(dst, p)
			}
		}
	}
	return dst, true
}
