package catalog

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentReadersAndWriters hammers the catalog from parallel
// goroutines: upserts, deletes, index queries, table extraction, and
// publishes, verifying no data race (run under -race) and that the final
// state is consistent.
func TestConcurrentReadersAndWriters(t *testing.T) {
	c := New()
	for i := 0; i < 50; i++ {
		if err := c.Upsert(feat(fmt.Sprintf("seed-%02d.csv", i), "salinity", "water_temperature")); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	const workers = 8
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				switch i % 6 {
				case 0:
					_ = c.Upsert(feat(fmt.Sprintf("w%d-%03d.csv", w, i), "turbidity"))
				case 1:
					c.Delete(IDForPath(fmt.Sprintf("w%d-%03d.csv", w, i-1)))
				case 2:
					_ = c.DatasetsWithVariable("salinity")
					_ = c.DatasetsWithParent("fluorescence")
				case 3:
					if f, ok := c.Get(IDForPath("seed-00.csv")); ok && f.Path != "seed-00.csv" {
						t.Error("corrupted read")
					}
				case 4:
					_ = c.VariableNameCounts()
					_ = c.Len()
				case 5:
					_ = c.ToTable()
				}
			}
		}(w)
	}
	wg.Wait()

	// The 50 seed features must have survived untouched.
	for i := 0; i < 50; i++ {
		id := IDForPath(fmt.Sprintf("seed-%02d.csv", i))
		f, ok := c.Get(id)
		if !ok {
			t.Fatalf("seed feature %d lost", i)
		}
		if len(f.Variables) != 2 {
			t.Fatalf("seed feature %d corrupted: %d variables", i, len(f.Variables))
		}
	}
	// Index and store agree.
	for _, id := range c.DatasetsWithVariable("salinity") {
		if _, ok := c.Get(id); !ok {
			t.Errorf("index points at missing feature %s", id)
		}
	}
}

// TestConcurrentPublishAndSearchReads interleaves ReplaceAll (publish)
// with read traffic, the working/published handoff under load.
func TestConcurrentPublishAndSearchReads(t *testing.T) {
	published := New()
	_ = published.Upsert(feat("initial.csv", "salinity"))
	var wg sync.WaitGroup
	stop := make(chan struct{})

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			working := New()
			for j := 0; j <= i%5; j++ {
				_ = working.Upsert(feat(fmt.Sprintf("gen%d-%d.csv", i, j), "salinity"))
			}
			published.ReplaceAll(working)
		}
		close(stop)
	}()

	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ids := published.DatasetsWithVariable("salinity")
				for _, id := range ids {
					// A feature listed by the index may legitimately vanish
					// between calls (publish swapped); it must never be
					// returned in a corrupted state.
					if f, ok := published.Get(id); ok && len(f.Variables) == 0 {
						t.Error("corrupted feature during publish")
						return
					}
				}
				_ = published.Generation()
			}
		}()
	}
	wg.Wait()
	if published.Len() == 0 {
		t.Error("final publish lost all features")
	}
}
