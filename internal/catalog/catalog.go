package catalog

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"metamess/internal/table"
)

// Catalog is an in-memory feature store with secondary indexes. It is
// safe for concurrent use; wrangling writes take the exclusive lock,
// while search reads go through an immutable published Snapshot swapped
// in atomically, so the read path takes no locks at all.
type Catalog struct {
	mu       sync.RWMutex
	features map[string]*Feature
	// byName indexes dataset IDs by current searchable variable name;
	// byParent indexes them by the hierarchy parent of searchable
	// variables, so querying a parent concept can use the index too.
	byName   map[string]map[string]bool
	byParent map[string]map[string]bool
	// generation counts mutations, letting long-running searchers detect
	// that a published catalog replaced this one.
	generation uint64
	// snap caches the current immutable snapshot. Mutations clear it;
	// ReplaceAll (publish) rebuilds it eagerly; Snapshot() rebuilds it
	// lazily otherwise. Readers load it with a single atomic pointer
	// load — the lock-free search fast path.
	snap atomic.Pointer[Snapshot]
	// shards is the snapshot partition count, fixed at construction so
	// every snapshot of this catalog shards identically (ApplyDelta can
	// then share clean shards between successive snapshots).
	shards int
}

// New returns an empty catalog with the default snapshot shard count
// (one per schedulable CPU).
func New() *Catalog { return NewSharded(0) }

// NewSharded returns an empty catalog whose snapshots are partitioned
// into the given number of shards (0 or negative = DefaultShardCount).
// The count is fixed for the catalog's lifetime.
func NewSharded(shards int) *Catalog {
	if shards <= 0 {
		shards = DefaultShardCount()
	}
	return &Catalog{
		features: make(map[string]*Feature),
		byName:   make(map[string]map[string]bool),
		byParent: make(map[string]map[string]bool),
		shards:   shards,
	}
}

// ShardCount returns the snapshot partition count.
func (c *Catalog) ShardCount() int { return c.shards }

// Len returns the number of features.
func (c *Catalog) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.features)
}

// Generation returns the mutation counter.
func (c *Catalog) Generation() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.generation
}

// Upsert validates and stores a feature, replacing any previous feature
// with the same ID. The catalog stores a private clone, so callers may
// keep mutating their copy.
func (c *Catalog) Upsert(f *Feature) error {
	if err := f.Validate(); err != nil {
		return err
	}
	clone := f.Clone()
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.features[clone.ID]; ok {
		c.unindexLocked(old)
	}
	c.features[clone.ID] = clone
	c.indexLocked(clone)
	c.generation++
	c.snap.Store(nil)
	return nil
}

// upsertOwned is Upsert for callers that hand over ownership of a
// freshly built feature (checkpoint and journal recovery): the feature
// is validated and indexed but not cloned, so a 2000-feature replay
// does not pay a second copy of every feature it just decoded.
func (c *Catalog) upsertOwned(f *Feature) error {
	if err := f.Validate(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.features[f.ID]; ok {
		c.unindexLocked(old)
	}
	c.features[f.ID] = f
	c.indexLocked(f)
	c.generation++
	c.snap.Store(nil)
	return nil
}

// Snapshot returns the catalog's current immutable snapshot, building
// it (once) if a mutation invalidated the cached one. The fast path is
// a single atomic load; concurrent callers after a mutation serialize
// on the write lock and share the rebuilt snapshot.
func (c *Catalog) Snapshot() *Snapshot {
	if s := c.snap.Load(); s != nil {
		return s
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if s := c.snap.Load(); s != nil {
		return s
	}
	s := newSnapshot(c.features, c.generation, c.shards)
	c.snap.Store(s)
	return s
}

// Get returns a copy of the feature with the given ID.
func (c *Catalog) Get(id string) (*Feature, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	f, ok := c.features[id]
	if !ok {
		return nil, false
	}
	return f.Clone(), true
}

// Delete removes a feature; it reports whether the ID was present.
func (c *Catalog) Delete(id string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	f, ok := c.features[id]
	if !ok {
		return false
	}
	c.unindexLocked(f)
	delete(c.features, id)
	c.generation++
	c.snap.Store(nil)
	return true
}

// All returns copies of every feature, ordered by ID for determinism.
// Callers that only read should prefer Snapshot().All(), which shares
// the immutable snapshot's features instead of cloning the catalog.
func (c *Catalog) All() []*Feature {
	c.mu.RLock()
	defer c.mu.RUnlock()
	ids := make([]string, 0, len(c.features))
	for id := range c.features {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]*Feature, len(ids))
	for i, id := range ids {
		out[i] = c.features[id].Clone()
	}
	return out
}

// IDs returns all feature IDs, sorted.
func (c *Catalog) IDs() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	ids := make([]string, 0, len(c.features))
	for id := range c.features {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// DatasetsWithVariable returns the IDs of datasets whose searchable
// variables include name, sorted.
func (c *Catalog) DatasetsWithVariable(name string) []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	set := c.byName[name]
	out := make([]string, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// DatasetsWithParent returns the IDs of datasets having a searchable
// variable whose hierarchy parent is name, sorted.
func (c *Catalog) DatasetsWithParent(name string) []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	set := c.byParent[name]
	out := make([]string, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// VariableNameCounts tallies every *current* variable name (including
// excluded ones) across the catalog — the facet the wrangling chain and
// discovery cluster over.
func (c *Catalog) VariableNameCounts() []table.ValueCount {
	c.mu.RLock()
	defer c.mu.RUnlock()
	counts := make(map[string]int)
	for _, f := range c.features {
		for _, v := range f.Variables {
			counts[v.Name]++
		}
	}
	out := make([]table.ValueCount, 0, len(counts))
	for v, n := range counts {
		out = append(out, table.ValueCount{Value: v, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Value < out[j].Value
	})
	return out
}

// DistinctVariableNames returns the sorted distinct current names.
func (c *Catalog) DistinctVariableNames() []string {
	counts := c.VariableNameCounts()
	out := make([]string, len(counts))
	for i, vc := range counts {
		out[i] = vc.Value
	}
	sort.Strings(out)
	return out
}

// MutateVariables applies fn to every feature's variable list under the
// write lock; fn returns true if it changed the variables. The method
// reindexes changed features and returns how many features changed.
// This is the hook the wrangling chain uses to write transformation
// results back from the working grid into the catalog.
func (c *Catalog) MutateVariables(fn func(f *Feature) bool) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	changed := 0
	for _, f := range c.features {
		c.unindexLocked(f)
		if fn(f) {
			changed++
		}
		c.indexLocked(f)
	}
	if changed > 0 {
		c.generation++
	}
	// Invalidate unconditionally: fn may have mutated without
	// reporting a change.
	c.snap.Store(nil)
	return changed
}

// MutateVariablesOf is MutateVariables restricted to the given feature
// IDs (absent IDs are ignored): the delta write path, which touches and
// reindexes only the features a re-wrangle actually changed instead of
// walking the whole catalog.
func (c *Catalog) MutateVariablesOf(ids []string, fn func(f *Feature) bool) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	changed := 0
	for _, id := range ids {
		f, ok := c.features[id]
		if !ok {
			continue
		}
		c.unindexLocked(f)
		if fn(f) {
			changed++
		}
		c.indexLocked(f)
	}
	if len(ids) > 0 {
		if changed > 0 {
			c.generation++
		}
		// Invalidate unconditionally: fn may have mutated without
		// reporting a change.
		c.snap.Store(nil)
	}
	return changed
}

// StatView returns the stored stat fingerprint of a feature — size,
// modification time, scan time, and content hash — without cloning the
// feature. The incremental scanner consults it for every candidate
// file, so the unchanged fast path allocates nothing.
func (c *Catalog) StatView(id string) (bytes int64, modTime, scannedAt time.Time, hash string, ok bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	f, found := c.features[id]
	if !found {
		return 0, time.Time{}, time.Time{}, "", false
	}
	return f.Bytes, f.ModTime, f.ScannedAt, f.ContentHash, true
}

// SetScanStamp updates a feature's ScannedAt bookkeeping in place (no
// clone, no reindex, no generation bump — ScannedAt is not dataset
// content). The scanner calls it after verifying an unchanged file by
// content hash, so the file's stat fingerprint is trusted on the next
// run instead of being re-hashed forever.
func (c *Catalog) SetScanStamp(id string, scannedAt time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f, ok := c.features[id]
	if !ok {
		return
	}
	f.ScannedAt = scannedAt
	// The cached snapshot (if any) holds clones with the old stamp;
	// drop it so readers never observe a stale ScannedAt.
	c.snap.Store(nil)
}

// restoreGeneration pins the catalog's mutation counter to a recovered
// publish generation (store recovery), so generation-keyed caches and
// logs stay continuous across a restart. Any cached snapshot is dropped
// so the next Snapshot() carries the restored stamp.
func (c *Catalog) restoreGeneration(gen uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.generation = gen
	c.snap.Store(nil)
}

// Clone returns a deep copy of the catalog (used by loading and tests).
func (c *Catalog) Clone() *Catalog {
	c.mu.RLock()
	defer c.mu.RUnlock()
	n := New()
	for id, f := range c.features {
		clone := f.Clone()
		n.features[id] = clone
		n.indexLocked(clone)
	}
	n.generation = c.generation
	return n
}

// DiffTo compares this catalog (the published state) against next (the
// working state) and returns the exact publish delta: clones of every
// feature of next that is new or content-changed relative to c, and the
// IDs present in c but absent from next. ScannedAt is ignored (see
// Feature.ContentEquals), so a re-scan that merely re-verified files
// yields an empty delta. Unchanged features are never cloned. Both
// result slices are sorted by ID.
func (c *Catalog) DiffTo(next *Catalog) (changed []*Feature, removed []string) {
	// Lock ordering: the published catalog first, then the working one.
	// The only caller is the chain's Publish step, which owns both.
	c.mu.RLock()
	defer c.mu.RUnlock()
	next.mu.RLock()
	defer next.mu.RUnlock()
	for id, f := range next.features {
		old, ok := c.features[id]
		if ok && old.ContentEquals(f) {
			continue
		}
		changed = append(changed, f.Clone())
	}
	for id := range c.features {
		if _, ok := next.features[id]; !ok {
			removed = append(removed, id)
		}
	}
	sort.Slice(changed, func(i, j int) bool { return changed[i].ID < changed[j].ID })
	sort.Strings(removed)
	return changed, removed
}

// ApplyDelta upserts the changed features and deletes the removed IDs
// as one atomic publish: the generation moves exactly once, and the new
// snapshot is patched incrementally from the previous one (features
// outside the delta are shared, not re-cloned; the indexes are updated
// in place of a rebuild). An empty delta is a strict no-op — the
// generation and the served snapshot stay unchanged, so a re-wrangle
// that found nothing to do invalidates no caches.
//
// ApplyDelta takes ownership of the passed features: callers must hand
// in private clones (DiffTo does) and not touch them afterwards. It
// reports whether the catalog changed.
func (c *Catalog) ApplyDelta(changed []*Feature, removed []string) (bool, error) {
	if len(changed) == 0 && len(removed) == 0 {
		return false, nil
	}
	for _, f := range changed {
		if err := f.Validate(); err != nil {
			return false, err
		}
	}
	// The incremental snapshot patch splices ID-sorted feature slices
	// and binary-searches them, so the delta must be in ID order;
	// enforce it here rather than trusting every caller (journal replay
	// hands in publish-order deltas).
	sort.Slice(changed, func(i, j int) bool { return changed[i].ID < changed[j].ID })
	c.mu.Lock()
	defer c.mu.Unlock()
	prev := c.snap.Load()
	changedIDs := make(map[string]bool, len(changed))
	for _, f := range changed {
		changedIDs[f.ID] = true
	}
	removedSet := make(map[string]bool, len(removed))
	for _, id := range removed {
		if _, ok := c.features[id]; !ok {
			continue // deleting an absent ID is a no-op
		}
		if changedIDs[id] {
			continue // an ID both removed and upserted resolves to upsert
		}
		removedSet[id] = true
	}
	if len(changed) == 0 && len(removedSet) == 0 {
		return false, nil
	}
	for id := range removedSet {
		f := c.features[id]
		c.unindexLocked(f)
		delete(c.features, id)
	}
	for _, f := range changed {
		if old, ok := c.features[f.ID]; ok {
			c.unindexLocked(old)
		}
		// The map gets its own clone; the snapshot keeps the caller's
		// instance, so later in-place mutations of the map copy (e.g.
		// MutateVariables) can never reach the published snapshot.
		clone := f.Clone()
		c.features[f.ID] = clone
		c.indexLocked(clone)
	}
	c.generation++
	// Patch the previous snapshot when the delta is small relative to
	// the catalog; fall back to a full rebuild when there is no live
	// snapshot or the delta dominates (a patch would do more merge work
	// than building afresh).
	if prev != nil && len(changed)+len(removedSet) <= len(c.features)/2+1 {
		c.snap.Store(prev.applyDelta(changed, removedSet, c.generation))
	} else {
		c.snap.Store(newSnapshot(c.features, c.generation, c.shards))
	}
	return true, nil
}

// ApplyDeltaAt is ApplyDelta for the replication apply path: instead of
// advancing the generation by one it pins the catalog to gen — the
// stamp the leader journaled for this delta — so a follower serves the
// exact generation numbers its leader published and generation-keyed
// caches agree across the fleet. gen must be ahead of the catalog's
// current generation. Unlike ApplyDelta, a delta that resolves to
// nothing still advances the generation: the follower must reach the
// leader's stamp even when (idempotent re-delivery, deletes of absent
// IDs) there is no content to change. Takes ownership of the passed
// features, like ApplyDelta.
func (c *Catalog) ApplyDeltaAt(gen uint64, changed []*Feature, removed []string) error {
	for _, f := range changed {
		if err := f.Validate(); err != nil {
			return err
		}
	}
	sort.Slice(changed, func(i, j int) bool { return changed[i].ID < changed[j].ID })
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen <= c.generation {
		return fmt.Errorf("catalog: replicated generation %d not ahead of catalog generation %d", gen, c.generation)
	}
	prev := c.snap.Load()
	changedIDs := make(map[string]bool, len(changed))
	for _, f := range changed {
		changedIDs[f.ID] = true
	}
	removedSet := make(map[string]bool, len(removed))
	for _, id := range removed {
		if _, ok := c.features[id]; !ok {
			continue
		}
		if changedIDs[id] {
			continue
		}
		removedSet[id] = true
	}
	for id := range removedSet {
		f := c.features[id]
		c.unindexLocked(f)
		delete(c.features, id)
	}
	for _, f := range changed {
		if old, ok := c.features[f.ID]; ok {
			c.unindexLocked(old)
		}
		clone := f.Clone()
		c.features[f.ID] = clone
		c.indexLocked(clone)
	}
	c.generation = gen
	if prev != nil && len(changed)+len(removedSet) <= len(c.features)/2+1 {
		c.snap.Store(prev.applyDelta(changed, removedSet, c.generation))
	} else {
		c.snap.Store(newSnapshot(c.features, c.generation, c.shards))
	}
	return nil
}

// ReplaceAll swaps this catalog's contents for those of other — the
// wholesale load path (catalog snapshots from disk). The source catalog
// is left untouched. The new snapshot is built eagerly here, so the
// first search after a load pays no build cost and in-flight searches
// keep their consistent view. The wrangling chain's Publish step uses
// DiffTo + ApplyDelta instead, so its cost tracks churn, not size.
func (c *Catalog) ReplaceAll(other *Catalog) {
	clone := other.Clone()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.features = clone.features
	c.byName = clone.byName
	c.byParent = clone.byParent
	c.generation++
	c.snap.Store(newSnapshot(c.features, c.generation, c.shards))
}

// SeedFrom is ReplaceAll without the eager snapshot build — the
// warm-restart seed for the *working* catalog, which the wrangling
// chain reads through ForEach and mutates in place, so a snapshot
// built here would be thrown away by the first transform step.
func (c *Catalog) SeedFrom(other *Catalog) {
	clone := other.Clone()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.features = clone.features
	c.byName = clone.byName
	c.byParent = clone.byParent
	c.generation++
	c.snap.Store(nil)
}

// ForEach calls fn for every feature in ID order under the read lock,
// without cloning. fn must treat the feature as read-only and must not
// retain it past the call — this is the cheap full-catalog read the
// wrangling chain's bookkeeping passes (mess metric, grid extraction,
// publish diff) use instead of forcing a snapshot rebuild after every
// mutation step.
func (c *Catalog) ForEach(fn func(f *Feature)) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	ids := make([]string, 0, len(c.features))
	for id := range c.features {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		fn(c.features[id])
	}
}

// ToTable extracts the catalog's variable occurrences into a refine grid
// with columns (dataset, source, field, unit): the "extract catalog
// entries to Google Refine" arrow in the poster's discovery figure.
// Rows are ordered by dataset ID then variable position.
func (c *Catalog) ToTable() *table.Table {
	t := table.MustNew("dataset", "source", "field", "unit")
	c.ForEach(func(f *Feature) {
		for _, v := range f.Variables {
			// ForEach iterates in ID order; AppendRow only fails on
			// width mismatch, which is impossible here.
			_ = t.AppendRow(f.ID, f.Source, v.Name, v.Unit)
		}
	})
	return t
}

// ToTableOf is ToTable restricted to the given feature IDs (absent IDs
// are ignored) — the delta-sized grid an incremental re-wrangle feeds
// through the transformation rules instead of re-extracting the whole
// catalog. Rows are ordered by dataset ID then variable position.
func (c *Catalog) ToTableOf(ids []string) *table.Table {
	t := table.MustNew("dataset", "source", "field", "unit")
	sorted := append([]string(nil), ids...)
	sort.Strings(sorted)
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, id := range sorted {
		f, ok := c.features[id]
		if !ok {
			continue
		}
		for _, v := range f.Variables {
			_ = t.AppendRow(f.ID, f.Source, v.Name, v.Unit)
		}
	}
	return t
}

// ApplyTable writes a wrangled grid produced by ToTable back into the
// catalog: for each (dataset, field) row the variable's current name is
// replaced by the grid's field cell. The grid must have the ToTable
// schema and row order (one row per variable occurrence).
func (c *Catalog) ApplyTable(t *table.Table) (int, error) {
	for _, col := range []string{"dataset", "field"} {
		if _, ok := t.ColumnIndex(col); !ok {
			return 0, fmt.Errorf("catalog: grid missing column %q", col)
		}
	}
	// Collect new names per dataset in row order.
	type rename struct{ names []string }
	byDataset := make(map[string]*rename)
	for i := 0; i < t.NumRows(); i++ {
		id, err := t.Cell(i, "dataset")
		if err != nil {
			return 0, err
		}
		name, err := t.Cell(i, "field")
		if err != nil {
			return 0, err
		}
		r := byDataset[id]
		if r == nil {
			r = &rename{}
			byDataset[id] = r
		}
		r.names = append(r.names, name)
	}
	ids := make([]string, 0, len(byDataset))
	for id := range byDataset {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	missing := ""
	// Only the datasets present in the grid are touched and reindexed —
	// a delta grid from ToTableOf writes back in time proportional to
	// its own size.
	changed := c.MutateVariablesOf(ids, func(f *Feature) bool {
		r, ok := byDataset[f.ID]
		if !ok {
			return false
		}
		if len(r.names) != len(f.Variables) {
			missing = fmt.Sprintf("catalog: grid has %d rows for dataset %s, want %d",
				len(r.names), f.ID, len(f.Variables))
			return false
		}
		dirty := false
		for i := range f.Variables {
			if f.Variables[i].Name != r.names[i] {
				f.Variables[i].Name = r.names[i]
				dirty = true
			}
		}
		return dirty
	})
	if missing != "" {
		return changed, fmt.Errorf("%s", missing)
	}
	return changed, nil
}

// indexLocked adds f to the secondary indexes; callers hold the lock.
func (c *Catalog) indexLocked(f *Feature) {
	for _, name := range f.SearchableNames() {
		set := c.byName[name]
		if set == nil {
			set = make(map[string]bool)
			c.byName[name] = set
		}
		set[f.ID] = true
	}
	for _, v := range f.Variables {
		if v.Excluded || v.Parent == "" {
			continue
		}
		set := c.byParent[v.Parent]
		if set == nil {
			set = make(map[string]bool)
			c.byParent[v.Parent] = set
		}
		set[f.ID] = true
	}
}

// unindexLocked removes f from the secondary indexes.
func (c *Catalog) unindexLocked(f *Feature) {
	for _, name := range f.SearchableNames() {
		set := c.byName[name]
		delete(set, f.ID)
		if len(set) == 0 {
			delete(c.byName, name)
		}
	}
	for _, v := range f.Variables {
		if v.Excluded || v.Parent == "" {
			continue
		}
		set := c.byParent[v.Parent]
		delete(set, f.ID)
		if len(set) == 0 {
			delete(c.byParent, v.Parent)
		}
	}
}
