package catalog

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"metamess/internal/table"
)

// Catalog is an in-memory feature store with secondary indexes. It is
// safe for concurrent use; wrangling writes take the exclusive lock,
// while search reads go through an immutable published Snapshot swapped
// in atomically, so the read path takes no locks at all.
type Catalog struct {
	mu       sync.RWMutex
	features map[string]*Feature
	// byName indexes dataset IDs by current searchable variable name;
	// byParent indexes them by the hierarchy parent of searchable
	// variables, so querying a parent concept can use the index too.
	byName   map[string]map[string]bool
	byParent map[string]map[string]bool
	// generation counts mutations, letting long-running searchers detect
	// that a published catalog replaced this one.
	generation uint64
	// snap caches the current immutable snapshot. Mutations clear it;
	// ReplaceAll (publish) rebuilds it eagerly; Snapshot() rebuilds it
	// lazily otherwise. Readers load it with a single atomic pointer
	// load — the lock-free search fast path.
	snap atomic.Pointer[Snapshot]
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{
		features: make(map[string]*Feature),
		byName:   make(map[string]map[string]bool),
		byParent: make(map[string]map[string]bool),
	}
}

// Len returns the number of features.
func (c *Catalog) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.features)
}

// Generation returns the mutation counter.
func (c *Catalog) Generation() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.generation
}

// Upsert validates and stores a feature, replacing any previous feature
// with the same ID. The catalog stores a private clone, so callers may
// keep mutating their copy.
func (c *Catalog) Upsert(f *Feature) error {
	if err := f.Validate(); err != nil {
		return err
	}
	clone := f.Clone()
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.features[clone.ID]; ok {
		c.unindexLocked(old)
	}
	c.features[clone.ID] = clone
	c.indexLocked(clone)
	c.generation++
	c.snap.Store(nil)
	return nil
}

// Snapshot returns the catalog's current immutable snapshot, building
// it (once) if a mutation invalidated the cached one. The fast path is
// a single atomic load; concurrent callers after a mutation serialize
// on the write lock and share the rebuilt snapshot.
func (c *Catalog) Snapshot() *Snapshot {
	if s := c.snap.Load(); s != nil {
		return s
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if s := c.snap.Load(); s != nil {
		return s
	}
	s := newSnapshot(c.features, c.generation)
	c.snap.Store(s)
	return s
}

// Get returns a copy of the feature with the given ID.
func (c *Catalog) Get(id string) (*Feature, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	f, ok := c.features[id]
	if !ok {
		return nil, false
	}
	return f.Clone(), true
}

// Delete removes a feature; it reports whether the ID was present.
func (c *Catalog) Delete(id string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	f, ok := c.features[id]
	if !ok {
		return false
	}
	c.unindexLocked(f)
	delete(c.features, id)
	c.generation++
	c.snap.Store(nil)
	return true
}

// All returns copies of every feature, ordered by ID for determinism.
// Callers that only read should prefer Snapshot().All(), which shares
// the immutable snapshot's features instead of cloning the catalog.
func (c *Catalog) All() []*Feature {
	c.mu.RLock()
	defer c.mu.RUnlock()
	ids := make([]string, 0, len(c.features))
	for id := range c.features {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]*Feature, len(ids))
	for i, id := range ids {
		out[i] = c.features[id].Clone()
	}
	return out
}

// IDs returns all feature IDs, sorted.
func (c *Catalog) IDs() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	ids := make([]string, 0, len(c.features))
	for id := range c.features {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// DatasetsWithVariable returns the IDs of datasets whose searchable
// variables include name, sorted.
func (c *Catalog) DatasetsWithVariable(name string) []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	set := c.byName[name]
	out := make([]string, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// DatasetsWithParent returns the IDs of datasets having a searchable
// variable whose hierarchy parent is name, sorted.
func (c *Catalog) DatasetsWithParent(name string) []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	set := c.byParent[name]
	out := make([]string, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// VariableNameCounts tallies every *current* variable name (including
// excluded ones) across the catalog — the facet the wrangling chain and
// discovery cluster over.
func (c *Catalog) VariableNameCounts() []table.ValueCount {
	c.mu.RLock()
	defer c.mu.RUnlock()
	counts := make(map[string]int)
	for _, f := range c.features {
		for _, v := range f.Variables {
			counts[v.Name]++
		}
	}
	out := make([]table.ValueCount, 0, len(counts))
	for v, n := range counts {
		out = append(out, table.ValueCount{Value: v, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Value < out[j].Value
	})
	return out
}

// DistinctVariableNames returns the sorted distinct current names.
func (c *Catalog) DistinctVariableNames() []string {
	counts := c.VariableNameCounts()
	out := make([]string, len(counts))
	for i, vc := range counts {
		out[i] = vc.Value
	}
	sort.Strings(out)
	return out
}

// MutateVariables applies fn to every feature's variable list under the
// write lock; fn returns true if it changed the variables. The method
// reindexes changed features and returns how many features changed.
// This is the hook the wrangling chain uses to write transformation
// results back from the working grid into the catalog.
func (c *Catalog) MutateVariables(fn func(f *Feature) bool) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	changed := 0
	for _, f := range c.features {
		c.unindexLocked(f)
		if fn(f) {
			changed++
		}
		c.indexLocked(f)
	}
	if changed > 0 {
		c.generation++
	}
	// Invalidate unconditionally: fn may have mutated without
	// reporting a change.
	c.snap.Store(nil)
	return changed
}

// Clone returns a deep copy of the catalog (used by Publish).
func (c *Catalog) Clone() *Catalog {
	c.mu.RLock()
	defer c.mu.RUnlock()
	n := New()
	for id, f := range c.features {
		clone := f.Clone()
		n.features[id] = clone
		n.indexLocked(clone)
	}
	n.generation = c.generation
	return n
}

// ReplaceAll swaps this catalog's contents for those of other — the
// atomic Publish step. The source catalog is left untouched. The new
// snapshot is built eagerly here, so the first search after a publish
// pays no build cost and in-flight searches keep their consistent view.
func (c *Catalog) ReplaceAll(other *Catalog) {
	clone := other.Clone()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.features = clone.features
	c.byName = clone.byName
	c.byParent = clone.byParent
	c.generation++
	c.snap.Store(newSnapshot(c.features, c.generation))
}

// ToTable extracts the catalog's variable occurrences into a refine grid
// with columns (dataset, source, field, unit): the "extract catalog
// entries to Google Refine" arrow in the poster's discovery figure.
// Rows are ordered by dataset ID then variable position.
func (c *Catalog) ToTable() *table.Table {
	t := table.MustNew("dataset", "source", "field", "unit")
	// The snapshot's shared features are read-only here, so no copies.
	for _, f := range c.Snapshot().All() {
		for _, v := range f.Variables {
			// Snapshot().All() is sorted by ID; AppendRow only fails on
			// width mismatch, which is impossible here.
			_ = t.AppendRow(f.ID, f.Source, v.Name, v.Unit)
		}
	}
	return t
}

// ApplyTable writes a wrangled grid produced by ToTable back into the
// catalog: for each (dataset, field) row the variable's current name is
// replaced by the grid's field cell. The grid must have the ToTable
// schema and row order (one row per variable occurrence).
func (c *Catalog) ApplyTable(t *table.Table) (int, error) {
	for _, col := range []string{"dataset", "field"} {
		if _, ok := t.ColumnIndex(col); !ok {
			return 0, fmt.Errorf("catalog: grid missing column %q", col)
		}
	}
	// Collect new names per dataset in row order.
	type rename struct{ names []string }
	byDataset := make(map[string]*rename)
	for i := 0; i < t.NumRows(); i++ {
		id, err := t.Cell(i, "dataset")
		if err != nil {
			return 0, err
		}
		name, err := t.Cell(i, "field")
		if err != nil {
			return 0, err
		}
		r := byDataset[id]
		if r == nil {
			r = &rename{}
			byDataset[id] = r
		}
		r.names = append(r.names, name)
	}
	missing := ""
	changed := c.MutateVariables(func(f *Feature) bool {
		r, ok := byDataset[f.ID]
		if !ok {
			return false
		}
		if len(r.names) != len(f.Variables) {
			missing = fmt.Sprintf("catalog: grid has %d rows for dataset %s, want %d",
				len(r.names), f.ID, len(f.Variables))
			return false
		}
		dirty := false
		for i := range f.Variables {
			if f.Variables[i].Name != r.names[i] {
				f.Variables[i].Name = r.names[i]
				dirty = true
			}
		}
		return dirty
	})
	if missing != "" {
		return changed, fmt.Errorf("%s", missing)
	}
	return changed, nil
}

// indexLocked adds f to the secondary indexes; callers hold the lock.
func (c *Catalog) indexLocked(f *Feature) {
	for _, name := range f.SearchableNames() {
		set := c.byName[name]
		if set == nil {
			set = make(map[string]bool)
			c.byName[name] = set
		}
		set[f.ID] = true
	}
	for _, v := range f.Variables {
		if v.Excluded || v.Parent == "" {
			continue
		}
		set := c.byParent[v.Parent]
		if set == nil {
			set = make(map[string]bool)
			c.byParent[v.Parent] = set
		}
		set[f.ID] = true
	}
}

// unindexLocked removes f from the secondary indexes.
func (c *Catalog) unindexLocked(f *Feature) {
	for _, name := range f.SearchableNames() {
		set := c.byName[name]
		delete(set, f.ID)
		if len(set) == 0 {
			delete(c.byName, name)
		}
	}
	for _, v := range f.Variables {
		if v.Excluded || v.Parent == "" {
			continue
		}
		set := c.byParent[v.Parent]
		delete(set, f.ID)
		if len(set) == 0 {
			delete(c.byParent, v.Parent)
		}
	}
}
