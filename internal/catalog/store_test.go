package catalog

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// storeFingerprint renders a catalog's full content as comparable
// bytes (every feature in ID order, all fields).
func storeFingerprint(t testing.TB, c *Catalog) string {
	t.Helper()
	var b strings.Builder
	for _, f := range c.Snapshot().All() {
		data, err := json.Marshal(f)
		if err != nil {
			t.Fatal(err)
		}
		b.Write(data)
		b.WriteByte('\n')
	}
	return b.String()
}

// storeHistory drives a store through n publishes (each a small delta
// of upserts, edits, and deletes) and returns the fingerprint of the
// catalog after every generation — the ground truth crash recovery is
// checked against. Generation g is produced by publish g; generation 0
// is the empty store.
func storeHistory(t testing.TB, dir string, n int, opts StoreOptions) (st *Store, c *Catalog, states map[uint64]string, sidecars map[uint64]string) {
	t.Helper()
	c = NewSharded(3)
	st, err := OpenStore(dir, c, opts)
	if err != nil {
		t.Fatal(err)
	}
	states = map[uint64]string{0: storeFingerprint(t, c)}
	sidecars = map[uint64]string{}
	for i := 0; i < n; i++ {
		var changed []*Feature
		// A rolling window of features: later publishes edit earlier ones.
		// Versions stay in 0..2 (deltaFeature duplicates a variable name
		// at version%4 == 3, which Validate rejects).
		for k := 0; k < 3; k++ {
			changed = append(changed, deltaFeature(i*2+k, i%3))
		}
		var removed []string
		if i > 2 {
			removed = []string{deltaFeature((i-3)*2, 0).ID}
		}
		bumped, err := c.ApplyDelta(changed, removed)
		if err != nil {
			t.Fatal(err)
		}
		if !bumped {
			t.Fatalf("publish %d applied nothing", i)
		}
		gen := c.Generation()
		sidecar := fmt.Sprintf(`{"epoch":%d}`, gen)
		if err := st.AppendPublish(gen, changed, removed, []byte(sidecar)); err != nil {
			t.Fatal(err)
		}
		states[gen] = storeFingerprint(t, c)
		sidecars[gen] = sidecar
	}
	return st, c, states, sidecars
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, c, states, sidecars := storeHistory(t, dir, 8, StoreOptions{})
	finalGen := c.Generation()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	back := NewSharded(5) // a different shard count: the store is partition-independent
	st2, err := OpenStore(dir, back, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if back.Generation() != finalGen || st2.Generation() != finalGen {
		t.Fatalf("recovered generation %d/%d, want %d", back.Generation(), st2.Generation(), finalGen)
	}
	if got := storeFingerprint(t, back); got != states[finalGen] {
		t.Fatal("recovered catalog differs from live state")
	}
	if got := string(st2.Sidecar()); got != sidecars[finalGen] {
		t.Fatalf("recovered sidecar %s, want %s", got, sidecars[finalGen])
	}
}

func TestStoreCompactionRoundTripAndShrinks(t *testing.T) {
	dir := t.TempDir()
	st, c, states, sidecars := storeHistory(t, dir, 10, StoreOptions{})
	jBefore := st.Stats().JournalBytes
	if jBefore == 0 {
		t.Fatal("journal empty after 10 publishes")
	}
	if err := st.Compact(c); err != nil {
		t.Fatal(err)
	}
	stats := st.Stats()
	if stats.JournalBytes != 0 {
		t.Errorf("journal not reset by compaction: %d bytes", stats.JournalBytes)
	}
	if stats.CheckpointBytes == 0 {
		t.Error("no checkpoint written")
	}
	if stats.Compactions != 1 {
		t.Errorf("compactions = %d", stats.Compactions)
	}
	if olds, _ := oldJournals(dir); len(olds) != 0 {
		t.Errorf("rotated journals not retired after compaction: %v", olds)
	}

	// Publishes continue after compaction and recovery sees everything.
	var changed []*Feature
	changed = append(changed, deltaFeature(500, 1))
	if _, err := c.ApplyDelta(changed, nil); err != nil {
		t.Fatal(err)
	}
	gen := c.Generation()
	if err := st.AppendPublish(gen, changed, nil, []byte(`{"epoch":99}`)); err != nil {
		t.Fatal(err)
	}
	states[gen] = storeFingerprint(t, c)
	sidecars[gen] = `{"epoch":99}`
	st.Close()

	back := New()
	st2, err := OpenStore(dir, back, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if back.Generation() != gen {
		t.Fatalf("generation %d, want %d", back.Generation(), gen)
	}
	if storeFingerprint(t, back) != states[gen] {
		t.Fatal("post-compaction recovery differs")
	}
	if string(st2.Sidecar()) != sidecars[gen] {
		t.Fatalf("post-compaction sidecar %s", st2.Sidecar())
	}
}

func TestStoreSkipsNoopAppends(t *testing.T) {
	dir := t.TempDir()
	st, c, _, _ := storeHistory(t, dir, 2, StoreOptions{})
	defer st.Close()
	gen := c.Generation()
	sidecar := []byte(fmt.Sprintf(`{"epoch":%d}`, gen))
	size := st.Stats().JournalBytes

	// Same generation, same sidecar, empty delta: a no-op re-wrangle.
	if err := st.AppendPublish(gen, nil, nil, sidecar); err != nil {
		t.Fatal(err)
	}
	if got := st.Stats().JournalBytes; got != size {
		t.Errorf("no-op publish grew the journal: %d -> %d", size, got)
	}
	if st.Stats().SkippedAppends != 1 {
		t.Errorf("skippedAppends = %d", st.Stats().SkippedAppends)
	}

	// Same generation but a moved sidecar (new rules, no feature churn)
	// must be journaled — the epoch state has to survive a crash too.
	if err := st.AppendPublish(gen, nil, nil, []byte(`{"epoch":777}`)); err != nil {
		t.Fatal(err)
	}
	if got := st.Stats().JournalBytes; got <= size {
		t.Error("sidecar-only publish not journaled")
	}
	// A regression to an older generation is refused outright.
	if err := st.AppendPublish(gen-1, nil, nil, sidecar); err == nil {
		t.Error("behind-generation publish accepted")
	}
}

// TestStoreCrashRecoveryProperty is the crash-injection battery's
// centerpiece: build a 12-publish history, then simulate kill -9 at 120
// randomized offsets into the journal — truncating it there, half the
// time with a tail of zero bytes, the residue a block-granular
// filesystem can leave — and require every recovery to land exactly on
// a previously published generation with that generation's exact
// catalog bytes and sidecar: pre- or post-publish, never in between.
func TestStoreCrashRecoveryProperty(t *testing.T) {
	dir := t.TempDir()
	st, _, states, sidecars := storeHistory(t, dir, 12, StoreOptions{})
	st.Close()
	journal, err := os.ReadFile(filepath.Join(dir, "journal"))
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 120; trial++ {
		cut := rng.Intn(len(journal) + 1)
		crashed := t.TempDir()
		torn := append([]byte(nil), journal[:cut]...)
		if rng.Intn(2) == 0 {
			torn = append(torn, make([]byte, rng.Intn(200))...)
		}
		if err := os.WriteFile(filepath.Join(crashed, "journal"), torn, 0o644); err != nil {
			t.Fatal(err)
		}

		into := New()
		st2, err := OpenStore(crashed, into, StoreOptions{})
		if err != nil {
			t.Fatalf("trial %d (cut %d): recovery failed: %v", trial, cut, err)
		}
		gen := st2.Generation()
		want, ok := states[gen]
		if !ok {
			t.Fatalf("trial %d (cut %d): recovered generation %d was never published", trial, cut, gen)
		}
		if got := storeFingerprint(t, into); got != want {
			t.Fatalf("trial %d (cut %d): generation %d recovered with different content — a half-applied delta", trial, cut, gen)
		}
		if gen > 0 && string(st2.Sidecar()) != sidecars[gen] {
			t.Fatalf("trial %d (cut %d): generation %d sidecar mismatch", trial, cut, gen)
		}
		st2.Close()
	}
}

// TestStoreCompactionCrashInjection kills the compactor at each stage
// of its protocol — after the journal rotation, after the new
// checkpoint is written but not yet promoted, and after the promotion
// but before the old journal is retired — optionally with more
// publishes landing between the crash and the restart, and requires
// recovery to produce the exact last-published state every time.
func TestStoreCompactionCrashInjection(t *testing.T) {
	stages := []string{"rotated", "checkpoint-written", "renamed"}
	for _, stage := range stages {
		for _, publishAfterCrash := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/publishAfter=%v", stage, publishAfterCrash), func(t *testing.T) {
				dir := t.TempDir()
				st, c, states, _ := storeHistory(t, dir, 6, StoreOptions{})
				st.crashHook = func(s string) bool { return s == stage }
				if err := st.Compact(c); err != errCrashInjected {
					t.Fatalf("Compact = %v, want injected crash", err)
				}
				st.crashHook = nil

				finalGen := c.Generation()
				if publishAfterCrash {
					// The store survived the failed compaction (the rotation
					// left a live journal): publishes keep landing until the
					// real crash.
					for i := 0; i < 2; i++ {
						changed := []*Feature{deltaFeature(300+i, i)}
						if _, err := c.ApplyDelta(changed, nil); err != nil {
							t.Fatal(err)
						}
						finalGen = c.Generation()
						if err := st.AppendPublish(finalGen, changed, nil, []byte(`{"epoch":1}`)); err != nil {
							t.Fatal(err)
						}
						states[finalGen] = storeFingerprint(t, c)
					}
				}
				// kill -9: no Close.

				into := New()
				st2, err := OpenStore(dir, into, StoreOptions{})
				if err != nil {
					t.Fatalf("recovery after crash at %q: %v", stage, err)
				}
				defer st2.Close()
				if got := into.Generation(); got != finalGen {
					t.Fatalf("recovered generation %d, want %d", got, finalGen)
				}
				if storeFingerprint(t, into) != states[finalGen] {
					t.Fatal("recovered state differs from last published state")
				}
				// Open finishes the interrupted compaction: no residue, and
				// the next restart replays cleanly too.
				if olds, _ := oldJournals(dir); len(olds) != 0 {
					t.Errorf("rotated journals left behind after recovery: %v", olds)
				}
				if _, err := os.Stat(filepath.Join(dir, "checkpoint.tmp")); !os.IsNotExist(err) {
					t.Error("checkpoint.tmp left behind after recovery")
				}
			})
		}
	}
}

// TestStoreDegradedAppendRepairedByCompaction pins the journal-failure
// contract: when an append fails the store refuses further appends
// (recovery would misapply later deltas over the missing one), surfaces
// Degraded, and a compaction — which writes the full live state —
// repairs it.
func TestStoreDegradedAppendRepairedByCompaction(t *testing.T) {
	dir := t.TempDir()
	st, c, _, _ := storeHistory(t, dir, 3, StoreOptions{})
	defer st.Close()

	// Inject a torn write for the next append.
	st.journal.mu.Lock()
	st.journal.w = bufio.NewWriter(&failingWriter{f: st.journal.f, budget: 10})
	st.journal.mu.Unlock()

	changed := []*Feature{deltaFeature(400, 0)}
	if _, err := c.ApplyDelta(changed, nil); err != nil {
		t.Fatal(err)
	}
	lostGen := c.Generation()
	if err := st.AppendPublish(lostGen, changed, nil, []byte(`{"epoch":9}`)); err == nil {
		t.Fatal("torn append reported success")
	}
	if !st.Stats().Degraded {
		t.Fatal("store not degraded after failed append")
	}
	if err := st.AppendPublish(lostGen+1, changed, nil, nil); err == nil {
		t.Fatal("degraded store accepted an append")
	}

	// The repair: CompactIfNeeded must fire regardless of ratio and
	// rewrite the full state from the live catalog.
	ran, err := st.CompactIfNeeded(c)
	if err != nil {
		t.Fatalf("repair compaction: %v", err)
	}
	if !ran {
		t.Fatal("degraded store did not trigger compaction")
	}
	if st.Stats().Degraded {
		t.Fatal("compaction did not clear degraded")
	}

	// Recovery now includes the publish whose journal record was lost —
	// the checkpoint captured it.
	want := storeFingerprint(t, c)
	into := New()
	st2, err := OpenStore(dir, into, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if into.Generation() != lostGen {
		t.Fatalf("recovered generation %d, want %d", into.Generation(), lostGen)
	}
	if storeFingerprint(t, into) != want {
		t.Fatal("repaired store lost the degraded publish")
	}
}

func TestStoreCompactIfNeededRatio(t *testing.T) {
	dir := t.TempDir()
	st, c, _, _ := storeHistory(t, dir, 4, StoreOptions{MinCompactBytes: 1 << 30})
	defer st.Close()
	// Journal well below MinCompactBytes: never compacts.
	if ran, err := st.CompactIfNeeded(c); err != nil || ran {
		t.Fatalf("compacted below MinCompactBytes: ran=%v err=%v", ran, err)
	}

	dir2 := t.TempDir()
	st2, c2, _, _ := storeHistory(t, dir2, 4, StoreOptions{MinCompactBytes: 1})
	defer st2.Close()
	// No checkpoint yet, tiny floor: first check compacts.
	if ran, err := st2.CompactIfNeeded(c2); err != nil || !ran {
		t.Fatalf("want compaction: ran=%v err=%v", ran, err)
	}
	// Immediately after, the journal is empty: no re-compaction.
	if ran, err := st2.CompactIfNeeded(c2); err != nil || ran {
		t.Fatalf("empty journal re-compacted: ran=%v err=%v", ran, err)
	}
}

// TestOpenStoreLegacySnapshot loads a plain Save()-format snapshot (no
// meta header) as the checkpoint, at generation zero.
func TestOpenStoreLegacySnapshot(t *testing.T) {
	dir := t.TempDir()
	c := New()
	for i := 0; i < 5; i++ {
		if err := c.Upsert(deltaFeature(i, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := Save(filepath.Join(dir, "checkpoint"), c); err != nil {
		t.Fatal(err)
	}
	into := New()
	st, err := OpenStore(dir, into, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if into.Len() != 5 || st.Generation() != 0 {
		t.Fatalf("legacy load: len=%d gen=%d", into.Len(), st.Generation())
	}
}

func TestOpenStoreRejectsCorruptCheckpoint(t *testing.T) {
	dir := t.TempDir()
	st, c, _, _ := storeHistory(t, dir, 3, StoreOptions{})
	if err := st.Compact(c); err != nil {
		t.Fatal(err)
	}
	st.Close()
	// Flip one byte mid-checkpoint. Checkpoints are written atomically,
	// so unlike a journal tail this is real corruption and must refuse
	// to load rather than half-apply.
	path := filepath.Join(dir, "checkpoint")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(dir, New(), StoreOptions{}); err == nil {
		t.Fatal("corrupt checkpoint accepted")
	}
}

// TestStoreRepeatedCompactionCrashes pins the retry hazard a single
// crash cannot reach: a compaction dies right after its rotation, more
// publishes land, and a *second* compaction (also dying after its
// rotation) must rotate to a fresh journal.old.N rather than clobber
// the first rotation — which until a checkpoint lands is the only
// durable copy of the early publishes. Recovery replays both rotated
// journals in order plus the live journal and reproduces the exact
// last-published state.
func TestStoreRepeatedCompactionCrashes(t *testing.T) {
	dir := t.TempDir()
	st, c, states, _ := storeHistory(t, dir, 4, StoreOptions{})
	crashAtRotate := func(s string) bool { return s == "rotated" }

	st.crashHook = crashAtRotate
	if err := st.Compact(c); err != errCrashInjected {
		t.Fatalf("first compact = %v", err)
	}
	// Publishes keep landing on the post-rotation journal.
	finalGen := c.Generation()
	for i := 0; i < 2; i++ {
		changed := []*Feature{deltaFeature(600+i, i)}
		if _, err := c.ApplyDelta(changed, nil); err != nil {
			t.Fatal(err)
		}
		finalGen = c.Generation()
		if err := st.AppendPublish(finalGen, changed, nil, []byte(`{"epoch":2}`)); err != nil {
			t.Fatal(err)
		}
		states[finalGen] = storeFingerprint(t, c)
	}
	// The retry dies the same way. Before the numbered-rotation scheme
	// this rename overwrote the first rotation and lost its publishes.
	if err := st.Compact(c); err != errCrashInjected {
		t.Fatalf("second compact = %v", err)
	}
	st.crashHook = nil
	if olds, _ := oldJournals(dir); len(olds) != 2 {
		t.Fatalf("expected 2 rotated journals pending, got %v", olds)
	}
	// kill -9: no Close.

	into := New()
	st2, err := OpenStore(dir, into, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if into.Generation() != finalGen {
		t.Fatalf("recovered generation %d, want %d", into.Generation(), finalGen)
	}
	if storeFingerprint(t, into) != states[finalGen] {
		t.Fatal("recovery lost publishes from the first crashed rotation")
	}
	if olds, _ := oldJournals(dir); len(olds) != 0 {
		t.Errorf("rotated journals not folded at open: %v", olds)
	}
}

// TestStoreRejectsReorderedJournal pins the monotonicity check: two
// intact, individually valid records with their order swapped must be
// refused — silently dropping the regressing record would be exactly
// the half-applied state recovery promises never to surface.
func TestStoreRejectsReorderedJournal(t *testing.T) {
	dir := t.TempDir()
	st, _, _, _ := storeHistory(t, dir, 3, StoreOptions{})
	st.Close()
	path := filepath.Join(dir, "journal")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	lines[0], lines[1] = lines[1], lines[0]
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(dir, New(), StoreOptions{}); err == nil {
		t.Fatal("reordered journal accepted")
	} else if !strings.Contains(err.Error(), "backwards") {
		t.Fatalf("unexpected error: %v", err)
	}
}
