package catalog

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// The catalog persists as an append-only log of checksummed JSON records,
// one per line:
//
//	<crc32-hex8> <json-payload>\n
//
// where the payload is {"op":"put","feature":{...}},
// {"op":"delete","id":"..."}, or — in journal and checkpoint files (see
// journal.go and store.go) — {"op":"delta",...} / {"op":"meta",...}.
// Replay applies records in order; a torn final line (crash during
// append) is tolerated and ignored, while corruption anywhere earlier
// fails loudly. Compact rewrites the log as a snapshot of put records
// and atomically renames it into place.

// logRecord is the payload of one log line. Put/delete records carry
// Feature/ID; delta records (the publish journal) carry a generation
// stamp plus the published delta and the knowledge-epoch sidecar; meta
// records (checkpoint headers) carry the generation stamp and sidecar
// alone.
type logRecord struct {
	Op      string   `json:"op"`
	ID      string   `json:"id,omitempty"`
	Feature *Feature `json:"feature,omitempty"`
	// Gen stamps delta and meta records with the publish generation the
	// record produced (delta) or covers (meta).
	Gen uint64 `json:"gen,omitempty"`
	// Changed and Removed are a delta record's payload: the features the
	// publish upserted and the IDs it retracted.
	Changed []*Feature `json:"changed,omitempty"`
	Removed []string   `json:"removed,omitempty"`
	// Sidecar is the opaque knowledge-epoch state (discovered rules,
	// curator decisions, curated synonyms) serialized by the wrangling
	// layer; the catalog stores and returns it without interpreting it.
	Sidecar json.RawMessage `json:"sidecar,omitempty"`
}

// encodeRecord renders a record as one checksummed log line.
func encodeRecord(rec logRecord) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("catalog: encode log record: %w", err)
	}
	line := make([]byte, 0, len(payload)+10)
	line = append(line, fmt.Sprintf("%08x ", crc32.ChecksumIEEE(payload))...)
	line = append(line, payload...)
	line = append(line, '\n')
	return line, nil
}

// Log is an open append-only catalog log. Put and Delete are durable on
// return under the default SyncAlways policy: each append is flushed
// and fsynced before the call returns, so a crash immediately after an
// acknowledged Put cannot lose the record. Callers bulk-loading many
// records can trade that for throughput with SetSyncPolicy.
type Log struct {
	path string
	f    *os.File
	w    *bufio.Writer
	sync SyncPolicy
}

// OpenLog opens (creating if needed) the log at path for appending,
// with the SyncAlways durability policy.
func OpenLog(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("catalog: open log: %w", err)
	}
	return &Log{path: path, f: f, w: bufio.NewWriter(f), sync: SyncAlways}, nil
}

// SetSyncPolicy changes when appends are fsynced. SyncAlways (the
// default) fsyncs every append; SyncNone leaves durability to Sync and
// Close calls (bulk loads).
func (l *Log) SetSyncPolicy(p SyncPolicy) { l.sync = p }

// Put appends a put record for the feature.
func (l *Log) Put(f *Feature) error {
	if err := f.Validate(); err != nil {
		return err
	}
	return l.append(logRecord{Op: "put", Feature: f})
}

// Delete appends a delete record for the ID.
func (l *Log) Delete(id string) error {
	if id == "" {
		return fmt.Errorf("catalog: delete needs an id")
	}
	return l.append(logRecord{Op: "delete", ID: id})
}

func (l *Log) append(rec logRecord) error {
	line, err := encodeRecord(rec)
	if err != nil {
		return err
	}
	if _, err := l.w.Write(line); err != nil {
		return fmt.Errorf("catalog: append log record: %w", err)
	}
	// The durability point: under SyncAlways the record has reached the
	// disk before the append is acknowledged. Buffering until an eventual
	// Sync would silently lose acknowledged records on a crash — that is
	// now an explicit opt-in (SetSyncPolicy(SyncNone)) for bulk loads.
	if l.sync == SyncAlways {
		return l.Sync()
	}
	return nil
}

// Sync flushes buffered records and fsyncs the file.
func (l *Log) Sync() error {
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("catalog: flush log: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("catalog: sync log: %w", err)
	}
	return nil
}

// Close flushes and closes the log.
func (l *Log) Close() error {
	if err := l.w.Flush(); err != nil {
		l.f.Close()
		return fmt.Errorf("catalog: flush log: %w", err)
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("catalog: close log: %w", err)
	}
	return nil
}

// Replay rebuilds a catalog from the log at path. A missing file yields
// an empty catalog. A torn final line is ignored; any earlier corruption
// (bad checksum, bad JSON, unknown op) is an error.
func Replay(path string) (*Catalog, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return New(), nil
	}
	if err != nil {
		return nil, fmt.Errorf("catalog: open log: %w", err)
	}
	defer f.Close()

	c := New()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	lineNo := 0
	var pendingErr error
	for sc.Scan() {
		lineNo++
		if pendingErr != nil {
			// A bad line followed by more lines means mid-file corruption.
			return nil, pendingErr
		}
		line := sc.Text()
		rec, err := decodeLine(line)
		if err != nil {
			// Remember the error; only fatal if another line follows.
			pendingErr = fmt.Errorf("catalog: log line %d: %w", lineNo, err)
			continue
		}
		switch rec.Op {
		case "put":
			if rec.Feature == nil {
				return nil, fmt.Errorf("catalog: log line %d: put without feature", lineNo)
			}
			if err := c.Upsert(rec.Feature); err != nil {
				return nil, fmt.Errorf("catalog: log line %d: %w", lineNo, err)
			}
		case "delete":
			c.Delete(rec.ID)
		default:
			return nil, fmt.Errorf("catalog: log line %d: unknown op %q", lineNo, rec.Op)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("catalog: read log: %w", err)
	}
	// pendingErr on the very last line is a torn append: tolerated.
	return c, nil
}

func decodeLine(line string) (logRecord, error) {
	var rec logRecord
	space := strings.IndexByte(line, ' ')
	if space != 8 {
		return rec, fmt.Errorf("malformed record header")
	}
	var want uint32
	if _, err := fmt.Sscanf(line[:8], "%08x", &want); err != nil {
		return rec, fmt.Errorf("bad checksum field: %w", err)
	}
	payload := line[9:]
	if got := crc32.ChecksumIEEE([]byte(payload)); got != want {
		return rec, fmt.Errorf("checksum mismatch: %08x != %08x", got, want)
	}
	if err := json.Unmarshal([]byte(payload), &rec); err != nil {
		return rec, fmt.Errorf("bad payload: %w", err)
	}
	return rec, nil
}

// Compact writes the catalog as a fresh snapshot log (one put per
// feature, ID order) and atomically renames it over path.
func Compact(path string, c *Catalog) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".catalog-compact-*")
	if err != nil {
		return fmt.Errorf("catalog: compact: %w", err)
	}
	tmpPath := tmp.Name()
	defer os.Remove(tmpPath) // no-op after successful rename

	w := bufio.NewWriter(tmp)
	// Read-only export: iterate the shared snapshot, no per-feature copies.
	for _, f := range c.Snapshot().All() {
		line, err := encodeRecord(logRecord{Op: "put", Feature: f})
		if err != nil {
			tmp.Close()
			return fmt.Errorf("catalog: compact encode: %w", err)
		}
		if _, err := w.Write(line); err != nil {
			tmp.Close()
			return fmt.Errorf("catalog: compact write: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("catalog: compact flush: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("catalog: compact sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("catalog: compact close: %w", err)
	}
	if err := os.Rename(tmpPath, path); err != nil {
		return fmt.Errorf("catalog: compact rename: %w", err)
	}
	return nil
}

// Save persists the catalog as a compact snapshot at path.
func Save(path string, c *Catalog) error { return Compact(path, c) }

// Load is Replay with a clearer name for snapshot files.
func Load(path string) (*Catalog, error) { return Replay(path) }

// LogSize returns the byte size of the log file (0 when missing), for
// compaction heuristics and the summarization-ratio experiment.
func LogSize(path string) (int64, error) {
	st, err := os.Stat(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// CopyLog duplicates a log file byte-for-byte (working-catalog forks).
func CopyLog(src, dst string) error {
	in, err := os.Open(src)
	if err != nil {
		return fmt.Errorf("catalog: copy log: %w", err)
	}
	defer in.Close()
	out, err := os.Create(dst)
	if err != nil {
		return fmt.Errorf("catalog: copy log: %w", err)
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		return fmt.Errorf("catalog: copy log: %w", err)
	}
	if err := out.Close(); err != nil {
		return fmt.Errorf("catalog: copy log: %w", err)
	}
	return nil
}
