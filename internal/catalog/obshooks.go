package catalog

import "metamess/internal/obs"

// Durability metric families, registered at init so every family exists
// (at zero) on /metrics even when the server runs without a data
// directory — scrape-side absence alerts need presence, not luck.
var (
	journalAppends = obs.Default().Counter("dnh_journal_appends_total",
		"Publish-delta records appended to the durable journal.")
	journalFsyncs = obs.Default().Counter("dnh_journal_fsyncs_total",
		"Journal fsyncs issued (policy-driven and explicit).")
	journalFsyncSeconds = obs.Default().Histogram("dnh_journal_fsync_duration_seconds",
		"Journal fsync wall time in seconds.", obs.DurationBuckets)
	compactions = obs.Default().Counter("dnh_compactions_total",
		"Journal compactions completed (checkpoint rewrites).")
	compactSeconds = obs.Default().Histogram("dnh_compact_duration_seconds",
		"Journal compaction wall time in seconds.", obs.DurationBuckets)
)
