package catalog

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestPostingsRepresentationChoice pins the container heuristic: bitmap
// when its fixed cost (one word per 64 positions) undercuts 4 bytes per
// posting, sorted array otherwise, empty list always the zero value.
func TestPostingsRepresentationChoice(t *testing.T) {
	const shardLen = 1024 // 16 words → bitmap costs 128 bytes
	if p := newPostings(nil, shardLen); p.dense() || p.Len() != 0 {
		t.Fatalf("empty list: dense=%v len=%d", p.dense(), p.Len())
	}
	sparse := []int32{3, 77, 500}
	if p := newPostings(sparse, shardLen); p.dense() {
		t.Fatal("3 postings over 1024 positions packed as bitmap")
	}
	// 33 postings → 132 array bytes > 128 bitmap bytes.
	var dense []int32
	for i := int32(0); i < 33; i++ {
		dense = append(dense, i*31)
	}
	if p := newPostings(dense, shardLen); !p.dense() {
		t.Fatal("33 postings over 1024 positions kept as array")
	}
	// 32 postings → exactly 128 array bytes: strict inequality keeps the array.
	if p := newPostings(dense[:32], shardLen); p.dense() {
		t.Fatal("tie broken toward bitmap; heuristic must be strict")
	}
}

// TestPostingsRoundTrip checks that both representations agree with the
// raw position list through every accessor, over randomized densities.
func TestPostingsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		shardLen := 1 + rng.Intn(500)
		member := make(map[int32]bool)
		for i := 0; i < rng.Intn(shardLen+1); i++ {
			member[int32(rng.Intn(shardLen))] = true
		}
		var raw []int32
		for p := int32(0); p < int32(shardLen); p++ {
			if member[p] {
				raw = append(raw, p)
			}
		}
		l := newPostings(append([]int32(nil), raw...), shardLen)
		if l.Len() != len(raw) {
			t.Fatalf("trial %d: Len=%d want %d", trial, l.Len(), len(raw))
		}
		got := l.AppendTo([]int32{-9})
		if got[0] != -9 || !reflect.DeepEqual(got[1:], append([]int32{}, raw...)) {
			t.Fatalf("trial %d: AppendTo=%v want prefix -9 then %v", trial, got, raw)
		}
		marks := make([]uint8, shardLen)
		l.Mark(marks, 0b10)
		for p := int32(0); p < int32(shardLen); p++ {
			want := uint8(0)
			if member[p] {
				want = 0b10
			}
			if marks[p] != want {
				t.Fatalf("trial %d: mark[%d]=%b want %b", trial, p, marks[p], want)
			}
		}

		// filterRemap drops removed/dirty survivors and compacts positions,
		// mirroring what a delta splice produces.
		posMap := make([]int32, shardLen)
		dirtyOld := make([]bool, shardLen)
		next := int32(0)
		for p := 0; p < shardLen; p++ {
			switch rng.Intn(4) {
			case 0:
				posMap[p] = -1
				dirtyOld[p] = true
			case 1:
				posMap[p] = next
				dirtyOld[p] = true
				next++
			default:
				posMap[p] = next
				next++
			}
		}
		var want []int32
		for _, p := range raw {
			if posMap[p] >= 0 && !dirtyOld[p] {
				want = append(want, posMap[p])
			}
		}
		if got := l.filterRemap(posMap, dirtyOld, nil); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: filterRemap=%v want %v", trial, got, want)
		}
	}
}

// TestStoreBuilderAssignsFirstSeenIDs pins deterministic interning:
// term IDs follow first appearance, lookups agree with the builder's
// inputs, and materialize reproduces the raw lists.
func TestStoreBuilderAssignsFirstSeenIDs(t *testing.T) {
	b := newStoreBuilder[string]()
	b.add("salinity", 0)
	b.add("temp", 1)
	b.add("salinity", 2)
	b.add("nitrate", 2)
	st := b.build(3)
	for i, want := range []string{"salinity", "temp", "nitrate"} {
		id, ok := st.id(want)
		if !ok || id != uint32(i) {
			t.Fatalf("id(%s) = %d, %v (want %d)", want, id, ok, i)
		}
	}
	if _, ok := st.id("absent"); ok {
		t.Fatal("absent term resolved")
	}
	want := map[string][]int32{"salinity": {0, 2}, "temp": {1}, "nitrate": {2}}
	if got := st.materialize(); !reflect.DeepEqual(got, want) {
		t.Fatalf("materialize = %v, want %v", got, want)
	}
}

// TestStorePatchCopyOnWrite exercises the patch protocol directly: the
// dictionary is pointer-shared until a new term arrives, untouched
// lists are shared when positions hold, and a fully retracted term
// keeps its ID but empties its container.
func TestStorePatchCopyOnWrite(t *testing.T) {
	b := newStoreBuilder[string]()
	for p := int32(0); p < 8; p++ {
		b.add("stable", p)
	}
	b.add("touched", 1)
	b.add("gone", 2)
	st := b.build(8)

	posMap := []int32{0, 1, 2, 3, 4, 5, 6, 7} // no shift
	dirtyOld := make([]bool, 8)
	dirtyOld[1], dirtyOld[2] = true, true // features 1 and 2 replaced

	p := st.beginPatch(map[string]bool{"touched": true, "gone": true}, false, posMap, dirtyOld, 8)
	p.add("touched", 1)
	p.add("fresh", 2)
	next := p.finish(8)

	stableID, _ := st.id("stable")
	if !sharesStorage(st.at(stableID), next.at(stableID)) {
		t.Fatal("untouched list rebuilt despite unshifted patch")
	}
	if goneID, _ := next.id("gone"); next.at(goneID).Len() != 0 {
		t.Fatal("retracted term still has postings")
	}
	if _, ok := st.id("fresh"); ok {
		t.Fatal("patch mutated the predecessor dictionary")
	}
	freshID, ok := next.id("fresh")
	if !ok || freshID != 3 {
		t.Fatalf("fresh term id = %d, %v (want appended id 3)", freshID, ok)
	}
	want := map[string][]int32{"stable": {0, 1, 2, 3, 4, 5, 6, 7}, "touched": {1}, "fresh": {2}}
	if got := next.materialize(); !reflect.DeepEqual(got, want) {
		t.Fatalf("patched store = %v, want %v", got, want)
	}
}
