package catalog

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestLogReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "catalog.log")
	log, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	f1 := feat("a.csv", "salinity")
	f2 := feat("b.csv", "water_temperature")
	if err := log.Put(f1); err != nil {
		t.Fatal(err)
	}
	if err := log.Put(f2); err != nil {
		t.Fatal(err)
	}
	if err := log.Delete(f1.ID); err != nil {
		t.Fatal(err)
	}
	if err := log.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	c, err := Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 {
		t.Fatalf("replayed Len = %d, want 1 (put, put, delete)", c.Len())
	}
	if _, ok := c.Get(f2.ID); !ok {
		t.Error("surviving feature missing")
	}
	if _, ok := c.Get(f1.ID); ok {
		t.Error("deleted feature resurrected")
	}
}

func TestReplayMissingFile(t *testing.T) {
	c, err := Replay(filepath.Join(t.TempDir(), "nope.log"))
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 {
		t.Error("missing log should replay to empty catalog")
	}
}

func TestReplayToleratesTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "catalog.log")
	log, _ := OpenLog(path)
	_ = log.Put(feat("a.csv", "x"))
	_ = log.Put(feat("b.csv", "y"))
	_ = log.Close()

	// Simulate a crash mid-append: truncate the last line.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := data[:len(data)-20]
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := Replay(path)
	if err != nil {
		t.Fatalf("torn tail should be tolerated: %v", err)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1 (second put torn off)", c.Len())
	}
}

func TestReplayRejectsMidFileCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "catalog.log")
	log, _ := OpenLog(path)
	_ = log.Put(feat("a.csv", "x"))
	_ = log.Put(feat("b.csv", "y"))
	_ = log.Close()

	data, _ := os.ReadFile(path)
	lines := strings.SplitAfter(string(data), "\n")
	// Flip a byte inside the first record's payload.
	corrupted := strings.Replace(lines[0], `"op":"put"`, `"op":"pXt"`, 1) + lines[1]
	if err := os.WriteFile(path, []byte(corrupted), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(path); err == nil {
		t.Error("mid-file corruption accepted")
	}
}

func TestReplayRejectsBadChecksumMidFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "catalog.log")
	log, _ := OpenLog(path)
	_ = log.Put(feat("a.csv", "x"))
	_ = log.Put(feat("b.csv", "y"))
	_ = log.Close()

	data, _ := os.ReadFile(path)
	lines := strings.SplitAfter(string(data), "\n")
	// Zero the first line's checksum.
	corrupted := "00000000" + lines[0][8:] + lines[1]
	if err := os.WriteFile(path, []byte(corrupted), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(path); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Errorf("checksum corruption error = %v", err)
	}
}

func TestCompactAndLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "catalog.log")
	log, _ := OpenLog(path)
	// Many redundant puts of the same feature.
	f := feat("a.csv", "x")
	for i := 0; i < 50; i++ {
		if err := log.Put(f); err != nil {
			t.Fatal(err)
		}
	}
	_ = log.Put(feat("b.csv", "y"))
	_ = log.Close()

	before, _ := LogSize(path)
	c, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := Compact(path, c); err != nil {
		t.Fatal(err)
	}
	after, _ := LogSize(path)
	if after >= before {
		t.Errorf("compaction did not shrink log: %d -> %d", before, after)
	}
	again, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if again.Len() != 2 {
		t.Errorf("post-compact Len = %d, want 2", again.Len())
	}
}

func TestSaveLoadSnapshot(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.log")
	c := New()
	for i := 0; i < 20; i++ {
		if err := c.Upsert(feat(fmt.Sprintf("d%02d.csv", i), "salinity", "temp")); err != nil {
			t.Fatal(err)
		}
	}
	if err := Save(path, c); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != c.Len() {
		t.Fatalf("Len = %d, want %d", back.Len(), c.Len())
	}
	for _, id := range c.IDs() {
		orig, _ := c.Get(id)
		got, ok := back.Get(id)
		if !ok {
			t.Fatalf("feature %s missing", id)
		}
		if got.Path != orig.Path || len(got.Variables) != len(orig.Variables) {
			t.Errorf("feature %s corrupted in round trip", id)
		}
		if !got.Time.Start.Equal(orig.Time.Start) {
			t.Errorf("feature %s time corrupted", id)
		}
	}
}

func TestCopyLog(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "src.log")
	dst := filepath.Join(dir, "dst.log")
	c := New()
	_ = c.Upsert(feat("a.csv", "x"))
	if err := Save(src, c); err != nil {
		t.Fatal(err)
	}
	if err := CopyLog(src, dst); err != nil {
		t.Fatal(err)
	}
	back, err := Load(dst)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 1 {
		t.Errorf("copied Len = %d", back.Len())
	}
	if err := CopyLog(filepath.Join(dir, "ghost.log"), dst); err == nil {
		t.Error("copying missing file should fail")
	}
}

func TestLogSizeMissing(t *testing.T) {
	n, err := LogSize(filepath.Join(t.TempDir(), "nope"))
	if err != nil || n != 0 {
		t.Errorf("LogSize missing = %d, %v", n, err)
	}
}

func TestLogPutValidates(t *testing.T) {
	dir := t.TempDir()
	log, _ := OpenLog(filepath.Join(dir, "l.log"))
	defer log.Close()
	bad := feat("a.csv", "x")
	bad.ID = "mismatch"
	if err := log.Put(bad); err == nil {
		t.Error("invalid feature logged")
	}
	if err := log.Delete(""); err == nil {
		t.Error("empty delete id accepted")
	}
}

func BenchmarkLogPut(b *testing.B) {
	dir := b.TempDir()
	log, err := OpenLog(filepath.Join(dir, "bench.log"))
	if err != nil {
		b.Fatal(err)
	}
	defer log.Close()
	f := feat("bench.csv", "salinity", "water_temperature", "turbidity")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := log.Put(f); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReplay1000(b *testing.B) {
	dir := b.TempDir()
	path := filepath.Join(dir, "bench.log")
	c := New()
	for i := 0; i < 1000; i++ {
		_ = c.Upsert(feat(fmt.Sprintf("d%04d.csv", i), "salinity", "temp"))
	}
	if err := Save(path, c); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Replay(path); err != nil {
			b.Fatal(err)
		}
	}
}

// TestSaveLoadShardedCatalog drives the full persistence round trip
// over a many-shard catalog with content-rich features: Save walks the
// sharded snapshot's merged All() (so the log is ID-ordered regardless
// of the partition), and Load must reconstruct every feature with
// content equality — into a catalog with a *different* shard count,
// since the log format is partition-independent.
func TestSaveLoadShardedCatalog(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sharded.log")
	c := NewSharded(5)
	for i := 0; i < 40; i++ {
		if err := c.Upsert(deltaFeature(i, i%3)); err != nil {
			t.Fatal(err)
		}
	}
	if err := Save(path, c); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != c.Len() {
		t.Fatalf("Len = %d, want %d", back.Len(), c.Len())
	}
	// Saving the loaded catalog again must produce identical bytes: the
	// round trip is lossless and the log order is partition-independent.
	path2 := filepath.Join(dir, "resaved.log")
	if err := Save(path2, back); err != nil {
		t.Fatal(err)
	}
	b1, _ := os.ReadFile(path)
	b2, _ := os.ReadFile(path2)
	if string(b1) != string(b2) {
		t.Fatal("re-saved log differs from original")
	}
	for _, id := range c.IDs() {
		orig, _ := c.Get(id)
		got, ok := back.Get(id)
		if !ok {
			t.Fatalf("feature %s missing after round trip", id)
		}
		if !orig.ContentEquals(got) {
			t.Errorf("feature %s content differs after round trip", id)
		}
		if !orig.ScannedAt.Equal(got.ScannedAt) {
			t.Errorf("feature %s ScannedAt differs after round trip", id)
		}
	}
}

// TestReplayNeverHalfLoads pins the all-or-nothing contract: a log with
// a flipped checksum or a truncated record anywhere before the final
// line must be rejected with a nil catalog — corruption can surface no
// partially applied state for a caller to serve by accident.
func TestReplayNeverHalfLoads(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, lines []string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(strings.Join(lines, "")), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	mk := func() []string {
		p := filepath.Join(dir, "base.log")
		log, err := OpenLog(p)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if err := log.Put(feat(fmt.Sprintf("d%d.csv", i), "salinity")); err != nil {
				t.Fatal(err)
			}
		}
		if err := log.Close(); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		return strings.SplitAfter(string(data), "\n")
	}

	lines := mk()
	// Flip one checksum hex digit on the middle record.
	flipped := append([]string(nil), lines...)
	if flipped[1][0] == '0' {
		flipped[1] = "1" + flipped[1][1:]
	} else {
		flipped[1] = "0" + flipped[1][1:]
	}
	c, err := Replay(write("flipped.log", flipped))
	if err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Errorf("flipped checksum: err = %v", err)
	}
	if c != nil {
		t.Error("flipped checksum returned a half-loaded catalog")
	}

	// Truncate the middle record but keep its newline, so a full record
	// still follows — mid-log truncation, not a tolerated torn tail.
	truncated := append([]string(nil), lines...)
	truncated[1] = truncated[1][:len(truncated[1])/2] + "\n"
	c, err = Replay(write("truncated.log", truncated))
	if err == nil {
		t.Error("mid-log truncated record accepted")
	}
	if c != nil {
		t.Error("truncated record returned a half-loaded catalog")
	}

	// Control: the intact lines replay to all three features.
	c, err = Replay(write("intact.log", lines))
	if err != nil || c.Len() != 3 {
		t.Fatalf("intact log: len=%v err=%v", c, err)
	}
}
