package catalog

import (
	"math/bits"
	"sort"
)

// This file implements the interned-postings layer under every shard
// index: a term dictionary mapping each key (variable name, hierarchy
// parent, spatial grid cell) to a dense uint32 term ID, and one
// compressed posting container per ID holding the sorted set of shard
// positions carrying that term. Search resolves a query term to its ID
// once per (query, shard) — a single map probe — and every later step
// (candidate-tier intersection and union, batch building) runs over
// integer containers with no string hashing and no per-term slice
// headers in a map.
//
// Containers pick their representation per list: a sparse list stays a
// sorted int32 array (4 bytes per posting); a dense one packs into a
// bitmap over the shard's positions (shardLen/8 bytes total) whenever
// that is strictly smaller. Both iterate in ascending position order,
// so the planner's mark sweep and the executor's batches behave exactly
// as they did over raw []int32 lists — the representations are an
// encoding choice, never a semantics choice.

// Postings is one compressed posting list: the set of shard positions
// holding a term, iterated in ascending order. The zero value is an
// empty list. Read-only, like everything a Snapshot hands out.
type Postings struct {
	arr []int32  // sorted ascending; nil when bm is used
	bm  []uint64 // position bitmap; nil when arr is used
	n   int
}

// newPostings freezes a sorted, duplicate-free position list into the
// smaller of the two representations for a shard of shardLen features.
// It takes ownership of sorted.
func newPostings(sorted []int32, shardLen int) Postings {
	n := len(sorted)
	if n == 0 {
		return Postings{}
	}
	words := (shardLen + 63) / 64
	if 8*words < 4*n {
		bm := make([]uint64, words)
		for _, p := range sorted {
			bm[p>>6] |= 1 << (uint(p) & 63)
		}
		return Postings{bm: bm, n: n}
	}
	return Postings{arr: sorted, n: n}
}

// Len returns the number of positions in the list.
func (p Postings) Len() int { return p.n }

// dense reports whether the list is bitmap-packed (exposed for tests
// and the /stats index summary).
func (p Postings) dense() bool { return p.bm != nil }

// Mark sets bit in marks[pos] for every position in the list — the
// planner's union/intersection sweep, container-aware.
func (p Postings) Mark(marks []uint8, bit uint8) {
	if p.arr != nil {
		for _, q := range p.arr {
			marks[q] |= bit
		}
		return
	}
	for wi, w := range p.bm {
		base := wi << 6
		for w != 0 {
			marks[base+bits.TrailingZeros64(w)] |= bit
			w &= w - 1
		}
	}
}

// AppendTo appends the positions in ascending order to dst and returns
// the extended slice.
func (p Postings) AppendTo(dst []int32) []int32 {
	if p.arr != nil {
		return append(dst, p.arr...)
	}
	for wi, w := range p.bm {
		base := int32(wi << 6)
		for w != 0 {
			dst = append(dst, base+int32(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	return dst
}

// filterRemap returns the surviving positions after a shard delta:
// removed and dirty old positions drop out, the rest remap through the
// monotone posMap (so the output is sorted). Appends to dst.
func (p Postings) filterRemap(posMap []int32, dirtyOld []bool, dst []int32) []int32 {
	if p.arr != nil {
		for _, q := range p.arr {
			if posMap[q] >= 0 && !dirtyOld[q] {
				dst = append(dst, posMap[q])
			}
		}
		return dst
	}
	for wi, w := range p.bm {
		base := wi << 6
		for w != 0 {
			q := base + bits.TrailingZeros64(w)
			w &= w - 1
			if posMap[q] >= 0 && !dirtyOld[q] {
				dst = append(dst, posMap[q])
			}
		}
	}
	return dst
}

// --- term dictionary -------------------------------------------------

// postingStore interns one key space (variable names, parents, or grid
// cells) into dense term IDs with a posting container per ID. IDs are
// assigned in first-appearance order during the build, and are stable
// across ApplyDelta patches: a patch never renumbers, it only appends
// IDs for newly seen terms. A term whose last posting is retracted
// keeps its ID with an empty container (rebuilds reclaim them; the
// catalog falls back to a rebuild whenever a delta exceeds half the
// catalog, so stale IDs cannot accumulate unboundedly).
type postingStore[K comparable] struct {
	ids   map[K]uint32
	keys  []K
	lists []Postings
}

// id resolves a key to its dense term ID.
func (st postingStore[K]) id(key K) (uint32, bool) {
	i, ok := st.ids[key]
	return i, ok
}

// at returns the posting container for a term ID.
func (st postingStore[K]) at(id uint32) Postings { return st.lists[id] }

// lookup resolves and fetches in one step.
func (st postingStore[K]) lookup(key K) (Postings, bool) {
	i, ok := st.ids[key]
	if !ok {
		return Postings{}, false
	}
	return st.lists[i], true
}

// materialize expands the store back into the map-of-slices shape the
// pre-interning indexes used — equivalence tests compare stores through
// it, so representation choices stay invisible. Empty (retracted)
// terms are omitted, matching a from-scratch build.
func (st postingStore[K]) materialize() map[K][]int32 {
	out := make(map[K][]int32, len(st.keys))
	for i, key := range st.keys {
		if l := st.lists[i]; l.n > 0 {
			out[key] = l.AppendTo(make([]int32, 0, l.n))
		}
	}
	return out
}

// storeBuilder accumulates raw posting lists during a shard build.
// Positions must arrive in ascending order (buildShard walks features
// by position), so the frozen lists need no sort.
type storeBuilder[K comparable] struct {
	ids  map[K]uint32
	keys []K
	raw  [][]int32
}

func newStoreBuilder[K comparable]() *storeBuilder[K] {
	return &storeBuilder[K]{ids: make(map[K]uint32)}
}

func (b *storeBuilder[K]) add(key K, pos int32) {
	id, ok := b.ids[key]
	if !ok {
		id = uint32(len(b.keys))
		b.ids[key] = id
		b.keys = append(b.keys, key)
		b.raw = append(b.raw, nil)
	}
	b.raw[id] = append(b.raw[id], pos)
}

func (b *storeBuilder[K]) build(shardLen int) postingStore[K] {
	st := postingStore[K]{
		ids:   b.ids,
		keys:  b.keys,
		lists: make([]Postings, len(b.keys)),
	}
	for id, raw := range b.raw {
		st.lists[id] = newPostings(raw, shardLen)
	}
	return st
}

// --- copy-on-write patching ------------------------------------------

// storePatch builds a successor store for a shard delta. The dictionary
// (ids map and keys slice) is shared with the predecessor by pointer
// until a genuinely new term appears; posting containers of untouched
// terms are shared outright when no position shifted, remapped when it
// did, and touched terms are rebuilt from their surviving positions
// plus the dirty features' fresh entries — the same discipline
// patchPostings applied to raw map lists, now container-aware.
type storePatch[K comparable] struct {
	st     postingStore[K]
	raw    map[K][]int32 // touched term → surviving + fresh positions
	copied bool          // ids/keys copied-on-write already
}

// beginPatch classifies every existing term: untouched lists are shared
// (or remapped when positions shifted), touched lists have their
// survivors extracted for rebuilding.
func (st postingStore[K]) beginPatch(touched map[K]bool, shifted bool, posMap []int32, dirtyOld []bool, newLen int) *storePatch[K] {
	p := &storePatch[K]{
		st: postingStore[K]{
			ids:   st.ids,
			keys:  st.keys,
			lists: make([]Postings, len(st.lists)),
		},
		raw: make(map[K][]int32, len(touched)),
	}
	for id, list := range st.lists {
		key := st.keys[id]
		switch {
		case touched[key]:
			p.raw[key] = list.filterRemap(posMap, dirtyOld, nil)
		case shifted:
			p.st.lists[id] = newPostings(list.filterRemap(posMap, dirtyOld, nil), newLen)
		default:
			p.st.lists[id] = list // shared: membership and positions unchanged
		}
	}
	return p
}

// add records one posting of a dirty feature, interning the term on
// first sight (copying the dictionary at most once per patch).
func (p *storePatch[K]) add(key K, pos int32) {
	if _, ok := p.st.ids[key]; !ok {
		if !p.copied {
			ids := make(map[K]uint32, len(p.st.ids)+1)
			for k, v := range p.st.ids {
				ids[k] = v
			}
			p.st.ids = ids
			p.st.keys = append([]K(nil), p.st.keys...)
			p.copied = true
		}
		p.st.ids[key] = uint32(len(p.st.keys))
		p.st.keys = append(p.st.keys, key)
		p.st.lists = append(p.st.lists, Postings{})
	}
	p.raw[key] = append(p.raw[key], pos)
}

// finish freezes every touched term's rebuilt list and returns the
// successor store.
func (p *storePatch[K]) finish(newLen int) postingStore[K] {
	for key, raw := range p.raw {
		sort.Slice(raw, func(a, b int) bool { return raw[a] < raw[b] })
		p.st.lists[p.st.ids[key]] = newPostings(raw, newLen)
	}
	return p.st
}
