package catalog

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"time"

	"metamess/internal/geo"
)

// deltaFeature fabricates a deterministic feature for the delta tests.
// version changes the content (variables, extents) without changing the
// identity, modelling an edited file.
func deltaFeature(i, version int) *Feature {
	path := fmt.Sprintf("src%d/ds%04d.obs", i%3, i)
	names := []string{"water_temperature", "salinity", "turbidity", "dissolved_oxygen"}
	lat := 25 + float64((i*13+version*7)%400)*0.1
	lon := -130 + float64((i*31+version*3)%600)*0.1
	base := time.Date(2009, 1, 1, 0, 0, 0, 0, time.UTC)
	f := &Feature{
		ID:     IDForPath(path),
		Path:   path,
		Source: fmt.Sprintf("src%d", i%3),
		Format: "obs",
		BBox: geo.BBox{
			MinLat: lat - 0.05, MinLon: lon - 0.05,
			MaxLat: lat + 0.05, MaxLon: lon + 0.05,
		},
		Time: geo.NewTimeRange(
			base.AddDate(0, 0, (i*11+version)%800),
			base.AddDate(0, 0, (i*11+version)%800+10)),
		RowCount:    100 + version,
		Bytes:       int64(1000 + i),
		ModTime:     base.AddDate(1, 0, version),
		ScannedAt:   base.AddDate(2, 0, 0),
		ContentHash: fmt.Sprintf("h%d-%d", i, version),
		Variables: []VarFeature{
			{RawName: names[i%len(names)], Name: names[i%len(names)],
				Range: geo.NewValueRange(float64(version), float64(version+20)), Count: 50},
			{RawName: names[(i+1+version)%len(names)], Name: names[(i+1+version)%len(names)],
				Range: geo.NewValueRange(0, 30), Count: 70,
				Parent: "fluorescence"},
		},
	}
	if i%4 == 0 {
		f.Variables[1].Excluded = true
	}
	if i%5 == 0 {
		// No spatial extent: exercises the empty-bbox grid path.
		f.BBox = geo.EmptyBBox()
	}
	return f
}

// requireSnapshotsEquivalent compares a patched snapshot against a
// from-scratch rebuild: identical feature bytes, positions, posting
// lists, and candidate sets from both auxiliary indexes.
func requireSnapshotsEquivalent(t *testing.T, got, want *Snapshot) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("len = %d, want %d", got.Len(), want.Len())
	}
	for i := range want.features {
		g, _ := json.Marshal(got.features[i])
		w, _ := json.Marshal(want.features[i])
		if string(g) != string(w) {
			t.Fatalf("feature at position %d differs:\n got %s\nwant %s", i, g, w)
		}
	}
	if !reflect.DeepEqual(got.pos, want.pos) {
		t.Fatalf("pos maps differ: got %v, want %v", got.pos, want.pos)
	}
	if !reflect.DeepEqual(got.byName, want.byName) {
		t.Fatalf("byName differs:\n got %v\nwant %v", got.byName, want.byName)
	}
	if !reflect.DeepEqual(got.byParent, want.byParent) {
		t.Fatalf("byParent differs:\n got %v\nwant %v", got.byParent, want.byParent)
	}
	if !reflect.DeepEqual(got.spatial.cells, want.spatial.cells) {
		t.Fatalf("spatial cells differ")
	}
	if !reflect.DeepEqual(got.temporal.byStart, want.temporal.byStart) ||
		!reflect.DeepEqual(got.temporal.byEnd, want.temporal.byEnd) {
		t.Fatalf("temporal orders differ:\n got %v / %v\nwant %v / %v",
			got.temporal.byStart, got.temporal.byEnd, want.temporal.byStart, want.temporal.byEnd)
	}
	for i := range want.temporal.starts {
		if !got.temporal.starts[i].Equal(want.temporal.starts[i]) ||
			!got.temporal.ends[i].Equal(want.temporal.ends[i]) {
			t.Fatalf("temporal key arrays differ at %d", i)
		}
	}
}

// TestSnapshotApplyDeltaEquivalence drives randomized add/modify/delete
// deltas through ApplyDelta and checks after every round that the
// incrementally patched snapshot is indistinguishable from a snapshot
// rebuilt from scratch over the same features.
func TestSnapshotApplyDeltaEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			c := New()
			version := make(map[int]int) // live index → content version
			next := 0
			for i := 0; i < 40; i++ {
				version[next] = 0
				if err := c.Upsert(deltaFeature(next, 0)); err != nil {
					t.Fatal(err)
				}
				next++
			}
			c.Snapshot() // materialize so later deltas patch, not rebuild

			for round := 0; round < 12; round++ {
				var changed []*Feature
				var removed []string
				// Adds.
				for k := 0; k < rng.Intn(4); k++ {
					version[next] = 0
					changed = append(changed, deltaFeature(next, 0))
					next++
				}
				// Modifies and deletes over the live set (each feature at
				// most once per round).
				live := make([]int, 0, len(version))
				for i := range version {
					live = append(live, i)
				}
				sort.Ints(live)
				touched := make(map[int]bool)
				for k := 0; k < rng.Intn(5); k++ {
					if len(live) == 0 {
						break
					}
					i := live[rng.Intn(len(live))]
					if touched[i] {
						continue
					}
					touched[i] = true
					if rng.Intn(3) == 0 {
						removed = append(removed, deltaFeature(i, 0).ID)
						delete(version, i)
					} else {
						version[i]++
						changed = append(changed, deltaFeature(i, version[i]))
					}
				}
				sortFeaturesByID(changed)
				bumped, err := c.ApplyDelta(changed, removed)
				if err != nil {
					t.Fatal(err)
				}
				if want := len(changed)+len(removed) > 0; bumped != want {
					t.Fatalf("round %d: bumped = %v with %d changed, %d removed",
						round, bumped, len(changed), len(removed))
				}
				got := c.Snapshot()
				c.mu.RLock()
				want := newSnapshot(c.features, c.generation)
				c.mu.RUnlock()
				requireSnapshotsEquivalent(t, got, want)
				if got.Generation() != want.Generation() {
					t.Fatalf("round %d: generation %d, want %d", round, got.Generation(), want.Generation())
				}
			}
		})
	}
}

// TestApplyDeltaEmptyIsNoOp locks in the generation-stability argument:
// an empty delta must leave the generation and the served snapshot
// untouched, so a no-op re-wrangle cannot evict generation-keyed caches.
func TestApplyDeltaEmptyIsNoOp(t *testing.T) {
	c := New()
	for i := 0; i < 10; i++ {
		if err := c.Upsert(deltaFeature(i, 0)); err != nil {
			t.Fatal(err)
		}
	}
	before := c.Snapshot()
	gen := c.Generation()
	bumped, err := c.ApplyDelta(nil, nil)
	if err != nil || bumped {
		t.Fatalf("empty delta: bumped=%v err=%v", bumped, err)
	}
	// Removing an absent ID is also a no-op.
	bumped, err = c.ApplyDelta(nil, []string{"not-present"})
	if err != nil || bumped {
		t.Fatalf("absent removal: bumped=%v err=%v", bumped, err)
	}
	if c.Generation() != gen {
		t.Fatalf("generation moved: %d -> %d", gen, c.Generation())
	}
	if c.Snapshot() != before {
		t.Fatal("snapshot pointer changed on empty delta")
	}
}

// TestApplyDeltaLargeFallsBackToRebuild covers the full-rebuild branch:
// a delta touching most of the catalog must still produce an equivalent
// snapshot.
func TestApplyDeltaLargeFallsBackToRebuild(t *testing.T) {
	c := New()
	for i := 0; i < 12; i++ {
		if err := c.Upsert(deltaFeature(i, 0)); err != nil {
			t.Fatal(err)
		}
	}
	c.Snapshot()
	var changed []*Feature
	for i := 0; i < 12; i++ {
		changed = append(changed, deltaFeature(i, 9))
	}
	sortFeaturesByID(changed)
	if _, err := c.ApplyDelta(changed, nil); err != nil {
		t.Fatal(err)
	}
	got := c.Snapshot()
	c.mu.RLock()
	want := newSnapshot(c.features, c.generation)
	c.mu.RUnlock()
	requireSnapshotsEquivalent(t, got, want)
}

// TestApplyDeltaRejectsInvalid ensures validation still gates the write
// path: a malformed feature fails the whole delta before any mutation.
func TestApplyDeltaRejectsInvalid(t *testing.T) {
	c := New()
	if err := c.Upsert(deltaFeature(0, 0)); err != nil {
		t.Fatal(err)
	}
	gen := c.Generation()
	bad := deltaFeature(1, 0)
	bad.ID = "mismatched"
	if _, err := c.ApplyDelta([]*Feature{bad}, nil); err == nil {
		t.Fatal("invalid feature accepted")
	}
	if c.Generation() != gen || c.Len() != 1 {
		t.Fatal("failed delta mutated the catalog")
	}
}

func sortFeaturesByID(fs []*Feature) {
	sort.Slice(fs, func(i, j int) bool { return fs[i].ID < fs[j].ID })
}

// TestContentEqualsCoversEveryField is the tripwire that keeps
// ContentEquals honest as the structs grow: it pins the field counts of
// Feature and VarFeature (grow one → this fails → extend ContentEquals
// and the mutation table below), and checks per-field that a lone
// mutation flips equality — except ScannedAt, the one field publish
// deliberately ignores.
func TestContentEqualsCoversEveryField(t *testing.T) {
	if n := reflect.TypeOf(Feature{}).NumField(); n != 12 {
		t.Fatalf("Feature has %d fields (expected 12): extend ContentEquals and this test's mutation table", n)
	}
	if n := reflect.TypeOf(VarFeature{}).NumField(); n != 9 {
		t.Fatalf("VarFeature has %d fields (expected 9): extend ContentEquals and this test's mutation table", n)
	}

	base := func() *Feature { return deltaFeature(1, 0) }
	if !base().ContentEquals(base()) {
		t.Fatal("identical features compare unequal")
	}

	mutations := map[string]func(*Feature){
		"ID":                      func(f *Feature) { f.ID = "other" },
		"Path":                    func(f *Feature) { f.Path = "other/path.obs" },
		"Source":                  func(f *Feature) { f.Source = "other" },
		"Format":                  func(f *Feature) { f.Format = "csv" },
		"BBox":                    func(f *Feature) { f.BBox.MaxLat += 0.5 },
		"Time":                    func(f *Feature) { f.Time.End = f.Time.End.AddDate(0, 1, 0) },
		"RowCount":                func(f *Feature) { f.RowCount++ },
		"Bytes":                   func(f *Feature) { f.Bytes++ },
		"ModTime":                 func(f *Feature) { f.ModTime = f.ModTime.Add(time.Second) },
		"ContentHash":             func(f *Feature) { f.ContentHash = "deadbeef" },
		"Variables/len":           func(f *Feature) { f.Variables = f.Variables[:1] },
		"Variables/RawName":       func(f *Feature) { f.Variables[0].RawName = "x" },
		"Variables/Name":          func(f *Feature) { f.Variables[0].Name = "x" },
		"Variables/Unit":          func(f *Feature) { f.Variables[0].Unit = "x" },
		"Variables/CanonicalUnit": func(f *Feature) { f.Variables[0].CanonicalUnit = "x" },
		"Variables/Range":         func(f *Feature) { f.Variables[0].Range.Max += 1 },
		"Variables/Count":         func(f *Feature) { f.Variables[0].Count++ },
		"Variables/Excluded":      func(f *Feature) { f.Variables[0].Excluded = !f.Variables[0].Excluded },
		"Variables/Contexts":      func(f *Feature) { f.Variables[0].Contexts = []string{"air"} },
		"Variables/Parent":        func(f *Feature) { f.Variables[1].Parent = "other_parent" },
	}
	for name, mutate := range mutations {
		f := base()
		mutate(f)
		if base().ContentEquals(f) {
			t.Errorf("mutation of %s not detected by ContentEquals", name)
		}
	}

	// ScannedAt is bookkeeping: publish must not see it as churn.
	f := base()
	f.ScannedAt = f.ScannedAt.Add(48 * time.Hour)
	if !base().ContentEquals(f) {
		t.Error("ScannedAt change treated as content churn")
	}
}
