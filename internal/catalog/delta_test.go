package catalog

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"time"

	"metamess/internal/geo"
)

// deltaFeature fabricates a deterministic feature for the delta tests.
// version changes the content (variables, extents) without changing the
// identity, modelling an edited file.
func deltaFeature(i, version int) *Feature {
	path := fmt.Sprintf("src%d/ds%04d.obs", i%3, i)
	names := []string{"water_temperature", "salinity", "turbidity", "dissolved_oxygen"}
	lat := 25 + float64((i*13+version*7)%400)*0.1
	lon := -130 + float64((i*31+version*3)%600)*0.1
	base := time.Date(2009, 1, 1, 0, 0, 0, 0, time.UTC)
	f := &Feature{
		ID:     IDForPath(path),
		Path:   path,
		Source: fmt.Sprintf("src%d", i%3),
		Format: "obs",
		BBox: geo.BBox{
			MinLat: lat - 0.05, MinLon: lon - 0.05,
			MaxLat: lat + 0.05, MaxLon: lon + 0.05,
		},
		Time: geo.NewTimeRange(
			base.AddDate(0, 0, (i*11+version)%800),
			base.AddDate(0, 0, (i*11+version)%800+10)),
		RowCount:    100 + version,
		Bytes:       int64(1000 + i),
		ModTime:     base.AddDate(1, 0, version),
		ScannedAt:   base.AddDate(2, 0, 0),
		ContentHash: fmt.Sprintf("h%d-%d", i, version),
		Variables: []VarFeature{
			{RawName: names[i%len(names)], Name: names[i%len(names)],
				Range: geo.NewValueRange(float64(version), float64(version+20)), Count: 50},
			{RawName: names[(i+1+version)%len(names)], Name: names[(i+1+version)%len(names)],
				Range: geo.NewValueRange(0, 30), Count: 70,
				Parent: "fluorescence"},
		},
	}
	if i%4 == 0 {
		f.Variables[1].Excluded = true
	}
	if i%5 == 0 {
		// No spatial extent: exercises the empty-bbox grid path.
		f.BBox = geo.EmptyBBox()
	}
	return f
}

// requireSnapshotsEquivalent compares a patched snapshot against a
// from-scratch rebuild, shard by shard: identical feature bytes,
// positions, posting lists, and candidate sets from both auxiliary
// indexes.
func requireSnapshotsEquivalent(t *testing.T, got, want *Snapshot) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("len = %d, want %d", got.Len(), want.Len())
	}
	if got.NumShards() != want.NumShards() {
		t.Fatalf("shard count = %d, want %d", got.NumShards(), want.NumShards())
	}
	for si := range want.shards {
		requireShardsEquivalent(t, si, got.shards[si], want.shards[si])
	}
}

func requireShardsEquivalent(t *testing.T, si int, got, want *Shard) {
	t.Helper()
	if len(got.features) != len(want.features) {
		t.Fatalf("shard %d: len = %d, want %d", si, len(got.features), len(want.features))
	}
	for i := range want.features {
		g, _ := json.Marshal(got.features[i])
		w, _ := json.Marshal(want.features[i])
		if string(g) != string(w) {
			t.Fatalf("shard %d: feature at position %d differs:\n got %s\nwant %s", si, i, g, w)
		}
	}
	for i, f := range want.features {
		p, ok := got.posOf(f.ID)
		if !ok || p != int32(i) {
			t.Fatalf("shard %d: posOf(%s) = %d, %v (want %d)", si, f.ID, p, ok, i)
		}
	}
	// Interned stores compare through materialize(): a patched store may
	// carry extra dictionary entries for retracted terms (IDs are stable,
	// never reclaimed until a rebuild) and may pick a different container
	// representation than a from-scratch build at the same position count
	// boundary — what must agree exactly is the term → sorted-positions
	// mapping the planner reads.
	if !reflect.DeepEqual(got.names.materialize(), want.names.materialize()) {
		t.Fatalf("shard %d: name postings differ:\n got %v\nwant %v",
			si, got.names.materialize(), want.names.materialize())
	}
	if !reflect.DeepEqual(got.parents.materialize(), want.parents.materialize()) {
		t.Fatalf("shard %d: parent postings differ:\n got %v\nwant %v",
			si, got.parents.materialize(), want.parents.materialize())
	}
	if !reflect.DeepEqual(got.spatial.store.materialize(), want.spatial.store.materialize()) {
		t.Fatalf("shard %d: spatial cell postings differ", si)
	}
	checkStoreWellFormed(t, si, "names", got.names, len(got.features))
	checkStoreWellFormed(t, si, "parents", got.parents, len(got.features))
	checkStoreWellFormed(t, si, "cells", got.spatial.store, len(got.features))
	if !reflect.DeepEqual(got.temporal.byStart, want.temporal.byStart) ||
		!reflect.DeepEqual(got.temporal.byEnd, want.temporal.byEnd) {
		t.Fatalf("shard %d: temporal orders differ:\n got %v / %v\nwant %v / %v",
			si, got.temporal.byStart, got.temporal.byEnd, want.temporal.byStart, want.temporal.byEnd)
	}
	for i := range want.temporal.starts {
		if !got.temporal.starts[i].Equal(want.temporal.starts[i]) ||
			!got.temporal.ends[i].Equal(want.temporal.ends[i]) {
			t.Fatalf("shard %d: temporal key arrays differ at %d", si, i)
		}
	}
}

// checkStoreWellFormed asserts the structural invariants of an interned
// store after patching: a consistent dictionary (keys[ids[k]] == k, no
// dangling lists), every container sorted, duplicate-free, in-bounds,
// with an accurate length, and a representation matching the size
// heuristic.
func checkStoreWellFormed[K comparable](t *testing.T, si int, label string, st postingStore[K], shardLen int) {
	t.Helper()
	if len(st.keys) != len(st.lists) {
		t.Fatalf("shard %d: %s store: %d keys vs %d lists", si, label, len(st.keys), len(st.lists))
	}
	for key, id := range st.ids {
		if int(id) >= len(st.keys) || st.keys[id] != key {
			t.Fatalf("shard %d: %s store: dictionary entry %v -> %d dangles", si, label, key, id)
		}
	}
	for id, list := range st.lists {
		got := list.AppendTo(nil)
		if len(got) != list.Len() {
			t.Fatalf("shard %d: %s store: term %d Len()=%d but %d positions",
				si, label, id, list.Len(), len(got))
		}
		for i, p := range got {
			if p < 0 || int(p) >= shardLen {
				t.Fatalf("shard %d: %s store: term %d position %d out of bounds", si, label, id, p)
			}
			if i > 0 && got[i-1] >= p {
				t.Fatalf("shard %d: %s store: term %d not strictly ascending at %d", si, label, id, i)
			}
		}
		words := (shardLen + 63) / 64
		if wantDense := list.Len() > 0 && 8*words < 4*list.Len(); list.dense() != wantDense {
			t.Fatalf("shard %d: %s store: term %d dense=%v, heuristic says %v (n=%d, shardLen=%d)",
				si, label, id, list.dense(), wantDense, list.Len(), shardLen)
		}
	}
}

// TestSnapshotApplyDeltaEquivalence drives randomized add/modify/delete
// deltas through ApplyDelta and checks after every round that the
// incrementally patched snapshot is indistinguishable from a snapshot
// rebuilt from scratch over the same features.
func TestSnapshotApplyDeltaEquivalence(t *testing.T) {
	for _, shards := range []int{1, 3, 8} {
		for _, seed := range []int64{1, 7, 42} {
			t.Run(fmt.Sprintf("shards%d/seed%d", shards, seed), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed))
				c := NewSharded(shards)
				version := make(map[int]int) // live index → content version
				next := 0
				for i := 0; i < 40; i++ {
					version[next] = 0
					if err := c.Upsert(deltaFeature(next, 0)); err != nil {
						t.Fatal(err)
					}
					next++
				}
				c.Snapshot() // materialize so later deltas patch, not rebuild

				for round := 0; round < 12; round++ {
					var changed []*Feature
					var removed []string
					// Adds.
					for k := 0; k < rng.Intn(4); k++ {
						version[next] = 0
						changed = append(changed, deltaFeature(next, 0))
						next++
					}
					// Modifies and deletes over the live set (each feature at
					// most once per round).
					live := make([]int, 0, len(version))
					for i := range version {
						live = append(live, i)
					}
					sort.Ints(live)
					touched := make(map[int]bool)
					for k := 0; k < rng.Intn(5); k++ {
						if len(live) == 0 {
							break
						}
						i := live[rng.Intn(len(live))]
						if touched[i] {
							continue
						}
						touched[i] = true
						if rng.Intn(3) == 0 {
							removed = append(removed, deltaFeature(i, 0).ID)
							delete(version, i)
						} else {
							version[i]++
							changed = append(changed, deltaFeature(i, version[i]))
						}
					}
					sortFeaturesByID(changed)
					bumped, err := c.ApplyDelta(changed, removed)
					if err != nil {
						t.Fatal(err)
					}
					if want := len(changed)+len(removed) > 0; bumped != want {
						t.Fatalf("round %d: bumped = %v with %d changed, %d removed",
							round, bumped, len(changed), len(removed))
					}
					got := c.Snapshot()
					c.mu.RLock()
					want := newSnapshot(c.features, c.generation, c.shards)
					c.mu.RUnlock()
					requireSnapshotsEquivalent(t, got, want)
					if got.Generation() != want.Generation() {
						t.Fatalf("round %d: generation %d, want %d", round, got.Generation(), want.Generation())
					}
				}
			})
		}
	}
}

// TestApplyDeltaEmptyIsNoOp locks in the generation-stability argument:
// an empty delta must leave the generation and the served snapshot
// untouched, so a no-op re-wrangle cannot evict generation-keyed caches.
func TestApplyDeltaEmptyIsNoOp(t *testing.T) {
	c := New()
	for i := 0; i < 10; i++ {
		if err := c.Upsert(deltaFeature(i, 0)); err != nil {
			t.Fatal(err)
		}
	}
	before := c.Snapshot()
	gen := c.Generation()
	bumped, err := c.ApplyDelta(nil, nil)
	if err != nil || bumped {
		t.Fatalf("empty delta: bumped=%v err=%v", bumped, err)
	}
	// Removing an absent ID is also a no-op.
	bumped, err = c.ApplyDelta(nil, []string{"not-present"})
	if err != nil || bumped {
		t.Fatalf("absent removal: bumped=%v err=%v", bumped, err)
	}
	if c.Generation() != gen {
		t.Fatalf("generation moved: %d -> %d", gen, c.Generation())
	}
	if c.Snapshot() != before {
		t.Fatal("snapshot pointer changed on empty delta")
	}
}

// TestApplyDeltaLargeFallsBackToRebuild covers the full-rebuild branch:
// a delta touching most of the catalog must still produce an equivalent
// snapshot.
func TestApplyDeltaLargeFallsBackToRebuild(t *testing.T) {
	c := New()
	for i := 0; i < 12; i++ {
		if err := c.Upsert(deltaFeature(i, 0)); err != nil {
			t.Fatal(err)
		}
	}
	c.Snapshot()
	var changed []*Feature
	for i := 0; i < 12; i++ {
		changed = append(changed, deltaFeature(i, 9))
	}
	sortFeaturesByID(changed)
	if _, err := c.ApplyDelta(changed, nil); err != nil {
		t.Fatal(err)
	}
	got := c.Snapshot()
	c.mu.RLock()
	want := newSnapshot(c.features, c.generation, c.shards)
	c.mu.RUnlock()
	requireSnapshotsEquivalent(t, got, want)
}

// TestApplyDeltaRejectsInvalid ensures validation still gates the write
// path: a malformed feature fails the whole delta before any mutation.
func TestApplyDeltaRejectsInvalid(t *testing.T) {
	c := New()
	if err := c.Upsert(deltaFeature(0, 0)); err != nil {
		t.Fatal(err)
	}
	gen := c.Generation()
	bad := deltaFeature(1, 0)
	bad.ID = "mismatched"
	if _, err := c.ApplyDelta([]*Feature{bad}, nil); err == nil {
		t.Fatal("invalid feature accepted")
	}
	if c.Generation() != gen || c.Len() != 1 {
		t.Fatal("failed delta mutated the catalog")
	}
}

func sortFeaturesByID(fs []*Feature) {
	sort.Slice(fs, func(i, j int) bool { return fs[i].ID < fs[j].ID })
}

// TestContentEqualsCoversEveryField is the tripwire that keeps
// ContentEquals honest as the structs grow: it pins the field counts of
// Feature and VarFeature (grow one → this fails → extend ContentEquals
// and the mutation table below), and checks per-field that a lone
// mutation flips equality — except ScannedAt, the one field publish
// deliberately ignores.
func TestContentEqualsCoversEveryField(t *testing.T) {
	if n := reflect.TypeOf(Feature{}).NumField(); n != 12 {
		t.Fatalf("Feature has %d fields (expected 12): extend ContentEquals and this test's mutation table", n)
	}
	if n := reflect.TypeOf(VarFeature{}).NumField(); n != 9 {
		t.Fatalf("VarFeature has %d fields (expected 9): extend ContentEquals and this test's mutation table", n)
	}

	base := func() *Feature { return deltaFeature(1, 0) }
	if !base().ContentEquals(base()) {
		t.Fatal("identical features compare unequal")
	}

	mutations := map[string]func(*Feature){
		"ID":                      func(f *Feature) { f.ID = "other" },
		"Path":                    func(f *Feature) { f.Path = "other/path.obs" },
		"Source":                  func(f *Feature) { f.Source = "other" },
		"Format":                  func(f *Feature) { f.Format = "csv" },
		"BBox":                    func(f *Feature) { f.BBox.MaxLat += 0.5 },
		"Time":                    func(f *Feature) { f.Time.End = f.Time.End.AddDate(0, 1, 0) },
		"RowCount":                func(f *Feature) { f.RowCount++ },
		"Bytes":                   func(f *Feature) { f.Bytes++ },
		"ModTime":                 func(f *Feature) { f.ModTime = f.ModTime.Add(time.Second) },
		"ContentHash":             func(f *Feature) { f.ContentHash = "deadbeef" },
		"Variables/len":           func(f *Feature) { f.Variables = f.Variables[:1] },
		"Variables/RawName":       func(f *Feature) { f.Variables[0].RawName = "x" },
		"Variables/Name":          func(f *Feature) { f.Variables[0].Name = "x" },
		"Variables/Unit":          func(f *Feature) { f.Variables[0].Unit = "x" },
		"Variables/CanonicalUnit": func(f *Feature) { f.Variables[0].CanonicalUnit = "x" },
		"Variables/Range":         func(f *Feature) { f.Variables[0].Range.Max += 1 },
		"Variables/Count":         func(f *Feature) { f.Variables[0].Count++ },
		"Variables/Excluded":      func(f *Feature) { f.Variables[0].Excluded = !f.Variables[0].Excluded },
		"Variables/Contexts":      func(f *Feature) { f.Variables[0].Contexts = []string{"air"} },
		"Variables/Parent":        func(f *Feature) { f.Variables[1].Parent = "other_parent" },
	}
	for name, mutate := range mutations {
		f := base()
		mutate(f)
		if base().ContentEquals(f) {
			t.Errorf("mutation of %s not detected by ContentEquals", name)
		}
	}

	// ScannedAt is bookkeeping: publish must not see it as churn.
	f := base()
	f.ScannedAt = f.ScannedAt.Add(48 * time.Hour)
	if !base().ContentEquals(f) {
		t.Error("ScannedAt change treated as content churn")
	}
}

// TestApplyDeltaSharesCleanShards pins the dirty-shard-only publish
// cost the sharded snapshot exists for: after ApplyDelta, every shard
// the delta's IDs do not hash into IS the predecessor's shard — pointer
// identity, not merely equal content — while every dirty shard was
// freshly patched. Inside a dirty shard, features outside the delta
// still share their Feature pointers with the predecessor.
func TestApplyDeltaSharesCleanShards(t *testing.T) {
	const shards = 8
	c := NewSharded(shards)
	for i := 0; i < 64; i++ {
		if err := c.Upsert(deltaFeature(i, 0)); err != nil {
			t.Fatal(err)
		}
	}
	before := c.Snapshot()

	changed := []*Feature{deltaFeature(3, 1), deltaFeature(17, 1)}
	sortFeaturesByID(changed)
	removed := []string{deltaFeature(9, 0).ID}
	dirty := make(map[int]bool)
	for _, f := range changed {
		dirty[shardIndex(f.ID, shards)] = true
	}
	for _, id := range removed {
		dirty[shardIndex(id, shards)] = true
	}

	if bumped, err := c.ApplyDelta(changed, removed); err != nil || !bumped {
		t.Fatalf("ApplyDelta: bumped=%v err=%v", bumped, err)
	}
	after := c.Snapshot()
	if after == before {
		t.Fatal("snapshot did not advance")
	}
	sharedN, patchedN := 0, 0
	for si := range after.shards {
		if dirty[si] {
			patchedN++
			if after.shards[si] == before.shards[si] {
				t.Errorf("dirty shard %d not patched", si)
			}
		} else {
			sharedN++
			if after.shards[si] != before.shards[si] {
				t.Errorf("clean shard %d not pointer-shared with predecessor", si)
			}
		}
	}
	if patchedN == 0 || sharedN == 0 {
		t.Fatalf("degenerate partition: %d patched, %d shared (want both > 0)", patchedN, sharedN)
	}

	// Unchanged features inside a dirty shard are shared, not re-cloned.
	inDelta := map[string]bool{removed[0]: true}
	for _, f := range changed {
		inDelta[f.ID] = true
	}
	checked := 0
	for si := range after.shards {
		if !dirty[si] {
			continue
		}
		for _, f := range after.shards[si].features {
			if inDelta[f.ID] {
				continue
			}
			was, ok := before.ByID(f.ID)
			if !ok {
				t.Fatalf("feature %s missing from predecessor", f.ID)
			}
			if was != f {
				t.Errorf("untouched feature %s re-cloned inside dirty shard %d", f.ID, si)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no untouched features found in dirty shards; weaken the partition assumptions")
	}

	// Inside a dirty shard that only saw content modifications (no
	// insert, no removal — positions unchanged), posting containers of
	// terms the delta did not touch are shared with the predecessor's
	// containers by storage, not rebuilt. The spatial cell store is the
	// one with enough distinct keys to observe this: every feature sits
	// in its own neighborhood, so the delta touches only the cells of
	// the five features it names (old and new extents).
	touchedCells := make(map[int32]bool)
	for _, f := range []*Feature{
		deltaFeature(3, 0), deltaFeature(3, 1),
		deltaFeature(17, 0), deltaFeature(17, 1),
		deltaFeature(9, 0),
	} {
		for _, cell := range bboxCells(f.BBox) {
			touchedCells[cell] = true
		}
	}
	shiftedShards := make(map[int]bool)
	for _, id := range removed {
		shiftedShards[shardIndex(id, shards)] = true
	}
	sharedLists := 0
	for si := range after.shards {
		if !dirty[si] || shiftedShards[si] {
			continue
		}
		bs, as := before.shards[si].spatial.store, after.shards[si].spatial.store
		for id, key := range bs.keys {
			if touchedCells[key] || bs.lists[id].Len() == 0 {
				continue
			}
			al, ok := as.lookup(key)
			if !ok {
				t.Fatalf("shard %d: untouched cell %d vanished from patched store", si, key)
			}
			if !sharesStorage(bs.lists[id], al) {
				t.Errorf("shard %d: untouched cell %d rebuilt instead of shared", si, key)
			}
			sharedLists++
		}
	}
	if sharedLists == 0 {
		t.Fatal("no untouched posting lists found in modification-only dirty shards; weaken the partition assumptions")
	}
}

// sharesStorage reports whether two posting containers share their
// backing array — the pointer-identity form of "this list was not
// rebuilt".
func sharesStorage(a, b Postings) bool {
	if a.n != b.n || a.n == 0 {
		return false
	}
	if a.arr != nil && b.arr != nil {
		return &a.arr[0] == &b.arr[0]
	}
	if a.bm != nil && b.bm != nil {
		return &a.bm[0] == &b.bm[0]
	}
	return false
}

// TestSnapshotShardingInvariants checks the partition itself: shard
// routing is by the fixed ID hash, sizes sum to Len, every feature is
// findable through ByID, and All() is globally ID-sorted regardless of
// the shard count.
func TestSnapshotShardingInvariants(t *testing.T) {
	for _, shards := range []int{1, 2, 5, 16} {
		c := NewSharded(shards)
		for i := 0; i < 50; i++ {
			if err := c.Upsert(deltaFeature(i, 0)); err != nil {
				t.Fatal(err)
			}
		}
		s := c.Snapshot()
		if s.NumShards() != shards {
			t.Fatalf("NumShards = %d, want %d", s.NumShards(), shards)
		}
		total := 0
		for si, size := range s.ShardSizes() {
			total += size
			for _, f := range s.Shards()[si].All() {
				if want := shardIndex(f.ID, shards); want != si {
					t.Fatalf("feature %s in shard %d, hash says %d", f.ID, si, want)
				}
			}
		}
		if total != s.Len() || s.Len() != 50 {
			t.Fatalf("shard sizes sum to %d, Len = %d", total, s.Len())
		}
		all := s.All()
		if len(all) != 50 {
			t.Fatalf("All() has %d features", len(all))
		}
		for i := 1; i < len(all); i++ {
			if all[i-1].ID >= all[i].ID {
				t.Fatalf("All() not ID-sorted at %d", i)
			}
		}
		for _, f := range all {
			got, ok := s.ByID(f.ID)
			if !ok || got != f {
				t.Fatalf("ByID(%s) = %v, %v", f.ID, got, ok)
			}
		}
	}
}
