package catalog

import (
	"os"
	"path/filepath"
	"testing"
)

// fuzzSeedJournal builds a small, valid journal's bytes for the seed
// corpus: two delta records with changed features, a removal, and
// sidecars.
func fuzzSeedJournal(t testing.TB) []byte {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "journal")
	j, err := OpenJournal(path, SyncNone, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := j.Append(journalRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// FuzzJournalReplay feeds arbitrary bytes to the store's recovery path
// as the journal and requires the all-or-nothing contract to hold: the
// open either fails cleanly or yields a valid catalog — every feature
// passing Validate, the generation matching the store's — and it does
// so deterministically. It must never panic and never surface silent
// partial state (two opens of the same bytes disagreeing).
func FuzzJournalReplay(f *testing.F) {
	valid := fuzzSeedJournal(f)
	f.Add(valid)
	// Torn tail: a record cut mid-payload.
	f.Add(valid[:len(valid)-17])
	// Mid-file corruption: a flipped byte in the first record.
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/4] ^= 0x20
	f.Add(flipped)
	// Reordered/duplicated generations.
	half := valid[:findNthNewline(valid, 1)]
	f.Add(append(append([]byte(nil), valid...), half...))
	// Structurally fine line, wrong op.
	putLine, err := encodeRecord(logRecord{Op: "put", Feature: feat("fz.csv", "v")})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(putLine)
	// Checksummed garbage payload.
	garbage, err := encodeRecord(logRecord{Op: "delta", Gen: 3})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(append(garbage, []byte("00000000 not-json\n")...))
	f.Add([]byte(""))
	f.Add([]byte("go wild\n\n\x00\xff"))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "journal"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		recover := func() (*Catalog, uint64, error) {
			into := New()
			gen, _, _, _, err := recoverState(dir, into)
			return into, gen, err
		}

		c1, gen1, err1 := recover()
		c2, gen2, err2 := recover()
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("non-deterministic recovery: %v vs %v", err1, err2)
		}
		if err1 != nil {
			return // clean refusal: the contract holds
		}
		// A recovered catalog must be fully valid...
		for _, feat := range c1.Snapshot().All() {
			if err := feat.Validate(); err != nil {
				t.Fatalf("recovered catalog holds invalid feature: %v", err)
			}
		}
		if c1.Generation() != gen1 {
			t.Fatalf("catalog generation %d != recovered generation %d", c1.Generation(), gen1)
		}
		// ...and recovery must be a pure function of the bytes.
		if storeFingerprint(t, c1) != storeFingerprint(t, c2) || gen1 != gen2 {
			t.Fatal("two recoveries of the same journal bytes disagree")
		}
	})
}

// findNthNewline returns the index just past the n-th newline (1-based).
func findNthNewline(b []byte, n int) int {
	for i, c := range b {
		if c == '\n' {
			n--
			if n == 0 {
				return i + 1
			}
		}
	}
	return len(b)
}
