package catalog

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestLogPutDurableWithoutSync pins the durability fix: an acknowledged
// Put must be on disk before the call returns — not parked in a
// userspace buffer waiting for an eventual Sync that a crash would
// preempt. The log file is read back through a fresh descriptor without
// Sync or Close ever being called.
func TestLogPutDurableWithoutSync(t *testing.T) {
	path := filepath.Join(t.TempDir(), "catalog.log")
	log, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	f := feat("durable.csv", "salinity")
	if err := log.Put(f); err != nil {
		t.Fatal(err)
	}
	// No Sync, no Close: simulate the process dying right here.
	c, err := Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 {
		t.Fatalf("acknowledged Put not on disk: replayed %d features, want 1", c.Len())
	}
	if _, ok := c.Get(f.ID); !ok {
		t.Fatal("acknowledged feature missing after simulated crash")
	}
	log.Close()

	// The bulk policy really does buffer (so the fix above is the
	// policy, not an accident of small writes).
	path2 := filepath.Join(t.TempDir(), "bulk.log")
	bulk, err := OpenLog(path2)
	if err != nil {
		t.Fatal(err)
	}
	bulk.SetSyncPolicy(SyncNone)
	if err := bulk.Put(f); err != nil {
		t.Fatal(err)
	}
	if st, err := os.Stat(path2); err != nil || st.Size() != 0 {
		t.Fatalf("SyncNone log flushed eagerly (size %d); buffering broken", st.Size())
	}
	if err := bulk.Close(); err != nil {
		t.Fatal(err)
	}
	if c, err := Replay(path2); err != nil || c.Len() != 1 {
		t.Fatalf("bulk log after Close: len=%v err=%v", c, err)
	}
}

// journalRec fabricates the i-th deterministic publish delta.
func journalRec(i int) DeltaRecord {
	return DeltaRecord{
		Gen:     uint64(i + 1),
		Changed: []*Feature{deltaFeature(i, 0), deltaFeature(i+100, 0)},
		Removed: []string{IDForPath(fmt.Sprintf("gone/%d.csv", i))},
		Sidecar: json.RawMessage(fmt.Sprintf(`{"epoch":%d}`, i+1)),
	}
}

func TestJournalAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	j, err := OpenJournal(path, SyncAlways, 0)
	if err != nil {
		t.Fatal(err)
	}
	const n = 5
	for i := 0; i < n; i++ {
		if err := j.Append(journalRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	var got []DeltaRecord
	applied, err := ReplayJournal(path, func(rec DeltaRecord) error {
		got = append(got, rec)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if applied != n || len(got) != n {
		t.Fatalf("replayed %d records, want %d", applied, n)
	}
	for i, rec := range got {
		want := journalRec(i)
		if rec.Gen != want.Gen {
			t.Errorf("record %d gen = %d, want %d", i, rec.Gen, want.Gen)
		}
		if len(rec.Changed) != len(want.Changed) || !rec.Changed[0].ContentEquals(want.Changed[0]) {
			t.Errorf("record %d changed features corrupted", i)
		}
		if len(rec.Removed) != 1 || rec.Removed[0] != want.Removed[0] {
			t.Errorf("record %d removed = %v", i, rec.Removed)
		}
		if string(rec.Sidecar) != string(want.Sidecar) {
			t.Errorf("record %d sidecar = %s, want %s", i, rec.Sidecar, want.Sidecar)
		}
	}
}

func TestJournalReplayMissingFileIsEmpty(t *testing.T) {
	n, err := ReplayJournal(filepath.Join(t.TempDir(), "nope"), func(DeltaRecord) error {
		t.Fatal("apply called for a missing journal")
		return nil
	})
	if err != nil || n != 0 {
		t.Fatalf("missing journal: n=%d err=%v", n, err)
	}
}

func TestJournalReplayToleratesTornTailOnly(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal")
	j, _ := OpenJournal(path, SyncAlways, 0)
	for i := 0; i < 3; i++ {
		if err := j.Append(journalRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Torn tail: drop the last 25 bytes. Two intact records survive.
	torn := filepath.Join(dir, "torn")
	if err := os.WriteFile(torn, data[:len(data)-25], 0o644); err != nil {
		t.Fatal(err)
	}
	n, err := ReplayJournal(torn, func(DeltaRecord) error { return nil })
	if err != nil || n != 2 {
		t.Fatalf("torn tail: n=%d err=%v, want 2 records and no error", n, err)
	}

	// Mid-file truncation (a full record follows the damage) is fatal.
	lines := strings.SplitAfter(string(data), "\n")
	mid := lines[0] + lines[1][:len(lines[1])/2] + "\n" + lines[2]
	midPath := filepath.Join(dir, "mid")
	if err := os.WriteFile(midPath, []byte(mid), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReplayJournal(midPath, func(DeltaRecord) error { return nil }); err == nil {
		t.Fatal("mid-file truncation accepted")
	}

	// A valid record of the wrong op is rejected.
	line, err := encodeRecord(logRecord{Op: "put", Feature: feat("x.csv", "v")})
	if err != nil {
		t.Fatal(err)
	}
	wrongOp := filepath.Join(dir, "wrongop")
	if err := os.WriteFile(wrongOp, line, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReplayJournal(wrongOp, func(DeltaRecord) error { return nil }); err == nil {
		t.Fatal("non-delta op accepted in journal")
	}

	// A delta whose feature fails validation is rejected.
	bad := deltaFeature(1, 1)
	bad.ID = "not-the-path-hash"
	badLine, err := encodeRecord(logRecord{Op: "delta", Gen: 1, Changed: []*Feature{bad}})
	if err != nil {
		t.Fatal(err)
	}
	badPath := filepath.Join(dir, "badfeat")
	if err := os.WriteFile(badPath, badLine, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReplayJournal(badPath, func(DeltaRecord) error { return nil }); err == nil {
		t.Fatal("invalid feature accepted in journal")
	}
}

func TestJournalRotate(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal")
	old := filepath.Join(dir, "journal.old")
	j, err := OpenJournal(path, SyncAlways, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(journalRec(0)); err != nil {
		t.Fatal(err)
	}
	if err := j.rotate(old); err != nil {
		t.Fatal(err)
	}
	if j.Size() != 0 {
		t.Fatalf("post-rotate size = %d, want 0", j.Size())
	}
	if err := j.Append(journalRec(1)); err != nil {
		t.Fatal(err)
	}
	j.Close()

	count := func(p string) int {
		n, err := ReplayJournal(p, func(DeltaRecord) error { return nil })
		if err != nil {
			t.Fatalf("replay %s: %v", p, err)
		}
		return n
	}
	if n := count(old); n != 1 {
		t.Errorf("journal.old has %d records, want 1", n)
	}
	if n := count(path); n != 1 {
		t.Errorf("new journal has %d records, want 1", n)
	}
}

func TestJournalSyncPolicies(t *testing.T) {
	for _, tc := range []struct {
		in      string
		want    SyncPolicy
		wantErr bool
	}{
		{"", SyncAlways, false},
		{"always", SyncAlways, false},
		{"group", SyncGroup, false},
		{"none", SyncNone, false},
		{"sometimes", SyncAlways, true},
	} {
		got, err := ParseSyncPolicy(tc.in)
		if (err != nil) != tc.wantErr || got != tc.want {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
	}

	// SyncAlways fsyncs per append; SyncGroup with a wide window fsyncs
	// at most once up front and batches the rest until Sync.
	dir := t.TempDir()
	always, _ := OpenJournal(filepath.Join(dir, "a"), SyncAlways, 0)
	for i := 0; i < 4; i++ {
		if err := always.Append(journalRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if always.syncs != 4 {
		t.Errorf("SyncAlways: %d fsyncs for 4 appends", always.syncs)
	}
	always.Close()

	group, _ := OpenJournal(filepath.Join(dir, "g"), SyncGroup, time.Hour)
	for i := 0; i < 4; i++ {
		if err := group.Append(journalRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if group.syncs > 1 {
		t.Errorf("SyncGroup(1h): %d fsyncs for 4 appends, want ≤ 1", group.syncs)
	}
	if err := group.Sync(); err != nil {
		t.Fatal(err)
	}
	if group.syncs < 1 {
		t.Error("explicit Sync did not fsync")
	}
	group.Close()

	// Whatever the policy, the records are on disk after Close.
	if n, err := ReplayJournal(filepath.Join(dir, "g"), func(DeltaRecord) error { return nil }); err != nil || n != 4 {
		t.Fatalf("group journal after close: n=%d err=%v", n, err)
	}

	// The last record of a burst must not wait for a next append that
	// never comes: group commit schedules a deferred fsync, so within a
	// couple of windows the at-risk tail is on disk.
	timed, _ := OpenJournal(filepath.Join(dir, "t"), SyncGroup, 20*time.Millisecond)
	if err := timed.Append(journalRec(0)); err != nil { // first append syncs (no prior sync)
		t.Fatal(err)
	}
	if err := timed.Append(journalRec(1)); err != nil { // inside the window: deferred
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, syncs := timed.stats(); syncs >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("deferred group-commit fsync never fired")
		}
		time.Sleep(5 * time.Millisecond)
	}
	timed.Close()
}

// failingWriter is the torn-write filesystem shim: it forwards writes
// to the underlying file until the byte budget runs out, then writes
// whatever partial prefix still fits and fails — exactly the residue a
// kill -9 (or a full disk) leaves mid-append.
type failingWriter struct {
	f      io.Writer
	budget int
}

func (w *failingWriter) Write(p []byte) (int, error) {
	if w.budget <= 0 {
		return 0, fmt.Errorf("injected write failure")
	}
	n := len(p)
	if n > w.budget {
		n = w.budget
	}
	n, err := w.f.Write(p[:n])
	w.budget -= n
	if err != nil {
		return n, err
	}
	if n < len(p) {
		return n, fmt.Errorf("injected torn write after %d bytes", n)
	}
	return n, nil
}

// TestJournalTornWriteNeverHalfApplies kills the journal mid-append at
// every byte offset of the final record and checks the recovery
// invariant record by record: replay yields exactly the fully appended
// prefix — the torn record vanishes, and nothing is ever half-applied.
func TestJournalTornWriteNeverHalfApplies(t *testing.T) {
	// Reference: three full records and their encoded sizes.
	full := filepath.Join(t.TempDir(), "full")
	j, _ := OpenJournal(full, SyncNone, 0)
	var sizes []int64
	for i := 0; i < 3; i++ {
		if err := j.Append(journalRec(i)); err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, j.Size())
	}
	j.Close()

	recLen := int(sizes[2] - sizes[1])
	for cut := 0; cut < recLen; cut += 7 {
		dir := t.TempDir()
		path := filepath.Join(dir, "journal")
		tj, err := OpenJournal(path, SyncNone, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			if err := tj.Append(journalRec(i)); err != nil {
				t.Fatal(err)
			}
		}
		// Interpose the shim for the third append: only `cut` bytes of
		// the record reach the file before the "crash".
		tj.w = bufio.NewWriter(&failingWriter{f: tj.f, budget: cut})
		if err := tj.Append(journalRec(2)); err == nil && cut < recLen-1 {
			t.Fatalf("cut=%d: torn append reported success", cut)
		}
		// No Close: the process is dead. Recover from the bytes on disk.
		var gens []uint64
		n, err := ReplayJournal(path, func(rec DeltaRecord) error {
			gens = append(gens, rec.Gen)
			return nil
		})
		if err != nil {
			t.Fatalf("cut=%d: recovery failed: %v", cut, err)
		}
		if n != 2 {
			t.Fatalf("cut=%d: recovered %d records, want exactly the 2 acknowledged ones", cut, n)
		}
		if gens[0] != 1 || gens[1] != 2 {
			t.Fatalf("cut=%d: recovered gens %v", cut, gens)
		}
	}
}
