package catalog

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// applyFrames decodes tailed frames and applies them to a follower
// catalog, requiring strict generation contiguity — the torn/skipped
// record detector every tailing test leans on.
func applyFrames(t testing.TB, follower *Catalog, frames []byte) int {
	t.Helper()
	applied := 0
	for _, line := range strings.Split(string(frames), "\n") {
		if line == "" {
			continue
		}
		rec, err := DecodeDeltaFrame(line)
		if err != nil {
			t.Fatalf("undecodable frame: %v", err)
		}
		if want := follower.Generation() + 1; rec.Gen != want {
			t.Fatalf("frame generation %d, want %d (torn or skipped record)", rec.Gen, want)
		}
		if err := follower.ApplyDeltaAt(rec.Gen, rec.Changed, rec.Removed); err != nil {
			t.Fatalf("apply replicated generation %d: %v", rec.Gen, err)
		}
		applied++
	}
	return applied
}

// resyncFromCheckpoint bootstraps a follower from the store's on-disk
// checkpoint, the way a real replica answers resync=true.
func resyncFromCheckpoint(t testing.TB, st *Store, follower *Catalog) {
	t.Helper()
	rc, err := st.OpenCheckpoint()
	if err != nil {
		t.Fatalf("open checkpoint: %v", err)
	}
	defer rc.Close()
	scratch := New()
	ckGen, _, err := LoadCheckpointFrom(rc, scratch)
	if err != nil {
		t.Fatalf("load checkpoint: %v", err)
	}
	if ckGen <= follower.Generation() {
		return
	}
	changed, removed := follower.DiffTo(scratch)
	if err := follower.ApplyDeltaAt(ckGen, changed, removed); err != nil {
		t.Fatalf("apply checkpoint delta: %v", err)
	}
}

func TestTailFramesServesFullHistory(t *testing.T) {
	dir := t.TempDir()
	st, c, states, _ := storeHistory(t, dir, 6, StoreOptions{})
	defer st.Close()
	finalGen := c.Generation()

	frames, gen, resync, err := st.TailFrames(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if resync {
		t.Fatal("resync signalled with no checkpoint on disk")
	}
	if gen != finalGen {
		t.Fatalf("tail generation %d, want %d", gen, finalGen)
	}
	follower := New()
	if n := applyFrames(t, follower, frames); n != 6 {
		t.Fatalf("applied %d records, want 6", n)
	}
	if got := storeFingerprint(t, follower); got != states[finalGen] {
		t.Fatal("follower content differs from leader at the same generation")
	}

	// A mid-history tail resumes exactly where the follower stopped.
	partial, _, _, err := st.TailFrames(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	mid := New()
	mid.restoreGeneration(4)
	if n := applyFrames(t, mid, partial); n != 2 {
		t.Fatalf("mid-history tail applied %d records, want 2", n)
	}

	// A caught-up follower gets an empty answer, not an error.
	empty, gen, resync, err := st.TailFrames(finalGen, 0)
	if err != nil || resync || len(empty) != 0 || gen != finalGen {
		t.Fatalf("caught-up tail = (%d bytes, gen %d, resync %v, %v)", len(empty), gen, resync, err)
	}
}

func TestTailFramesByteBudget(t *testing.T) {
	dir := t.TempDir()
	st, c, states, _ := storeHistory(t, dir, 8, StoreOptions{})
	defer st.Close()
	finalGen := c.Generation()

	// A tiny budget still makes progress — at least one record per call —
	// and chaining budget-capped tails reassembles the full history.
	follower := New()
	calls := 0
	for follower.Generation() < finalGen {
		frames, _, resync, err := st.TailFrames(follower.Generation(), 1)
		if err != nil {
			t.Fatal(err)
		}
		if resync {
			t.Fatal("unexpected resync")
		}
		if applyFrames(t, follower, frames) == 0 {
			t.Fatal("budget-capped tail made no progress")
		}
		calls++
	}
	if calls < 8 {
		t.Fatalf("one-byte budget served %d generations per call", finalGen)
	}
	if got := storeFingerprint(t, follower); got != states[finalGen] {
		t.Fatal("reassembled follower differs from leader")
	}
}

func TestTailFramesResyncBoundary(t *testing.T) {
	dir := t.TempDir()
	st, c, states, _ := storeHistory(t, dir, 5, StoreOptions{})
	defer st.Close()
	if err := st.Compact(c); err != nil {
		t.Fatal(err)
	}
	ckGen := st.CheckpointGeneration()
	if ckGen != c.Generation() {
		t.Fatalf("checkpoint generation %d, want %d", ckGen, c.Generation())
	}

	// Publishes continue past the compaction.
	for i := 0; i < 3; i++ {
		changed := []*Feature{deltaFeature(400+i, i%3)}
		if _, err := c.ApplyDelta(changed, nil); err != nil {
			t.Fatal(err)
		}
		if err := st.AppendPublish(c.Generation(), changed, nil, nil); err != nil {
			t.Fatal(err)
		}
		states[c.Generation()] = storeFingerprint(t, c)
	}

	// Below the checkpoint: the journals no longer reach back — resync.
	_, _, resync, err := st.TailFrames(ckGen-1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !resync {
		t.Fatal("tail below the checkpoint generation did not signal resync")
	}

	// At the checkpoint: servable, and the bootstrap+tail pair lands the
	// follower exactly on the leader.
	follower := New()
	resyncFromCheckpoint(t, st, follower)
	if follower.Generation() != ckGen {
		t.Fatalf("bootstrap landed on generation %d, want %d", follower.Generation(), ckGen)
	}
	frames, gen, resync, err := st.TailFrames(follower.Generation(), 0)
	if err != nil || resync {
		t.Fatalf("post-bootstrap tail: resync=%v err=%v", resync, err)
	}
	applyFrames(t, follower, frames)
	if follower.Generation() != gen {
		t.Fatalf("follower at %d after tail to %d", follower.Generation(), gen)
	}
	if got := storeFingerprint(t, follower); got != states[gen] {
		t.Fatal("bootstrapped follower differs from leader")
	}
}

func TestTailFramesToleratesTornTail(t *testing.T) {
	dir := t.TempDir()
	st, c, _, _ := storeHistory(t, dir, 4, StoreOptions{})
	finalGen := c.Generation()
	st.Close()

	// A crash mid-append leaves a torn final line; a tail must drop it,
	// like recovery does, not refuse the whole journal.
	f, err := os.OpenFile(filepath.Join(dir, "journal"), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("deadbeef {\"op\":\"delta\",\"gen"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	into := New()
	st2, err := OpenStore(dir, into, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	frames, gen, resync, err := st2.TailFrames(0, 0)
	if err != nil || resync {
		t.Fatalf("tail over torn journal: resync=%v err=%v", resync, err)
	}
	if gen != finalGen {
		t.Fatalf("generation %d, want %d", gen, finalGen)
	}
	follower := New()
	if n := applyFrames(t, follower, frames); n != 4 {
		t.Fatalf("applied %d records, want 4 (torn line must be dropped, not shipped)", n)
	}
	if bytes.Contains(frames, []byte("deadbeef")) {
		t.Fatal("torn line shipped to the follower")
	}
}

// TestTailDuringCompactionProperty is the replication twin of
// TestStoreCrashRecoveryProperty: a publisher and a background
// compactor churn the leader store while a follower tails it with a
// deliberately tiny byte budget. The follower must observe every
// generation exactly once and in order — a rotation racing the tail may
// cost the follower a resync (which it handles via the checkpoint) but
// may never hand it a torn or skipped record — and must finish
// byte-identical to the leader.
func TestTailDuringCompactionProperty(t *testing.T) {
	dir := t.TempDir()
	c := NewSharded(3)
	st, err := OpenStore(dir, c, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	const publishes = 60
	var (
		statesMu sync.Mutex
		states   = map[uint64]string{}
	)

	// Seed some history and force one compaction before the follower
	// starts, so its from=0 tail must travel the resync path.
	publish := func(i int) {
		changed := []*Feature{deltaFeature(i*2, i%3), deltaFeature(i*2+1, (i+1)%3)}
		var removed []string
		if i > 2 {
			removed = []string{deltaFeature((i-3)*2, 0).ID}
		}
		if _, err := c.ApplyDelta(changed, removed); err != nil {
			t.Errorf("publish %d: %v", i, err)
			return
		}
		if err := st.AppendPublish(c.Generation(), changed, removed, nil); err != nil {
			t.Errorf("journal publish %d: %v", i, err)
			return
		}
		statesMu.Lock()
		states[c.Generation()] = storeFingerprint(t, c)
		statesMu.Unlock()
	}
	for i := 0; i < 10; i++ {
		publish(i)
	}
	if err := st.Compact(c); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // publisher
		defer wg.Done()
		for i := 10; i < publishes; i++ {
			publish(i)
			time.Sleep(time.Millisecond)
		}
	}()
	go func() { // compactor, racing every tail and publish
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := st.Compact(c); err != nil {
				t.Errorf("compact: %v", err)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// The follower: tail in the main goroutine (it owns t.Fatal).
	follower := New()
	resyncs := 0
	deadline := time.Now().Add(30 * time.Second)
	for {
		frames, gen, resync, err := st.TailFrames(follower.Generation(), 256)
		if err != nil {
			t.Fatal(err)
		}
		if resync {
			resyncs++
			resyncFromCheckpoint(t, st, follower)
			continue
		}
		applyFrames(t, follower, frames)
		if follower.Generation() >= uint64(publishes) && gen == follower.Generation() {
			break
		}
		if len(frames) == 0 {
			if time.Now().After(deadline) {
				t.Fatalf("follower stalled at generation %d", follower.Generation())
			}
			time.Sleep(time.Millisecond)
		}
	}
	close(stop)
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	if resyncs == 0 {
		t.Error("follower never exercised the resync path (expected: it started below the first compaction)")
	}
	finalGen := follower.Generation()
	statesMu.Lock()
	want, ok := states[finalGen]
	statesMu.Unlock()
	if !ok {
		t.Fatalf("follower reached generation %d, which was never published", finalGen)
	}
	if got := storeFingerprint(t, follower); got != want {
		t.Fatalf("follower content at generation %d differs from the leader's", finalGen)
	}
}

// TestTailFramesRejectsMidFileCorruption pins the other half of the
// torn-tail contract: garbage in the middle of a journal is corruption
// and must fail the tail loudly rather than ship a gap.
func TestTailFramesRejectsMidFileCorruption(t *testing.T) {
	dir := t.TempDir()
	st, _, _, _ := storeHistory(t, dir, 3, StoreOptions{})
	st.Close()

	path := filepath.Join(dir, "journal")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(data, []byte("\n"))
	if len(lines) < 3 {
		t.Fatalf("journal has %d lines", len(lines))
	}
	lines[1] = []byte("deadbeef corrupted\n")
	if err := os.WriteFile(path, bytes.Join(lines, nil), 0o644); err != nil {
		t.Fatal(err)
	}

	// Recovery refuses the corrupted journal too, so open the tail
	// machinery directly against a store whose catalog came from
	// elsewhere: simulate by writing a fresh store dir with the corrupt
	// journal only and calling tailFile.
	var buf bytes.Buffer
	if _, err := tailFile(path, 0, DefaultTailMaxBytes, &buf); err == nil {
		t.Fatal("mid-file corruption tailed without error")
	} else if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("corruption error does not name the line: %v", err)
	}
}
