// Package catalog implements the metadata catalog at the center of the
// IR architecture the poster reproduces: each dataset is scanned once and
// summarized into a "feature" (spatial extent, temporal extent, variables
// with observed value ranges); features are stored, indexed, and searched
// instead of the data itself.
//
// Two catalog instances play distinct roles in the wrangling process: the
// *working catalog* that transformation chains mutate, and the published
// *metadata catalog* that search serves. Publish atomically replaces the
// latter with a validated copy of the former.
package catalog

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"time"

	"metamess/internal/geo"
)

// VarFeature summarizes one variable within a dataset.
type VarFeature struct {
	// RawName is the name exactly as harvested from the file.
	RawName string `json:"rawName"`
	// Name is the current (possibly wrangled) variable name; equals
	// RawName until a transformation renames it.
	Name string `json:"name"`
	// Unit is the unit string as harvested; CanonicalUnit is its resolved
	// canonical symbol ("" until unit wrangling runs).
	Unit          string `json:"unit,omitempty"`
	CanonicalUnit string `json:"canonicalUnit,omitempty"`
	// Range is the observed [min,max] of the variable's values.
	Range geo.ValueRange `json:"range"`
	// Count is the number of non-missing observations.
	Count int `json:"count"`
	// Excluded marks bookkeeping variables hidden from search but shown
	// in detailed dataset views (Table 1's "excessive variables" row).
	Excluded bool `json:"excluded,omitempty"`
	// Contexts lists taxonomy links for source-context variables.
	Contexts []string `json:"contexts,omitempty"`
	// Parent is the hierarchy parent for multi-level concepts.
	Parent string `json:"parent,omitempty"`
}

// Feature is the per-dataset summary record stored in the catalog.
type Feature struct {
	// ID is a stable content-addressed identifier derived from Path.
	ID string `json:"id"`
	// Path locates the dataset file within the archive.
	Path string `json:"path"`
	// Source is the archive sub-collection ("stations", "cruises", ...).
	Source string `json:"source"`
	// Format is the detected file format ("csv", "obs", "jsonl").
	Format string `json:"format"`
	// BBox is the dataset's spatial extent.
	BBox geo.BBox `json:"bbox"`
	// Time is the dataset's temporal extent.
	Time geo.TimeRange `json:"time"`
	// Variables summarizes each harvested variable.
	Variables []VarFeature `json:"variables"`
	// RowCount and Bytes size the raw dataset the feature summarizes.
	RowCount int   `json:"rowCount"`
	Bytes    int64 `json:"bytes"`
	// ScannedAt records when the dataset was last scanned; ModTime is the
	// file's modification time at that scan, used with Bytes as the
	// quick unchanged check during incremental reruns.
	ScannedAt time.Time `json:"scannedAt"`
	ModTime   time.Time `json:"modTime,omitempty"`
	// ContentHash fingerprints the raw file content.
	ContentHash string `json:"contentHash,omitempty"`
}

// IDForPath derives the stable feature ID for an archive path.
func IDForPath(path string) string {
	sum := sha256.Sum256([]byte(path))
	return hex.EncodeToString(sum[:8])
}

// Validate checks internal consistency; the catalog refuses malformed
// features so corruption cannot propagate into search.
func (f *Feature) Validate() error {
	if f.ID == "" {
		return fmt.Errorf("catalog: feature missing id")
	}
	if f.Path == "" {
		return fmt.Errorf("catalog: feature %s missing path", f.ID)
	}
	if f.ID != IDForPath(f.Path) {
		return fmt.Errorf("catalog: feature %s id does not match path %q", f.ID, f.Path)
	}
	if !f.BBox.IsEmpty() && !f.BBox.Valid() {
		return fmt.Errorf("catalog: feature %s has invalid bbox %v", f.ID, f.BBox)
	}
	if !f.Time.IsZero() && !f.Time.Valid() {
		return fmt.Errorf("catalog: feature %s has invalid time range", f.ID)
	}
	seen := make(map[string]bool, len(f.Variables))
	for i, v := range f.Variables {
		if v.RawName == "" {
			return fmt.Errorf("catalog: feature %s variable %d missing raw name", f.ID, i)
		}
		if v.Name == "" {
			return fmt.Errorf("catalog: feature %s variable %q missing name", f.ID, v.RawName)
		}
		if seen[v.RawName] {
			return fmt.Errorf("catalog: feature %s duplicate variable %q", f.ID, v.RawName)
		}
		seen[v.RawName] = true
		if v.Count < 0 {
			return fmt.Errorf("catalog: feature %s variable %q negative count", f.ID, v.RawName)
		}
	}
	return nil
}

// Clone returns a deep copy of the feature.
func (f *Feature) Clone() *Feature {
	c := *f
	c.Variables = make([]VarFeature, len(f.Variables))
	for i, v := range f.Variables {
		nv := v
		if v.Contexts != nil {
			nv.Contexts = append([]string(nil), v.Contexts...)
		}
		c.Variables[i] = nv
	}
	return &c
}

// ContentEquals reports whether two features describe the same dataset
// state: every field equal except ScannedAt, which is scan bookkeeping
// (when we last looked) rather than dataset content. Publish uses this
// to decide whether a working feature actually differs from its
// published predecessor — a re-scan that re-parses a file into an
// identical summary must not count as churn.
func (f *Feature) ContentEquals(o *Feature) bool {
	if f.ID != o.ID || f.Path != o.Path || f.Source != o.Source || f.Format != o.Format {
		return false
	}
	if f.BBox != o.BBox {
		return false
	}
	if !f.Time.Start.Equal(o.Time.Start) || !f.Time.End.Equal(o.Time.End) {
		return false
	}
	if f.RowCount != o.RowCount || f.Bytes != o.Bytes || f.ContentHash != o.ContentHash {
		return false
	}
	if !f.ModTime.Equal(o.ModTime) {
		return false
	}
	if len(f.Variables) != len(o.Variables) {
		return false
	}
	for i := range f.Variables {
		a, b := &f.Variables[i], &o.Variables[i]
		if a.RawName != b.RawName || a.Name != b.Name ||
			a.Unit != b.Unit || a.CanonicalUnit != b.CanonicalUnit ||
			a.Range != b.Range || a.Count != b.Count ||
			a.Excluded != b.Excluded || a.Parent != b.Parent {
			return false
		}
		if len(a.Contexts) != len(b.Contexts) {
			return false
		}
		for j := range a.Contexts {
			if a.Contexts[j] != b.Contexts[j] {
				return false
			}
		}
	}
	return true
}

// SearchableNames returns the current variable names visible to search
// (excluded variables filtered out), sorted and de-duplicated.
func (f *Feature) SearchableNames() []string {
	set := make(map[string]bool)
	for _, v := range f.Variables {
		if !v.Excluded {
			set[v.Name] = true
		}
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Variable returns the variable feature with the given current name.
func (f *Feature) Variable(name string) (VarFeature, bool) {
	for _, v := range f.Variables {
		if v.Name == name {
			return v, true
		}
	}
	return VarFeature{}, false
}
