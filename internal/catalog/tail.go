package catalog

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
)

// Journal tailing: the replication read side. A follower polls
// TailFrames with its current generation and receives the raw
// checksummed journal lines for every record past it — the frames ship
// verbatim, so the CRC written by the leader's append is the same CRC
// the follower verifies before applying. The whole read runs under
// compactMu: a compaction's rotate → checkpoint → retire sequence can
// never interleave with a tail, so a tailer sees either the
// pre-rotation file set or the post-rotation one, never a torn middle.
//
// The resync contract rides the compaction invariant: every record
// stamped above the on-disk checkpoint's generation is present in the
// on-disk journal files (rotation happens before the checkpoint is cut,
// and rotated files are retired only after the new checkpoint covers
// them). A tail from at or above the checkpoint generation is therefore
// always servable from the journals; a tail from below it has lost its
// window — those records may have been retired — and gets resync=true,
// telling the follower to bootstrap from the checkpoint instead.

// DefaultTailMaxBytes bounds one TailFrames response when the caller
// passes no budget; a lagging follower just tails again.
const DefaultTailMaxBytes = 1 << 20

// TailFrames returns the raw journal lines for every delta record
// stamped after fromGen, in append order, capped near maxBytes
// (0 = DefaultTailMaxBytes; at least one record is always returned when
// any qualifies). gen is the store's current durable generation.
// resync=true means fromGen predates the on-disk checkpoint — the
// journals no longer reach back that far, and the follower must
// bootstrap from the checkpoint.
func (st *Store) TailFrames(fromGen uint64, maxBytes int64) (frames []byte, gen uint64, resync bool, err error) {
	if maxBytes <= 0 {
		maxBytes = DefaultTailMaxBytes
	}
	st.compactMu.Lock()
	defer st.compactMu.Unlock()
	st.mu.Lock()
	gen = st.gen
	ckGen := st.ckGen
	st.mu.Unlock()
	if fromGen < ckGen {
		return nil, gen, true, nil
	}
	if fromGen >= gen {
		return nil, gen, false, nil
	}
	paths, err := oldJournals(st.dir)
	if err != nil {
		return nil, gen, false, err
	}
	paths = append(paths, st.journalPath())
	var buf bytes.Buffer
	for _, p := range paths {
		full, err := tailFile(p, fromGen, maxBytes, &buf)
		if err != nil {
			return nil, gen, false, err
		}
		if full {
			break
		}
	}
	return buf.Bytes(), gen, false, nil
}

// tailFile appends the qualifying raw lines of one journal file to buf,
// reporting whether the byte budget filled up (stop reading further
// files). Torn-tail tolerance matches ReplayJournal: an undecodable
// final line is dropped, an undecodable line followed by more lines is
// corruption.
func tailFile(path string, fromGen uint64, maxBytes int64, buf *bytes.Buffer) (full bool, err error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("catalog: open journal: %w", err)
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	lineNo := 0
	var pendingErr error
	for sc.Scan() {
		lineNo++
		if pendingErr != nil {
			return false, pendingErr
		}
		line := sc.Text()
		rec, err := decodeLine(line)
		if err != nil {
			pendingErr = fmt.Errorf("catalog: journal line %d: %w", lineNo, err)
			continue
		}
		if rec.Op != "delta" {
			return false, fmt.Errorf("catalog: journal line %d: unexpected op %q", lineNo, rec.Op)
		}
		// Records at or below fromGen are already applied on the follower
		// (sidecar-only refreshes re-stamp the current generation and are
		// skipped with it — followers do not wrangle, so the knowledge
		// epoch only matters to them at restart, via their own journal).
		if rec.Gen <= fromGen {
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if int64(buf.Len()) >= maxBytes {
			return true, nil
		}
	}
	if err := sc.Err(); err != nil {
		return false, fmt.Errorf("catalog: read journal: %w", err)
	}
	return false, nil
}

// CheckpointGeneration returns the generation stamped on the on-disk
// checkpoint — the oldest generation the journals are guaranteed to
// reach back to (the tail/resync boundary).
func (st *Store) CheckpointGeneration() uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.ckGen
}

// OpenCheckpoint opens the on-disk checkpoint for reading — the
// follower bootstrap download. The open is taken under compactMu so it
// can never catch a compaction between removing and renaming; once
// open, the file handle pins the inode, so a later compaction replacing
// the directory entry does not disturb the read.
func (st *Store) OpenCheckpoint() (io.ReadCloser, error) {
	st.compactMu.Lock()
	defer st.compactMu.Unlock()
	f, err := os.Open(st.checkpointPath())
	if err != nil {
		return nil, fmt.Errorf("catalog: open checkpoint: %w", err)
	}
	return f, nil
}

// DecodeDeltaFrame decodes one tailed journal line (without its
// trailing newline) into the delta record it carries, verifying the
// checksum and validating every feature — the follower-side twin of
// ReplayJournal's per-record checks.
func DecodeDeltaFrame(line string) (DeltaRecord, error) {
	rec, err := decodeLine(line)
	if err != nil {
		return DeltaRecord{}, fmt.Errorf("catalog: tail frame: %w", err)
	}
	if rec.Op != "delta" {
		return DeltaRecord{}, fmt.Errorf("catalog: tail frame: unexpected op %q", rec.Op)
	}
	for _, feat := range rec.Changed {
		if feat == nil {
			return DeltaRecord{}, fmt.Errorf("catalog: tail frame: null feature")
		}
		if err := feat.Validate(); err != nil {
			return DeltaRecord{}, fmt.Errorf("catalog: tail frame: %w", err)
		}
	}
	return DeltaRecord{
		Gen:     rec.Gen,
		Changed: rec.Changed,
		Removed: rec.Removed,
		Sidecar: rec.Sidecar,
	}, nil
}
