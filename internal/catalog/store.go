package catalog

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Store is the catalog's durable home: a data directory holding a
// checkpoint (a full snapshot of the catalog at some generation) and a
// publish journal (the deltas since). Recovery is checkpoint-replay +
// journal-replay; a background compactor periodically folds the journal
// back into a fresh checkpoint so restart cost tracks churn since the
// last checkpoint, not archive size.
//
// Directory layout:
//
//	checkpoint      meta record (generation + sidecar) then one put per feature
//	journal         delta records appended by publishes
//	journal.old.N   pre-rotation journals, present only while a compaction
//	                is in flight (or died); N increases per rotation so a
//	                retried compaction can never overwrite an earlier
//	                rotation that is still the only copy of its records
//	checkpoint.tmp  the checkpoint being written, present only mid-compaction
//
// The compaction protocol is crash-consistent at every step:
//
//  1. rotate: journal → journal.old.N (atomic rename, N fresh), fresh
//     journal opened.
//  2. write checkpoint.tmp from the catalog's current snapshot — taken
//     after the rotation, so its generation covers every record in
//     every journal.old.N.
//  3. fsync + rename checkpoint.tmp → checkpoint.
//  4. remove the journal.old.N files.
//
// A crash after (1) recovers by replaying the journal.old.N files (in N
// order) then journal over the old checkpoint; after (3), the rotated
// records are at or below the new checkpoint's generation and replay
// idempotently; checkpoint.tmp is ignored (and removed) at open. Open
// finishes any compaction it finds interrupted.
type Store struct {
	dir  string
	opts StoreOptions

	journal *Journal

	// compactMu serializes compactions; mu guards the mutable state
	// below and is never held across file writes, so publishes are
	// blocked by a compaction only for the duration of one rename.
	compactMu sync.Mutex
	mu        sync.Mutex
	gen       uint64
	// ckGen is the generation stamped on the on-disk checkpoint file.
	// Every record with a higher stamp is, by the compaction protocol,
	// present in the on-disk journal files — so a tail from any
	// generation >= ckGen can be served from the journals alone, and a
	// tail from below it must resync from the checkpoint.
	ckGen   uint64
	sidecar json.RawMessage
	// pubCh, when non-nil, is closed on the next successful append —
	// the long-poll wakeup for journal tailers (see PublishNotify).
	pubCh    chan struct{}
	appends  uint64
	skipped  uint64
	refused  uint64
	degraded bool
	compacts uint64
	lastComp time.Duration

	// crashHook, when set (tests only), is consulted at each named
	// compaction stage; returning true abandons the compaction with all
	// files exactly as a kill -9 at that point would leave them.
	crashHook func(stage string) bool
}

// StoreOptions configures durability and compaction.
type StoreOptions struct {
	// Sync is the journal's fsync policy (default SyncAlways).
	Sync SyncPolicy
	// GroupWindow bounds group-commit latency under SyncGroup
	// (0 = DefaultGroupWindow).
	GroupWindow time.Duration
	// CompactRatio triggers compaction when the journal has grown past
	// CompactRatio × the checkpoint's size (0 = 1.0).
	CompactRatio float64
	// MinCompactBytes is the journal size below which compaction never
	// triggers, whatever the ratio says (0 = 256 KiB).
	MinCompactBytes int64
}

func (o StoreOptions) withDefaults() StoreOptions {
	if o.CompactRatio <= 0 {
		o.CompactRatio = 1.0
	}
	if o.MinCompactBytes <= 0 {
		o.MinCompactBytes = 256 << 10
	}
	return o
}

// StoreStats is a point-in-time view of the store for monitoring.
type StoreStats struct {
	Generation      uint64  `json:"generation"`
	JournalBytes    int64   `json:"journalBytes"`
	CheckpointBytes int64   `json:"checkpointBytes"`
	Appends         uint64  `json:"appends"`
	SkippedAppends  uint64  `json:"skippedAppends,omitempty"`
	RefusedAppends  uint64  `json:"refusedAppends,omitempty"`
	Syncs           uint64  `json:"syncs"`
	Compactions     uint64  `json:"compactions"`
	LastCompactMs   float64 `json:"lastCompactMs,omitempty"`
	Degraded        bool    `json:"degraded,omitempty"`
}

func (st *Store) checkpointPath() string { return filepath.Join(st.dir, "checkpoint") }
func (st *Store) journalPath() string    { return filepath.Join(st.dir, "journal") }
func (st *Store) tmpPath() string        { return filepath.Join(st.dir, "checkpoint.tmp") }

// oldJournals lists the journal.old.N files in rotation (N) order.
func oldJournals(dir string) ([]string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "journal.old.*"))
	if err != nil {
		return nil, fmt.Errorf("catalog: list rotated journals: %w", err)
	}
	type numbered struct {
		n    int
		path string
	}
	var olds []numbered
	for _, m := range matches {
		var n int
		if _, err := fmt.Sscanf(filepath.Base(m), "journal.old.%d", &n); err != nil {
			return nil, fmt.Errorf("catalog: unrecognized rotated journal %s", m)
		}
		olds = append(olds, numbered{n, m})
	}
	sort.Slice(olds, func(i, j int) bool { return olds[i].n < olds[j].n })
	out := make([]string, len(olds))
	for i, o := range olds {
		out[i] = o.path
	}
	return out, nil
}

// nextOldPath picks the rotation target: one past the highest existing
// journal.old.N, so a compaction retried after a failure never
// overwrites the earlier rotation that may hold the only copy of its
// records.
func (st *Store) nextOldPath() (string, error) {
	olds, err := oldJournals(st.dir)
	if err != nil {
		return "", err
	}
	n := 1
	if len(olds) > 0 {
		fmt.Sscanf(filepath.Base(olds[len(olds)-1]), "journal.old.%d", &n)
		n++
	}
	return filepath.Join(st.dir, fmt.Sprintf("journal.old.%d", n)), nil
}

// OpenStore opens (creating if needed) the store at dir and restores
// its state into the given empty catalog: the checkpoint's features are
// loaded, then every journaled delta at or past the checkpoint's
// generation is applied in order, and the catalog's generation is
// pinned to the last durable publish — so generation-keyed caches and
// logs stay continuous across a restart. On error the catalog's
// contents are undefined and must be discarded.
func OpenStore(dir string, into *Catalog, opts StoreOptions) (*Store, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("catalog: store dir: %w", err)
	}
	st := &Store{dir: dir, opts: opts}
	// A checkpoint.tmp is a compaction that died before its rename; the
	// real checkpoint is still authoritative.
	os.Remove(st.tmpPath())

	gen, ckGen, sidecar, hadOld, err := recoverState(dir, into)
	if err != nil {
		return nil, err
	}
	st.journal, err = OpenJournal(st.journalPath(), opts.Sync, opts.GroupWindow)
	if err != nil {
		return nil, err
	}
	st.gen = gen
	st.ckGen = ckGen
	st.sidecar = sidecar
	if hadOld {
		// Finish the interrupted compaction: fold everything into a fresh
		// checkpoint and retire journal.old.
		if err := st.Compact(into); err != nil {
			st.journal.Close()
			return nil, err
		}
	}
	return st, nil
}

// recoverState is OpenStore's pure recovery core (also the fuzz
// target): load the checkpoint into the catalog, replay any rotated
// journals (compactions that died mid-flight) then the journal, and pin
// the catalog's generation to the last durable publish. On error the
// catalog's contents are undefined.
func recoverState(dir string, into *Catalog) (gen, ckGen uint64, sidecar json.RawMessage, hadOld bool, err error) {
	gen, sidecar, err = loadCheckpoint(filepath.Join(dir, "checkpoint"), into)
	if err != nil {
		return 0, 0, nil, false, err
	}
	ckGen = gen
	// Publishes stamp strictly increasing generations, and the replay
	// order (rotated journals in rotation order, then the live journal)
	// reconstructs append order — so the raw record stream must be
	// non-decreasing. A regression means the files were reordered or
	// hand-edited; applying around it would be silent partial state.
	lastRec := uint64(0)
	apply := func(rec DeltaRecord) error {
		if rec.Gen < lastRec {
			return fmt.Errorf("catalog: journal generation went backwards (%d after %d)", rec.Gen, lastRec)
		}
		lastRec = rec.Gen
		// Records below the checkpoint's generation were folded into it
		// by the compaction that rotated them out; records at the current
		// generation are sidecar refreshes (or already-checkpointed
		// content replaying idempotently after an interrupted compaction).
		if rec.Gen < gen {
			return nil
		}
		for _, id := range rec.Removed {
			into.Delete(id)
		}
		for _, f := range rec.Changed {
			// Decoded records are private to this replay: hand ownership
			// to the catalog instead of paying a second copy.
			if err := into.upsertOwned(f); err != nil {
				return err
			}
		}
		gen = rec.Gen
		if rec.Sidecar != nil {
			sidecar = rec.Sidecar
		}
		return nil
	}
	olds, err := oldJournals(dir)
	if err != nil {
		return 0, 0, nil, false, err
	}
	for _, oldPath := range olds {
		hadOld = true
		if _, err := ReplayJournal(oldPath, apply); err != nil {
			return 0, 0, nil, false, err
		}
	}
	if _, err := ReplayJournal(filepath.Join(dir, "journal"), apply); err != nil {
		return 0, 0, nil, false, err
	}
	into.restoreGeneration(gen)
	return gen, ckGen, sidecar, hadOld, nil
}

// Generation returns the last durable publish generation.
func (st *Store) Generation() uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.gen
}

// Sidecar returns the most recent knowledge-epoch sidecar (nil when
// none has been journaled or checkpointed yet).
func (st *Store) Sidecar() json.RawMessage {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.sidecar
}

// AppendPublish journals one publish: the delta that produced gen, plus
// the knowledge-epoch sidecar. It is the publish path's durability
// point — when it returns nil the publish survives a crash (per the
// store's sync policy). A call that changes neither the generation nor
// the sidecar appends nothing (no-op re-wrangles keep the journal
// quiet). If an append fails, the store goes degraded — the in-memory
// catalog is now ahead of the journal, so subsequent appends are
// refused (a later delta over a missing earlier one would corrupt
// recovery) until a compaction rewrites the full state from the live
// catalog and clears the condition.
func (st *Store) AppendPublish(gen uint64, changed []*Feature, removed []string, sidecar []byte) error {
	st.mu.Lock()
	if st.degraded {
		st.refused++
		st.mu.Unlock()
		return fmt.Errorf("catalog: store degraded (a journal append failed); publish not durable until the next compaction")
	}
	if gen == st.gen && len(changed) == 0 && len(removed) == 0 && bytes.Equal(sidecar, st.sidecar) {
		st.skipped++
		st.mu.Unlock()
		return nil
	}
	if gen < st.gen {
		st.mu.Unlock()
		return fmt.Errorf("catalog: publish generation %d behind journal generation %d", gen, st.gen)
	}
	st.mu.Unlock()

	err := st.journal.Append(DeltaRecord{Gen: gen, Changed: changed, Removed: removed, Sidecar: sidecar})

	st.mu.Lock()
	defer st.mu.Unlock()
	if err != nil {
		st.degraded = true
		return err
	}
	st.appends++
	st.gen = gen
	if sidecar != nil {
		st.sidecar = sidecar
	}
	if st.pubCh != nil {
		close(st.pubCh)
		st.pubCh = nil
	}
	return nil
}

// PublishNotify returns a channel closed by the next successful append,
// so journal tailers can long-poll instead of busy-spinning. Callers
// must take the channel before re-reading Generation: the append that
// bumps the generation closes the channel under the same lock, so
// channel-then-generation can never miss a wakeup.
func (st *Store) PublishNotify() <-chan struct{} {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.pubCh == nil {
		st.pubCh = make(chan struct{})
	}
	return st.pubCh
}

// errCrashInjected marks a test-simulated kill -9 mid-compaction.
var errCrashInjected = errors.New("catalog: crash injected")

func (st *Store) crashed(stage string) bool {
	return st.crashHook != nil && st.crashHook(stage)
}

// CompactIfNeeded compacts when the journal has outgrown the checkpoint
// per the configured ratio (or the store is degraded and needs the
// repair). It reports whether a compaction ran.
func (st *Store) CompactIfNeeded(c *Catalog) (bool, error) {
	st.mu.Lock()
	degraded := st.degraded
	st.mu.Unlock()
	jSize := st.journal.Size()
	if !degraded {
		if jSize < st.opts.MinCompactBytes {
			return false, nil
		}
		ckSize, _ := LogSize(st.checkpointPath())
		if float64(jSize) < st.opts.CompactRatio*float64(ckSize) {
			return false, nil
		}
	}
	if err := st.Compact(c); err != nil {
		return false, err
	}
	return true, nil
}

// Compact folds the journal into a fresh checkpoint taken from the
// catalog's current snapshot. Searches are never blocked (they read the
// immutable snapshot), and publishes only wait for the journal rotation
// rename. Compacting also repairs a degraded store: the full-state
// checkpoint supersedes whatever the journal lost.
func (st *Store) Compact(c *Catalog) error {
	st.compactMu.Lock()
	defer st.compactMu.Unlock()
	start := time.Now()

	// 1. Rotate so the checkpoint's snapshot — taken after — is
	// guaranteed to cover every rotated record. The target is a fresh
	// journal.old.N: a retry after a failed compaction must not
	// overwrite the earlier rotation, which until step 3 lands is the
	// only durable copy of its publishes.
	oldPath, err := st.nextOldPath()
	if err != nil {
		return err
	}
	if err := st.journal.rotate(oldPath); err != nil {
		return err
	}
	if st.crashed("rotated") {
		return errCrashInjected
	}

	snap := c.Snapshot()
	st.mu.Lock()
	sidecar := st.sidecar
	st.mu.Unlock()

	// 2. Write the new checkpoint beside the old one.
	if err := writeCheckpoint(st.tmpPath(), snap.All(), snap.Generation(), sidecar); err != nil {
		os.Remove(st.tmpPath())
		return err
	}
	if st.crashed("checkpoint-written") {
		return errCrashInjected
	}

	// 3. Atomically promote it.
	if err := os.Rename(st.tmpPath(), st.checkpointPath()); err != nil {
		os.Remove(st.tmpPath())
		return fmt.Errorf("catalog: checkpoint rename: %w", err)
	}
	syncDir(st.dir)
	if st.crashed("renamed") {
		return errCrashInjected
	}

	// 4. The rotated journals are now redundant: everything in them is
	// at or below the checkpoint's generation.
	olds, err := oldJournals(st.dir)
	if err != nil {
		return err
	}
	for _, p := range olds {
		if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("catalog: retire %s: %w", filepath.Base(p), err)
		}
	}

	st.mu.Lock()
	st.compacts++
	st.lastComp = time.Since(start)
	st.degraded = false
	st.ckGen = snap.Generation()
	st.mu.Unlock()
	compactions.Inc()
	compactSeconds.ObserveSeconds(time.Since(start).Nanoseconds())
	return nil
}

// Stats returns a point-in-time monitoring view.
func (st *Store) Stats() StoreStats {
	ckSize, _ := LogSize(st.checkpointPath())
	jSize, jSyncs := st.journal.stats()
	st.mu.Lock()
	defer st.mu.Unlock()
	s := StoreStats{
		Generation:      st.gen,
		JournalBytes:    jSize,
		CheckpointBytes: ckSize,
		Appends:         st.appends,
		SkippedAppends:  st.skipped,
		RefusedAppends:  st.refused,
		Syncs:           jSyncs,
		Compactions:     st.compacts,
		Degraded:        st.degraded,
	}
	if st.lastComp > 0 {
		s.LastCompactMs = float64(st.lastComp) / float64(time.Millisecond)
	}
	return s
}

// Sync forces journaled records to disk (shutdown drains call it).
func (st *Store) Sync() error { return st.journal.Sync() }

// Close flushes and closes the journal. Idempotent.
func (st *Store) Close() error { return st.journal.Close() }

// writeCheckpoint writes a checkpoint file: a meta record stamping the
// generation and sidecar, then one put record per feature. The file is
// fsynced before the function returns; callers rename it into place.
func writeCheckpoint(path string, feats []*Feature, gen uint64, sidecar json.RawMessage) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("catalog: checkpoint create: %w", err)
	}
	w := bufio.NewWriter(f)
	write := func(rec logRecord) error {
		line, err := encodeRecord(rec)
		if err != nil {
			return err
		}
		if _, err := w.Write(line); err != nil {
			return fmt.Errorf("catalog: checkpoint write: %w", err)
		}
		return nil
	}
	if err := write(logRecord{Op: "meta", Gen: gen, Sidecar: sidecar}); err != nil {
		f.Close()
		return err
	}
	for _, feat := range feats {
		if err := write(logRecord{Op: "put", Feature: feat}); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("catalog: checkpoint flush: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("catalog: checkpoint sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("catalog: checkpoint close: %w", err)
	}
	return nil
}

// loadCheckpoint reads a checkpoint into the catalog and returns its
// generation stamp and sidecar. A missing file is an empty store. A
// legacy plain snapshot (put records with no meta header, as written by
// Save) loads at generation 0. Checkpoints are written atomically, so
// unlike journals any corruption — including a torn tail — is an error.
func loadCheckpoint(path string, into *Catalog) (uint64, json.RawMessage, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return 0, nil, nil
	}
	if err != nil {
		return 0, nil, fmt.Errorf("catalog: open checkpoint: %w", err)
	}
	defer f.Close()
	return LoadCheckpointFrom(f, into)
}

// LoadCheckpointFrom reads a checkpoint record stream (as written by
// the compactor and served by a leader's checkpoint endpoint) into the
// catalog and returns its generation stamp and sidecar. It is
// loadCheckpoint over an arbitrary reader — the follower bootstrap
// path, where the checkpoint arrives over HTTP instead of from disk.
func LoadCheckpointFrom(f io.Reader, into *Catalog) (uint64, json.RawMessage, error) {
	var (
		gen     uint64
		sidecar json.RawMessage
	)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		rec, err := decodeLine(sc.Text())
		if err != nil {
			return 0, nil, fmt.Errorf("catalog: checkpoint line %d: %w", lineNo, err)
		}
		switch rec.Op {
		case "meta":
			if lineNo != 1 {
				return 0, nil, fmt.Errorf("catalog: checkpoint line %d: meta record not first", lineNo)
			}
			gen, sidecar = rec.Gen, rec.Sidecar
		case "put":
			if rec.Feature == nil {
				return 0, nil, fmt.Errorf("catalog: checkpoint line %d: put without feature", lineNo)
			}
			if err := into.upsertOwned(rec.Feature); err != nil {
				return 0, nil, fmt.Errorf("catalog: checkpoint line %d: %w", lineNo, err)
			}
		default:
			return 0, nil, fmt.Errorf("catalog: checkpoint line %d: unexpected op %q", lineNo, rec.Op)
		}
	}
	if err := sc.Err(); err != nil {
		return 0, nil, fmt.Errorf("catalog: read checkpoint: %w", err)
	}
	return gen, sidecar, nil
}

// syncDir fsyncs a directory so a rename within it is durable;
// best-effort (some filesystems refuse directory fsync).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
