package catalog

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"metamess/internal/geo"
)

func snapFeat(path string, lat, lon float64, start time.Time, days int, vars ...string) *Feature {
	f := &Feature{
		ID:     IDForPath(path),
		Path:   path,
		Source: "stations",
		Format: "obs",
		BBox: geo.BBox{
			MinLat: lat - 0.01, MinLon: lon - 0.01,
			MaxLat: lat + 0.01, MaxLon: lon + 0.01,
		},
		Time: geo.NewTimeRange(start, start.AddDate(0, 0, days)),
	}
	for _, v := range vars {
		f.Variables = append(f.Variables, VarFeature{
			RawName: v, Name: v, Range: geo.NewValueRange(0, 10), Count: 5,
		})
	}
	return f
}

func TestSnapshotCachedUntilMutation(t *testing.T) {
	c := New()
	base := time.Date(2010, 6, 1, 0, 0, 0, 0, time.UTC)
	if err := c.Upsert(snapFeat("a.obs", 45, -124, base, 10, "salinity")); err != nil {
		t.Fatal(err)
	}
	s1 := c.Snapshot()
	if s2 := c.Snapshot(); s2 != s1 {
		t.Error("snapshot rebuilt without a mutation")
	}
	if err := c.Upsert(snapFeat("b.obs", 45, -124, base, 10, "turbidity")); err != nil {
		t.Fatal(err)
	}
	s3 := c.Snapshot()
	if s3 == s1 {
		t.Fatal("snapshot not invalidated by Upsert")
	}
	if s1.Len() != 1 || s3.Len() != 2 {
		t.Errorf("lens = %d, %d", s1.Len(), s3.Len())
	}
}

func TestSnapshotByID(t *testing.T) {
	c := New()
	base := time.Date(2010, 6, 1, 0, 0, 0, 0, time.UTC)
	if err := c.Upsert(snapFeat("a.obs", 45, -124, base, 10, "salinity")); err != nil {
		t.Fatal(err)
	}
	s := c.Snapshot()
	f, ok := s.ByID(IDForPath("a.obs"))
	if !ok || f.Path != "a.obs" {
		t.Fatalf("ByID = %v, %v", f, ok)
	}
	if _, ok := s.ByID(IDForPath("missing.obs")); ok {
		t.Error("ByID found a missing ID")
	}
	// ByID shares the snapshot's feature (no per-call clone).
	if s.All()[0] != f {
		t.Error("ByID does not share the snapshot feature")
	}
}

func TestSnapshotIsolatedFromMutation(t *testing.T) {
	c := New()
	base := time.Date(2010, 6, 1, 0, 0, 0, 0, time.UTC)
	if err := c.Upsert(snapFeat("a.obs", 45, -124, base, 10, "salinity")); err != nil {
		t.Fatal(err)
	}
	snap := c.Snapshot()
	c.MutateVariables(func(f *Feature) bool {
		f.Variables[0].Name = "renamed"
		return true
	})
	if got := snap.All()[0].Variables[0].Name; got != "salinity" {
		t.Errorf("snapshot mutated: variable name = %q", got)
	}
	if got := c.Snapshot().All()[0].Variables[0].Name; got != "renamed" {
		t.Errorf("fresh snapshot stale: variable name = %q", got)
	}
}

func TestSnapshotReplaceAllBuildsEagerly(t *testing.T) {
	published := New()
	working := New()
	base := time.Date(2010, 6, 1, 0, 0, 0, 0, time.UTC)
	if err := working.Upsert(snapFeat("w.obs", 45, -124, base, 10, "salinity")); err != nil {
		t.Fatal(err)
	}
	published.ReplaceAll(working)
	// The publish stored a ready snapshot: the atomic fast path serves it.
	if s := published.snap.Load(); s == nil {
		t.Fatal("ReplaceAll did not build a snapshot")
	} else if s.Len() != 1 {
		t.Fatalf("published snapshot has %d features", s.Len())
	}
	if n := countWithVariable(published.Snapshot(), "salinity"); n != 1 {
		t.Errorf("WithVariable count = %d", n)
	}
}

func TestSnapshotNameAndParentIndexes(t *testing.T) {
	c := New()
	base := time.Date(2010, 6, 1, 0, 0, 0, 0, time.UTC)
	f := snapFeat("a.obs", 45, -124, base, 10, "fluores375", "qa")
	f.Variables[0].Parent = "fluorescence"
	f.Variables[1].Excluded = true
	if err := c.Upsert(f); err != nil {
		t.Fatal(err)
	}
	snap := c.Snapshot()
	if n := countWithVariable(snap, "fluores375"); n != 1 {
		t.Errorf("WithVariable(fluores375) count = %d", n)
	}
	if n := countWithVariable(snap, "qa"); n != 0 {
		t.Errorf("excluded variable indexed %d times", n)
	}
	if n := countWithParent(snap, "fluorescence"); n != 1 {
		t.Errorf("WithParent(fluorescence) count = %d", n)
	}
	if got, ok := snap.ByID(f.ID); !ok || got.Path != "a.obs" {
		t.Errorf("ByID = %v, %v", got, ok)
	}
}

// TestSpatialCandidatesSuperset brute-checks the grid's core guarantee:
// every feature whose scoring distance is within maxKm appears in the
// candidate set, for random geometries including near the antimeridian
// and high latitudes.
func TestSpatialCandidatesSuperset(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	base := time.Date(2010, 6, 1, 0, 0, 0, 0, time.UTC)
	c := NewSharded(3)
	for i := 0; i < 300; i++ {
		lat := -84 + rng.Float64()*168
		lon := -179 + rng.Float64()*358
		if err := c.Upsert(snapFeat(fmt.Sprintf("s%03d.obs", i), lat, lon, base, 5, "v")); err != nil {
			t.Fatal(err)
		}
	}
	snap := c.Snapshot()
	for qi := 0; qi < 200; qi++ {
		p := geo.Point{Lat: -84 + rng.Float64()*168, Lon: -179 + rng.Float64()*358}
		maxKm := []float64{10, 100, 500, 2000}[rng.Intn(4)]
		qb := geo.BBox{MinLat: p.Lat, MinLon: p.Lon, MaxLat: p.Lat, MaxLon: p.Lon}
		for si, sh := range snap.Shards() {
			pos, ok := sh.SpatialCandidates(qb, maxKm)
			if !ok {
				continue
			}
			inSet := make(map[int32]bool, len(pos))
			for _, i := range pos {
				inSet[i] = true
			}
			for i, f := range sh.All() {
				if f.BBox.DistanceKm(p) <= maxKm && !inSet[int32(i)] {
					t.Fatalf("query %v r=%.0fkm shard %d: feature %s at %.1fkm missing from candidates",
						p, maxKm, si, f.Path, f.BBox.DistanceKm(p))
				}
			}
		}
	}
}

// TestTimeCandidatesSuperset brute-checks the interval index: every
// feature within maxGap of the query range is a candidate.
func TestTimeCandidatesSuperset(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	c := NewSharded(3)
	for i := 0; i < 300; i++ {
		start := time.Date(2000+rng.Intn(15), time.Month(1+rng.Intn(12)), 1+rng.Intn(28),
			0, 0, 0, 0, time.UTC)
		if err := c.Upsert(snapFeat(fmt.Sprintf("t%03d.obs", i), 45, -124, start, rng.Intn(300), "v")); err != nil {
			t.Fatal(err)
		}
	}
	snap := c.Snapshot()
	for qi := 0; qi < 200; qi++ {
		start := time.Date(2000+rng.Intn(15), time.Month(1+rng.Intn(12)), 1+rng.Intn(28),
			0, 0, 0, 0, time.UTC)
		q := geo.NewTimeRange(start, start.AddDate(0, 0, rng.Intn(90)))
		maxGap := time.Duration(rng.Intn(1000)) * 24 * time.Hour
		for si, sh := range snap.Shards() {
			pos, ok := sh.TimeCandidates(q, maxGap)
			if !ok {
				t.Fatalf("TimeCandidates declined maxGap %v", maxGap)
			}
			inSet := make(map[int32]bool, len(pos))
			for _, i := range pos {
				inSet[i] = true
			}
			for i, f := range sh.All() {
				if f.Time.Distance(q) <= maxGap && !inSet[int32(i)] {
					t.Fatalf("query %v gap=%v shard %d: feature %s at gap %v missing",
						q, maxGap, si, f.Path, f.Time.Distance(q))
				}
			}
		}
	}
}

// TestConcurrentSnapshotAndPublish hammers the lock-free read path
// against publishes (run under -race).
func TestConcurrentSnapshotAndPublish(t *testing.T) {
	published := New()
	base := time.Date(2010, 6, 1, 0, 0, 0, 0, time.UTC)
	_ = published.Upsert(snapFeat("init.obs", 45, -124, base, 5, "salinity"))
	var wg sync.WaitGroup
	stop := make(chan struct{})

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			working := New()
			for j := 0; j <= i%4; j++ {
				_ = working.Upsert(snapFeat(fmt.Sprintf("g%d-%d.obs", i, j), 45, -124, base, 5, "salinity"))
			}
			published.ReplaceAll(working)
		}
		close(stop)
	}()

	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := published.Snapshot()
				for _, sh := range snap.Shards() {
					for _, p := range sh.WithVariable("salinity") {
						if f := sh.At(p); len(f.Variables) == 0 {
							t.Error("corrupted snapshot feature")
							return
						}
					}
				}
				if snap.Len() == 0 {
					t.Error("empty snapshot during publish")
					return
				}
			}
		}()
	}
	wg.Wait()
}

// countWithVariable sums WithVariable hits across every shard.
func countWithVariable(s *Snapshot, name string) int {
	n := 0
	for _, sh := range s.Shards() {
		n += len(sh.WithVariable(name))
	}
	return n
}

// countWithParent sums WithParent hits across every shard.
func countWithParent(s *Snapshot, name string) int {
	n := 0
	for _, sh := range s.Shards() {
		n += len(sh.WithParent(name))
	}
	return n
}
